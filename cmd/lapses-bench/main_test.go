package main

import (
	"strings"
	"testing"
)

func snap(entries ...entry) snapshot {
	return snapshot{Schema: 5, GOMAXPROCS: 4, Entries: entries}
}

func ent(name string, ns, allocs float64) entry {
	return entry{Name: name, NsPerOp: ns, AllocsPerOp: allocs, Gomaxprocs: 4, Shards: 1}
}

// A baseline entry the current run no longer measures is dropped perf
// coverage: the gate must fail unless -allow-missing says the removal was
// intentional.
func TestCompareMissingBaselineEntryFailsGate(t *testing.T) {
	base := snap(ent("sim/a", 100, 10), ent("sim/retired", 100, 10))
	cur := snap(ent("sim/a", 100, 10))

	var out strings.Builder
	if compareSnapshots(&out, cur, base, 0.25, false) {
		t.Errorf("gate passed with a baseline entry missing from the run:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISSING") || !strings.Contains(out.String(), "sim/retired") {
		t.Errorf("missing entry not named in output:\n%s", out.String())
	}

	out.Reset()
	if !compareSnapshots(&out, cur, base, 0.25, true) {
		t.Errorf("-allow-missing did not tolerate the retired entry:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "allowed by -allow-missing") {
		t.Errorf("allowed removal not reported as such:\n%s", out.String())
	}
}

// An entry new in this snapshot has no baseline to regress against; it
// must warn without failing, or every bench-suite addition would need a
// baseline regenerated in the same commit.
func TestCompareNewEntryWarnsOnly(t *testing.T) {
	base := snap(ent("sim/a", 100, 10))
	cur := snap(ent("sim/a", 100, 10), ent("sim/new", 100, 10))

	var out strings.Builder
	if !compareSnapshots(&out, cur, base, 0.25, false) {
		t.Errorf("gate failed on an entry new in this snapshot:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "warning: no baseline entry") {
		t.Errorf("new entry not warned about:\n%s", out.String())
	}
}

// The regression gate itself: past-tolerance deltas fail, within-tolerance
// deltas pass.
func TestCompareRegressionGate(t *testing.T) {
	base := snap(ent("sim/a", 100, 10))

	var out strings.Builder
	if compareSnapshots(&out, snap(ent("sim/a", 200, 10)), base, 0.25, false) {
		t.Errorf("100%% ns/op regression passed a 25%% gate:\n%s", out.String())
	}
	out.Reset()
	if compareSnapshots(&out, snap(ent("sim/a", 100, 20)), base, 0.25, false) {
		t.Errorf("100%% allocs/op regression passed a 25%% gate:\n%s", out.String())
	}
	out.Reset()
	if !compareSnapshots(&out, snap(ent("sim/a", 110, 10)), base, 0.25, false) {
		t.Errorf("10%% ns/op delta failed a 25%% gate:\n%s", out.String())
	}
}
