// Command lapses-bench measures simulator performance and writes a JSON
// snapshot of the perf trajectory: wall time per sweep point, simulated
// cycles per second, allocations per run, and sweep-engine points/sec.
// Each PR records a BENCH_<date>.json so regressions and wins are
// provable against history rather than anecdotes.
//
//	lapses-bench                  # full suite -> BENCH_<today>.json
//	lapses-bench -quick -out b.json
//
// Methodology: every case runs in a warm process (caches primed by one
// untimed run), for -mintime per case, with a fixed seed — the regime a
// sweep point lives in, where one structural configuration is reused
// across the whole load axis.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/sweep"
	"lapses/internal/traffic"
)

// entry is one benchmark case in the snapshot.
type entry struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
}

// snapshot is the BENCH_<date>.json schema.
type snapshot struct {
	Schema     int     `json:"schema"`
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Entries    []entry `json:"entries"`
}

func main() {
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	quick := flag.Bool("quick", false, "single timed iteration per case (CI smoke)")
	minTime := flag.Duration("mintime", 2*time.Second, "minimum measurement time per case")
	flag.Parse()
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	if *quick {
		*minTime = 0
	}

	snap := snapshot{
		Schema:     1,
		Date:       time.Now().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Sweep points across the load axis: 0.05 is the low-load regime
	// where the active-set scheduler's idle-skip dominates, 0.5 a loaded
	// steady state, 0.2 the paper's workhorse operating point.
	for _, load := range []float64{0.05, 0.2, 0.5} {
		c := simPoint(load)
		snap.Entries = append(snap.Entries, measure(
			fmt.Sprintf("sim/16x16/load=%.2f", load), *minTime,
			func() int64 {
				r, err := core.Run(c)
				if err != nil {
					fatal(err)
				}
				return r.TotalCycles
			}))
	}

	// Construction cost: what every sweep point pays before cycle zero.
	{
		c := simPoint(0.05)
		c.Warmup, c.Measure = 0, 1
		snap.Entries = append(snap.Entries, measure("construct/16x16", *minTime,
			func() int64 {
				r, err := core.Run(c)
				if err != nil {
					fatal(err)
				}
				return r.TotalCycles
			}))
	}

	// Sweep-engine throughput: a 16-point grid through the concurrent
	// runner, the shape of every figure and table regeneration.
	{
		var grid []core.Config
		for _, pat := range []traffic.Kind{traffic.Uniform, traffic.Transpose} {
			for _, load := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4} {
				c := simPoint(load)
				c.Pattern = pat
				grid = append(grid, c)
			}
		}
		e := measure("sweep/16pt", *minTime, func() int64 {
			outs, err := sweep.Run(context.Background(), grid, sweep.Options{})
			if err != nil {
				fatal(err)
			}
			var cycles int64
			for _, o := range outs {
				if o.Err != nil {
					fatal(o.Err)
				}
				cycles += o.Result.TotalCycles
			}
			return cycles
		})
		e.PointsPerSec = float64(len(grid)) / (e.NsPerOp / 1e9)
		snap.Entries = append(snap.Entries, e)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, e := range snap.Entries {
		fmt.Printf("%-22s %12.0f ns/op %14.0f cycles/sec %10.0f allocs/op\n",
			e.Name, e.NsPerOp, e.CyclesPerSec, e.AllocsPerOp)
	}
}

// simPoint is the canonical benchmark configuration: the 16x16 paper mesh
// with a reduced sample size, fixed seed, static selection.
func simPoint(load float64) core.Config {
	c := core.DefaultConfig()
	c.Selection = selection.StaticXY
	c.Load = load
	c.Warmup, c.Measure = 100, 1000
	c.Seed = 1
	return c
}

// measure runs once untimed (to prime process-lifetime caches), then
// repeats the case until minTime has elapsed, reading allocation counters
// around the timed region.
func measure(name string, minTime time.Duration, once func() int64) entry {
	once() // warm plumbing, seed, and memo caches

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var cycles int64
	iters := 0
	for {
		cycles += once()
		iters++
		if time.Since(start) >= minTime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return entry{
		Name:         name,
		Iterations:   iters,
		NsPerOp:      float64(elapsed.Nanoseconds()) / float64(iters),
		CyclesPerSec: float64(cycles) / elapsed.Seconds(),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:   float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lapses-bench:", err)
	os.Exit(2)
}
