// Command lapses-bench measures simulator performance and writes a JSON
// snapshot of the perf trajectory: wall time per sweep point, simulated
// cycles per second, allocations per run, and sweep-engine points/sec.
// Each PR records a BENCH_<date>.json so regressions and wins are
// provable against history rather than anecdotes.
//
//	lapses-bench                  # full suite -> BENCH_<today>.json
//	lapses-bench -quick -out b.json
//	lapses-bench -quick -compare BENCH_2026-07-26.json -tolerance 0.25
//
// -compare diffs the fresh measurements against a committed baseline
// snapshot, printing per-entry ns/op and allocs/op deltas, and exits
// non-zero when any shared entry regressed past -tolerance — the CI
// guard that keeps hot-path regressions from drifting in silently.
//
// Methodology: every case runs in a warm process (caches primed by one
// untimed run), for -mintime per case, with a fixed seed — the regime a
// sweep point lives in, where one structural configuration is reused
// across the whole load axis. Each entry records the GOMAXPROCS and
// shard count it ran under, since both change what ns/op means.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"lapses/internal/core"
	"lapses/internal/experiments"
	"lapses/internal/fault"
	"lapses/internal/selection"
	"lapses/internal/sweep"
	"lapses/internal/traffic"
)

// entry is one benchmark case in the snapshot.
type entry struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	// Gomaxprocs and Shards record the execution plan the entry measured:
	// shard workers cannot speed a run beyond GOMAXPROCS, so a delta is
	// only meaningful between entries with comparable plans.
	Gomaxprocs int `json:"gomaxprocs"`
	Shards     int `json:"shards"`
	// SkippedFrac is the fraction of simulated cycles the idle-cycle
	// fast-forward jumped over (simulation entries only).
	SkippedFrac float64 `json:"skipped_frac,omitempty"`
	// SimulatedCyclesTotal is the total simulated cycles across all
	// timed iterations of the entry (schema 3) — the denominator
	// cycles/sec is computed over, and the number the adaptive-
	// measurement entries exist to shrink.
	SimulatedCyclesTotal int64 `json:"simulated_cycles_total,omitempty"`
	// EventMode records that the entry ran the event-driven execution
	// mode (schema 4) rather than the cycle-accurate kernel.
	EventMode bool `json:"event_mode,omitempty"`
	// Bursty and Notify record the congestion-experiment regime (schema
	// 5): bursty MMPP sources in place of the stationary Poisson process,
	// and a notification (Notify*) selection policy in place of a purely
	// local one.
	Bursty bool `json:"bursty,omitempty"`
	Notify bool `json:"notify,omitempty"`
	// Scheduled records a transient-fault-schedule run (schema 6):
	// mid-run epoch transitions with route reconvergence and the
	// reconfiguration drain on the per-cycle path's books.
	Scheduled bool `json:"scheduled,omitempty"`
}

// snapshot is the BENCH_<date>.json schema. Schema 2 added per-entry
// gomaxprocs/shards/skipped_frac; schema 3 adds simulated_cycles_total
// and the sweep/16pt/auto + bisect/16x16 entries; schema 4 adds
// event_mode and the sim/16x16/.../events entries; schema 5 adds
// bursty/notify and the sim/16x16/load=0.20/bursty[...] entries; schema
// 6 adds scheduled and the sim/16x16/load=0.20/schedule entry. Older
// baselines still load for comparison (schema-1 entries are implicitly
// shards=1).
type snapshot struct {
	Schema     int     `json:"schema"`
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Entries    []entry `json:"entries"`
}

func main() {
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	quick := flag.Bool("quick", false, "single timed iteration per case (CI smoke)")
	minTime := flag.Duration("mintime", 2*time.Second, "minimum measurement time per case")
	compare := flag.String("compare", "", "baseline snapshot to diff against; regressions past -tolerance exit non-zero")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression per entry for -compare (0.25 = 25%)")
	allowMissing := flag.Bool("allow-missing", false, "tolerate baseline entries the current run no longer measures (intentional bench removals)")
	flag.Parse()
	if *minTime < 0 {
		fatal(fmt.Errorf("-mintime %s: measurement time must not be negative", *minTime))
	}
	if *tolerance < 0 {
		fatal(fmt.Errorf("-tolerance %g: allowed regression fraction must not be negative", *tolerance))
	}
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	if *quick {
		*minTime = 0
	}

	snap := snapshot{
		Schema:     6,
		Date:       time.Now().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	sim := func(name string, c core.Config) {
		var skipped, total int64
		e := measure(name, *minTime, func() int64 {
			r, err := core.Run(c)
			if err != nil {
				fatal(err)
			}
			skipped += r.SkippedCycles
			total += r.TotalCycles
			return r.TotalCycles
		})
		e.Shards = c.EffectiveShards()
		e.EventMode = c.EventMode
		e.Bursty = c.Burst != nil
		e.Notify = c.Selection.IsNotify()
		e.Scheduled = c.Schedule != nil
		if total > 0 {
			e.SkippedFrac = float64(skipped) / float64(total)
		}
		snap.Entries = append(snap.Entries, e)
	}

	// Sweep points across the load axis: 0.05 is the low-load regime
	// where the active-set scheduler's idle-skip dominates, 0.5 a loaded
	// steady state, 0.2 the paper's workhorse operating point.
	for _, load := range []float64{0.05, 0.2, 0.5} {
		sim(fmt.Sprintf("sim/16x16/load=%.2f", load), simPoint(load))
	}

	// Near-idle regime: at load 0.005 the 16x16 network is globally empty
	// most of the time, the operating point idle-cycle fast-forward is
	// built for (at 0.05 the mesh still holds ~9 in-flight messages, so
	// there is almost nothing to skip — see skipped_frac in the entries).
	sim("sim/16x16/load=0.005", simPoint(0.005))

	// Sharded stepping variants: the same run partitioned into row bands
	// stepped by worker goroutines. On a multi-core host shards=4 is the
	// single-run wall-clock lever; on a 1-core host it measures the
	// barrier overhead instead (compare gomaxprocs before reading deltas).
	for _, shards := range []int{1, 4} {
		c := simPoint(0.5)
		c.Dims = []int{32, 32}
		c.Shards = shards
		sim(fmt.Sprintf("sim/32x32/load=0.50/shards=%d", shards), c)
	}
	{
		c := simPoint(0.5)
		c.Shards = 4
		sim("sim/16x16/load=0.50/shards=4", c)
	}

	// Event-driven execution at the same operating points: worm events and
	// the express path versus the cycle-accurate kernel. The 0.05 entry is
	// the acceptance point of the event-mode issue (the regime express was
	// built for); 0.2 shows how the win shrinks as contention forces the
	// fallback pipeline.
	for _, load := range []float64{0.05, 0.2} {
		c := simPoint(load)
		c.EventMode = true
		sim(fmt.Sprintf("sim/16x16/load=%.2f/events", load), c)
	}

	// Bursty MMPP sources and notification selection at the workhorse
	// operating point (schema 5): the congestion-experiment regime. The
	// bursty entry isolates the MMPP source cost against the plain
	// load=0.20 entry; the notify entry layers the credit-piggybacked
	// congestion tracking and the Notify selector's filtering pass on the
	// same bursty workload.
	{
		c := simPoint(0.2)
		c.Burst = &traffic.Burst{OnFrac: 0.3, MeanOn: 200}
		sim("sim/16x16/load=0.20/bursty", c)
		c.Selection = selection.NotifyMaxCredit
		sim("sim/16x16/load=0.20/bursty/notify", c)
	}

	// Transient fault schedule at the workhorse operating point (schema
	// 6): four mid-run transitions (two links down and healing, staggered
	// inside the measured interval) with live route reconvergence and the
	// reconfiguration drain. Against the plain load=0.20 entry this
	// isolates what a scheduled run costs per cycle: the schedule-presence
	// checks on the hot path plus the transitions themselves.
	{
		c := simPoint(0.2)
		sched, err := fault.ParseSchedule(c.Mesh(), "119-120@400:1100,135-136@450:1150")
		if err != nil {
			fatal(err)
		}
		c.Schedule = sched
		sim("sim/16x16/load=0.20/schedule", c)
	}

	// Construction cost: what every sweep point pays before cycle zero.
	{
		c := simPoint(0.05)
		c.Warmup, c.Measure = 0, 1
		sim("construct/16x16", c)
	}

	// Sweep-engine throughput: a 16-point grid through the concurrent
	// runner, the shape of every figure and table regeneration. Three
	// variants: the historical tiny-sample grid (trend continuity back
	// to schema 1), and an apples-to-apples pair at a default-tier-like
	// 300+6000 budget — fixed versus the adaptive measurement tier,
	// whose simulated_cycles_total shows what MSER-5 truncation plus
	// CI-based early stopping buys per point.
	sweepGrid := func(budget, auto bool) []core.Config {
		var grid []core.Config
		for _, pat := range []traffic.Kind{traffic.Uniform, traffic.Transpose} {
			for _, load := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4} {
				c := simPoint(load)
				c.Pattern = pat
				if budget {
					c.Warmup, c.Measure = 300, 6000
				}
				if auto {
					c.Auto = &core.AutoMeasure{RelTol: 0.05}
				}
				grid = append(grid, c)
			}
		}
		return grid
	}
	for _, v := range []struct {
		name         string
		budget, auto bool
	}{
		{"sweep/16pt", false, false},
		{"sweep/16pt/fixed6k", true, false},
		{"sweep/16pt/auto", true, true},
	} {
		grid := sweepGrid(v.budget, v.auto)
		name := v.name
		e := measure(name, *minTime, func() int64 {
			outs, err := sweep.Run(context.Background(), grid, sweep.Options{})
			if err != nil {
				fatal(err)
			}
			var cycles int64
			for _, o := range outs {
				if o.Err != nil {
					fatal(o.Err)
				}
				cycles += o.Result.TotalCycles
			}
			return cycles
		})
		e.PointsPerSec = float64(len(grid)) / (e.NsPerOp / 1e9)
		e.Shards = 1
		snap.Entries = append(snap.Entries, e)
	}

	// Saturation search: one 16x16 bisection (experiments.SaturationSpec
	// probes, fresh cache per iteration so every probe really runs) —
	// the engine behind the resilience and scaling experiments.
	{
		base := simPoint(0.2)
		base.Warmup, base.Measure = 300, 6000
		spec := experiments.SaturationSpec(base, 0.1, 1.0, 0.04)
		e := measure("bisect/16x16", *minTime, func() int64 {
			res, err := sweep.Bisect(context.Background(), spec, sweep.Options{Cache: sweep.NewCache()})
			if err != nil {
				fatal(err)
			}
			if !res.Converged {
				fatal(fmt.Errorf("bench bisect did not converge: %s", res))
			}
			return res.SimulatedCycles
		})
		e.Shards = 1
		snap.Entries = append(snap.Entries, e)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, e := range snap.Entries {
		fmt.Printf("%-28s %12.0f ns/op %14.0f cycles/sec %10.0f allocs/op\n",
			e.Name, e.NsPerOp, e.CyclesPerSec, e.AllocsPerOp)
	}

	if *compare != "" {
		if !compareBaseline(snap, *compare, *tolerance, *allowMissing) {
			os.Exit(1)
		}
	}
}

// compareBaseline loads the baseline snapshot at path and diffs the fresh
// measurements against it (see compareSnapshots).
func compareBaseline(cur snapshot, path string, tol float64, allowMissing bool) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var base snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing baseline %s: %w", path, err))
	}
	fmt.Printf("\ncompare vs %s (tolerance %.0f%%):\n", path, tol*100)
	return compareSnapshots(os.Stdout, cur, base, tol, allowMissing)
}

// compareSnapshots prints per-entry deltas against the baseline snapshot
// and reports whether the gate passes: every shared entry within
// tolerance, and every baseline entry still measured.
//
// allocs/op is always gated: allocation counts are deterministic across
// machines. ns/op is gated only when the entry's GOMAXPROCS matches the
// baseline's — wall time measured on a different machine class (a CI
// runner vs the dev box) varies for reasons that are not regressions, so
// there it prints informationally. Entries new in this snapshot have no
// baseline to regress against and warn only — failing them would force a
// baseline regenerated in the same commit as every bench-suite addition.
// Baseline entries that recorded a different shard count are skipped
// entirely: their ns/op measures a different execution plan. Baseline
// entries the current run no longer measures FAIL the gate unless
// allowMissing: a silently dropped entry is dropped perf coverage, which
// is exactly the drift -compare exists to catch (pass -allow-missing when
// retiring a bench intentionally).
func compareSnapshots(w io.Writer, cur, base snapshot, tol float64, allowMissing bool) bool {
	baseByName := make(map[string]entry, len(base.Entries))
	for _, e := range base.Entries {
		baseByName[e.Name] = e
	}
	ok := true
	for _, e := range cur.Entries {
		b, found := baseByName[e.Name]
		if !found {
			fmt.Fprintf(w, "%-28s warning: no baseline entry; skipped\n", e.Name)
			continue
		}
		delete(baseByName, e.Name)
		bShards := b.Shards
		if bShards == 0 {
			bShards = 1 // schema-1 baselines predate sharding
		}
		eShards := e.Shards
		if eShards == 0 {
			eShards = 1
		}
		if bShards != eShards {
			fmt.Fprintf(w, "%-28s (baseline ran shards=%d, now %d; skipped)\n", e.Name, bShards, eShards)
			continue
		}
		bProcs := b.Gomaxprocs
		if bProcs == 0 {
			bProcs = base.GOMAXPROCS // schema-1 entries carry it snapshot-wide
		}
		sameMachine := bProcs == e.Gomaxprocs
		nsDelta := frac(e.NsPerOp, b.NsPerOp)
		alDelta := frac(e.AllocsPerOp, b.AllocsPerOp)
		verdict := "ok"
		if alDelta > tol || (sameMachine && nsDelta > tol) {
			verdict = "REGRESSED"
			ok = false
		}
		note := ""
		if !sameMachine {
			note = fmt.Sprintf(" (ns/op informational: baseline gomaxprocs=%d, now %d)", bProcs, e.Gomaxprocs)
		}
		fmt.Fprintf(w, "%-28s ns/op %+7.1f%%  allocs/op %+7.1f%%  %s%s\n",
			e.Name, nsDelta*100, alDelta*100, verdict, note)
	}
	for name := range baseByName {
		if allowMissing {
			fmt.Fprintf(w, "%-28s warning: baseline entry not measured (renamed or removed); allowed by -allow-missing\n", name)
			continue
		}
		fmt.Fprintf(w, "%-28s MISSING: baseline entry not measured (renamed or removed); pass -allow-missing if intentional\n", name)
		ok = false
	}
	if !ok {
		fmt.Fprintf(w, "FAIL: regression beyond %.0f%% tolerance or missing baseline entries\n", tol*100)
	}
	return ok
}

// frac returns (cur-base)/base, treating a zero baseline as no change.
func frac(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base
}

// simPoint is the canonical benchmark configuration: the 16x16 paper mesh
// with a reduced sample size, fixed seed, static selection.
func simPoint(load float64) core.Config {
	c := core.DefaultConfig()
	c.Selection = selection.StaticXY
	c.Load = load
	c.Warmup, c.Measure = 100, 1000
	c.Seed = 1
	return c
}

// measure runs once untimed (to prime process-lifetime caches), then
// repeats the case until minTime has elapsed, reading allocation counters
// around the timed region.
func measure(name string, minTime time.Duration, once func() int64) entry {
	once() // warm plumbing, seed, and memo caches

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var cycles int64
	iters := 0
	for {
		cycles += once()
		iters++
		if time.Since(start) >= minTime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return entry{
		Name:                 name,
		Iterations:           iters,
		NsPerOp:              float64(elapsed.Nanoseconds()) / float64(iters),
		CyclesPerSec:         float64(cycles) / elapsed.Seconds(),
		AllocsPerOp:          float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:           float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		Gomaxprocs:           runtime.GOMAXPROCS(0),
		SimulatedCyclesTotal: cycles,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lapses-bench:", err)
	os.Exit(2)
}
