// Command lapses-experiments regenerates the tables and figures of the
// LAPSES paper's evaluation.
//
//	lapses-experiments -exp table3                 # one experiment
//	lapses-experiments -exp all -fidelity quick    # everything, fast
//	lapses-experiments -exp fig6 -fidelity paper   # 400k-message fidelity
//	lapses-experiments -exp fig5 -fidelity auto    # adaptive measurement
//	lapses-experiments -exp all -workers 16        # widen the sweep pool
//	lapses-experiments -exp fig6 -csv out -reps 5  # error bars over 5 seeds
//	lapses-experiments -exp fig5 -server http://host:8347  # run via lapses-serve
//
// -server routes every grid point (figure sweeps and saturation-search
// probes alike) through a lapses-serve instance instead of simulating
// in-process: points the server's content-addressed store has already
// seen — from any client, ever — are served from disk, and a sweep
// interrupted by a server crash resumes from the store on resubmission.
// One summary line per job ("[serve job ...]") reports the store-hit
// split.
//
// -fidelity auto runs every point on the adaptive measurement tier
// (MSER-5 warmup truncation + CI-based early stopping; see README
// "Measurement methodology"): each point simulates only as long as its
// latency statistics need, with the default tier's budget as ceiling.
//
// -reps N replays each experiment N times under derived seeds
// (Seed + rep*1000003) and adds mean/stderr columns to the CSVs; the
// rendered stdout tables stay single-rep (rep 0). See the schema note
// in internal/experiments/csv.go.
//
// Experiment grids execute through the concurrent internal/sweep engine:
// -workers bounds the pool (default GOMAXPROCS), and a memo cache shared
// across experiments makes points that recur between figures — e.g.
// Fig. 5's LA-ADAPT baseline, which is also Fig. 6's STATIC-XY series —
// simulate exactly once. Interrupting (Ctrl-C) cancels cleanly at the
// next point boundary.
//
// Output is the paper's row/series format; see EXPERIMENTS.md for the
// committed paper-vs-measured comparison.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"lapses/internal/experiments"
	"lapses/internal/serve"
	"lapses/internal/sweep"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig5, table3, fig6, table4, table5, resilience, scaling, congestion, or all")
	fidelity := flag.String("fidelity", "default", "sample size: quick, default, paper, or auto (adaptive measurement)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "concurrent simulations per sweep (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "row-band shards stepping each run in parallel (results are bit-identical for any count)")
	csvDir := flag.String("csv", "", "also write <dir>/<exp>.csv for plottable experiments")
	reps := flag.Int("reps", 1, "replications per experiment under derived seeds; CSVs gain mean/stderr columns")
	events := flag.Bool("events", false, "run every point on the event-driven kernel (statistically equivalent, several times faster, not bit-comparable to cycle mode)")
	server := flag.String("server", "", "execute grids via a lapses-serve instance at this URL instead of in-process")
	flag.Parse()
	if *reps < 1 {
		fatal(fmt.Errorf("-reps %d: replication count must be at least 1", *reps))
	}
	if *workers < 0 {
		fatal(fmt.Errorf("-workers %d: worker count must be at least 0 (0 = GOMAXPROCS)", *workers))
	}
	if *shards < 1 {
		fatal(fmt.Errorf("-shards %d: shard count must be at least 1", *shards))
	}

	f, err := experiments.ParseFidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runner := experiments.Runner{
		Fidelity:  f,
		Seed:      *seed,
		Workers:   *workers,
		Shards:    *shards,
		Cache:     sweep.NewCache(),
		EventMode: *events,
	}
	var client *serve.Client
	if *server != "" {
		u, err := url.Parse(*server)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			fatal(fmt.Errorf("-server %q: must be an http(s) URL like http://host:8347", *server))
		}
		client = &serve.Client{Base: *server, Verbose: os.Stdout}
		if err := client.Health(ctx); err != nil {
			fatal(fmt.Errorf("-server %s is not reachable or not healthy: %w", *server, err))
		}
		runner.Exec = client.Run
	}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		if err := runner.RunByName(ctx, os.Stdout, name); err != nil {
			fatal(err)
		}
		if *csvDir != "" && hasCSV(name) {
			path := filepath.Join(*csvDir, name+".csv")
			file, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			// The CSV pass replays the grid out of the shared cache; with
			// -reps it adds replications under derived seeds (rep 0 is
			// the grid already simulated, so it stays cached). A failed
			// write removes the file: a partial CSV that parses is worse
			// than no CSV.
			if err := runner.WriteCSVReps(ctx, file, name, *reps); err != nil {
				file.Close()
				os.Remove(path)
				fatal(err)
			}
			if err := file.Close(); err != nil {
				os.Remove(path)
				fatal(err)
			}
			fmt.Printf("[csv written to %s]\n", path)
		}
		fmt.Printf("\n[%s done in %.1fs]\n\n", name, time.Since(start).Seconds())
	}
	if h, m := runner.Cache.Hits(), runner.Cache.Misses(); h > 0 {
		fmt.Printf("[memo cache: %d simulated, %d reused]\n", m, h)
	}
	if client != nil {
		if st, err := client.StoreStats(ctx); err == nil {
			fmt.Printf("[server store: %d entries, %d served, %d simulated, %d quarantined]\n",
				st.Entries, st.Hits, st.Misses, st.Quarantined)
		}
	}
}

func hasCSV(name string) bool {
	switch name {
	case "fig5", "table3", "fig6", "table4", "resilience", "scaling", "congestion":
		return true
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lapses-experiments:", err)
	os.Exit(2)
}
