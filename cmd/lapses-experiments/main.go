// Command lapses-experiments regenerates the tables and figures of the
// LAPSES paper's evaluation section.
//
//	lapses-experiments -exp table3                 # one experiment
//	lapses-experiments -exp all -fidelity quick    # everything, fast
//	lapses-experiments -exp fig6 -fidelity paper   # 400k-message fidelity
//
// Output is the paper's row/series format; see EXPERIMENTS.md for the
// committed paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lapses/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig5, table3, fig6, table4, table5, or all")
	fidelity := flag.String("fidelity", "default", "sample size: quick, default, paper")
	seed := flag.Int64("seed", 1, "random seed")
	csvDir := flag.String("csv", "", "also write <dir>/<exp>.csv for plottable experiments")
	flag.Parse()

	f, err := experiments.ParseFidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		if err := experiments.RunByName(os.Stdout, name, f, *seed); err != nil {
			fatal(err)
		}
		if *csvDir != "" && hasCSV(name) {
			path := filepath.Join(*csvDir, name+".csv")
			file, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteCSVByName(file, name, f, *seed); err != nil {
				file.Close()
				fatal(err)
			}
			if err := file.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("[csv written to %s]\n", path)
		}
		fmt.Printf("\n[%s done in %.1fs]\n\n", name, time.Since(start).Seconds())
	}
}

func hasCSV(name string) bool {
	switch name {
	case "fig5", "table3", "fig6", "table4":
		return true
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lapses-experiments:", err)
	os.Exit(2)
}
