// Command lapses-serve runs the sweep engine as a fault-tolerant
// service: it accepts experiment-grid jobs over HTTP/JSON, executes
// them through the concurrent internal/sweep engine, and persists every
// completed point to a crash-safe, content-addressed result store — so
// overlapping grids submitted across processes, users and restarts cost
// one simulation per unique point, ever.
//
//	lapses-serve -store /var/lib/lapses            # serve on :8347
//	lapses-serve -addr :9000 -workers 8 -queue 4
//	lapses-experiments -exp fig5 -server http://host:8347
//
// Cluster mode spreads one server's grids across machines. A
// coordinator decomposes each submitted grid into leased work units;
// workers claim units over HTTP, simulate them against the shared
// store, heartbeat while running, and report per-point results back:
//
//	lapses-serve -mode coordinator -store /shared/lapses -lease-ttl 10s
//	lapses-serve -mode worker -peers http://coord:8347 -store /shared/lapses
//
// A worker that dies mid-lease (kill -9, partition, drain) goes silent;
// the coordinator's failure detector requeues its lease after one TTL,
// and the re-execution serves every already-persisted point straight
// from the store — no simulation runs twice.
//
// Robustness properties (see internal/serve for the mechanisms):
//
//   - Completed points are durable: atomic temp-file + rename writes,
//     per-entry checksums, and a startup recovery scan that quarantines
//     truncated or corrupt entries instead of serving them. Killing the
//     process mid-grid (even kill -9) loses only in-flight points;
//     resubmitting the job resumes from the store.
//   - A panicking point fails that point, not the server.
//   - Transient point failures retry with exponential backoff + jitter
//     inside a bounded attempt budget.
//   - The job queue is bounded: beyond -queue waiting jobs, submissions
//     get 429 + Retry-After backpressure.
//   - Per-job deadlines (-job-timeout or per-submission) cancel runaway
//     grids at the next point boundary.
//   - SIGINT/SIGTERM drains gracefully: in-flight points finish and
//     persist, queued jobs are marked interrupted and resumable. A
//     draining worker reports its finished points and hands unstarted
//     ones back for immediate requeue.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lapses/internal/serve"
)

func main() {
	mode := flag.String("mode", "standalone", "role: standalone (serve and simulate in-process), coordinator (serve jobs, lease work to workers), or worker (claim leases from -peers)")
	addr := flag.String("addr", ":8347", "listen address (standalone and coordinator modes)")
	storeDir := flag.String("store", "", "result-store directory (required); created if missing; cluster roles share one directory")
	workers := flag.Int("workers", 0, "concurrent simulations per job (0 = GOMAXPROCS budgeted against sharding)")
	queue := flag.Int("queue", 16, "max jobs waiting behind the running one before submissions get 429")
	retries := flag.Int("retries", 3, "attempts per point (standalone) or per lease (cluster) for transient failures (1 disables retry)")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base retry backoff (doubles per retry, jittered, capped at 2s)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job deadline (0 = none; submissions may set their own)")
	peers := flag.String("peers", "", "comma-separated coordinator base URLs (worker mode; required there)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "coordinator mode: how long a claimed lease survives without a heartbeat before its unit is requeued")
	heartbeat := flag.Duration("heartbeat", 0, "coordinator mode: heartbeat cadence advertised to workers (0 = lease-ttl/4; must be shorter than -lease-ttl)")
	unitSize := flag.Int("unit", 4, "coordinator mode: grid points per lease unit")
	workerID := flag.String("worker-id", "", "worker mode: stable identity in coordinator logs and lease ownership (default host:pid)")
	flag.Parse()

	switch *mode {
	case "standalone", "coordinator", "worker":
	default:
		fatal(fmt.Errorf("-mode %q: must be standalone, coordinator, or worker", *mode))
	}

	// Reject flags that have no effect in the chosen mode — a worker
	// started with -lease-ttl, or a coordinator with -peers, is a
	// misunderstanding of the topology that should fail loudly at start,
	// not silently shape nothing.
	modeFlags := map[string]string{
		"peers":     "worker",
		"worker-id": "worker",
		"lease-ttl": "coordinator",
		"heartbeat": "coordinator",
		"unit":      "coordinator",
	}
	flag.Visit(func(f *flag.Flag) {
		want, scoped := modeFlags[f.Name]
		if scoped && want != *mode {
			fatal(fmt.Errorf("-%s only applies in %s mode (running in %s mode)", f.Name, want, *mode))
		}
	})

	if *storeDir == "" {
		fatal(fmt.Errorf("-store is required: the directory completed results persist to"))
	}
	if *workers < 0 {
		fatal(fmt.Errorf("-workers %d: worker count must be at least 0 (0 = GOMAXPROCS)", *workers))
	}
	if *queue < 1 {
		fatal(fmt.Errorf("-queue %d: job queue depth must be at least 1", *queue))
	}
	if *retries < 1 {
		fatal(fmt.Errorf("-retries %d: attempt budget must be at least 1 (1 = no retry)", *retries))
	}
	if *backoff <= 0 {
		fatal(fmt.Errorf("-backoff %s: base backoff must be positive", *backoff))
	}
	if *jobTimeout < 0 {
		fatal(fmt.Errorf("-job-timeout %s: deadline must not be negative", *jobTimeout))
	}
	if *leaseTTL <= 0 {
		fatal(fmt.Errorf("-lease-ttl %s: lease TTL must be positive", *leaseTTL))
	}
	if *heartbeat < 0 {
		fatal(fmt.Errorf("-heartbeat %s: heartbeat cadence must not be negative (0 = lease-ttl/4)", *heartbeat))
	}
	if *heartbeat > 0 && *heartbeat >= *leaseTTL {
		fatal(fmt.Errorf("-heartbeat %s must be shorter than -lease-ttl %s, or every healthy lease expires between beats", *heartbeat, *leaseTTL))
	}
	if *unitSize < 1 {
		fatal(fmt.Errorf("-unit %d: lease unit size must be at least 1 point", *unitSize))
	}

	var peerList []string
	if *mode == "worker" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if len(peerList) == 0 {
			fatal(fmt.Errorf("-peers is required in worker mode: comma-separated coordinator URLs, e.g. -peers http://coord:8347"))
		}
	}

	store, err := serve.Open(*storeDir)
	if err != nil {
		fatal(err)
	}
	st := store.Stats()
	log.Printf("store %s: %d entries recovered, %d quarantined", *storeDir, st.Entries, st.Quarantined)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *mode == "worker" {
		runWorker(ctx, store, peerList, *workerID, *workers)
		return
	}

	opt := serve.ServerOptions{
		Workers:    *workers,
		QueueLimit: *queue,
		Retry:      serve.RetryPolicy{MaxAttempts: *retries, BaseBackoff: *backoff},
		JobTimeout: *jobTimeout,
	}
	if *mode == "coordinator" {
		opt.Cluster = &serve.ClusterOptions{
			LeaseTTL:  *leaseTTL,
			Heartbeat: *heartbeat,
			UnitSize:  *unitSize,
		}
	}
	srv := serve.NewServer(store, opt)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("%s listening on %s", *mode, *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("draining: in-flight points finish, queued jobs are marked resumable")
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fatal(err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	st = store.Stats()
	log.Printf("drained cleanly: %d entries durable, %d simulated this run, %d served from store", st.Entries, st.Misses, st.Hits)
}

// runWorker runs the claim-execute-complete loop until the signal
// context cancels, then drains: in-flight points finish and persist,
// and the final completion report hands unstarted points back to the
// coordinator for immediate requeue.
func runWorker(ctx context.Context, store *serve.Store, peers []string, id string, workers int) {
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := &serve.Worker{
		ID:           id,
		Coordinators: peers,
		Store:        store,
		Workers:      workers,
		Verbose:      os.Stderr,
	}
	log.Printf("worker %s claiming from %s", id, strings.Join(peers, ", "))
	err := w.Run(ctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
	st := store.Stats()
	log.Printf("worker %s drained: %d simulated this run, %d served from store", id, st.Misses, st.Hits)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lapses-serve:", err)
	os.Exit(2)
}
