// Command lapses-serve runs the sweep engine as a fault-tolerant
// service: it accepts experiment-grid jobs over HTTP/JSON, executes
// them through the concurrent internal/sweep engine, and persists every
// completed point to a crash-safe, content-addressed result store — so
// overlapping grids submitted across processes, users and restarts cost
// one simulation per unique point, ever.
//
//	lapses-serve -store /var/lib/lapses            # serve on :8347
//	lapses-serve -addr :9000 -workers 8 -queue 4
//	lapses-experiments -exp fig5 -server http://host:8347
//
// Robustness properties (see internal/serve for the mechanisms):
//
//   - Completed points are durable: atomic temp-file + rename writes,
//     per-entry checksums, and a startup recovery scan that quarantines
//     truncated or corrupt entries instead of serving them. Killing the
//     process mid-grid (even kill -9) loses only in-flight points;
//     resubmitting the job resumes from the store.
//   - A panicking point fails that point, not the server.
//   - Transient point failures retry with exponential backoff + jitter
//     inside a bounded attempt budget.
//   - The job queue is bounded: beyond -queue waiting jobs, submissions
//     get 429 + Retry-After backpressure.
//   - Per-job deadlines (-job-timeout or per-submission) cancel runaway
//     grids at the next point boundary.
//   - SIGINT/SIGTERM drains gracefully: in-flight points finish and
//     persist, queued jobs are marked interrupted and resumable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lapses/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	storeDir := flag.String("store", "", "result-store directory (required); created if missing")
	workers := flag.Int("workers", 0, "concurrent simulations per job (0 = GOMAXPROCS budgeted against sharding)")
	queue := flag.Int("queue", 16, "max jobs waiting behind the running one before submissions get 429")
	retries := flag.Int("retries", 3, "attempts per point for transient failures (1 disables retry)")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base retry backoff (doubles per retry, jittered, capped at 2s)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job deadline (0 = none; submissions may set their own)")
	flag.Parse()
	if *storeDir == "" {
		fatal(fmt.Errorf("-store is required: the directory completed results persist to"))
	}
	if *workers < 0 {
		fatal(fmt.Errorf("-workers %d: worker count must be at least 0 (0 = GOMAXPROCS)", *workers))
	}
	if *queue < 1 {
		fatal(fmt.Errorf("-queue %d: job queue depth must be at least 1", *queue))
	}
	if *retries < 1 {
		fatal(fmt.Errorf("-retries %d: attempt budget must be at least 1 (1 = no retry)", *retries))
	}
	if *backoff <= 0 {
		fatal(fmt.Errorf("-backoff %s: base backoff must be positive", *backoff))
	}
	if *jobTimeout < 0 {
		fatal(fmt.Errorf("-job-timeout %s: deadline must not be negative", *jobTimeout))
	}

	store, err := serve.Open(*storeDir)
	if err != nil {
		fatal(err)
	}
	st := store.Stats()
	log.Printf("store %s: %d entries recovered, %d quarantined", *storeDir, st.Entries, st.Quarantined)

	srv := serve.NewServer(store, serve.ServerOptions{
		Workers:    *workers,
		QueueLimit: *queue,
		Retry:      serve.RetryPolicy{MaxAttempts: *retries, BaseBackoff: *backoff},
		JobTimeout: *jobTimeout,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("draining: in-flight points finish, queued jobs are marked resumable")
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fatal(err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	st = store.Stats()
	log.Printf("drained cleanly: %d entries durable, %d simulated this run, %d served from store", st.Entries, st.Misses, st.Hits)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lapses-serve:", err)
	os.Exit(2)
}
