// Command lapses-sim runs one network simulation and prints its results.
//
// Example: reproduce one LA-adaptive point of Fig. 5(a):
//
//	lapses-sim -load 0.5 -pattern uniform -selection static-xy
//
// Or a deterministic router without look-ahead on transpose traffic:
//
//	lapses-sim -alg xy -lookahead=false -pattern transpose -load 0.3
//
// Degraded topologies come from -faults: an integer draws that many
// random link failures (seeded by -fault-seed, always leaving the network
// connected), while an explicit plan names links by their endpoints and
// routers with an r prefix:
//
//	lapses-sim -load 0.3 -faults 4 -fault-seed 7
//	lapses-sim -load 0.3 -faults 12-13,40-41,r77
//
// Transient faults come from -fault-schedule: timed down/up events that
// hit mid-run, with live route reconvergence at each transition. The
// optional -reliability flag adds the end-to-end NI retransmission layer
// on top, turning the losses into retries:
//
//	lapses-sim -load 0.3 -fault-schedule 12-13@5000:9000,r77@2000
//	lapses-sim -load 0.3 -fault-schedule 12-13@5000:9000 -reliability on
//
// -burst switches every source to a bursty two-state MMPP at the same
// mean rate, and -qos enables two-class traffic with VC reservation —
// the workloads the notification selectors (-selection notify-lru etc.)
// are built for:
//
//	lapses-sim -load 0.5 -burst 0.3,200 -selection notify-max-credit
//	lapses-sim -load 0.3 -qos 0.2,1 -pattern hotspot
//
// -auto switches to the adaptive measurement tier: MSER-5 warmup
// truncation plus CI-based early stopping at the -auto-tol relative
// half-width, with -warmup+-measure as the message ceiling. The summary
// then reports the truncated measurement window and whether the CI
// converged before the ceiling.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"lapses/internal/core"
	"lapses/internal/fault"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/traffic"
)

func main() {
	cfg := core.DefaultConfig()

	dims := flag.String("dims", "16x16", "mesh radices, e.g. 16x16 or 8x8x8")
	torus := flag.Bool("torus", false, "wrap the mesh into a torus")
	vcs := flag.Int("vcs", cfg.VCs, "virtual channels per physical channel")
	escape := flag.Int("escape", cfg.EscapeVCs, "escape VCs (Duato routing)")
	buf := flag.Int("buf", cfg.BufDepth, "input buffer depth (flits)")
	la := flag.Bool("lookahead", cfg.LookAhead, "use the 4-stage LA-PROUD pipeline")
	alg := flag.String("alg", cfg.Algorithm.String(), "routing algorithm: xy, yx, duato, north-last, west-first, negative-first")
	tbl := flag.String("table", cfg.Table.String(), "table organization: full, es, meta-row, meta-block, interval")
	sel := flag.String("selection", cfg.Selection.String(), "path selection: static-xy, min-mux, lfu, lru, max-credit, random, notify-lru, notify-lfu, notify-max-credit")
	pattern := flag.String("pattern", cfg.Pattern.String(), "traffic pattern: uniform, transpose, bit-reversal, shuffle, ...")
	load := flag.Float64("load", cfg.Load, "normalized load (1.0 = bisection saturation)")
	burst := flag.String("burst", "", "bursty MMPP sources as ONFRAC,MEANON (e.g. 0.3,200): fraction of time spent ON and mean ON-period cycles, same mean rate as -load")
	qos := flag.String("qos", "", "two-class QoS traffic as HIFRAC,HIVCS (e.g. 0.2,1): high-class probability and reserved top adaptive VCs")
	msgLen := flag.Int("msglen", cfg.MsgLen, "message length in flits")
	warmup := flag.Int("warmup", cfg.Warmup, "warm-up messages (excluded from stats)")
	measure := flag.Int("measure", cfg.Measure, "measured messages")
	seed := flag.Int64("seed", cfg.Seed, "random seed")
	auto := flag.Bool("auto", false, "adaptive measurement: MSER-5 warmup truncation + CI-based early stopping (ceiling = warmup+measure)")
	autoTol := flag.Float64("auto-tol", 0.05, "with -auto: stop once the 95% CI half-width falls to this fraction of the mean")
	faults := flag.String("faults", "", "fault plan: a count of random link failures, or an explicit \"A-B,...,rN\" spec")
	faultSeed := flag.Int64("fault-seed", 1, "seed for random fault plans")
	faultSched := flag.String("fault-schedule", "", "transient fault schedule: \"A-B@DOWN:UP,rN@DOWN,...\" timed events (\":UP\" omitted = permanent); exclusive with -faults")
	reliability := flag.String("reliability", "", "end-to-end NI retransmission layer: \"on\" for defaults, or \"RTO,ATTEMPTS,ACKDELAY\" (cycles, count, cycles; 0 = default)")
	shards := flag.Int("shards", 1, "row-band shards stepping the run in parallel (results are bit-identical for any count)")
	events := flag.Bool("events", false, "event-driven kernel: observationally equivalent to cycle mode, not bit-identical (see README)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var err error
	if cfg.Dims, err = parseDims(*dims); err != nil {
		fatal(err)
	}
	cfg.Torus = *torus
	cfg.VCs, cfg.EscapeVCs, cfg.BufDepth = *vcs, *escape, *buf
	cfg.LookAhead = *la
	if cfg.Algorithm, err = core.ParseAlg(*alg); err != nil {
		fatal(err)
	}
	if cfg.Table, err = table.ParseKind(*tbl); err != nil {
		fatal(err)
	}
	if cfg.Selection, err = selection.ParseKind(*sel); err != nil {
		fatal(err)
	}
	if cfg.Pattern, err = traffic.ParseKind(*pattern); err != nil {
		fatal(err)
	}
	cfg.Load, cfg.MsgLen = *load, *msgLen
	cfg.Warmup, cfg.Measure, cfg.Seed = *warmup, *measure, *seed
	if *burst != "" {
		if cfg.Burst, err = parseBurst(*burst); err != nil {
			fatal(err)
		}
	}
	if *qos != "" {
		if cfg.QoS, err = parseQoS(*qos); err != nil {
			fatal(err)
		}
	}
	if *shards < 1 {
		fatal(fmt.Errorf("-shards %d: shard count must be at least 1", *shards))
	}
	cfg.Shards = *shards
	cfg.EventMode = *events
	if *auto {
		if *autoTol <= 0 {
			fatal(fmt.Errorf("-auto-tol %g: relative CI tolerance must be positive", *autoTol))
		}
		cfg.Auto = &core.AutoMeasure{RelTol: *autoTol}
	}
	if *faults != "" {
		if cfg.Faults, err = parseFaults(cfg, *faults, *faultSeed); err != nil {
			fatal(err)
		}
	}
	if *faultSched != "" {
		if *faults != "" {
			fatal(fmt.Errorf("-faults and -fault-schedule are exclusive: a static plan is the schedule with no timestamps"))
		}
		if cfg.Schedule, err = fault.ParseSchedule(cfg.Mesh(), *faultSched); err != nil {
			fatal(err)
		}
	}
	if *reliability != "" {
		if cfg.Reliability, err = parseReliability(*reliability); err != nil {
			fatal(err)
		}
	}

	res, err := core.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("network        %s  (%d VCs, %d-flit buffers, link delay %d)\n",
		cfg.Mesh(), cfg.VCs, cfg.BufDepth, cfg.LinkDelay)
	fmt.Printf("router         %s, %s routing, %s table, %s selection\n",
		pipeName(cfg.LookAhead), cfg.Algorithm, cfg.Table, cfg.Selection)
	fmt.Printf("workload       %s, load %.2f, %d-flit messages\n", cfg.Pattern, cfg.Load, cfg.MsgLen)
	if cfg.Burst != nil {
		fmt.Printf("bursty         MMPP on/off sources: on-fraction %.2f, mean on-period %.0f cycles\n",
			cfg.Burst.OnFrac, cfg.Burst.MeanOn)
	}
	if cfg.QoS != nil {
		fmt.Printf("qos            high-class probability %.2f, top %d adaptive VC(s) reserved\n",
			cfg.QoS.HiFrac, cfg.QoS.HiVCs)
	}
	if !cfg.Faults.Empty() {
		fmt.Printf("faults         %d links, %d routers down: %s\n",
			cfg.Faults.NumLinks(), cfg.Faults.NumRouters(), cfg.Faults.Key())
	}
	if cfg.Schedule != nil {
		fmt.Printf("schedule       %s\n", cfg.Schedule.Key())
	}
	fmt.Printf("avg latency    %s cycles (95%% CI +/- %.2f)\n", res.LatencyString(), res.CI95)
	fmt.Printf("percentiles    p50 %.0f / p95 %.0f / p99 %.0f cycles\n", res.P50, res.P95, res.P99)
	fmt.Printf("net latency    %.1f cycles (excl. source queueing)\n", res.NetLatency)
	fmt.Printf("avg hops       %.2f\n", res.AvgHops)
	fmt.Printf("throughput     %.4f flits/node/cycle\n", res.Throughput)
	fmt.Printf("delivered      %d messages over %d cycles\n", res.Delivered, res.Cycles)
	// MeasuredCycles is the statistics window; SkippedCycles counts the
	// simulated-but-not-executed idle jumps. The two are independent: a
	// fast-forwarded cycle inside the window is still measured time (the
	// jump is observationally neutral), so MeasuredCycles never shrinks
	// because fast-forward ran.
	fmt.Printf("measured       %d-cycle window, %d total simulated\n", res.MeasuredCycles, res.TotalCycles)
	kernel := "cycle-driven"
	if cfg.EventMode {
		kernel = "event-driven"
	}
	fmt.Printf("kernel         %s, %d shard(s), %d of %d cycles fast-forwarded\n",
		kernel, cfg.EffectiveShards(), res.SkippedCycles, res.TotalCycles)
	if cfg.Schedule != nil {
		recovery := "never (or no pre-fault baseline)"
		if res.RecoveryCycles >= 0 {
			recovery = fmt.Sprintf("%d cycles after last failure", res.RecoveryCycles)
		}
		fmt.Printf("transitions    %d reconvergences, %d flits / %d messages dropped\n",
			res.ReconvergenceEpochs, res.DroppedFlits, res.DroppedMessages)
		fmt.Printf("availability   %.4f of measured messages delivered, rate recovered %s\n",
			res.DeliveredFraction, recovery)
	}
	if cfg.Reliability != nil {
		fmt.Printf("reliability    %d retransmissions, %d duplicates suppressed, %d abandoned\n",
			res.Retransmits, res.DupSuppressed, res.Abandoned)
	}
	if cfg.Auto != nil {
		fmt.Printf("auto           converged=%t after %d messages (CI ±%.2f, target ±%.1f%% of mean)\n",
			res.Converged, res.Delivered, res.LatencyCI, *autoTol*100)
	}
	if res.Saturated {
		fmt.Printf("saturated      %s\n", res.SatReason)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // materialize the final live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func pipeName(la bool) string {
	if la {
		return "LA-PROUD (4-stage)"
	}
	return "PROUD (5-stage)"
}

// parseReliability reads the -reliability spec: "on" takes every
// default, otherwise "RTO,ATTEMPTS,ACKDELAY" with zeros falling back to
// the defaults (core validates signs and the network applies defaults).
func parseReliability(spec string) (*core.Reliability, error) {
	if strings.TrimSpace(spec) == "on" {
		return &core.Reliability{}, nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -reliability %q: want \"on\" or RTO,ATTEMPTS,ACKDELAY (e.g. 2048,12,64)", spec)
	}
	rto, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad -reliability %q: %v", spec, err)
	}
	attempts, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, fmt.Errorf("bad -reliability %q: %v", spec, err)
	}
	ackDelay, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad -reliability %q: %v", spec, err)
	}
	return &core.Reliability{RTO: rto, MaxAttempts: attempts, AckDelay: ackDelay}, nil
}

// parseFaults builds the fault plan: a bare integer draws that many
// random link failures (connectivity-preserving), anything else is an
// explicit fault.Parse spec.
func parseFaults(cfg core.Config, spec string, seed int64) (*fault.Plan, error) {
	m := cfg.Mesh()
	if n, err := strconv.Atoi(strings.TrimSpace(spec)); err == nil {
		return fault.Random(m, n, 0, seed)
	}
	return fault.Parse(m, spec)
}

// parseBurst reads the -burst spec "ONFRAC,MEANON" into an MMPP burst
// parameterization; ranges are validated here so a bad spec fails before
// the network is built.
func parseBurst(spec string) (*traffic.Burst, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad -burst %q: want ONFRAC,MEANON (e.g. 0.3,200)", spec)
	}
	onFrac, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad -burst %q: %v", spec, err)
	}
	meanOn, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad -burst %q: %v", spec, err)
	}
	b := &traffic.Burst{OnFrac: onFrac, MeanOn: meanOn}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("-burst %q: %v", spec, err)
	}
	return b, nil
}

// parseQoS reads the -qos spec "HIFRAC,HIVCS" into a two-class QoS
// specification. The VC-count-dependent reservation bound is checked by
// core.Run against the configured channel counts.
func parseQoS(spec string) (*core.QoSSpec, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad -qos %q: want HIFRAC,HIVCS (e.g. 0.2,1)", spec)
	}
	hiFrac, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad -qos %q: %v", spec, err)
	}
	hiVCs, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, fmt.Errorf("bad -qos %q: %v", spec, err)
	}
	if hiFrac < 0 || hiFrac > 1 {
		return nil, fmt.Errorf("-qos %q: high-class probability %g outside [0,1]", spec, hiFrac)
	}
	if hiVCs < 1 {
		return nil, fmt.Errorf("-qos %q: reserved VC count %d must be at least 1", spec, hiVCs)
	}
	return &core.QoSSpec{HiFrac: hiFrac, HiVCs: hiVCs}, nil
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad dims %q: %v", s, err)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lapses-sim:", err)
	os.Exit(2)
}
