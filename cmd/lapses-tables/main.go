// Command lapses-tables prints routing-table programmings, reproducing the
// paper's worked examples:
//
//	lapses-tables              # Fig. 7: ES table, North-Last, 3x3 mesh, node (1,1)
//	lapses-tables -alg duato   # the same node programmed for Duato routing
//	lapses-tables -meta        # Fig. 8: both meta-table mappings on 16x16
//	lapses-tables -interval    # interval table (YX) for a node on 8x8
package main

import (
	"flag"
	"fmt"
	"os"

	"lapses/internal/core"
	"lapses/internal/routing"
	"lapses/internal/table"
	"lapses/internal/topology"
)

func main() {
	algName := flag.String("alg", "north-last", "algorithm to program: xy, yx, duato, north-last, west-first, negative-first")
	meta := flag.Bool("meta", false, "print the Fig. 8 meta-table mappings instead")
	interval := flag.Bool("interval", false, "print an interval table instead")
	flag.Parse()

	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}

	if *meta {
		m := topology.NewMesh(16, 16)
		alg := routing.NewDuato(m, cls)
		fmt.Println("Fig. 8(a): row mapping (minimal flexibility; cluster/label per node, top row = y15)")
		fmt.Println(table.NewMeta(m, alg, cls, 0, table.MapRow).DumpMapping())
		fmt.Println("Fig. 8(b): block mapping (maximal flexibility)")
		fmt.Println(table.NewMeta(m, alg, cls, 0, table.MapBlock).DumpMapping())
		return
	}

	if *interval {
		m := topology.NewMesh(8, 8)
		yx := routing.NewDimOrder(m, cls, []int{1, 0})
		node := m.ID(topology.Coord{3, 3})
		iv := table.NewInterval(m, yx, cls, node)
		fmt.Printf("Interval table for node (3,3) of %s, YX routing:\n", m)
		for p := topology.Port(0); int(p) < m.NumPorts(); p++ {
			lo, hi, ok := iv.Intervals(p)
			if !ok {
				fmt.Printf("  %-3s  (unused)\n", m.PortName(p))
				continue
			}
			fmt.Printf("  %-3s  labels [%d, %d]\n", m.PortName(p), lo, hi)
		}
		return
	}

	a, err := core.ParseAlg(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lapses-tables:", err)
		os.Exit(2)
	}
	m := topology.NewMesh(3, 3)
	var alg routing.Algorithm
	switch a {
	case core.AlgXY:
		alg = routing.NewDimOrder(m, cls, nil)
	case core.AlgYX:
		alg = routing.NewDimOrder(m, cls, []int{1, 0})
	case core.AlgDuato:
		alg = routing.NewDuato(m, cls)
	case core.AlgNorthLast:
		alg = routing.NewNorthLast(m, cls)
	case core.AlgWestFirst:
		alg = routing.NewWestFirst(m, cls)
	case core.AlgNegativeFirst:
		alg = routing.NewNegativeFirst(m, cls)
	}
	node := m.ID(topology.Coord{1, 1})
	es := table.NewES(m, alg, node)
	fmt.Printf("Fig. 7: economical-storage table at node (1,1) of a 3x3 mesh, %s routing\n", alg.Name())
	fmt.Printf("(sign of destination offset (sx,sy) -> permitted output ports; %d entries)\n\n", es.Entries())
	fmt.Print(es.Dump())
}
