// Command lapses-tables prints routing-table programmings, reproducing the
// paper's worked examples:
//
//	lapses-tables              # Fig. 7: ES table, North-Last, 3x3 mesh, node (1,1)
//	lapses-tables -alg duato   # the same node programmed for Duato routing
//	lapses-tables -meta        # Fig. 8: both meta-table mappings on 16x16
//	lapses-tables -interval    # interval table (YX) for a node on 8x8
//	lapses-tables -verify      # sweep: ES results identical to full-table
//
// -verify runs a quick (pattern x load) grid through the concurrent
// internal/sweep engine, simulating each point under both the full
// routing table and economical storage and checking the results are
// bit-identical — the equivalence Table 4 reports. -workers bounds the
// sweep's worker pool (0 = GOMAXPROCS). -events runs the grid on the
// event-driven kernel instead: table organization never changes a
// routing decision, so ES and full-table stay bit-identical per kernel
// even though the two kernels are not bit-comparable to each other.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"lapses/internal/core"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/sweep"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

func main() {
	algName := flag.String("alg", "north-last", "algorithm to program: xy, yx, duato, north-last, west-first, negative-first")
	meta := flag.Bool("meta", false, "print the Fig. 8 meta-table mappings instead")
	interval := flag.Bool("interval", false, "print an interval table instead")
	verify := flag.Bool("verify", false, "sweep-check that ES tables route identically to full tables")
	workers := flag.Int("workers", 0, "concurrent simulations for -verify (0 = GOMAXPROCS)")
	events := flag.Bool("events", false, "run the -verify sweep on the event-driven kernel")
	flag.Parse()

	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}

	if *verify {
		if err := verifyES(*workers, *events); err != nil {
			fmt.Fprintln(os.Stderr, "lapses-tables:", err)
			os.Exit(1)
		}
		return
	}

	if *meta {
		m := topology.NewMesh(16, 16)
		alg := routing.NewDuato(m, cls)
		fmt.Println("Fig. 8(a): row mapping (minimal flexibility; cluster/label per node, top row = y15)")
		fmt.Println(table.NewMeta(m, alg, cls, 0, table.MapRow).DumpMapping())
		fmt.Println("Fig. 8(b): block mapping (maximal flexibility)")
		fmt.Println(table.NewMeta(m, alg, cls, 0, table.MapBlock).DumpMapping())
		return
	}

	if *interval {
		m := topology.NewMesh(8, 8)
		yx := routing.NewDimOrder(m, cls, []int{1, 0})
		node := m.ID(topology.Coord{3, 3})
		iv := table.NewInterval(m, yx, cls, node)
		fmt.Printf("Interval table for node (3,3) of %s, YX routing:\n", m)
		for p := topology.Port(0); int(p) < m.NumPorts(); p++ {
			lo, hi, ok := iv.Intervals(p)
			if !ok {
				fmt.Printf("  %-3s  (unused)\n", m.PortName(p))
				continue
			}
			fmt.Printf("  %-3s  labels [%d, %d]\n", m.PortName(p), lo, hi)
		}
		return
	}

	a, err := core.ParseAlg(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lapses-tables:", err)
		os.Exit(2)
	}
	m := topology.NewMesh(3, 3)
	var alg routing.Algorithm
	switch a {
	case core.AlgXY:
		alg = routing.NewDimOrder(m, cls, nil)
	case core.AlgYX:
		alg = routing.NewDimOrder(m, cls, []int{1, 0})
	case core.AlgDuato:
		alg = routing.NewDuato(m, cls)
	case core.AlgNorthLast:
		alg = routing.NewNorthLast(m, cls)
	case core.AlgWestFirst:
		alg = routing.NewWestFirst(m, cls)
	case core.AlgNegativeFirst:
		alg = routing.NewNegativeFirst(m, cls)
	}
	node := m.ID(topology.Coord{1, 1})
	es := table.NewES(m, alg, node)
	fmt.Printf("Fig. 7: economical-storage table at node (1,1) of a 3x3 mesh, %s routing\n", alg.Name())
	fmt.Printf("(sign of destination offset (sx,sy) -> permitted output ports; %d entries)\n\n", es.Entries())
	fmt.Print(es.Dump())
}

// verifyES sweeps a quick (pattern x load) grid, each point once with the
// full routing table and once with economical storage, and checks the
// Results are bit-identical — the paper's Table 4 claim. The equivalence
// is kernel-independent: with events the grid runs event-driven and the
// per-point pairs must still match bit for bit.
func verifyES(workers int, events bool) error {
	patterns := []traffic.Kind{traffic.Uniform, traffic.Transpose, traffic.BitReversal}
	loads := []float64{0.1, 0.2, 0.3}
	var grid []core.Config
	for _, pat := range patterns {
		for _, load := range loads {
			for _, tk := range []table.Kind{table.KindFull, table.KindES} {
				c := core.DefaultConfig().QuickFidelity()
				c.Selection = selection.StaticXY
				c.Pattern = pat
				c.Load = load
				c.Table = tk
				c.EventMode = events
				grid = append(grid, c)
			}
		}
	}
	outs, err := sweep.Run(context.Background(), grid, sweep.Options{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("ES-vs-full-table equivalence, %d points, quick fidelity:\n", len(grid)/2)
	fmt.Printf("%-13s %-5s %12s %12s  %s\n", "Traffic", "Load", "Full-Tbl", "Econ-Stor", "identical")
	bad := 0
	for i := 0; i < len(outs); i += 2 {
		full, es := outs[i], outs[i+1]
		if full.Err != nil {
			return full.Err
		}
		if es.Err != nil {
			return es.Err
		}
		same := full.Result == es.Result
		if !same {
			bad++
		}
		fmt.Printf("%-13s %-5.1f %12s %12s  %v\n",
			full.Config.Pattern, full.Config.Load,
			full.Result.LatencyString(), es.Result.LatencyString(), same)
	}
	if bad > 0 {
		return fmt.Errorf("%d points diverged between full table and ES", bad)
	}
	fmt.Println("all points identical")
	return nil
}
