package fault

import (
	"testing"

	"lapses/internal/topology"
)

func TestExplicitPlanCanonical(t *testing.T) {
	m := topology.NewMesh(4, 4)
	// Same link named from both ends must canonicalize identically.
	a, err := New(m, []Link{{Node: 5, Port: topology.PortPlus(0)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(m, []Link{{Node: 6, Port: topology.PortMinus(0)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ for the same link: %q vs %q", a.Key(), b.Key())
	}
	if !a.LinkDead(5, topology.PortPlus(0)) || !a.LinkDead(6, topology.PortMinus(0)) {
		t.Fatal("link failure is not bidirectional")
	}
	if a.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d, want 1", a.NumLinks())
	}
	if !a.Connected(m) {
		t.Fatal("single link failure must not disconnect a 4x4 mesh")
	}
}

func TestDeadRouterKillsItsLinks(t *testing.T) {
	m := topology.NewMesh(4, 4)
	r := m.ID(topology.Coord{1, 1})
	p, err := New(m, nil, []topology.NodeID{r})
	if err != nil {
		t.Fatal(err)
	}
	if !p.NodeDead(r) {
		t.Fatal("router not dead")
	}
	for pt := 1; pt < m.NumPorts(); pt++ {
		if nb, ok := m.Neighbor(r, topology.Port(pt)); ok {
			if !p.LinkDead(r, topology.Port(pt)) {
				t.Fatalf("port %d of dead router still live", pt)
			}
			if !p.LinkDead(nb, topology.Opposite(topology.Port(pt))) {
				t.Fatalf("reverse direction into dead router still live")
			}
		}
	}
	// Router-implied links are not listed as separate link failures.
	if p.NumLinks() != 0 {
		t.Fatalf("NumLinks = %d, want 0 (implied by router)", p.NumLinks())
	}
	if !p.Connected(m) {
		t.Fatal("one dead interior router must not disconnect the live 4x4 mesh")
	}
}

func TestRandomPlansStayConnected(t *testing.T) {
	for _, m := range []*topology.Mesh{topology.NewMesh(8, 8), topology.NewTorus(6, 6)} {
		for seed := int64(1); seed <= 20; seed++ {
			p, err := Random(m, 6, 1, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", m, seed, err)
			}
			if !p.Connected(m) {
				t.Fatalf("%s seed %d: generated plan disconnects the network", m, seed)
			}
			if p.NumRouters() != 1 {
				t.Fatalf("%s seed %d: NumRouters = %d", m, seed, p.NumRouters())
			}
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	m := topology.NewMesh(8, 8)
	a, err := Random(m, 4, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(m, 4, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("same seed produced different plans: %q vs %q", a.Key(), b.Key())
	}
	c, err := Random(m, 4, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() == c.Key() {
		t.Fatal("different seeds produced identical plans (suspicious)")
	}
}

func TestParseSpec(t *testing.T) {
	m := topology.NewMesh(4, 4)
	p, err := Parse(m, "5-6, 9-13 ,r0")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLinks() != 2 || p.NumRouters() != 1 {
		t.Fatalf("parsed %d links %d routers, want 2 and 1", p.NumLinks(), p.NumRouters())
	}
	if !p.LinkDead(9, topology.PortPlus(1)) {
		t.Fatal("9-13 (a +Y link) not dead")
	}
	if _, err := Parse(m, "0-5"); err == nil {
		t.Fatal("non-adjacent link accepted")
	}
	if _, err := Parse(m, "0+1"); err == nil {
		t.Fatal("malformed item accepted")
	}
}

func TestNilAndEmptyPlans(t *testing.T) {
	m := topology.NewMesh(4, 4)
	var p *Plan
	if !p.Empty() || p.Key() != "" || p.LinkDead(0, 1) || p.NodeDead(0) {
		t.Fatal("nil plan must behave as healthy")
	}
	e, err := New(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Empty() || e.Key() != "" {
		t.Fatal("empty plan must have empty key")
	}
}

func TestFitsRequiresExactShape(t *testing.T) {
	p, err := Random(topology.NewMesh(8, 8), 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Fits(topology.NewMesh(8, 8)) {
		t.Fatal("plan rejected by its own topology")
	}
	// Same node and port counts, different shape: the plan's (node, port)
	// indices would designate different physical links.
	for _, m := range []*topology.Mesh{topology.NewMesh(4, 16), topology.NewTorus(8, 8), topology.NewMesh(16, 4)} {
		if p.Fits(m) {
			t.Fatalf("8x8 mesh plan accepted by %s", m)
		}
	}
}

func TestDisconnectionRejected(t *testing.T) {
	m := topology.NewMesh(2, 2)
	// Cutting both links of node 0 isolates it.
	p, err := New(m, []Link{
		{Node: 0, Port: topology.PortPlus(0)},
		{Node: 0, Port: topology.PortPlus(1)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Connected(m) {
		t.Fatal("isolating a node must report disconnected")
	}
}
