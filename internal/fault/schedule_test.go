package fault

import (
	"strings"
	"testing"

	"lapses/internal/topology"
)

func TestScheduleEpochs(t *testing.T) {
	m := topology.NewMesh(4, 4)
	s, err := ParseSchedule(m, "1-2@100:300, r5@200, 8-9")
	if err != nil {
		t.Fatal(err)
	}
	// Boundaries: 0, 100, 200, 300 -> four epochs.
	if got := s.Epochs(); got != 4 {
		t.Fatalf("epochs = %d, want 4 (times %v)", got, s.Times())
	}
	type probe struct {
		at       int64
		linkDead bool
		r5Dead   bool
	}
	for _, pr := range []probe{
		{0, false, false}, {99, false, false},
		{100, true, false}, {199, true, false},
		{200, true, true}, {299, true, true},
		{300, false, true}, {100000, false, true},
	} {
		p := s.PlanAt(pr.at)
		if got := p.LinkDead(1, topology.PortPlus(0)); got != pr.linkDead {
			t.Errorf("at %d: link 1-2 dead = %v, want %v", pr.at, got, pr.linkDead)
		}
		if got := p.NodeDead(5); got != pr.r5Dead {
			t.Errorf("at %d: r5 dead = %v, want %v", pr.at, got, pr.r5Dead)
		}
		// The untimed item is down from cycle 0 forever.
		if !p.LinkDead(8, topology.PortPlus(0)) {
			t.Errorf("at %d: link 8-9 should be dead in every epoch", pr.at)
		}
	}
	if s.Static() {
		t.Fatal("timed schedule reported static")
	}
	if fd, ld := s.FirstDown(), s.LastDown(); fd != 100 || ld != 200 {
		t.Fatalf("FirstDown/LastDown = %d/%d, want 100/200", fd, ld)
	}
}

func TestScheduleKeyCanonical(t *testing.T) {
	m := topology.NewMesh(4, 4)
	a, err := ParseSchedule(m, "r5@200,1-2@100:300")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSchedule(m, "2-1@100:300 , r5@200")
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("key not canonical: %q vs %q", a.Key(), b.Key())
	}
	if want := "1-2@100:300;r5@200"; a.Key() != want {
		t.Fatalf("key = %q, want %q", a.Key(), want)
	}
}

func TestScheduleStaticMatchesPlan(t *testing.T) {
	m := topology.NewMesh(4, 4)
	s, err := ParseSchedule(m, "1-2,r5")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Static() {
		t.Fatal("untimed schedule should be static")
	}
	p, err := Parse(m, "1-2,r5")
	if err != nil {
		t.Fatal(err)
	}
	if s.StaticPlan().Key() != p.Key() {
		t.Fatalf("static schedule plan key %q != plan key %q", s.StaticPlan().Key(), p.Key())
	}
	if s.FirstDown() != -1 || s.LastDown() != -1 {
		t.Fatal("static schedule should have no down transitions")
	}
}

func TestScheduleRejectsDisconnection(t *testing.T) {
	m := topology.NewMesh(2, 2)
	// Cutting both links of node 0 isolates it during [10, 20).
	_, err := ParseSchedule(m, "0-1@10:20,0-2@10:30")
	if err == nil || !strings.Contains(err.Error(), "disconnect") {
		t.Fatalf("disconnecting schedule accepted (err=%v)", err)
	}
	// Staggered so one link is always live: fine.
	if _, err := ParseSchedule(m, "0-1@10:20,0-2@20:30"); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleBadSpecs(t *testing.T) {
	m := topology.NewMesh(4, 4)
	for _, spec := range []string{
		"1-2@", "1-2@x", "1-2@5:4", "1-2@5:5", "1-2@-3",
		"r99@5", "1-9@5", "bogus",
	} {
		if _, err := ParseSchedule(m, spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestRandomScheduleConnectedEveryEpoch(t *testing.T) {
	m := topology.NewTorus(5, 5)
	for seed := int64(0); seed < 10; seed++ {
		s, err := RandomSchedule(m, 5, 1, 8000, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 0; i < s.Epochs(); i++ {
			if !s.Plan(i).Connected(m) {
				t.Fatalf("seed %d: epoch %d disconnected", seed, i)
			}
		}
		s2, err := RandomSchedule(m, 5, 1, 8000, seed)
		if err != nil || s2.Key() != s.Key() {
			t.Fatalf("seed %d: not reproducible: %q vs %q (%v)", seed, s.Key(), s2.Key(), err)
		}
	}
}
