package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"lapses/internal/topology"
)

// A Schedule extends the static Plan with time: each element fails at a
// cycle and optionally heals at a later one, so the topology the network
// routes over changes while traffic is in flight. A schedule is a sequence
// of epochs — maximal intervals with a constant fault set — each carrying
// the immutable Plan in effect during it. Every epoch's live subgraph must
// be connected (the same precondition static plans enforce, applied at
// every instant), so fault-aware routing exists across every transition.
//
// A static plan is the degenerate schedule whose every event is
// down-at-cycle-0 with no repair: such a schedule has exactly one epoch
// and callers (core) collapse it onto the static-fault path, keeping
// memo-cache keys byte-identical to plain Plan configurations.

// SchedEvent is one timed failure: a link or a router goes down at cycle
// Down and (when Up >= 0) comes back at cycle Up. Up < 0 means the
// element never heals.
type SchedEvent struct {
	// Link names the failing link when IsRouter is false.
	Link Link
	// Router names the failing router when IsRouter is true.
	Router topology.NodeID
	// IsRouter selects which of the two fields is meaningful.
	IsRouter bool
	// Down is the cycle the element fails (inclusive).
	Down int64
	// Up is the cycle the element heals (exclusive: the element is live
	// again from cycle Up). Negative means permanent.
	Up int64
}

// Schedule is an immutable timed fault plan over one topology. Construct
// with NewSchedule, ParseSchedule or RandomSchedule.
type Schedule struct {
	dims   []int
	wrap   bool
	events []SchedEvent
	// times[i] is the first cycle of epoch i (times[0] == 0); plans[i] is
	// the fault set in effect for cycles [times[i], times[i+1]).
	times []int64
	plans []*Plan
	key   string
}

// NewSchedule builds a schedule from explicit events, materializing and
// validating the plan of every epoch. It errors when any event is
// malformed (bad element, Up <= Down) or any epoch's live subgraph is
// disconnected.
func NewSchedule(m *topology.Mesh, events []SchedEvent) (*Schedule, error) {
	s := &Schedule{
		dims:   append([]int(nil), m.Dims()...),
		wrap:   m.Wrap(),
		events: append([]SchedEvent(nil), events...),
	}
	for i, e := range s.events {
		if e.Down < 0 {
			return nil, fmt.Errorf("fault: schedule event down at negative cycle %d", e.Down)
		}
		if e.Up >= 0 && e.Up <= e.Down {
			return nil, fmt.Errorf("fault: schedule event heals at %d, not after failing at %d", e.Up, e.Down)
		}
		// Canonicalize links to their positive-direction end so the two
		// spellings of one link ("1-2", "2-1") key identically.
		if !e.IsRouter && topology.PortSign(e.Link.Port) < 0 {
			nb, ok := m.Neighbor(e.Link.Node, e.Link.Port)
			if !ok {
				return nil, fmt.Errorf("fault: node %d has no link through port %d", e.Link.Node, e.Link.Port)
			}
			s.events[i].Link = Link{Node: nb, Port: topology.Opposite(e.Link.Port)}
		}
	}
	// Canonical event order: routers after links, then by element, then by
	// failure time — the order the key renders in.
	sort.SliceStable(s.events, func(i, j int) bool {
		a, b := s.events[i], s.events[j]
		if a.IsRouter != b.IsRouter {
			return !a.IsRouter
		}
		if a.IsRouter {
			if a.Router != b.Router {
				return a.Router < b.Router
			}
		} else {
			if a.Link.Node != b.Link.Node {
				return a.Link.Node < b.Link.Node
			}
			if a.Link.Port != b.Link.Port {
				return a.Link.Port < b.Link.Port
			}
		}
		return a.Down < b.Down
	})

	// Epoch boundaries: cycle 0 plus every down and up time.
	set := map[int64]bool{0: true}
	for _, e := range s.events {
		set[e.Down] = true
		if e.Up > 0 {
			set[e.Up] = true
		}
	}
	for t := range set {
		s.times = append(s.times, t)
	}
	sort.Slice(s.times, func(i, j int) bool { return s.times[i] < s.times[j] })

	s.plans = make([]*Plan, len(s.times))
	for i, t := range s.times {
		var links []Link
		var routers []topology.NodeID
		for _, e := range s.events {
			if e.Down > t || (e.Up >= 0 && e.Up <= t) {
				continue
			}
			if e.IsRouter {
				routers = append(routers, e.Router)
			} else {
				links = append(links, e.Link)
			}
		}
		p, err := New(m, links, routers)
		if err != nil {
			return nil, fmt.Errorf("fault: schedule epoch at cycle %d: %w", t, err)
		}
		if !p.Connected(m) {
			return nil, fmt.Errorf("fault: schedule disconnects %s during [%d, ...): %s", m, t, p)
		}
		s.plans[i] = p
	}

	var b strings.Builder
	for i, e := range s.events {
		if i > 0 {
			b.WriteByte(';')
		}
		if e.IsRouter {
			fmt.Fprintf(&b, "r%d", e.Router)
		} else {
			nb, _ := m.Neighbor(e.Link.Node, e.Link.Port)
			fmt.Fprintf(&b, "%d-%d", e.Link.Node, nb)
		}
		fmt.Fprintf(&b, "@%d", e.Down)
		if e.Up >= 0 {
			fmt.Fprintf(&b, ":%d", e.Up)
		}
	}
	s.key = b.String()
	return s, nil
}

// ParseSchedule reads the CLI schedule spec: comma-separated items, each a
// static Parse item ("A-B" or "rN") optionally timed with "@DOWN" or
// "@DOWN:UP". An untimed item fails at cycle 0 and never heals, so a spec
// of untimed items is exactly the static plan Parse reads.
// Example: "12-13@5000:9000,r77@2000,40-41".
func ParseSchedule(m *topology.Mesh, spec string) (*Schedule, error) {
	var events []SchedEvent
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		elem, timing, timed := strings.Cut(item, "@")
		ev := SchedEvent{Up: -1}
		if timed {
			down, up, hasUp := strings.Cut(timing, ":")
			d, err := strconv.ParseInt(strings.TrimSpace(down), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad down time in %q: %v", item, err)
			}
			ev.Down = d
			if hasUp {
				u, err := strconv.ParseInt(strings.TrimSpace(up), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: bad up time in %q: %v", item, err)
				}
				ev.Up = u
			}
		}
		elem = strings.TrimSpace(elem)
		if strings.HasPrefix(elem, "r") || strings.HasPrefix(elem, "R") {
			id, err := strconv.Atoi(elem[1:])
			if err != nil {
				return nil, fmt.Errorf("fault: bad router %q: %v", item, err)
			}
			if !m.Valid(topology.NodeID(id)) {
				return nil, fmt.Errorf("fault: router %d outside %s", id, m)
			}
			ev.IsRouter = true
			ev.Router = topology.NodeID(id)
		} else {
			a, b, ok := strings.Cut(elem, "-")
			if !ok {
				return nil, fmt.Errorf("fault: bad item %q (want \"A-B\" or \"rN\", optionally \"@DOWN[:UP]\")", item)
			}
			na, err := strconv.Atoi(strings.TrimSpace(a))
			if err != nil {
				return nil, fmt.Errorf("fault: bad link %q: %v", item, err)
			}
			nb, err := strconv.Atoi(strings.TrimSpace(b))
			if err != nil {
				return nil, fmt.Errorf("fault: bad link %q: %v", item, err)
			}
			l, err := linkBetween(m, topology.NodeID(na), topology.NodeID(nb))
			if err != nil {
				return nil, err
			}
			ev.Link = l
		}
		events = append(events, ev)
	}
	return NewSchedule(m, events)
}

// RandomSchedule draws nLinks link events and nRouters router events with
// failure times uniform in [horizon/8, horizon/2] and, with probability
// 1/2, a repair within horizon/4 cycles of the failure. Draws whose epochs
// would disconnect the network are rejected and retried, like Random.
func RandomSchedule(m *topology.Mesh, nLinks, nRouters int, horizon, seed int64) (*Schedule, error) {
	if nLinks < 0 || nRouters < 0 {
		return nil, fmt.Errorf("fault: negative failure count")
	}
	if horizon < 8 {
		return nil, fmt.Errorf("fault: schedule horizon %d too short", horizon)
	}
	rng := rand.New(rand.NewSource(seed))
	var all []Link
	for id := 0; id < m.N(); id++ {
		for pt := 1; pt < m.NumPorts(); pt++ {
			port := topology.Port(pt)
			if topology.PortSign(port) < 0 {
				continue
			}
			if _, ok := m.Neighbor(topology.NodeID(id), port); ok {
				all = append(all, Link{Node: topology.NodeID(id), Port: port})
			}
		}
	}
	if nLinks > len(all) {
		return nil, fmt.Errorf("fault: %d failed links exceed the %d links of %s", nLinks, len(all), m)
	}
	const attempts = 200
	for try := 0; try < attempts; try++ {
		perm := rng.Perm(len(all))
		events := make([]SchedEvent, 0, nLinks+nRouters)
		draw := func(ev SchedEvent) SchedEvent {
			ev.Down = horizon/8 + rng.Int63n(horizon/2-horizon/8+1)
			ev.Up = -1
			if rng.Intn(2) == 0 {
				ev.Up = ev.Down + 1 + rng.Int63n(horizon/4)
			}
			return ev
		}
		for i := 0; i < nLinks; i++ {
			events = append(events, draw(SchedEvent{Link: all[perm[i]]}))
		}
		seen := map[topology.NodeID]bool{}
		for len(seen) < nRouters {
			r := topology.NodeID(rng.Intn(m.N()))
			if seen[r] {
				continue
			}
			seen[r] = true
			events = append(events, draw(SchedEvent{IsRouter: true, Router: r}))
		}
		s, err := NewSchedule(m, events)
		if err == nil {
			return s, nil
		}
	}
	return nil, fmt.Errorf("fault: no connected schedule with %d links + %d routers failing in %s after %d draws",
		nLinks, nRouters, m, attempts)
}

// Epochs returns the number of constant-topology intervals.
func (s *Schedule) Epochs() int { return len(s.plans) }

// Times returns the first cycle of each epoch (Times()[0] == 0). The
// caller must not modify it.
func (s *Schedule) Times() []int64 { return s.times }

// Plan returns the fault set in effect during epoch i.
func (s *Schedule) Plan(i int) *Plan { return s.plans[i] }

// EpochAt returns the index of the epoch containing cycle t.
func (s *Schedule) EpochAt(t int64) int {
	i := sort.Search(len(s.times), func(i int) bool { return s.times[i] > t }) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// PlanAt returns the fault set in effect at cycle t.
func (s *Schedule) PlanAt(t int64) *Plan { return s.plans[s.EpochAt(t)] }

// Events returns the canonical event list. The caller must not modify it.
func (s *Schedule) Events() []SchedEvent { return s.events }

// Static reports whether the schedule never changes after cycle 0 — the
// degenerate form equivalent to the static plan StaticPlan returns. Core
// collapses static schedules onto the plain-Plan path so their cache keys
// and results are byte-identical to Plan configurations.
func (s *Schedule) Static() bool { return s == nil || len(s.plans) == 1 }

// StaticPlan returns the single epoch's plan of a static schedule (the
// initial epoch's plan otherwise).
func (s *Schedule) StaticPlan() *Plan {
	if s == nil {
		return nil
	}
	return s.plans[0]
}

// FirstDown returns the earliest transition cycle that adds damage, or -1
// when no transition does (static schedules).
func (s *Schedule) FirstDown() int64 {
	for _, e := range s.events {
		if e.Down > 0 {
			return s.firstDownScan()
		}
	}
	return -1
}

func (s *Schedule) firstDownScan() int64 {
	first := int64(-1)
	for _, e := range s.events {
		if e.Down > 0 && (first < 0 || e.Down < first) {
			first = e.Down
		}
	}
	return first
}

// LastDown returns the latest cycle at which damage is added, or -1 when
// none is (static schedules).
func (s *Schedule) LastDown() int64 {
	last := int64(-1)
	for _, e := range s.events {
		if e.Down > 0 && e.Down > last {
			last = e.Down
		}
	}
	return last
}

// Fits reports whether the schedule was built for exactly m's topology.
func (s *Schedule) Fits(m *topology.Mesh) bool {
	if s == nil {
		return true
	}
	if s.wrap != m.Wrap() || len(s.dims) != m.NumDims() {
		return false
	}
	for d, k := range s.dims {
		if m.Radix(d) != k {
			return false
		}
	}
	return true
}

// Key returns the canonical content key: two schedules over the same
// topology with the same timed events have equal keys. A nil schedule's
// key is "".
func (s *Schedule) Key() string {
	if s == nil {
		return ""
	}
	return s.key
}

// String renders the schedule for logs and CLI output.
func (s *Schedule) String() string {
	if s == nil || s.key == "" {
		return "no fault schedule"
	}
	return fmt.Sprintf("schedule[%s]", s.key)
}
