// Package fault models degraded network topologies: deterministic plans of
// failed links and failed routers that the rest of the stack — routing,
// tables, the network fabric, and the experiment harness — consults to
// steer traffic around the damage. A Plan is immutable after construction
// and is keyed canonically, so simulation memo caches distinguish runs by
// fault content, not pointer identity.
//
// Plans come from two sources: explicit lists (New, or Parse for the CLI
// spec format "12-13,40-41,r77": node-pair link failures plus rN whole-
// router failures), and seeded random generation (Random), which rejects
// samples that would disconnect the live portion of the network so every
// generated plan leaves a routable topology.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"lapses/internal/topology"
)

// Link names one bidirectional link by one of its ends: the link leaving
// Node through Port. A failed link carries no flits and no credits in
// either direction.
type Link struct {
	Node topology.NodeID
	Port topology.Port
}

// Plan is an immutable set of failed links and failed routers over one
// topology. The zero value is not usable; construct with New, Random or
// Parse. A nil *Plan (or one with no failures) means a healthy network.
type Plan struct {
	nodes, ports int
	dims         []int // topology shape the plan was built for
	wrap         bool
	deadLink     []bool // indexed node*ports+port; both directions of a link
	deadNode     []bool
	links        []Link            // canonical positive-direction ends, sorted
	routers      []topology.NodeID // sorted
	key          string
}

// New builds an explicit plan. Links are canonicalized (either direction
// of a link names the same failure) and deduplicated; failing a router
// also fails every link attached to it. Links that do not exist in the
// topology (local ports, mesh edges) and out-of-range routers are errors.
func New(m *topology.Mesh, links []Link, routers []topology.NodeID) (*Plan, error) {
	p := &Plan{
		nodes:    m.N(),
		ports:    m.NumPorts(),
		dims:     append([]int(nil), m.Dims()...),
		wrap:     m.Wrap(),
		deadLink: make([]bool, m.N()*m.NumPorts()),
		deadNode: make([]bool, m.N()),
	}
	for _, r := range routers {
		if !m.Valid(r) {
			return nil, fmt.Errorf("fault: router %d outside %s", r, m)
		}
		if p.deadNode[r] {
			continue
		}
		p.deadNode[r] = true
		p.routers = append(p.routers, r)
		// A dead router's links are dead in both directions.
		for pt := 1; pt < p.ports; pt++ {
			if nb, ok := m.Neighbor(r, topology.Port(pt)); ok {
				p.killLink(m, r, topology.Port(pt), nb)
			}
		}
	}
	for _, l := range links {
		if l.Port == topology.PortLocal {
			return nil, fmt.Errorf("fault: local port of node %d is not a link", l.Node)
		}
		nb, ok := m.Neighbor(l.Node, l.Port)
		if !ok {
			return nil, fmt.Errorf("fault: node %d has no link through port %d", l.Node, l.Port)
		}
		p.killLink(m, l.Node, l.Port, nb)
	}
	// Canonical link list: the positive-direction end of every dead link
	// not already implied by a dead router, sorted by (node, port).
	for id := 0; id < p.nodes; id++ {
		for pt := 1; pt < p.ports; pt++ {
			if !p.deadLink[id*p.ports+pt] || topology.PortSign(topology.Port(pt)) < 0 {
				continue
			}
			nb, ok := m.Neighbor(topology.NodeID(id), topology.Port(pt))
			if !ok {
				continue
			}
			if p.deadNode[id] || p.deadNode[nb] {
				continue
			}
			p.links = append(p.links, Link{Node: topology.NodeID(id), Port: topology.Port(pt)})
		}
	}
	sort.Slice(p.links, func(i, j int) bool {
		if p.links[i].Node != p.links[j].Node {
			return p.links[i].Node < p.links[j].Node
		}
		return p.links[i].Port < p.links[j].Port
	})
	sort.Slice(p.routers, func(i, j int) bool { return p.routers[i] < p.routers[j] })
	p.key = p.buildKey(m)
	return p, nil
}

// killLink marks both directions of the link (n, pt) <-> nb dead.
func (p *Plan) killLink(m *topology.Mesh, n topology.NodeID, pt topology.Port, nb topology.NodeID) {
	p.deadLink[int(n)*p.ports+int(pt)] = true
	p.deadLink[int(nb)*p.ports+int(topology.Opposite(pt))] = true
}

// Random draws a plan with nLinks failed links and nRouters failed routers
// using its own seeded generator, rejecting draws that disconnect the live
// portion of the network (so routing over the degraded graph always
// exists). It errors when no connected plan is found within the retry
// budget — the requested damage is at or beyond the topology's resilience.
func Random(m *topology.Mesh, nLinks, nRouters int, seed int64) (*Plan, error) {
	if nLinks < 0 || nRouters < 0 {
		return nil, fmt.Errorf("fault: negative failure count")
	}
	if nRouters >= m.N() {
		return nil, fmt.Errorf("fault: %d failed routers leave no live network in %s", nRouters, m)
	}
	rng := rand.New(rand.NewSource(seed))
	// All positive-direction links of the topology, the sampling universe.
	var all []Link
	for id := 0; id < m.N(); id++ {
		for pt := 1; pt < m.NumPorts(); pt++ {
			port := topology.Port(pt)
			if topology.PortSign(port) < 0 {
				continue
			}
			if _, ok := m.Neighbor(topology.NodeID(id), port); ok {
				all = append(all, Link{Node: topology.NodeID(id), Port: port})
			}
		}
	}
	if nLinks > len(all) {
		return nil, fmt.Errorf("fault: %d failed links exceed the %d links of %s", nLinks, len(all), m)
	}
	const attempts = 200
	for try := 0; try < attempts; try++ {
		perm := rng.Perm(len(all))
		links := make([]Link, nLinks)
		for i := range links {
			links[i] = all[perm[i]]
		}
		routers := make([]topology.NodeID, 0, nRouters)
		seen := map[topology.NodeID]bool{}
		for len(routers) < nRouters {
			r := topology.NodeID(rng.Intn(m.N()))
			if seen[r] {
				continue
			}
			seen[r] = true
			routers = append(routers, r)
		}
		p, err := New(m, links, routers)
		if err != nil {
			return nil, err
		}
		if p.Connected(m) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fault: no connected plan with %d links + %d routers down in %s after %d draws",
		nLinks, nRouters, m, attempts)
}

// Parse reads the CLI plan spec: comma-separated items, each either a link
// "A-B" (adjacent node IDs) or a router "rN". Example: "12-13,40-41,r77".
func Parse(m *topology.Mesh, spec string) (*Plan, error) {
	var links []Link
	var routers []topology.NodeID
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if strings.HasPrefix(item, "r") || strings.HasPrefix(item, "R") {
			id, err := strconv.Atoi(item[1:])
			if err != nil {
				return nil, fmt.Errorf("fault: bad router %q: %v", item, err)
			}
			routers = append(routers, topology.NodeID(id))
			continue
		}
		a, b, ok := strings.Cut(item, "-")
		if !ok {
			return nil, fmt.Errorf("fault: bad item %q (want \"A-B\" or \"rN\")", item)
		}
		na, err := strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return nil, fmt.Errorf("fault: bad link %q: %v", item, err)
		}
		nb, err := strconv.Atoi(strings.TrimSpace(b))
		if err != nil {
			return nil, fmt.Errorf("fault: bad link %q: %v", item, err)
		}
		l, err := linkBetween(m, topology.NodeID(na), topology.NodeID(nb))
		if err != nil {
			return nil, err
		}
		links = append(links, l)
	}
	return New(m, links, routers)
}

// linkBetween finds the port connecting two adjacent nodes.
func linkBetween(m *topology.Mesh, a, b topology.NodeID) (Link, error) {
	for pt := 1; pt < m.NumPorts(); pt++ {
		if nb, ok := m.Neighbor(a, topology.Port(pt)); ok && nb == b {
			return Link{Node: a, Port: topology.Port(pt)}, nil
		}
	}
	return Link{}, fmt.Errorf("fault: nodes %d and %d are not adjacent in %s", a, b, m)
}

// LinkDead reports whether the link leaving n through port pt has failed
// (in either direction — link failures are bidirectional). The local port
// is never a link. Nil plans are healthy.
func (p *Plan) LinkDead(n topology.NodeID, pt topology.Port) bool {
	if p == nil || pt == topology.PortLocal {
		return false
	}
	return p.deadLink[int(n)*p.ports+int(pt)]
}

// NodeDead reports whether router n has failed. A dead router's NI injects
// nothing and no live route traverses it.
func (p *Plan) NodeDead(n topology.NodeID) bool {
	return p != nil && p.deadNode[n]
}

// Empty reports whether the plan contains no failures.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.links) == 0 && len(p.routers) == 0)
}

// NumLinks returns the number of explicitly failed links (not counting
// links implied by failed routers).
func (p *Plan) NumLinks() int {
	if p == nil {
		return 0
	}
	return len(p.links)
}

// NumRouters returns the number of failed routers.
func (p *Plan) NumRouters() int {
	if p == nil {
		return 0
	}
	return len(p.routers)
}

// Links returns the canonical failed-link list (positive-direction ends,
// sorted). The caller must not modify it.
func (p *Plan) Links() []Link {
	if p == nil {
		return nil
	}
	return p.links
}

// Routers returns the sorted failed-router list. The caller must not
// modify it.
func (p *Plan) Routers() []topology.NodeID {
	if p == nil {
		return nil
	}
	return p.routers
}

// Fits reports whether the plan was built for exactly m's topology —
// same radices and wrap, not merely the same node count, since a plan's
// (node, port) indices designate different physical links on a reshaped
// network. Configuration validation rejects plans applied elsewhere.
func (p *Plan) Fits(m *topology.Mesh) bool {
	if p == nil {
		return true
	}
	if p.wrap != m.Wrap() || len(p.dims) != m.NumDims() {
		return false
	}
	for d, k := range p.dims {
		if m.Radix(d) != k {
			return false
		}
	}
	return true
}

// Connected reports whether every live router can reach every other over
// live links — the precondition for routing over the degraded topology.
func (p *Plan) Connected(m *topology.Mesh) bool {
	if p.Empty() {
		return true
	}
	return m.SubgraphConnected(
		func(n topology.NodeID) bool { return !p.NodeDead(n) },
		func(n topology.NodeID, pt topology.Port) bool { return !p.LinkDead(n, pt) },
	)
}

// buildKey renders the canonical content key.
func (p *Plan) buildKey(m *topology.Mesh) string {
	var b strings.Builder
	for i, l := range p.links {
		if i > 0 {
			b.WriteByte(';')
		}
		nb, _ := m.Neighbor(l.Node, l.Port)
		fmt.Fprintf(&b, "%d-%d", l.Node, nb)
	}
	for i, r := range p.routers {
		if i > 0 || len(p.links) > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "r%d", r)
	}
	return b.String()
}

// Key returns a canonical content string: two plans over the same topology
// with the same failures have equal keys. Memo caches (core.Config.Key,
// the plumbing cache) append it to their keys so runs differing only in
// faults never share state. The empty plan's key is "".
func (p *Plan) Key() string {
	if p == nil {
		return ""
	}
	return p.key
}

// String renders the plan for logs and CLI output.
func (p *Plan) String() string {
	if p.Empty() {
		return "no faults"
	}
	return fmt.Sprintf("faults[%s]", p.key)
}
