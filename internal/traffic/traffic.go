// Package traffic generates the synthetic workloads of the LAPSES study:
// the four paper patterns (uniform, transpose, bit-reversal, perfect
// shuffle) plus standard extensions (bit-complement, tornado, hotspot,
// nearest-neighbor), driven by a per-node Poisson process (exponential
// inter-arrival times, Table 2).
//
// Loads are specified in the paper's normalized form: load 1.0 is the
// per-node flit injection rate that saturates the network bisection under
// uniform traffic (0.25 flits/node/cycle on the 16x16 mesh).
//
// # Bursty sources
//
// The stationary Poisson source can be replaced per run by a two-state
// MMPP on/off process (Burst, NewMMPP): exponentially-distributed ON
// periods of Poisson arrivals at rate/OnFrac alternate with silent OFF
// periods, so the long-run mean rate still equals the configured load
// while arrivals cluster into bursts. OnFrac is the long-run fraction of
// time spent ON (1 degenerates to plain Poisson); MeanOn sets the burst
// time scale in cycles. Both source types implement Source with a
// precomputed next-arrival time (NextAt never draws from the stream), so
// the NI wake heap and idle-cycle fast-forward work unchanged, and both
// draw from the same cached per-seed replica streams — runs are
// deterministic and bit-identical across shard counts for either source.
//
// # Hotspot semantics
//
// Hotspot sends HotFrac of each node's messages to one hot node and draws
// the background remainder uniformly over all other nodes *excluding* the
// hot node, so the hot node's received share is exactly HotFrac plus its
// own silence — not HotFrac diluted by a background draw that could also
// land on it. The exclusion preserves the RNG draw count (one background
// draw per message), keeping streams aligned with earlier releases.
package traffic

import (
	"fmt"
	"math/bits"
	"math/rand"

	"lapses/internal/topology"
)

// Pattern maps a source node to a destination for each generated message.
type Pattern interface {
	Name() string
	// Dest returns the destination for a message from src, or false when
	// the pattern sends nothing from this node (e.g. the diagonal of a
	// transpose). rng is used only by randomized patterns.
	Dest(src topology.NodeID, rng *rand.Rand) (topology.NodeID, bool)
}

// Kind names a traffic pattern.
type Kind int

const (
	// Uniform picks destinations uniformly among all other nodes.
	Uniform Kind = iota
	// Transpose sends (x, y) to (y, x); the diagonal is silent.
	Transpose
	// BitReversal sends node b_{n-1}...b_0 to b_0...b_{n-1}.
	BitReversal
	// Shuffle (perfect shuffle) rotates the node address left by one bit.
	Shuffle
	// BitComplement sends node b to ^b.
	BitComplement
	// Tornado sends k/2-1 hops around each dimension.
	Tornado
	// Hotspot sends a fraction of traffic to one hot node, the rest
	// uniformly.
	Hotspot
	// Neighbor sends to the +X neighbor (edge nodes are silent).
	Neighbor
)

// Kinds lists all patterns; the first four are the paper's.
var Kinds = []Kind{Uniform, Transpose, BitReversal, Shuffle, BitComplement, Tornado, Hotspot, Neighbor}

func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Transpose:
		return "transpose"
	case BitReversal:
		return "bit-reversal"
	case Shuffle:
		return "shuffle"
	case BitComplement:
		return "bit-complement"
	case Tornado:
		return "tornado"
	case Hotspot:
		return "hotspot"
	case Neighbor:
		return "neighbor"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a pattern name to its Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("traffic: unknown pattern %q", s)
}

// New builds a pattern for the given topology. Permutation patterns
// requiring power-of-two node counts (bit-reversal, shuffle, complement)
// panic on other sizes, as in the literature they are defined over address
// bits.
func New(k Kind, m *topology.Mesh) Pattern {
	switch k {
	case Uniform:
		return uniform{n: m.N()}
	case Transpose:
		return transpose{m: m}
	case BitReversal:
		return bitPattern{n: m.N(), name: "bit-reversal", f: reverseBits}
	case Shuffle:
		return bitPattern{n: m.N(), name: "shuffle", f: shuffleBits}
	case BitComplement:
		return bitPattern{n: m.N(), name: "bit-complement", f: complementBits}
	case Tornado:
		return tornado{m: m}
	case Hotspot:
		return hotspot{n: m.N(), hot: topology.NodeID(m.N() / 2), frac: 0.1}
	case Neighbor:
		return neighbor{m: m}
	}
	panic("traffic: unknown kind")
}

// FilterDest wraps a pattern so destinations rejected by ok are redrawn.
// Randomized patterns redraw until an acceptable destination appears;
// deterministic patterns aimed at a rejected destination fall silent
// (Dest returns false), the same contract as a transpose diagonal. The
// fault subsystem uses this to keep traffic off dead routers.
func FilterDest(p Pattern, ok func(topology.NodeID) bool) Pattern {
	return filtered{inner: p, ok: ok}
}

type filtered struct {
	inner Pattern
	ok    func(topology.NodeID) bool
}

func (f filtered) Name() string { return f.inner.Name() }

func (f filtered) Dest(src topology.NodeID, rng *rand.Rand) (topology.NodeID, bool) {
	// A deterministic pattern aimed at a rejected node repeats the same
	// draw every time and falls out after the budget; a randomized
	// pattern failing 64 independent redraws requires nearly every
	// destination to be rejected, so the injection-dropping bias this
	// cutoff introduces is negligible (p^64 for rejection probability p).
	for i := 0; i < 64; i++ {
		dst, ok := f.inner.Dest(src, rng)
		if !ok {
			return topology.InvalidNode, false
		}
		if f.ok(dst) {
			return dst, true
		}
	}
	return topology.InvalidNode, false
}

type uniform struct{ n int }

func (uniform) Name() string { return "uniform" }

func (u uniform) Dest(src topology.NodeID, rng *rand.Rand) (topology.NodeID, bool) {
	d := topology.NodeID(rng.Intn(u.n - 1))
	if d >= src {
		d++
	}
	return d, true
}

type transpose struct{ m *topology.Mesh }

func (transpose) Name() string { return "transpose" }

func (t transpose) Dest(src topology.NodeID, _ *rand.Rand) (topology.NodeID, bool) {
	if t.m.NumDims() != 2 {
		panic("traffic: transpose requires 2 dimensions")
	}
	x, y := t.m.CoordAxis(src, 0), t.m.CoordAxis(src, 1)
	if x == y {
		return src, false
	}
	// Transpose mirrors coordinates; scale when radices differ.
	if t.m.Radix(0) != t.m.Radix(1) {
		panic("traffic: transpose requires a square mesh")
	}
	return t.m.ID(topology.Coord{y, x}), true
}

// bitPattern is a permutation over the bits of the node address.
type bitPattern struct {
	n    int
	name string
	f    func(v, bits int) int
}

func (p bitPattern) Name() string { return p.name }

func (p bitPattern) Dest(src topology.NodeID, _ *rand.Rand) (topology.NodeID, bool) {
	w := bits.Len(uint(p.n - 1))
	if p.n&(p.n-1) != 0 {
		panic(fmt.Sprintf("traffic: %s requires a power-of-two node count, got %d", p.name, p.n))
	}
	d := topology.NodeID(p.f(int(src), w))
	if d == src {
		return src, false
	}
	return d, true
}

func reverseBits(v, w int) int {
	out := 0
	for i := 0; i < w; i++ {
		out = out<<1 | (v>>i)&1
	}
	return out
}

func shuffleBits(v, w int) int {
	return (v<<1 | v>>(w-1)) & (1<<w - 1)
}

func complementBits(v, w int) int {
	return ^v & (1<<w - 1)
}

type tornado struct{ m *topology.Mesh }

func (tornado) Name() string { return "tornado" }

func (t tornado) Dest(src topology.NodeID, _ *rand.Rand) (topology.NodeID, bool) {
	c := t.m.CoordOf(src)
	for d := 0; d < t.m.NumDims(); d++ {
		k := t.m.Radix(d)
		c[d] = (c[d] + (k+1)/2 - 1) % k
	}
	dst := t.m.ID(c)
	if dst == src {
		return src, false
	}
	return dst, true
}

type hotspot struct {
	n    int
	hot  topology.NodeID
	frac float64
}

func (hotspot) Name() string { return "hotspot" }

func (h hotspot) Dest(src topology.NodeID, rng *rand.Rand) (topology.NodeID, bool) {
	if src != h.hot && rng.Float64() < h.frac {
		return h.hot, true
	}
	// Background traffic is uniform over every node except the source and
	// the hot node. Drawing over all other nodes here would hand the hot
	// node an extra (1-frac)/(n-1) of background traffic on top of its
	// dedicated fraction, so the effective hotspot share would not be frac.
	// The draw count stays one Intn per call (plus the one Float64 above
	// for non-hot sources), so the stream stays deterministic per seed.
	if src == h.hot {
		d := topology.NodeID(rng.Intn(h.n - 1))
		if d >= src {
			d++
		}
		return d, true
	}
	if h.n < 3 {
		// Two nodes: the only possible background destination is the hot
		// node itself, so non-hotspot traffic falls silent (like a
		// transpose diagonal).
		return src, false
	}
	d := topology.NodeID(rng.Intn(h.n - 2))
	lo, hi := src, h.hot
	if lo > hi {
		lo, hi = hi, lo
	}
	if d >= lo {
		d++
	}
	if d >= hi {
		d++
	}
	return d, true
}

type neighbor struct{ m *topology.Mesh }

func (neighbor) Name() string { return "neighbor" }

func (nb neighbor) Dest(src topology.NodeID, _ *rand.Rand) (topology.NodeID, bool) {
	d, ok := nb.m.Neighbor(src, topology.PortPlus(0))
	if !ok {
		return src, false
	}
	return d, true
}

// Source is one node's message-generation process: the stationary Poisson
// Injector or the bursty MMPP on/off source. The NI polls Due each active
// cycle and parks on NextAt between arrivals, so both methods must agree:
// NextAt is the first cycle for which Due would report a message, and
// peeking never advances the process.
type Source interface {
	// RNG exposes the source's random stream for destination (and QoS
	// class) draws, so one node's process stays a single deterministic
	// stream.
	RNG() *rand.Rand
	// NextAt returns the cycle of the next arrival, or false when the
	// process never fires again. Peeking does not advance the process.
	NextAt() (int64, bool)
	// Due reports how many messages fire at cycle now, advancing the
	// process.
	Due(now int64) int
}

// Injector drives one node's Poisson message-generation process.
type Injector struct {
	rate float64 // messages per cycle
	rng  *rand.Rand
	next float64
}

// NewInjector returns an injector generating messages at the given rate
// (messages/cycle) with exponential inter-arrival times. A rate of zero
// never fires. The generator is a cached-seed replica of math/rand's
// source (see rng.go), producing identical streams to rand.NewSource.
func NewInjector(rate float64, seed int64) *Injector {
	inj := &Injector{rate: rate, rng: rand.New(newFibSource(seed))}
	if rate > 0 {
		inj.next = inj.rng.ExpFloat64() / rate
	}
	return inj
}

// RNG exposes the injector's random stream for destination draws so one
// node's process stays a single deterministic stream.
func (inj *Injector) RNG() *rand.Rand { return inj.rng }

// NextAt returns the cycle of the next arrival — the first t for which
// Due(t) would report a message — or false when the process never fires.
// Peeking does not advance the process, so a caller may sleep until the
// returned cycle and observe exactly the arrivals a per-cycle Due poll
// would have seen.
func (inj *Injector) NextAt() (int64, bool) {
	if inj.rate <= 0 {
		return 0, false
	}
	return int64(inj.next), true
}

// Due reports how many messages fire at cycle now, advancing the process.
func (inj *Injector) Due(now int64) int {
	if inj.rate <= 0 {
		return 0
	}
	n := 0
	for inj.next < float64(now+1) {
		n++
		inj.next += inj.rng.ExpFloat64() / inj.rate
	}
	return n
}

// Burst parameterizes the two-state MMPP on/off source: a Markov-
// modulated Poisson process that alternates exponentially-distributed ON
// periods (Poisson arrivals at rate/OnFrac) with silent OFF periods, so
// the long-run mean rate equals the configured rate while arrivals cluster
// into bursts. Smaller OnFrac means burstier traffic at the same offered
// load; MeanOn sets the burst time scale.
type Burst struct {
	// OnFrac is the long-run fraction of time the source spends in the ON
	// state, in (0, 1]. OnFrac 1 degenerates to the stationary Poisson
	// source.
	OnFrac float64
	// MeanOn is the mean ON-period duration in cycles (> 0). The mean OFF
	// period follows as MeanOn*(1-OnFrac)/OnFrac.
	MeanOn float64
}

// Validate reports parameter errors.
func (b Burst) Validate() error {
	if !(b.OnFrac > 0 && b.OnFrac <= 1) {
		return fmt.Errorf("traffic: Burst.OnFrac %g outside (0, 1]", b.OnFrac)
	}
	if !(b.MeanOn > 0) {
		return fmt.Errorf("traffic: Burst.MeanOn %g must be positive", b.MeanOn)
	}
	return nil
}

// MMPP is the bursty two-state source. It implements Source with the same
// peek/advance contract as Injector: the next arrival is always
// precomputed, so NextAt never draws from the stream.
type MMPP struct {
	onRate float64 // arrival rate while ON (messages/cycle)
	muOn   float64 // mean ON sojourn, cycles
	muOff  float64 // mean OFF sojourn, cycles
	rng    *rand.Rand
	// cur is the process time the generator has advanced to; on/end are
	// the current modulating state and its end time; next is the
	// precomputed next arrival.
	cur, end float64
	on       bool
	next     float64
}

// NewMMPP returns an MMPP source with long-run mean rate `rate`
// (messages/cycle) under the given burst parameters. A rate of zero never
// fires. The random stream is the same cached-seed replica Injector uses,
// so swapping source types never perturbs other nodes' streams.
func NewMMPP(rate float64, b Burst, seed int64) *MMPP {
	if err := b.Validate(); err != nil {
		panic(err)
	}
	s := &MMPP{
		onRate: rate / b.OnFrac,
		muOn:   b.MeanOn,
		muOff:  b.MeanOn * (1 - b.OnFrac) / b.OnFrac,
		rng:    rand.New(newFibSource(seed)),
		on:     true,
	}
	if rate > 0 {
		s.end = s.rng.ExpFloat64() * s.muOn
		s.advance()
	}
	return s
}

// advance precomputes the next arrival time, walking the modulating chain
// across state boundaries. Truncating an exponential inter-arrival draw at
// the ON-period boundary and redrawing in the next ON period is exact by
// memorylessness.
func (s *MMPP) advance() {
	for {
		if s.on {
			gap := s.rng.ExpFloat64() / s.onRate
			if s.cur+gap <= s.end {
				s.cur += gap
				s.next = s.cur
				return
			}
			s.cur = s.end
			s.on = false
			if s.muOff <= 0 {
				// OnFrac 1: a single everlasting ON period.
				s.on = true
				s.end = s.cur + s.rng.ExpFloat64()*s.muOn
				continue
			}
			s.end = s.cur + s.rng.ExpFloat64()*s.muOff
		} else {
			s.cur = s.end
			s.on = true
			s.end = s.cur + s.rng.ExpFloat64()*s.muOn
		}
	}
}

// RNG implements Source.
func (s *MMPP) RNG() *rand.Rand { return s.rng }

// NextAt implements Source: the cycle of the precomputed next arrival.
func (s *MMPP) NextAt() (int64, bool) {
	if s.onRate <= 0 {
		return 0, false
	}
	return int64(s.next), true
}

// Due implements Source.
func (s *MMPP) Due(now int64) int {
	if s.onRate <= 0 {
		return 0
	}
	n := 0
	for s.next < float64(now+1) {
		n++
		s.advance()
	}
	return n
}

// MessageRate converts a normalized load into messages/cycle/node for the
// given topology and message length: load 1.0 saturates the bisection
// under uniform traffic.
func MessageRate(m *topology.Mesh, load float64, msgLen int) float64 {
	return load * m.SaturationInjectionRate() / float64(msgLen)
}
