package traffic

import (
	"math/rand"
	"testing"
)

// fibSource must reproduce math/rand's streams bit for bit — simulation
// determinism across the whole repo rests on it.
func TestFibSourceMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, -3, 1 << 40, 89482311} {
		ref := rand.New(rand.NewSource(seed))
		got := rand.New(newFibSource(seed))
		for i := 0; i < 2000; i++ {
			if r, g := ref.Int63(), got.Int63(); r != g {
				t.Fatalf("seed %d: Int63 #%d = %d want %d", seed, i, g, r)
			}
		}
		// Derived distributions exercise Uint64/Int63 consumption paths.
		ref = rand.New(rand.NewSource(seed))
		got = rand.New(newFibSource(seed))
		for i := 0; i < 2000; i++ {
			if r, g := ref.ExpFloat64(), got.ExpFloat64(); r != g {
				t.Fatalf("seed %d: ExpFloat64 #%d = %v want %v", seed, i, g, r)
			}
			if r, g := ref.Intn(4096), got.Intn(4096); r != g {
				t.Fatalf("seed %d: Intn #%d = %d want %d", seed, i, g, r)
			}
			if r, g := ref.Float64(), got.Float64(); r != g {
				t.Fatalf("seed %d: Float64 #%d = %v want %v", seed, i, g, r)
			}
		}
	}
}

// The cache must hand out independent states: advancing one clone may not
// perturb another.
func TestFibSourceCloneIndependence(t *testing.T) {
	a := newFibSource(42)
	for i := 0; i < 100; i++ {
		a.Uint64()
	}
	b := newFibSource(42)
	ref := rand.NewSource(42)
	for i := 0; i < 100; i++ {
		if r, g := ref.Int63(), b.Int63(); r != g {
			t.Fatalf("clone diverged at #%d: %d want %d", i, g, r)
		}
	}
}
