package traffic

import (
	"math"
	"math/rand"
	"testing"

	"lapses/internal/topology"
)

func TestUniformExcludesSelfAndCoversAll(t *testing.T) {
	m := topology.NewMesh(4, 4)
	p := New(Uniform, m)
	rng := rand.New(rand.NewSource(1))
	seen := map[topology.NodeID]bool{}
	for i := 0; i < 5000; i++ {
		d, ok := p.Dest(5, rng)
		if !ok {
			t.Fatal("uniform must always send")
		}
		if d == 5 {
			t.Fatal("uniform sent to self")
		}
		seen[d] = true
	}
	if len(seen) != 15 {
		t.Errorf("uniform covered %d destinations, want 15", len(seen))
	}
}

func TestTranspose(t *testing.T) {
	m := topology.NewMesh(16, 16)
	p := New(Transpose, m)
	d, ok := p.Dest(m.ID(topology.Coord{3, 7}), nil)
	if !ok || d != m.ID(topology.Coord{7, 3}) {
		t.Errorf("transpose(3,7) = %d,%v", d, ok)
	}
	if _, ok := p.Dest(m.ID(topology.Coord{5, 5}), nil); ok {
		t.Error("diagonal node should be silent")
	}
}

func TestBitReversal(t *testing.T) {
	m := topology.NewMesh(16, 16)
	p := New(BitReversal, m)
	// Node 1 = 00000001b reverses to 10000000b = 128.
	d, ok := p.Dest(1, nil)
	if !ok || d != 128 {
		t.Errorf("bitrev(1) = %d,%v want 128", d, ok)
	}
	// Palindromic addresses are silent.
	if _, ok := p.Dest(0, nil); ok {
		t.Error("bitrev(0) should be silent")
	}
}

func TestShuffle(t *testing.T) {
	m := topology.NewMesh(16, 16)
	p := New(Shuffle, m)
	// 10000000b -> 00000001b.
	d, ok := p.Dest(128, nil)
	if !ok || d != 1 {
		t.Errorf("shuffle(128) = %d,%v want 1", d, ok)
	}
	d, ok = p.Dest(3, nil)
	if !ok || d != 6 {
		t.Errorf("shuffle(3) = %d,%v want 6", d, ok)
	}
}

func TestBitComplement(t *testing.T) {
	m := topology.NewMesh(16, 16)
	p := New(BitComplement, m)
	d, ok := p.Dest(0, nil)
	if !ok || d != 255 {
		t.Errorf("complement(0) = %d,%v want 255", d, ok)
	}
}

func TestTornado(t *testing.T) {
	m := topology.NewMesh(8, 8)
	p := New(Tornado, m)
	d, ok := p.Dest(m.ID(topology.Coord{0, 0}), nil)
	if !ok || d != m.ID(topology.Coord{3, 3}) {
		t.Errorf("tornado(0,0) = %d,%v want (3,3)", d, ok)
	}
}

func TestHotspotBias(t *testing.T) {
	m := topology.NewMesh(8, 8)
	p := New(Hotspot, m)
	rng := rand.New(rand.NewSource(2))
	hot := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		d, ok := p.Dest(3, rng)
		if !ok {
			t.Fatal("hotspot must always send")
		}
		if d == 32 {
			hot++
		}
	}
	frac := float64(hot) / trials
	// 10% direct + uniform share.
	if frac < 0.08 || frac > 0.16 {
		t.Errorf("hotspot fraction = %v", frac)
	}
}

func TestNeighborEdgeSilent(t *testing.T) {
	m := topology.NewMesh(4, 4)
	p := New(Neighbor, m)
	if _, ok := p.Dest(3, nil); ok {
		t.Error("east-edge node should be silent")
	}
	d, ok := p.Dest(0, nil)
	if !ok || d != 1 {
		t.Errorf("neighbor(0) = %d,%v want 1", d, ok)
	}
}

func TestPermutationsAreBijections(t *testing.T) {
	m := topology.NewMesh(16, 16)
	for _, k := range []Kind{Transpose, BitReversal, Shuffle, BitComplement} {
		p := New(k, m)
		seen := map[topology.NodeID]bool{}
		for src := topology.NodeID(0); int(src) < m.N(); src++ {
			d, ok := p.Dest(src, nil)
			if !ok {
				continue
			}
			if seen[d] {
				t.Errorf("%s: destination %d hit twice", p.Name(), d)
			}
			seen[d] = true
		}
	}
}

func TestInjectorRate(t *testing.T) {
	inj := NewInjector(0.05, 42)
	total := 0
	const cycles = 200000
	for c := int64(0); c < cycles; c++ {
		total += inj.Due(c)
	}
	got := float64(total) / cycles
	if math.Abs(got-0.05) > 0.002 {
		t.Errorf("measured rate %v want 0.05", got)
	}
}

func TestInjectorZeroRate(t *testing.T) {
	inj := NewInjector(0, 1)
	for c := int64(0); c < 1000; c++ {
		if inj.Due(c) != 0 {
			t.Fatal("zero-rate injector fired")
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	a, b := NewInjector(0.1, 7), NewInjector(0.1, 7)
	for c := int64(0); c < 5000; c++ {
		if a.Due(c) != b.Due(c) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestMessageRate(t *testing.T) {
	m := topology.NewMesh(16, 16)
	// Load 1.0, 20-flit messages: 0.25/20 = 0.0125 msgs/cycle/node.
	if r := MessageRate(m, 1.0, 20); math.Abs(r-0.0125) > 1e-12 {
		t.Errorf("MessageRate = %v want 0.0125", r)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v failed", k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("expected error")
	}
}

// TestHotspotBackgroundExcludesHotNode pins the bugfix: background traffic
// must never land on the hot node (its only inbound bias is the direct
// frac draw), and the hot node's own traffic is uniform over the rest.
func TestHotspotBackgroundExcludesHotNode(t *testing.T) {
	m := topology.NewMesh(8, 8)
	p := New(Hotspot, m)
	hot := topology.NodeID(32)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		src := topology.NodeID(rng.Intn(m.N()))
		d, ok := p.Dest(src, rng)
		if !ok {
			t.Fatal("hotspot must always send")
		}
		if d == src {
			t.Fatalf("node %d sent to itself", src)
		}
		if src == hot && d == hot {
			t.Fatal("hot node sent to itself")
		}
	}
	// From a non-hot source, every hit on the hot node must come from the
	// direct draw: over many trials the hot fraction must match frac
	// closely, with no uniform-background leakage inflating it.
	hits := 0
	const trials = 200000
	for i := 0; i < trials; i++ {
		d, _ := p.Dest(3, rng)
		if d == hot {
			hits++
		}
	}
	frac := float64(hits) / trials
	if math.Abs(frac-0.1) > 0.005 {
		t.Errorf("hot fraction = %v, want 0.1 (background must exclude hot node)", frac)
	}
}

// TestHotspotReceivedDistribution is the chi-square-style regression test:
// with the fix, each non-hot node receives an equal background share and
// the hot node receives exactly the direct frac traffic.
func TestHotspotReceivedDistribution(t *testing.T) {
	m := topology.NewMesh(8, 8)
	p := New(Hotspot, m)
	n := m.N()
	hot := topology.NodeID(32)
	rng := rand.New(rand.NewSource(4))
	recv := make([]int, n)
	const rounds = 4000 // every node sends once per round
	total := 0
	for r := 0; r < rounds; r++ {
		for src := topology.NodeID(0); int(src) < n; src++ {
			d, ok := p.Dest(src, rng)
			if !ok {
				t.Fatal("hotspot must always send")
			}
			recv[d]++
			total++
		}
	}
	// Expected receive probability per destination, summed over sources:
	// hot: 63 sources * 0.1 direct. Non-hot j: background share
	// 0.9/(n-2) from each of the 62 non-hot sources != j, plus 1/(n-1)
	// from the hot node.
	expHot := float64(n-1) * 0.1 * float64(rounds)
	expBg := (float64(n-2)*0.9/float64(n-2) + 1.0/float64(n-1)) * float64(rounds)
	chi2 := 0.0
	for id, got := range recv {
		exp := expBg
		if topology.NodeID(id) == hot {
			exp = expHot
		}
		d := float64(got) - exp
		chi2 += d * d / exp
	}
	// 63 degrees of freedom; 99.9th percentile ~ 103. Generous bound so
	// the test only fails on a real distribution change, not on noise.
	if chi2 > 120 {
		t.Errorf("chi-square = %.1f against fixed model (df=63); received distribution drifted", chi2)
	}
}

func TestHotspotTwoNodeGuard(t *testing.T) {
	m := topology.NewMesh(2) // 1-D, two nodes
	p := New(Hotspot, m)
	rng := rand.New(rand.NewSource(5))
	// Hot node is 1 (N()/2). Node 0 either hits the direct draw or falls
	// silent; it must never panic or send to itself.
	for i := 0; i < 1000; i++ {
		if d, ok := p.Dest(0, rng); ok && d != 1 {
			t.Fatalf("2-node hotspot sent to %d", d)
		}
		if d, ok := p.Dest(1, rng); ok && d != 0 {
			t.Fatalf("2-node hot source sent to %d", d)
		}
	}
}

func TestMMPPMeanRate(t *testing.T) {
	src := NewMMPP(0.05, Burst{OnFrac: 0.25, MeanOn: 100}, 42)
	total := 0
	const cycles = 400000
	for c := int64(0); c < cycles; c++ {
		total += src.Due(c)
	}
	got := float64(total) / cycles
	if math.Abs(got-0.05) > 0.004 {
		t.Errorf("measured mean rate %v want 0.05", got)
	}
}

// TestMMPPBurstier checks the point of the source: at the same mean rate,
// arrivals cluster. The variance of per-window counts must exceed the
// Poisson variance (index of dispersion > 1).
func TestMMPPBurstier(t *testing.T) {
	src := NewMMPP(0.05, Burst{OnFrac: 0.2, MeanOn: 200}, 9)
	const window, nWin = 100, 2000
	counts := make([]float64, nWin)
	for w := 0; w < nWin; w++ {
		c := 0
		for i := 0; i < window; i++ {
			c += src.Due(int64(w*window + i))
		}
		counts[w] = float64(c)
	}
	var mean, m2 float64
	for _, c := range counts {
		mean += c
	}
	mean /= nWin
	for _, c := range counts {
		m2 += (c - mean) * (c - mean)
	}
	varc := m2 / nWin
	if varc/mean < 1.5 {
		t.Errorf("index of dispersion %v; MMPP should be markedly burstier than Poisson (1.0)", varc/mean)
	}
}

func TestMMPPNextAtMatchesDue(t *testing.T) {
	a := NewMMPP(0.02, Burst{OnFrac: 0.3, MeanOn: 50}, 11)
	b := NewMMPP(0.02, Burst{OnFrac: 0.3, MeanOn: 50}, 11)
	for c := int64(0); c < 20000; c++ {
		next, ok := a.NextAt()
		if !ok {
			t.Fatal("positive-rate MMPP reported no next arrival")
		}
		n := a.Due(c)
		if next <= c && n == 0 {
			t.Fatalf("NextAt=%d at cycle %d but Due fired nothing", next, c)
		}
		if next > c && n != 0 {
			t.Fatalf("NextAt=%d at cycle %d but Due fired %d", next, c, n)
		}
		if n != b.Due(c) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestMMPPZeroRate(t *testing.T) {
	src := NewMMPP(0, Burst{OnFrac: 0.5, MeanOn: 10}, 1)
	if _, ok := src.NextAt(); ok {
		t.Error("zero-rate MMPP reported a next arrival")
	}
	for c := int64(0); c < 1000; c++ {
		if src.Due(c) != 0 {
			t.Fatal("zero-rate MMPP fired")
		}
	}
}

func TestMMPPDegeneratesToPoisson(t *testing.T) {
	// OnFrac 1 must behave like a plain Poisson source at the same rate.
	src := NewMMPP(0.05, Burst{OnFrac: 1, MeanOn: 100}, 13)
	total := 0
	const cycles = 200000
	for c := int64(0); c < cycles; c++ {
		total += src.Due(c)
	}
	got := float64(total) / cycles
	if math.Abs(got-0.05) > 0.003 {
		t.Errorf("OnFrac=1 mean rate %v want 0.05", got)
	}
}

func TestBurstValidate(t *testing.T) {
	for _, b := range []Burst{{0, 10}, {-0.1, 10}, {1.5, 10}, {0.5, 0}, {0.5, -3}} {
		if err := b.Validate(); err == nil {
			t.Errorf("Burst%+v should be invalid", b)
		}
	}
	if err := (Burst{OnFrac: 0.25, MeanOn: 100}).Validate(); err != nil {
		t.Errorf("valid burst rejected: %v", err)
	}
}

func TestBitPatternRequiresPow2(t *testing.T) {
	m := topology.NewMesh(3, 3)
	p := New(BitReversal, m)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two network")
		}
	}()
	p.Dest(1, nil)
}
