package traffic

import (
	"math"
	"math/rand"
	"testing"

	"lapses/internal/topology"
)

func TestUniformExcludesSelfAndCoversAll(t *testing.T) {
	m := topology.NewMesh(4, 4)
	p := New(Uniform, m)
	rng := rand.New(rand.NewSource(1))
	seen := map[topology.NodeID]bool{}
	for i := 0; i < 5000; i++ {
		d, ok := p.Dest(5, rng)
		if !ok {
			t.Fatal("uniform must always send")
		}
		if d == 5 {
			t.Fatal("uniform sent to self")
		}
		seen[d] = true
	}
	if len(seen) != 15 {
		t.Errorf("uniform covered %d destinations, want 15", len(seen))
	}
}

func TestTranspose(t *testing.T) {
	m := topology.NewMesh(16, 16)
	p := New(Transpose, m)
	d, ok := p.Dest(m.ID(topology.Coord{3, 7}), nil)
	if !ok || d != m.ID(topology.Coord{7, 3}) {
		t.Errorf("transpose(3,7) = %d,%v", d, ok)
	}
	if _, ok := p.Dest(m.ID(topology.Coord{5, 5}), nil); ok {
		t.Error("diagonal node should be silent")
	}
}

func TestBitReversal(t *testing.T) {
	m := topology.NewMesh(16, 16)
	p := New(BitReversal, m)
	// Node 1 = 00000001b reverses to 10000000b = 128.
	d, ok := p.Dest(1, nil)
	if !ok || d != 128 {
		t.Errorf("bitrev(1) = %d,%v want 128", d, ok)
	}
	// Palindromic addresses are silent.
	if _, ok := p.Dest(0, nil); ok {
		t.Error("bitrev(0) should be silent")
	}
}

func TestShuffle(t *testing.T) {
	m := topology.NewMesh(16, 16)
	p := New(Shuffle, m)
	// 10000000b -> 00000001b.
	d, ok := p.Dest(128, nil)
	if !ok || d != 1 {
		t.Errorf("shuffle(128) = %d,%v want 1", d, ok)
	}
	d, ok = p.Dest(3, nil)
	if !ok || d != 6 {
		t.Errorf("shuffle(3) = %d,%v want 6", d, ok)
	}
}

func TestBitComplement(t *testing.T) {
	m := topology.NewMesh(16, 16)
	p := New(BitComplement, m)
	d, ok := p.Dest(0, nil)
	if !ok || d != 255 {
		t.Errorf("complement(0) = %d,%v want 255", d, ok)
	}
}

func TestTornado(t *testing.T) {
	m := topology.NewMesh(8, 8)
	p := New(Tornado, m)
	d, ok := p.Dest(m.ID(topology.Coord{0, 0}), nil)
	if !ok || d != m.ID(topology.Coord{3, 3}) {
		t.Errorf("tornado(0,0) = %d,%v want (3,3)", d, ok)
	}
}

func TestHotspotBias(t *testing.T) {
	m := topology.NewMesh(8, 8)
	p := New(Hotspot, m)
	rng := rand.New(rand.NewSource(2))
	hot := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		d, ok := p.Dest(3, rng)
		if !ok {
			t.Fatal("hotspot must always send")
		}
		if d == 32 {
			hot++
		}
	}
	frac := float64(hot) / trials
	// 10% direct + uniform share.
	if frac < 0.08 || frac > 0.16 {
		t.Errorf("hotspot fraction = %v", frac)
	}
}

func TestNeighborEdgeSilent(t *testing.T) {
	m := topology.NewMesh(4, 4)
	p := New(Neighbor, m)
	if _, ok := p.Dest(3, nil); ok {
		t.Error("east-edge node should be silent")
	}
	d, ok := p.Dest(0, nil)
	if !ok || d != 1 {
		t.Errorf("neighbor(0) = %d,%v want 1", d, ok)
	}
}

func TestPermutationsAreBijections(t *testing.T) {
	m := topology.NewMesh(16, 16)
	for _, k := range []Kind{Transpose, BitReversal, Shuffle, BitComplement} {
		p := New(k, m)
		seen := map[topology.NodeID]bool{}
		for src := topology.NodeID(0); int(src) < m.N(); src++ {
			d, ok := p.Dest(src, nil)
			if !ok {
				continue
			}
			if seen[d] {
				t.Errorf("%s: destination %d hit twice", p.Name(), d)
			}
			seen[d] = true
		}
	}
}

func TestInjectorRate(t *testing.T) {
	inj := NewInjector(0.05, 42)
	total := 0
	const cycles = 200000
	for c := int64(0); c < cycles; c++ {
		total += inj.Due(c)
	}
	got := float64(total) / cycles
	if math.Abs(got-0.05) > 0.002 {
		t.Errorf("measured rate %v want 0.05", got)
	}
}

func TestInjectorZeroRate(t *testing.T) {
	inj := NewInjector(0, 1)
	for c := int64(0); c < 1000; c++ {
		if inj.Due(c) != 0 {
			t.Fatal("zero-rate injector fired")
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	a, b := NewInjector(0.1, 7), NewInjector(0.1, 7)
	for c := int64(0); c < 5000; c++ {
		if a.Due(c) != b.Due(c) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestMessageRate(t *testing.T) {
	m := topology.NewMesh(16, 16)
	// Load 1.0, 20-flit messages: 0.25/20 = 0.0125 msgs/cycle/node.
	if r := MessageRate(m, 1.0, 20); math.Abs(r-0.0125) > 1e-12 {
		t.Errorf("MessageRate = %v want 0.0125", r)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v failed", k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("expected error")
	}
}

func TestBitPatternRequiresPow2(t *testing.T) {
	m := topology.NewMesh(3, 3)
	p := New(BitReversal, m)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two network")
		}
	}()
	p.Dest(1, nil)
}
