package traffic

import (
	"math/rand"
	"testing"

	"lapses/internal/topology"
)

// FilterDest against a randomized pattern must redraw past rejected
// destinations essentially always — a rejected node must not silently
// bias the offered load by dropping injections.
func TestFilterDestRedrawsRandomPattern(t *testing.T) {
	m := topology.NewMesh(4, 4)
	dead := topology.NodeID(5)
	p := FilterDest(New(Uniform, m), func(id topology.NodeID) bool { return id != dead })
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		dst, ok := p.Dest(0, rng)
		if !ok {
			t.Fatalf("draw %d: uniform pattern with one rejected node fell silent", i)
		}
		if dst == dead {
			t.Fatalf("draw %d: rejected destination %d returned", i, dst)
		}
	}
}

// A deterministic pattern aimed at a rejected destination falls silent
// instead of spinning or returning the dead node.
func TestFilterDestSilencesDeterministicPattern(t *testing.T) {
	m := topology.NewMesh(4, 4)
	// Transpose sends (1,0) -> (0,1) = node 4; reject it.
	p := FilterDest(New(Transpose, m), func(id topology.NodeID) bool { return id != 4 })
	rng := rand.New(rand.NewSource(1))
	src := m.ID(topology.Coord{1, 0})
	if dst, ok := p.Dest(src, rng); ok {
		t.Fatalf("deterministic pattern at a rejected destination returned %d", dst)
	}
	// Other sources are unaffected.
	other := m.ID(topology.Coord{2, 0})
	if dst, ok := p.Dest(other, rng); !ok || dst != m.ID(topology.Coord{0, 2}) {
		t.Fatalf("unaffected source misrouted: %d %t", dst, ok)
	}
}
