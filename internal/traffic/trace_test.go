package traffic

import (
	"strings"
	"testing"

	"lapses/internal/topology"
)

func TestNewTraceValidates(t *testing.T) {
	if _, err := NewTrace([]TraceMsg{{At: 0, Src: 1, Dst: 1, Length: 5}}); err == nil {
		t.Error("src==dst accepted")
	}
	if _, err := NewTrace([]TraceMsg{{At: 0, Src: 1, Dst: 2, Length: 0}}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := NewTrace([]TraceMsg{{At: -1, Src: 1, Dst: 2, Length: 5}}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestTraceCursorOrdering(t *testing.T) {
	tr, err := NewTrace([]TraceMsg{
		{At: 30, Src: 1, Dst: 2, Length: 5},
		{At: 10, Src: 1, Dst: 3, Length: 5},
		{At: 20, Src: 2, Dst: 3, Length: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 3 {
		t.Fatalf("total = %d", tr.Total())
	}
	c := tr.Cursor(1)
	if due := c.Due(5); len(due) != 0 {
		t.Fatalf("early due = %v", due)
	}
	due := c.Due(10)
	if len(due) != 1 || due[0].Dst != 3 {
		t.Fatalf("due@10 = %v", due)
	}
	due = c.Due(100)
	if len(due) != 1 || due[0].Dst != 2 {
		t.Fatalf("due@100 = %v", due)
	}
	if c.Remaining() != 0 {
		t.Fatalf("remaining = %d", c.Remaining())
	}
	// Nodes without events yield an empty cursor.
	if tr.Cursor(9).Remaining() != 0 {
		t.Error("empty cursor should have nothing")
	}
}

func TestParseTrace(t *testing.T) {
	in := `# cycle src dst flits
0 0 5 20

10 3 7 4
`
	tr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 2 {
		t.Fatalf("total = %d", tr.Total())
	}
	due := tr.Cursor(3).Due(10)
	if len(due) != 1 || due[0].Dst != 7 || due[0].Length != 4 {
		t.Fatalf("parsed = %+v", due)
	}
}

func TestParseTraceErrors(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader("0 0 garbage 20")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseTrace(strings.NewReader("0 4 4 20")); err == nil {
		t.Error("self-message accepted")
	}
}

func TestStencilTrace(t *testing.T) {
	m := topology.NewMesh(4, 4)
	tr := StencilTrace(m, 3, 100, 8)
	// Directed neighbor pairs in a 4x4 mesh: 2*2*4*3 = 48 per iteration.
	if tr.Total() != 3*48 {
		t.Fatalf("total = %d want %d", tr.Total(), 3*48)
	}
	// A corner node has 2 neighbors: 2 messages per iteration.
	c := tr.Cursor(0)
	if got := len(c.Due(0)); got != 2 {
		t.Fatalf("corner due@0 = %d want 2", got)
	}
	if got := len(c.Due(100)); got != 2 {
		t.Fatalf("corner due@100 = %d want 2", got)
	}
	// An interior node has 4.
	ci := tr.Cursor(m.ID(topology.Coord{1, 1}))
	if got := len(ci.Due(0)); got != 4 {
		t.Fatalf("interior due@0 = %d want 4", got)
	}
}
