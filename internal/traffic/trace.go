package traffic

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"lapses/internal/topology"
)

// TraceMsg is one message of a trace-driven workload: inject a message of
// Length flits from Src to Dst at cycle At (or as soon after as the source
// queue drains). Traces model application workloads — the evaluation the
// paper's conclusion lists as future work — such as bulk-synchronous
// exchanges or collected communication logs.
type TraceMsg struct {
	At     int64
	Src    topology.NodeID
	Dst    topology.NodeID
	Length int
}

// Trace is a time-sorted message list.
type Trace struct {
	byNode map[topology.NodeID][]TraceMsg
	total  int
}

// NewTrace builds a trace from events; they need not be sorted. Messages
// with Src == Dst or non-positive length are rejected.
func NewTrace(msgs []TraceMsg) (*Trace, error) {
	t := &Trace{byNode: make(map[topology.NodeID][]TraceMsg)}
	for i, m := range msgs {
		if m.Src == m.Dst {
			return nil, fmt.Errorf("traffic: trace[%d] has src == dst (%d)", i, m.Src)
		}
		if m.Length < 1 {
			return nil, fmt.Errorf("traffic: trace[%d] has length %d", i, m.Length)
		}
		if m.At < 0 {
			return nil, fmt.Errorf("traffic: trace[%d] has negative time", i)
		}
		t.byNode[m.Src] = append(t.byNode[m.Src], m)
		t.total++
	}
	for n := range t.byNode {
		q := t.byNode[n]
		sort.SliceStable(q, func(i, j int) bool { return q[i].At < q[j].At })
	}
	return t, nil
}

// ParseTrace reads a whitespace-separated text trace, one message per
// line: "<cycle> <src> <dst> <flits>". Blank lines and lines starting
// with '#' are ignored.
func ParseTrace(r io.Reader) (*Trace, error) {
	var msgs []TraceMsg
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		txt := sc.Text()
		if len(txt) == 0 || txt[0] == '#' {
			continue
		}
		var m TraceMsg
		if _, err := fmt.Sscan(txt, &m.At, &m.Src, &m.Dst, &m.Length); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: %v", line, err)
		}
		msgs = append(msgs, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewTrace(msgs)
}

// Total returns the number of messages in the trace.
func (t *Trace) Total() int { return t.total }

// Cursor returns a per-node consumer of the trace, used by one NI.
func (t *Trace) Cursor(node topology.NodeID) *TraceCursor {
	return &TraceCursor{queue: t.byNode[node]}
}

// TraceCursor walks one node's share of a trace in time order.
type TraceCursor struct {
	queue []TraceMsg
	next  int
}

// Due returns the messages whose injection time has arrived, advancing the
// cursor.
func (c *TraceCursor) Due(now int64) []TraceMsg {
	start := c.next
	for c.next < len(c.queue) && c.queue[c.next].At <= now {
		c.next++
	}
	return c.queue[start:c.next]
}

// NextAt returns the injection cycle of the next unreleased message, or
// false when the cursor is exhausted. Like Injector.NextAt, it lets an
// idle consumer sleep until the next message is due instead of polling
// Due every cycle.
func (c *TraceCursor) NextAt() (int64, bool) {
	if c.next >= len(c.queue) {
		return 0, false
	}
	return c.queue[c.next].At, true
}

// Remaining returns how many messages the cursor has not yet released.
func (c *TraceCursor) Remaining() int { return len(c.queue) - c.next }

// StencilTrace synthesizes a bulk-synchronous stencil exchange: every
// iteration, every node sends one message of msgLen flits to each of its
// mesh neighbors, with iterations period cycles apart. This is the
// communication skeleton of iterative PDE solvers, a canonical "fine grain
// parallel application" workload from the paper's introduction.
func StencilTrace(m *topology.Mesh, iterations int, period int64, msgLen int) *Trace {
	var msgs []TraceMsg
	for it := 0; it < iterations; it++ {
		at := int64(it) * period
		for id := topology.NodeID(0); int(id) < m.N(); id++ {
			for p := topology.Port(1); int(p) < m.NumPorts(); p++ {
				nb, ok := m.Neighbor(id, p)
				if !ok {
					continue
				}
				msgs = append(msgs, TraceMsg{At: at, Src: id, Dst: nb, Length: msgLen})
			}
		}
	}
	t, err := NewTrace(msgs)
	if err != nil {
		panic(err) // synthesized trace is always valid
	}
	return t
}
