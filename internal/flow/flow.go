// Package flow defines the units of data movement in the wormhole network:
// messages, the flits they are serialized into, virtual-channel masks, and
// the route-candidate sets produced by routing tables and consumed by the
// path-selection stage. These types are shared between the routing tables,
// the router pipeline, and the traffic generators.
package flow

import (
	"fmt"
	"math/bits"
	"strings"

	"lapses/internal/topology"
)

// MessageID uniquely identifies a message within one simulation.
type MessageID int64

// Message is one wormhole message (the paper's unit of traffic; a constant
// 20 flits in most experiments). Timing fields are filled in as the message
// moves through the network and read by the statistics collector.
type Message struct {
	ID  MessageID
	Src topology.NodeID
	Dst topology.NodeID
	// Length is the message length in flits, including head and tail.
	Length int

	// CreateTime is the cycle the message was generated at the source NI.
	CreateTime int64
	// InjectTime is the cycle the header flit entered the source router.
	InjectTime int64
	// ArriveTime is the cycle the tail flit was delivered at the
	// destination local port.
	ArriveTime int64

	// Hops counts router-to-router link traversals, for path-length stats.
	Hops int

	// Class is the QoS traffic class, fixed at generation: 0 is best-effort
	// and, when the router reserves VCs (router.Config.ResvVCs), excluded
	// from the reserved adaptive VCs; higher classes may claim every VC.
	// Unlike Route/Dateline it is immutable header state, so reading it at
	// any hop is race-free by construction.
	Class uint8

	// Route carries the look-ahead candidate set valid at the router the
	// header flit is traveling toward (the paper's modified header), and
	// Dateline the per-dimension torus wraparound bits. They are per-hop
	// header state, but they ride on the Message rather than the Flit:
	// the header exists at exactly one point of the network at a time, so
	// the SA stage of hop k writes these strictly before the input stage
	// of hop k+1 reads them, and a single shared slot is indistinguishable
	// from a field carried in the flit — while keeping the Flit value,
	// which is copied through every buffer and wheel slot, at 16 bytes.
	Route    RouteSet
	Dateline uint8
	// EscapeCommitted marks a message that has claimed an escape VC under
	// the router's escape-commit discipline (router.Config.EscapeCommit):
	// it rides escape VCs for the rest of its journey. Like Route and
	// Dateline it is per-hop header state written by the SA stage of one
	// hop strictly before the next hop reads it. Healthy minimal routing
	// never sets it; the fault-aware up*/down* escape requires it.
	EscapeCommitted bool
}

// FlitType distinguishes the roles of flits within a message.
type FlitType uint8

const (
	// Head flits carry routing information and allocate channel state.
	Head FlitType = iota
	// Body flits follow the path the head reserved.
	Body
	// Tail flits release reserved channel state as they pass.
	Tail
	// HeadTail is a single-flit message: both Head and Tail.
	HeadTail
)

// IsHead reports whether the flit type carries routing information.
func (t FlitType) IsHead() bool { return t == Head || t == HeadTail }

// IsTail reports whether the flit type releases channel state.
func (t FlitType) IsTail() bool { return t == Tail || t == HeadTail }

func (t FlitType) String() string {
	switch t {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeadTail:
		return "headtail"
	}
	return fmt.Sprintf("FlitType(%d)", uint8(t))
}

// Flit is the flow-control unit. Flits are passed by value through buffers;
// only the Message is shared. Head flits logically carry the routing
// header (candidate set and dateline bits); see Message.Route for where
// that state is stored and why.
type Flit struct {
	Msg  *Message
	Seq  int32
	Type FlitType
}

// TypeFor returns the flit type for position seq in a message of the given
// length.
func TypeFor(seq, length int) FlitType {
	switch {
	case length == 1:
		return HeadTail
	case seq == 0:
		return Head
	case seq == length-1:
		return Tail
	default:
		return Body
	}
}

// VCID names a virtual channel within one physical channel, 0-based.
type VCID int8

// VCMask is a bitmask of virtual channels (bit v = VC v). Routing tables
// use masks to express which VCs a candidate output port may be claimed on:
// Duato's algorithm allows adaptive VCs on every minimal port but the
// escape VC only on the dimension-order port.
type VCMask uint16

// MaskAll returns a mask with the lowest n VC bits set.
func MaskAll(n int) VCMask { return VCMask(1<<n) - 1 }

// MaskOf returns a mask containing exactly the given VCs.
func MaskOf(vcs ...VCID) VCMask {
	var m VCMask
	for _, v := range vcs {
		m |= 1 << v
	}
	return m
}

// Has reports whether VC v is in the mask.
func (m VCMask) Has(v VCID) bool { return m&(1<<v) != 0 }

// Count returns the number of VCs in the mask.
func (m VCMask) Count() int { return bits.OnesCount16(uint16(m)) }

// Lowest returns the lowest-numbered VC in the mask; it panics on an empty
// mask, which is always a caller bug.
func (m VCMask) Lowest() VCID {
	if m == 0 {
		panic("flow: Lowest of empty VCMask")
	}
	return VCID(bits.TrailingZeros16(uint16(m)))
}

// Candidate is one routing option: an output port and the VCs the message
// may claim on it, split into adaptive and escape classes per Duato's
// methodology. A deterministic route has only the Escape class populated
// (or Adaptive covering every VC, depending on table programming).
type Candidate struct {
	Port topology.Port
	// Adaptive is the mask of freely usable (fully adaptive) VCs.
	Adaptive VCMask
	// Escape is the mask of escape VCs usable on this port. Only the
	// port selected by the escape routing subfunction has a nonzero
	// escape mask.
	Escape VCMask
}

// All returns the union of the adaptive and escape masks.
func (c Candidate) All() VCMask { return c.Adaptive | c.Escape }

// MaxCandidates bounds the number of alternatives a routing function may
// return: one port per dimension in a minimal n-dimensional mesh (the paper
// notes at most two in 2-D). Four covers up to 4-D networks.
const MaxCandidates = 4

// RouteSet is a fixed-capacity set of routing candidates, ordered by the
// table's preference (dimension order first, matching STATIC-XY's bias).
// The zero value is the empty set.
type RouteSet struct {
	n int8
	c [MaxCandidates]Candidate
}

// Add appends a candidate; it panics beyond MaxCandidates since routing
// functions in meshes never produce more than one option per dimension.
func (r *RouteSet) Add(c Candidate) {
	if int(r.n) >= MaxCandidates {
		panic("flow: RouteSet overflow")
	}
	r.c[r.n] = c
	r.n++
}

// Len returns the number of candidates.
func (r RouteSet) Len() int { return int(r.n) }

// At returns candidate i.
func (r RouteSet) At(i int) Candidate { return r.c[i] }

// Empty reports whether the set has no candidates.
func (r RouteSet) Empty() bool { return r.n == 0 }

// Ports returns the candidate ports in preference order, allocating.
// Intended for tests and diagnostics, not the router fast path.
func (r RouteSet) Ports() []topology.Port {
	out := make([]topology.Port, r.n)
	for i := 0; i < int(r.n); i++ {
		out[i] = r.c[i].Port
	}
	return out
}

// Equal reports whether two route sets contain the same candidates in the
// same order.
func (r RouteSet) Equal(o RouteSet) bool {
	if r.n != o.n {
		return false
	}
	for i := 0; i < int(r.n); i++ {
		if r.c[i] != o.c[i] {
			return false
		}
	}
	return true
}

// String renders the set as e.g. "{+X[a:0b1110 e:0b0001] +Y[a:0b1110]}".
func (r RouteSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < int(r.n); i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		c := r.c[i]
		fmt.Fprintf(&b, "p%d[a:%b e:%b]", c.Port, c.Adaptive, c.Escape)
	}
	b.WriteByte('}')
	return b.String()
}
