package flow

import (
	"testing"
	"testing/quick"

	"lapses/internal/topology"
)

func TestTypeFor(t *testing.T) {
	cases := []struct {
		seq, length int
		want        FlitType
	}{
		{0, 1, HeadTail},
		{0, 20, Head},
		{1, 20, Body},
		{18, 20, Body},
		{19, 20, Tail},
		{0, 2, Head},
		{1, 2, Tail},
	}
	for _, c := range cases {
		if got := TypeFor(c.seq, c.length); got != c.want {
			t.Errorf("TypeFor(%d,%d) = %v want %v", c.seq, c.length, got, c.want)
		}
	}
}

func TestFlitTypePredicates(t *testing.T) {
	if !Head.IsHead() || !HeadTail.IsHead() || Body.IsHead() || Tail.IsHead() {
		t.Error("IsHead wrong")
	}
	if !Tail.IsTail() || !HeadTail.IsTail() || Body.IsTail() || Head.IsTail() {
		t.Error("IsTail wrong")
	}
}

func TestVCMask(t *testing.T) {
	m := MaskAll(4)
	if m != 0b1111 {
		t.Fatalf("MaskAll(4) = %b", m)
	}
	if m.Count() != 4 {
		t.Errorf("Count = %d", m.Count())
	}
	if !m.Has(0) || !m.Has(3) || m.Has(4) {
		t.Error("Has wrong")
	}
	m2 := MaskOf(1, 3)
	if m2 != 0b1010 {
		t.Fatalf("MaskOf(1,3) = %b", m2)
	}
	if m2.Lowest() != 1 {
		t.Errorf("Lowest = %d", m2.Lowest())
	}
}

func TestVCMaskLowestPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	VCMask(0).Lowest()
}

func TestRouteSet(t *testing.T) {
	var r RouteSet
	if !r.Empty() || r.Len() != 0 {
		t.Fatal("zero RouteSet not empty")
	}
	a := Candidate{Port: 1, Adaptive: 0b1110, Escape: 0b0001}
	b := Candidate{Port: 3, Adaptive: 0b1110}
	r.Add(a)
	r.Add(b)
	if r.Len() != 2 || r.At(0) != a || r.At(1) != b {
		t.Fatalf("RouteSet contents wrong: %v", r)
	}
	ports := r.Ports()
	if len(ports) != 2 || ports[0] != 1 || ports[1] != 3 {
		t.Errorf("Ports = %v", ports)
	}
	var r2 RouteSet
	r2.Add(a)
	r2.Add(b)
	if !r.Equal(r2) {
		t.Error("Equal sets reported unequal")
	}
	r2 = RouteSet{}
	r2.Add(b)
	r2.Add(a)
	if r.Equal(r2) {
		t.Error("order-swapped sets reported equal")
	}
}

func TestRouteSetOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var r RouteSet
	for i := 0; i <= MaxCandidates; i++ {
		r.Add(Candidate{Port: topology.Port(i)})
	}
}

func TestCandidateAll(t *testing.T) {
	c := Candidate{Port: 1, Adaptive: 0b1100, Escape: 0b0001}
	if c.All() != 0b1101 {
		t.Errorf("All = %b", c.All())
	}
}

func TestRouteSetString(t *testing.T) {
	var r RouteSet
	r.Add(Candidate{Port: 1, Adaptive: 0b10})
	if s := r.String(); s == "" || s == "{}" {
		t.Errorf("String = %q", s)
	}
}

// Property: MaskOf produces a mask whose Count equals the number of
// distinct VCs and which Has exactly those VCs.
func TestQuickMaskOf(t *testing.T) {
	f := func(raw []uint8) bool {
		seen := map[VCID]bool{}
		var vcs []VCID
		for _, r := range raw {
			v := VCID(r % 16)
			if !seen[v] {
				seen[v] = true
				vcs = append(vcs, v)
			}
		}
		m := MaskOf(vcs...)
		if m.Count() != len(vcs) {
			return false
		}
		for _, v := range vcs {
			if !m.Has(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
