package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lapses/internal/core"
	"lapses/internal/traffic"
)

// gridOf returns n distinct configs; Seed carries the point index so a
// scripted Runner can tell points apart.
func gridOf(n int) []core.Config {
	grid := make([]core.Config, n)
	for i := range grid {
		c := core.DefaultConfig()
		c.Seed = int64(i)
		grid[i] = c
	}
	return grid
}

// TestOrderedOutput makes early points finish last and checks outcomes
// still come back in grid order.
func TestOrderedOutput(t *testing.T) {
	t.Parallel()
	grid := gridOf(16)
	opt := Options{
		Workers: 8,
		Runner: func(c core.Config) (core.Result, error) {
			// Earlier indices sleep longer, inverting completion order.
			time.Sleep(time.Duration(len(grid)-int(c.Seed)) * time.Millisecond)
			return core.Result{AvgLatency: float64(c.Seed)}, nil
		},
	}
	outs, err := Run(context.Background(), grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(grid) {
		t.Fatalf("outcomes = %d want %d", len(outs), len(grid))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("point %d: %v", i, o.Err)
		}
		if int(o.Result.AvgLatency) != i || o.Config.Seed != int64(i) {
			t.Errorf("slot %d holds point %v/%v", i, o.Result.AvgLatency, o.Config.Seed)
		}
	}
}

// TestErrorCapture verifies a failing point is reported in place without
// stopping the sweep — the replacement for the old mustRun panic.
func TestErrorCapture(t *testing.T) {
	t.Parallel()
	grid := gridOf(5)
	boom := errors.New("boom")
	opt := Options{
		Workers: 2,
		Runner: func(c core.Config) (core.Result, error) {
			if c.Seed == 2 {
				return core.Result{}, boom
			}
			return core.Result{AvgLatency: 1}, nil
		},
	}
	outs, err := Run(context.Background(), grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if i == 2 {
			if !errors.Is(o.Err, boom) {
				t.Errorf("point 2 err = %v want boom", o.Err)
			}
			continue
		}
		if o.Err != nil {
			t.Errorf("point %d: unexpected error %v", i, o.Err)
		}
	}
}

// TestConfigErrorThroughCoreRun exercises the real core.Run error path:
// an invalid point carries its validation error, valid points still run.
func TestConfigErrorThroughCoreRun(t *testing.T) {
	t.Parallel()
	good := core.DefaultConfig().QuickFidelity()
	good.Dims = []int{4, 4}
	good.Warmup, good.Measure = 20, 200
	bad := good
	bad.Dims = nil // fails Validate
	outs, err := Run(context.Background(), []core.Config{good, bad}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil {
		t.Errorf("valid point failed: %v", outs[0].Err)
	}
	if outs[0].Result.Delivered == 0 {
		t.Error("valid point delivered nothing")
	}
	if outs[1].Err == nil {
		t.Error("invalid point did not report its configuration error")
	}
}

// TestCancellationMidGrid blocks the first points, cancels, and checks
// that unstarted points carry ctx.Err while Run reports the cancellation.
func TestCancellationMidGrid(t *testing.T) {
	t.Parallel()
	const workers = 2
	grid := gridOf(10)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, len(grid))
	release := make(chan struct{})
	opt := Options{
		Workers: workers,
		Runner: func(c core.Config) (core.Result, error) {
			started <- struct{}{}
			<-release
			return core.Result{AvgLatency: 1}, nil
		},
	}
	done := make(chan struct{})
	var outs []Outcome
	var err error
	go func() {
		defer close(done)
		outs, err = Run(ctx, grid, opt)
	}()
	// Wait until both workers are mid-point, then cancel. The dispatcher
	// is parked in its select with no worker free, so ctx.Done is its
	// only ready case; give it a beat to stop dispatching before the
	// in-flight points are released.
	for i := 0; i < workers; i++ {
		<-started
	}
	cancel()
	time.Sleep(20 * time.Millisecond)
	close(release)
	<-done

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v want context.Canceled", err)
	}
	ran, skipped := 0, 0
	for i, o := range outs {
		switch {
		case o.Err == nil:
			ran++
		case errors.Is(o.Err, context.Canceled):
			skipped++
		default:
			t.Errorf("point %d: unexpected error %v", i, o.Err)
		}
	}
	// The in-flight points (and possibly a queued handoff) finish; the
	// rest must be skipped.
	if ran == 0 {
		t.Error("no in-flight point finished")
	}
	if skipped == 0 {
		t.Error("cancellation skipped nothing")
	}
	if ran+skipped != len(grid) {
		t.Errorf("ran %d + skipped %d != %d", ran, skipped, len(grid))
	}
}

// TestMemoCache checks duplicate points simulate once and the hit/miss
// accounting matches.
func TestMemoCache(t *testing.T) {
	t.Parallel()
	base := gridOf(4)
	grid := append(append([]core.Config{}, base...), base...) // every point twice
	var calls atomic.Int64
	cache := NewCache()
	opt := Options{
		Workers: 4,
		Cache:   cache,
		Runner: func(c core.Config) (core.Result, error) {
			calls.Add(1)
			return core.Result{AvgLatency: float64(c.Seed)}, nil
		},
	}
	outs, err := Run(context.Background(), grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(base)) {
		t.Errorf("simulated %d points, want %d (duplicates must memoize)", got, len(base))
	}
	if cache.Misses() != int64(len(base)) || cache.Hits() != int64(len(base)) {
		t.Errorf("hits/misses = %d/%d want %d/%d", cache.Hits(), cache.Misses(), len(base), len(base))
	}
	if cache.Len() != len(base) {
		t.Errorf("cache holds %d results, want %d", cache.Len(), len(base))
	}
	cachedCount := 0
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("point %d: %v", i, o.Err)
		}
		if int(o.Result.AvgLatency) != int(grid[i].Seed) {
			t.Errorf("point %d got result for seed %v", i, o.Result.AvgLatency)
		}
		if o.Cached {
			cachedCount++
		}
	}
	if cachedCount != len(base) {
		t.Errorf("cached outcomes = %d want %d", cachedCount, len(base))
	}
}

// TestMemoCacheSingleFlight launches identical points concurrently and
// checks only one simulates while the rest wait for it.
func TestMemoCacheSingleFlight(t *testing.T) {
	t.Parallel()
	cache := NewCache()
	cfg := core.DefaultConfig()
	var calls atomic.Int64
	run := func(core.Config) (core.Result, error) {
		calls.Add(1)
		time.Sleep(5 * time.Millisecond) // widen the in-flight window
		return core.Result{AvgLatency: 7}, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := cache.Do(context.Background(), cfg, run)
			if err != nil || res.AvgLatency != 7 {
				t.Errorf("do = %v, %v", res, err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("simulated %d times, want 1", calls.Load())
	}
}

// TestMemoCacheDoesNotCacheErrors: a failed point must be retried by the
// next request, not pinned.
func TestMemoCacheDoesNotCacheErrors(t *testing.T) {
	t.Parallel()
	cache := NewCache()
	cfg := core.DefaultConfig()
	fail := true
	run := func(core.Config) (core.Result, error) {
		if fail {
			return core.Result{}, errors.New("transient")
		}
		return core.Result{AvgLatency: 3}, nil
	}
	if _, _, err := cache.Do(context.Background(), cfg, run); err == nil {
		t.Fatal("first call should fail")
	}
	if cache.Len() != 0 {
		t.Fatalf("error was cached (len %d)", cache.Len())
	}
	fail = false
	res, cached, err := cache.Do(context.Background(), cfg, run)
	if err != nil || cached || res.AvgLatency != 3 {
		t.Errorf("retry = %v cached=%v err=%v", res, cached, err)
	}
}

// TestTraceIdentityInKey: distinct trace pointers must not share a memo
// slot even when the trace contents match.
func TestTraceIdentityInKey(t *testing.T) {
	t.Parallel()
	a, b := core.DefaultConfig(), core.DefaultConfig()
	a.Trace, b.Trace = &traffic.Trace{}, &traffic.Trace{}
	if a.Key() == b.Key() {
		t.Error("different traces collide in Key")
	}
}

// smallGrid is a real-simulation grid small enough for race runs.
func smallGrid() []core.Config {
	var grid []core.Config
	for _, pat := range []traffic.Kind{traffic.Uniform, traffic.Transpose} {
		for _, load := range []float64{0.1, 0.3} {
			c := core.DefaultConfig()
			c.Dims = []int{8, 8}
			c.Pattern = pat
			c.Load = load
			c.Warmup, c.Measure = 100, 1200
			c.Seed = 99
			grid = append(grid, c)
		}
	}
	return grid
}

// TestSweepDeterminism is the regression test for the core guarantee: the
// same grid yields bit-identical Results on 1 worker and on N workers,
// and across repeated runs.
func TestSweepDeterminism(t *testing.T) {
	t.Parallel()
	grid := smallGrid()
	results := func(workers int) []core.Result {
		outs, err := Run(context.Background(), grid, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rs := make([]core.Result, len(outs))
		for i, o := range outs {
			if o.Err != nil {
				t.Fatalf("point %d: %v", i, o.Err)
			}
			rs[i] = o.Result
		}
		return rs
	}
	serial := results(1)
	for _, workers := range []int{4, 4, 1} { // N, repeated N, repeated serial
		got := results(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d point %d diverged:\nserial   %+v\nparallel %+v",
					workers, i, serial[i], got[i])
			}
		}
	}
	for i, r := range serial {
		if r.Delivered == 0 && !r.Saturated {
			t.Errorf("point %d delivered nothing", i)
		}
	}
}

// TestSweepDeterminismWithCache: serving a point from the memo cache must
// hand back the exact same Result bits as simulating it.
func TestSweepDeterminismWithCache(t *testing.T) {
	t.Parallel()
	grid := smallGrid()
	doubled := append(append([]core.Config{}, grid...), grid...)
	outs, err := Run(context.Background(), doubled, Options{Workers: 4, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range grid {
		a, b := outs[i], outs[i+len(grid)]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("point %d errs: %v %v", i, a.Err, b.Err)
		}
		if a.Result != b.Result {
			t.Errorf("point %d: cached result differs", i)
		}
	}
}

func ExampleRun() {
	// Declare the grid as data: one config per point, in output order.
	var grid []core.Config
	for _, load := range []float64{0.1, 0.2} {
		c := core.DefaultConfig()
		c.Dims = []int{4, 4}
		c.Warmup, c.Measure = 50, 500
		c.Load = load
		grid = append(grid, c)
	}
	outs, err := Run(context.Background(), grid, Options{Workers: 2})
	if err != nil {
		fmt.Println("sweep:", err)
		return
	}
	for _, o := range outs {
		fmt.Printf("load %.1f: delivered %v messages\n", o.Config.Load, o.Err == nil && o.Result.Delivered > 0)
	}
	// Output:
	// load 0.1: delivered true messages
	// load 0.2: delivered true messages
}

// TestWorkerBudgetAgainstShards pins the oversubscription rule: with no
// explicit worker count, the pool width is GOMAXPROCS divided by the
// widest per-run shard count in the grid (floored at one), and an
// explicit Workers always wins.
func TestWorkerBudgetAgainstShards(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	plain := gridOf(4)
	if got := (Options{}).workersFor(plain); got != 8 {
		t.Errorf("unsharded grid: workers = %d, want GOMAXPROCS (8)", got)
	}

	sharded := gridOf(4)
	sharded[2].Shards = 4
	if got := (Options{}).workersFor(sharded); got != 2 {
		t.Errorf("grid with a 4-shard point: workers = %d, want 2", got)
	}

	wide := gridOf(2)
	wide[0].Shards = 32
	if got := (Options{}).workersFor(wide); got != 1 {
		t.Errorf("shards beyond GOMAXPROCS: workers = %d, want floor of 1", got)
	}

	// A shard request beyond the mesh's row count clamps before it
	// budgets: a 4x4 mesh executes at most 4 shards, so asking for 32
	// must not starve the pool down to 1.
	clamped := gridOf(2)
	clamped[0].Dims = []int{4, 4}
	clamped[0].Shards = 32
	if got := (Options{}).workersFor(clamped); got != 2 {
		t.Errorf("over-requested shards on a small mesh: workers = %d, want 2 (budget vs effective 4)", got)
	}

	if got := (Options{Workers: 5}).workersFor(sharded); got != 5 {
		t.Errorf("explicit Workers overridden: got %d, want 5", got)
	}
}

// TestPanicIsolatedPerPoint: a panicking point must come back as a
// *PanicError Outcome while the rest of the grid completes — one bad
// config cannot kill the process hosting the sweep.
func TestPanicIsolatedPerPoint(t *testing.T) {
	t.Parallel()
	grid := gridOf(6)
	opt := Options{
		Workers: 3,
		Runner: func(c core.Config) (core.Result, error) {
			if c.Seed == 3 {
				panic("scripted point failure")
			}
			return core.Result{AvgLatency: float64(c.Seed)}, nil
		},
	}
	outs, err := Run(context.Background(), grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if i == 3 {
			var pe *PanicError
			if !errors.As(o.Err, &pe) {
				t.Fatalf("point 3 err = %v, want *PanicError", o.Err)
			}
			if pe.Value != "scripted point failure" || len(pe.Stack) == 0 {
				t.Errorf("PanicError = {%v, %d-byte stack}", pe.Value, len(pe.Stack))
			}
			continue
		}
		if o.Err != nil {
			t.Errorf("point %d: %v", i, o.Err)
		}
	}
}

// TestPanicIsolatedThroughCoreRun drives the real panic path: an
// algorithm identifier outside the known set passes Validate but hits
// the kernel's unknown-algorithm panic during construction. The point
// must error; its neighbors must still simulate.
func TestPanicIsolatedThroughCoreRun(t *testing.T) {
	t.Parallel()
	good := core.DefaultConfig().QuickFidelity()
	good.Dims = []int{4, 4}
	good.Warmup, good.Measure = 20, 200
	bad := good
	bad.Algorithm = core.Alg(99)
	outs, err := Run(context.Background(), []core.Config{good, bad, good}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(outs[1].Err, &pe) {
		t.Fatalf("unknown-algorithm point err = %v, want *PanicError", outs[1].Err)
	}
	for _, i := range []int{0, 2} {
		if outs[i].Err != nil {
			t.Errorf("point %d: %v", i, outs[i].Err)
		}
		if outs[i].Result.Delivered == 0 {
			t.Errorf("point %d delivered nothing", i)
		}
	}
}

// TestPanicResolvesCacheWaiters: when the cache leader panics, waiters
// on the same key must receive the error rather than hang.
func TestPanicResolvesCacheWaiters(t *testing.T) {
	t.Parallel()
	cfg := core.DefaultConfig()
	grid := []core.Config{cfg, cfg, cfg, cfg}
	outs, err := Run(context.Background(), grid, Options{
		Workers: 4,
		Cache:   NewCache(),
		Runner: func(core.Config) (core.Result, error) {
			time.Sleep(2 * time.Millisecond) // widen the in-flight window
			panic("leader down")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		var pe *PanicError
		if !errors.As(o.Err, &pe) {
			t.Errorf("point %d err = %v, want *PanicError", i, o.Err)
		}
	}
}

// TestOnPointStreamsProgress: the hook must fire once per point, from
// workers, with the point's final outcome.
func TestOnPointStreamsProgress(t *testing.T) {
	t.Parallel()
	grid := gridOf(9)
	var mu sync.Mutex
	seen := map[int]Outcome{}
	opt := Options{
		Workers: 3,
		Runner: func(c core.Config) (core.Result, error) {
			if c.Seed == 4 {
				return core.Result{}, errors.New("bad point")
			}
			return core.Result{AvgLatency: float64(c.Seed)}, nil
		},
		OnPoint: func(i int, o Outcome) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := seen[i]; dup {
				t.Errorf("OnPoint fired twice for %d", i)
			}
			seen[i] = o
		},
	}
	if _, err := Run(context.Background(), grid, opt); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(grid) {
		t.Fatalf("OnPoint fired for %d of %d points", len(seen), len(grid))
	}
	for i, o := range seen {
		if i == 4 {
			if o.Err == nil {
				t.Error("OnPoint for the failing point carried no error")
			}
			continue
		}
		if o.Err != nil || int(o.Result.AvgLatency) != i {
			t.Errorf("OnPoint %d = %+v", i, o)
		}
	}
}
