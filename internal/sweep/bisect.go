package sweep

// Saturation-point search. The classic way to locate a network's
// saturation load is a dense sweep of the whole load axis — most of
// whose points are either far below saturation (uninformative) or far
// above it (each one burning its full cycle budget before the guard
// trips). Bisect replaces the scan with bracketing plus parallel
// k-section: every round probes a handful of interior loads
// concurrently through the regular sweep engine (so the memo cache and
// the shard-aware worker budget apply unchanged) and narrows the
// bracket by a factor of Fanout+1. The probe loads are a pure function
// of the bracket — never of the worker count — so the search is
// deterministic for fixed seeds on any pool width, mirroring Run's
// guarantee. SaturationScan is the dense-grid reference path, kept so
// the cycle savings stay measurable (TestBisectCycleReduction pins the
// >= 2x reduction).

import (
	"context"
	"fmt"
	"math"

	"lapses/internal/core"
	"lapses/internal/topology"
)

// BisectSpec describes one saturation search.
type BisectSpec struct {
	// At maps an offered load to the probe configuration classifying it.
	// Probes should carry budgets that make saturation terminal (a
	// bounded MaxCycles) — experiments.SaturationSpec builds such specs.
	At func(load float64) core.Config
	// Lo and Hi bracket the search: Lo is expected sustainable, Hi
	// saturated. When the expectation fails the bracket is expanded a
	// few times before the search gives up.
	Lo, Hi float64
	// Tol is the terminal bracket width (default 0.02).
	Tol float64
	// Fanout is how many interior loads each round probes concurrently;
	// the bracket narrows by Fanout+1 per round (default 3).
	Fanout int
	// Saturated classifies a probe: given the offered load and its
	// result, is the network past saturation? The default accepts only
	// the run's own guards (core.Result.Saturated), which is lax near
	// the knee — OfferedFracSaturated is the sharper standard classifier.
	Saturated func(load float64, r core.Result) bool
}

// OfferedFracSaturated builds the acceptance-based saturation classifier
// for probes on mesh m: a probe is saturated when one of its run guards
// tripped, or when its delivered throughput fell below frac of the
// offered flit rate (flits/node/cycle; offered = load times the mesh's
// bisection-saturation injection rate, the same normalization
// core.Config.Load uses). Below saturation an open-loop network accepts
// what is offered, so acceptance dropping to frac marks the knee
// independently of cycle budgets or measurement tier.
func OfferedFracSaturated(m *topology.Mesh, frac float64) func(float64, core.Result) bool {
	satRate := m.SaturationInjectionRate()
	return func(load float64, r core.Result) bool {
		if r.Saturated {
			return true
		}
		return r.Throughput < frac*load*satRate
	}
}

func (s BisectSpec) normalize() (BisectSpec, error) {
	if s.At == nil {
		return s, fmt.Errorf("sweep: BisectSpec.At is required")
	}
	if !(s.Lo >= 0) || !(s.Hi > s.Lo) {
		return s, fmt.Errorf("sweep: bisect bracket [%v, %v] is not ordered", s.Lo, s.Hi)
	}
	if s.Tol <= 0 {
		s.Tol = 0.02
	}
	if s.Fanout < 1 {
		s.Fanout = 3
	}
	if s.Saturated == nil {
		s.Saturated = func(_ float64, r core.Result) bool { return r.Saturated }
	}
	return s, nil
}

// BisectResult is the outcome of a saturation search.
type BisectResult struct {
	// Lo is the highest probed load that sustained (not saturated), Hi
	// the lowest that saturated; the saturation point lies between them
	// and Hi-Lo <= Tol when Converged.
	Lo, Hi float64
	// LoResult is the simulation at Lo: its Throughput is the sustained
	// acceptance rate at the highest load found deliverable, the
	// experiment-facing saturation-throughput observable.
	LoResult core.Result
	// Converged reports the bracket narrowed to Tol. False when the
	// whole (expanded) range saturates (Lo carries the lowest probed
	// load, unsustained) or never saturates (Hi == Lo: the range's top,
	// sustained).
	Converged bool
	// Probes is the number of probe simulations requested; Cached of
	// them were served by the memo cache, and SimulatedCycles is the
	// total simulated cycles of the rest — the search's cost, the number
	// the dense-grid comparison is about.
	Probes          int
	Cached          int
	SimulatedCycles int64
	// Rounds is the number of k-section rounds after bracketing.
	Rounds int
	// DensePoints is how many probes the dense-grid path would run for
	// the same initial bracket and resolution: ceil((Hi0-Lo0)/Tol)+1.
	DensePoints int
}

// String renders the search summary for experiment logs.
func (r BisectResult) String() string {
	state := "converged"
	if !r.Converged {
		state = "not converged"
	}
	return fmt.Sprintf("sat in [%.3f, %.3f] (%s; %d probes, %d cached, %d simulated cycles; dense grid: %d points)",
		r.Lo, r.Hi, state, r.Probes, r.Cached, r.SimulatedCycles, r.DensePoints)
}

// bisectRun tracks the accounting shared by every probe round.
type bisectRun struct {
	ctx  context.Context
	spec BisectSpec
	opt  Options
	res  *BisectResult
}

// eval probes the given loads (one sweep.Run round — or one round of
// Options.Exec, so a remote backend serves the probes) and returns their
// outcomes in load order. Probe errors abort the search: a config error
// means the caller built a bad spec, exactly like a bad experiment grid.
func (b *bisectRun) eval(loads []float64) ([]Outcome, error) {
	grid := make([]core.Config, len(loads))
	for i, x := range loads {
		grid[i] = b.spec.At(x)
	}
	outs, err := b.opt.exec()(b.ctx, grid, b.opt)
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		if o.Err != nil {
			return nil, fmt.Errorf("sweep: bisect probe at load %.4g: %w", loads[i], o.Err)
		}
		b.res.Probes++
		if o.Cached {
			b.res.Cached++
		} else {
			b.res.SimulatedCycles += o.Result.TotalCycles
		}
	}
	return outs, nil
}

// Bisect locates the saturation load of spec.At's config family within
// spec.Tol. See the package comment at the top of this file for the
// algorithm; Options carries the worker budget and memo cache exactly as
// for Run, and the result is bit-identical for any worker count.
func Bisect(ctx context.Context, spec BisectSpec, opt Options) (BisectResult, error) {
	spec, err := spec.normalize()
	if err != nil {
		return BisectResult{}, err
	}
	res := BisectResult{
		DensePoints: int(math.Ceil((spec.Hi-spec.Lo)/spec.Tol)) + 1,
	}
	b := &bisectRun{ctx: ctx, spec: spec, opt: opt, res: &res}

	// Bracket: probe both ends, then expand a bounded number of times
	// when an end is on the wrong side.
	lo, hi := spec.Lo, spec.Hi
	outs, err := b.eval([]float64{lo, hi})
	if err != nil {
		return res, err
	}
	loOut, hiOut := outs[0], outs[1]
	for tries := 0; b.spec.Saturated(lo, loOut.Result) && tries < 4 && lo > 1e-3; tries++ {
		hi, hiOut = lo, loOut
		lo /= 2
		if outs, err = b.eval([]float64{lo}); err != nil {
			return res, err
		}
		loOut = outs[0]
	}
	for tries := 0; !b.spec.Saturated(hi, hiOut.Result) && tries < 4; tries++ {
		lo, loOut = hi, hiOut
		hi *= 2
		if outs, err = b.eval([]float64{hi}); err != nil {
			return res, err
		}
		hiOut = outs[0]
	}
	if b.spec.Saturated(lo, loOut.Result) {
		// Everything probed saturates: report the lowest load seen.
		res.Lo, res.Hi = lo, lo
		res.LoResult = loOut.Result
		return res, nil
	}
	if !b.spec.Saturated(hi, hiOut.Result) {
		// Nothing saturates up to the expanded top: the best sustained
		// point is the top itself.
		res.Lo, res.Hi = hi, hi
		res.LoResult = hiOut.Result
		return res, nil
	}

	// k-section: each round probes Fanout evenly spaced interior loads
	// in parallel and keeps the sub-bracket around the first saturated
	// one. maxRounds is the geometric bound plus slack; it only guards
	// against float-width stagnation.
	maxRounds := int(math.Ceil(math.Log((hi-lo)/spec.Tol)/math.Log(float64(spec.Fanout+1)))) + 2
	for hi-lo > spec.Tol && res.Rounds < maxRounds {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Rounds++
		step := (hi - lo) / float64(spec.Fanout+1)
		loads := make([]float64, spec.Fanout)
		for i := range loads {
			loads[i] = lo + float64(i+1)*step
		}
		outs, err := b.eval(loads)
		if err != nil {
			return res, err
		}
		firstSat := len(outs)
		for i, o := range outs {
			if b.spec.Saturated(loads[i], o.Result) {
				firstSat = i
				break
			}
		}
		if firstSat > 0 {
			lo, loOut = loads[firstSat-1], outs[firstSat-1]
		}
		if firstSat < len(outs) {
			hi = loads[firstSat]
		}
	}
	res.Lo, res.Hi = lo, hi
	res.LoResult = loOut.Result
	res.Converged = hi-lo <= spec.Tol
	return res, nil
}

// SaturationScan is the dense-grid reference path Bisect replaces: probe
// every load from Lo to Hi in Tol-sized steps (the grid an exhaustive
// experiment would declare) through one sweep.Run, and derive the same
// bracket. It exists so the adaptive search's cycle savings are
// measurable against a live implementation rather than an estimate.
func SaturationScan(ctx context.Context, spec BisectSpec, opt Options) (BisectResult, error) {
	spec, err := spec.normalize()
	if err != nil {
		return BisectResult{}, err
	}
	n := int(math.Ceil((spec.Hi-spec.Lo)/spec.Tol)) + 1
	res := BisectResult{DensePoints: n}
	b := &bisectRun{ctx: ctx, spec: spec, opt: opt, res: &res}
	loads := make([]float64, n)
	for i := range loads {
		loads[i] = spec.Lo + float64(i)*(spec.Hi-spec.Lo)/float64(n-1)
	}
	outs, err := b.eval(loads)
	if err != nil {
		return res, err
	}
	firstSat := -1
	for i, o := range outs {
		if spec.Saturated(loads[i], o.Result) {
			firstSat = i
			break
		}
	}
	switch firstSat {
	case -1:
		res.Lo, res.Hi = loads[n-1], loads[n-1]
		res.LoResult = outs[n-1].Result
	case 0:
		res.Lo, res.Hi = loads[0], loads[0]
		res.LoResult = outs[0].Result
	default:
		res.Lo, res.Hi = loads[firstSat-1], loads[firstSat]
		res.LoResult = outs[firstSat-1].Result
		res.Converged = true
	}
	return res, nil
}
