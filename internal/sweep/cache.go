package sweep

import (
	"context"
	"sync"

	"lapses/internal/core"
)

// Cache memoizes simulation results by core.Config.Key. Lookups are
// single-flight: concurrent requests for the same key wait for the first
// one to finish instead of simulating twice, so a grid containing
// duplicate points simulates each unique point exactly once even when the
// duplicates land on different workers simultaneously. Errors are not
// cached (a later request retries), though waiters of a failing in-flight
// point do receive its error. The zero value of *Cache (nil) disables
// memoization.
type Cache struct {
	mu     sync.Mutex
	m      map[string]*entry
	hits   int64
	misses int64
}

type entry struct {
	done chan struct{} // closed once res/err are final
	// cfg pins the config (in particular its Trace pointer, which Key
	// identifies by address) for the cache's lifetime, so a collected
	// Trace's address can never be reused while its key is still live.
	cfg core.Config
	res core.Result
	err error
}

// NewCache returns an empty memo cache.
func NewCache() *Cache { return &Cache{m: map[string]*entry{}} }

// Hits counts lookups actually served a result from a completed or
// in-flight prior point (waiters that abort on ctx or inherit a leader's
// error do not count).
func (c *Cache) Hits() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses counts lookups that had to simulate.
func (c *Cache) Misses() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Len is the number of successfully cached results.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Do returns the memoized result for cfg, running run on a miss. A nil
// receiver runs directly (so a zero-valued Options.Cache field holding a
// typed nil still behaves as "no cache"). The boolean reports a cache
// hit. Waiting for an in-flight duplicate respects ctx. Do implements
// Cacher.
func (c *Cache) Do(ctx context.Context, cfg core.Config, run func(core.Config) (core.Result, error)) (core.Result, bool, error) {
	if c == nil {
		res, err := run(cfg)
		return res, false, err
	}
	key := cfg.Key()
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			if e.err != nil {
				// The leader failed; the waiter was not served a
				// cached result.
				return e.res, false, e.err
			}
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return e.res, true, nil
		case <-ctx.Done():
			return core.Result{}, false, ctx.Err()
		}
	}
	e := &entry{done: make(chan struct{}), cfg: cfg}
	c.m[key] = e
	c.misses++
	c.mu.Unlock()

	e.res, e.err = run(cfg)
	if e.err != nil {
		c.mu.Lock()
		delete(c.m, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.res, false, e.err
}
