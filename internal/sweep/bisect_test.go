package sweep

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// scriptedSpec builds a spec whose probes are classified by a load
// threshold through a scripted runner: saturated iff load >= satAt. The
// runner charges a fixed cycle cost per probe so accounting is testable.
func scriptedSpec(lo, hi float64) BisectSpec {
	return BisectSpec{
		At: func(load float64) core.Config {
			c := core.DefaultConfig()
			c.Load = load
			return c
		},
		Lo: lo, Hi: hi, Tol: 0.02,
	}
}

func scriptedRunner(satAt float64) func(core.Config) (core.Result, error) {
	return func(c core.Config) (core.Result, error) {
		return core.Result{
			Saturated:   c.Load >= satAt,
			Throughput:  c.Load,
			TotalCycles: 1000,
		}, nil
	}
}

// TestBisectFindsThreshold: the search must bracket a known threshold to
// within Tol wherever it lies in (or near) the initial bracket.
func TestBisectFindsThreshold(t *testing.T) {
	t.Parallel()
	for _, satAt := range []float64{0.11, 0.25, 0.5, 0.73, 0.99} {
		res, err := Bisect(context.Background(), scriptedSpec(0.1, 1.0), Options{Runner: scriptedRunner(satAt)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("satAt=%.2f: not converged: %s", satAt, res)
		}
		if res.Hi-res.Lo > 0.02+1e-12 || res.Lo >= satAt || res.Hi < satAt {
			t.Fatalf("satAt=%.2f: bracket %s does not pin the threshold", satAt, res)
		}
		if res.LoResult.Saturated || res.LoResult.Throughput != res.Lo {
			t.Fatalf("satAt=%.2f: LoResult is not the sustained probe at Lo: %+v", satAt, res.LoResult)
		}
		if res.SimulatedCycles != int64(res.Probes)*1000 {
			t.Fatalf("satAt=%.2f: cycle accounting %d for %d probes", satAt, res.SimulatedCycles, res.Probes)
		}
		if res.Probes >= res.DensePoints {
			t.Fatalf("satAt=%.2f: %d probes vs %d dense points — no saving", satAt, res.Probes, res.DensePoints)
		}
	}
}

// TestBisectBracketExpansion: thresholds outside the initial bracket are
// reached by the bounded expansion, and hopeless ranges are reported
// un-converged instead of looping.
func TestBisectBracketExpansion(t *testing.T) {
	t.Parallel()
	// Below the initial Lo: expansion halves downward.
	res, err := Bisect(context.Background(), scriptedSpec(0.1, 1.0), Options{Runner: scriptedRunner(0.06)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Lo >= 0.06 || res.Hi < 0.06 {
		t.Fatalf("downward expansion: %s", res)
	}
	// Above the initial Hi: expansion doubles upward.
	res, err = Bisect(context.Background(), scriptedSpec(0.1, 1.0), Options{Runner: scriptedRunner(1.7)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Lo >= 1.7 || res.Hi < 1.7 {
		t.Fatalf("upward expansion: %s", res)
	}
	// Never saturates: un-converged, best sustained load reported.
	res, err = Bisect(context.Background(), scriptedSpec(0.1, 1.0), Options{Runner: scriptedRunner(math.Inf(1))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Lo != res.Hi || res.LoResult.Saturated {
		t.Fatalf("never-saturating range: %s", res)
	}
	// Always saturates: un-converged, the floor is reported saturated.
	res, err = Bisect(context.Background(), scriptedSpec(0.1, 1.0), Options{Runner: scriptedRunner(0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || !res.LoResult.Saturated {
		t.Fatalf("always-saturating range: %s", res)
	}
}

// satProbe8x8 is the real-simulator probe family the determinism and
// cycle-reduction tests search over: an 8x8 adaptive mesh under uniform
// traffic with a load-scaled cycle budget so saturated probes terminate
// by guard rather than by patience. Probes run the fixed tier: the
// saturation verdict is a fixed-horizon acceptance measurement, and
// keeping the horizon identical across every probe (and across the
// dense reference path) is what makes the verdicts comparable.
func satProbe8x8(load float64) core.Config {
	c := core.DefaultConfig()
	c.Dims = []int{8, 8}
	c.Selection = selection.StaticXY
	c.Pattern = traffic.Uniform
	c.Load = load
	c.MsgLen = 20
	c.Warmup, c.Measure = 200, 2000
	c.Seed = 5
	rate := traffic.MessageRate(c.Mesh(), load, c.MsgLen) * float64(c.Mesh().N())
	c.MaxCycles = int64(3*float64(c.Warmup+c.Measure)/rate) + 6000
	return c
}

func probe8x8Spec() BisectSpec {
	return BisectSpec{
		At: satProbe8x8, Lo: 0.1, Hi: 1.2, Tol: 0.02,
		// The acceptance-based classifier pins the knee independently of
		// each probe's cycle budget and measurement tier; with run-guard
		// classification alone, an overdriven open-loop run can still
		// deliver its (early-created) sample inside the budget and read
		// as sustained well past the real knee.
		Saturated: OfferedFracSaturated(topology.New(false, 8, 8), 0.9),
	}
}

// TestBisectDeterminism mirrors TestSweepDeterminism for the search: the
// same spec must produce the identical BisectResult (brackets, probe
// counts, cycle totals, and the Result bits at Lo) on 1 worker and on N,
// with fresh caches, across repeats.
func TestBisectDeterminism(t *testing.T) {
	t.Parallel()
	run := func(workers int) BisectResult {
		res, err := Bisect(context.Background(), probe8x8Spec(), Options{Workers: workers, Cache: NewCache()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	if !base.Converged {
		t.Fatalf("search did not converge: %s", base)
	}
	for _, workers := range []int{8, 1} {
		if got := run(workers); got != base {
			t.Fatalf("workers=%d diverged:\nserial   %+v\nparallel %+v", workers, base, got)
		}
	}
}

// TestBisectMemoCache: repeating a search against a shared cache must
// re-simulate nothing.
func TestBisectMemoCache(t *testing.T) {
	t.Parallel()
	cache := NewCache()
	first, err := Bisect(context.Background(), probe8x8Spec(), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Bisect(context.Background(), probe8x8Spec(), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached != second.Probes || second.SimulatedCycles != 0 {
		t.Fatalf("second search re-simulated: %s", second)
	}
	if second.Lo != first.Lo || second.Hi != first.Hi || second.LoResult != first.LoResult {
		t.Fatalf("cached search found a different point:\n%s\n%s", first, second)
	}
}

// TestBisectCycleReduction is the headline regression (and the CI
// bisect-smoke): on the 8x8 saturation search, bracketing + bisection
// must find the same saturation point as the dense-grid path the
// experiments used to run, for at most half the simulated cycles (the
// measured ratio is far larger; 2x is the regression floor).
func TestBisectCycleReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full dense-grid reference scan; CI runs it in the dedicated bisect-smoke step")
	}
	t.Parallel()
	bisected, err := Bisect(context.Background(), probe8x8Spec(), Options{Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := SaturationScan(context.Background(), probe8x8Spec(), Options{Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !bisected.Converged || !grid.Converged {
		t.Fatalf("searches did not converge:\nbisect %s\ngrid   %s", bisected, grid)
	}
	// Both brackets contain the knee and are at most Tol wide, so their
	// Lo ends sit within two resolution steps of each other.
	if math.Abs(bisected.Lo-grid.Lo) > 2*0.02+1e-12 {
		t.Fatalf("saturation points disagree:\nbisect %s\ngrid   %s", bisected, grid)
	}
	if bisected.SimulatedCycles*2 > grid.SimulatedCycles {
		t.Fatalf("cycle reduction below 2x: bisect %d cycles vs dense grid %d (%.2fx)",
			bisected.SimulatedCycles, grid.SimulatedCycles,
			float64(grid.SimulatedCycles)/float64(bisected.SimulatedCycles))
	}
	t.Logf("bisect %s", bisected)
	t.Logf("grid   %s", grid)
	t.Logf("cycle reduction: %.2fx", float64(grid.SimulatedCycles)/float64(bisected.SimulatedCycles))
}

// TestBisectSpecValidation covers the spec error paths.
func TestBisectSpecValidation(t *testing.T) {
	t.Parallel()
	if _, err := Bisect(context.Background(), BisectSpec{Lo: 0, Hi: 1}, Options{}); err == nil {
		t.Error("nil At accepted")
	}
	spec := scriptedSpec(0.5, 0.1) // inverted bracket
	if _, err := Bisect(context.Background(), spec, Options{Runner: scriptedRunner(0.3)}); err == nil {
		t.Error("inverted bracket accepted")
	}
}

// TestBisectRoutesThroughExec: with Options.Exec set, every probe round
// must dispatch through the pluggable executor (the seam the
// lapses-serve client uses to serve bisection probes remotely), and the
// search result must match the in-process one bit for bit.
func TestBisectRoutesThroughExec(t *testing.T) {
	t.Parallel()
	base := Options{Runner: scriptedRunner(0.42)}
	want, err := Bisect(context.Background(), scriptedSpec(0.1, 1.0), base)
	if err != nil {
		t.Fatal(err)
	}
	var execCalls, execPoints atomic.Int64
	routed := base
	routed.Exec = func(ctx context.Context, grid []core.Config, opt Options) ([]Outcome, error) {
		execCalls.Add(1)
		execPoints.Add(int64(len(grid)))
		// Delegate to the in-process engine, as a real remote executor
		// delegates to a server running the same engine.
		inner := opt
		inner.Exec = nil
		return Run(ctx, grid, inner)
	}
	got, err := Bisect(context.Background(), scriptedSpec(0.1, 1.0), routed)
	if err != nil {
		t.Fatal(err)
	}
	if execCalls.Load() == 0 {
		t.Fatal("Bisect never consulted Options.Exec")
	}
	if int(execPoints.Load()) != got.Probes {
		t.Errorf("exec saw %d points, search accounted %d probes", execPoints.Load(), got.Probes)
	}
	if got.Lo != want.Lo || got.Hi != want.Hi || got.Converged != want.Converged || got.Probes != want.Probes {
		t.Errorf("routed search diverged: got %s want %s", got, want)
	}
}
