// Package sweep runs experiment grids — ordered lists of core.Config
// points — concurrently and deterministically. It is the execution engine
// behind every figure and table sweep in internal/experiments and the
// enabler for large scenario grids: points run on a worker pool sized by
// GOMAXPROCS (overridable), results come back in grid order regardless of
// completion order, per-point failures are captured instead of panicking,
// and an optional memo cache keyed by the full core.Config lets repeated
// points (shared baselines across figures) simulate exactly once.
//
// Because core.Run builds a private network per call, points are
// independent and the outcome of a grid is bit-identical whether it runs
// on 1 worker or N (see TestSweepDeterminism).
package sweep

import (
	"context"
	"runtime"
	"sync"

	"lapses/internal/core"
)

// Outcome is the terminal state of one grid point.
type Outcome struct {
	// Config is the point, copied from the grid in order.
	Config core.Config
	// Result is valid when Err is nil.
	Result core.Result
	// Err captures a point failure (configuration error, or ctx.Err()
	// for points the sweep never started). A point error does not stop
	// the rest of the grid.
	Err error
	// Cached reports that Result came from the memo cache rather than a
	// fresh simulation.
	Cached bool
}

// Options configure a Run.
type Options struct {
	// Workers bounds how many points simulate concurrently; <= 0 derives
	// a default from GOMAXPROCS divided by the largest per-run shard
	// count in the grid, so grid workers x intra-run shard workers never
	// oversubscribes the machine (a point with Config.Shards = 4 already
	// occupies four cores by itself).
	Workers int
	// Cache, when non-nil, memoizes results by core.Config.Key so
	// repeated points simulate once. A cache may be shared across Runs
	// and across goroutines.
	Cache *Cache
	// Runner replaces core.Run, for tests that need scripted results or
	// controllable blocking. Nil means core.Run.
	Runner func(core.Config) (core.Result, error)
}

// workersFor resolves the worker-pool width for a grid: an explicit
// Options.Workers wins; otherwise GOMAXPROCS is budgeted against the
// widest per-run sharding in the grid.
func (o Options) workersFor(grid []core.Config) int {
	if o.Workers > 0 {
		return o.Workers
	}
	maxShards := 1
	for i := range grid {
		// Budget against what the run will actually execute with — the
		// kernel clamps a shard request to the mesh's row count.
		if s := grid[i].EffectiveShards(); s > maxShards {
			maxShards = s
		}
	}
	w := runtime.GOMAXPROCS(0) / maxShards
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) runner() func(core.Config) (core.Result, error) {
	if o.Runner != nil {
		return o.Runner
	}
	return core.Run
}

// Run executes every point of grid and returns one Outcome per point, in
// grid order regardless of completion order.
//
// Point failures are per-point: Outcome.Err is set and the sweep
// continues, replacing the panic-on-error style of the old serial
// harness. Cancelling ctx stops dispatching; points already running
// finish (core.Run is not interruptible), unstarted points carry
// ctx.Err(), and Run returns ctx.Err() alongside the partial outcomes.
func Run(ctx context.Context, grid []core.Config, opt Options) ([]Outcome, error) {
	outs := make([]Outcome, len(grid))
	for i := range grid {
		outs[i].Config = grid[i]
	}
	run := opt.runner()

	workers := opt.workersFor(grid)
	if workers > len(grid) {
		workers = len(grid)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outs[i].Result, outs[i].Cached, outs[i].Err = opt.Cache.do(ctx, grid[i], run)
			}
		}()
	}
	dispatched := make([]bool, len(grid))
dispatch:
	for i := range grid {
		select {
		case idx <- i:
			dispatched[i] = true
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range outs {
			if !dispatched[i] {
				outs[i].Err = err
			}
		}
		return outs, err
	}
	return outs, nil
}
