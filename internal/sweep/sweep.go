// Package sweep runs experiment grids — ordered lists of core.Config
// points — concurrently and deterministically. It is the execution engine
// behind every figure and table sweep in internal/experiments and the
// enabler for large scenario grids: points run on a worker pool sized by
// GOMAXPROCS (overridable), results come back in grid order regardless of
// completion order, per-point failures are captured instead of panicking,
// and an optional memo cache keyed by the full core.Config lets repeated
// points (shared baselines across figures) simulate exactly once.
//
// Because core.Run builds a private network per call, points are
// independent and the outcome of a grid is bit-identical whether it runs
// on 1 worker or N (see TestSweepDeterminism).
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"lapses/internal/core"
)

// Outcome is the terminal state of one grid point.
type Outcome struct {
	// Config is the point, copied from the grid in order.
	Config core.Config
	// Result is valid when Err is nil.
	Result core.Result
	// Err captures a point failure (configuration error, or ctx.Err()
	// for points the sweep never started). A point error does not stop
	// the rest of the grid.
	Err error
	// Cached reports that Result came from the memo cache rather than a
	// fresh simulation.
	Cached bool
}

// Cacher is the memo-cache seam of the sweep engine: Do returns the
// result for cfg, running run on a miss, and reports whether the result
// was served from a completed or in-flight prior point. Implementations
// must be safe for concurrent use and are responsible for single-flight
// duplicate suppression. *Cache is the in-memory implementation;
// serve.Store is the disk-backed content-addressed one, which makes
// memoization survive process restarts.
type Cacher interface {
	Do(ctx context.Context, cfg core.Config, run func(core.Config) (core.Result, error)) (core.Result, bool, error)
}

// RunFunc is the signature of Run. Remote executors — the lapses-serve
// client, which submits grids to a long-running service instead of
// simulating in-process — satisfy it, so everything built on grids can
// swap execution backends through Options.Exec.
type RunFunc func(ctx context.Context, grid []core.Config, opt Options) ([]Outcome, error)

// Options configure a Run.
type Options struct {
	// Workers bounds how many points simulate concurrently; <= 0 derives
	// a default from GOMAXPROCS divided by the largest per-run shard
	// count in the grid, so grid workers x intra-run shard workers never
	// oversubscribes the machine (a point with Config.Shards = 4 already
	// occupies four cores by itself).
	Workers int
	// Cache, when non-nil, memoizes results by core.Config.Key so
	// repeated points simulate once. A cache may be shared across Runs
	// and across goroutines.
	Cache Cacher
	// Runner replaces core.Run, for tests that need scripted results or
	// controllable blocking. Nil means core.Run.
	Runner func(core.Config) (core.Result, error)
	// Exec, when non-nil, replaces Run for the composite helpers layered
	// on top of the engine — Bisect, SaturationScan and the experiment
	// grid runners — so a remote backend executes every point. Run
	// itself never consults Exec (an executor that called back into the
	// same Options would recurse).
	Exec RunFunc
	// OnPoint, when non-nil, is invoked as each point completes, from
	// the worker goroutine that ran it (calls may be concurrent; i is
	// the grid index). It is the progress-streaming hook: lapses-serve
	// feeds per-job status counters from it.
	OnPoint func(i int, o Outcome)
}

// workersFor resolves the worker-pool width for a grid: an explicit
// Options.Workers wins; otherwise GOMAXPROCS is budgeted against the
// widest per-run sharding in the grid.
func (o Options) workersFor(grid []core.Config) int {
	if o.Workers > 0 {
		return o.Workers
	}
	maxShards := 1
	for i := range grid {
		// Budget against what the run will actually execute with — the
		// kernel clamps a shard request to the mesh's row count.
		if s := grid[i].EffectiveShards(); s > maxShards {
			maxShards = s
		}
	}
	w := runtime.GOMAXPROCS(0) / maxShards
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) runner() func(core.Config) (core.Result, error) {
	if o.Runner != nil {
		return o.Runner
	}
	return core.Run
}

// exec resolves the grid executor composite helpers dispatch through.
func (o Options) exec() RunFunc {
	if o.Exec != nil {
		return o.Exec
	}
	return Run
}

// Ranges splits n grid points into contiguous [lo, hi) spans of at most
// size points each, in order. It is the decomposition seam lease-based
// executors hand out work by: the lapses-serve cluster coordinator turns
// a submitted grid into Ranges-shaped work units, leases them to worker
// instances, and merges the outcomes back in grid order — so the merged
// result is the same slice Run would have produced, regardless of how
// the ranges were interleaved across workers. size < 1 is treated as 1.
func Ranges(n, size int) [][2]int {
	if size < 1 {
		size = 1
	}
	var rs [][2]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		rs = append(rs, [2]int{lo, hi})
	}
	return rs
}

// PanicError is the per-point error a panicking simulation is converted
// into: sweep workers isolate panics so one bad point (say, a config
// whose algorithm identifier reaches the kernel's unknown-algorithm
// panic) yields an error Outcome while the rest of the grid — and the
// process hosting it, which may be a long-running server — survives.
type PanicError struct {
	// Value is the value the point panicked with.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: point panicked: %v", e.Value)
}

// safeRunner wraps run so a panic becomes a returned *PanicError.
func safeRunner(run func(core.Config) (core.Result, error)) func(core.Config) (core.Result, error) {
	return func(c core.Config) (res core.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				res, err = core.Result{}, &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		return run(c)
	}
}

// Run executes every point of grid and returns one Outcome per point, in
// grid order regardless of completion order.
//
// Point failures are per-point: Outcome.Err is set and the sweep
// continues, replacing the panic-on-error style of the old serial
// harness. A panicking point is recovered into a *PanicError Outcome
// the same way — the rest of the grid completes. Cancelling ctx stops
// dispatching; points already running finish (core.Run is not
// interruptible), unstarted points carry ctx.Err(), and Run returns
// ctx.Err() alongside the partial outcomes.
func Run(ctx context.Context, grid []core.Config, opt Options) ([]Outcome, error) {
	outs := make([]Outcome, len(grid))
	for i := range grid {
		outs[i].Config = grid[i]
	}
	// Panic recovery wraps the runner underneath the cache, so a cache
	// leader that panics still resolves its in-flight entry (waiters get
	// the error instead of hanging on a never-closed channel).
	run := safeRunner(opt.runner())
	cache := opt.Cache

	workers := opt.workersFor(grid)
	if workers > len(grid) {
		workers = len(grid)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if cache != nil {
					outs[i].Result, outs[i].Cached, outs[i].Err = cache.Do(ctx, grid[i], run)
				} else {
					outs[i].Result, outs[i].Err = run(grid[i])
				}
				if opt.OnPoint != nil {
					opt.OnPoint(i, outs[i])
				}
			}
		}()
	}
	dispatched := make([]bool, len(grid))
dispatch:
	for i := range grid {
		select {
		case idx <- i:
			dispatched[i] = true
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range outs {
			if !dispatched[i] {
				outs[i].Err = err
			}
		}
		return outs, err
	}
	return outs, nil
}
