package experiments

import (
	"bytes"
	"context"
	"encoding/csv"
	"strings"
	"sync"
	"testing"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// claimOvrPoint is the claim's overdriven bursty-uniform point: the
// 16x16 mesh under MMPP sources at offered load 0.9, run for a fixed
// 15000 cycles (the budget the run ends on, not the message count). Under
// this sustained overload the network tree-saturates and the accepted
// throughput becomes a property of the selection policy.
func claimOvrPoint(sel selection.Kind) core.Config {
	c := core.DefaultConfig()
	c.Seed = 1
	c.Pattern = traffic.Uniform
	c.Burst = congestionBurst()
	c.Selection = sel
	c.Load = 0.9
	c.SatLatency = 1e12
	c.MaxCycles = 15000
	c.Measure = 1 << 30
	return c
}

// Claim (congestion experiment headline): with bursty sources driving the
// network past saturation, notification-augmented selection sustains
// strictly higher accepted throughput than the best purely local
// heuristic — the downstream-occupancy signal steers worms around the
// backlog that local state cannot see. The simulation is deterministic,
// so the 1.05x bar is an exact regression threshold, not a statistical
// one (observed at this point: notify-max-credit 1.25x the best local;
// margins of 1.06-1.47x across seeds 1-3).
func TestClaimNotifySustainsBurstyThroughput(t *testing.T) {
	t.Parallel()
	locals := []selection.Kind{selection.LRU, selection.MaxCredit}
	notifies := []selection.Kind{selection.NotifyMaxCredit}
	if !testing.Short() {
		notifies = append(notifies, selection.NotifyLRU)
	}
	var grid []core.Config
	for _, sel := range append(append([]selection.Kind{}, locals...), notifies...) {
		grid = append(grid, claimOvrPoint(sel))
	}
	res := sweepClaims(t, grid...)
	bestLocal, bestNotify := 0.0, 0.0
	for i, sel := range locals {
		if thr := res[i].Throughput; thr > bestLocal {
			bestLocal = thr
		}
		t.Logf("%s: accepted %.5f", sel, res[i].Throughput)
	}
	for i, sel := range notifies {
		thr := res[len(locals)+i].Throughput
		if thr > bestNotify {
			bestNotify = thr
		}
		t.Logf("%s: accepted %.5f", sel, thr)
	}
	if bestLocal <= 0 || bestNotify <= 0 {
		t.Fatalf("zero accepted throughput: local %.5f notify %.5f", bestLocal, bestNotify)
	}
	if bestNotify <= 1.05*bestLocal {
		t.Errorf("notify selection accepted %.5f, best local %.5f: gain %.3f, want > 1.05",
			bestNotify, bestLocal, bestNotify/bestLocal)
	}
}

// TestCongestionQuick is the -short tier of the congestion experiment: a
// reduced workload list (bursty uniform, bursty hotspot) through the real
// simulator at Quick fidelity, pinning the machinery end to end — MMPP
// sources, notify selection, the overdriven column and the saturation
// searches — plus the CSV schema.
func TestCongestionQuick(t *testing.T) {
	t.Parallel()
	r := Runner{Fidelity: Quick, Seed: 1, Cache: testCache}
	all := CongestionWorkloads()
	var workloads []CongestionWorkload
	for _, w := range all {
		if w.Name == "bursty-uniform" || w.Name == "bursty-hotspot" {
			workloads = append(workloads, w)
		}
	}
	if len(workloads) != 2 {
		t.Fatalf("reduced workload list = %d entries", len(workloads))
	}
	rows, err := r.congestion(context.Background(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, row := range rows {
		if row.Plan != nil {
			t.Fatalf("%s: unexpected fault plan", row.Workload.Name)
		}
		for _, pol := range CongestionPolicies {
			c := row.Cells[pol]
			if c == nil {
				t.Fatalf("%s/%s: missing cell", row.Workload.Name, pol)
			}
			if c.Lat.Saturated {
				t.Errorf("%s/%s: moderate-load latency point saturated at load %.2f",
					row.Workload.Name, pol, row.Workload.LatLoad)
			}
			if c.Ovr.Throughput <= 0 {
				t.Errorf("%s/%s: overdriven run accepted nothing", row.Workload.Name, pol)
			}
			if !c.Search.Converged {
				t.Errorf("%s/%s: saturation search did not converge", row.Workload.Name, pol)
			}
			if c.Sat.Throughput <= 0 || c.Search.Lo <= 0 {
				t.Errorf("%s/%s: degenerate saturation point (load %.3f, thr %.5f)",
					row.Workload.Name, pol, c.Search.Lo, c.Sat.Throughput)
			}
		}
		if gain := row.NotifyGain(); gain <= 0 {
			t.Errorf("%s: degenerate notify gain %.3f", row.Workload.Name, gain)
		}
	}

	var buf bytes.Buffer
	if err := CongestionCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + len(rows)*len(CongestionPolicies); len(recs) != want {
		t.Fatalf("CSV has %d records, want %d", len(recs), want)
	}
	if recs[0][0] != "workload" || recs[0][7] != "policy" || recs[0][11] != "ovr_throughput" {
		t.Fatalf("CSV header: %v", recs[0])
	}

	var render bytes.Buffer
	RenderCongestion(&render, rows)
	for _, want := range []string{"bursty-uniform", "notify-max-credit", "notify gain"} {
		if !strings.Contains(render.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestCongestionGridShape checks the declared grid through a scripted
// runner: every (workload, policy) contributes one moderate-load latency
// point, one fixed-budget overdriven point, and one converging saturation
// search; the fault row shares one link-only plan across its policies.
// The scripted simulator accepts offered load up to a knee at 0.3, inside
// every workload's search bracket.
func TestCongestionGridShape(t *testing.T) {
	t.Parallel()
	satRate := topology.New(false, 16, 16).SaturationInjectionRate()
	var mu sync.Mutex
	var got []core.Config
	r := Runner{Fidelity: Quick, Seed: 1, run: func(c core.Config) (core.Result, error) {
		mu.Lock()
		got = append(got, c)
		mu.Unlock()
		accepted := c.Load
		if accepted > 0.3 {
			accepted = 0.05
		}
		return core.Result{Throughput: accepted * satRate, AvgLatency: 50, TotalCycles: 1000, Delivered: 1}, nil
	}}
	rows, err := r.Congestion(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	workloads := CongestionWorkloads()
	if len(rows) != len(workloads) {
		t.Fatalf("got %d rows, want %d", len(rows), len(workloads))
	}
	lat, ovr := 0, 0
	for _, c := range got {
		switch {
		case c.MaxCycles == 0:
			lat++
			if c.Auto != nil {
				t.Fatalf("quick-tier latency point carries Auto: %+v", c.Auto)
			}
		case c.Measure == 1<<30:
			ovr++
			if c.MaxCycles != Quick.congestionOvrCycles() {
				t.Fatalf("overdriven point budget %d, want %d", c.MaxCycles, Quick.congestionOvrCycles())
			}
		default: // saturation probe
			if c.Auto != nil {
				t.Fatalf("saturation probe carries Auto: %+v", c.Auto)
			}
		}
		if c.Faults != nil && c.Faults.NumRouters() != 0 {
			t.Fatalf("congestion plans must be link-only, got %s", c.Faults)
		}
	}
	if want := len(workloads) * len(CongestionPolicies); lat != want || ovr != want {
		t.Fatalf("lat points %d, ovr points %d, want %d each", lat, ovr, want)
	}
	for _, row := range rows {
		if (row.Workload.FaultLinks > 0) != (row.Plan != nil) {
			t.Fatalf("%s: fault plan mismatch (links %d, plan %v)",
				row.Workload.Name, row.Workload.FaultLinks, row.Plan)
		}
		for _, pol := range CongestionPolicies {
			c := row.Cells[pol]
			if !c.Search.Converged {
				t.Fatalf("%s/%s: search did not converge", row.Workload.Name, pol)
			}
			if c.Search.Lo > 0.3+1e-9 || c.Search.Lo < 0.3-Quick.satTol()-1e-9 {
				t.Fatalf("%s/%s: search found knee at %.3f, scripted knee is 0.3",
					row.Workload.Name, pol, c.Search.Lo)
			}
			if c.Lat.AvgLatency != 50 {
				t.Fatalf("%s/%s: latency slot not scattered", row.Workload.Name, pol)
			}
		}
	}
}
