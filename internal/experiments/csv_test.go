package experiments

import (
	"bytes"
	"context"
	"encoding/csv"
	"strings"
	"sync"
	"testing"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/traffic"
)

func TestTable3CSV(t *testing.T) {
	t.Parallel()
	rows := []Table3Row{
		{MsgLen: 5, LookAhead: core.Result{AvgLatency: 50}, NoLookAhd: core.Result{AvgLatency: 60}},
		{MsgLen: 20, LookAhead: core.Result{AvgLatency: 75}, NoLookAhd: core.Result{Saturated: true}},
	}
	var buf bytes.Buffer
	if err := Table3CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1][0] != "5" || recs[1][1] != "50.000" {
		t.Errorf("row 1 = %v", recs[1])
	}
	// Saturated cell must be empty.
	if recs[2][2] != "" {
		t.Errorf("saturated latency cell = %q", recs[2][2])
	}
}

func TestFig6CSV(t *testing.T) {
	t.Parallel()
	// Synthetic row: no need to run the sweep to test serialization.
	row := Fig6Row{Pattern: traffic.Uniform, Load: 0.5, ByPSH: map[selection.Kind]core.Result{}}
	for i, psh := range Fig6PSHs {
		row.ByPSH[psh] = core.Result{AvgLatency: float64(100 + i), Throughput: 0.1}
	}
	var buf bytes.Buffer
	if err := Fig6CSV(&buf, []Fig6Row{row}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+len(Fig6PSHs) {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1][2] != "static-xy" || recs[1][3] != "100.000" {
		t.Errorf("row = %v", recs[1])
	}
}

func TestFig5AndTable4CSV(t *testing.T) {
	t.Parallel()
	f5 := []Fig5Row{{
		Pattern: traffic.Transpose, Load: 0.3,
		NoLADet:   core.Result{Saturated: true},
		NoLAAdapt: core.Result{AvgLatency: 120},
		LADet:     core.Result{Saturated: true},
		LAAdapt:   core.Result{AvgLatency: 100},
	}}
	var buf bytes.Buffer
	if err := Fig5CSV(&buf, f5); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 5 {
		t.Errorf("fig5 lines = %d want 5", got)
	}
	t4 := []Table4Row{{
		Pattern: traffic.Uniform, Load: 0.2,
		MetaAdaptive: core.Result{AvgLatency: 140},
		MetaDet:      core.Result{AvgLatency: 90},
		Full:         core.Result{AvgLatency: 85},
		ES:           core.Result{AvgLatency: 85},
	}}
	buf.Reset()
	if err := Table4CSV(&buf, t4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "meta-adaptive") {
		t.Error("table4 csv missing scheme column")
	}
}

// TestWriteCSVReps: the replication writer must derive one seed per rep,
// keep rep 0's identifying columns, and append mean/stderr columns
// computed across the reps.
func TestWriteCSVReps(t *testing.T) {
	t.Parallel()
	var mu sync.Mutex
	seeds := map[int64]bool{}
	r := Runner{Fidelity: Quick, Workers: 1, Seed: 7, run: func(c core.Config) (core.Result, error) {
		mu.Lock()
		seeds[c.Seed] = true
		mu.Unlock()
		// Latency varies with the seed so stderr is non-zero and exactly
		// predictable: rep index = (seed-7)/stride, latency 100+rep.
		rep := (c.Seed - 7) / repSeedStride
		return core.Result{AvgLatency: 100 + float64(rep), Throughput: 0.5, Delivered: 1}, nil
	}}
	var buf bytes.Buffer
	if err := r.WriteCSVReps(context.Background(), &buf, "table4", 3); err != nil {
		t.Fatal(err)
	}
	for _, want := range []int64{7, 7 + repSeedStride, 7 + 2*repSeedStride} {
		if !seeds[want] {
			t.Errorf("rep seed %d never ran (saw %v)", want, seeds)
		}
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := recs[0]
	if header[len(header)-2] != "avg_latency_mean" || header[len(header)-1] != "avg_latency_stderr" {
		t.Fatalf("header = %v", header)
	}
	// Every data row: rep-0 value 100.000, mean 101 over {100,101,102},
	// stderr = stddev(1)/sqrt(3) = 0.5774.
	for _, rec := range recs[1:] {
		if rec[3] != "100.000" {
			t.Fatalf("rep-0 latency column = %q", rec[3])
		}
		if rec[len(rec)-2] != "101.0000" {
			t.Fatalf("mean = %q", rec[len(rec)-2])
		}
		if rec[len(rec)-1] != "0.5774" {
			t.Fatalf("stderr = %q", rec[len(rec)-1])
		}
	}
	// reps=1 falls back to the plain schema.
	buf.Reset()
	if err := r.WriteCSVReps(context.Background(), &buf, "table4", 1); err != nil {
		t.Fatal(err)
	}
	recs, err = csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs[0]) != 5 {
		t.Fatalf("reps=1 header = %v", recs[0])
	}
	// Experiments without a CSV form (or not in repCols) error cleanly.
	if err := r.WriteCSVReps(context.Background(), &buf, "table5", 2); err == nil {
		t.Error("table5 accepted for replication")
	}
}

func TestWriteCSVByNameErrors(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	r := fakeRunner()
	if err := r.WriteCSV(context.Background(), &buf, "table5"); err == nil {
		t.Error("table5 should have no CSV form")
	}
	for _, name := range []string{"fig5", "table3", "fig6", "table4"} {
		buf.Reset()
		if err := r.WriteCSV(context.Background(), &buf, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if recs, err := csv.NewReader(&buf).ReadAll(); err != nil || len(recs) < 2 {
			t.Errorf("%s: csv = %d records, err %v", name, len(recs), err)
		}
	}
	// The package-level wrapper shares the no-CSV error path.
	if err := WriteCSVByName(&buf, "nope", Quick, 1); err == nil {
		t.Error("expected error for unknown experiment")
	}
}
