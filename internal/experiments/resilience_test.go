package experiments

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"lapses/internal/core"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// TestResilienceQuick is the -short tier of the resilience experiment: a
// reduced grid (uniform traffic, 0 and 4 failed links) through the real
// simulator at Quick fidelity. It pins the qualitative claim the full
// experiment makes — adaptive routing sustains a higher saturation load
// than deterministic routing once links fail — and keeps the fault path
// and the bisection saturation search exercised on every CI run.
func TestResilienceQuick(t *testing.T) {
	t.Parallel()
	r := Runner{Fidelity: Quick, Seed: 1, Cache: testCache}
	rows, err := r.resilience(context.Background(), []traffic.Kind{traffic.Uniform}, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Plan != nil || rows[0].FaultLinks != 0 {
		t.Fatalf("zero-fault row malformed: %+v", rows[0])
	}
	if rows[1].Plan == nil || rows[1].Plan.NumLinks() != 4 {
		t.Fatalf("4-fault row malformed: plan %v", rows[1].Plan)
	}
	for _, row := range rows {
		if row.AdaptiveSat.Throughput <= 0 || row.DetSat.Throughput <= 0 {
			t.Fatalf("faults=%d: zero saturation throughput: %+v", row.FaultLinks, row)
		}
		if row.AdaptiveLat.Saturated {
			t.Fatalf("faults=%d: adaptive latency point saturated at load 0.2", row.FaultLinks)
		}
		for _, s := range []struct {
			name   string
			conv   bool
			probes int
			dense  int
			load   float64
		}{
			{"adaptive", row.AdaptiveSearch.Converged, row.AdaptiveSearch.Probes, row.AdaptiveSearch.DensePoints, row.AdaptiveSatLoad()},
			{"deterministic", row.DetSearch.Converged, row.DetSearch.Probes, row.DetSearch.DensePoints, row.DetSatLoad()},
		} {
			if !s.conv {
				t.Fatalf("faults=%d: %s saturation search did not converge", row.FaultLinks, s.name)
			}
			if s.load <= 0 {
				t.Fatalf("faults=%d: %s saturation load %v", row.FaultLinks, s.name, s.load)
			}
			// The search's reason to exist: far fewer probes than the
			// dense grid it replaces (the >= 2x cycle reduction itself is
			// pinned by TestBisectCycleReduction in internal/sweep).
			if s.probes >= s.dense {
				t.Fatalf("faults=%d: %s search probed %d points, dense grid is %d", row.FaultLinks, s.name, s.probes, s.dense)
			}
		}
	}
	if gain := rows[1].ThroughputGain(); gain <= 1.1 {
		t.Errorf("4 failed links: adaptive/deterministic throughput gain %.2f, want > 1.1", gain)
	}
	if rows[1].AdaptiveSatLoad() <= rows[1].DetSatLoad() {
		t.Errorf("4 failed links: adaptive saturation load %.3f not above deterministic %.3f",
			rows[1].AdaptiveSatLoad(), rows[1].DetSatLoad())
	}

	var buf bytes.Buffer
	if err := ResilienceCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := 1 + 2*len(rows); len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "pattern,fault_links,fault_plan,policy,avg_latency,saturated,sat_load,sat_throughput,sat_converged") {
		t.Fatalf("CSV header: %q", lines[0])
	}
}

// TestResilienceClaim asserts the experiment's headline result at full
// grid breadth: on the 16x16 mesh, the adaptive LAPSES router (Duato +
// ES + LRU) sustains a measurably higher saturation point than
// deterministic routing at every point with >= 4 failed links, on both
// patterns. The simulation is deterministic, so the 1.2x bar is an exact
// regression threshold, not a statistical one (observed gains with the
// bisection methodology: 1.27-3.01).
func TestResilienceClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience claim runs 12 saturation searches; TestResilienceQuick is the -short stand-in")
	}
	t.Parallel()
	r := Runner{Fidelity: Quick, Seed: 1, Cache: testCache}
	rows, err := r.resilience(context.Background(), ResiliencePatterns, []int{4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if gain := row.ThroughputGain(); gain <= 1.2 {
			t.Errorf("%s faults=%d: adaptive gain %.2f (adaptive %.4f vs deterministic %.4f), want > 1.2",
				row.Pattern, row.FaultLinks, gain, row.AdaptiveSat.Throughput, row.DetSat.Throughput)
		}
		if row.AdaptiveSatLoad() <= row.DetSatLoad() {
			t.Errorf("%s faults=%d: adaptive saturation load %.3f not above deterministic %.3f",
				row.Pattern, row.FaultLinks, row.AdaptiveSatLoad(), row.DetSatLoad())
		}
	}
}

// TestResilienceGridShape checks the declared grid through a scripted
// runner: every (pattern, count, policy) contributes one latency point
// at the moderate load plus one converging saturation search, and both
// policies of a row share the same fault plan. The scripted simulator
// accepts offered load up to a knee at 0.45, so the searches must
// bracket 0.45.
func TestResilienceGridShape(t *testing.T) {
	t.Parallel()
	satRate := topology.New(false, 16, 16).SaturationInjectionRate()
	var mu sync.Mutex
	var got []core.Config
	r := Runner{Fidelity: Quick, Seed: 1, run: func(c core.Config) (core.Result, error) {
		mu.Lock()
		got = append(got, c)
		mu.Unlock()
		// A hard knee at 0.45: full acceptance below it, a collapse
		// above, so the classifier flips exactly there for every
		// pattern's injecting fraction.
		accepted := c.Load
		if accepted > 0.45 {
			accepted = 0.2
		}
		return core.Result{Throughput: accepted * satRate, AvgLatency: 50, TotalCycles: 1000, Delivered: 1}, nil
	}}
	rows, err := r.Resilience(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(ResiliencePatterns) * len(ResilienceFaultCounts)
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	lat := 0
	for _, c := range got {
		if c.MaxCycles == 0 {
			lat++
			if c.Load != 0.2 {
				t.Fatalf("latency point at load %v, want 0.2", c.Load)
			}
			if c.Auto != nil {
				t.Fatalf("quick-tier latency point carries Auto: %+v", c.Auto)
			}
		} else if c.Auto != nil {
			t.Fatalf("saturation probe carries Auto (fixed-horizon probes required): %+v", c.Auto)
		}
		if c.Faults != nil && c.Faults.NumRouters() != 0 {
			t.Fatalf("resilience plans must be link-only, got %s", c.Faults)
		}
	}
	if want := wantRows * 2; lat != want {
		t.Fatalf("latency points: %d, want %d", lat, want)
	}
	for _, row := range rows {
		for name, s := range map[string]float64{"adaptive": row.AdaptiveSatLoad(), "deterministic": row.DetSatLoad()} {
			if s > 0.45+1e-9 || s < 0.45-Quick.satTol()-1e-9 {
				t.Fatalf("%s/%d/%s: search found knee at %.3f, scripted knee is 0.45", row.Pattern, row.FaultLinks, name, s)
			}
		}
		if !row.AdaptiveSearch.Converged || !row.DetSearch.Converged {
			t.Fatalf("%s/%d: search did not converge", row.Pattern, row.FaultLinks)
		}
	}
}
