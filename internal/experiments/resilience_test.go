package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"lapses/internal/core"
	"lapses/internal/traffic"
)

// TestResilienceQuick is the -short tier of the resilience experiment: a
// reduced grid (uniform traffic, 0 and 4 failed links) through the real
// simulator at Quick fidelity. It pins the qualitative claim the full
// experiment makes — adaptive routing sustains higher saturation
// throughput than deterministic routing once links fail — and keeps the
// fault path exercised on every CI run.
func TestResilienceQuick(t *testing.T) {
	t.Parallel()
	r := Runner{Fidelity: Quick, Seed: 1, Cache: testCache}
	rows, err := r.resilience(context.Background(), []traffic.Kind{traffic.Uniform}, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Plan != nil || rows[0].FaultLinks != 0 {
		t.Fatalf("zero-fault row malformed: %+v", rows[0])
	}
	if rows[1].Plan == nil || rows[1].Plan.NumLinks() != 4 {
		t.Fatalf("4-fault row malformed: plan %v", rows[1].Plan)
	}
	for _, row := range rows {
		if row.AdaptiveSat.Throughput <= 0 || row.DetSat.Throughput <= 0 {
			t.Fatalf("faults=%d: zero saturation throughput: %+v", row.FaultLinks, row)
		}
		if row.AdaptiveLat.Saturated {
			t.Fatalf("faults=%d: adaptive latency point saturated at load 0.2", row.FaultLinks)
		}
	}
	if gain := rows[1].ThroughputGain(); gain <= 1.1 {
		t.Errorf("4 failed links: adaptive/deterministic throughput gain %.2f, want > 1.1", gain)
	}

	var buf bytes.Buffer
	if err := ResilienceCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := 1 + 2*len(rows); len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "pattern,fault_links,fault_plan,policy") {
		t.Fatalf("CSV header: %q", lines[0])
	}
}

// TestResilienceClaim asserts the experiment's headline result at full
// grid breadth: on the 16x16 mesh, the adaptive LAPSES router (Duato +
// ES + LRU) sustains measurably higher saturation throughput than
// deterministic routing at every point with >= 4 failed links, on both
// patterns. The simulation is deterministic, so the 1.2x bar is an exact
// regression threshold, not a statistical one (observed gains: 1.48-2.3).
func TestResilienceClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience claim sweeps 24 full points; TestResilienceQuick is the -short stand-in")
	}
	t.Parallel()
	r := Runner{Fidelity: Quick, Seed: 1, Cache: testCache}
	rows, err := r.resilience(context.Background(), ResiliencePatterns, []int{4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if gain := row.ThroughputGain(); gain <= 1.2 {
			t.Errorf("%s faults=%d: adaptive gain %.2f (adaptive %.4f vs deterministic %.4f), want > 1.2",
				row.Pattern, row.FaultLinks, gain, row.AdaptiveSat.Throughput, row.DetSat.Throughput)
		}
	}
}

// TestResilienceGridShape checks the declared grid through a scripted
// runner: every (pattern, count, policy) contributes one latency and one
// saturation point, saturation points carry the lifted guard and fixed
// budget, and both policies of a row share the same fault plan.
func TestResilienceGridShape(t *testing.T) {
	t.Parallel()
	var got []core.Config
	r := Runner{Fidelity: Quick, Seed: 1, run: func(c core.Config) (core.Result, error) {
		got = append(got, c)
		return core.Result{Throughput: 0.1}, nil
	}}
	// The scripted runner sees points in grid order; workers=1 keeps the
	// capture race-free.
	r.Workers = 1
	rows, err := r.Resilience(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(ResiliencePatterns) * len(ResilienceFaultCounts)
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	if want := wantRows * 4; len(got) != want {
		t.Fatalf("grid ran %d points, want %d", len(got), want)
	}
	sat, lat := 0, 0
	for _, c := range got {
		if c.MaxCycles > 0 {
			sat++
			if c.SatLatency < 1e9 {
				t.Fatalf("saturation point without lifted latency guard: %+v", c)
			}
		} else {
			lat++
			if c.Load != 0.2 {
				t.Fatalf("latency point at load %v, want 0.2", c.Load)
			}
		}
		if c.Faults != nil && c.Faults.NumRouters() != 0 {
			t.Fatalf("resilience plans must be link-only, got %s", c.Faults)
		}
	}
	if sat != lat || sat != wantRows*2 {
		t.Fatalf("point mix: %d sat, %d lat, want %d each", sat, lat, wantRows*2)
	}
}
