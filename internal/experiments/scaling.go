package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/sweep"
	"lapses/internal/traffic"
)

// The scaling experiment measures how the simulator — and the paper's
// adaptivity story — behaves as the mesh grows beyond the paper's 16x16:
// the saturation load and sustained throughput (the architectural
// observables, located by the bisection saturation search) and
// simulation wall-clock (the harness observable) from 8x8 up to 32x32,
// adaptive (LA Duato + ES + LRU) versus deterministic (XY + static),
// each at shards 1 and 4. The shard series exercises the deterministic
// sharded kernel end to end: both shard counts must report bit-identical
// Results (the smoke test asserts it), while their wall-clock columns
// show what spatial parallelism buys on the host — on a multi-core
// machine shards=4 approaches a 4x single-run speedup; on one core it
// measures the barrier overhead.
//
// The timed points run uncached through a timing wrapper (a memoized
// Result has no meaningful wall-clock), with the sweep engine budgeting
// grid workers against the shard count so the wall-clock column measures
// the configured plan rather than oversubscription noise. The saturation
// search runs once per (mesh, policy) — it is shard-independent, since
// shard counts never change a Result — and its probe/cycle accounting is
// logged against the dense-grid equivalent.

// ScalingDims is the mesh-size axis.
var ScalingDims = [][]int{{8, 8}, {16, 16}, {24, 24}, {32, 32}}

// ScalingShardCounts are the per-run shard counts each point runs at.
var ScalingShardCounts = []int{1, 4}

// ScalingRow is one (mesh, policy, shards) point.
type ScalingRow struct {
	Dims   []int
	Policy string // "adaptive" or "deterministic"
	Shards int
	// Sat is the overdriven fixed-budget run the wall-clock column
	// times; it doubles as the shard-equivalence probe (its Result must
	// be bit-identical across the shard axis).
	Sat core.Result
	// SatLoad is the bisection-located saturation load and SatSustained
	// the run at it (Throughput = sustained acceptance); Search carries
	// the full search outcome. All three are shard-independent and
	// shared by the row's shard variants.
	SatLoad      float64
	SatSustained core.Result
	Search       sweep.BisectResult
	// Wall is the wall-clock of the overdriven run; CyclesPerSec is
	// simulated cycles per wall second (TotalCycles / Wall).
	Wall         time.Duration
	CyclesPerSec float64
}

// scalingSatLoad overdrives uniform traffic well past saturation,
// matching the resilience experiment's methodology.
const scalingSatLoad = 0.9

// scalingSatCycles is the fixed cycle budget of one saturation run.
func (f Fidelity) scalingSatCycles() int64 {
	switch f {
	case Quick:
		return 4000
	case Paper:
		return 40000
	}
	return 15000
}

// scalingDims trims the mesh axis for the quick tier: the large meshes
// are the point of the experiment but not of a smoke test.
func (r Runner) scalingDims() [][]int {
	if r.Fidelity == Quick {
		return [][]int{{8, 8}, {16, 16}}
	}
	return ScalingDims
}

// Scaling runs the full grid through the sweep engine.
func (r Runner) Scaling(ctx context.Context) ([]ScalingRow, error) {
	policies := []struct {
		name string
		alg  core.Alg
		sel  selection.Kind
	}{
		{"adaptive", core.AlgDuato, selection.LRU},
		{"deterministic", core.AlgXY, selection.StaticXY},
	}
	dims := r.scalingDims()
	// Rows are addressed by pointer from the grid sinks, so the slice
	// must not reallocate after the first &rows[i] is taken.
	rows := make([]ScalingRow, 0, len(dims)*len(policies)*len(ScalingShardCounts))
	var g grid
	for _, d := range dims {
		for _, pol := range policies {
			for _, shards := range ScalingShardCounts {
				base := r.base()
				// The timed column is defined as a fixed-budget overdriven
				// run (README: "when a fixed tier is still required"), so
				// it sheds Fidelity Auto's adaptive tier — early stopping
				// would change what wall-clock and ovr-thr measure.
				base.Auto = nil
				base.Dims = d
				base.Algorithm = pol.alg
				base.Selection = pol.sel
				base.Pattern = traffic.Uniform
				base.Load = scalingSatLoad
				base.SatLatency = 1e12
				base.MaxCycles = r.Fidelity.scalingSatCycles()
				base.Measure = 1 << 30 // the cycle budget ends the run
				base.Shards = shards
				rows = append(rows, ScalingRow{Dims: d, Policy: pol.name, Shards: shards})
				row := &rows[len(rows)-1]
				g.add(base, func(res core.Result) { row.Sat = res })
			}
		}
	}
	// Wall-clock needs real executions: bypass the memo cache and time
	// each core.Run. Results are scattered by the grid in order, and the
	// timing wrapper records durations keyed the same way.
	opt := r.opts()
	opt.Cache = nil
	inner := opt.Runner
	if inner == nil {
		inner = core.Run
	}
	durs := make(map[string]time.Duration, len(g.cfgs))
	var durKeys []string
	for _, c := range g.cfgs {
		durKeys = append(durKeys, c.Key())
	}
	opt.Runner = func(c core.Config) (core.Result, error) {
		start := time.Now()
		res, err := inner(c)
		durs[c.Key()] = time.Since(start)
		return res, err
	}
	// The durs map is written concurrently by grid workers — except that
	// every key is distinct and written exactly once, which is still a
	// data race on the map structure itself. Serialize: scaling's
	// wall-clock column is only meaningful without co-running points
	// anyway (two timed simulations sharing the machine inflate each
	// other).
	opt.Workers = 1
	if err := g.run(ctx, opt); err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Wall = durs[durKeys[i]]
		if s := rows[i].Wall.Seconds(); s > 0 {
			rows[i].CyclesPerSec = float64(rows[i].Sat.TotalCycles) / s
		}
	}
	// Saturation search, once per (mesh, policy), all fanned out
	// together: the located load is a property of the architecture, not
	// of the execution plan, so the shard variants share it. Probes run
	// unsharded through the regular options (worker budget, memo cache).
	type meshPolicy struct {
		mesh   string
		policy string
	}
	// This dedup loop is single-goroutine (runSearches serializes the
	// sinks later), so the map needs no locking here.
	found := map[meshPolicy]sweep.BisectResult{}
	queued := map[meshPolicy]bool{}
	var searches []satSearch
	for i := range rows {
		key := meshPolicy{dimsString(rows[i].Dims), rows[i].Policy}
		if queued[key] {
			continue
		}
		queued[key] = true
		base := r.base()
		// Like the timed runs above, probes shed the adaptive tier (see
		// SaturationSpec) and stay unsharded.
		base.Dims = rows[i].Dims
		for _, pol := range policies {
			if pol.name == rows[i].Policy {
				base.Algorithm = pol.alg
				base.Selection = pol.sel
			}
		}
		base.Pattern = traffic.Uniform
		lo, hi := satBracket(traffic.Uniform)
		searches = append(searches, satSearch{
			name: fmt.Sprintf("scaling(%s, %s)", key.mesh, key.policy),
			spec: SaturationSpec(base, lo, hi, r.Fidelity.satTol()),
			sink: func(res sweep.BisectResult) { found[key] = res },
		})
	}
	if err := runSearches(ctx, searches, r.opts()); err != nil {
		return nil, err
	}
	for i := range rows {
		res := found[meshPolicy{dimsString(rows[i].Dims), rows[i].Policy}]
		rows[i].SatLoad = res.Lo
		rows[i].SatSustained = res.LoResult
		rows[i].Search = res
	}
	return rows, nil
}

// RenderScaling prints the experiment in the repo's table style.
func RenderScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintln(w, "Scaling: saturation point (bisection) and simulation wall-clock vs mesh size")
	fmt.Fprintln(w, "(adaptive = LA Duato + ES + LRU; deterministic = XY + static; wall-clock overdriven at load 0.9)")
	fmt.Fprintf(w, "%-8s %-14s %7s %9s %10s %10s %12s %14s %8s\n",
		"mesh", "policy", "shards", "sat-load", "sat-thr", "ovr-thr", "wall-clock", "cycles/sec", "skipped")
	var searches []sweep.BisectResult
	seen := map[string]bool{}
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-14s %7d %9.3f %10.4f %10.4f %12s %14.0f %8d\n",
			dimsString(r.Dims), r.Policy, r.Shards,
			r.SatLoad, r.SatSustained.Throughput,
			r.Sat.Throughput, r.Wall.Round(time.Millisecond), r.CyclesPerSec, r.Sat.SkippedCycles)
		key := dimsString(r.Dims) + "/" + r.Policy
		if !seen[key] {
			seen[key] = true
			searches = append(searches, r.Search)
			if !r.Search.Converged {
				fmt.Fprintf(w, "warning: %s/%s saturation search did not converge (bracket [%.3f, %.3f]); sat-load is a lower bound\n",
					dimsString(r.Dims), r.Policy, r.Search.Lo, r.Search.Hi)
			}
		}
	}
	probes, cycles, dense := searchCost(searches...)
	fmt.Fprintf(w, "\n[saturation search: %d probes / %d simulated cycles across %d searches; dense-grid path: %d points]\n",
		probes, cycles, len(searches), dense)
}

func dimsString(dims []int) string {
	s := ""
	for i, d := range dims {
		if i > 0 {
			s += "x"
		}
		s += strconv.Itoa(d)
	}
	return s
}

// ScalingCSV writes one row per (mesh, policy, shards).
func ScalingCSV(w io.Writer, rows []ScalingRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"mesh", "nodes", "policy", "shards",
		"sat_load", "sat_throughput", "sat_converged", "overdriven_throughput", "wall_ns", "cycles_per_sec",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		nodes := 1
		for _, d := range r.Dims {
			nodes *= d
		}
		rec := []string{
			dimsString(r.Dims),
			strconv.Itoa(nodes),
			r.Policy,
			strconv.Itoa(r.Shards),
			strconv.FormatFloat(r.SatLoad, 'f', 4, 64),
			strconv.FormatFloat(r.SatSustained.Throughput, 'f', 5, 64),
			strconv.FormatBool(r.Search.Converged),
			strconv.FormatFloat(r.Sat.Throughput, 'f', 5, 64),
			strconv.FormatInt(r.Wall.Nanoseconds(), 10),
			strconv.FormatFloat(r.CyclesPerSec, 'f', 0, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
