package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lapses/internal/core"
	"lapses/internal/fault"
	"lapses/internal/selection"
	"lapses/internal/sweep"
	"lapses/internal/traffic"
)

// The congestion experiment measures what the piggybacked congestion
// notifications buy over the paper's purely local path-selection
// heuristics: the notify-* selectors steer worms away from output ports
// whose downstream router reported high occupancy on its last credit,
// while the local heuristics (LRU, MAX-CREDIT) see only the upstream
// side of each link. The workloads are the ones that create the
// non-uniform, time-varying congestion the signal exists for — bursty
// MMPP sources, a persistent hotspot, their combination, a two-class QoS
// mix, and bursty traffic over a damaged mesh (reusing the resilience
// experiment's degraded-topology machinery).
//
// Three measurements per (workload, policy) cell:
//   - mean latency at a moderate load (the "does the signal hurt when
//     nothing is congested" column);
//   - accepted throughput of a fixed-budget overdriven run, the scaling
//     experiment's methodology — under sustained overload the network
//     tree-saturates and the accepted rate becomes a property of how
//     well selection routes around the backlog (the headline column:
//     the claim test pins notify > best local on bursty uniform);
//   - the bisection-located saturation load and its sustained
//     acceptance, as in the resilience experiment.

// CongestionWorkload is one row of the workload axis.
type CongestionWorkload struct {
	Name    string
	Pattern traffic.Kind
	// Burst, when non-nil, replaces the stationary Poisson sources with
	// bursty MMPP on/off sources at the same mean rate.
	Burst *traffic.Burst
	// QoS, when non-nil, enables the two-class traffic mix with VC
	// reservation.
	QoS *core.QoSSpec
	// FaultLinks > 0 degrades the mesh with that many failed links (the
	// plan is drawn like the resilience experiment's, seeded from the
	// runner's seed).
	FaultLinks int
	// LatLoad is the moderate load of the latency column; OvrLoad the
	// offered load of the fixed-budget overdriven run.
	LatLoad, OvrLoad float64
	// SatLo, SatHi bracket the saturation search.
	SatLo, SatHi float64
}

// congestionBurst is the default burstiness: sources are ON 30% of the
// time in bursts of mean 200 cycles, so the instantaneous offered load
// during a burst is 3.3x the mean.
func congestionBurst() *traffic.Burst { return &traffic.Burst{OnFrac: 0.3, MeanOn: 200} }

// CongestionWorkloads is the default workload axis. Hotspot rows carry
// much lower loads because the hot node's ejection channel caps the
// pattern's saturation near load 0.15 on the 16x16 mesh.
func CongestionWorkloads() []CongestionWorkload {
	qos := &core.QoSSpec{HiFrac: 0.2, HiVCs: 1}
	return []CongestionWorkload{
		{Name: "bursty-uniform", Pattern: traffic.Uniform, Burst: congestionBurst(),
			LatLoad: 0.2, OvrLoad: 0.9, SatLo: 0.1, SatHi: 1.0},
		{Name: "bursty-transpose", Pattern: traffic.Transpose, Burst: congestionBurst(),
			LatLoad: 0.15, OvrLoad: 0.5, SatLo: 0.05, SatHi: 0.7},
		{Name: "hotspot", Pattern: traffic.Hotspot,
			LatLoad: 0.08, OvrLoad: 0.2, SatLo: 0.02, SatHi: 0.4},
		{Name: "bursty-hotspot", Pattern: traffic.Hotspot, Burst: congestionBurst(),
			LatLoad: 0.08, OvrLoad: 0.2, SatLo: 0.02, SatHi: 0.4},
		{Name: "qos-bursty-uniform", Pattern: traffic.Uniform, Burst: congestionBurst(), QoS: qos,
			LatLoad: 0.2, OvrLoad: 0.9, SatLo: 0.1, SatHi: 1.0},
		{Name: "bursty-uniform-4faults", Pattern: traffic.Uniform, Burst: congestionBurst(), FaultLinks: 4,
			LatLoad: 0.2, OvrLoad: 0.9, SatLo: 0.1, SatHi: 1.0},
	}
}

// Describe renders the workload's parameters for table headers.
func (w CongestionWorkload) Describe() string {
	s := w.Pattern.String()
	if w.Burst != nil {
		s += fmt.Sprintf(" + MMPP(on %.2f, mean-on %.0f)", w.Burst.OnFrac, w.Burst.MeanOn)
	}
	if w.QoS != nil {
		s += fmt.Sprintf(" + QoS(hi %.2f, %d resv VC)", w.QoS.HiFrac, w.QoS.HiVCs)
	}
	if w.FaultLinks > 0 {
		s += fmt.Sprintf(" + %d failed links", w.FaultLinks)
	}
	return s
}

// CongestionPolicies is the selection-policy axis: the paper's two
// strongest local heuristics and their notification-augmented variants.
var CongestionPolicies = []selection.Kind{
	selection.LRU, selection.MaxCredit, selection.NotifyLRU, selection.NotifyMaxCredit,
}

// CongestionCell is the measurements of one (workload, policy) pair.
type CongestionCell struct {
	// Lat is the moderate-load latency point.
	Lat core.Result
	// Ovr is the fixed-budget overdriven run; its Throughput is the
	// accepted rate under sustained overload.
	Ovr core.Result
	// Sat is the run at the bisection-located saturation load and Search
	// the full search outcome.
	Sat    core.Result
	Search sweep.BisectResult
}

// CongestionRow is one workload with its per-policy cells (and the fault
// plan shared by all of the row's points, nil when undamaged).
type CongestionRow struct {
	Workload CongestionWorkload
	Plan     *fault.Plan
	Cells    map[selection.Kind]*CongestionCell
}

// BestLocalOvr and BestNotifyOvr are the best overdriven accepted
// throughput within each policy family.
func (r CongestionRow) BestLocalOvr() float64  { return r.bestOvr(false) }
func (r CongestionRow) BestNotifyOvr() float64 { return r.bestOvr(true) }

func (r CongestionRow) bestOvr(notify bool) float64 {
	best := 0.0
	for _, k := range CongestionPolicies {
		if k.IsNotify() != notify {
			continue
		}
		if c := r.Cells[k]; c != nil && c.Ovr.Throughput > best {
			best = c.Ovr.Throughput
		}
	}
	return best
}

// NotifyGain is the experiment's headline number: the best notify
// policy's overdriven accepted throughput over the best local policy's.
func (r CongestionRow) NotifyGain() float64 {
	local := r.BestLocalOvr()
	if local == 0 {
		return 0
	}
	return r.BestNotifyOvr() / local
}

// congestionOvrCycles is the fixed cycle budget of one overdriven run,
// matching the scaling experiment's tiers.
func (f Fidelity) congestionOvrCycles() int64 { return f.scalingSatCycles() }

// Congestion runs the full experiment grid through the sweep engine.
func (r Runner) Congestion(ctx context.Context) ([]CongestionRow, error) {
	return r.congestion(ctx, CongestionWorkloads())
}

// congestionBase is the shared configuration of one row's points.
func (r Runner) congestionBase(row *CongestionRow, sel selection.Kind) core.Config {
	c := r.base()
	c.Selection = sel
	c.Pattern = row.Workload.Pattern
	c.Burst = row.Workload.Burst
	c.QoS = row.Workload.QoS
	c.Faults = row.Plan
	return c
}

// congestion is the parameterized core; the quick test tier runs it over
// a reduced workload list.
func (r Runner) congestion(ctx context.Context, workloads []CongestionWorkload) ([]CongestionRow, error) {
	mesh := r.base().Mesh()
	rows := make([]CongestionRow, len(workloads))
	for i, w := range workloads {
		rows[i] = CongestionRow{Workload: w, Cells: map[selection.Kind]*CongestionCell{}}
		for _, pol := range CongestionPolicies {
			rows[i].Cells[pol] = &CongestionCell{}
		}
		if w.FaultLinks > 0 {
			// Same derivation as ResiliencePlans, so a shared fault count
			// degrades the same hardware in both experiments.
			p, err := fault.Random(mesh, w.FaultLinks, 0, r.Seed+int64(w.FaultLinks)*101)
			if err != nil {
				return nil, fmt.Errorf("experiments: congestion plan for %s: %w", w.Name, err)
			}
			rows[i].Plan = p
		}
	}
	// Latency and overdriven points ride the regular grid.
	var g grid
	for i := range rows {
		row := &rows[i]
		for _, pol := range CongestionPolicies {
			cell := row.Cells[pol]
			lat := r.congestionBase(row, pol)
			lat.Load = row.Workload.LatLoad
			g.add(lat, func(res core.Result) { cell.Lat = res })

			ovr := r.congestionBase(row, pol)
			// Fixed-budget overdriven run, as in the scaling experiment:
			// the cycle cap ends the run, the latency guard is lifted, and
			// the adaptive tier is shed so the budget is exact.
			ovr.Auto = nil
			ovr.Load = row.Workload.OvrLoad
			ovr.SatLatency = 1e12
			ovr.MaxCycles = r.Fidelity.congestionOvrCycles()
			ovr.Measure = 1 << 30
			g.add(ovr, func(res core.Result) { cell.Ovr = res })
		}
	}
	if err := g.run(ctx, r.opts()); err != nil {
		return nil, err
	}
	// Saturation searches, all fanned out together (see resilience.go).
	var searches []satSearch
	for i := range rows {
		row := &rows[i]
		for _, pol := range CongestionPolicies {
			cell := row.Cells[pol]
			base := r.congestionBase(row, pol)
			searches = append(searches, satSearch{
				name: fmt.Sprintf("congestion(%s, %s)", row.Workload.Name, pol),
				spec: SaturationSpec(base, row.Workload.SatLo, row.Workload.SatHi, r.Fidelity.satTol()),
				sink: func(res sweep.BisectResult) {
					cell.Search = res
					cell.Sat = res.LoResult
				},
			})
		}
	}
	if err := runSearches(ctx, searches, r.opts()); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderCongestion prints the experiment in the repo's table style.
func RenderCongestion(w io.Writer, rows []CongestionRow) {
	fmt.Fprintln(w, "Congestion notification: accepted throughput under overload, saturation point and moderate-load latency")
	fmt.Fprintln(w, "(notify-* = local heuristic restricted to least-congested downstream quadrant, from credit-piggybacked occupancy)")
	var searches []sweep.BisectResult
	for _, r := range rows {
		fmt.Fprintf(w, "\n[%s: %s]\n", r.Workload.Name, r.Workload.Describe())
		fmt.Fprintf(w, "%-18s %10s %10s %9s %10s\n", "policy", "lat", "ovr-thr", "sat-load", "sat-thr")
		for _, pol := range CongestionPolicies {
			c := r.Cells[pol]
			fmt.Fprintf(w, "%-18s %10s %10.4f %9.3f %10.4f\n",
				pol, c.Lat.LatencyString(), c.Ovr.Throughput, c.Search.Lo, c.Sat.Throughput)
			if !c.Search.Converged {
				fmt.Fprintf(w, "warning: %s/%s saturation search did not converge (bracket [%.3f, %.3f]); sat-load is a lower bound\n",
					r.Workload.Name, pol, c.Search.Lo, c.Search.Hi)
			}
			searches = append(searches, c.Search)
		}
		fmt.Fprintf(w, "notify gain (best notify / best local overdriven throughput): %.3f\n", r.NotifyGain())
	}
	probes, cycles, dense := searchCost(searches...)
	fmt.Fprintf(w, "\n[saturation search: %d probes / %d simulated cycles across %d searches; dense-grid path: %d points]\n",
		probes, cycles, len(searches), dense)
}

// CongestionCSV writes one row per (workload, policy).
func CongestionCSV(w io.Writer, rows []CongestionRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "pattern", "burst_on_frac", "burst_mean_on", "qos_hi_frac", "fault_links", "fault_plan",
		"policy", "notify",
		"avg_latency", "saturated", "ovr_throughput",
		"sat_load", "sat_throughput", "sat_converged", "search_probes", "search_cycles",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		onFrac, meanOn, hiFrac := "", "", ""
		if b := r.Workload.Burst; b != nil {
			onFrac = strconv.FormatFloat(b.OnFrac, 'f', 3, 64)
			meanOn = strconv.FormatFloat(b.MeanOn, 'f', 1, 64)
		}
		if q := r.Workload.QoS; q != nil {
			hiFrac = strconv.FormatFloat(q.HiFrac, 'f', 3, 64)
		}
		plan := ""
		if r.Plan != nil {
			plan = r.Plan.Key()
		}
		for _, pol := range CongestionPolicies {
			c := r.Cells[pol]
			rec := []string{
				r.Workload.Name,
				r.Workload.Pattern.String(),
				onFrac, meanOn, hiFrac,
				strconv.Itoa(r.Workload.FaultLinks),
				plan,
				pol.String(),
				strconv.FormatBool(pol.IsNotify()),
				latCell(c.Lat),
				satCell(c.Lat),
				strconv.FormatFloat(c.Ovr.Throughput, 'f', 5, 64),
				strconv.FormatFloat(c.Search.Lo, 'f', 4, 64),
				strconv.FormatFloat(c.Sat.Throughput, 'f', 5, 64),
				strconv.FormatBool(c.Search.Converged),
				strconv.Itoa(c.Search.Probes),
				strconv.FormatInt(c.Search.SimulatedCycles, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
