// Package experiments regenerates every table and figure of the LAPSES
// paper's evaluation: Fig. 5 (look-ahead and adaptivity vs load), Table 3
// (message-length sensitivity of look-ahead), Fig. 6 (path-selection
// heuristics), Table 4 (table-storage schemes) and Table 5 (storage
// summary). Each experiment declares its grid as data — an ordered list
// of core.Config points — and executes it through the concurrent
// internal/sweep engine, so sweeps scale with GOMAXPROCS (or an explicit
// Runner.Workers) and shared baselines memoize through Runner.Cache.
// Results render in the paper's format, so paper-vs-measured comparisons
// in EXPERIMENTS.md are mechanical.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/sweep"
	"lapses/internal/table"
	"lapses/internal/traffic"
)

// Fidelity selects the sample sizes for all experiment runs.
type Fidelity int

const (
	// Quick uses small samples for smoke runs (seconds per point).
	Quick Fidelity = iota
	// Default balances precision and run time (the committed numbers).
	Default
	// Paper uses the paper's 10000 warm-up + 400000 measured messages.
	Paper
	// Auto runs the adaptive measurement tier (core.Config.Auto): MSER-5
	// warmup truncation plus CI-based early stopping, with Default's
	// budget as the ceiling — each point measures only as long as its
	// latency statistics need. Results are deterministic but not
	// bit-comparable to the fixed tiers (different stopping rule), so
	// goldens and bit-equivalence tests stay on Quick/Default/Paper.
	Auto
)

// ParseFidelity converts a name to a Fidelity.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "default":
		return Default, nil
	case "paper":
		return Paper, nil
	case "auto":
		return Auto, nil
	}
	return 0, fmt.Errorf("experiments: unknown fidelity %q", s)
}

func (f Fidelity) apply(c core.Config) core.Config {
	switch f {
	case Quick:
		c.Warmup, c.Measure = 300, 3000
	case Default:
		c.Warmup, c.Measure = 2000, 30000
	case Paper:
		c = c.PaperFidelity()
	case Auto:
		c.Warmup, c.Measure = 2000, 30000
		c.Auto = &core.AutoMeasure{RelTol: 0.03}
	}
	return c
}

// Runner carries the execution options shared by every experiment sweep:
// sample fidelity, the random seed, worker-pool width and an optional
// memo cache. The zero Workers uses GOMAXPROCS; a non-nil Cache shared
// across experiments makes points that recur between figures (e.g.
// Fig. 5's LA-ADAPT baseline, which is also Fig. 6's STATIC-XY series)
// simulate exactly once.
type Runner struct {
	Fidelity Fidelity
	Seed     int64
	Workers  int
	Cache    *sweep.Cache

	// EventMode runs every point on the event-driven kernel: same
	// statistics within CI noise, several times the cycle rate, but not
	// bit-comparable to cycle-mode runs (configs key differently, so a
	// shared Cache never mixes the two).
	EventMode bool

	// Shards steps every point's simulation in row-band shards (results
	// are bit-identical for any count; see core.Config.Shards). <= 1
	// runs unsharded.
	Shards int

	// Exec, when non-nil, replaces in-process sweep.Run as the grid
	// executor — the lapses-serve client's Run plugs in here, routing
	// every experiment point (grids and saturation probes alike)
	// through a server's durable store.
	Exec sweep.RunFunc

	// run replaces core.Run in tests of the grid plumbing; nil means the
	// real simulator.
	run func(core.Config) (core.Result, error)
}

func (r Runner) opts() sweep.Options {
	o := sweep.Options{Workers: r.Workers, Runner: r.run, Exec: r.Exec}
	// Assign the cache only when present: a typed-nil *sweep.Cache in
	// the Cacher interface would read as "cache configured".
	if r.Cache != nil {
		o.Cache = r.Cache
	}
	return o
}

// base returns the shared 16x16 configuration (Table 2) used by all
// experiments.
func (r Runner) base() core.Config {
	c := core.DefaultConfig()
	c.Selection = selection.StaticXY
	c.Seed = r.Seed
	c.EventMode = r.EventMode
	if r.Shards > 1 {
		c.Shards = r.Shards
	}
	return r.Fidelity.apply(c)
}

// grid is an experiment sweep declared as data: the ordered configs plus,
// per point, the row slot its result scatters into.
type grid struct {
	cfgs  []core.Config
	sinks []func(core.Result)
}

func (g *grid) add(c core.Config, sink func(core.Result)) {
	g.cfgs = append(g.cfgs, c)
	g.sinks = append(g.sinks, sink)
}

// run sweeps the grid — through opt.Exec when set, so a remote backend
// serves the points — and scatters results in grid order. The first
// point error aborts (a config error means the harness built a bad
// grid), identified by its full config key so a failure in a thousand-
// point sweep names the exact simulation that died.
func (g *grid) run(ctx context.Context, opt sweep.Options) error {
	exec := sweep.Run
	if opt.Exec != nil {
		exec = opt.Exec
	}
	outs, err := exec(ctx, g.cfgs, opt)
	if err != nil {
		return err
	}
	for i, o := range outs {
		if o.Err != nil {
			c := g.cfgs[i]
			return fmt.Errorf("experiments: point %d (%s load %.2f, key %s): %w", i, c.Pattern, c.Load, c.Key(), o.Err)
		}
		g.sinks[i](o.Result)
	}
	return nil
}

// patternLoads returns the load sweep the paper plots per pattern: dense
// points up to each pattern's saturation region.
func patternLoads(p traffic.Kind) []float64 {
	switch p {
	case traffic.Uniform:
		return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	case traffic.Transpose:
		return []float64{0.1, 0.2, 0.3, 0.4}
	case traffic.BitReversal:
		return []float64{0.1, 0.2, 0.3, 0.4}
	case traffic.Shuffle:
		return []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	return []float64{0.1, 0.2, 0.3}
}

// PaperPatterns are the four synthetic patterns of the study.
var PaperPatterns = []traffic.Kind{traffic.Uniform, traffic.Transpose, traffic.BitReversal, traffic.Shuffle}

// Fig5Row is one (pattern, load) point of Fig. 5: the absolute latency of
// the four router architectures.
type Fig5Row struct {
	Pattern traffic.Kind
	Load    float64
	// Latencies by architecture; NaN-free: saturated points carry the
	// Saturated flags instead.
	NoLADet, NoLAAdapt, LADet, LAAdapt core.Result
}

// fig5Archs is the architecture axis of Fig. 5, in column order (the
// column headers live in RenderFig5).
var fig5Archs = []struct {
	LA   bool
	Alg  core.Alg
	Slot func(*Fig5Row) *core.Result
}{
	{false, core.AlgXY, func(r *Fig5Row) *core.Result { return &r.NoLADet }},
	{false, core.AlgDuato, func(r *Fig5Row) *core.Result { return &r.NoLAAdapt }},
	{true, core.AlgXY, func(r *Fig5Row) *core.Result { return &r.LADet }},
	{true, core.AlgDuato, func(r *Fig5Row) *core.Result { return &r.LAAdapt }},
}

// Fig5 runs the four-architecture comparison (deterministic/adaptive with
// and without look-ahead, static-XY selection) over the paper's load
// sweeps for all four traffic patterns.
func (r Runner) Fig5(ctx context.Context) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, pat := range PaperPatterns {
		for _, load := range patternLoads(pat) {
			rows = append(rows, Fig5Row{Pattern: pat, Load: load})
		}
	}
	var g grid
	for i := range rows {
		row := &rows[i]
		for _, arch := range fig5Archs {
			c := r.base()
			c.LookAhead = arch.LA
			c.Algorithm = arch.Alg
			c.Pattern = row.Pattern
			c.Load = row.Load
			slot := arch.Slot(row)
			g.add(c, func(res core.Result) { *slot = res })
		}
	}
	if err := g.run(ctx, r.opts()); err != nil {
		return nil, err
	}
	return rows, nil
}

// pctOver returns the percentage latency increase of r over baseline, the
// quantity Fig. 5's bars plot.
func pctOver(r, baseline core.Result) (float64, bool) {
	if r.Saturated || baseline.Saturated || baseline.AvgLatency == 0 {
		return 0, false
	}
	return 100 * (r.AvgLatency - baseline.AvgLatency) / baseline.AvgLatency, true
}

// RenderFig5 prints the Fig. 5 panels: percentage increase over LA-ADAPT
// per architecture, plus the absolute LA-ADAPT latency table printed under
// the figure in the paper.
func RenderFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Figure 5: % latency increase over LA,ADAPT (positive = slower than LA-adaptive)")
	for _, pat := range PaperPatterns {
		fmt.Fprintf(w, "\n[%s traffic]\n", pat)
		fmt.Fprintf(w, "%-6s %12s %12s %12s %14s\n", "load", "NOLA,DET", "NOLA,ADAPT", "LA,DET", "LA,ADAPT(abs)")
		for _, r := range rows {
			if r.Pattern != pat {
				continue
			}
			cell := func(res core.Result) string {
				p, ok := pctOver(res, r.LAAdapt)
				if !ok {
					return "Sat."
				}
				return fmt.Sprintf("%+.1f%%", p)
			}
			fmt.Fprintf(w, "%-6.1f %12s %12s %12s %14s\n",
				r.Load, cell(r.NoLADet), cell(r.NoLAAdapt), cell(r.LADet), r.LAAdapt.LatencyString())
		}
	}
}

// Table3Row is one message-length point of Table 3.
type Table3Row struct {
	MsgLen               int
	LookAhead, NoLookAhd core.Result
}

// Improvement returns the paper's "% Improv." column.
func (r Table3Row) Improvement() float64 {
	if r.NoLookAhd.AvgLatency == 0 {
		return 0
	}
	return 100 * (r.NoLookAhd.AvgLatency - r.LookAhead.AvgLatency) / r.NoLookAhd.AvgLatency
}

// table3Lengths is the message-length axis of Table 3.
var table3Lengths = []int{5, 10, 20, 50}

// Table3 measures the look-ahead benefit versus message length (uniform
// traffic, normalized load 0.2, adaptive routers).
func (r Runner) Table3(ctx context.Context) ([]Table3Row, error) {
	rows := make([]Table3Row, len(table3Lengths))
	var g grid
	for i, length := range table3Lengths {
		rows[i].MsgLen = length
		row := &rows[i]
		for _, la := range []bool{true, false} {
			c := r.base()
			c.LookAhead = la
			c.Pattern = traffic.Uniform
			c.Load = 0.2
			c.MsgLen = length
			slot := &row.NoLookAhd
			if la {
				slot = &row.LookAhead
			}
			g.add(c, func(res core.Result) { *slot = res })
		}
	}
	if err := g.run(ctx, r.opts()); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable3 prints Table 3 in the paper's format.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: Impact of message length (uniform traffic, load 0.2)")
	fmt.Fprintf(w, "%-10s %12s %14s %10s\n", "Mesg. Len", "Look Ahead", "No Look Ahead", "% Improv.")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %12s %14s %10.1f\n",
			r.MsgLen, r.LookAhead.LatencyString(), r.NoLookAhd.LatencyString(), r.Improvement())
	}
}

// Fig6Row is one (pattern, load) point of Fig. 6: absolute latency per
// path-selection heuristic on the LA adaptive router.
type Fig6Row struct {
	Pattern traffic.Kind
	Load    float64
	ByPSH   map[selection.Kind]core.Result
}

// Fig6PSHs are the five policies Fig. 6 plots.
var Fig6PSHs = []selection.Kind{selection.StaticXY, selection.MinMux, selection.LFU, selection.LRU, selection.MaxCredit}

// Fig6 sweeps the path-selection heuristics over the four patterns.
func (r Runner) Fig6(ctx context.Context) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, pat := range PaperPatterns {
		for _, load := range patternLoads(pat) {
			rows = append(rows, Fig6Row{Pattern: pat, Load: load, ByPSH: map[selection.Kind]core.Result{}})
		}
	}
	var g grid
	for i := range rows {
		row := &rows[i]
		for _, psh := range Fig6PSHs {
			c := r.base()
			c.Pattern = row.Pattern
			c.Load = row.Load
			c.Selection = psh
			psh := psh
			g.add(c, func(res core.Result) { row.ByPSH[psh] = res })
		}
	}
	if err := g.run(ctx, r.opts()); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig6 prints the Fig. 6 series.
func RenderFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6: average latency by path-selection heuristic (LA adaptive router)")
	for _, pat := range PaperPatterns {
		fmt.Fprintf(w, "\n[%s traffic]\n", pat)
		fmt.Fprintf(w, "%-6s", "load")
		for _, psh := range Fig6PSHs {
			fmt.Fprintf(w, " %11s", psh)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			if r.Pattern != pat {
				continue
			}
			fmt.Fprintf(w, "%-6.1f", r.Load)
			for _, psh := range Fig6PSHs {
				fmt.Fprintf(w, " %11s", r.ByPSH[psh].LatencyString())
			}
			fmt.Fprintln(w)
		}
	}
}

// Table4Row is one (pattern, load) point of Table 4.
type Table4Row struct {
	Pattern                     traffic.Kind
	Load                        float64
	MetaAdaptive, MetaDet, Full core.Result
	ES                          core.Result
}

// Table4Patterns are the patterns Table 4 reports.
var Table4Patterns = []traffic.Kind{traffic.Uniform, traffic.Transpose, traffic.BitReversal}

// table4Loads mirrors the loads the paper lists per pattern.
func table4Loads(p traffic.Kind) []float64 {
	switch p {
	case traffic.Uniform:
		return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	case traffic.Transpose:
		return []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	default: // bit-reversal
		return []float64{0.1, 0.2, 0.3, 0.4}
	}
}

// table4Schemes is the storage-scheme axis of Table 4, in column order.
var table4Schemes = []struct {
	Kind table.Kind
	Slot func(*Table4Row) *core.Result
}{
	{table.KindMetaBlock, func(r *Table4Row) *core.Result { return &r.MetaAdaptive }},
	{table.KindMetaRow, func(r *Table4Row) *core.Result { return &r.MetaDet }},
	{table.KindFull, func(r *Table4Row) *core.Result { return &r.Full }},
	{table.KindES, func(r *Table4Row) *core.Result { return &r.ES }},
}

// Table4 compares the table-storage schemes: meta-table with the maximal-
// flexibility (block) mapping, meta-table with the minimal (row) mapping,
// full-table and economical storage, all on the LA adaptive router with
// static-XY selection.
func (r Runner) Table4(ctx context.Context) ([]Table4Row, error) {
	var rows []Table4Row
	for _, pat := range Table4Patterns {
		for _, load := range table4Loads(pat) {
			rows = append(rows, Table4Row{Pattern: pat, Load: load})
		}
	}
	var g grid
	for i := range rows {
		row := &rows[i]
		for _, scheme := range table4Schemes {
			c := r.base()
			c.Pattern = row.Pattern
			c.Load = row.Load
			c.Table = scheme.Kind
			c.Algorithm = core.AlgDuato
			slot := scheme.Slot(row)
			g.add(c, func(res core.Result) { *slot = res })
		}
	}
	if err := g.run(ctx, r.opts()); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable4 prints Table 4 in the paper's format, with both the full
// table and ES columns (the paper prints them as one since they are
// identical; we print both to demonstrate it).
func RenderTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4: Performance comparison of table-storage schemes (Sat. = saturated)")
	fmt.Fprintf(w, "%-13s %-5s %12s %12s %12s %12s\n", "Traffic", "Load", "Meta-Adp", "Meta-Det", "Full-Tbl", "Econ-Stor")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %-5.1f %12s %12s %12s %12s\n",
			r.Pattern, r.Load,
			r.MetaAdaptive.LatencyString(), r.MetaDet.LatencyString(),
			r.Full.LatencyString(), r.ES.LatencyString())
	}
}

// Table5Row summarizes one storage scheme (Table 5).
type Table5Row struct {
	Scheme      string
	Entries     int
	Scalability string
	Adaptivity  string
	Topology    string
}

// Table5 computes the storage comparison for an n-node network of the
// given dimensionality, using the entry counts of the actual table
// implementations.
func Table5(nodes, ndims int) []Table5Row {
	clusters := 0
	// Two-level meta split: sqrt-ish cluster count, as in the paper's
	// m*2^(N/m) expression with m = 2.
	for c := 1; c*c <= nodes; c++ {
		if nodes%c == 0 {
			clusters = c
		}
	}
	return []Table5Row{
		{"full-table", nodes, "poor", "yes", "arbitrary"},
		{"meta-table (2-level)", clusters + nodes/clusters, "better", "yes (limited)", "fairly arbitrary"},
		{"interval", 1 + 2*ndims, "great", "not direct", "arbitrary"},
		{"economical storage", table.ESEntryCount(ndims), "great", "yes", "meshes, tori"},
	}
}

// RenderTable5 prints the storage summary.
func RenderTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table 5: table-storage schemes for the configured network")
	fmt.Fprintf(w, "%-22s %10s %-12s %-14s %-16s\n", "Scheme", "Entries", "Scalability", "Adaptivity", "Topology")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %10d %-12s %-14s %-16s\n", r.Scheme, r.Entries, r.Scalability, r.Adaptivity, r.Topology)
	}
}

// Names lists the runnable experiment identifiers.
func Names() []string {
	return []string{"table1", "table2", "fig5", "table3", "fig6", "table4", "table5", "resilience", "scaling", "congestion", "availability"}
}

// RunByName executes one experiment by identifier and renders it to w.
func (r Runner) RunByName(ctx context.Context, w io.Writer, name string) error {
	switch strings.ToLower(name) {
	case "table1":
		RenderTable1(w, Table1())
	case "table2":
		RenderTable2(w, core.DefaultConfig())
	case "fig5":
		rows, err := r.Fig5(ctx)
		if err != nil {
			return err
		}
		RenderFig5(w, rows)
	case "table3":
		rows, err := r.Table3(ctx)
		if err != nil {
			return err
		}
		RenderTable3(w, rows)
	case "fig6":
		rows, err := r.Fig6(ctx)
		if err != nil {
			return err
		}
		RenderFig6(w, rows)
	case "table4":
		rows, err := r.Table4(ctx)
		if err != nil {
			return err
		}
		RenderTable4(w, rows)
	case "table5":
		RenderTable5(w, Table5(256, 2))
		fmt.Fprintln(w)
		RenderTable5(w, Table5(2048, 3))
	case "resilience":
		rows, err := r.Resilience(ctx)
		if err != nil {
			return err
		}
		RenderResilience(w, rows)
	case "scaling":
		rows, err := r.Scaling(ctx)
		if err != nil {
			return err
		}
		RenderScaling(w, rows)
	case "congestion":
		rows, err := r.Congestion(ctx)
		if err != nil {
			return err
		}
		RenderCongestion(w, rows)
	case "availability":
		rows, err := r.Availability(ctx)
		if err != nil {
			return err
		}
		RenderAvailability(w, rows)
	default:
		names := Names()
		sort.Strings(names)
		return fmt.Errorf("experiments: unknown experiment %q (have %s)", name, strings.Join(names, ", "))
	}
	return nil
}

// RunByName executes one experiment with default workers; see Runner for
// worker-pool and cache control.
func RunByName(w io.Writer, name string, f Fidelity, seed int64) error {
	return Runner{Fidelity: f, Seed: seed}.RunByName(context.Background(), w, name)
}
