package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestScalingQuick is the -short tier of the scaling experiment: the
// reduced mesh axis through the real simulator at Quick fidelity. Beyond
// shape checks it pins the experiment's structural claim about the
// kernel: the shards=1 and shards=4 variants of every (mesh, policy)
// point — distinct cache keys, really executed — report bit-identical
// simulation Results, with only wall-clock differing.
func TestScalingQuick(t *testing.T) {
	t.Parallel()
	r := Runner{Fidelity: Quick, Seed: 1}
	rows, err := r.Scaling(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 2 meshes x 2 policies x 2 shard counts at the quick tier.
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	byPoint := map[string]ScalingRow{}
	adaptiveSat := map[string]float64{}
	for _, row := range rows {
		if row.Sat.Throughput <= 0 {
			t.Fatalf("%s/%s/shards=%d: zero saturation throughput", dimsString(row.Dims), row.Policy, row.Shards)
		}
		if row.Wall <= 0 || row.CyclesPerSec <= 0 {
			t.Fatalf("%s/%s/shards=%d: missing wall-clock (%v, %v cycles/sec)",
				dimsString(row.Dims), row.Policy, row.Shards, row.Wall, row.CyclesPerSec)
		}
		if !row.Search.Converged || row.SatLoad <= 0 || row.SatSustained.Throughput <= 0 {
			t.Fatalf("%s/%s: saturation search malformed: %s", dimsString(row.Dims), row.Policy, row.Search)
		}
		if row.Search.Probes >= row.Search.DensePoints {
			t.Fatalf("%s/%s: search probed %d points, dense grid is %d",
				dimsString(row.Dims), row.Policy, row.Search.Probes, row.Search.DensePoints)
		}
		key := dimsString(row.Dims) + "/" + row.Policy
		if prev, ok := byPoint[key]; ok {
			if prev.Sat != row.Sat {
				t.Errorf("%s: shards=%d diverged from shards=%d:\n%+v\n%+v",
					key, row.Shards, prev.Shards, row.Sat, prev.Sat)
			}
			// The search is shard-independent and shared across the
			// shard variants of a point.
			if prev.SatLoad != row.SatLoad || prev.Search != row.Search {
				t.Errorf("%s: shard variants disagree on the saturation search", key)
			}
		} else {
			byPoint[key] = row
		}
		if row.Policy == "adaptive" {
			adaptiveSat[dimsString(row.Dims)] = row.SatLoad
		}
	}
	// The architectural claim: on every mesh the adaptive router's
	// saturation load is at least the deterministic router's.
	for _, row := range rows {
		if row.Policy == "deterministic" && row.SatLoad > adaptiveSat[dimsString(row.Dims)]+1e-9 {
			t.Errorf("%s: deterministic saturation load %.3f above adaptive %.3f",
				dimsString(row.Dims), row.SatLoad, adaptiveSat[dimsString(row.Dims)])
		}
	}

	var buf bytes.Buffer
	if err := ScalingCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := 1 + len(rows); len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "mesh,nodes,policy,shards,sat_load,sat_throughput,sat_converged,overdriven_throughput") {
		t.Fatalf("CSV header: %q", lines[0])
	}
}
