package experiments

import (
	"fmt"
	"io"

	"lapses/internal/core"
)

// Table1Row is one commercial router of the paper's Table 1 survey,
// reproduced as reference data: the design space the LAPSES techniques
// target (table-based, pipelined, virtual-channel wormhole routers).
type Table1Row struct {
	Router   string
	RTable   bool
	Design   string
	MaxNodes string
	Ports    int
	VCs      string
	PortType string
	Routing  string
}

// Table1 returns the paper's survey of state-of-the-art commercial
// wormhole and virtual cut-through routers (HPCA 1999 vintage).
func Table1() []Table1Row {
	return []Table1Row{
		{"SGI SPIDER", true, "ASIC", "512", 6, "4", "P", "Det"},
		{"Cray T3D", true, "ASIC", "2K", 7, "4", "P", "Det"},
		{"Cray T3E", true, "ASIC", "2176", 7, "5", "P", "Adpt"},
		{"Tandem Servernet-II", true, "ASIC", "1M", 12, "No", "P", "Lim. Adpt"},
		{"Sun S3.mp", true, "ASIC", "1K", 6, "4", "2P+4S", "Adpt"},
		{"Intel Cavallino", false, "Custom", ">4K", 6, "4", "P", "Det"},
		{"HAL Mercury", false, "Custom", "64", 6, "3", "P", "Det"},
		{"Inmos C-104", true, "Custom", "Any", 32, "Any", "S", "Lim. Adpt"},
		{"Myricom Myrinet", false, "Custom", "Any", 8, "No", "P", "Det"},
	}
}

// RenderTable1 prints the survey in the paper's format.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: commercial wormhole / virtual cut-through routers (survey, 1999)")
	fmt.Fprintf(w, "%-20s %-6s %-7s %-9s %-6s %-5s %-9s %-10s\n",
		"Router", "R-Tbl", "Design", "MaxNodes", "Ports", "VCs", "PortType", "Routing")
	for _, r := range rows {
		rt := "N"
		if r.RTable {
			rt = "Y"
		}
		fmt.Fprintf(w, "%-20s %-6s %-7s %-9s %-6d %-5s %-9s %-10s\n",
			r.Router, rt, r.Design, r.MaxNodes, r.Ports, r.VCs, r.PortType, r.Routing)
	}
}

// RenderTable2 prints the simulation parameters actually in force — the
// paper's Table 2 — derived from a Config rather than hard-coded, so any
// drift between documentation and defaults is impossible.
func RenderTable2(w io.Writer, c core.Config) {
	fmt.Fprintln(w, "Table 2: simulation parameters")
	fmt.Fprintf(w, "%-28s %v nodes %s\n", "Mesh Network Size", c.Mesh().N(), c.Mesh())
	fmt.Fprintf(w, "%-28s %d flits\n", "Message Length", c.MsgLen)
	fmt.Fprintf(w, "%-28s exponential\n", "Inter-arrival time")
	fmt.Fprintf(w, "%-28s uniform, transpose, shuffle, bit-reversal\n", "Traffic")
	fmt.Fprintf(w, "%-28s %d flits\n", "In/Out Buffer Size", c.BufDepth)
	fmt.Fprintf(w, "%-28s %d\n", "VCs per PC", c.VCs)
	fmt.Fprintf(w, "%-28s 1 unit\n", "Network Cycle Time")
	fmt.Fprintf(w, "%-28s 5 units (PROUD) / 4 units (LA-PROUD)\n", "Router Latency (cont.-free)")
	fmt.Fprintf(w, "%-28s %d unit(s)\n", "Link Delay", c.LinkDelay)
}
