package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lapses/internal/core"
)

// CSV writers for each experiment, for external plotting. Saturated points
// carry an empty latency cell and saturated=true so plotting scripts can
// clip the series the way the paper does ("results are only presented for
// loads leading up to network saturation").

func latCell(r core.Result) string {
	if r.Saturated {
		return ""
	}
	return strconv.FormatFloat(r.AvgLatency, 'f', 3, 64)
}

func satCell(r core.Result) string { return strconv.FormatBool(r.Saturated) }

// Fig5CSV writes one row per (pattern, load, architecture).
func Fig5CSV(w io.Writer, rows []Fig5Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pattern", "load", "architecture", "avg_latency", "saturated", "throughput"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, a := range []struct {
			name string
			res  core.Result
		}{
			{"nola-det", r.NoLADet}, {"nola-adapt", r.NoLAAdapt}, {"la-det", r.LADet}, {"la-adapt", r.LAAdapt},
		} {
			rec := []string{
				r.Pattern.String(),
				strconv.FormatFloat(r.Load, 'f', 2, 64),
				a.name,
				latCell(a.res),
				satCell(a.res),
				strconv.FormatFloat(a.res.Throughput, 'f', 5, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table3CSV writes one row per message length.
func Table3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"msg_len", "lookahead_latency", "no_lookahead_latency", "improvement_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.MsgLen),
			latCell(r.LookAhead),
			latCell(r.NoLookAhd),
			strconv.FormatFloat(r.Improvement(), 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig6CSV writes one row per (pattern, load, heuristic).
func Fig6CSV(w io.Writer, rows []Fig6Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pattern", "load", "psh", "avg_latency", "saturated", "throughput"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, psh := range Fig6PSHs {
			res := r.ByPSH[psh]
			rec := []string{
				r.Pattern.String(),
				strconv.FormatFloat(r.Load, 'f', 2, 64),
				psh.String(),
				latCell(res),
				satCell(res),
				strconv.FormatFloat(res.Throughput, 'f', 5, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table4CSV writes one row per (pattern, load, scheme).
func Table4CSV(w io.Writer, rows []Table4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pattern", "load", "scheme", "avg_latency", "saturated"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, s := range []struct {
			name string
			res  core.Result
		}{
			{"meta-adaptive", r.MetaAdaptive}, {"meta-det", r.MetaDet}, {"full", r.Full}, {"es", r.ES},
		} {
			rec := []string{
				r.Pattern.String(),
				strconv.FormatFloat(r.Load, 'f', 2, 64),
				s.name,
				latCell(s.res),
				satCell(s.res),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVByName runs an experiment and writes its CSV form; table5 and
// the reference tables have no CSV representation.
func WriteCSVByName(w io.Writer, name string, f Fidelity, seed int64) error {
	switch name {
	case "fig5":
		return Fig5CSV(w, Fig5(f, seed))
	case "table3":
		return Table3CSV(w, Table3(f, seed))
	case "fig6":
		return Fig6CSV(w, Fig6(f, seed))
	case "table4":
		return Table4CSV(w, Table4(f, seed))
	}
	return fmt.Errorf("experiments: no CSV form for %q", name)
}
