package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lapses/internal/core"
)

// CSV writers for each experiment, for external plotting. Saturated points
// carry an empty latency cell and saturated=true so plotting scripts can
// clip the series the way the paper does ("results are only presented for
// loads leading up to network saturation").

func latCell(r core.Result) string {
	if r.Saturated {
		return ""
	}
	return strconv.FormatFloat(r.AvgLatency, 'f', 3, 64)
}

func satCell(r core.Result) string { return strconv.FormatBool(r.Saturated) }

// Fig5CSV writes one row per (pattern, load, architecture).
func Fig5CSV(w io.Writer, rows []Fig5Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pattern", "load", "architecture", "avg_latency", "saturated", "throughput"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, a := range []struct {
			name string
			res  core.Result
		}{
			{"nola-det", r.NoLADet}, {"nola-adapt", r.NoLAAdapt}, {"la-det", r.LADet}, {"la-adapt", r.LAAdapt},
		} {
			rec := []string{
				r.Pattern.String(),
				strconv.FormatFloat(r.Load, 'f', 2, 64),
				a.name,
				latCell(a.res),
				satCell(a.res),
				strconv.FormatFloat(a.res.Throughput, 'f', 5, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table3CSV writes one row per message length.
func Table3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"msg_len", "lookahead_latency", "no_lookahead_latency", "improvement_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.MsgLen),
			latCell(r.LookAhead),
			latCell(r.NoLookAhd),
			strconv.FormatFloat(r.Improvement(), 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig6CSV writes one row per (pattern, load, heuristic).
func Fig6CSV(w io.Writer, rows []Fig6Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pattern", "load", "psh", "avg_latency", "saturated", "throughput"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, psh := range Fig6PSHs {
			res := r.ByPSH[psh]
			rec := []string{
				r.Pattern.String(),
				strconv.FormatFloat(r.Load, 'f', 2, 64),
				psh.String(),
				latCell(res),
				satCell(res),
				strconv.FormatFloat(res.Throughput, 'f', 5, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table4CSV writes one row per (pattern, load, scheme).
func Table4CSV(w io.Writer, rows []Table4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pattern", "load", "scheme", "avg_latency", "saturated"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, s := range []struct {
			name string
			res  core.Result
		}{
			{"meta-adaptive", r.MetaAdaptive}, {"meta-det", r.MetaDet}, {"full", r.Full}, {"es", r.ES},
		} {
			rec := []string{
				r.Pattern.String(),
				strconv.FormatFloat(r.Load, 'f', 2, 64),
				s.name,
				latCell(s.res),
				satCell(s.res),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV runs an experiment through the sweep engine and writes its CSV
// form; table5 and the reference tables have no CSV representation. With
// a shared Runner.Cache the render and CSV passes of the same experiment
// simulate their grid only once.
func (r Runner) WriteCSV(ctx context.Context, w io.Writer, name string) error {
	switch name {
	case "fig5":
		rows, err := r.Fig5(ctx)
		if err != nil {
			return err
		}
		return Fig5CSV(w, rows)
	case "table3":
		rows, err := r.Table3(ctx)
		if err != nil {
			return err
		}
		return Table3CSV(w, rows)
	case "fig6":
		rows, err := r.Fig6(ctx)
		if err != nil {
			return err
		}
		return Fig6CSV(w, rows)
	case "table4":
		rows, err := r.Table4(ctx)
		if err != nil {
			return err
		}
		return Table4CSV(w, rows)
	case "resilience":
		rows, err := r.Resilience(ctx)
		if err != nil {
			return err
		}
		return ResilienceCSV(w, rows)
	case "scaling":
		rows, err := r.Scaling(ctx)
		if err != nil {
			return err
		}
		return ScalingCSV(w, rows)
	}
	return fmt.Errorf("experiments: no CSV form for %q", name)
}

// WriteCSVByName writes an experiment's CSV with default workers; see
// Runner for worker-pool and cache control.
func WriteCSVByName(w io.Writer, name string, f Fidelity, seed int64) error {
	return Runner{Fidelity: f, Seed: seed}.WriteCSV(context.Background(), w, name)
}
