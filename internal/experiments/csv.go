package experiments

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"lapses/internal/core"
	"lapses/internal/stats"
)

// CSV writers for each experiment, for external plotting. Saturated points
// carry an empty latency cell and saturated=true so plotting scripts can
// clip the series the way the paper does ("results are only presented for
// loads leading up to network saturation").
//
// # Schema note: replications
//
// With `lapses-experiments -reps N` (N > 1), WriteCSVReps replays the
// experiment N times under per-rep derived seeds (Seed + rep*1000003,
// each expanded once through the per-seed rng state cache) and the CSV
// grows two trailing columns per replicated metric column:
// `<col>_mean` and `<col>_stderr` (standard error of the mean over the
// reps). The leading columns keep rep 0's values, so single-rep parsers
// keep working unchanged; identifying columns that legitimately differ
// across reps (e.g. `fault_plan`, which is drawn from the seed) also
// show rep 0's draw. Cells empty in some reps (saturated points) are
// aggregated over the reps that produced a value, and left empty when
// none did. The metric columns replicated per experiment are listed in
// repCols below.

func latCell(r core.Result) string {
	if r.Saturated {
		return ""
	}
	return strconv.FormatFloat(r.AvgLatency, 'f', 3, 64)
}

func satCell(r core.Result) string { return strconv.FormatBool(r.Saturated) }

// Fig5CSV writes one row per (pattern, load, architecture).
func Fig5CSV(w io.Writer, rows []Fig5Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pattern", "load", "architecture", "avg_latency", "saturated", "throughput"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, a := range []struct {
			name string
			res  core.Result
		}{
			{"nola-det", r.NoLADet}, {"nola-adapt", r.NoLAAdapt}, {"la-det", r.LADet}, {"la-adapt", r.LAAdapt},
		} {
			rec := []string{
				r.Pattern.String(),
				strconv.FormatFloat(r.Load, 'f', 2, 64),
				a.name,
				latCell(a.res),
				satCell(a.res),
				strconv.FormatFloat(a.res.Throughput, 'f', 5, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table3CSV writes one row per message length.
func Table3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"msg_len", "lookahead_latency", "no_lookahead_latency", "improvement_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.MsgLen),
			latCell(r.LookAhead),
			latCell(r.NoLookAhd),
			strconv.FormatFloat(r.Improvement(), 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig6CSV writes one row per (pattern, load, heuristic).
func Fig6CSV(w io.Writer, rows []Fig6Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pattern", "load", "psh", "avg_latency", "saturated", "throughput"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, psh := range Fig6PSHs {
			res := r.ByPSH[psh]
			rec := []string{
				r.Pattern.String(),
				strconv.FormatFloat(r.Load, 'f', 2, 64),
				psh.String(),
				latCell(res),
				satCell(res),
				strconv.FormatFloat(res.Throughput, 'f', 5, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table4CSV writes one row per (pattern, load, scheme).
func Table4CSV(w io.Writer, rows []Table4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pattern", "load", "scheme", "avg_latency", "saturated"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, s := range []struct {
			name string
			res  core.Result
		}{
			{"meta-adaptive", r.MetaAdaptive}, {"meta-det", r.MetaDet}, {"full", r.Full}, {"es", r.ES},
		} {
			rec := []string{
				r.Pattern.String(),
				strconv.FormatFloat(r.Load, 'f', 2, 64),
				s.name,
				latCell(s.res),
				satCell(s.res),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV runs an experiment through the sweep engine and writes its CSV
// form; table5 and the reference tables have no CSV representation. With
// a shared Runner.Cache the render and CSV passes of the same experiment
// simulate their grid only once.
func (r Runner) WriteCSV(ctx context.Context, w io.Writer, name string) error {
	switch name {
	case "fig5":
		rows, err := r.Fig5(ctx)
		if err != nil {
			return err
		}
		return Fig5CSV(w, rows)
	case "table3":
		rows, err := r.Table3(ctx)
		if err != nil {
			return err
		}
		return Table3CSV(w, rows)
	case "fig6":
		rows, err := r.Fig6(ctx)
		if err != nil {
			return err
		}
		return Fig6CSV(w, rows)
	case "table4":
		rows, err := r.Table4(ctx)
		if err != nil {
			return err
		}
		return Table4CSV(w, rows)
	case "resilience":
		rows, err := r.Resilience(ctx)
		if err != nil {
			return err
		}
		return ResilienceCSV(w, rows)
	case "scaling":
		rows, err := r.Scaling(ctx)
		if err != nil {
			return err
		}
		return ScalingCSV(w, rows)
	case "congestion":
		rows, err := r.Congestion(ctx)
		if err != nil {
			return err
		}
		return CongestionCSV(w, rows)
	}
	return fmt.Errorf("experiments: no CSV form for %q", name)
}

// WriteCSVByName writes an experiment's CSV with default workers; see
// Runner for worker-pool and cache control.
func WriteCSVByName(w io.Writer, name string, f Fidelity, seed int64) error {
	return Runner{Fidelity: f, Seed: seed}.WriteCSV(context.Background(), w, name)
}

// repSeedStride derives replication seeds: rep i runs at Seed +
// i*repSeedStride. The stride is large and odd so derived seeds never
// collide across reps or with hand-picked neighboring seeds; each
// derived seed expands its rng state once and is then served from the
// per-seed cache like any other.
const repSeedStride = 1000003

// repCols names the metric columns aggregated across replications, per
// experiment (see the schema note at the top of this file).
var repCols = map[string][]string{
	"fig5":       {"avg_latency", "throughput"},
	"table3":     {"lookahead_latency", "no_lookahead_latency", "improvement_pct"},
	"fig6":       {"avg_latency", "throughput"},
	"table4":     {"avg_latency"},
	"resilience": {"avg_latency", "sat_load", "sat_throughput"},
	"scaling":    {"sat_load", "sat_throughput", "overdriven_throughput", "cycles_per_sec"},
	"congestion": {"avg_latency", "ovr_throughput", "sat_load", "sat_throughput"},
}

// WriteCSVReps writes the experiment's CSV aggregated over reps
// replications with per-rep derived seeds; reps <= 1 is WriteCSV. Each
// replication runs the full experiment (sharing Runner.Cache, so points
// identical across reps — there are none, since the seed differs — and
// within one rep still memoize); the output schema is rep 0's rows plus
// mean/stderr columns for the experiment's metric columns.
func (r Runner) WriteCSVReps(ctx context.Context, w io.Writer, name string, reps int) error {
	if reps <= 1 {
		return r.WriteCSV(ctx, w, name)
	}
	cols, ok := repCols[name]
	if !ok {
		return fmt.Errorf("experiments: %q has no replicable CSV form", name)
	}
	recs := make([][][]string, reps)
	for rep := 0; rep < reps; rep++ {
		rr := r
		rr.Seed = r.Seed + int64(rep)*repSeedStride
		var buf bytes.Buffer
		if err := rr.WriteCSV(ctx, &buf, name); err != nil {
			return fmt.Errorf("experiments: rep %d: %w", rep, err)
		}
		rows, err := csv.NewReader(&buf).ReadAll()
		if err != nil {
			return fmt.Errorf("experiments: rep %d csv: %w", rep, err)
		}
		if rep > 0 && len(rows) != len(recs[0]) {
			return fmt.Errorf("experiments: rep %d produced %d rows, rep 0 produced %d", rep, len(rows), len(recs[0]))
		}
		recs[rep] = rows
	}
	header := recs[0][0]
	colIdx := make([]int, 0, len(cols))
	for _, c := range cols {
		found := -1
		for i, h := range header {
			if h == c {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("experiments: %q schema has no column %q", name, c)
		}
		colIdx = append(colIdx, found)
	}
	cw := csv.NewWriter(w)
	out := append([]string{}, header...)
	for _, c := range cols {
		out = append(out, c+"_mean", c+"_stderr")
	}
	if err := cw.Write(out); err != nil {
		return err
	}
	for row := 1; row < len(recs[0]); row++ {
		out = append([]string{}, recs[0][row]...)
		for _, ci := range colIdx {
			var s stats.Sample
			for rep := 0; rep < reps; rep++ {
				cell := recs[rep][row][ci]
				if cell == "" {
					continue // saturated in this rep
				}
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return fmt.Errorf("experiments: %s row %d col %s rep %d: %w", name, row, header[ci], rep, err)
				}
				s.Add(v)
			}
			if s.N() == 0 {
				out = append(out, "", "")
				continue
			}
			stderr := s.StdDev() / math.Sqrt(float64(s.N()))
			out = append(out,
				strconv.FormatFloat(s.Mean(), 'f', 4, 64),
				strconv.FormatFloat(stderr, 'f', 4, 64))
		}
		if err := cw.Write(out); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
