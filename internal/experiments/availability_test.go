package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestClaimAvailability pins the availability experiment's qualitative
// result: under a transient fault storm — a staggered partial bisection
// cut plus a router outage, all healing — the adaptive router delivers a
// higher fraction of the offered traffic than deterministic routing over
// the same damage, because each table swap forces deterministic routing
// into a full static-reconfiguration drain while the adaptive router
// only drains its escape layer. With the end-to-end reliability layer
// on, both policies must return to exactly-once delivery of everything.
//
// The experiment is fully seeded, so the assertions are deterministic;
// the margins they pin are wide (the delivered-fraction gap is tens of
// percentage points at Quick fidelity, not a knife edge).
func TestClaimAvailability(t *testing.T) {
	t.Parallel()
	r := Runner{Fidelity: Quick, Seed: 1, Cache: testCache}
	rows, err := r.Availability(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AvailabilityRow{}
	for _, row := range rows {
		byName[row.Policy] = row
		if row.Plain.Saturated {
			t.Fatalf("%s: plain run saturated: %s", row.Policy, row.Plain.SatReason)
		}
		if row.Reliable.Saturated {
			t.Fatalf("%s: reliable run saturated: %s", row.Policy, row.Reliable.SatReason)
		}
		// The storm must actually bite: transitions destroy flits and,
		// without reliability, messages.
		if row.Plain.DroppedFlits == 0 || row.Plain.DroppedMessages == 0 {
			t.Errorf("%s: storm destroyed nothing (flits=%d msgs=%d)",
				row.Policy, row.Plain.DroppedFlits, row.Plain.DroppedMessages)
		}
		if row.Plain.ReconvergenceEpochs < 8 {
			t.Errorf("%s: expected a multi-event storm, saw %d transitions",
				row.Policy, row.Plain.ReconvergenceEpochs)
		}
		// Reliability restores exactly-once end to end: nothing lost,
		// nothing given up on.
		if row.Reliable.DeliveredFraction != 1 {
			t.Errorf("%s: reliability delivered fraction %g != 1",
				row.Policy, row.Reliable.DeliveredFraction)
		}
		if row.Reliable.DroppedMessages != 0 || row.Reliable.Abandoned != 0 {
			t.Errorf("%s: reliability lost %d / abandoned %d messages",
				row.Policy, row.Reliable.DroppedMessages, row.Reliable.Abandoned)
		}
		// The guarantee is not free: the storm forces retransmissions.
		if row.Reliable.Retransmits == 0 {
			t.Errorf("%s: reliable run never retransmitted under the storm", row.Policy)
		}
	}
	ad, det := byName["adaptive"], byName["deterministic"]
	if ad.Policy == "" || det.Policy == "" {
		t.Fatalf("missing policies in %v", rows)
	}

	// The headline claim: the adaptive router keeps more of the offered
	// traffic flowing through the storm — a higher delivered fraction, or
	// a recovery at least 1.2x faster when fractions tie.
	frac := ad.Plain.DeliveredFraction > det.Plain.DeliveredFraction
	rec := ad.Plain.RecoveryCycles >= 0 &&
		(det.Plain.RecoveryCycles < 0 || // deterministic never recovered
			float64(det.Plain.RecoveryCycles) >= 1.2*float64(ad.Plain.RecoveryCycles))
	if !frac && !rec {
		t.Errorf("availability claim failed: adaptive frac=%.4f rec=%d vs deterministic frac=%.4f rec=%d",
			ad.Plain.DeliveredFraction, ad.Plain.RecoveryCycles,
			det.Plain.DeliveredFraction, det.Plain.RecoveryCycles)
	}

	// Render sanity: the report names the storm and both policies.
	var b strings.Builder
	RenderAvailability(&b, rows)
	out := b.String()
	for _, want := range []string{"adaptive", "deterministic", "schedule["} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	if err := AvailabilityCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "\n"); got != 5 {
		t.Errorf("CSV rows = %d, want 5 (header + 2 policies x 2 reliability modes)", got)
	}
}
