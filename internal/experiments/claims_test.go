package experiments

import (
	"context"
	"testing"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/sweep"
	"lapses/internal/table"
	"lapses/internal/traffic"
)

// claims_test encodes the paper's qualitative results as assertions on the
// real 16x16 network at reduced sample size. Absolute numbers differ from
// the paper (different simulator internals); the claims below are about
// orderings and effect directions, which are stable at this fidelity.
//
// The full-fidelity claims are skipped under -short (TestClaimsSmoke is
// the quick stand-in). Each test declares its points as a grid and sweeps
// them through the shared package cache, so points that recur across
// tests — e.g. the LA-adaptive baseline at transpose 0.4 — simulate once
// even though the tests run in parallel.

// Cycle budgets per point class. Claim verdicts never change under these
// caps: non-saturated claim points finish well below them (the slowest,
// load 0.1 on 16x16, completes by ~27k cycles), while genuinely
// overloaded points stop burning time once the saturation verdict is
// clear instead of running out the default ~100k+ budget.
const (
	capLowLoad    = 60000 // points at load 0.1 (finish ~27k cycles)
	capHighLoad   = 30000 // points at load 0.2-0.5 (finish <20k cycles)
	capSatVerdict = 15000 // points asserted to saturate OR trail badly:
	// healthy high-load points complete by ~10k cycles, while these
	// deliver under 10% of demand. The cap cannot mask a regression:
	// a config that keeps up finishes below the cap and faces the
	// latency-ratio assertion instead, and one that needs 15k-100k
	// cycles for 8500 messages is source-throttled, which drives its
	// queueing-inclusive AvgLatency far past the 1.5x bar anyway.
)

// testCache memoizes full-fidelity points across all tests in this
// package (claims, smoke, shapes); safe under t.Parallel.
var testCache = sweep.NewCache()

// claimCfg is the shared full-fidelity claim configuration. All claim
// tests use the same seed so overlapping points dedupe in testCache.
func claimCfg() core.Config {
	c := core.DefaultConfig()
	c.Selection = selection.StaticXY
	c.Warmup, c.Measure = 500, 8000
	c.Seed = 1
	return c
}

// sweepClaims runs the declared points through the package cache and
// returns results in grid order, failing the test on any point error.
func sweepClaims(t *testing.T, cfgs ...core.Config) []core.Result {
	t.Helper()
	outs, err := sweep.Run(context.Background(), cfgs, sweep.Options{Cache: testCache})
	if err != nil {
		t.Fatal(err)
	}
	res := make([]core.Result, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("point %d (%s load %.1f): %v", i, o.Config.Pattern, o.Config.Load, o.Err)
		}
		res[i] = o.Result
	}
	return res
}

func skipShortClaim(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-fidelity claim; -short runs TestClaimsSmoke instead")
	}
	t.Parallel()
}

// Claim (Fig. 5, low load): the LA adaptive router beats both no-look-ahead
// routers by roughly 12-15% at low load; LA-DET is comparable to LA-ADAPT.
func TestClaimLookAheadAtLowLoad(t *testing.T) {
	skipShortClaim(t)
	pats := []traffic.Kind{traffic.Uniform, traffic.Transpose}
	var grid []core.Config
	for _, pat := range pats {
		for _, arch := range []struct {
			la  bool
			alg core.Alg
		}{
			{true, core.AlgDuato}, {false, core.AlgDuato}, {false, core.AlgXY}, {true, core.AlgXY},
		} {
			c := claimCfg()
			c.Pattern = pat
			c.Load = 0.1
			c.MaxCycles = capLowLoad
			c.LookAhead, c.Algorithm = arch.la, arch.alg
			grid = append(grid, c)
		}
	}
	res := sweepClaims(t, grid...)
	for i, pat := range pats {
		laAdapt, noLaAdapt, noLaDet, laDet := res[4*i], res[4*i+1], res[4*i+2], res[4*i+3]
		for name, r := range map[string]core.Result{"NOLA-ADAPT": noLaAdapt, "NOLA-DET": noLaDet} {
			imp := (r.AvgLatency - laAdapt.AvgLatency) / r.AvgLatency
			if imp < 0.08 || imp > 0.20 {
				t.Errorf("%s/%s: LA improvement %.1f%% outside the paper's 12-15%% band (±)", pat, name, imp*100)
			}
		}
		// LA-DET ~= LA-ADAPT at light load (paper: "negligible").
		diff := (laDet.AvgLatency - laAdapt.AvgLatency) / laAdapt.AvgLatency
		if diff < -0.05 || diff > 0.05 {
			t.Errorf("%s: LA-DET vs LA-ADAPT at low load differ by %.1f%%", pat, diff*100)
		}
	}
}

// adaptivityPoint is the LA-adaptive reference at high load, shared (via
// testCache) between the adaptivity and path-selection claims and the
// smoke test.
func adaptivityPoint(pat traffic.Kind) core.Config {
	c := claimCfg()
	c.Pattern = pat
	c.Load = 0.4
	c.LookAhead = true
	c.Algorithm = core.AlgDuato
	c.MaxCycles = capHighLoad
	return c
}

// claimSatSearch locates a claim configuration's saturation load by
// bisection through the shared package cache (probes recurring across
// claims — e.g. the ES search, whose points are the Duato search's —
// simulate once).
func claimSatSearch(t *testing.T, base core.Config) sweep.BisectResult {
	t.Helper()
	lo, hi := satBracket(base.Pattern)
	res, err := sweep.Bisect(context.Background(), SaturationSpec(base, lo, hi, 0.02), sweep.Options{Cache: testCache})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("saturation search did not converge: %s", res)
	}
	return res
}

// Claim (Fig. 5b-d, high load): adaptivity wins on non-uniform patterns.
// Measured directly as the quantity the paper's figures imply: the
// bisection-located saturation load of the adaptive router sits clearly
// above the deterministic router's on both permutation patterns (the
// dense high-load grid this check used to sweep is replaced by the
// logarithmic search; the >= 2x cycle reduction is pinned by
// TestBisectCycleReduction).
func TestClaimAdaptivityAtHighLoad(t *testing.T) {
	skipShortClaim(t)
	for _, pat := range []traffic.Kind{traffic.Transpose, traffic.BitReversal} {
		adapt := claimCfg()
		adapt.Pattern = pat
		det := adapt
		det.Algorithm = core.AlgXY
		a := claimSatSearch(t, adapt)
		d := claimSatSearch(t, det)
		if d.Lo < 0.15 {
			t.Errorf("%s: deterministic saturation load %.3f implausibly low", pat, d.Lo)
		}
		if a.Lo < d.Lo+0.02 {
			t.Errorf("%s: adaptive saturation load %.3f not clearly above deterministic %.3f (observed margins: 0.03-0.05)",
				pat, a.Lo, d.Lo)
		}
	}
}

// Claim (Fig. 6): the traffic-sensitive heuristics (LRU, LFU, MAX-CREDIT)
// clearly beat STATIC-XY on non-uniform patterns at medium-high load.
func TestClaimDynamicPSHsBeatStatic(t *testing.T) {
	skipShortClaim(t)
	pats := []traffic.Kind{traffic.Transpose, traffic.BitReversal}
	dyns := []selection.Kind{selection.LRU, selection.LFU, selection.MaxCredit}
	var grid []core.Config
	for _, pat := range pats {
		grid = append(grid, adaptivityPoint(pat)) // STATIC-XY baseline, shared point
		for _, psh := range dyns {
			c := adaptivityPoint(pat)
			c.Selection = psh
			grid = append(grid, c)
		}
	}
	res := sweepClaims(t, grid...)
	stride := 1 + len(dyns)
	for i, pat := range pats {
		static := res[stride*i]
		for j, psh := range dyns {
			dyn := res[stride*i+1+j]
			if dyn.Saturated {
				t.Fatalf("%s/%s saturated", pat, psh)
			}
			if static.Saturated {
				continue // static saturating proves the claim outright
			}
			if dyn.AvgLatency > 0.9*static.AvgLatency {
				t.Errorf("%s: %s (%.1f) not clearly better than static-XY (%.1f)",
					pat, psh, dyn.AvgLatency, static.AvgLatency)
			}
		}
	}
}

// Claim (Fig. 6a): for uniform traffic, STATIC-XY is the best or tied-best
// policy (adaptive deviation does not help symmetric load).
func TestClaimStaticBestForUniform(t *testing.T) {
	skipShortClaim(t)
	dyns := []selection.Kind{selection.LRU, selection.MaxCredit, selection.MinMux}
	mk := func(psh selection.Kind) core.Config {
		c := claimCfg()
		c.Pattern = traffic.Uniform
		c.Load = 0.5
		c.Selection = psh
		c.MaxCycles = capHighLoad
		return c
	}
	grid := []core.Config{mk(selection.StaticXY)}
	for _, psh := range dyns {
		grid = append(grid, mk(psh))
	}
	res := sweepClaims(t, grid...)
	static := res[0]
	for i, psh := range dyns {
		dyn := res[1+i]
		// "Comparable except at very high load": allow 10% slack.
		if static.AvgLatency > 1.10*dyn.AvgLatency {
			t.Errorf("uniform: static-XY (%.1f) should not trail %s (%.1f) by >10%%",
				static.AvgLatency, psh, dyn.AvgLatency)
		}
	}
}

// Claim (Table 4): ES is exactly full-table; the meta-table mappings are
// worse, with the maximal-flexibility (block) mapping worse than the
// deterministic (row) one — the paper's counterintuitive result.
func TestClaimTableStorageOrdering(t *testing.T) {
	skipShortClaim(t)
	kinds := []table.Kind{table.KindFull, table.KindES, table.KindMetaRow, table.KindMetaBlock}
	var grid []core.Config
	for _, tk := range kinds {
		c := claimCfg()
		c.Pattern = traffic.Transpose
		c.Load = 0.2
		c.Table = tk
		c.MaxCycles = capHighLoad
		grid = append(grid, c)
	}
	res := sweepClaims(t, grid...)
	full, es, metaDet, metaAdp := res[0], res[1], res[2], res[3]

	if full.AvgLatency != es.AvgLatency || full.Delivered != es.Delivered {
		t.Errorf("ES (%.3f) must be identical to full table (%.3f)", es.AvgLatency, full.AvgLatency)
	}
	if metaAdp.AvgLatency <= metaDet.AvgLatency {
		t.Errorf("meta-block (%.1f) should be worse than meta-row (%.1f): boundary congestion",
			metaAdp.AvgLatency, metaDet.AvgLatency)
	}
	if metaDet.AvgLatency < full.AvgLatency {
		t.Errorf("meta-row (%.1f) should not beat full-table adaptive (%.1f)",
			metaDet.AvgLatency, full.AvgLatency)
	}
}

// Claim (Table 4, higher load): the meta mappings fall apart on transpose
// while full/ES keep delivering — as saturation loads: the meta-row
// mapping's knee sits clearly below ES's (ES's search shares every probe
// with the adaptivity claim's Duato search through the package cache).
func TestClaimMetaTableSaturatesEarly(t *testing.T) {
	skipShortClaim(t)
	es := claimCfg()
	es.Pattern = traffic.Transpose
	es.Table = table.KindES
	metaDet := es
	metaDet.Table = table.KindMetaRow
	e := claimSatSearch(t, es)
	m := claimSatSearch(t, metaDet)
	if e.Lo < 0.28 {
		t.Errorf("ES saturation load %.3f on transpose, want >= 0.28 (observed 0.30)", e.Lo)
	}
	if m.Lo > e.Lo-0.04 {
		t.Errorf("meta-row saturation load %.3f not clearly below ES %.3f (observed margin 0.08)", m.Lo, e.Lo)
	}
}

// TestClaimsSmoke is the -short stand-in for the full claims: the two
// headline effects (look-ahead helps, adaptivity rescues non-uniform
// traffic) at reduced sample size. Without -short it reuses the exact
// full-fidelity claim points, so it costs nothing beyond a cache lookup
// once the full claims have run (and vice versa).
func TestClaimsSmoke(t *testing.T) {
	t.Parallel()
	la := claimCfg()
	la.Load = 0.1
	la.MaxCycles = capLowLoad
	nola := la
	nola.LookAhead = false
	adapt := adaptivityPoint(traffic.Transpose)
	det := adaptivityPoint(traffic.Transpose)
	det.Algorithm = core.AlgXY
	det.MaxCycles = capSatVerdict
	grid := []core.Config{la, nola, adapt, det}
	if testing.Short() {
		for i := range grid {
			grid[i].Warmup, grid[i].Measure = 150, 2000
			grid[i].MaxCycles = 20000
			if grid[i].Load > 0.3 {
				grid[i].MaxCycles = 8000
			}
		}
	}
	res := sweepClaims(t, grid...)
	laRes, nolaRes, adaptRes, detRes := res[0], res[1], res[2], res[3]
	if laRes.Saturated || nolaRes.Saturated || adaptRes.Saturated {
		t.Fatalf("smoke points saturated: la=%v nola=%v adapt=%v",
			laRes.Saturated, nolaRes.Saturated, adaptRes.Saturated)
	}
	if imp := (nolaRes.AvgLatency - laRes.AvgLatency) / nolaRes.AvgLatency; imp < 0.02 {
		t.Errorf("look-ahead improvement %.1f%% at low load, want clearly positive", imp*100)
	}
	if !detRes.Saturated && detRes.AvgLatency < 1.2*adaptRes.AvgLatency {
		t.Errorf("deterministic (%.1f) should saturate or trail adaptive (%.1f) on transpose 0.4",
			detRes.AvgLatency, adaptRes.AvgLatency)
	}
	for i, r := range res[:3] {
		if r.Delivered == 0 {
			t.Errorf("smoke point %d delivered nothing", i)
		}
	}
}
