package experiments

import (
	"testing"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/traffic"
)

// claims_test encodes the paper's qualitative results as assertions on the
// real 16x16 network at reduced sample size. Absolute numbers differ from
// the paper (different simulator internals); the claims below are about
// orderings and effect directions, which are stable at this fidelity.

func claimCfg(seed int64) core.Config {
	c := core.DefaultConfig()
	c.Selection = selection.StaticXY
	c.Warmup, c.Measure = 500, 8000
	c.Seed = seed
	return c
}

func runOrFatal(t *testing.T, c core.Config) core.Result {
	t.Helper()
	r, err := core.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Claim (Fig. 5, low load): the LA adaptive router beats both no-look-ahead
// routers by roughly 12-15% at low load; LA-DET is comparable to LA-ADAPT.
func TestClaimLookAheadAtLowLoad(t *testing.T) {
	for _, pat := range []traffic.Kind{traffic.Uniform, traffic.Transpose} {
		c := claimCfg(1)
		c.Pattern = pat
		c.Load = 0.1

		c.LookAhead, c.Algorithm = true, core.AlgDuato
		laAdapt := runOrFatal(t, c)
		c.LookAhead, c.Algorithm = false, core.AlgDuato
		noLaAdapt := runOrFatal(t, c)
		c.LookAhead, c.Algorithm = false, core.AlgXY
		noLaDet := runOrFatal(t, c)
		c.LookAhead, c.Algorithm = true, core.AlgXY
		laDet := runOrFatal(t, c)

		for name, r := range map[string]core.Result{"NOLA-ADAPT": noLaAdapt, "NOLA-DET": noLaDet} {
			imp := (r.AvgLatency - laAdapt.AvgLatency) / r.AvgLatency
			if imp < 0.08 || imp > 0.20 {
				t.Errorf("%s/%s: LA improvement %.1f%% outside the paper's 12-15%% band (±)", pat, name, imp*100)
			}
		}
		// LA-DET ~= LA-ADAPT at light load (paper: "negligible").
		diff := (laDet.AvgLatency - laAdapt.AvgLatency) / laAdapt.AvgLatency
		if diff < -0.05 || diff > 0.05 {
			t.Errorf("%s: LA-DET vs LA-ADAPT at low load differ by %.1f%%", pat, diff*100)
		}
	}
}

// Claim (Fig. 5b-d, high load): adaptivity wins decisively on non-uniform
// patterns — the deterministic router saturates or is far slower.
func TestClaimAdaptivityAtHighLoad(t *testing.T) {
	for _, pat := range []traffic.Kind{traffic.Transpose, traffic.BitReversal} {
		c := claimCfg(2)
		c.Pattern = pat
		c.Load = 0.4
		c.LookAhead = true

		c.Algorithm = core.AlgDuato
		adapt := runOrFatal(t, c)
		c.Algorithm = core.AlgXY
		det := runOrFatal(t, c)

		if adapt.Saturated {
			t.Fatalf("%s: adaptive saturated at 0.4", pat)
		}
		if !det.Saturated && det.AvgLatency < 1.5*adapt.AvgLatency {
			t.Errorf("%s: deterministic (%.1f) should saturate or trail adaptive (%.1f) badly",
				pat, det.AvgLatency, adapt.AvgLatency)
		}
	}
}

// Claim (Fig. 6): the traffic-sensitive heuristics (LRU, LFU, MAX-CREDIT)
// clearly beat STATIC-XY on non-uniform patterns at medium-high load.
func TestClaimDynamicPSHsBeatStatic(t *testing.T) {
	for _, pat := range []traffic.Kind{traffic.Transpose, traffic.BitReversal} {
		c := claimCfg(3)
		c.Pattern = pat
		c.Load = 0.4
		c.Selection = selection.StaticXY
		static := runOrFatal(t, c)
		for _, psh := range []selection.Kind{selection.LRU, selection.LFU, selection.MaxCredit} {
			c.Selection = psh
			dyn := runOrFatal(t, c)
			if dyn.Saturated {
				t.Fatalf("%s/%s saturated", pat, psh)
			}
			if static.Saturated {
				continue // static saturating proves the claim outright
			}
			if dyn.AvgLatency > 0.9*static.AvgLatency {
				t.Errorf("%s: %s (%.1f) not clearly better than static-XY (%.1f)",
					pat, psh, dyn.AvgLatency, static.AvgLatency)
			}
		}
	}
}

// Claim (Fig. 6a): for uniform traffic, STATIC-XY is the best or tied-best
// policy (adaptive deviation does not help symmetric load).
func TestClaimStaticBestForUniform(t *testing.T) {
	c := claimCfg(4)
	c.Pattern = traffic.Uniform
	c.Load = 0.5
	c.Selection = selection.StaticXY
	static := runOrFatal(t, c)
	for _, psh := range []selection.Kind{selection.LRU, selection.MaxCredit, selection.MinMux} {
		c.Selection = psh
		dyn := runOrFatal(t, c)
		// "Comparable except at very high load": allow 10% slack.
		if static.AvgLatency > 1.10*dyn.AvgLatency {
			t.Errorf("uniform: static-XY (%.1f) should not trail %s (%.1f) by >10%%",
				static.AvgLatency, psh, dyn.AvgLatency)
		}
	}
}

// Claim (Table 4): ES is exactly full-table; the meta-table mappings are
// worse, with the maximal-flexibility (block) mapping worse than the
// deterministic (row) one — the paper's counterintuitive result.
func TestClaimTableStorageOrdering(t *testing.T) {
	c := claimCfg(5)
	c.Pattern = traffic.Transpose
	c.Load = 0.2
	mk := func(tk table.Kind) core.Result {
		c.Table = tk
		return runOrFatal(t, c)
	}
	full := mk(table.KindFull)
	es := mk(table.KindES)
	metaDet := mk(table.KindMetaRow)
	metaAdp := mk(table.KindMetaBlock)

	if full.AvgLatency != es.AvgLatency || full.Delivered != es.Delivered {
		t.Errorf("ES (%.3f) must be identical to full table (%.3f)", es.AvgLatency, full.AvgLatency)
	}
	if metaAdp.AvgLatency <= metaDet.AvgLatency {
		t.Errorf("meta-block (%.1f) should be worse than meta-row (%.1f): boundary congestion",
			metaAdp.AvgLatency, metaDet.AvgLatency)
	}
	if metaDet.AvgLatency < full.AvgLatency {
		t.Errorf("meta-row (%.1f) should not beat full-table adaptive (%.1f)",
			metaDet.AvgLatency, full.AvgLatency)
	}
}

// Claim (Table 4, higher load): both meta mappings fall apart on transpose
// while full/ES keep delivering.
func TestClaimMetaTableSaturatesEarly(t *testing.T) {
	c := claimCfg(6)
	c.Pattern = traffic.Transpose
	c.Load = 0.3
	c.Table = table.KindES
	es := runOrFatal(t, c)
	if es.Saturated {
		t.Fatal("ES saturated at transpose 0.3")
	}
	c.Table = table.KindMetaRow
	metaDet := runOrFatal(t, c)
	if !metaDet.Saturated && metaDet.AvgLatency < 1.5*es.AvgLatency {
		t.Errorf("meta-row at 0.3 (%.1f) should saturate or trail ES (%.1f) badly",
			metaDet.AvgLatency, es.AvgLatency)
	}
}
