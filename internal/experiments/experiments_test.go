package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/sweep"
	"lapses/internal/traffic"
)

// The experiment harness is exercised two ways: grid plumbing (point
// counts, scatter wiring, error and cancellation paths) through a fake
// runner that encodes each config into its Result, and the real 16x16
// network at tiny fidelity. The committed result shapes are validated by
// the claims tests in claims_test.go.

// fakeRun synthesizes a Result from the config so tests can verify every
// point landed in the right row slot without simulating.
func fakeRun(c core.Config) (core.Result, error) {
	la := 2.0
	if c.LookAhead {
		la = 1.0
	}
	return core.Result{
		AvgLatency: c.Load * 1000,
		AvgHops:    float64(c.MsgLen),
		Throughput: float64(c.Algorithm),
		NetLatency: float64(c.Table),
		CI95:       float64(c.Selection),
		P50:        la,
		Delivered:  1,
	}, nil
}

func fakeRunner() Runner { return Runner{Fidelity: Quick, Seed: 1, Workers: 4, run: fakeRun} }

func TestFig5GridShape(t *testing.T) {
	t.Parallel()
	rows, err := fakeRunner().Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, pat := range PaperPatterns {
		want += len(patternLoads(pat))
	}
	if len(rows) != want {
		t.Fatalf("rows = %d want %d", len(rows), want)
	}
	for _, r := range rows {
		for name, res := range map[string]core.Result{
			"NoLADet": r.NoLADet, "NoLAAdapt": r.NoLAAdapt, "LADet": r.LADet, "LAAdapt": r.LAAdapt,
		} {
			if res.AvgLatency != r.Load*1000 {
				t.Fatalf("%s/%.1f %s: scattered result for load %v", r.Pattern, r.Load, name, res.AvgLatency/1000)
			}
		}
		// Architecture axis: deterministic columns carry AlgXY, adaptive
		// ones AlgDuato; LA columns have the look-ahead marker.
		if r.NoLADet.Throughput != float64(core.AlgXY) || r.NoLAAdapt.Throughput != float64(core.AlgDuato) {
			t.Fatalf("%s/%.1f: algorithm columns scrambled", r.Pattern, r.Load)
		}
		if r.LADet.P50 != 1 || r.NoLADet.P50 != 2 {
			t.Fatalf("%s/%.1f: look-ahead columns scrambled", r.Pattern, r.Load)
		}
	}
}

func TestFig6GridShape(t *testing.T) {
	t.Parallel()
	rows, err := fakeRunner().Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.ByPSH) != len(Fig6PSHs) {
			t.Fatalf("%s/%.1f: %d heuristics want %d", r.Pattern, r.Load, len(r.ByPSH), len(Fig6PSHs))
		}
		for _, psh := range Fig6PSHs {
			res := r.ByPSH[psh]
			if res.CI95 != float64(psh) || res.AvgLatency != r.Load*1000 {
				t.Fatalf("%s/%.1f/%s: wrong point scattered", r.Pattern, r.Load, psh)
			}
		}
	}
}

func TestTable4GridShape(t *testing.T) {
	t.Parallel()
	rows, err := fakeRunner().Table4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, pat := range Table4Patterns {
		want += len(table4Loads(pat))
	}
	if len(rows) != want {
		t.Fatalf("rows = %d want %d", len(rows), want)
	}
	for _, r := range rows {
		for _, scheme := range table4Schemes {
			res := *scheme.Slot(&r)
			if res.NetLatency != float64(scheme.Kind) {
				t.Fatalf("%s/%.1f: column holds table kind %v want %v", r.Pattern, r.Load, res.NetLatency, scheme.Kind)
			}
		}
	}
}

func TestTable3GridShapeAndRender(t *testing.T) {
	t.Parallel()
	rows, err := fakeRunner().Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(table3Lengths) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.MsgLen != table3Lengths[i] || r.LookAhead.AvgHops != float64(r.MsgLen) {
			t.Errorf("row %d: msglen %d result %v", i, r.MsgLen, r.LookAhead.AvgHops)
		}
		if r.LookAhead.P50 != 1 || r.NoLookAhd.P50 != 2 {
			t.Errorf("row %d: LA columns swapped", i)
		}
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Mesg. Len") {
		t.Error("render missing header")
	}
}

// TestPointErrorPropagates replaces the old mustRun-panic path: a failing
// point must surface as an error from the experiment, not a panic.
func TestPointErrorPropagates(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	r := fakeRunner()
	r.run = func(c core.Config) (core.Result, error) {
		if c.Pattern == traffic.Transpose && c.Load == 0.3 {
			return core.Result{}, boom
		}
		return fakeRun(c)
	}
	if _, err := r.Fig5(context.Background()); !errors.Is(err, boom) {
		t.Errorf("Fig5 err = %v want boom", err)
	}
	if _, err := r.Fig6(context.Background()); !errors.Is(err, boom) {
		t.Errorf("Fig6 err = %v want boom", err)
	}
	if _, err := r.Table4(context.Background()); !errors.Is(err, boom) {
		t.Errorf("Table4 err = %v want boom", err)
	}
}

// TestExecSeamRoutesGrids proves Runner.Exec replaces in-process
// sweep.Run for every grid an experiment dispatches — the seam the
// -server client mode plugs into — and that a delegating Exec is
// output-identical to the in-process path.
func TestExecSeamRoutesGrids(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"fig5", "table3", "fig6", "table4"} {
		var direct bytes.Buffer
		if err := fakeRunner().RunByName(context.Background(), &direct, name); err != nil {
			t.Fatalf("%s in-process: %v", name, err)
		}
		calls := 0
		r := fakeRunner()
		r.Exec = func(ctx context.Context, grid []core.Config, opt sweep.Options) ([]sweep.Outcome, error) {
			calls++
			return sweep.Run(ctx, grid, opt)
		}
		var routed bytes.Buffer
		if err := r.RunByName(context.Background(), &routed, name); err != nil {
			t.Fatalf("%s via Exec: %v", name, err)
		}
		if calls == 0 {
			t.Errorf("%s: Exec never invoked", name)
		}
		if routed.String() != direct.String() {
			t.Errorf("%s: output differs between Exec and in-process runs", name)
		}
	}
}

func TestExperimentCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fakeRunner().Fig5(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Fig5 on cancelled ctx = %v", err)
	}
	if err := fakeRunner().RunByName(ctx, &bytes.Buffer{}, "table4"); !errors.Is(err, context.Canceled) {
		t.Errorf("RunByName on cancelled ctx = %v", err)
	}
}

// TestRunByNameRendersAllSweeps drives every sweep-backed experiment
// through RunByName with the fake runner, checking each renders output.
func TestRunByNameRendersAllSweeps(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"fig5", "table3", "fig6", "table4"} {
		var buf bytes.Buffer
		if err := fakeRunner().RunByName(context.Background(), &buf, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: no output", name)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("real-simulation trend check; grid wiring runs in TestTable3GridShapeAndRender")
	}
	t.Parallel()
	r := Runner{Fidelity: Quick, Seed: 1, Cache: testCache}
	rows, err := r.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The look-ahead benefit must decrease with message length
	// (Table 3's trend: 18% at 5 flits down to 6.5% at 50).
	if !(rows[0].Improvement() > rows[3].Improvement()) {
		t.Errorf("LA improvement should shrink with length: %v vs %v",
			rows[0].Improvement(), rows[3].Improvement())
	}
	for _, r := range rows {
		if r.Improvement() < 0 {
			t.Errorf("len %d: negative improvement %.1f", r.MsgLen, r.Improvement())
		}
	}
}

func TestTable5Counts(t *testing.T) {
	t.Parallel()
	rows := Table5(256, 2)
	byScheme := map[string]int{}
	for _, r := range rows {
		byScheme[r.Scheme] = r.Entries
	}
	if byScheme["full-table"] != 256 {
		t.Errorf("full = %d", byScheme["full-table"])
	}
	if byScheme["economical storage"] != 9 {
		t.Errorf("es = %d", byScheme["economical storage"])
	}
	if byScheme["interval"] != 5 {
		t.Errorf("interval = %d", byScheme["interval"])
	}
	if byScheme["meta-table (2-level)"] != 32 {
		t.Errorf("meta = %d", byScheme["meta-table (2-level)"])
	}
	rows3 := Table5(2048, 3)
	for _, r := range rows3 {
		if r.Scheme == "economical storage" && r.Entries != 27 {
			t.Errorf("3-D es = %d", r.Entries)
		}
	}
	var buf bytes.Buffer
	RenderTable5(&buf, rows)
	if !strings.Contains(buf.String(), "economical storage") {
		t.Error("render missing scheme")
	}
}

func TestRunByName(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := RunByName(&buf, "table5", Quick, 1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
	if err := RunByName(&buf, "nonsense", Quick, 1); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestParseFidelity(t *testing.T) {
	t.Parallel()
	for _, s := range []string{"quick", "default", "paper"} {
		if _, err := ParseFidelity(s); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	if _, err := ParseFidelity("x"); err == nil {
		t.Error("expected error")
	}
}

func TestPctOver(t *testing.T) {
	t.Parallel()
	a := core.Result{AvgLatency: 110}
	b := core.Result{AvgLatency: 100}
	p, ok := pctOver(a, b)
	if !ok || p != 10 {
		t.Errorf("pctOver = %v,%v want 10,true", p, ok)
	}
	if _, ok := pctOver(a, core.Result{Saturated: true}); ok {
		t.Error("saturated baseline must not produce a percentage")
	}
}

// Minimal one-point real-simulation run through the sweep machinery (the
// full grids run in claims_test.go and the benchmarks).
func TestFig6SinglePoint(t *testing.T) {
	t.Parallel()
	c := Runner{Fidelity: Quick, Seed: 1}.base()
	c.Pattern = traffic.Transpose
	c.Load = 0.2
	c.Selection = selection.LRU
	res := sweepClaims(t, c)[0]
	if res.Saturated {
		t.Fatalf("transpose 0.2 saturated: %s", res.SatReason)
	}
	if res.AvgLatency < 50 || res.AvgLatency > 300 {
		t.Errorf("implausible latency %v", res.AvgLatency)
	}
}
