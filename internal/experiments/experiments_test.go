package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/traffic"
)

// The experiment harness is exercised at tiny fidelity on the real 16x16
// network; the committed result shapes are validated by the claims tests
// in claims_test.go.

func TestTable3Shape(t *testing.T) {
	rows := Table3(Quick, 1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The look-ahead benefit must decrease with message length
	// (Table 3's trend: 18% at 5 flits down to 6.5% at 50).
	if !(rows[0].Improvement() > rows[3].Improvement()) {
		t.Errorf("LA improvement should shrink with length: %v vs %v",
			rows[0].Improvement(), rows[3].Improvement())
	}
	for _, r := range rows {
		if r.Improvement() < 0 {
			t.Errorf("len %d: negative improvement %.1f", r.MsgLen, r.Improvement())
		}
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Mesg. Len") {
		t.Error("render missing header")
	}
}

func TestTable5Counts(t *testing.T) {
	rows := Table5(256, 2)
	byScheme := map[string]int{}
	for _, r := range rows {
		byScheme[r.Scheme] = r.Entries
	}
	if byScheme["full-table"] != 256 {
		t.Errorf("full = %d", byScheme["full-table"])
	}
	if byScheme["economical storage"] != 9 {
		t.Errorf("es = %d", byScheme["economical storage"])
	}
	if byScheme["interval"] != 5 {
		t.Errorf("interval = %d", byScheme["interval"])
	}
	if byScheme["meta-table (2-level)"] != 32 {
		t.Errorf("meta = %d", byScheme["meta-table (2-level)"])
	}
	rows3 := Table5(2048, 3)
	for _, r := range rows3 {
		if r.Scheme == "economical storage" && r.Entries != 27 {
			t.Errorf("3-D es = %d", r.Entries)
		}
	}
	var buf bytes.Buffer
	RenderTable5(&buf, rows)
	if !strings.Contains(buf.String(), "economical storage") {
		t.Error("render missing scheme")
	}
}

func TestRunByName(t *testing.T) {
	var buf bytes.Buffer
	if err := RunByName(&buf, "table5", Quick, 1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
	if err := RunByName(&buf, "nonsense", Quick, 1); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestParseFidelity(t *testing.T) {
	for _, s := range []string{"quick", "default", "paper"} {
		if _, err := ParseFidelity(s); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	if _, err := ParseFidelity("x"); err == nil {
		t.Error("expected error")
	}
}

func TestPctOver(t *testing.T) {
	a := core.Result{AvgLatency: 110}
	b := core.Result{AvgLatency: 100}
	p, ok := pctOver(a, b)
	if !ok || p != 10 {
		t.Errorf("pctOver = %v,%v want 10,true", p, ok)
	}
	if _, ok := pctOver(a, core.Result{Saturated: true}); ok {
		t.Error("saturated baseline must not produce a percentage")
	}
}

// Minimal one-point Fig6 run to exercise the sweep machinery without the
// full grid (the grid runs in claims_test.go and the benchmarks).
func TestFig6SinglePoint(t *testing.T) {
	row := Fig6Row{Pattern: traffic.Transpose, Load: 0.2, ByPSH: nil}
	_ = row
	c := base(Quick)
	c.Pattern = traffic.Transpose
	c.Load = 0.2
	c.Selection = selection.LRU
	res := mustRun(c)
	if res.Saturated {
		t.Fatalf("transpose 0.2 saturated: %s", res.SatReason)
	}
	if res.AvgLatency < 50 || res.AvgLatency > 300 {
		t.Errorf("implausible latency %v", res.AvgLatency)
	}
}
