package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lapses/internal/core"
	"lapses/internal/fault"
	"lapses/internal/selection"
)

// The availability experiment measures what adaptive routing buys while
// the network is actively failing, not merely degraded: a transient fault
// storm — several links and a router going down mid-measurement, most
// healing — hits the 16x16 mesh at the moderate load, and the experiment
// compares the full LAPSES router (Duato adaptive + LRU) against
// deterministic routing (up*/down* over the same damage, the degraded
// form of dimension-order) on three availability metrics:
//
//   - delivered fraction: measured messages that arrived (losses are
//     flits destroyed by a transition's reconfiguration drain or bound
//     for the dead router);
//   - p99 latency: the tail cost of routing around the storm;
//   - recovery: how long after the last failure the delivery rate
//     returns to 95% of its pre-fault mean (core.Result.RecoveryCycles).
//
// Each policy also runs with the end-to-end NI reliability layer on,
// where the delivered fraction must return to 1.0 — the retransmission
// column then shows what that guarantee costs.
//
// Both policies inject the identical workload (same seed, same
// generation streams), so every difference is routing.

// availabilityLoad is the offered load during the storm: high enough
// that the cut congests the deterministic detours, below healthy
// saturation for both policies.
const availabilityLoad = 0.3

// AvailabilitySchedule builds the experiment's storm on the 16x16 mesh:
// half the central column's cross links — a partial bisection cut —
// fail in a staggered burst starting at cycle 1000 and heal in the same
// order from cycle 3000, and a nearby router dies and recovers inside
// the same window (9 timed events for the default dims). The staggering
// makes every down and every heal its own reconvergence, which is where
// the policies separate: each table swap drains the layer that carries
// the deadlock argument, and for deterministic routing that layer is
// the whole network (every swap is a static reconfiguration) while the
// adaptive router only drains its escape VCs and keeps the adaptive
// layer's traffic in flight. Every element heals, so the end-to-end
// reliability layer can always finish the job (delivered fraction 1.0).
func AvailabilitySchedule(base core.Config) (*fault.Schedule, error) {
	m := base.Mesh()
	cols := base.Dims[0]
	c := cols / 2
	var b strings.Builder
	for i := 0; i < base.Dims[1]/2; i++ {
		n := i*cols + (c - 1)
		fmt.Fprintf(&b, "%d-%d@%d:%d,", n, n+1, 1000+25*i, 3000+25*i)
	}
	fmt.Fprintf(&b, "r%d@1300:3100", (base.Dims[1]/2+2)*cols+c+4)
	return fault.ParseSchedule(m, b.String())
}

// AvailabilityRow is one routing policy under the storm.
type AvailabilityRow struct {
	Policy   string
	Schedule *fault.Schedule
	// Plain is the run without the reliability layer: the delivered
	// fraction shows what the storm destroys.
	Plain core.Result
	// Reliable is the same run with end-to-end retransmission on: the
	// delivered fraction must be 1.0, and Retransmits/DupSuppressed show
	// the price.
	Reliable core.Result
}

// availabilityPolicies is the policy axis.
var availabilityPolicies = []struct {
	name string
	alg  core.Alg
	sel  selection.Kind
}{
	{"adaptive", core.AlgDuato, selection.LRU},
	{"deterministic", core.AlgXY, selection.StaticXY},
}

// Availability runs the storm grid: 2 policies x (reliability off, on).
func (r Runner) Availability(ctx context.Context) ([]AvailabilityRow, error) {
	base := r.base()
	base.Load = availabilityLoad
	sched, err := AvailabilitySchedule(base)
	if err != nil {
		return nil, fmt.Errorf("experiments: availability storm: %w", err)
	}
	rows := make([]AvailabilityRow, len(availabilityPolicies))
	var g grid
	for i, pol := range availabilityPolicies {
		rows[i] = AvailabilityRow{Policy: pol.name, Schedule: sched}
		row := &rows[i]
		for _, rel := range []bool{false, true} {
			c := base
			c.Algorithm = pol.alg
			c.Selection = pol.sel
			c.Schedule = sched
			slot := &row.Plain
			if rel {
				c.Reliability = &core.Reliability{}
				slot = &row.Reliable
			}
			g.add(c, func(res core.Result) { *slot = res })
		}
	}
	if err := g.run(ctx, r.opts()); err != nil {
		return nil, err
	}
	return rows, nil
}

// recoveryCell renders RecoveryCycles, "-" when the run never recovered
// or had no baseline.
func recoveryCell(r core.Result) string {
	if r.RecoveryCycles < 0 {
		return "-"
	}
	return strconv.FormatInt(r.RecoveryCycles, 10)
}

// RenderAvailability prints the experiment in the repo's table style.
func RenderAvailability(w io.Writer, rows []AvailabilityRow) {
	fmt.Fprintln(w, "Availability: delivered fraction, tail latency and recovery under a transient fault storm")
	if len(rows) > 0 {
		fmt.Fprintf(w, "(storm: %s; adaptive = LA Duato + ES + LRU; deterministic = up*/down* over the same storm)\n", rows[0].Schedule)
	}
	fmt.Fprintf(w, "%-14s %10s %10s %10s %9s %9s | %10s %9s %8s %9s\n",
		"policy", "delivered", "p99-lat", "recovery", "drp-flit", "drp-msg", "rel-deliv", "retrans", "dups", "abandoned")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9.2f%% %10.1f %10s %9d %9d | %9.2f%% %9d %8d %9d\n",
			r.Policy,
			100*r.Plain.DeliveredFraction, r.Plain.P99, recoveryCell(r.Plain),
			r.Plain.DroppedFlits, r.Plain.DroppedMessages,
			100*r.Reliable.DeliveredFraction, r.Reliable.Retransmits,
			r.Reliable.DupSuppressed, r.Reliable.Abandoned)
	}
}

// AvailabilityCSV writes one row per (policy, reliability).
func AvailabilityCSV(w io.Writer, rows []AvailabilityRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"policy", "reliability", "storm",
		"delivered_fraction", "p99_latency", "recovery_cycles",
		"dropped_flits", "dropped_messages", "reconvergence_epochs",
		"retransmits", "dup_suppressed", "abandoned",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, p := range []struct {
			rel bool
			res core.Result
		}{{false, r.Plain}, {true, r.Reliable}} {
			rec := []string{
				r.Policy,
				strconv.FormatBool(p.rel),
				r.Schedule.Key(),
				strconv.FormatFloat(p.res.DeliveredFraction, 'f', 5, 64),
				strconv.FormatFloat(p.res.P99, 'f', 2, 64),
				strconv.FormatInt(p.res.RecoveryCycles, 10),
				strconv.FormatInt(p.res.DroppedFlits, 10),
				strconv.FormatInt(p.res.DroppedMessages, 10),
				strconv.FormatInt(p.res.ReconvergenceEpochs, 10),
				strconv.FormatInt(p.res.Retransmits, 10),
				strconv.FormatInt(p.res.DupSuppressed, 10),
				strconv.FormatInt(p.res.Abandoned, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
