package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lapses/internal/core"
)

func TestTable1Survey(t *testing.T) {
	rows := Table1()
	if len(rows) != 9 {
		t.Fatalf("rows = %d want 9 (the paper lists nine routers)", len(rows))
	}
	adaptive := 0
	for _, r := range rows {
		if strings.Contains(r.Routing, "Adpt") {
			adaptive++
		}
	}
	// The paper's point: only a minority support (even limited)
	// adaptivity.
	if adaptive != 4 {
		t.Errorf("adaptive-capable routers = %d want 4", adaptive)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	for _, want := range []string{"SGI SPIDER", "Cray T3E", "Inmos C-104"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2RendersDefaults(t *testing.T) {
	var buf bytes.Buffer
	RenderTable2(&buf, core.DefaultConfig())
	out := buf.String()
	for _, want := range []string{"256 nodes", "20 flits", "VCs per PC", "4", "5 units (PROUD)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunByNameReference(t *testing.T) {
	var buf bytes.Buffer
	for _, name := range []string{"table1", "table2"} {
		if err := RunByName(&buf, name, Quick, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
