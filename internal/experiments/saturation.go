package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"lapses/internal/core"
	"lapses/internal/sweep"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// Saturation search shared by the saturation-seeking experiments
// (resilience, scaling) and the claims tests: instead of a dense load
// grid — or a single arbitrarily overdriven point — the saturation load
// is located by sweep.Bisect over probes built here.
//
// Probe methodology. A probe at offered load x runs a reduced fixed-tier
// sample (a fifth of the experiment's budget, floored) under a
// load-scaled cycle budget — three times the injection-limited time the
// sample needs, plus drain slack — and is classified by acceptance: the
// probe is past saturation when a run guard tripped or its delivered
// throughput fell below satAcceptFrac of the offered flit rate
// (sweep.OfferedFracSaturated). Probes deliberately stay on the fixed
// measurement tier even under Fidelity Auto: the saturation verdict is a
// fixed-horizon acceptance measurement, and giving every probe (and the
// dense reference path) the identical horizon is what makes verdicts
// comparable across the load axis.

// satAcceptFrac is the acceptance fraction defining the knee: a network
// delivering less than 85% of what is offered is past saturation. The
// margin below 1.0 absorbs the sub-knee measurement bias of short probe
// samples (the pipeline-fill share of the measured span), which sits
// near 0.95; thresholds closer to it misread the bias as saturation.
const satAcceptFrac = 0.85

// satProbeDivisor shrinks the experiment's sample budget for saturation
// probes: classifying a load needs far fewer messages than estimating
// its latency to a tight CI.
const satProbeDivisor = 5

// SaturationSpec builds the bisection spec locating base's saturation
// load between lo and hi at resolution tol. The returned spec runs
// through sweep.Bisect (or sweep.SaturationScan for the dense reference)
// with any sweep.Options; probes share the experiment memo cache like
// every other point.
func SaturationSpec(base core.Config, lo, hi, tol float64) sweep.BisectSpec {
	base.Auto = nil // fixed-horizon probes; see the file comment
	base.Warmup /= satProbeDivisor
	base.Measure /= satProbeDivisor
	if base.Warmup < 100 {
		base.Warmup = 100
	}
	if base.Measure < 1000 {
		base.Measure = 1000
	}
	base.SatLatency = 0 // the default guard; probes must not inherit a lifted one
	mesh := base.Mesh()
	nodes := float64(mesh.N())
	sample := float64(base.Warmup + base.Measure)
	// The nominal offered rate assumes every node injects; permutation
	// patterns exclude fixed points (the transpose diagonal, bit-reversal
	// palindromes), so the acceptance threshold is scaled by the
	// pattern's injecting fraction on the healthy mesh.
	return sweep.BisectSpec{
		Lo: lo, Hi: hi, Tol: tol,
		Saturated: sweep.OfferedFracSaturated(mesh, satAcceptFrac*injectingFraction(base.Pattern, mesh)),
		At: func(load float64) core.Config {
			c := base
			c.Load = load
			rate := traffic.MessageRate(mesh, load, c.MsgLen) * nodes
			c.MaxCycles = int64(3*sample/rate) + 6000
			return c
		},
	}
}

// injectingFraction counts the nodes the pattern gives a destination on
// the healthy mesh (fixed points of a permutation inject nothing).
func injectingFraction(k traffic.Kind, m *topology.Mesh) float64 {
	pat := traffic.New(k, m)
	rng := traffic.NewInjector(1, 1).RNG()
	n := 0
	for id := 0; id < m.N(); id++ {
		if _, ok := pat.Dest(topology.NodeID(id), rng); ok {
			n++
		}
	}
	return float64(n) / float64(m.N())
}

// satSearch is one pending saturation search: the spec plus the sink its
// result scatters into, mirroring how grid declares sweep points.
type satSearch struct {
	name string
	spec sweep.BisectSpec
	sink func(sweep.BisectResult)
}

// runSearches executes independent saturation searches concurrently.
// One search only keeps Fanout probes in flight per round, so fanning
// the searches out too is what fills a wide machine; a GOMAXPROCS
// semaphore bounds the total. Results are deterministic regardless of
// scheduling — each search is a pure function of its spec (and the
// shared single-flight cache returns identical bits to a fresh
// simulation). The first error wins; sinks run under a lock.
func runSearches(ctx context.Context, searches []satSearch, opt sweep.Options) error {
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := range searches {
		s := &searches[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := sweep.Bisect(ctx, s.spec, opt)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("experiments: saturation search %s: %w", s.name, err)
				}
				return
			}
			s.sink(res)
		}()
	}
	wg.Wait()
	return firstErr
}

// satTol is the search resolution per fidelity: smoke tiers accept a
// coarser knee.
func (f Fidelity) satTol() float64 {
	if f == Quick {
		return 0.04
	}
	return 0.02
}

// satBracket is the initial search bracket per traffic pattern: uniform
// traffic saturates near the bisection normalization, the permutation
// patterns far below it. Bisect expands a wrong bracket on its own; the
// initial guess only prices the first round.
func satBracket(p traffic.Kind) (lo, hi float64) {
	if p == traffic.Uniform {
		return 0.1, 1.0
	}
	return 0.05, 0.7
}
