package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lapses/internal/core"
	"lapses/internal/fault"
	"lapses/internal/selection"
	"lapses/internal/sweep"
	"lapses/internal/traffic"
)

// The resilience experiment measures what the paper's adaptivity recipe
// buys when the network degrades: saturation load/throughput and mean
// latency versus the number of failed links, comparing the full LAPSES
// router (Duato adaptive routing, ES tables, LRU selection) against
// deterministic routing over the same damage. Both run the identical
// degraded topology and the identical up*/down* escape structure, so the
// gap isolates the value of adaptive path diversity around faults — the
// scenario adaptive routing is sold on but the paper never evaluates.
//
// Saturation is located by bisection (sweep.Bisect over
// SaturationSpec probes) instead of an arbitrarily overdriven fixed
// point or a dense load grid: the reported saturation load is the
// highest offered load the degraded network still accepts at >= 85% of
// demand (satAcceptFrac), and the reported throughput is the sustained acceptance rate
// at that load. The search costs a logarithmic number of probes; the
// per-experiment log line reports the measured probe/cycle total against
// the dense-grid equivalent (the >= 2x cycle reduction is pinned by
// TestBisectCycleReduction). Latency is reported at a moderate load on
// the same plans. Load stays normalized to the healthy bisection, so
// every fault count shares an x-axis.

// ResilienceFaultCounts is the failed-link axis.
var ResilienceFaultCounts = []int{0, 1, 2, 4, 6, 8}

// ResiliencePatterns are the traffic patterns the resilience experiment
// sweeps.
var ResiliencePatterns = []traffic.Kind{traffic.Uniform, traffic.Transpose}

// ResilienceRow is one (pattern, fault count) point: latency at the
// moderate load and the bisection-located saturation point for both
// routing policies over the same fault plan.
type ResilienceRow struct {
	Pattern traffic.Kind
	// FaultLinks is the number of failed links; Plan is the shared damage
	// (nil at zero faults).
	FaultLinks int
	Plan       *fault.Plan
	// AdaptiveLat/DetLat: mean latency at the moderate load.
	AdaptiveLat, DetLat core.Result
	// AdaptiveSat/DetSat: the highest-sustainable-load probe found by the
	// saturation search; its Throughput is the sustained acceptance rate
	// at the saturation point.
	AdaptiveSat, DetSat core.Result
	// AdaptiveSearch/DetSearch carry the full search outcomes: the
	// saturation-load bracket and the probe/cycle accounting.
	AdaptiveSearch, DetSearch sweep.BisectResult
}

// AdaptiveSatLoad and DetSatLoad are the located saturation loads (the
// highest sustained probe load).
func (r ResilienceRow) AdaptiveSatLoad() float64 { return r.AdaptiveSearch.Lo }

// DetSatLoad is the deterministic policy's saturation load.
func (r ResilienceRow) DetSatLoad() float64 { return r.DetSearch.Lo }

// ThroughputGain returns the adaptive-over-deterministic saturation
// throughput ratio, the experiment's headline number.
func (r ResilienceRow) ThroughputGain() float64 {
	if r.DetSat.Throughput == 0 {
		return 0
	}
	return r.AdaptiveSat.Throughput / r.DetSat.Throughput
}

// resilienceLatencyLoad is the moderate load the latency series uses.
func resilienceLatencyLoad(traffic.Kind) float64 { return 0.2 }

// ResiliencePlans generates the shared fault plans for the given link
// counts on the experiment mesh, seeded from seed (count 0 maps to nil).
// Plans are per-count, not per-pattern, so every series degrades the same
// hardware.
func ResiliencePlans(base core.Config, counts []int, seed int64) (map[int]*fault.Plan, error) {
	m := base.Mesh()
	plans := make(map[int]*fault.Plan, len(counts))
	for _, c := range counts {
		if c == 0 {
			plans[0] = nil
			continue
		}
		p, err := fault.Random(m, c, 0, seed+int64(c)*101)
		if err != nil {
			return nil, fmt.Errorf("experiments: resilience plan for %d faults: %w", c, err)
		}
		plans[c] = p
	}
	return plans, nil
}

// resiliencePolicies is the policy axis shared by the latency grid and
// the saturation searches.
var resiliencePolicies = []struct {
	alg    core.Alg
	sel    selection.Kind
	lat    func(*ResilienceRow) *core.Result
	sat    func(*ResilienceRow) *core.Result
	search func(*ResilienceRow) *sweep.BisectResult
}{
	{core.AlgDuato, selection.LRU,
		func(w *ResilienceRow) *core.Result { return &w.AdaptiveLat },
		func(w *ResilienceRow) *core.Result { return &w.AdaptiveSat },
		func(w *ResilienceRow) *sweep.BisectResult { return &w.AdaptiveSearch }},
	{core.AlgXY, selection.StaticXY,
		func(w *ResilienceRow) *core.Result { return &w.DetLat },
		func(w *ResilienceRow) *core.Result { return &w.DetSat },
		func(w *ResilienceRow) *sweep.BisectResult { return &w.DetSearch }},
}

// Resilience runs the full experiment grid through the sweep engine.
func (r Runner) Resilience(ctx context.Context) ([]ResilienceRow, error) {
	return r.resilience(ctx, ResiliencePatterns, ResilienceFaultCounts)
}

// resilience is the parameterized core; the quick test tier runs it over
// a reduced grid.
func (r Runner) resilience(ctx context.Context, patterns []traffic.Kind, counts []int) ([]ResilienceRow, error) {
	plans, err := ResiliencePlans(r.base(), counts, r.Seed)
	if err != nil {
		return nil, err
	}
	var rows []ResilienceRow
	for _, pat := range patterns {
		for _, c := range counts {
			rows = append(rows, ResilienceRow{Pattern: pat, FaultLinks: c, Plan: plans[c]})
		}
	}
	// Latency points ride the regular grid.
	var g grid
	for i := range rows {
		row := &rows[i]
		for _, pol := range resiliencePolicies {
			lat := r.base()
			lat.Algorithm = pol.alg
			lat.Selection = pol.sel
			lat.Pattern = row.Pattern
			lat.Faults = row.Plan
			lat.Load = resilienceLatencyLoad(row.Pattern)
			slot := pol.lat(row)
			g.add(lat, func(res core.Result) { *slot = res })
		}
	}
	if err := g.run(ctx, r.opts()); err != nil {
		return nil, err
	}
	// Saturation points come from the bisection searches, all fanned out
	// together: one search keeps only Fanout probes in flight per round,
	// so running the independent (row, policy) searches concurrently is
	// what fills the worker budget (options — including the shared memo
	// cache — are the grid's).
	var searches []satSearch
	for i := range rows {
		row := &rows[i]
		for _, pol := range resiliencePolicies {
			base := r.base()
			base.Algorithm = pol.alg
			base.Selection = pol.sel
			base.Pattern = row.Pattern
			base.Faults = row.Plan
			lo, hi := satBracket(row.Pattern)
			searchSlot, satSlot := pol.search(row), pol.sat(row)
			searches = append(searches, satSearch{
				name: fmt.Sprintf("resilience(%s, %d faults, %s)", row.Pattern, row.FaultLinks, pol.alg),
				spec: SaturationSpec(base, lo, hi, r.Fidelity.satTol()),
				sink: func(res sweep.BisectResult) {
					*searchSlot = res
					*satSlot = res.LoResult
				},
			})
		}
	}
	if err := runSearches(ctx, searches, r.opts()); err != nil {
		return nil, err
	}
	return rows, nil
}

// searchCost sums the probe/cycle accounting of a set of searches, for
// the per-experiment log line.
func searchCost(searches ...sweep.BisectResult) (probes int, cycles int64, dense int) {
	for _, s := range searches {
		probes += s.Probes
		cycles += s.SimulatedCycles
		dense += s.DensePoints
	}
	return
}

// RenderResilience prints the experiment in the repo's table style.
func RenderResilience(w io.Writer, rows []ResilienceRow) {
	fmt.Fprintln(w, "Resilience: saturation load/throughput (bisection) and mean latency vs failed links")
	fmt.Fprintln(w, "(adaptive = LA Duato + ES + LRU; deterministic = up*/down* over the same damage)")
	var pat traffic.Kind = -1
	var searches []sweep.BisectResult
	for _, r := range rows {
		if r.Pattern != pat {
			pat = r.Pattern
			fmt.Fprintf(w, "\n[%s traffic]\n", pat)
			fmt.Fprintf(w, "%-7s %-24s %9s %9s %10s %10s %6s %10s %10s\n",
				"faults", "plan", "adpt-sat", "det-sat", "adpt-thr", "det-thr", "gain", "adpt-lat", "det-lat")
		}
		plan := "-"
		if r.Plan != nil {
			plan = r.Plan.Key()
		}
		if len(plan) > 24 {
			plan = plan[:21] + "..."
		}
		fmt.Fprintf(w, "%-7d %-24s %9.3f %9.3f %10.4f %10.4f %6.2f %10s %10s\n",
			r.FaultLinks, plan,
			r.AdaptiveSatLoad(), r.DetSatLoad(),
			r.AdaptiveSat.Throughput, r.DetSat.Throughput, r.ThroughputGain(),
			r.AdaptiveLat.LatencyString(), r.DetLat.LatencyString())
		for _, s := range []struct {
			name   string
			search sweep.BisectResult
		}{{"adaptive", r.AdaptiveSearch}, {"deterministic", r.DetSearch}} {
			if !s.search.Converged {
				fmt.Fprintf(w, "warning: %s saturation search at %d faults did not converge (bracket [%.3f, %.3f]); sat-load is a lower bound\n",
					s.name, r.FaultLinks, s.search.Lo, s.search.Hi)
			}
		}
		searches = append(searches, r.AdaptiveSearch, r.DetSearch)
	}
	probes, cycles, dense := searchCost(searches...)
	fmt.Fprintf(w, "\n[saturation search: %d probes / %d simulated cycles across %d searches; dense-grid path: %d points (>=2x cycle reduction pinned by TestBisectCycleReduction)]\n",
		probes, cycles, len(searches), dense)
}

// ResilienceCSV writes one row per (pattern, fault count, policy).
func ResilienceCSV(w io.Writer, rows []ResilienceRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"pattern", "fault_links", "fault_plan", "policy",
		"avg_latency", "saturated", "sat_load", "sat_throughput", "sat_converged",
		"search_probes", "search_cycles",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		plan := ""
		if r.Plan != nil {
			plan = r.Plan.Key()
		}
		for _, p := range []struct {
			name   string
			lat    core.Result
			sat    core.Result
			search sweep.BisectResult
		}{
			{"adaptive", r.AdaptiveLat, r.AdaptiveSat, r.AdaptiveSearch},
			{"deterministic", r.DetLat, r.DetSat, r.DetSearch},
		} {
			rec := []string{
				r.Pattern.String(),
				strconv.Itoa(r.FaultLinks),
				plan,
				p.name,
				latCell(p.lat),
				satCell(p.lat),
				strconv.FormatFloat(p.search.Lo, 'f', 4, 64),
				strconv.FormatFloat(p.sat.Throughput, 'f', 5, 64),
				strconv.FormatBool(p.search.Converged),
				strconv.Itoa(p.search.Probes),
				strconv.FormatInt(p.search.SimulatedCycles, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
