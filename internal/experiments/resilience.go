package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lapses/internal/core"
	"lapses/internal/fault"
	"lapses/internal/selection"
	"lapses/internal/traffic"
)

// The resilience experiment measures what the paper's adaptivity recipe
// buys when the network degrades: saturation throughput and mean latency
// versus the number of failed links, comparing the full LAPSES router
// (Duato adaptive routing, ES tables, LRU selection) against deterministic
// routing over the same damage. Both run the identical degraded topology
// and the identical up*/down* escape structure, so the gap isolates the
// value of adaptive path diversity around faults — the scenario adaptive
// routing is sold on but the paper never evaluates.
//
// Saturation throughput is measured the standard way: drive the network
// well past its saturation load with the latency guard lifted and a fixed
// cycle budget, and report delivered flits/node/cycle over the measured
// span (the sustained acceptance rate). Latency is reported at a moderate
// load on the same plans. Load stays normalized to the healthy bisection,
// so every fault count shares an x-axis.

// ResilienceFaultCounts is the failed-link axis.
var ResilienceFaultCounts = []int{0, 1, 2, 4, 6, 8}

// ResiliencePatterns are the traffic patterns the resilience experiment
// sweeps.
var ResiliencePatterns = []traffic.Kind{traffic.Uniform, traffic.Transpose}

// ResilienceRow is one (pattern, fault count) point: latency at the
// moderate load and saturation throughput for both routing policies over
// the same fault plan.
type ResilienceRow struct {
	Pattern traffic.Kind
	// FaultLinks is the number of failed links; Plan is the shared damage
	// (nil at zero faults).
	FaultLinks int
	Plan       *fault.Plan
	// AdaptiveLat/DetLat: mean latency at the moderate load.
	AdaptiveLat, DetLat core.Result
	// AdaptiveSat/DetSat: overdriven runs whose Throughput field is the
	// saturation throughput.
	AdaptiveSat, DetSat core.Result
}

// ThroughputGain returns the adaptive-over-deterministic saturation
// throughput ratio, the experiment's headline number.
func (r ResilienceRow) ThroughputGain() float64 {
	if r.DetSat.Throughput == 0 {
		return 0
	}
	return r.AdaptiveSat.Throughput / r.DetSat.Throughput
}

// resilienceLatencyLoad is the moderate load the latency series uses.
func resilienceLatencyLoad(traffic.Kind) float64 { return 0.2 }

// resilienceSatLoad overdrives each pattern well past its healthy
// saturation point.
func resilienceSatLoad(p traffic.Kind) float64 {
	if p == traffic.Uniform {
		return 0.9
	}
	return 0.6
}

// resilienceSatCycles is the fixed cycle budget of a saturation-
// throughput run per fidelity.
func (f Fidelity) resilienceSatCycles() int64 {
	switch f {
	case Quick:
		return 6000
	case Paper:
		return 60000
	}
	return 20000
}

// ResiliencePlans generates the shared fault plans for the given link
// counts on the experiment mesh, seeded from seed (count 0 maps to nil).
// Plans are per-count, not per-pattern, so every series degrades the same
// hardware.
func ResiliencePlans(base core.Config, counts []int, seed int64) (map[int]*fault.Plan, error) {
	m := base.Mesh()
	plans := make(map[int]*fault.Plan, len(counts))
	for _, c := range counts {
		if c == 0 {
			plans[0] = nil
			continue
		}
		p, err := fault.Random(m, c, 0, seed+int64(c)*101)
		if err != nil {
			return nil, fmt.Errorf("experiments: resilience plan for %d faults: %w", c, err)
		}
		plans[c] = p
	}
	return plans, nil
}

// Resilience runs the full experiment grid through the sweep engine.
func (r Runner) Resilience(ctx context.Context) ([]ResilienceRow, error) {
	return r.resilience(ctx, ResiliencePatterns, ResilienceFaultCounts)
}

// resilience is the parameterized core; the quick test tier runs it over
// a reduced grid.
func (r Runner) resilience(ctx context.Context, patterns []traffic.Kind, counts []int) ([]ResilienceRow, error) {
	plans, err := ResiliencePlans(r.base(), counts, r.Seed)
	if err != nil {
		return nil, err
	}
	var rows []ResilienceRow
	for _, pat := range patterns {
		for _, c := range counts {
			rows = append(rows, ResilienceRow{Pattern: pat, FaultLinks: c, Plan: plans[c]})
		}
	}
	policies := []struct {
		alg core.Alg
		sel selection.Kind
		lat func(*ResilienceRow) *core.Result
		sat func(*ResilienceRow) *core.Result
	}{
		{core.AlgDuato, selection.LRU,
			func(w *ResilienceRow) *core.Result { return &w.AdaptiveLat },
			func(w *ResilienceRow) *core.Result { return &w.AdaptiveSat }},
		{core.AlgXY, selection.StaticXY,
			func(w *ResilienceRow) *core.Result { return &w.DetLat },
			func(w *ResilienceRow) *core.Result { return &w.DetSat }},
	}
	var g grid
	for i := range rows {
		row := &rows[i]
		for _, pol := range policies {
			base := r.base()
			base.Algorithm = pol.alg
			base.Selection = pol.sel
			base.Pattern = row.Pattern
			base.Faults = row.Plan

			lat := base
			lat.Load = resilienceLatencyLoad(row.Pattern)
			slot := pol.lat(row)
			g.add(lat, func(res core.Result) { *slot = res })

			// Saturation throughput: overdrive, lift the latency guard,
			// fix the cycle budget; Result.Throughput is the sustained
			// acceptance rate over the measured span.
			sat := base
			sat.Load = resilienceSatLoad(row.Pattern)
			sat.SatLatency = 1e12
			sat.MaxCycles = r.Fidelity.resilienceSatCycles()
			sat.Measure = 1 << 30 // never completes; the budget ends the run
			satSlot := pol.sat(row)
			g.add(sat, func(res core.Result) { *satSlot = res })
		}
	}
	if err := g.run(ctx, r.opts()); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderResilience prints the experiment in the repo's table style.
func RenderResilience(w io.Writer, rows []ResilienceRow) {
	fmt.Fprintln(w, "Resilience: saturation throughput (flits/node/cycle) and mean latency vs failed links")
	fmt.Fprintln(w, "(adaptive = LA Duato + ES + LRU; deterministic = up*/down* over the same damage)")
	var pat traffic.Kind = -1
	for _, r := range rows {
		if r.Pattern != pat {
			pat = r.Pattern
			fmt.Fprintf(w, "\n[%s traffic]\n", pat)
			fmt.Fprintf(w, "%-7s %-24s %10s %10s %6s %10s %10s\n",
				"faults", "plan", "adpt-thr", "det-thr", "gain", "adpt-lat", "det-lat")
		}
		plan := "-"
		if r.Plan != nil {
			plan = r.Plan.Key()
		}
		if len(plan) > 24 {
			plan = plan[:21] + "..."
		}
		fmt.Fprintf(w, "%-7d %-24s %10.4f %10.4f %6.2f %10s %10s\n",
			r.FaultLinks, plan,
			r.AdaptiveSat.Throughput, r.DetSat.Throughput, r.ThroughputGain(),
			r.AdaptiveLat.LatencyString(), r.DetLat.LatencyString())
	}
}

// ResilienceCSV writes one row per (pattern, fault count, policy).
func ResilienceCSV(w io.Writer, rows []ResilienceRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"pattern", "fault_links", "fault_plan", "policy",
		"avg_latency", "saturated", "sat_throughput",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		plan := ""
		if r.Plan != nil {
			plan = r.Plan.Key()
		}
		for _, p := range []struct {
			name string
			lat  core.Result
			sat  core.Result
		}{
			{"adaptive", r.AdaptiveLat, r.AdaptiveSat},
			{"deterministic", r.DetLat, r.DetSat},
		} {
			rec := []string{
				r.Pattern.String(),
				strconv.Itoa(r.FaultLinks),
				plan,
				p.name,
				latCell(p.lat),
				satCell(p.lat),
				strconv.FormatFloat(p.sat.Throughput, 'f', 5, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
