package table

import (
	"strings"
	"testing"

	"lapses/internal/flow"
	"lapses/internal/routing"
	"lapses/internal/topology"
)

var cls4 = routing.Class{NumVCs: 4, EscapeVCs: 1}

func buildAll(t *testing.T, m *topology.Mesh, alg routing.Algorithm, node topology.NodeID) []Table {
	t.Helper()
	return []Table{
		NewFull(m, alg, node),
		NewES(m, alg, node),
	}
}

// The paper's central storage claim: ES routing is identical to full-table
// routing for every (router, destination) pair.
func TestESIdenticalToFullTable(t *testing.T) {
	m := topology.NewMesh(8, 8)
	algs := []routing.Algorithm{
		routing.NewDuato(m, cls4),
		routing.NewDimOrder(m, cls4, nil),
		routing.NewNorthLast(m, cls4),
		routing.NewWestFirst(m, cls4),
		routing.NewNegativeFirst(m, cls4),
	}
	for _, alg := range algs {
		for node := topology.NodeID(0); int(node) < m.N(); node++ {
			full := NewFull(m, alg, node)
			es := NewES(m, alg, node)
			for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
				a, b := full.Lookup(dst, 0), es.Lookup(dst, 0)
				if !a.Equal(b) {
					t.Fatalf("%s at node %d dst %d: full %v != es %v", alg.Name(), node, dst, a, b)
				}
			}
		}
	}
}

// And both must agree with the algorithm they were programmed from.
func TestTablesMatchAlgorithm(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := routing.NewDuato(m, cls4)
	for _, node := range []topology.NodeID{0, 7, 27, 56, 63} {
		for _, tbl := range buildAll(t, m, alg, node) {
			for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
				if !tbl.Lookup(dst, 0).Equal(alg.Route(node, dst, 0)) {
					t.Fatalf("%s at node %d dst %d disagrees with algorithm", tbl.Name(), node, dst)
				}
			}
		}
	}
}

// Look-ahead consistency: the candidates a table computes for its neighbor
// must equal what the neighbor's own table would produce.
func TestLookAheadConsistency(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := routing.NewDuato(m, cls4)
	kinds := []Kind{KindFull, KindES, KindMetaBlock, KindMetaRow}
	for _, k := range kinds {
		for _, node := range []topology.NodeID{0, 9, 36, 63} {
			tbl := Build(k, m, alg, cls4, node)
			for p := topology.Port(1); int(p) < m.NumPorts(); p++ {
				nb, ok := m.Neighbor(node, p)
				if !ok {
					continue
				}
				nbTbl := Build(k, m, alg, cls4, nb)
				for dst := topology.NodeID(0); int(dst) < m.N(); dst += 3 {
					la := tbl.LookupAt(p, dst, 0)
					own := nbTbl.Lookup(dst, 0)
					if !la.Equal(own) {
						t.Fatalf("%s: LA at %d via %s for dst %d: %v != neighbor's %v",
							tbl.Name(), node, m.PortName(p), dst, la, own)
					}
				}
			}
		}
	}
}

func TestEntriesCounts(t *testing.T) {
	m := topology.NewMesh(16, 16)
	alg := routing.NewDuato(m, cls4)
	yx := routing.NewDimOrder(m, cls4, []int{1, 0})
	node := topology.NodeID(17)
	cases := []struct {
		tbl  Table
		want int
	}{
		{NewFull(m, alg, node), 256},
		{NewES(m, alg, node), 9},
		{NewMeta(m, alg, cls4, node, MapRow), 32},   // 16 clusters + 16 sub
		{NewMeta(m, alg, cls4, node, MapBlock), 32}, // 16 clusters + 16 sub
		{NewInterval(m, yx, cls4, node), 5},
	}
	for _, c := range cases {
		if got := c.tbl.Entries(); got != c.want {
			t.Errorf("%s entries = %d want %d", c.tbl.Name(), got, c.want)
		}
	}
	if ESEntryCount(3) != 27 {
		t.Errorf("3-D ES entries = %d want 27", ESEntryCount(3))
	}
}

func TestES3D(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	alg := routing.NewDuato(m, cls4)
	for _, node := range []topology.NodeID{0, 21, 63} {
		es := NewES(m, alg, node)
		if es.Entries() != 27 {
			t.Fatalf("3-D ES entries = %d", es.Entries())
		}
		full := NewFull(m, alg, node)
		for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
			if !es.Lookup(dst, 0).Equal(full.Lookup(dst, 0)) {
				t.Fatalf("3-D ES != full at node %d dst %d", node, dst)
			}
		}
	}
}

func TestESTorus(t *testing.T) {
	m := topology.NewTorus(6, 6)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 2}
	alg := routing.NewDuato(m, cls)
	for _, node := range []topology.NodeID{0, 14, 35} {
		es := NewES(m, alg, node)
		full := NewFull(m, alg, node)
		for dl := uint8(0); dl < 4; dl++ {
			for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
				if !es.Lookup(dst, dl).Equal(full.Lookup(dst, dl)) {
					t.Fatalf("torus ES != full at node %d dst %d dl %d", node, dst, dl)
				}
				if !es.Lookup(dst, dl).Equal(alg.Route(node, dst, dl)) {
					t.Fatalf("torus ES != algorithm at node %d dst %d dl %d", node, dst, dl)
				}
			}
		}
	}
}

// Fig. 7(d): the ES table programming for North-Last routing at node (1,1)
// of a 3x3 mesh.
func TestESDumpMatchesFig7(t *testing.T) {
	m := topology.NewMesh(3, 3)
	nl := routing.NewNorthLast(m, cls4)
	es := NewES(m, nl, m.ID(topology.Coord{1, 1}))
	dump := es.Dump()
	want := []string{
		"(-,-) -> -X,-Y", // dest (0,0): W,S
		"(0,-) -> -Y",    // dest (1,0): S
		"(+,-) -> +X,-Y", // dest (2,0): E,S
		"(-,0) -> -X",    // dest (0,1): W
		"(0,0) -> L",     // self
		"(+,0) -> +X",    // dest (2,1): E
		"(-,+) -> -X",    // dest (0,2): W only (north-last)
		"(0,+) -> +Y",    // dest (1,2): N
		"(+,+) -> +X",    // dest (2,2): E only (north-last)
	}
	for _, w := range want {
		if !strings.Contains(dump, w) {
			t.Errorf("dump missing %q:\n%s", w, dump)
		}
	}
}

func TestESNotSignExpressiblePanics(t *testing.T) {
	// An artificial algorithm that routes to even destinations X-first
	// and odd destinations Y-first is not a function of offset signs, so
	// the ES builder must refuse it.
	m := topology.NewMesh(4, 4)
	alg := parityAlg{
		xy: routing.NewDimOrder(m, cls4, nil),
		yx: routing.NewDimOrder(m, cls4, []int{1, 0}),
	}
	defer func() {
		if recover() == nil {
			t.Error("expected sign-expressibility panic")
		}
	}()
	NewES(m, alg, m.ID(topology.Coord{2, 2}))
}

type parityAlg struct{ xy, yx routing.Algorithm }

func (parityAlg) Name() string        { return "parity" }
func (parityAlg) Deterministic() bool { return true }
func (a parityAlg) Route(cur, dst topology.NodeID, dl uint8) flow.RouteSet {
	if dst%2 == 0 {
		return a.xy.Route(cur, dst, dl)
	}
	return a.yx.Route(cur, dst, dl)
}
