package table

import (
	"testing"

	"lapses/internal/fault"
	"lapses/internal/routing"
	"lapses/internal/topology"
)

// Degraded-table equivalence: with a fault-aware algorithm, the ES table's
// sign entries + exception overlay must reproduce the algorithm (and thus
// the full table) exactly at every live router, and the interval table's
// longest-run intervals + exceptions must reproduce the deterministic
// function. This is the fault analogue of the paper's ES == full-table
// equivalence claim.
func TestFaultTablesMatchAlgorithm(t *testing.T) {
	m := topology.NewMesh(6, 6)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	detCls := routing.Class{NumVCs: 4, EscapeVCs: 0}
	plan, err := fault.Random(m, 5, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	duato, err := routing.NewFaultDuato(m, cls, plan)
	if err != nil {
		t.Fatal(err)
	}
	det, err := routing.NewFaultDimOrder(m, detCls, plan)
	if err != nil {
		t.Fatal(err)
	}

	sawException := false
	for node := topology.NodeID(0); int(node) < m.N(); node++ {
		if plan.NodeDead(node) {
			continue
		}
		es := NewES(m, duato, node)
		full := NewFull(m, duato, node)
		iv := NewInterval(m, det, detCls, node)
		if es.Entries() > 9 {
			sawException = true
		}
		for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
			if plan.NodeDead(dst) {
				continue
			}
			want := duato.Route(node, dst, 0)
			if got := es.Lookup(dst, 0); !got.Equal(want) {
				t.Fatalf("ES at %d for dst %d: got %v want %v", node, dst, got, want)
			}
			if got := full.Lookup(dst, 0); !got.Equal(want) {
				t.Fatalf("full at %d for dst %d: got %v want %v", node, dst, got, want)
			}
			wantDet := det.Route(node, dst, 0)
			if got := iv.Lookup(dst, 0); !got.Equal(wantDet) {
				t.Fatalf("interval at %d for dst %d: got %v want %v", node, dst, got, wantDet)
			}
			// Look-ahead lookups must agree with the algorithm at the
			// neighbor (tables are per-router under faults).
			for p := topology.Port(1); int(p) < m.NumPorts(); p++ {
				nb, ok := m.Neighbor(node, p)
				if !ok || plan.NodeDead(nb) {
					continue
				}
				wantLA := duato.Route(nb, dst, 0)
				if got := es.LookupAt(p, dst, 0); !got.Equal(wantLA) {
					t.Fatalf("ES LookupAt %d via %s for dst %d: got %v want %v",
						node, m.PortName(p), dst, got, wantLA)
				}
			}
		}
	}
	if !sawException {
		t.Fatal("no router needed exception entries — fault plan exercised nothing")
	}
}

// The ES exception overlay must be minimal: the base sign entry holds
// the majority route, so the exception count per sign vector is the
// total realizations minus the largest agreeing group — never more.
func TestESExceptionsAreMajorityMinimal(t *testing.T) {
	m := topology.NewMesh(6, 6)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	plan, err := fault.Random(m, 5, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewFaultDuato(m, cls, plan)
	if err != nil {
		t.Fatal(err)
	}
	for node := topology.NodeID(0); int(node) < m.N(); node++ {
		es := NewES(m, alg, node)
		// Recompute the minimal overlay size from the algorithm.
		perSign := map[int]map[string]int{}
		for dst := 0; dst < m.N(); dst++ {
			idx := es.signIndex(topology.NodeID(dst))
			if perSign[idx] == nil {
				perSign[idx] = map[string]int{}
			}
			perSign[idx][alg.Route(node, topology.NodeID(dst), 0).String()]++
		}
		want := 0
		for _, counts := range perSign {
			total, max := 0, 0
			for _, n := range counts {
				total += n
				if n > max {
					max = n
				}
			}
			want += total - max
		}
		if got := es.Entries() - 9; got != want {
			t.Fatalf("node %d: %d exception entries, minimal is %d", node, got, want)
		}
	}
}

// A dead router's label has no interval and no exception; Lookup must
// return the algorithm's empty set, not panic (parity with ES and Full).
func TestIntervalDeadLabelEmpty(t *testing.T) {
	m := topology.NewMesh(4, 4)
	detCls := routing.Class{NumVCs: 4, EscapeVCs: 0}
	dead := topology.NodeID(5)
	plan, err := fault.New(m, nil, []topology.NodeID{dead})
	if err != nil {
		t.Fatal(err)
	}
	det, err := routing.NewFaultDimOrder(m, detCls, plan)
	if err != nil {
		t.Fatal(err)
	}
	iv := NewInterval(m, det, detCls, 0)
	if got := iv.Lookup(dead, 0); !got.Empty() {
		t.Fatalf("dead label lookup = %v, want empty", got)
	}
	if got := det.Route(0, dead, 0); !got.Empty() {
		t.Fatalf("algorithm routes to dead router: %v", got)
	}
}

// Healthy algorithms must keep exactly 3^n ES entries and NumPorts
// interval entries: the exception overlay only engages for
// position-dependent routing.
func TestHealthyTablesHaveNoExceptions(t *testing.T) {
	m := topology.NewMesh(6, 6)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	alg := routing.NewDuato(m, cls)
	for _, node := range []topology.NodeID{0, 7, 35} {
		if got := NewES(m, alg, node).Entries(); got != 9 {
			t.Fatalf("healthy ES at %d has %d entries, want 9", node, got)
		}
	}
	det := routing.NewDimOrder(m, cls, []int{1, 0})
	if got := NewInterval(m, det, cls, 7).Entries(); got != m.NumPorts() {
		t.Fatalf("healthy interval has %d entries, want %d", NewInterval(m, det, cls, 7).Entries(), m.NumPorts())
	}
}
