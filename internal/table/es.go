package table

import (
	"fmt"
	"strings"

	"lapses/internal/flow"
	"lapses/internal/routing"
	"lapses/internal/topology"
)

// ES is the paper's economical-storage routing table (section 5.2): a
// 3^n-entry table for an n-dimensional mesh, indexed by the sign vector
// (s_0, ..., s_{n-1}) of the destination's offset from the current router,
// each s_d in {-,0,+}. Nine entries suffice for a 2-D mesh of any size,
// 27 for 3-D. The router hardware needs only a node-id register and one
// comparator per dimension to form the index.
//
// The table contents depend only on the sign vector for every mesh routing
// algorithm the paper considers (XY, Duato, the turn models), so ES routing
// behaves identically to full-table routing — a property the tests check
// exhaustively.
type ES struct {
	m    *topology.Mesh
	alg  routing.Algorithm
	node topology.NodeID
	// entries[datelineState][signIndex]
	entries [][]flow.RouteSet
	ndims   int
	// Position-dependent (fault-aware) algorithms are not globally
	// sign-expressible: routes detouring around failures differ between
	// destinations sharing an offset sign. The table then keeps the sign
	// entries for the majority case and an exception overlay — one full
	// entry per destination whose route differs from its sign entry —
	// mirroring how a real ES router near a fault would be patched with
	// a small CAM of exception destinations. exc[state] is nil when the
	// organization is exact (every healthy mesh algorithm).
	exc    []map[topology.NodeID]flow.RouteSet
	posDep bool
}

// NewES programs an economical-storage table for node from alg. It panics
// if the algorithm is not sign-expressible at this node, i.e. two
// destinations with the same offset signs would need different entries;
// that would indicate the algorithm cannot be implemented in ES form (none
// of the standard mesh algorithms trip this).
func NewES(m *topology.Mesh, alg routing.Algorithm, node topology.NodeID) *ES {
	posDep := routing.IsPositionDependent(alg)
	states := 1
	// Position-dependent algorithms never vary with wrap-crossing state,
	// so one state row suffices even on a torus.
	if m.Wrap() && !posDep {
		states = 1 << m.NumDims()
	}
	t := &ES{m: m, alg: alg, node: node, ndims: m.NumDims(), posDep: posDep,
		entries: make([][]flow.RouteSet, states), exc: make([]map[topology.NodeID]flow.RouteSet, states)}
	size := 1
	for i := 0; i < t.ndims; i++ {
		size *= 3
	}
	for dl := 0; dl < states; dl++ {
		if posDep {
			t.programWithExceptions(dl, size)
			continue
		}
		row := make([]flow.RouteSet, size)
		programmed := make([]bool, size)
		for dst := 0; dst < m.N(); dst++ {
			idx := t.signIndex(topology.NodeID(dst))
			rs := alg.Route(node, topology.NodeID(dst), uint8(dl))
			if programmed[idx] {
				if !row[idx].Equal(rs) {
					panic(fmt.Sprintf("table: %s is not sign-expressible at node %d (index %d: %v vs %v)",
						alg.Name(), node, idx, row[idx], rs))
				}
				continue
			}
			row[idx] = rs
			programmed[idx] = true
		}
		// Edge and corner routers never locally realize some sign
		// vectors (a corner has no destinations to its west), but the
		// look-ahead lookup indexes the table with neighbor-relative
		// signs and needs every entry. The table programmer fills them
		// from the algorithm's sign rule using a representative pair
		// realizing each sign vector (mesh algorithms are position-
		// independent; a torus realizes every sign locally and never
		// gets here).
		for idx := 0; idx < size; idx++ {
			if programmed[idx] {
				continue
			}
			src, dst := t.representative(idx)
			row[idx] = alg.Route(src, dst, uint8(dl))
		}
		t.entries[dl] = row
	}
	return t
}

// programWithExceptions builds one state row for a position-dependent
// (fault-aware) algorithm: each sign entry holds the majority route among
// the destinations realizing that sign vector, and every destination
// whose route differs becomes an exception entry — so the overlay stays
// as small as the damage, not as large as the damage's shadow.
// Unrealized sign entries stay empty: the look-ahead lookup of a
// position-dependent table consults the algorithm directly, never the
// sign entries of another position.
func (t *ES) programWithExceptions(dl, size int) {
	type tally struct {
		rs flow.RouteSet
		n  int
	}
	tallies := make([][]tally, size)
	routes := make([]flow.RouteSet, t.m.N())
	for dst := 0; dst < t.m.N(); dst++ {
		rs := t.alg.Route(t.node, topology.NodeID(dst), uint8(dl))
		routes[dst] = rs
		idx := t.signIndex(topology.NodeID(dst))
		found := false
		for j := range tallies[idx] {
			if tallies[idx][j].rs.Equal(rs) {
				tallies[idx][j].n++
				found = true
				break
			}
		}
		if !found {
			tallies[idx] = append(tallies[idx], tally{rs: rs, n: 1})
		}
	}
	row := make([]flow.RouteSet, size)
	for idx, ts := range tallies {
		if len(ts) == 0 {
			continue
		}
		best := 0
		for j := 1; j < len(ts); j++ {
			// Strict > keeps the first-encountered set on ties.
			if ts[j].n > ts[best].n {
				best = j
			}
		}
		row[idx] = ts[best].rs
	}
	for dst := 0; dst < t.m.N(); dst++ {
		idx := t.signIndex(topology.NodeID(dst))
		if routes[dst].Equal(row[idx]) {
			continue
		}
		if t.exc[dl] == nil {
			t.exc[dl] = make(map[topology.NodeID]flow.RouteSet)
		}
		t.exc[dl][topology.NodeID(dst)] = routes[dst]
	}
	t.entries[dl] = row
}

// representative returns a (src, dst) node pair whose offset signs decode
// to the given table index.
func (t *ES) representative(idx int) (topology.NodeID, topology.NodeID) {
	src := make(topology.Coord, t.ndims)
	dst := make(topology.Coord, t.ndims)
	for d := 0; d < t.ndims; d++ {
		switch idx%3 - 1 {
		case -1:
			src[d], dst[d] = t.m.Radix(d)-1, 0
		case 0:
			src[d], dst[d] = 0, 0
		case 1:
			src[d], dst[d] = 0, t.m.Radix(d)-1
		}
		idx /= 3
	}
	return t.m.ID(src), t.m.ID(dst)
}

// signIndex computes the base-3 index of a destination's offset signs:
// digit d is sign(dst_d - node_d) mapped {-1,0,+1} -> {0,1,2}, with
// dimension 0 as the least significant digit. On a torus the signs are
// wrap-aware (shorter direction).
func (t *ES) signIndex(dst topology.NodeID) int {
	idx := 0
	for d := t.ndims - 1; d >= 0; d-- {
		idx = idx*3 + t.m.OffsetSign(t.node, dst, d) + 1
	}
	return idx
}

// signIndexAt computes the sign index relative to an arbitrary node, used
// for the look-ahead lookup (the hardware computes sign(dst - neighbor)
// with one extra comparator per candidate).
func (t *ES) signIndexAt(at topology.NodeID, dst topology.NodeID) int {
	idx := 0
	for d := t.ndims - 1; d >= 0; d-- {
		idx = idx*3 + t.m.OffsetSign(at, dst, d) + 1
	}
	return idx
}

// Name implements Table.
func (t *ES) Name() string { return "es" }

// Node implements Table.
func (t *ES) Node() topology.NodeID { return t.node }

// Entries implements Table: 3^n entries regardless of network size, plus
// one exception entry per fault-detoured destination (the paper's storage
// metric stays honest about the cost of degraded operation).
func (t *ES) Entries() int { return len(t.entries[0]) + len(t.exc[0]) }

// Lookup implements Table.
func (t *ES) Lookup(dst topology.NodeID, dateline uint8) flow.RouteSet {
	s := t.state(dateline)
	if t.exc[s] != nil {
		if rs, ok := t.exc[s][dst]; ok {
			return rs
		}
	}
	return t.entries[s][t.signIndex(dst)]
}

func (t *ES) state(dateline uint8) int {
	if len(t.entries) == 1 {
		return 0
	}
	return int(dateline) % len(t.entries)
}

// LookupAt implements Table. ES table contents are identical at every
// router for sign-expressible algorithms, so the look-ahead result is this
// router's own table indexed by the neighbor-relative signs. This is how
// the paper's technical report implements ES with look-ahead: no extra
// storage, one extra comparator per dimension per candidate.
func (t *ES) LookupAt(p topology.Port, dst topology.NodeID, dateline uint8) flow.RouteSet {
	nb, ok := t.m.Neighbor(t.node, p)
	if !ok {
		panic("table: LookupAt through port without neighbor")
	}
	if t.posDep {
		// Fault-aware tables differ between routers (each holds its own
		// exception overlay), so the look-ahead result comes from the
		// algorithm — the neighbor's programmed state — not from this
		// router's sign entries.
		return t.alg.Route(nb, dst, dateline)
	}
	if t.m.Wrap() {
		// Dateline-dependent masks are recomputed for the neighbor's
		// position; delegate to the algorithm (comparator logic in
		// hardware).
		return t.alg.Route(nb, dst, dateline)
	}
	return t.entries[0][t.signIndexAt(nb, dst)]
}

// signRune renders one sign digit the way the paper's Fig. 7 does.
func signRune(s int) byte {
	switch {
	case s < 0:
		return '-'
	case s > 0:
		return '+'
	}
	return '0'
}

// Dump renders the programmed table in the style of the paper's Fig. 7(d):
// one line per sign-vector entry with the candidate ports. Intended for
// cmd/lapses-tables and documentation.
func (t *ES) Dump() string {
	var b strings.Builder
	size := len(t.entries[0])
	for idx := 0; idx < size; idx++ {
		signs := make([]int, t.ndims)
		v := idx
		for d := 0; d < t.ndims; d++ {
			signs[d] = v%3 - 1
			v /= 3
		}
		var sb strings.Builder
		for d := 0; d < t.ndims; d++ {
			if d > 0 {
				sb.WriteByte(',')
			}
			sb.WriteByte(signRune(signs[d]))
		}
		rs := t.entries[0][idx]
		var ports []string
		for i := 0; i < rs.Len(); i++ {
			ports = append(ports, t.m.PortName(rs.At(i).Port))
		}
		fmt.Fprintf(&b, "(%s) -> %s\n", sb.String(), strings.Join(ports, ","))
	}
	return b.String()
}

// ESEntryCount returns 3^n, the economical-storage table size for an
// n-dimensional network, without building a table (used by the Table 5
// summary).
func ESEntryCount(ndims int) int {
	size := 1
	for i := 0; i < ndims; i++ {
		size *= 3
	}
	return size
}
