// Package table implements the routing-table organizations compared in
// section 5 of the LAPSES paper:
//
//   - Full-table routing: one entry per destination node (Cray T3D/T3E,
//     Sun S3.mp style). Complete flexibility, storage proportional to N.
//   - Meta-table (hierarchical) routing: nodes are partitioned into
//     clusters; a small cluster table routes between clusters and a full
//     sub-table routes within one (SGI SPIDER, Servernet-II style). Both
//     of the paper's Fig. 8 mappings are provided.
//   - Economical storage (ES): the paper's proposal. A 3^n-entry table
//     indexed by the sign vector of the destination offset. Identical
//     routing behaviour to the full table at a tiny fraction of the cost.
//   - Interval routing: one interval of node labels per output port
//     (Transputer C-104 style); deterministic only.
//
// Tables are per-router: Build programs one for a given node from a routing
// algorithm, mirroring how a real router's table RAM would be loaded at
// configuration time. Lookup then never consults the algorithm again (on
// meshes; torus datelines are dynamic state and documented separately).
// LookupAt implements the look-ahead lookup: the candidates valid at the
// neighbor reached through a port, fetched concurrently with arbitration.
package table

import (
	"fmt"

	"lapses/internal/flow"
	"lapses/internal/routing"
	"lapses/internal/topology"
)

// Table is a programmed routing table for one router.
type Table interface {
	// Name identifies the organization ("full", "es", "meta-row",
	// "meta-block", "interval").
	Name() string
	// Node returns the router this table was programmed for.
	Node() topology.NodeID
	// Lookup returns the route candidates at this router for dst.
	// dateline is the header's per-dimension wrap-crossing mask (torus
	// only; zero on meshes).
	Lookup(dst topology.NodeID, dateline uint8) flow.RouteSet
	// LookupAt returns the candidates valid at the neighbor reached
	// through port p — the look-ahead lookup. It panics if p has no
	// neighbor, which a router never asks for.
	LookupAt(p topology.Port, dst topology.NodeID, dateline uint8) flow.RouteSet
	// Entries returns the number of table entries this organization
	// stores, the paper's storage-cost metric (Table 5).
	Entries() int
}

// Kind selects a table organization.
type Kind int

const (
	// KindFull is full-table routing: one entry per destination.
	KindFull Kind = iota
	// KindES is the paper's economical storage: 3^n sign-indexed entries.
	KindES
	// KindMetaRow is two-level meta-table routing with the Fig. 8(a)
	// row mapping (minimal flexibility; equivalent to deterministic YX).
	KindMetaRow
	// KindMetaBlock is two-level meta-table routing with the Fig. 8(b)
	// block mapping (maximal flexibility within and between clusters).
	KindMetaBlock
	// KindInterval is interval routing: one label interval per port.
	KindInterval
)

// Kinds lists every table organization, in declaration order.
var Kinds = []Kind{KindFull, KindES, KindMetaRow, KindMetaBlock, KindInterval}

// ParseKind converts an organization name (the String form) back to its
// identifier — the inverse CLI flags and serialized job payloads need.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("table: unknown organization %q", s)
}

func (k Kind) String() string {
	switch k {
	case KindFull:
		return "full"
	case KindES:
		return "es"
	case KindMetaRow:
		return "meta-row"
	case KindMetaBlock:
		return "meta-block"
	case KindInterval:
		return "interval"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Build programs a table of the given kind for one router. The algorithm
// defines the routing policy the table encodes; for KindInterval the
// algorithm must be deterministic.
func Build(k Kind, m *topology.Mesh, alg routing.Algorithm, cls routing.Class, node topology.NodeID) Table {
	switch k {
	case KindFull:
		return NewFull(m, alg, node)
	case KindES:
		return NewES(m, alg, node)
	case KindMetaRow:
		return NewMeta(m, alg, cls, node, MapRow)
	case KindMetaBlock:
		return NewMeta(m, alg, cls, node, MapBlock)
	case KindInterval:
		return NewInterval(m, alg, cls, node)
	}
	panic("table: unknown kind")
}

// Full is a full-table implementation: a flat array with one RouteSet per
// destination node. On a torus the VC masks depend on the message's
// dateline state, so entries are precomputed per dateline value.
type Full struct {
	m    *topology.Mesh
	alg  routing.Algorithm
	node topology.NodeID
	// entries[dateline][dst]
	entries [][]flow.RouteSet
}

// NewFull programs a full table for node from alg.
func NewFull(m *topology.Mesh, alg routing.Algorithm, node topology.NodeID) *Full {
	states := 1
	if m.Wrap() {
		states = 1 << m.NumDims()
	}
	t := &Full{m: m, alg: alg, node: node, entries: make([][]flow.RouteSet, states)}
	for dl := 0; dl < states; dl++ {
		row := make([]flow.RouteSet, m.N())
		for dst := 0; dst < m.N(); dst++ {
			row[dst] = alg.Route(node, topology.NodeID(dst), uint8(dl))
		}
		t.entries[dl] = row
	}
	return t
}

// Name implements Table.
func (t *Full) Name() string { return "full" }

// Node implements Table.
func (t *Full) Node() topology.NodeID { return t.node }

// Entries implements Table: one entry per destination node.
func (t *Full) Entries() int { return t.m.N() }

// Lookup implements Table.
func (t *Full) Lookup(dst topology.NodeID, dateline uint8) flow.RouteSet {
	return t.entries[t.state(dateline)][dst]
}

func (t *Full) state(dateline uint8) int {
	if len(t.entries) == 1 {
		return 0
	}
	return int(dateline) % len(t.entries)
}

// LookupAt implements Table. A look-ahead full table stores, per
// destination and candidate port, the neighbor's own entry; programming
// both from the same algorithm makes that identical to evaluating the
// algorithm at the neighbor.
func (t *Full) LookupAt(p topology.Port, dst topology.NodeID, dateline uint8) flow.RouteSet {
	nb, ok := t.m.Neighbor(t.node, p)
	if !ok {
		panic("table: LookupAt through port without neighbor")
	}
	return t.alg.Route(nb, dst, dateline)
}
