package table

import (
	"fmt"

	"lapses/internal/flow"
	"lapses/internal/routing"
	"lapses/internal/topology"
)

// Interval is an interval-routing table (section 5.1.2, Transputer C-104
// style): each output port stores one contiguous interval of node labels;
// a destination is routed through the port whose interval contains it.
// The table size equals the port count, independent of network size, but
// the scheme is deterministic and needs a compatible labeling: row-major
// labels support dimension-order YX (rows are contiguous label runs), and
// the constructor panics if the supplied algorithm's port partitions are
// not contiguous — reproducing the paper's observation that interval
// routing "requires specific labeling schemes" and "is not readily
// receptive to adaptive routing".
type Interval struct {
	m      *topology.Mesh
	alg    routing.Algorithm
	node   topology.NodeID
	numVCs int
	// lo[p], hi[p]: inclusive label interval per port; lo > hi marks an
	// unused port.
	lo, hi []int
	// exc overlays destinations whose route falls outside their port's
	// interval. Healthy deterministic algorithms need none (and the
	// constructor panics if they would); position-dependent fault detours
	// break label contiguity, so each port keeps its longest contiguous
	// run and the stragglers become exception entries — the C-104
	// lineage's "interval labelling with exceptions".
	exc    map[topology.NodeID]flow.RouteSet
	posDep bool
}

// NewInterval programs an interval table for node from a deterministic
// algorithm. It panics if the algorithm is adaptive or not
// interval-expressible under row-major labels.
func NewInterval(m *topology.Mesh, alg routing.Algorithm, cls routing.Class, node topology.NodeID) *Interval {
	if !alg.Deterministic() {
		panic("table: interval routing requires a deterministic algorithm")
	}
	if m.Wrap() {
		panic("table: interval routing tables support meshes only")
	}
	np := m.NumPorts()
	t := &Interval{m: m, alg: alg, node: node, numVCs: cls.NumVCs, lo: make([]int, np), hi: make([]int, np)}
	for p := range t.lo {
		t.lo[p], t.hi[p] = 1, 0 // empty
	}
	if routing.IsPositionDependent(alg) {
		t.posDep = true
		t.programWithExceptions()
		return t
	}
	for dst := 0; dst < m.N(); dst++ {
		rs := alg.Route(node, topology.NodeID(dst), 0)
		p := rs.At(0).Port
		if t.lo[p] > t.hi[p] {
			t.lo[p], t.hi[p] = dst, dst
			continue
		}
		if dst != t.hi[p]+1 {
			panic(fmt.Sprintf("table: %s is not interval-expressible at node %d: port %s covers %d..%d and %d",
				alg.Name(), node, m.PortName(p), t.lo[p], t.hi[p], dst))
		}
		t.hi[p] = dst
	}
	return t
}

// programWithExceptions builds the fault-tolerant interval table: each
// port's interval is the longest contiguous label run the degraded
// routing function assigns to it, and every destination outside its
// port's run is stored as an exception entry.
func (t *Interval) programWithExceptions() {
	m := t.m
	portOf := make([]topology.Port, m.N())
	routes := make([]flow.RouteSet, m.N())
	for dst := 0; dst < m.N(); dst++ {
		rs := t.alg.Route(t.node, topology.NodeID(dst), 0)
		routes[dst] = rs
		if rs.Empty() {
			portOf[dst] = topology.InvalidPort // unroutable (dead) label
			continue
		}
		portOf[dst] = rs.At(0).Port
	}
	// Longest contiguous run per port.
	for p := 0; p < m.NumPorts(); p++ {
		port := topology.Port(p)
		bestLo, bestHi := 1, 0
		for dst := 0; dst < m.N(); {
			if portOf[dst] != port {
				dst++
				continue
			}
			runLo := dst
			for dst < m.N() && portOf[dst] == port {
				dst++
			}
			if dst-1-runLo > bestHi-bestLo {
				bestLo, bestHi = runLo, dst-1
			}
		}
		t.lo[p], t.hi[p] = bestLo, bestHi
	}
	for dst := 0; dst < m.N(); dst++ {
		p := portOf[dst]
		if p == topology.InvalidPort {
			continue
		}
		if dst >= t.lo[p] && dst <= t.hi[p] {
			continue
		}
		if t.exc == nil {
			t.exc = make(map[topology.NodeID]flow.RouteSet)
		}
		t.exc[topology.NodeID(dst)] = routes[dst]
	}
}

// Name implements Table.
func (t *Interval) Name() string { return "interval" }

// Node implements Table.
func (t *Interval) Node() topology.NodeID { return t.node }

// Entries implements Table: one interval per port, plus any fault
// exception entries.
func (t *Interval) Entries() int { return t.m.NumPorts() + len(t.exc) }

// Lookup implements Table.
func (t *Interval) Lookup(dst topology.NodeID, dateline uint8) flow.RouteSet {
	if t.exc != nil {
		if rs, ok := t.exc[dst]; ok {
			return rs
		}
	}
	for p := range t.lo {
		if int(dst) >= t.lo[p] && int(dst) <= t.hi[p] {
			var r flow.RouteSet
			r.Add(flow.Candidate{Port: topology.Port(p), Adaptive: flow.MaskAll(t.numVCs)})
			return r
		}
	}
	if t.posDep {
		// Unroutable (dead-router) labels have no interval and no
		// exception; mirror the algorithm's and the ES table's empty set
		// rather than panicking.
		return flow.RouteSet{}
	}
	panic(fmt.Sprintf("table: no interval covers destination %d at node %d", dst, t.node))
}

// LookupAt implements Table by evaluating the routing function at the
// neighbor; a hardware interval router would not support look-ahead (the
// paper lists this as one of the scheme's limitations), but the simulator
// allows the combination for completeness.
func (t *Interval) LookupAt(p topology.Port, dst topology.NodeID, dateline uint8) flow.RouteSet {
	nb, ok := t.m.Neighbor(t.node, p)
	if !ok {
		panic("table: LookupAt through port without neighbor")
	}
	return t.alg.Route(nb, dst, dateline)
}

// Intervals returns the per-port label intervals for diagnostics; ok is
// false for ports with no assigned labels.
func (t *Interval) Intervals(p topology.Port) (lo, hi int, ok bool) {
	if int(p) >= len(t.lo) || t.lo[p] > t.hi[p] {
		return 0, 0, false
	}
	return t.lo[p], t.hi[p], true
}
