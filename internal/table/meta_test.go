package table

import (
	"testing"

	"lapses/internal/routing"
	"lapses/internal/topology"
)

func TestMetaRowIsYX(t *testing.T) {
	m := topology.NewMesh(16, 16)
	alg := routing.NewDuato(m, cls4)
	yx := routing.NewDimOrder(m, cls4, []int{1, 0})
	for _, node := range []topology.NodeID{0, 17, 100, 255} {
		meta := NewMeta(m, alg, cls4, node, MapRow)
		for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
			got := meta.Lookup(dst, 0)
			want := yx.Route(node, dst, 0)
			if got.Len() != 1 || got.At(0).Port != want.At(0).Port {
				t.Fatalf("meta-row at %d dst %d: port %v want %v", node, dst, got.Ports(), want.Ports())
			}
		}
	}
}

// The Fig. 8(b) pathology: inside an intermediate cluster, routing toward a
// remote cluster in line with it offers exactly one direction — adaptivity
// is lost until the message crosses into the destination cluster.
func TestMetaBlockLosesAdaptivityInIntermediateCluster(t *testing.T) {
	m := topology.NewMesh(16, 16)
	alg := routing.NewDuato(m, cls4)
	// Node (5,2) is in cluster 1 (blocks are 4x4). Destination (6,6) is
	// in cluster 5, directly south... i.e. +Y of cluster 1.
	node := m.ID(topology.Coord{5, 2})
	dst := m.ID(topology.Coord{6, 6})
	meta := NewMeta(m, alg, cls4, node, MapBlock)
	if meta.ClusterOf(node) != 1 || meta.ClusterOf(dst) != 5 {
		t.Fatalf("cluster assignment wrong: %d %d", meta.ClusterOf(node), meta.ClusterOf(dst))
	}
	rs := meta.Lookup(dst, 0)
	// Adaptive candidates must be only +Y; full-table would offer +X too.
	adaptivePorts := map[topology.Port]bool{}
	for i := 0; i < rs.Len(); i++ {
		if rs.At(i).Adaptive != 0 {
			adaptivePorts[rs.At(i).Port] = true
		}
	}
	if len(adaptivePorts) != 1 || !adaptivePorts[topology.PortPlus(1)] {
		t.Fatalf("expected single +Y adaptive candidate, got %v", rs)
	}
	full := NewFull(m, alg, node)
	if full.Lookup(dst, 0).Len() != 2 {
		t.Fatalf("full table should offer 2 candidates here: %v", full.Lookup(dst, 0))
	}
}

// From the source cluster diagonal to the destination cluster, the cluster
// table does allow both productive directions.
func TestMetaBlockAdaptiveAcrossDiagonal(t *testing.T) {
	m := topology.NewMesh(16, 16)
	alg := routing.NewDuato(m, cls4)
	node := m.ID(topology.Coord{1, 1}) // cluster 0
	dst := m.ID(topology.Coord{6, 6})  // cluster 5
	meta := NewMeta(m, alg, cls4, node, MapBlock)
	rs := meta.Lookup(dst, 0)
	adaptivePorts := map[topology.Port]bool{}
	for i := 0; i < rs.Len(); i++ {
		if rs.At(i).Adaptive != 0 {
			adaptivePorts[rs.At(i).Port] = true
		}
	}
	if !adaptivePorts[topology.PortPlus(0)] || !adaptivePorts[topology.PortPlus(1)] {
		t.Fatalf("expected +X and +Y adaptive candidates, got %v", rs)
	}
}

// Within the destination cluster, the sub-table gives full minimal
// adaptivity (it defers to the algorithm).
func TestMetaBlockIntraCluster(t *testing.T) {
	m := topology.NewMesh(16, 16)
	alg := routing.NewDuato(m, cls4)
	node := m.ID(topology.Coord{4, 4}) // cluster 5
	dst := m.ID(topology.Coord{6, 6})  // cluster 5
	meta := NewMeta(m, alg, cls4, node, MapBlock)
	if !meta.Lookup(dst, 0).Equal(alg.Route(node, dst, 0)) {
		t.Fatal("intra-cluster lookup should match the adaptive algorithm")
	}
}

// Every meta-table candidate must still be a minimal hop, and every lookup
// must offer at least one VC.
func TestMetaMinimal(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := routing.NewDuato(m, cls4)
	for _, mapping := range []MetaMapping{MapRow, MapBlock} {
		for node := topology.NodeID(0); int(node) < m.N(); node++ {
			meta := NewMeta(m, alg, cls4, node, mapping)
			for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
				rs := meta.Lookup(dst, 0)
				if rs.Empty() {
					t.Fatalf("%s: empty candidates %d->%d", meta.Name(), node, dst)
				}
				for i := 0; i < rs.Len(); i++ {
					c := rs.At(i)
					if c.All() == 0 {
						t.Fatalf("%s: empty mask %d->%d", meta.Name(), node, dst)
					}
					if node == dst {
						if c.Port != topology.PortLocal {
							t.Fatalf("%s: no eject at %d", meta.Name(), node)
						}
						continue
					}
					nb, ok := m.Neighbor(node, c.Port)
					if !ok {
						t.Fatalf("%s: off-edge hop %d->%d", meta.Name(), node, dst)
					}
					if m.Distance(nb, dst) != m.Distance(node, dst)-1 {
						t.Fatalf("%s: non-minimal hop %d->%d via %s", meta.Name(), node, dst, m.PortName(c.Port))
					}
				}
			}
		}
	}
}

func TestMetaLabelsMatchFig8(t *testing.T) {
	m := topology.NewMesh(16, 16)
	alg := routing.NewDuato(m, cls4)
	row := NewMeta(m, alg, cls4, 0, MapRow)
	// Fig. 8(a): rows are clusters; node 35 = (3,2) is row 2, sub 3.
	if row.ClusterOf(35) != 2 || row.Label(35) != 35 {
		t.Errorf("row mapping: cluster %d label %d", row.ClusterOf(35), row.Label(35))
	}
	blk := NewMeta(m, alg, cls4, 0, MapBlock)
	// Fig. 8(b): (15,15) is in cluster 15 with label 255.
	id := m.ID(topology.Coord{15, 15})
	if blk.ClusterOf(id) != 15 || blk.Label(id) != 255 {
		t.Errorf("block mapping: cluster %d label %d", blk.ClusterOf(id), blk.Label(id))
	}
	// (0,0) is cluster 0 label 0; (4,0) is cluster 1 label 16.
	if blk.ClusterOf(0) != 0 || blk.Label(0) != 0 {
		t.Errorf("block mapping origin: cluster %d label %d", blk.ClusterOf(0), blk.Label(0))
	}
	id40 := m.ID(topology.Coord{4, 0})
	if blk.ClusterOf(id40) != 1 || blk.Label(id40) != 16 {
		t.Errorf("block mapping (4,0): cluster %d label %d", blk.ClusterOf(id40), blk.Label(id40))
	}
	if blk.DumpMapping() == "" {
		t.Error("empty mapping dump")
	}
}

func TestIntervalYX(t *testing.T) {
	m := topology.NewMesh(8, 8)
	yx := routing.NewDimOrder(m, cls4, []int{1, 0})
	for _, node := range []topology.NodeID{0, 27, 63} {
		iv := NewInterval(m, yx, cls4, node)
		for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
			got := iv.Lookup(dst, 0)
			want := yx.Route(node, dst, 0)
			if got.At(0).Port != want.At(0).Port {
				t.Fatalf("interval at %d dst %d: %v want %v", node, dst, got.Ports(), want.Ports())
			}
		}
		if _, _, ok := iv.Intervals(topology.PortLocal); !ok {
			t.Error("local port should cover the node's own label")
		}
	}
}

// XY routing under row-major labels is NOT interval-expressible (columns
// interleave rows) — the paper's "requires specific labeling schemes".
func TestIntervalRejectsXY(t *testing.T) {
	m := topology.NewMesh(8, 8)
	xy := routing.NewDimOrder(m, cls4, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected interval-expressibility panic")
		}
	}()
	NewInterval(m, xy, cls4, 27)
}

func TestIntervalRejectsAdaptive(t *testing.T) {
	m := topology.NewMesh(8, 8)
	defer func() {
		if recover() == nil {
			t.Error("expected determinism panic")
		}
	}()
	NewInterval(m, routing.NewDuato(m, cls4), cls4, 0)
}

func TestBuildKinds(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := routing.NewDuato(m, cls4)
	for _, k := range []Kind{KindFull, KindES, KindMetaRow, KindMetaBlock} {
		tbl := Build(k, m, alg, cls4, 5)
		if tbl == nil || tbl.Node() != 5 {
			t.Errorf("Build(%v) wrong", k)
		}
		if tbl.Name() == "" || k.String() == "" {
			t.Errorf("names empty for %v", k)
		}
	}
	yx := routing.NewDimOrder(m, cls4, []int{1, 0})
	if tbl := Build(KindInterval, m, yx, cls4, 5); tbl.Name() != "interval" {
		t.Error("interval build failed")
	}
}
