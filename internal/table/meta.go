package table

import (
	"fmt"
	"strings"

	"lapses/internal/flow"
	"lapses/internal/routing"
	"lapses/internal/topology"
)

// MetaMapping selects the node-labeling scheme for two-level meta-table
// routing on a 2-D mesh (the paper's Fig. 8).
type MetaMapping int

const (
	// MapRow is Fig. 8(a): each cluster is one row. Routing to a remote
	// cluster has exactly one choice (toward that row) and routing
	// within a cluster has one choice (along the row), so the scheme
	// degenerates to deterministic dimension-order routing — the paper's
	// "minimal flexibility" mapping ("Meta-Tbl Det." in Table 4).
	MapRow MetaMapping = iota
	// MapBlock is Fig. 8(b): clusters are square sub-meshes arranged in
	// a square grid, giving adaptivity both between and within clusters
	// — the "maximal flexibility" mapping ("Meta-Tbl Adp." in Table 4).
	// Its weakness, which Table 4 exposes, is that inside an
	// intermediate cluster the cluster-table entry allows only one
	// direction, so messages lose all adaptivity until they cross into
	// the destination cluster.
	MapBlock
)

func (mm MetaMapping) String() string {
	if mm == MapRow {
		return "row"
	}
	return "block"
}

// Meta is a two-level hierarchical routing table for a 2-D mesh: a cluster
// table with one entry per cluster and a sub-cluster table with one entry
// per node of the local cluster.
//
// Deadlock freedom: MapRow is deterministic dimension-order (deadlock-free
// on every VC). MapBlock restricts its adaptive VCs to the cluster-table
// candidates and keeps a node-level dimension-order escape VC; the paper
// does not specify an escape mechanism, and DESIGN.md documents this
// substitution.
type Meta struct {
	m       *topology.Mesh
	alg     routing.Algorithm
	cls     routing.Class
	node    topology.NodeID
	mapping MetaMapping
	cw, ch  int // cluster width and height in nodes
}

// NewMeta programs a meta-table for node. Only 2-D meshes are supported,
// matching the paper's study; MapBlock requires both radices to have an
// integral square-ish block factor (16x16 uses 4x4 blocks of 4x4 nodes).
func NewMeta(m *topology.Mesh, alg routing.Algorithm, cls routing.Class, node topology.NodeID, mapping MetaMapping) *Meta {
	if m.NumDims() != 2 || m.Wrap() {
		panic("table: meta-table routing is defined for 2-D meshes")
	}
	t := &Meta{m: m, alg: alg, cls: cls, node: node, mapping: mapping}
	switch mapping {
	case MapRow:
		t.cw, t.ch = m.Radix(0), 1
	case MapBlock:
		t.cw = blockFactor(m.Radix(0))
		t.ch = blockFactor(m.Radix(1))
	default:
		panic("table: unknown meta mapping")
	}
	return t
}

// blockFactor returns the square-ish cluster edge for a radix: the largest
// divisor d of k with d*d <= k (4 for 16, yielding 4x4 clusters of 4x4).
func blockFactor(k int) int {
	best := 1
	for d := 1; d*d <= k; d++ {
		if k%d == 0 {
			best = d
		}
	}
	if best == 1 && k > 1 {
		// Prime radix: fall back to rows of height 1.
		return 1
	}
	return best
}

// Name implements Table.
func (t *Meta) Name() string { return "meta-" + t.mapping.String() }

// Node implements Table.
func (t *Meta) Node() topology.NodeID { return t.node }

// Entries implements Table: one entry per cluster plus one per node of the
// local cluster.
func (t *Meta) Entries() int {
	clusters := (t.m.Radix(0) / t.cw) * (t.m.Radix(1) / t.ch)
	return clusters + t.cw*t.ch
}

// ClusterOf returns the cluster index of a node (row-major over clusters).
func (t *Meta) ClusterOf(id topology.NodeID) int {
	x, y := t.m.CoordAxis(id, 0), t.m.CoordAxis(id, 1)
	return (x / t.cw) + (t.m.Radix(0)/t.cw)*(y/t.ch)
}

// Label returns the hierarchical label of a node: cluster id in the high
// digits, sub-cluster id in the low (the Fig. 8 labels).
func (t *Meta) Label(id topology.NodeID) int {
	x, y := t.m.CoordAxis(id, 0), t.m.CoordAxis(id, 1)
	sub := (x % t.cw) + t.cw*(y%t.ch)
	return t.ClusterOf(id)*(t.cw*t.ch) + sub
}

// Lookup implements Table.
func (t *Meta) Lookup(dst topology.NodeID, dateline uint8) flow.RouteSet {
	return t.route(t.node, dst, dateline)
}

// LookupAt implements Table. The cluster structure is global knowledge, so
// the look-ahead entry is the same lookup evaluated at the neighbor.
func (t *Meta) LookupAt(p topology.Port, dst topology.NodeID, dateline uint8) flow.RouteSet {
	nb, ok := t.m.Neighbor(t.node, p)
	if !ok {
		panic("table: LookupAt through port without neighbor")
	}
	return t.route(nb, dst, dateline)
}

func (t *Meta) route(at, dst topology.NodeID, dateline uint8) flow.RouteSet {
	if at == dst {
		var r flow.RouteSet
		r.Add(flow.Candidate{Port: topology.PortLocal, Adaptive: flow.MaskAll(t.cls.NumVCs)})
		return r
	}
	ax, ay := t.m.CoordAxis(at, 0), t.m.CoordAxis(at, 1)
	dx, dy := t.m.CoordAxis(dst, 0), t.m.CoordAxis(dst, 1)
	sameCluster := ax/t.cw == dx/t.cw && ay/t.ch == dy/t.ch

	if t.mapping == MapRow {
		// Deterministic: toward the destination row first (cluster
		// table), then along the row (sub-cluster table). Every VC is
		// usable: this is dimension-order YX.
		var r flow.RouteSet
		all := flow.MaskAll(t.cls.NumVCs)
		if dy != ay {
			r.Add(flow.Candidate{Port: portTowardSign(1, dy-ay), Adaptive: all})
		} else {
			r.Add(flow.Candidate{Port: portTowardSign(0, dx-ax), Adaptive: all})
		}
		return r
	}

	// MapBlock. Within the destination cluster the sub-table is a full
	// map: defer to the adaptive algorithm (minimal adaptive + escape).
	if sameCluster {
		return t.alg.Route(at, dst, dateline)
	}
	// Remote cluster: the cluster-table entry allows the directions that
	// move toward the destination cluster's region, at cluster
	// granularity. All nodes of an intermediate cluster share the
	// region-relative signs in the dimension that matters, which is what
	// destroys adaptivity at cluster boundaries.
	var r flow.RouteSet
	adaptive := t.cls.AdaptiveMask()
	sx := regionSign(ax, dx/t.cw*t.cw, t.cw)
	sy := regionSign(ay, dy/t.ch*t.ch, t.ch)
	if sx != 0 {
		r.Add(flow.Candidate{Port: portTowardSign(0, sx), Adaptive: adaptive})
	}
	if sy != 0 {
		r.Add(flow.Candidate{Port: portTowardSign(1, sy), Adaptive: adaptive})
	}
	// Node-level dimension-order escape VC (deadlock-freedom
	// substitution; see the type comment).
	var escPort topology.Port
	if dx != ax {
		escPort = portTowardSign(0, dx-ax)
	} else {
		escPort = portTowardSign(1, dy-ay)
	}
	merged := false
	for i := 0; i < r.Len(); i++ {
		if r.At(i).Port == escPort {
			c := r.At(i)
			c.Escape = t.cls.EscapeMask()
			r = replaceAt(r, i, c)
			merged = true
			break
		}
	}
	if !merged {
		r.Add(flow.Candidate{Port: escPort, Escape: t.cls.EscapeMask()})
	}
	return r
}

// regionSign returns the direction (-1, 0, +1) from coordinate a toward
// the cluster region [lo, lo+size).
func regionSign(a, lo, size int) int {
	switch {
	case a < lo:
		return 1
	case a >= lo+size:
		return -1
	}
	return 0
}

func portTowardSign(d, delta int) topology.Port {
	if delta > 0 {
		return topology.PortPlus(d)
	}
	if delta < 0 {
		return topology.PortMinus(d)
	}
	panic("table: portTowardSign with zero offset")
}

// replaceAt returns a copy of rs with candidate i replaced.
func replaceAt(rs flow.RouteSet, i int, c flow.Candidate) flow.RouteSet {
	var out flow.RouteSet
	for j := 0; j < rs.Len(); j++ {
		if j == i {
			out.Add(c)
		} else {
			out.Add(rs.At(j))
		}
	}
	return out
}

// DumpMapping renders the cluster labels of the whole mesh in the style of
// Fig. 8, one row of cluster ids per mesh row.
func (t *Meta) DumpMapping() string {
	var b strings.Builder
	for y := t.m.Radix(1) - 1; y >= 0; y-- {
		for x := 0; x < t.m.Radix(0); x++ {
			id := t.m.ID(topology.Coord{x, y})
			fmt.Fprintf(&b, "%3d/%-3d ", t.ClusterOf(id), t.Label(id))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
