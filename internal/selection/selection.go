// Package selection implements the path-selection heuristics of section 4:
// given the candidate output ports an adaptive routing table returned, and
// the subset currently usable (a free VC and buffer space), pick the one
// the message will arbitrate for.
//
// STATIC-XY (dimension-order preference) and MIN-MUX (minimum VC
// multiplexing degree, from Duato) are the baselines; LFU, LRU and
// MAX-CREDIT are the paper's proposed traffic-sensitive heuristics. RANDOM
// (Chaos-router style) is included as an extra baseline. The paper's
// "first-available-free-path" policy coincides with STATIC-XY here because
// the router only offers currently-available candidates to the selector.
//
// Selectors are stateless: the usage counters they score with (port use
// counts, last-use cycles, credit levels, busy-VC counts) belong to the
// router and are exposed through the PortView interface, mirroring the
// hardware split between the selection logic and the per-port counters it
// reads (section 4.1 discusses the counter costs of each policy).
//
// # Notification selection
//
// The Notify* family (NotifyLRU, NotifyLFU, NotifyMaxCredit) extends the
// local heuristics with a congestion signal the local counters cannot
// see: each router quantizes its input-buffer occupancy to a 2-bit level
// and piggybacks it on the credits it returns upstream, so the upstream
// router maintains a per-output-port estimate of downstream congestion
// (PortView.RemoteCongestion) at zero extra traffic. A Notify selector
// first restricts the candidate ports to those with the minimum remote
// level, then breaks ties with its inner local heuristic — on a healthy
// network where every level reads equal, it degenerates to the local
// policy exactly.
//
// Determinism: the piggybacked levels ride the credit path, which crosses
// the sharded kernel's phase-B barrier like any other credit, so
// notification runs stay bit-identical across shard counts (pinned by the
// shard-equivalence tests). The signal is stale by the credit round-trip
// — that lag is part of the model, not noise, and a fixed configuration
// reproduces bit-for-bit. Dead links never return credits, so a failed
// port's level freezes at its last (or zero) value; the routing layer has
// already removed such ports from the candidate set.
package selection

import (
	"fmt"
	"math/rand"

	"lapses/internal/flow"
	"lapses/internal/topology"
)

// PortView exposes the per-output-port state a selector may score
// candidates with. The router implements it.
type PortView interface {
	// BusyVCs returns the number of currently-allocated VCs on output
	// port p — MIN-MUX's "degree of VC multiplexing".
	BusyVCs(p topology.Port) int
	// Credits returns the flow-control credits summed over every VC of
	// output port p — MAX-CREDIT's score.
	Credits(p topology.Port) int
	// UseCount returns the cumulative number of flits sent through
	// output port p — LFU's counter.
	UseCount(p topology.Port) uint64
	// LastUsed returns the most recent cycle a flit was sent through
	// output port p, or -1 if never — LRU's age stamp.
	LastUsed(p topology.Port) int64
	// RemoteCongestion returns the latest quantized congestion level
	// (0 = idle .. 3 = saturated) the downstream router on output port p
	// piggybacked on its credits, or 0 if none arrived yet — the Notify*
	// policies' remote signal. Local ports always read 0.
	RemoteCongestion(p topology.Port) uint8
}

// Selector picks one candidate among the currently usable alternatives.
type Selector interface {
	Name() string
	// Select returns the index (into rs) of the chosen candidate.
	// eligible is a nonzero bitmask of candidate indices that currently
	// have a claimable VC; the selector must return one of them.
	Select(view PortView, rs flow.RouteSet, eligible uint8) int
}

// Kind names a selection policy.
type Kind int

const (
	// StaticXY prefers candidates in table order (dimension order).
	StaticXY Kind = iota
	// MinMux picks the port with the fewest busy VCs.
	MinMux
	// LFU picks the port with the lowest cumulative use count.
	LFU
	// LRU picks the port unused for the longest time.
	LRU
	// MaxCredit picks the port with the most flow-control credits.
	MaxCredit
	// Random picks uniformly among eligible candidates.
	Random
	// NotifyLRU restricts candidates to the least-congested downstream
	// quadrant (per the piggybacked notification signal), breaking ties
	// with LRU.
	NotifyLRU
	// NotifyLFU is the notification filter with LFU tie-breaking.
	NotifyLFU
	// NotifyMaxCredit is the notification filter with MAX-CREDIT
	// tie-breaking.
	NotifyMaxCredit
)

// Kinds lists every selection policy, in the order Fig. 6 plots them
// (plus Random and the notification-driven family).
var Kinds = []Kind{StaticXY, MinMux, LFU, LRU, MaxCredit, Random,
	NotifyLRU, NotifyLFU, NotifyMaxCredit}

// IsNotify reports whether the policy consumes the piggybacked
// remote-congestion signal; the network only computes and delivers
// notifications when the configured selector needs them, so goldens with
// local policies stay byte-identical.
func (k Kind) IsNotify() bool {
	return k == NotifyLRU || k == NotifyLFU || k == NotifyMaxCredit
}

func (k Kind) String() string {
	switch k {
	case StaticXY:
		return "static-xy"
	case MinMux:
		return "min-mux"
	case LFU:
		return "lfu"
	case LRU:
		return "lru"
	case MaxCredit:
		return "max-credit"
	case Random:
		return "random"
	case NotifyLRU:
		return "notify-lru"
	case NotifyLFU:
		return "notify-lfu"
	case NotifyMaxCredit:
		return "notify-max-credit"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a policy name to its Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("selection: unknown policy %q", s)
}

// New returns a selector of the given kind. seed matters only for Random;
// every router gets its own selector so randomized runs stay deterministic
// for a fixed configuration seed.
func New(k Kind, seed int64) Selector {
	switch k {
	case StaticXY:
		return staticXY{}
	case MinMux:
		return minMux{}
	case LFU:
		return lfu{}
	case LRU:
		return lru{}
	case MaxCredit:
		return maxCredit{}
	case Random:
		return &random{rng: rand.New(rand.NewSource(seed))}
	case NotifyLRU:
		return notify{inner: lru{}, name: "notify-lru"}
	case NotifyLFU:
		return notify{inner: lfu{}, name: "notify-lfu"}
	case NotifyMaxCredit:
		return notify{inner: maxCredit{}, name: "notify-max-credit"}
	}
	panic("selection: unknown kind")
}

type staticXY struct{}

func (staticXY) Name() string { return "static-xy" }

// Select returns the first eligible candidate: tables emit candidates in
// dimension order, so this realizes the paper's X-first preference.
func (staticXY) Select(_ PortView, rs flow.RouteSet, eligible uint8) int {
	for i := 0; i < rs.Len(); i++ {
		if eligible&(1<<i) != 0 {
			return i
		}
	}
	panic("selection: no eligible candidate")
}

// argBest scans eligible candidates and returns the index whose score is
// strictly best under less; ties keep the earlier (dimension-order) index.
func argBest(rs flow.RouteSet, eligible uint8, score func(i int) int64, lowerIsBetter bool) int {
	best := -1
	var bestScore int64
	for i := 0; i < rs.Len(); i++ {
		if eligible&(1<<i) == 0 {
			continue
		}
		s := score(i)
		if best < 0 || (lowerIsBetter && s < bestScore) || (!lowerIsBetter && s > bestScore) {
			best, bestScore = i, s
		}
	}
	if best < 0 {
		panic("selection: no eligible candidate")
	}
	return best
}

type minMux struct{}

func (minMux) Name() string { return "min-mux" }

// Select picks the candidate whose physical channel multiplexes the fewest
// active VCs (Duato's policy, section 4.1).
func (minMux) Select(v PortView, rs flow.RouteSet, eligible uint8) int {
	return argBest(rs, eligible, func(i int) int64 {
		return int64(v.BusyVCs(rs.At(i).Port))
	}, true)
}

type lfu struct{}

func (lfu) Name() string { return "lfu" }

// Select picks the candidate with the lowest cumulative usage count,
// balancing link utilization over the run.
func (lfu) Select(v PortView, rs flow.RouteSet, eligible uint8) int {
	return argBest(rs, eligible, func(i int) int64 {
		return int64(v.UseCount(rs.At(i).Port))
	}, true)
}

type lru struct{}

func (lru) Name() string { return "lru" }

// Select picks the candidate used farthest in the past; recent history is
// a better congestion signal than cumulative history.
func (lru) Select(v PortView, rs flow.RouteSet, eligible uint8) int {
	return argBest(rs, eligible, func(i int) int64 {
		return v.LastUsed(rs.At(i).Port)
	}, true)
}

type maxCredit struct{}

func (maxCredit) Name() string { return "max-credit" }

// Select picks the candidate whose physical channel holds the most
// flow-control credits: plenty of downstream buffer space suggests low
// congestion at the next router.
func (maxCredit) Select(v PortView, rs flow.RouteSet, eligible uint8) int {
	return argBest(rs, eligible, func(i int) int64 {
		return int64(v.Credits(rs.At(i).Port))
	}, false)
}

type random struct{ rng *rand.Rand }

func (*random) Name() string { return "random" }

// Select picks uniformly among the eligible candidates.
func (r *random) Select(_ PortView, rs flow.RouteSet, eligible uint8) int {
	var idx [flow.MaxCandidates]int
	n := 0
	for i := 0; i < rs.Len(); i++ {
		if eligible&(1<<i) != 0 {
			idx[n] = i
			n++
		}
	}
	if n == 0 {
		panic("selection: no eligible candidate")
	}
	return idx[r.rng.Intn(n)]
}

// notify is the congestion-notification family (Rocher-Gonzalez-style
// adaptive-routing notifications): each candidate is scored by the
// quantized congestion level its downstream router piggybacked on credits,
// the eligible set is restricted to the minimum level, and the wrapped
// local heuristic breaks ties among the survivors. With no notifications
// yet (all levels 0) this degenerates exactly to the local heuristic.
type notify struct {
	inner Selector
	name  string
}

func (s notify) Name() string { return s.name }

func (s notify) Select(v PortView, rs flow.RouteSet, eligible uint8) int {
	minLevel := uint8(255)
	for i := 0; i < rs.Len(); i++ {
		if eligible&(1<<i) == 0 {
			continue
		}
		if l := v.RemoteCongestion(rs.At(i).Port); l < minLevel {
			minLevel = l
		}
	}
	filtered := uint8(0)
	for i := 0; i < rs.Len(); i++ {
		if eligible&(1<<i) != 0 && v.RemoteCongestion(rs.At(i).Port) == minLevel {
			filtered |= 1 << i
		}
	}
	return s.inner.Select(v, rs, filtered)
}
