package selection

import (
	"testing"

	"lapses/internal/flow"
	"lapses/internal/topology"
)

// fakeView is a scriptable PortView.
type fakeView struct {
	busy    map[topology.Port]int
	credits map[topology.Port]int
	use     map[topology.Port]uint64
	last    map[topology.Port]int64
	cong    map[topology.Port]uint8
}

func (f *fakeView) RemoteCongestion(p topology.Port) uint8 { return f.cong[p] }

func (f *fakeView) BusyVCs(p topology.Port) int { return f.busy[p] }
func (f *fakeView) Credits(p topology.Port) int { return f.credits[p] }
func (f *fakeView) UseCount(p topology.Port) uint64 {
	return f.use[p]
}
func (f *fakeView) LastUsed(p topology.Port) int64 {
	if v, ok := f.last[p]; ok {
		return v
	}
	return -1
}

func twoCands() flow.RouteSet {
	var rs flow.RouteSet
	rs.Add(flow.Candidate{Port: 1, Adaptive: 0b1110, Escape: 0b0001}) // +X
	rs.Add(flow.Candidate{Port: 3, Adaptive: 0b1110})                 // +Y
	return rs
}

func TestStaticXYPrefersFirst(t *testing.T) {
	s := New(StaticXY, 0)
	rs := twoCands()
	if got := s.Select(nil, rs, 0b11); got != 0 {
		t.Errorf("both eligible: got %d want 0", got)
	}
	if got := s.Select(nil, rs, 0b10); got != 1 {
		t.Errorf("only Y eligible: got %d want 1", got)
	}
}

func TestMinMux(t *testing.T) {
	s := New(MinMux, 0)
	v := &fakeView{busy: map[topology.Port]int{1: 3, 3: 1}}
	if got := s.Select(v, twoCands(), 0b11); got != 1 {
		t.Errorf("got %d want 1 (port 3 less multiplexed)", got)
	}
	// Tie prefers dimension order.
	v.busy[3] = 3
	if got := s.Select(v, twoCands(), 0b11); got != 0 {
		t.Errorf("tie: got %d want 0", got)
	}
}

func TestLFU(t *testing.T) {
	s := New(LFU, 0)
	v := &fakeView{use: map[topology.Port]uint64{1: 100, 3: 40}}
	if got := s.Select(v, twoCands(), 0b11); got != 1 {
		t.Errorf("got %d want 1 (port 3 less used)", got)
	}
	// Respect eligibility even when the other port scores better.
	if got := s.Select(v, twoCands(), 0b01); got != 0 {
		t.Errorf("got %d want 0 (only X eligible)", got)
	}
}

func TestLRU(t *testing.T) {
	s := New(LRU, 0)
	v := &fakeView{last: map[topology.Port]int64{1: 900, 3: 100}}
	if got := s.Select(v, twoCands(), 0b11); got != 1 {
		t.Errorf("got %d want 1 (port 3 older)", got)
	}
	// A never-used port (LastUsed -1) wins over any used port.
	v2 := &fakeView{last: map[topology.Port]int64{1: 5}}
	if got := s.Select(v2, twoCands(), 0b11); got != 1 {
		t.Errorf("got %d want 1 (never used)", got)
	}
}

func TestMaxCredit(t *testing.T) {
	s := New(MaxCredit, 0)
	v := &fakeView{credits: map[topology.Port]int{1: 10, 3: 70}}
	if got := s.Select(v, twoCands(), 0b11); got != 1 {
		t.Errorf("got %d want 1 (port 3 more credits)", got)
	}
	v.credits[3] = 10
	if got := s.Select(v, twoCands(), 0b11); got != 0 {
		t.Errorf("tie: got %d want 0", got)
	}
}

func TestRandomIsEligibleAndCoversBoth(t *testing.T) {
	s := New(Random, 42)
	rs := twoCands()
	seen := map[int]int{}
	for i := 0; i < 200; i++ {
		got := s.Select(nil, rs, 0b11)
		if got != 0 && got != 1 {
			t.Fatalf("out of range: %d", got)
		}
		seen[got]++
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Errorf("random never picked one side: %v", seen)
	}
	for i := 0; i < 50; i++ {
		if got := s.Select(nil, rs, 0b10); got != 1 {
			t.Fatalf("restricted random picked %d", got)
		}
	}
}

func TestRandomDeterministicForSeed(t *testing.T) {
	a, b := New(Random, 7), New(Random, 7)
	rs := twoCands()
	for i := 0; i < 100; i++ {
		if a.Select(nil, rs, 0b11) != b.Select(nil, rs, 0b11) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestAllSelectorsRespectEligibility(t *testing.T) {
	v := &fakeView{
		busy:    map[topology.Port]int{1: 0, 3: 9},
		credits: map[topology.Port]int{1: 99, 3: 0},
		use:     map[topology.Port]uint64{1: 0, 3: 999},
		last:    map[topology.Port]int64{1: -1, 3: 999},
	}
	rs := twoCands()
	for _, k := range Kinds {
		s := New(k, 1)
		// Port 1 scores best on every metric, but only candidate 1
		// (port 3) is eligible.
		if got := s.Select(v, rs, 0b10); got != 1 {
			t.Errorf("%s ignored eligibility: got %d", s.Name(), got)
		}
	}
}

func TestNotifyPrefersUncongestedQuadrant(t *testing.T) {
	for _, k := range []Kind{NotifyLRU, NotifyLFU, NotifyMaxCredit} {
		s := New(k, 0)
		// Port 1 scores best on every local metric but its downstream
		// quadrant is congested; the filter must steer to port 3.
		v := &fakeView{
			busy:    map[topology.Port]int{1: 0, 3: 9},
			credits: map[topology.Port]int{1: 99, 3: 0},
			use:     map[topology.Port]uint64{1: 0, 3: 999},
			last:    map[topology.Port]int64{1: -1, 3: 999},
			cong:    map[topology.Port]uint8{1: 3, 3: 1},
		}
		if got := s.Select(v, twoCands(), 0b11); got != 1 {
			t.Errorf("%s: got %d want 1 (port 1 congested downstream)", s.Name(), got)
		}
		// Eligibility still dominates: a congested port must be chosen
		// when it is the only eligible one.
		if got := s.Select(v, twoCands(), 0b01); got != 0 {
			t.Errorf("%s: got %d want 0 (only congested port eligible)", s.Name(), got)
		}
	}
}

func TestNotifyFallsBackToInnerOnTies(t *testing.T) {
	// Equal congestion levels (including the all-zero no-signal state)
	// must delegate exactly to the wrapped local heuristic.
	v := &fakeView{
		last:    map[topology.Port]int64{1: 900, 3: 100},
		use:     map[topology.Port]uint64{1: 100, 3: 40},
		credits: map[topology.Port]int{1: 10, 3: 70},
	}
	for _, k := range []Kind{NotifyLRU, NotifyLFU, NotifyMaxCredit} {
		if got := New(k, 0).Select(v, twoCands(), 0b11); got != 1 {
			t.Errorf("%s with no signal: got %d want 1 (inner heuristic)", k, got)
		}
	}
	v.cong = map[topology.Port]uint8{1: 2, 3: 2}
	for _, k := range []Kind{NotifyLRU, NotifyLFU, NotifyMaxCredit} {
		if got := New(k, 0).Select(v, twoCands(), 0b11); got != 1 {
			t.Errorf("%s with tied signal: got %d want 1 (inner heuristic)", k, got)
		}
	}
}

func TestIsNotify(t *testing.T) {
	for _, k := range Kinds {
		want := k == NotifyLRU || k == NotifyLFU || k == NotifyMaxCredit
		if k.IsNotify() != want {
			t.Errorf("%s.IsNotify() = %v want %v", k, k.IsNotify(), want)
		}
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v: %v %v", k, got, err)
		}
		if New(k, 0).Name() != k.String() {
			t.Errorf("selector name mismatch for %v", k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("expected error for unknown kind")
	}
}
