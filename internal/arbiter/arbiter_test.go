package arbiter

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundRobinRotation(t *testing.T) {
	a := NewRoundRobin(4)
	// All requesting: grants must rotate 0,1,2,3,0,...
	for i := 0; i < 8; i++ {
		if g := a.Grant(0b1111); g != i%4 {
			t.Fatalf("grant %d = %d want %d", i, g, i%4)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	a := NewRoundRobin(4)
	if g := a.Grant(0b1010); g != 1 {
		t.Fatalf("grant = %d want 1", g)
	}
	if g := a.Grant(0b1010); g != 3 {
		t.Fatalf("grant = %d want 3", g)
	}
	if g := a.Grant(0b1010); g != 1 {
		t.Fatalf("grant = %d want 1 (wrapped)", g)
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	a := NewRoundRobin(8)
	if g := a.Grant(0); g != -1 {
		t.Fatalf("grant on empty = %d", g)
	}
	// Priority must not move on a failed grant.
	if g := a.Grant(0b1); g != 0 {
		t.Fatalf("grant = %d want 0", g)
	}
}

func TestMatrixLeastRecentlyServed(t *testing.T) {
	a := NewMatrix(3)
	if g := a.Grant(0b111); g != 0 {
		t.Fatalf("first grant = %d want 0", g)
	}
	// 0 just served: among {0,1}, 1 must win.
	if g := a.Grant(0b011); g != 1 {
		t.Fatalf("second grant = %d want 1", g)
	}
	// Among all, 2 has waited longest.
	if g := a.Grant(0b111); g != 2 {
		t.Fatalf("third grant = %d want 2", g)
	}
	// Now 0 is least recently served again.
	if g := a.Grant(0b111); g != 0 {
		t.Fatalf("fourth grant = %d want 0", g)
	}
}

func TestMatrixEmpty(t *testing.T) {
	if g := NewMatrix(4).Grant(0); g != -1 {
		t.Fatalf("grant on empty = %d", g)
	}
}

func TestSizePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRoundRobin(0) },
		func() { NewRoundRobin(65) },
		func() { NewMatrix(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: both arbiters always grant a requesting index, and never a
// non-requesting one.
func TestQuickGrantValidity(t *testing.T) {
	for _, mk := range []func(int) Arbiter{
		func(n int) Arbiter { return NewRoundRobin(n) },
		func(n int) Arbiter { return NewMatrix(n) },
	} {
		a := mk(16)
		f := func(reqs uint16) bool {
			g := a.Grant(uint64(reqs))
			if reqs == 0 {
				return g == -1
			}
			return g >= 0 && g < 16 && reqs&(1<<g) != 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Error(err)
		}
	}
}

// Property: under persistent full load both arbiters are starvation-free
// and fair within one slot over any window.
func TestFairnessUnderLoad(t *testing.T) {
	for name, a := range map[string]Arbiter{
		"rr":     NewRoundRobin(8),
		"matrix": NewMatrix(8),
	} {
		counts := make([]int, 8)
		rng := rand.New(rand.NewSource(3))
		// Random but always-full request vectors of 8 requesters.
		for i := 0; i < 8000; i++ {
			counts[a.Grant(0xFF)]++
			_ = rng
		}
		for i, c := range counts {
			if c != 1000 {
				t.Errorf("%s: requester %d served %d/8000 (want exactly 1000)", name, i, c)
			}
		}
	}
}
