// Package arbiter provides the arbiters used inside the PROUD router
// pipeline: round-robin arbiters for switch allocation and VC multiplexing
// (fair, cheap, the common choice in the era's routers) and a matrix
// arbiter (least-recently-served, as used in the SGI SPIDER) for
// comparison and ablation.
package arbiter

import "math/bits"

// Arbiter grants one requester out of a request set each invocation.
type Arbiter interface {
	// Grant returns the index of the granted requester, or -1 if no bit
	// of reqs is set. reqs is a bitmask over requester indices; the
	// arbiter's internal priority state advances only on a grant.
	Grant(reqs uint64) int
	// Size returns the number of requester slots.
	Size() int
}

// RoundRobin is a rotating-priority arbiter: after granting requester i,
// requester i+1 has the highest priority next time.
type RoundRobin struct {
	n    int
	next int
}

// MakeRoundRobin returns a by-value round-robin arbiter over n requesters
// (n <= 64), for callers that embed many arbiters in a slab instead of
// heap-allocating each one.
func MakeRoundRobin(n int) RoundRobin {
	if n < 1 || n > 64 {
		panic("arbiter: size out of range [1,64]")
	}
	return RoundRobin{n: n}
}

// NewRoundRobin returns a round-robin arbiter over n requesters (n <= 64).
func NewRoundRobin(n int) *RoundRobin {
	a := MakeRoundRobin(n)
	return &a
}

// Size implements Arbiter.
func (a *RoundRobin) Size() int { return a.n }

// Grant implements Arbiter. The rotating-priority search is branch-free:
// the winner is the lowest set bit at or above the priority pointer, or
// the lowest set bit overall on wraparound — exactly what the equivalent
// rotating scan finds, in O(1) instead of O(n).
func (a *RoundRobin) Grant(reqs uint64) int {
	if a.n < 64 {
		reqs &= 1<<a.n - 1
	}
	if reqs == 0 {
		return -1
	}
	i := bits.TrailingZeros64(reqs &^ (1<<a.next - 1))
	if i == 64 {
		i = bits.TrailingZeros64(reqs)
	}
	a.next = i + 1
	if a.next == a.n {
		a.next = 0
	}
	return i
}

// Matrix is a least-recently-served matrix arbiter: a triangular matrix of
// priority bits where w[i][j] means i beats j; the winner's row is cleared
// and column set, making it lowest priority.
type Matrix struct {
	n int
	w [][]bool
}

// NewMatrix returns a matrix arbiter over n requesters.
func NewMatrix(n int) *Matrix {
	if n < 1 || n > 64 {
		panic("arbiter: size out of range [1,64]")
	}
	w := make([][]bool, n)
	for i := range w {
		w[i] = make([]bool, n)
		for j := i + 1; j < n; j++ {
			w[i][j] = true // initial priority: lower index wins
		}
	}
	return &Matrix{n: n, w: w}
}

// Size implements Arbiter.
func (a *Matrix) Size() int { return a.n }

// Grant implements Arbiter.
func (a *Matrix) Grant(reqs uint64) int {
	if reqs == 0 {
		return -1
	}
	winner := -1
	for i := 0; i < a.n; i++ {
		if reqs&(1<<i) == 0 {
			continue
		}
		beaten := false
		for j := 0; j < a.n; j++ {
			if j != i && reqs&(1<<j) != 0 && a.w[j][i] {
				beaten = true
				break
			}
		}
		if !beaten {
			winner = i
			break
		}
	}
	if winner < 0 {
		// Cannot happen with a consistent matrix, but stay safe.
		return -1
	}
	for j := 0; j < a.n; j++ {
		if j != winner {
			a.w[winner][j] = false
			a.w[j][winner] = true
		}
	}
	return winner
}
