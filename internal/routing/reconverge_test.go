package routing

import (
	"testing"

	"lapses/internal/fault"
	"lapses/internal/topology"
)

// TestReconvergenceNoLoop is the soundness half of live route
// reconvergence: at every instant of a transient fault schedule, the
// routing the network swaps in at that epoch's transition must be a
// complete fault-aware policy on its own — every pair of live nodes
// connected by the escape walk (no transient routing loop survives a
// table swap) and the escape-channel dependency graph acyclic (no epoch,
// however brief, can deadlock). Epochs are exactly the table sets
// network.BuildEpochTables programs, so this pins the property for the
// whole lifetime of any scheduled run.
func TestReconvergenceNoLoop(t *testing.T) {
	cls := Class{NumVCs: 4, EscapeVCs: 1}
	for _, m := range faultTestMeshes() {
		for seed := int64(1); seed <= 6; seed++ {
			sched, err := fault.RandomSchedule(m, 4, 1, 10000, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", m, seed, err)
			}
			for e := 0; e < sched.Epochs(); e++ {
				plan := sched.Plan(e)
				alg, err := NewFaultDuato(m, cls, plan)
				if err != nil {
					t.Fatalf("%s seed %d epoch %d: %v", m, seed, e, err)
				}
				if ok, cycle := Acyclic(EscapeDependencyGraph(m, alg, cls)); !ok {
					t.Fatalf("%s seed %d epoch %d: escape dependency cycle: %v", m, seed, e, cycle)
				}
				for cur := topology.NodeID(0); int(cur) < m.N(); cur++ {
					for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
						if plan.NodeDead(cur) || plan.NodeDead(dst) {
							continue
						}
						path, ok := walkToDst(t, m, alg, cur, dst)
						if !ok {
							t.Fatalf("%s seed %d epoch %d: escape walk %d->%d loops or strands (path %v)",
								m, seed, e, cur, dst, path)
						}
					}
				}
			}
		}
	}
}
