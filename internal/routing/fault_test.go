package routing

import (
	"testing"

	"lapses/internal/fault"
	"lapses/internal/topology"
)

// faultTestMeshes are the degraded-routing property-test topologies: a
// mesh and a torus, both small enough for exhaustive pair enumeration.
func faultTestMeshes() []*topology.Mesh {
	return []*topology.Mesh{topology.NewMesh(6, 6), topology.NewTorus(5, 5)}
}

// walkToDst iterates a deterministic routing step from cur until dst or a
// hop budget runs out, returning the path's ports and whether it arrived.
func walkToDst(t *testing.T, m *topology.Mesh, alg Algorithm, cur, dst topology.NodeID) ([]topology.Port, bool) {
	t.Helper()
	var path []topology.Port
	for hops := 0; hops < 4*m.N(); hops++ {
		if cur == dst {
			return path, true
		}
		rs := alg.Route(cur, dst, 0)
		if rs.Empty() {
			return path, false
		}
		p := rs.At(0).Port
		if p == topology.PortLocal {
			return path, cur == dst
		}
		nb, ok := m.Neighbor(cur, p)
		if !ok {
			t.Fatalf("route %d->%d walks off the topology via port %d", cur, dst, p)
		}
		path = append(path, p)
		cur = nb
	}
	return path, false
}

// TestFaultPlanProperties is the degraded-routing property test: for a
// range of generated fault plans on a mesh and a torus, the fault-aware
// routing function must (a) connect every pair of live nodes, (b) never
// route over a failed link or through a dead router, and (c) have an
// acyclic escape-channel dependency graph (deadlock freedom per Duato's
// theory, checked with the real dependency builder).
func TestFaultPlanProperties(t *testing.T) {
	cls := Class{NumVCs: 4, EscapeVCs: 1}
	detCls := Class{NumVCs: 4, EscapeVCs: 0}
	for _, m := range faultTestMeshes() {
		for seed := int64(1); seed <= 8; seed++ {
			plan, err := fault.Random(m, 4, 1, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", m, seed, err)
			}
			duato, err := NewFaultDuato(m, cls, plan)
			if err != nil {
				t.Fatalf("%s seed %d: %v", m, seed, err)
			}
			det, err := NewFaultDimOrder(m, detCls, plan)
			if err != nil {
				t.Fatalf("%s seed %d: %v", m, seed, err)
			}

			for _, alg := range []Algorithm{duato, det} {
				// (b) every candidate at every live pair stays on live
				// equipment.
				for cur := topology.NodeID(0); int(cur) < m.N(); cur++ {
					for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
						if plan.NodeDead(cur) || plan.NodeDead(dst) || cur == dst {
							continue
						}
						rs := alg.Route(cur, dst, 0)
						if rs.Empty() {
							t.Fatalf("%s seed %d: %s has no route %d->%d", m, seed, alg.Name(), cur, dst)
						}
						for i := 0; i < rs.Len(); i++ {
							c := rs.At(i)
							if plan.LinkDead(cur, c.Port) {
								t.Fatalf("%s seed %d: %s routes %d->%d over dead link port %s",
									m, seed, alg.Name(), cur, dst, m.PortName(c.Port))
							}
							nb, ok := m.Neighbor(cur, c.Port)
							if !ok || plan.NodeDead(nb) {
								t.Fatalf("%s seed %d: %s routes %d->%d into dead router",
									m, seed, alg.Name(), cur, dst)
							}
						}
					}
				}
				// (c) escape dependency acyclicity.
				checkCls := cls
				if alg.Deterministic() {
					checkCls = detCls
				}
				if ok, cycle := Acyclic(EscapeDependencyGraph(m, alg, checkCls)); !ok {
					t.Fatalf("%s seed %d: %s escape dependency cycle: %v", m, seed, alg.Name(), cycle)
				}
			}

			// (a) connectivity: iterating the deterministic (escape) step
			// reaches every live destination from every live source.
			for cur := topology.NodeID(0); int(cur) < m.N(); cur++ {
				for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
					if plan.NodeDead(cur) || plan.NodeDead(dst) {
						continue
					}
					if _, ok := walkToDst(t, m, det, cur, dst); !ok {
						t.Fatalf("%s seed %d: up*/down* walk %d->%d does not arrive", m, seed, cur, dst)
					}
				}
			}
		}
	}
}

// TestFaultDisconnectedError pins the contract that a disconnecting plan
// yields a descriptive error, not a panic or a silent bad table.
func TestFaultDisconnectedError(t *testing.T) {
	m := topology.NewMesh(2, 2)
	plan, err := fault.New(m, []fault.Link{
		{Node: 0, Port: topology.PortPlus(0)},
		{Node: 0, Port: topology.PortPlus(1)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFaultDuato(m, Class{NumVCs: 2, EscapeVCs: 1}, plan); err == nil {
		t.Fatal("disconnected plan accepted by NewFaultDuato")
	}
	if _, err := NewFaultDimOrder(m, Class{NumVCs: 2, EscapeVCs: 0}, plan); err == nil {
		t.Fatal("disconnected plan accepted by NewFaultDimOrder")
	}
}

// TestFaultRouteMatchesHealthyDistance sanity-checks the adaptive
// candidates: with zero faults, fault-Duato's productive ports equal the
// healthy minimal directions at every pair.
func TestFaultRouteMatchesHealthyDistance(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cls := Class{NumVCs: 4, EscapeVCs: 1}
	plan, err := fault.New(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewFaultDuato(m, cls, plan)
	if err != nil {
		t.Fatal(err)
	}
	for cur := topology.NodeID(0); int(cur) < m.N(); cur++ {
		for dst := topology.NodeID(0); int(dst) < m.N(); dst++ {
			if cur == dst {
				continue
			}
			rs := alg.Route(cur, dst, 0)
			adaptivePorts := map[topology.Port]bool{}
			for i := 0; i < rs.Len(); i++ {
				if c := rs.At(i); c.Adaptive != 0 {
					adaptivePorts[c.Port] = true
				}
			}
			for p := topology.Port(1); int(p) < m.NumPorts(); p++ {
				nb, ok := m.Neighbor(cur, p)
				if !ok {
					continue
				}
				minimal := m.Distance(nb, dst) == m.Distance(cur, dst)-1
				if minimal != adaptivePorts[p] {
					t.Fatalf("zero-fault adaptive ports at %d->%d: port %s minimal=%t offered=%t",
						cur, dst, m.PortName(p), minimal, adaptivePorts[p])
				}
			}
		}
	}
}
