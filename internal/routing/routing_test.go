package routing

import (
	"math/rand"
	"testing"

	"lapses/internal/flow"
	"lapses/internal/topology"
)

var cls4 = Class{NumVCs: 4, EscapeVCs: 1}

func TestClassMasks(t *testing.T) {
	c := Class{NumVCs: 4, EscapeVCs: 1}
	if c.AdaptiveMask() != 0b1110 {
		t.Errorf("AdaptiveMask = %b", c.AdaptiveMask())
	}
	if c.EscapeMask() != 0b0001 {
		t.Errorf("EscapeMask = %b", c.EscapeMask())
	}
	c2 := Class{NumVCs: 4, EscapeVCs: 2}
	if c2.EscapeLowMask() != 0b0001 || c2.EscapeHighMask() != 0b0010 {
		t.Errorf("dateline masks = %b / %b", c2.EscapeLowMask(), c2.EscapeHighMask())
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	if err := (Class{NumVCs: 0}).Validate(); err == nil {
		t.Error("NumVCs 0 should fail validation")
	}
	if err := (Class{NumVCs: 2, EscapeVCs: 3}).Validate(); err == nil {
		t.Error("EscapeVCs > NumVCs should fail validation")
	}
}

func TestXYBasics(t *testing.T) {
	m := topology.NewMesh(16, 16)
	xy := NewDimOrder(m, cls4, nil)
	if xy.Name() != "xy" || !xy.Deterministic() {
		t.Fatalf("xy identity wrong: %s %v", xy.Name(), xy.Deterministic())
	}
	src := m.ID(topology.Coord{3, 3})
	dst := m.ID(topology.Coord{7, 9})
	rs := xy.Route(src, dst, 0)
	if rs.Len() != 1 || rs.At(0).Port != topology.PortPlus(0) {
		t.Fatalf("XY should go +X first: %v", rs)
	}
	// Once X is resolved, go Y.
	mid := m.ID(topology.Coord{7, 3})
	rs = xy.Route(mid, dst, 0)
	if rs.Len() != 1 || rs.At(0).Port != topology.PortPlus(1) {
		t.Fatalf("XY should go +Y second: %v", rs)
	}
	// At destination, eject.
	rs = xy.Route(dst, dst, 0)
	if rs.Len() != 1 || rs.At(0).Port != topology.PortLocal {
		t.Fatalf("XY should eject at destination: %v", rs)
	}
}

func TestYXOrder(t *testing.T) {
	m := topology.NewMesh(16, 16)
	yx := NewDimOrder(m, cls4, []int{1, 0})
	if yx.Name() != "yx" {
		t.Fatalf("name = %s", yx.Name())
	}
	src := m.ID(topology.Coord{3, 3})
	dst := m.ID(topology.Coord{7, 9})
	rs := yx.Route(src, dst, 0)
	if rs.Len() != 1 || rs.At(0).Port != topology.PortPlus(1) {
		t.Fatalf("YX should go +Y first: %v", rs)
	}
}

func TestDimOrderPanicsOnBadOrder(t *testing.T) {
	m := topology.NewMesh(4, 4)
	for _, ord := range [][]int{{0}, {0, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %v should panic", ord)
				}
			}()
			NewDimOrder(m, cls4, ord)
		}()
	}
}

func TestDuatoCandidates(t *testing.T) {
	m := topology.NewMesh(16, 16)
	du := NewDuato(m, cls4)
	if du.Deterministic() {
		t.Fatal("duato should not be deterministic")
	}
	src := m.ID(topology.Coord{3, 3})
	dst := m.ID(topology.Coord{7, 9})
	rs := du.Route(src, dst, 0)
	if rs.Len() != 2 {
		t.Fatalf("expected 2 candidates, got %v", rs)
	}
	x, y := rs.At(0), rs.At(1)
	if x.Port != topology.PortPlus(0) || y.Port != topology.PortPlus(1) {
		t.Fatalf("candidate ports wrong: %v", rs)
	}
	if x.Adaptive != 0b1110 || y.Adaptive != 0b1110 {
		t.Errorf("adaptive masks wrong: %v", rs)
	}
	// Escape class rides only on the dimension-order (X) port.
	if x.Escape != 0b0001 || y.Escape != 0 {
		t.Errorf("escape masks wrong: %v", rs)
	}
	// Aligned in X: single candidate carrying the escape class.
	mid := m.ID(topology.Coord{7, 3})
	rs = du.Route(mid, dst, 0)
	if rs.Len() != 1 || rs.At(0).Port != topology.PortPlus(1) || rs.At(0).Escape != 0b0001 {
		t.Fatalf("aligned route wrong: %v", rs)
	}
}

func TestDuatoRequiresEscape(t *testing.T) {
	m := topology.NewMesh(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic with no escape VCs")
		}
	}()
	NewDuato(m, Class{NumVCs: 4, EscapeVCs: 0})
}

func TestDuatoTorusRequiresTwoEscape(t *testing.T) {
	m := topology.NewTorus(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic with one escape VC on torus")
		}
	}()
	NewDuato(m, Class{NumVCs: 4, EscapeVCs: 1})
}

func TestNorthLastMatchesPaperFig7(t *testing.T) {
	// Fig. 7: 3x3 mesh, router at (1,1), North-Last programming.
	m := topology.NewMesh(3, 3)
	nl := NewNorthLast(m, cls4)
	at := m.ID(topology.Coord{1, 1})
	// Paper's table, translated to coordinates and our port names.
	cases := []struct {
		dst   topology.Coord
		ports []topology.Port
	}{
		{topology.Coord{0, 0}, []topology.Port{topology.PortMinus(0), topology.PortMinus(1)}}, // W,S
		{topology.Coord{1, 0}, []topology.Port{topology.PortMinus(1)}},                        // S
		{topology.Coord{2, 0}, []topology.Port{topology.PortPlus(0), topology.PortMinus(1)}},  // E,S
		{topology.Coord{0, 1}, []topology.Port{topology.PortMinus(0)}},                        // W
		{topology.Coord{1, 1}, []topology.Port{topology.PortLocal}},                           // 0
		{topology.Coord{2, 1}, []topology.Port{topology.PortPlus(0)}},                         // E
		{topology.Coord{0, 2}, []topology.Port{topology.PortMinus(0)}},                        // W only (NL drops N)
		{topology.Coord{1, 2}, []topology.Port{topology.PortPlus(1)}},                         // N
		{topology.Coord{2, 2}, []topology.Port{topology.PortPlus(0)}},                         // E only (NL drops N)
	}
	for _, c := range cases {
		rs := nl.Route(at, m.ID(c.dst), 0)
		got := rs.Ports()
		if len(got) != len(c.ports) {
			t.Errorf("dst %v: ports %v want %v", c.dst, got, c.ports)
			continue
		}
		want := map[topology.Port]bool{}
		for _, p := range c.ports {
			want[p] = true
		}
		for _, p := range got {
			if !want[p] {
				t.Errorf("dst %v: unexpected port %s", c.dst, m.PortName(p))
			}
		}
	}
}

func TestWestFirst(t *testing.T) {
	m := topology.NewMesh(8, 8)
	wf := NewWestFirst(m, cls4)
	// Needs to go west: only -X allowed.
	rs := wf.Route(m.ID(topology.Coord{4, 4}), m.ID(topology.Coord{1, 6}), 0)
	if rs.Len() != 1 || rs.At(0).Port != topology.PortMinus(0) {
		t.Fatalf("west-first should force -X: %v", rs)
	}
	// No west component: fully adaptive east/north.
	rs = wf.Route(m.ID(topology.Coord{4, 4}), m.ID(topology.Coord{6, 6}), 0)
	if rs.Len() != 2 {
		t.Fatalf("west-first should be adaptive eastbound: %v", rs)
	}
}

func TestNegativeFirst(t *testing.T) {
	m := topology.NewMesh(8, 8)
	nf := NewNegativeFirst(m, cls4)
	// Mixed signs: only the negative direction.
	rs := nf.Route(m.ID(topology.Coord{4, 4}), m.ID(topology.Coord{6, 2}), 0)
	if rs.Len() != 1 || rs.At(0).Port != topology.PortMinus(1) {
		t.Fatalf("negative-first should force -Y: %v", rs)
	}
	// Both negative: both candidates.
	rs = nf.Route(m.ID(topology.Coord{4, 4}), m.ID(topology.Coord{2, 2}), 0)
	if rs.Len() != 2 {
		t.Fatalf("negative-first should allow both negatives: %v", rs)
	}
	// Both positive: both candidates.
	rs = nf.Route(m.ID(topology.Coord{4, 4}), m.ID(topology.Coord{6, 6}), 0)
	if rs.Len() != 2 {
		t.Fatalf("negative-first should be adaptive positive: %v", rs)
	}
}

func TestAllAlgorithmsMinimal(t *testing.T) {
	m := topology.NewMesh(8, 8)
	algs := []Algorithm{
		NewDimOrder(m, cls4, nil),
		NewDimOrder(m, cls4, []int{1, 0}),
		NewDuato(m, cls4),
		NewNorthLast(m, cls4),
		NewWestFirst(m, cls4),
		NewNegativeFirst(m, cls4),
	}
	for _, a := range algs {
		if err := ValidateMinimal(m, a); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

func TestMinimal3D(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	for _, a := range []Algorithm{
		NewDimOrder(m, cls4, nil),
		NewDuato(m, cls4),
	} {
		if err := ValidateMinimal(m, a); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

func TestMinimalTorus(t *testing.T) {
	m := topology.NewTorus(6, 6)
	cls := Class{NumVCs: 4, EscapeVCs: 2}
	for _, a := range []Algorithm{
		NewDimOrder(m, cls, nil),
		NewDuato(m, cls),
	} {
		if err := ValidateMinimal(m, a); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

func TestEscapeAcyclicMeshXY(t *testing.T) {
	m := topology.NewMesh(6, 6)
	deps := EscapeDependencyGraph(m, NewDimOrder(m, cls4, nil), Class{NumVCs: 4, EscapeVCs: 0})
	if ok, cyc := Acyclic(deps); !ok {
		t.Fatalf("XY dependency graph has a cycle: %v", cyc)
	}
}

func TestEscapeAcyclicDuato(t *testing.T) {
	m := topology.NewMesh(6, 6)
	deps := EscapeDependencyGraph(m, NewDuato(m, cls4), cls4)
	if ok, cyc := Acyclic(deps); !ok {
		t.Fatalf("Duato escape graph has a cycle: %v", cyc)
	}
}

func TestEscapeAcyclicTurnModels(t *testing.T) {
	m := topology.NewMesh(5, 5)
	for _, a := range []Algorithm{NewNorthLast(m, cls4), NewWestFirst(m, cls4), NewNegativeFirst(m, cls4)} {
		deps := EscapeDependencyGraph(m, a, Class{NumVCs: 4, EscapeVCs: 0})
		if ok, cyc := Acyclic(deps); !ok {
			t.Errorf("%s dependency graph has a cycle: %v", a.Name(), cyc)
		}
	}
}

func TestEscapeAcyclicDuatoTorus(t *testing.T) {
	m := topology.NewTorus(4, 4)
	cls := Class{NumVCs: 4, EscapeVCs: 2}
	deps := EscapeDependencyGraph(m, NewDuato(m, cls), cls)
	if ok, cyc := Acyclic(deps); !ok {
		t.Fatalf("torus Duato escape graph has a cycle: %v", cyc)
	}
}

// YX escape used as a negative control: the checker must detect the cycle
// created by mixing XY and YX messages on the same VC.
func TestAcyclicDetectsMixedOrderCycle(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cls := Class{NumVCs: 1, EscapeVCs: 0}
	xy := NewDimOrder(m, cls, nil)
	yx := NewDimOrder(m, cls, []int{1, 0})
	// Merge both dependency graphs: messages of both kinds share channels.
	deps := EscapeDependencyGraph(m, xy, cls)
	for k, v := range EscapeDependencyGraph(m, yx, cls) {
		deps[k] = append(deps[k], v...)
	}
	if ok, _ := Acyclic(deps); ok {
		t.Fatal("mixing XY and YX on one VC must create a cycle")
	}
}

// Property: Duato's candidate set always contains the XY escape hop, so a
// message can always fall back to the escape network.
func TestDuatoContainsEscapePath(t *testing.T) {
	m := topology.NewMesh(8, 8)
	du := NewDuato(m, cls4)
	xy := NewDimOrder(m, cls4, nil)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		cur := topology.NodeID(rng.Intn(m.N()))
		dst := topology.NodeID(rng.Intn(m.N()))
		if cur == dst {
			continue // ejection needs no escape class
		}
		want := xy.Route(cur, dst, 0).At(0).Port
		rs := du.Route(cur, dst, 0)
		found := false
		for j := 0; j < rs.Len(); j++ {
			c := rs.At(j)
			if c.Port == want && c.Escape != 0 {
				found = true
			}
			if c.Port != want && c.Escape != 0 {
				t.Fatalf("escape class on non-XY port at %d->%d: %v", cur, dst, rs)
			}
		}
		if !found {
			t.Fatalf("XY escape hop missing at %d->%d: %v", cur, dst, rs)
		}
	}
}

// Property: turn-model candidate sets are always subsets of Duato's fully
// adaptive set (they only restrict turns, never add non-minimal options).
func TestTurnModelsSubsetOfFullyAdaptive(t *testing.T) {
	m := topology.NewMesh(8, 8)
	du := NewDuato(m, cls4)
	models := []Algorithm{NewNorthLast(m, cls4), NewWestFirst(m, cls4), NewNegativeFirst(m, cls4)}
	for cur := topology.NodeID(0); int(cur) < m.N(); cur++ {
		for _, dst := range []topology.NodeID{0, 7, 32, 63, cur} {
			full := map[topology.Port]bool{}
			frs := du.Route(cur, dst, 0)
			for i := 0; i < frs.Len(); i++ {
				full[frs.At(i).Port] = true
			}
			for _, alg := range models {
				rs := alg.Route(cur, dst, 0)
				for i := 0; i < rs.Len(); i++ {
					if !full[rs.At(i).Port] {
						t.Fatalf("%s at %d->%d uses port outside adaptive set", alg.Name(), cur, dst)
					}
				}
			}
		}
	}
}

func TestEjectUsesAllVCs(t *testing.T) {
	m := topology.NewMesh(4, 4)
	du := NewDuato(m, cls4)
	rs := du.Route(5, 5, 0)
	if rs.At(0).All() != flow.MaskAll(4) {
		t.Errorf("eject mask = %b", rs.At(0).All())
	}
}
