package routing

import (
	"fmt"

	"lapses/internal/flow"
	"lapses/internal/topology"
)

// Channel identifies one virtual channel of one unidirectional link: the
// link leaving node Src through port Out, on virtual channel VC.
type Channel struct {
	Src topology.NodeID
	Out topology.Port
	VC  flow.VCID
}

// EscapeDependencyGraph builds the channel dependency graph of an
// algorithm's escape subfunction (the deterministic routing restricted to
// escape VCs). Per Duato's theory the adaptive network is deadlock-free if
// this graph is acyclic. For algorithms with EscapeVCs == 0 (turn models,
// plain dimension order) the whole routing function is treated as the
// escape subfunction, checking the algorithm's own deadlock freedom.
//
// An edge c1 -> c2 exists when a message can hold c1 while requesting c2:
// c1 enters node v and the algorithm routes it onward through c2 for some
// destination.
func EscapeDependencyGraph(m *topology.Mesh, alg Algorithm, cls Class) map[Channel][]Channel {
	deps := make(map[Channel][]Channel)
	// Position-dependent (fault-aware) algorithms never vary their masks
	// with wrap-crossing state, so a single dateline state captures every
	// edge; the minimal-routing dateline pruning below would wrongly drop
	// real dependencies of their non-minimal detours.
	posDep := IsPositionDependent(alg)
	// For every (node, destination) pair, find escape hops at consecutive
	// routers along the way. We enumerate dependencies locally: for node v
	// and destination dst, the escape candidate at v defines the outgoing
	// channel; the escape candidate at each upstream neighbor u that
	// routes into v defines the incoming channel.
	escAt := func(cur, dst topology.NodeID, dl uint8) (topology.Port, flow.VCMask, bool) {
		rs := alg.Route(cur, dst, dl)
		for i := 0; i < rs.Len(); i++ {
			c := rs.At(i)
			mask := c.Escape
			if cls.EscapeVCs == 0 {
				mask = c.Adaptive
			}
			if mask == 0 || c.Port == topology.PortLocal {
				continue
			}
			// A minimal route never crosses the same dimension's
			// wraparound twice; states that would are unreachable
			// and must not contribute dependency edges.
			if m.Wrap() && !posDep {
				d := topology.PortDim(c.Port)
				if dl&(1<<d) != 0 && nextDateline(m, cur, c.Port, 0)&(1<<d) != 0 {
					continue
				}
			}
			return c.Port, mask, true
		}
		return topology.InvalidPort, 0, false
	}
	n := topology.NodeID(m.N())
	for v := topology.NodeID(0); v < n; v++ {
		for dst := topology.NodeID(0); dst < n; dst++ {
			if v == dst {
				continue
			}
			// Enumerate dateline states a message could arrive with.
			states := []uint8{0}
			if m.Wrap() && !posDep {
				states = allDatelineStates(m.NumDims())
			}
			for _, dl := range states {
				outPort, outMask, ok := escAt(v, dst, dl)
				if !ok {
					continue
				}
				// Incoming: each neighbor u whose escape hop for dst
				// leads into v.
				for p := topology.Port(1); int(p) < m.NumPorts(); p++ {
					u, ok := m.Neighbor(v, p)
					if !ok {
						continue
					}
					for _, udl := range states {
						inPort, inMask, ok := escAt(u, dst, udl)
						if !ok {
							continue
						}
						if nb, _ := m.Neighbor(u, inPort); nb != v {
							continue
						}
						// The dateline state at v must be consistent:
						// crossing a wrap link sets the dimension bit.
						if m.Wrap() && !posDep && nextDateline(m, u, inPort, udl) != dl {
							continue
						}
						addDeps(deps, u, inPort, inMask, v, outPort, outMask)
					}
				}
			}
		}
	}
	return deps
}

func allDatelineStates(dims int) []uint8 {
	out := make([]uint8, 1<<dims)
	for i := range out {
		out[i] = uint8(i)
	}
	return out
}

// nextDateline returns the dateline bitmask after traversing port p out of
// node u: crossing a wraparound link sets the bit of that dimension.
func nextDateline(m *topology.Mesh, u topology.NodeID, p topology.Port, dl uint8) uint8 {
	if !m.Wrap() || p == topology.PortLocal {
		return dl
	}
	d := topology.PortDim(p)
	x := m.CoordAxis(u, d)
	k := m.Radix(d)
	if (topology.PortSign(p) > 0 && x == k-1) || (topology.PortSign(p) < 0 && x == 0) {
		dl |= 1 << d
	}
	return dl
}

func addDeps(deps map[Channel][]Channel, u topology.NodeID, inPort topology.Port, inMask flow.VCMask, v topology.NodeID, outPort topology.Port, outMask flow.VCMask) {
	for iv := flow.VCID(0); iv < 16; iv++ {
		if !inMask.Has(iv) {
			continue
		}
		from := Channel{Src: u, Out: inPort, VC: iv}
		for ov := flow.VCID(0); ov < 16; ov++ {
			if !outMask.Has(ov) {
				continue
			}
			deps[from] = append(deps[from], Channel{Src: v, Out: outPort, VC: ov})
		}
	}
}

// Acyclic reports whether the dependency graph has no cycle, returning one
// offending cycle (as a channel list) when it does.
func Acyclic(deps map[Channel][]Channel) (bool, []Channel) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Channel]int, len(deps))
	var stack []Channel
	var cycle []Channel

	var visit func(c Channel) bool
	visit = func(c Channel) bool {
		color[c] = gray
		stack = append(stack, c)
		for _, nxt := range deps[c] {
			switch color[nxt] {
			case gray:
				// Found a cycle: slice it out of the stack.
				for i, s := range stack {
					if s == nxt {
						cycle = append([]Channel(nil), stack[i:]...)
						break
					}
				}
				return false
			case white:
				if !visit(nxt) {
					return false
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[c] = black
		return true
	}
	for c := range deps {
		if color[c] == white {
			if !visit(c) {
				return false, cycle
			}
		}
	}
	return true, nil
}

// ValidateMinimal checks that every candidate an algorithm returns is
// productive (strictly reduces distance to the destination) and that the
// candidate set is never empty. It returns the first violation found.
func ValidateMinimal(m *topology.Mesh, alg Algorithm) error {
	n := topology.NodeID(m.N())
	for cur := topology.NodeID(0); cur < n; cur++ {
		for dst := topology.NodeID(0); dst < n; dst++ {
			rs := alg.Route(cur, dst, 0)
			if rs.Empty() {
				return fmt.Errorf("routing: %s returns no candidates for %d->%d", alg.Name(), cur, dst)
			}
			for i := 0; i < rs.Len(); i++ {
				c := rs.At(i)
				if c.All() == 0 {
					return fmt.Errorf("routing: %s candidate with empty VC mask for %d->%d", alg.Name(), cur, dst)
				}
				if cur == dst {
					if c.Port != topology.PortLocal {
						return fmt.Errorf("routing: %s does not eject at destination %d", alg.Name(), dst)
					}
					continue
				}
				if c.Port == topology.PortLocal {
					return fmt.Errorf("routing: %s ejects early for %d->%d", alg.Name(), cur, dst)
				}
				nb, ok := m.Neighbor(cur, c.Port)
				if !ok {
					return fmt.Errorf("routing: %s routes off the edge for %d->%d port %s", alg.Name(), cur, dst, m.PortName(c.Port))
				}
				if m.Distance(nb, dst) != m.Distance(cur, dst)-1 {
					return fmt.Errorf("routing: %s non-minimal hop for %d->%d via %s", alg.Name(), cur, dst, m.PortName(c.Port))
				}
			}
		}
	}
	return nil
}
