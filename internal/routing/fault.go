package routing

import (
	"fmt"

	"lapses/internal/fault"
	"lapses/internal/flow"
	"lapses/internal/topology"
)

// Fault-aware routing over a degraded topology. Dimension-order escape
// routing stops working the moment a link on the dimension-order path
// fails, so the fault variants replace the escape subfunction with
// up*/down* routing over a BFS spanning order of the live graph: every
// link is oriented "up" toward the BFS root (lower level, then lower id),
// and the deterministic route climbs up-links until a down-only path to
// the destination exists, then descends. Up-only and down-only channel
// sets are each acyclic (they follow a strict total node order), and the
// route never turns from down back to up, so the escape channel dependency
// graph is acyclic on any connected subgraph — mesh or torus, no datelines
// needed (TestFaultPlanProperties checks this with the real dependency
// builder).
//
// NewFaultDuato keeps Duato's structure on top of that escape: adaptive
// VCs are offered on every live port that strictly reduces the degraded-
// graph distance to the destination, so adaptivity steers around both
// faults and congestion. NewFaultDimOrder is the deterministic baseline:
// the up*/down* path alone, on every VC.

// PositionDependent marks routing functions whose result depends on the
// absolute position of the current node (fault detours), not only on the
// offset to the destination. Table builders use it to switch the
// economical-storage and interval organizations into exception mode, and
// the deadlock checker uses it to skip the minimal-routing dateline
// analysis (position-dependent algorithms here never vary masks with
// wrap-crossing state).
type PositionDependent interface {
	PositionDependent() bool
}

// IsPositionDependent reports whether alg declares position-dependent
// routing.
func IsPositionDependent(alg Algorithm) bool {
	p, ok := alg.(PositionDependent)
	return ok && p.PositionDependent()
}

// faultTables holds the precomputed per-(node, destination) routing state
// shared by both fault-aware algorithms. All fields are immutable after
// construction.
type faultTables struct {
	m     *topology.Mesh
	plan  *fault.Plan
	n     int
	ports int
	live  []bool
	// dist[dst*n+cur] is the minimal live-path hop count, -1 if unroutable
	// (either endpoint dead). Adaptive candidates are the live ports that
	// strictly decrease it.
	dist []int16
	// next[dst*n+cur] is the deterministic up*/down* next-hop port, -1 at
	// the destination and for unroutable pairs.
	next []int8
}

// newFaultTables builds the degraded-graph routing state, or an error when
// the live subgraph is disconnected (no deadlock-free escape subnetwork
// exists, so no routing function can be programmed).
func newFaultTables(m *topology.Mesh, plan *fault.Plan) (*faultTables, error) {
	t := &faultTables{m: m, plan: plan, n: m.N(), ports: m.NumPorts()}
	t.live = make([]bool, t.n)
	root := topology.InvalidNode
	nLive := 0
	for id := 0; id < t.n; id++ {
		t.live[id] = !plan.NodeDead(topology.NodeID(id))
		if t.live[id] {
			if root == topology.InvalidNode {
				root = topology.NodeID(id)
			}
			nLive++
		}
	}
	if nLive == 0 {
		return nil, fmt.Errorf("routing: fault plan kills every router of %s", m)
	}
	if !plan.Connected(m) {
		return nil, fmt.Errorf("routing: escape subnetwork disconnected: fault plan %s splits %s into unreachable regions", plan, m)
	}

	// BFS levels from the root define the up/down orientation: a hop from
	// u to v is "up" when (level[v], v) < (level[u], u) in lexicographic
	// order, "down" otherwise. The order is total, so each direction class
	// is cycle-free by construction.
	level := make([]int32, t.n)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	queue := make([]topology.NodeID, 0, nLive)
	queue = append(queue, root)
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for p := 1; p < t.ports; p++ {
			nb, ok := t.liveNeighbor(cur, topology.Port(p))
			if !ok || level[nb] >= 0 {
				continue
			}
			level[nb] = level[cur] + 1
			queue = append(queue, nb)
		}
	}
	up := func(from, to topology.NodeID) bool {
		return level[to] < level[from] || (level[to] == level[from] && to < from)
	}

	// byOrder lists live nodes in ascending (level, id) order; the g
	// recursion below consumes it so every up-neighbor is final before its
	// dependents are processed.
	byOrder := make([]topology.NodeID, len(queue))
	copy(byOrder, queue)
	for i := 1; i < len(byOrder); i++ {
		for j := i; j > 0 && less(level, byOrder[j], byOrder[j-1]); j-- {
			byOrder[j], byOrder[j-1] = byOrder[j-1], byOrder[j]
		}
	}

	t.dist = make([]int16, t.n*t.n)
	t.next = make([]int8, t.n*t.n)
	for i := range t.dist {
		t.dist[i] = -1
		t.next[i] = -1
	}
	const inf = int32(1) << 30
	dDown := make([]int32, t.n)
	g := make([]int32, t.n)
	bfs := make([]topology.NodeID, 0, nLive)
	for _, dst := range byOrder {
		base := int(dst) * t.n
		// Minimal distance over all live edges (for adaptive candidates).
		t.dist[base+int(dst)] = 0
		bfs = bfs[:0]
		bfs = append(bfs, dst)
		for head := 0; head < len(bfs); head++ {
			cur := bfs[head]
			for p := 1; p < t.ports; p++ {
				nb, ok := t.liveNeighbor(cur, topology.Port(p))
				if !ok || t.dist[base+int(nb)] >= 0 {
					continue
				}
				t.dist[base+int(nb)] = t.dist[base+int(cur)] + 1
				bfs = append(bfs, nb)
			}
		}
		// dDown[x]: shortest x->dst path using only down hops, via reverse
		// BFS from dst (a predecessor u of v sits above v in the order).
		for i := range dDown {
			dDown[i] = inf
		}
		dDown[dst] = 0
		bfs = bfs[:0]
		bfs = append(bfs, dst)
		for head := 0; head < len(bfs); head++ {
			cur := bfs[head]
			for p := 1; p < t.ports; p++ {
				nb, ok := t.liveNeighbor(cur, topology.Port(p))
				if !ok || !up(cur, nb) || dDown[nb] < inf {
					continue
				}
				dDown[nb] = dDown[cur] + 1
				bfs = append(bfs, nb)
			}
		}
		// g[x]: shortest legal up-then-down distance. Processing in
		// ascending order makes every up-neighbor's g final on arrival.
		// The next hop prefers descending whenever a down-only path
		// exists (never turning back up keeps the dependency graph
		// acyclic), otherwise climbs toward the cheapest up-neighbor.
		for _, x := range byOrder {
			if x == dst {
				g[x] = 0
				continue
			}
			bestPort, bestScore, goDown := int8(-1), inf, dDown[x] < inf
			for p := 1; p < t.ports; p++ {
				nb, ok := t.liveNeighbor(x, topology.Port(p))
				if !ok {
					continue
				}
				if goDown {
					if up(x, nb) || dDown[nb] >= inf {
						continue
					}
					if dDown[nb]+1 < bestScore {
						bestScore, bestPort = dDown[nb]+1, int8(p)
					}
				} else {
					if !up(x, nb) {
						continue
					}
					if g[nb]+1 < bestScore {
						bestScore, bestPort = g[nb]+1, int8(p)
					}
				}
			}
			if bestPort < 0 {
				// Unreachable from a connected live graph is impossible;
				// keep the loud failure for future topology bugs.
				panic(fmt.Sprintf("routing: no up*/down* hop from %d to %d", x, dst))
			}
			g[x] = bestScore
			t.next[base+int(x)] = bestPort
		}
	}
	return t, nil
}

// less orders live nodes by (level, id).
func less(level []int32, a, b topology.NodeID) bool {
	return level[a] < level[b] || (level[a] == level[b] && a < b)
}

// liveNeighbor returns the neighbor through port p when the link and both
// endpoints are live.
func (t *faultTables) liveNeighbor(cur topology.NodeID, p topology.Port) (topology.NodeID, bool) {
	if t.plan.LinkDead(cur, p) {
		return topology.InvalidNode, false
	}
	nb, ok := t.m.Neighbor(cur, p)
	if !ok || !t.live[nb] || !t.live[cur] {
		return topology.InvalidNode, false
	}
	return nb, ok
}

// faultDuato is Duato-style fully adaptive routing over the degraded
// graph: adaptive VCs on distance-reducing live ports, escape VCs on the
// up*/down* port.
type faultDuato struct {
	t   *faultTables
	cls Class
}

// NewFaultDuato returns adaptive routing around the failures of plan. It
// returns a descriptive error when the fault plan disconnects the live
// network (no escape subnetwork exists). It panics without escape VCs,
// like NewDuato; unlike the healthy torus variant a single escape VC
// suffices, since up*/down* needs no dateline split.
func NewFaultDuato(m *topology.Mesh, cls Class, plan *fault.Plan) (Algorithm, error) {
	if cls.EscapeVCs < 1 {
		panic("routing: fault-aware Duato routing requires at least one escape VC")
	}
	t, err := newFaultTables(m, plan)
	if err != nil {
		return nil, err
	}
	return &faultDuato{t: t, cls: cls}, nil
}

func (a *faultDuato) Name() string            { return "fault-duato" }
func (a *faultDuato) Deterministic() bool     { return false }
func (a *faultDuato) PositionDependent() bool { return true }

// faultEjectSet is the eject candidate for fault-aware routing: unlike
// the healthy ejectSet it also carries the escape mask, so a message
// committed to the escape class (router escape-commit discipline) can
// still claim a local-port VC and leave the network.
func faultEjectSet(cls Class) flow.RouteSet {
	var r flow.RouteSet
	r.Add(flow.Candidate{
		Port:     topology.PortLocal,
		Adaptive: flow.MaskAll(cls.NumVCs),
		Escape:   cls.EscapeMask(),
	})
	return r
}

func (a *faultDuato) Route(cur, dst topology.NodeID, dateline uint8) flow.RouteSet {
	if cur == dst {
		return faultEjectSet(a.cls)
	}
	base := int(dst) * a.t.n
	var r flow.RouteSet
	esc := a.t.next[base+int(cur)]
	if esc < 0 {
		// Unroutable pair (a dead endpoint): empty set. Traffic filtering
		// keeps such pairs out of the network; table builders still
		// enumerate them.
		return r
	}
	// The escape candidate leads; it may also carry the adaptive mask when
	// the up*/down* hop happens to be minimal.
	d := a.t.dist[base+int(cur)]
	adaptive := a.cls.AdaptiveMask()
	ec := flow.Candidate{Port: topology.Port(esc), Escape: a.cls.EscapeMask()}
	if nb, ok := a.t.liveNeighbor(cur, topology.Port(esc)); ok && a.t.dist[base+int(nb)] == d-1 {
		ec.Adaptive = adaptive
	}
	r.Add(ec)
	for p := 1; p < a.t.ports && r.Len() < flow.MaxCandidates; p++ {
		if int8(p) == esc {
			continue
		}
		nb, ok := a.t.liveNeighbor(cur, topology.Port(p))
		if !ok || a.t.dist[base+int(nb)] != d-1 {
			continue
		}
		r.Add(flow.Candidate{Port: topology.Port(p), Adaptive: adaptive})
	}
	return r
}

// faultDimOrder is the deterministic fault baseline: the pure up*/down*
// path on every VC (the function is deadlock-free on its own, so no VC
// class split is needed, mirroring how XY uses EscapeVCs=0).
type faultDimOrder struct {
	t   *faultTables
	cls Class
}

// NewFaultDimOrder returns deterministic up*/down* routing around the
// failures of plan, with the same disconnection error as NewFaultDuato.
func NewFaultDimOrder(m *topology.Mesh, cls Class, plan *fault.Plan) (Algorithm, error) {
	t, err := newFaultTables(m, plan)
	if err != nil {
		return nil, err
	}
	return &faultDimOrder{t: t, cls: cls}, nil
}

func (a *faultDimOrder) Name() string            { return "fault-updown" }
func (a *faultDimOrder) Deterministic() bool     { return true }
func (a *faultDimOrder) PositionDependent() bool { return true }

func (a *faultDimOrder) Route(cur, dst topology.NodeID, dateline uint8) flow.RouteSet {
	if cur == dst {
		return ejectSet(a.cls)
	}
	var r flow.RouteSet
	p := a.t.next[int(dst)*a.t.n+int(cur)]
	if p < 0 {
		return r
	}
	r.Add(flow.Candidate{Port: topology.Port(p), Adaptive: flow.MaskAll(a.cls.NumVCs)})
	return r
}
