// Package routing implements the routing algorithms evaluated in the LAPSES
// paper as pure functions from (current node, destination) to a set of
// candidate output ports with virtual-channel classes.
//
// The paper uses Duato's fully adaptive algorithm as its running example:
// adaptive VCs may be claimed on any minimal (productive) direction while a
// reserved escape VC follows deadlock-free dimension-order routing. The
// deterministic baseline is dimension-order XY. Turn-model algorithms
// (North-Last, West-First, Negative-First) are included because section 5.2
// demonstrates that the economical-storage table can be programmed with any
// of them (Fig. 7).
//
// Algorithms are evaluated lazily by routers, eagerly by the table builders
// in package table, and re-evaluated for neighboring routers by the
// look-ahead machinery; all three must agree, which the tests verify.
package routing

import (
	"fmt"

	"lapses/internal/flow"
	"lapses/internal/topology"
)

// Class describes how the virtual channels of every physical channel are
// partitioned between Duato-style adaptive channels and escape channels.
// EscapeVCs are the lowest-numbered VCs. A deterministic algorithm that is
// deadlock-free on its own (XY, turn models on meshes) uses EscapeVCs=0 and
// treats every VC as freely usable.
type Class struct {
	NumVCs    int
	EscapeVCs int
}

// AdaptiveMask returns the mask of freely usable adaptive VCs.
func (c Class) AdaptiveMask() flow.VCMask {
	return flow.MaskAll(c.NumVCs) &^ flow.MaskAll(c.EscapeVCs)
}

// EscapeMask returns the mask of all escape VCs.
func (c Class) EscapeMask() flow.VCMask { return flow.MaskAll(c.EscapeVCs) }

// EscapeLowMask returns the escape VCs used before crossing a torus
// dateline (the lower half of the escape class; all of it on a mesh).
func (c Class) EscapeLowMask() flow.VCMask {
	if c.EscapeVCs < 2 {
		return c.EscapeMask()
	}
	return flow.MaskAll(c.EscapeVCs / 2)
}

// EscapeHighMask returns the escape VCs used after crossing a torus
// dateline.
func (c Class) EscapeHighMask() flow.VCMask {
	if c.EscapeVCs < 2 {
		return c.EscapeMask()
	}
	return c.EscapeMask() &^ c.EscapeLowMask()
}

// Validate reports configuration errors.
func (c Class) Validate() error {
	if c.NumVCs < 1 || c.NumVCs > 16 {
		return fmt.Errorf("routing: NumVCs %d out of range [1,16]", c.NumVCs)
	}
	if c.EscapeVCs < 0 || c.EscapeVCs > c.NumVCs {
		return fmt.Errorf("routing: EscapeVCs %d out of range [0,%d]", c.EscapeVCs, c.NumVCs)
	}
	return nil
}

// Algorithm is a routing function. Route must be a pure function so that
// tables can be programmed from it and look-ahead routers can evaluate it
// for their neighbors.
//
// The dateline argument is a per-dimension bitmask recording whether the
// message has crossed the wraparound link of each torus dimension; mesh
// algorithms ignore it. Implementations must return at least one candidate
// for every (cur, dst) pair, with the local port as the single candidate
// when cur == dst.
type Algorithm interface {
	Name() string
	Route(cur, dst topology.NodeID, dateline uint8) flow.RouteSet
	// Deterministic reports whether Route always returns one candidate.
	Deterministic() bool
}

// ejectSet is the route set delivered messages use: the local port on any VC.
func ejectSet(cls Class) flow.RouteSet {
	var r flow.RouteSet
	r.Add(flow.Candidate{Port: topology.PortLocal, Adaptive: flow.MaskAll(cls.NumVCs)})
	return r
}

// escapeVCMask returns the escape mask for one dimension-order hop in
// dimension d. On a torus the dateline discipline applies: hops strictly
// before the wraparound use the low escape class; the wrap-crossing hop
// itself and every hop after it use the high class. This keeps each ring's
// escape dependency chain acyclic (the wrap link never appears in the low
// class, and no minimal route crosses a dateline twice).
func escapeVCMask(m *topology.Mesh, cls Class, cur topology.NodeID, d, sign int, dateline uint8) flow.VCMask {
	if !m.Wrap() {
		return cls.EscapeMask()
	}
	if dateline&(1<<d) != 0 || wrapCrossing(m, cur, d, sign) {
		return cls.EscapeHighMask()
	}
	return cls.EscapeLowMask()
}

// wrapCrossing reports whether a hop from cur along dimension d in the
// given direction traverses the wraparound link.
func wrapCrossing(m *topology.Mesh, cur topology.NodeID, d, sign int) bool {
	x := m.CoordAxis(cur, d)
	return (sign > 0 && x == m.Radix(d)-1) || (sign < 0 && x == 0)
}

// portToward returns the directional port along dimension d with the given
// nonzero sign.
func portToward(d, sign int) topology.Port {
	if sign > 0 {
		return topology.PortPlus(d)
	}
	return topology.PortMinus(d)
}

// dimOrder implements dimension-order routing over a configurable dimension
// permutation. With order [0 1] on a 2-D mesh it is the paper's XY
// baseline; [1 0] is YX.
type dimOrder struct {
	m     *topology.Mesh
	cls   Class
	order []int
	name  string
}

// NewDimOrder returns deterministic dimension-order routing that resolves
// dimensions in the given order (nil means 0,1,2,...). On a torus the VC
// class is split around the dateline to stay deadlock-free.
func NewDimOrder(m *topology.Mesh, cls Class, order []int) Algorithm {
	ord := normalizeOrder(m, order)
	name := "xy"
	if len(ord) >= 2 && ord[0] == 1 && ord[1] == 0 {
		name = "yx"
	}
	return &dimOrder{m: m, cls: cls, order: ord, name: name}
}

func normalizeOrder(m *topology.Mesh, order []int) []int {
	if order == nil {
		order = make([]int, m.NumDims())
		for i := range order {
			order[i] = i
		}
		return order
	}
	if len(order) != m.NumDims() {
		panic("routing: dimension order length mismatch")
	}
	seen := make([]bool, m.NumDims())
	for _, d := range order {
		if d < 0 || d >= m.NumDims() || seen[d] {
			panic("routing: dimension order is not a permutation")
		}
		seen[d] = true
	}
	out := make([]int, len(order))
	copy(out, order)
	return out
}

func (a *dimOrder) Name() string        { return a.name }
func (a *dimOrder) Deterministic() bool { return true }

func (a *dimOrder) Route(cur, dst topology.NodeID, dateline uint8) flow.RouteSet {
	if cur == dst {
		return ejectSet(a.cls)
	}
	var r flow.RouteSet
	for _, d := range a.order {
		s := a.m.OffsetSign(cur, dst, d)
		if s == 0 {
			continue
		}
		mask := flow.MaskAll(a.cls.NumVCs)
		if a.m.Wrap() {
			// Dateline discipline on a torus: the whole VC set is
			// split in half, low VCs strictly before the wrap
			// crossing, high VCs on and after it.
			low := flow.MaskAll(a.cls.NumVCs / 2)
			if dateline&(1<<d) != 0 || wrapCrossing(a.m, cur, d, s) {
				mask = flow.MaskAll(a.cls.NumVCs) &^ low
			} else {
				mask = low
			}
		}
		r.Add(flow.Candidate{Port: portToward(d, s), Adaptive: mask})
		return r
	}
	panic("routing: dimension order found no offset for distinct nodes")
}

// duato implements Duato's fully adaptive routing: every minimal direction
// is a candidate on the adaptive VCs, and the dimension-order port
// additionally carries the escape class.
type duato struct {
	m   *topology.Mesh
	cls Class
}

// NewDuato returns Duato's fully adaptive minimal routing. It panics if the
// class has no escape VCs, or fewer than two on a torus, because the
// resulting network could deadlock.
func NewDuato(m *topology.Mesh, cls Class) Algorithm {
	if cls.EscapeVCs < 1 {
		panic("routing: Duato routing requires at least one escape VC")
	}
	if m.Wrap() && cls.EscapeVCs < 2 {
		panic("routing: Duato routing on a torus requires two escape VCs")
	}
	return &duato{m: m, cls: cls}
}

func (a *duato) Name() string        { return "duato" }
func (a *duato) Deterministic() bool { return false }

func (a *duato) Route(cur, dst topology.NodeID, dateline uint8) flow.RouteSet {
	if cur == dst {
		return ejectSet(a.cls)
	}
	var r flow.RouteSet
	adaptive := a.cls.AdaptiveMask()
	escapeDone := false
	for d := 0; d < a.m.NumDims(); d++ {
		s := a.m.OffsetSign(cur, dst, d)
		if s == 0 {
			continue
		}
		c := flow.Candidate{Port: portToward(d, s), Adaptive: adaptive}
		if !escapeDone {
			// The first unresolved dimension is the dimension-order
			// (escape) direction.
			c.Escape = escapeVCMask(a.m, a.cls, cur, d, s, dateline)
			escapeDone = true
		}
		r.Add(c)
	}
	return r
}

// turnModel implements the Glass/Ni partially adaptive turn-model
// algorithms for 2-D meshes. They are deadlock-free without VC classes, so
// every VC is freely usable.
type turnModel struct {
	m    *topology.Mesh
	cls  Class
	kind string
}

// NewNorthLast returns North-Last routing (Fig. 7's example): a message may
// only travel north (+Y) once no other direction remains, so while the X
// offset is unresolved and the destination lies north, only the X direction
// is permitted.
func NewNorthLast(m *topology.Mesh, cls Class) Algorithm {
	return newTurnModel(m, cls, "north-last")
}

// NewWestFirst returns West-First routing: all west (-X) hops must be taken
// before any other direction.
func NewWestFirst(m *topology.Mesh, cls Class) Algorithm {
	return newTurnModel(m, cls, "west-first")
}

// NewNegativeFirst returns Negative-First routing: all -X/-Y hops must
// precede any positive hop.
func NewNegativeFirst(m *topology.Mesh, cls Class) Algorithm {
	return newTurnModel(m, cls, "negative-first")
}

func newTurnModel(m *topology.Mesh, cls Class, kind string) Algorithm {
	if m.NumDims() != 2 || m.Wrap() {
		panic("routing: turn-model algorithms are defined for 2-D meshes")
	}
	return &turnModel{m: m, cls: cls, kind: kind}
}

func (a *turnModel) Name() string        { return a.kind }
func (a *turnModel) Deterministic() bool { return false }

func (a *turnModel) Route(cur, dst topology.NodeID, dateline uint8) flow.RouteSet {
	if cur == dst {
		return ejectSet(a.cls)
	}
	sx := a.m.OffsetSign(cur, dst, 0)
	sy := a.m.OffsetSign(cur, dst, 1)
	all := flow.MaskAll(a.cls.NumVCs)
	var r flow.RouteSet
	add := func(p topology.Port) { r.Add(flow.Candidate{Port: p, Adaptive: all}) }

	switch a.kind {
	case "north-last":
		// +Y may be used only when it is the sole productive direction.
		if sx != 0 && sy > 0 {
			add(portToward(0, sx))
			return r
		}
		if sx != 0 {
			add(portToward(0, sx))
		}
		if sy != 0 {
			add(portToward(1, sy))
		}
	case "west-first":
		// -X hops come first and exclusively.
		if sx < 0 {
			add(portToward(0, sx))
			return r
		}
		if sx > 0 {
			add(portToward(0, sx))
		}
		if sy != 0 {
			add(portToward(1, sy))
		}
	case "negative-first":
		// While any negative hop remains, only negative directions.
		if sx < 0 || sy < 0 {
			if sx < 0 {
				add(portToward(0, -1))
			}
			if sy < 0 {
				add(portToward(1, -1))
			}
			return r
		}
		if sx > 0 {
			add(portToward(0, 1))
		}
		if sy > 0 {
			add(portToward(1, 1))
		}
	default:
		panic("routing: unknown turn model " + a.kind)
	}
	return r
}
