package router

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lapses/internal/flow"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/topology"
)

// Property-based fuzz: throw random message mixes at one router and check
// the invariants no schedule may violate:
//
//  1. conservation — every flit fed in leaves (sent or delivered);
//  2. per-message ordering — flits of one message leave in sequence;
//  3. wormhole integrity — on one (port, VC), messages never interleave;
//  4. cleanup — all VC state drains back to idle.
func TestQuickRouterInvariants(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	alg := routing.NewDuato(m, cls)
	node := m.ID(topology.Coord{1, 1})

	scenario := func(seed int64, laRaw bool) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{NumVCs: 4, BufDepth: 4 + rng.Intn(8), OutDepth: 1 + rng.Intn(4), LookAhead: laRaw}
		sel := selection.New(selection.Kind(rng.Intn(5)), seed)
		h := &harness{r: New(node, m, cfg, nil, sel)}
		h.r.tbl = nil // replaced below
		tbl := newTestTable(m, alg, node)
		h.r.tbl = tbl
		h.r.SetFabric(
			func(_ topology.NodeID, p topology.Port, v flow.VCID, fl flow.Flit, now int64) {
				h.events = append(h.events, event{kind: "send", port: p, vc: v, fl: fl, at: now})
				// Return the credit after a wire round trip.
				creditAt := now + 4
				pending = append(pending, credit{at: creditAt, port: p, vc: v})
			},
			func(_ topology.NodeID, p topology.Port, v flow.VCID, now int64) {},
			func(fl flow.Flit, now int64) {
				h.events = append(h.events, event{kind: "deliver", fl: fl, at: now})
			},
		)

		// Generate 1-6 random messages on distinct input VCs.
		type feed struct {
			port topology.Port
			vc   flow.VCID
			fl   []flow.Flit
			next int
		}
		var feeds []feed
		used := map[int]bool{}
		nMsgs := 1 + rng.Intn(6)
		for i := 0; i < nMsgs; i++ {
			// Arrival ports: the four directions (not local; the NI
			// feeds local VCs, same mechanics).
			port := topology.Port(1 + rng.Intn(4))
			vc := flow.VCID(rng.Intn(4))
			key := int(port)*4 + int(vc)
			if used[key] {
				continue
			}
			used[key] = true
			dst := topology.NodeID(rng.Intn(m.N()))
			length := 1 + rng.Intn(8)
			msg := &flow.Message{ID: flow.MessageID(i), Src: 0, Dst: dst, Length: length}
			var fls []flow.Flit
			for s := 0; s < length; s++ {
				fl := flow.Flit{Msg: msg, Seq: int32(s), Type: flow.TypeFor(s, length)}
				if fl.Type.IsHead() && cfg.LookAhead {
					msg.Route = alg.Route(node, dst, 0)
				}
				fls = append(fls, fl)
			}
			feeds = append(feeds, feed{port: port, vc: vc, fl: fls})
		}

		total := 0
		for _, f := range feeds {
			total += len(f.fl)
		}
		// Drive: each cycle feed at most one flit per stream when the
		// buffer has space (mimicking upstream credit flow), then tick.
		for now := int64(0); now < 800; now++ {
			for i := range feeds {
				f := &feeds[i]
				if f.next < len(f.fl) && h.r.InputSpace(f.port, f.vc) > 0 && rng.Intn(3) > 0 {
					h.r.EnqueueFlit(f.port, f.vc, f.fl[f.next], now)
					f.next++
				}
			}
			for len(pending) > 0 && pending[0].at <= now {
				h.r.AcceptCredit(pending[0].port, pending[0].vc)
				pending = pending[1:]
			}
			h.r.Tick(now)
		}
		pending = nil

		// 1. Conservation.
		out := 0
		for _, e := range h.events {
			if e.kind == "send" || e.kind == "deliver" {
				out++
			}
		}
		if out != total {
			t.Logf("seed %d: out %d != in %d", seed, out, total)
			return false
		}
		// 2. Ordering per message.
		seq := map[flow.MessageID]int32{}
		for _, e := range h.events {
			if e.kind != "send" && e.kind != "deliver" {
				continue
			}
			if e.fl.Seq != seq[e.fl.Msg.ID] {
				t.Logf("seed %d: msg %d out of order", seed, e.fl.Msg.ID)
				return false
			}
			seq[e.fl.Msg.ID]++
		}
		// 3. Wormhole integrity per (port, vc).
		owner := map[int]flow.MessageID{}
		for _, e := range h.events {
			if e.kind != "send" {
				continue
			}
			key := int(e.port)*16 + int(e.vc)
			if cur, ok := owner[key]; ok && cur != e.fl.Msg.ID {
				t.Logf("seed %d: interleaving on port %d vc %d", seed, e.port, e.vc)
				return false
			}
			owner[key] = e.fl.Msg.ID
			if e.fl.Type.IsTail() {
				delete(owner, key)
			}
		}
		// 4. Cleanup.
		if h.r.Occupancy() != 0 {
			t.Logf("seed %d: occupancy %d", seed, h.r.Occupancy())
			return false
		}
		for p := topology.Port(0); int(p) < m.NumPorts(); p++ {
			if h.r.BusyVCs(p) != 0 {
				t.Logf("seed %d: port %d busy VCs %d", seed, p, h.r.BusyVCs(p))
				return false
			}
		}
		return true
	}
	if err := quick.Check(scenario, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// credit is a pending credit return in the fuzz harness.
type credit struct {
	at   int64
	port topology.Port
	vc   flow.VCID
}

var pending []credit

// newTestTable builds a full table (helper for fuzz setup).
func newTestTable(m *topology.Mesh, alg routing.Algorithm, node topology.NodeID) tableIface {
	return tblWrap{m: m, alg: alg, node: node}
}

// tableIface mirrors table.Table without importing it (the fuzz test
// builds routes straight from the algorithm).
type tableIface = interface {
	Name() string
	Node() topology.NodeID
	Lookup(dst topology.NodeID, dateline uint8) flow.RouteSet
	LookupAt(p topology.Port, dst topology.NodeID, dateline uint8) flow.RouteSet
	Entries() int
}

type tblWrap struct {
	m    *topology.Mesh
	alg  routing.Algorithm
	node topology.NodeID
}

func (t tblWrap) Name() string          { return "fuzz" }
func (t tblWrap) Node() topology.NodeID { return t.node }
func (t tblWrap) Entries() int          { return 0 }
func (t tblWrap) Lookup(dst topology.NodeID, dl uint8) flow.RouteSet {
	return t.alg.Route(t.node, dst, dl)
}
func (t tblWrap) LookupAt(p topology.Port, dst topology.NodeID, dl uint8) flow.RouteSet {
	nb, ok := t.m.Neighbor(t.node, p)
	if !ok {
		panic("fuzz: no neighbor")
	}
	return t.alg.Route(nb, dst, dl)
}
