package router

import (
	"fmt"

	"lapses/internal/flow"
	"lapses/internal/table"
	"lapses/internal/topology"
)

// This file is the router's half of the fault-schedule machinery: the
// epoch transition the network applies at the shard barrier when a link
// or router fails or heals mid-run. Nothing here runs on the per-cycle
// path — a transition walks the router's full state once, which is cheap
// against the thousands of cycles between transitions.

// SetTable swaps the routing table for the new epoch's, rebuilt over the
// live subgraph. Callers must follow with Reroute so state computed from
// the old table is refreshed.
func (r *Router) SetTable(t table.Table) { r.tbl = t }

// SetDeadPorts installs the set of output ports (bit p set) whose link is
// failed in the new epoch. The SA stage and express admission skip dead
// candidates, bounding the damage a one-hop-stale header can do to a
// stall rather than a send into a void.
func (r *Router) SetDeadPorts(mask uint32) { r.deadPorts = mask }

// ScanMessages calls fn once per (message, state site) for every message
// holding state in this router — buffered flits, pipeline state, output
// claims, boxed flits — with ports the bitmask of physical ports that
// state touches. The fault purge uses it to find the victims of a
// topology transition; a message may be reported more than once.
func (r *Router) ScanMessages(fn func(ports uint32, m *flow.Message)) {
	for i := range r.in {
		ivc := &r.in[i]
		bit := uint32(1) << uint(r.portOf[i])
		ivc.buf.each(func(fl *flow.Flit) { fn(bit, fl.Msg) })
		if ivc.phase != phaseIdle && ivc.msg != nil {
			ports := bit
			if ivc.phase == phaseActive || ivc.phase == phaseExpress {
				ports |= 1 << uint(ivc.outPort)
			}
			fn(ports, ivc.msg)
		}
	}
	for j := range r.out {
		bit := uint32(1) << uint(r.portOf[j])
		r.out[j].box.each(func(fl *flow.Flit) { fn(bit, fl.Msg) })
	}
}

// PurgeMessages removes every flit and claim of the messages victim
// reports, returning the number of flits dropped from this router's
// buffers. Non-victim worms queued behind a purged one restart their
// header pipeline at cycle now. Express worm-event claims (owner ==
// expressOwner with no per-flit input VC) are left in place: their
// deferred ReleaseExpress is already scheduled and will free them.
func (r *Router) PurgeMessages(victim func(*flow.Message) bool, now int64) int {
	dropped := 0
	for i := range r.in {
		ivc := &r.in[i]
		n := ivc.buf.removeIf(victim)
		dropped += n
		r.occupancy -= n
		reset := false
		if ivc.phase != phaseIdle && ivc.msg != nil && victim(ivc.msg) {
			reset = true
			if ivc.phase == phaseExpress {
				// A per-flit express transit schedules its release only at
				// the tail, which will never arrive; free the claim here.
				ovc := &r.out[ivc.outIdx]
				if ovc.owner != expressOwner {
					panic(fmt.Sprintf("router %d: express purge of unclaimed vc", r.id))
				}
				ovc.owner = -1
				r.meta[ivc.outPort].busyVCs--
				if ivc.outPort != topology.PortLocal {
					r.expressOut[ivc.outPort]--
				}
			}
			ivc.phase = phaseIdle
			ivc.route = flow.RouteSet{}
			ivc.msg = nil
			r.actRC &^= 1 << i
			r.actSA &^= 1 << i
			r.actXB &^= 1 << i
		}
		if reset && !ivc.buf.empty() {
			// A surviving worm was queued behind the purged one: restart
			// its header.
			hdr := ivc.buf.peek()
			if !hdr.Type.IsHead() {
				panic(fmt.Sprintf("router %d: purge left a non-head flit at a buffer front", r.id))
			}
			r.startHeader(i, ivc, *hdr, now)
		}
	}
	for j := range r.out {
		ovc := &r.out[j]
		n := ovc.box.removeIf(victim)
		dropped += n
		r.occupancy -= n
		if n > 0 {
			if ovc.box.empty() {
				r.boxed &^= 1 << j
			}
			r.boxFull &^= 1 << j
		}
		// Reconcile ownership: a pipelined claim is valid only while its
		// input VC is still streaming the worm (phaseActive on this output
		// VC) or the already-traversed tail waits in the box. Purged owners
		// fail both tests.
		if o := ovc.owner; o >= 0 && o != expressOwner {
			live := r.in[o].phase == phaseActive && int(r.in[o].outIdx) == j
			if !live {
				tailBoxed := false
				ovc.box.each(func(fl *flow.Flit) {
					if fl.Type.IsTail() {
						tailBoxed = true
					}
				})
				if !tailBoxed {
					ovc.owner = -1
					r.meta[r.portOf[j]].busyVCs--
				}
			}
		}
	}
	return dropped
}

// Reroute refreshes every piece of routing state computed from the
// previous epoch's table. Headers waiting for arbitration get fresh
// candidates from this router's new table; in look-ahead mode, queued
// headers not yet in the pipeline and boxed headers about to leave carry
// candidates for a neighbor, which nextRoute computes from that
// neighbor's new table. Messages already streaming (active or express)
// keep their claimed output: dead claims were purged, and a live stale
// choice is merely suboptimal for its one remaining hop.
func (r *Router) Reroute(nextRoute func(p topology.Port, m *flow.Message) flow.RouteSet) {
	for i := range r.in {
		ivc := &r.in[i]
		if ivc.phase == phaseWaitSA && ivc.msg != nil {
			ivc.route = r.tbl.Lookup(ivc.msg.Dst, ivc.dateline)
		}
		if r.cfg.LookAhead {
			ivc.buf.each(func(fl *flow.Flit) {
				if fl.Type.IsHead() && fl.Msg != ivc.msg {
					fl.Msg.Route = r.tbl.Lookup(fl.Msg.Dst, fl.Msg.Dateline)
				}
			})
		}
	}
	if !r.cfg.LookAhead {
		return
	}
	for j := range r.out {
		p := topology.Port(r.portOf[j])
		if p == topology.PortLocal {
			continue
		}
		r.out[j].box.each(func(fl *flow.Flit) {
			if fl.Type.IsHead() {
				fl.Msg.Route = nextRoute(p, fl.Msg)
			}
		})
	}
}

// BufferedFlits returns the number of flits buffered in input (port, vc);
// the credit recomputation after a purge reads it.
func (r *Router) BufferedFlits(p topology.Port, v flow.VCID) int {
	return r.in[r.inIdx(p, v)].buf.len()
}

// SetCredits overwrites the credit count of output (port, vc). The
// network recomputes every counter from global state after a purge — the
// incremental protocol cannot account for destroyed flits.
func (r *Router) SetCredits(p topology.Port, v flow.VCID, n int) {
	if n < 0 || n > r.cfg.BufDepth {
		panic(fmt.Sprintf("router %d: recomputed credits %d for port %d vc %d outside [0,%d]",
			r.id, n, p, v, r.cfg.BufDepth))
	}
	r.out[r.inIdx(p, v)].credits = n
}
