package router

import (
	"testing"

	"lapses/internal/flow"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/topology"
)

// Virtual cut-through admission: a header may not claim an output VC until
// the downstream buffer can hold the entire message.
func TestVCTAdmissionStalls(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 2}, nil)
	node := m.ID(topology.Coord{1, 1})
	cfg := Config{NumVCs: 2, BufDepth: 6, OutDepth: 2, CutThrough: true}
	h := newHarness(t, m, node, cfg, alg, selection.New(selection.StaticXY, 0))
	dst := m.ID(topology.Coord{2, 1})

	// Drain 3 of the 6 credits of +X VC0 and VC1 with two short
	// messages whose credits we never return.
	for v := 0; v < 2; v++ {
		blk := mkMsg(int64(v+1), 0, dst, 3)
		for i := 0; i < 3; i++ {
			h.r.EnqueueFlit(topology.PortMinus(0), flow.VCID(v), mkFlit(blk, i), int64(i))
		}
	}
	h.run(0, 20)
	if n := len(h.sends()); n != 6 {
		t.Fatalf("setup sends = %d want 6", n)
	}
	// Both +X VCs now hold 3 credits. A 4-flit message must stall...
	probe := mkMsg(3, 0, dst, 4)
	for i := 0; i < 4; i++ {
		h.r.EnqueueFlit(topology.PortMinus(1), 0, mkFlit(probe, i), int64(21+i))
	}
	h.run(21, 40)
	if n := len(h.sends()); n != 6 {
		t.Fatalf("VCT admitted with insufficient credits: sends = %d", n)
	}
	// ...until credits return.
	vc := h.sends()[0].vc
	h.r.AcceptCredit(topology.PortPlus(0), vc)
	h.run(41, 60)
	if n := len(h.sends()); n != 10 {
		t.Fatalf("VCT did not admit after credits returned: sends = %d want 10", n)
	}
}

// Wormhole switching (the baseline) admits the same message immediately.
func TestWormholeAdmitsWithPartialCredits(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 2}, nil)
	node := m.ID(topology.Coord{1, 1})
	cfg := Config{NumVCs: 2, BufDepth: 6, OutDepth: 2, CutThrough: false}
	h := newHarness(t, m, node, cfg, alg, selection.New(selection.StaticXY, 0))
	dst := m.ID(topology.Coord{2, 1})
	for v := 0; v < 2; v++ {
		blk := mkMsg(int64(v+1), 0, dst, 3)
		for i := 0; i < 3; i++ {
			h.r.EnqueueFlit(topology.PortMinus(0), flow.VCID(v), mkFlit(blk, i), int64(i))
		}
	}
	h.run(0, 20)
	probe := mkMsg(3, 0, dst, 4)
	for i := 0; i < 4; i++ {
		h.r.EnqueueFlit(topology.PortMinus(1), 0, mkFlit(probe, i), int64(21+i))
	}
	h.run(21, 45)
	// Wormhole streams the probe into the 3 remaining credits.
	if n := len(h.sends()); n != 9 {
		t.Fatalf("wormhole sends = %d want 9 (6 setup + 3 of probe)", n)
	}
}

// VCT with a message longer than the buffer must panic loudly rather than
// deadlock silently.
func TestVCTOversizeMessagePanics(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 2}, nil)
	node := m.ID(topology.Coord{1, 1})
	cfg := Config{NumVCs: 2, BufDepth: 4, OutDepth: 2, CutThrough: true}
	h := newHarness(t, m, node, cfg, alg, selection.New(selection.StaticXY, 0))
	msg := mkMsg(1, 0, m.ID(topology.Coord{2, 1}), 9)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(msg, 0), 0)
	defer func() {
		if recover() == nil {
			t.Error("expected oversize panic")
		}
	}()
	h.run(0, 10)
}
