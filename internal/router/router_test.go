package router

import (
	"testing"

	"lapses/internal/flow"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
)

// event records one fabric callback.
type event struct {
	kind string // "send", "credit", "deliver"
	port topology.Port
	vc   flow.VCID
	fl   flow.Flit
	at   int64
}

// harness drives one router with a recording fabric.
type harness struct {
	r      *Router
	events []event
}

func newHarness(t *testing.T, m *topology.Mesh, node topology.NodeID, cfg Config, alg routing.Algorithm, sel selection.Selector) *harness {
	t.Helper()
	cls := routing.Class{NumVCs: cfg.NumVCs, EscapeVCs: 1}
	tbl := table.NewFull(m, alg, node)
	h := &harness{r: New(node, m, cfg, tbl, sel)}
	_ = cls
	h.r.SetFabric(
		func(from topology.NodeID, p topology.Port, v flow.VCID, fl flow.Flit, now int64) {
			h.events = append(h.events, event{kind: "send", port: p, vc: v, fl: fl, at: now})
		},
		func(from topology.NodeID, p topology.Port, v flow.VCID, now int64) {
			h.events = append(h.events, event{kind: "credit", port: p, vc: v, at: now})
		},
		func(fl flow.Flit, now int64) {
			h.events = append(h.events, event{kind: "deliver", fl: fl, at: now})
		},
	)
	return h
}

func (h *harness) run(from, to int64) {
	for c := from; c <= to; c++ {
		h.r.Tick(c)
	}
}

func (h *harness) sends() []event {
	var out []event
	for _, e := range h.events {
		if e.kind == "send" {
			out = append(out, e)
		}
	}
	return out
}

func (h *harness) delivered() []event {
	var out []event
	for _, e := range h.events {
		if e.kind == "deliver" {
			out = append(out, e)
		}
	}
	return out
}

func mkMsg(id int64, src, dst topology.NodeID, length int) *flow.Message {
	return &flow.Message{ID: flow.MessageID(id), Src: src, Dst: dst, Length: length}
}

func mkFlit(msg *flow.Message, seq int) flow.Flit {
	return flow.Flit{Msg: msg, Seq: int32(seq), Type: flow.TypeFor(seq, msg.Length)}
}

var defCfg = Config{NumVCs: 4, BufDepth: 20, OutDepth: 4}

// The PROUD pipeline: a header enqueued at cycle 0 must hit the wire at
// cycle 4 (IB=0, RC=1, SA=2, XB=3, OUT=4): 5 router stages.
func TestPROUDHeaderTiming(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	h := newHarness(t, m, m.ID(topology.Coord{1, 1}), defCfg, alg, selection.New(selection.StaticXY, 0))
	msg := mkMsg(1, 0, m.ID(topology.Coord{2, 1}), 1)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(msg, 0), 0)
	h.run(0, 10)
	s := h.sends()
	if len(s) != 1 {
		t.Fatalf("sends = %d want 1", len(s))
	}
	if s[0].at != 4 {
		t.Errorf("PROUD header sent at %d want 4", s[0].at)
	}
	if s[0].port != topology.PortPlus(0) {
		t.Errorf("sent out port %d want +X", s[0].port)
	}
}

// The LA-PROUD pipeline skips the RC stage: wire at cycle 3.
func TestLAPROUDHeaderTiming(t *testing.T) {
	m := topology.NewMesh(3, 3)
	cls := routing.Class{NumVCs: 4}
	alg := routing.NewDimOrder(m, cls, nil)
	cfg := defCfg
	cfg.LookAhead = true
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, cfg, alg, selection.New(selection.StaticXY, 0))
	msg := mkMsg(1, 0, m.ID(topology.Coord{2, 1}), 1)
	fl := mkFlit(msg, 0)
	// The LA header carries the candidates valid at this router.
	msg.Route = alg.Route(node, msg.Dst, 0)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, fl, 0)
	h.run(0, 10)
	s := h.sends()
	if len(s) != 1 {
		t.Fatalf("sends = %d want 1", len(s))
	}
	if s[0].at != 3 {
		t.Errorf("LA-PROUD header sent at %d want 3", s[0].at)
	}
}

// A full message streams at one flit per cycle behind the header.
func TestWormholeStreaming(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, defCfg, alg, selection.New(selection.StaticXY, 0))
	msg := mkMsg(1, 0, m.ID(topology.Coord{2, 1}), 5)
	for i := 0; i < 5; i++ {
		h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(msg, i), int64(i))
	}
	h.run(0, 20)
	s := h.sends()
	if len(s) != 5 {
		t.Fatalf("sends = %d want 5", len(s))
	}
	for i, e := range s {
		if e.at != int64(4+i) {
			t.Errorf("flit %d sent at %d want %d", i, e.at, 4+i)
		}
		if e.fl.Seq != int32(i) {
			t.Errorf("out-of-order flit: got seq %d at position %d", e.fl.Seq, i)
		}
	}
}

// Ejection: flits to the local node are delivered, not sent.
func TestEjection(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, defCfg, alg, selection.New(selection.StaticXY, 0))
	msg := mkMsg(1, 0, node, 2)
	h.r.EnqueueFlit(topology.PortMinus(0), 1, mkFlit(msg, 0), 0)
	h.r.EnqueueFlit(topology.PortMinus(0), 1, mkFlit(msg, 1), 1)
	h.run(0, 12)
	if len(h.sends()) != 0 {
		t.Fatalf("ejecting message must not be sent on a link")
	}
	d := h.delivered()
	if len(d) != 2 {
		t.Fatalf("delivered = %d want 2", len(d))
	}
	if d[0].at != 4 || d[1].at != 5 {
		t.Errorf("delivery cycles %d,%d want 4,5", d[0].at, d[1].at)
	}
}

// Credits: each flit leaving the input buffer returns exactly one credit
// upstream, on the arrival (port, vc).
func TestCreditReturn(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, defCfg, alg, selection.New(selection.StaticXY, 0))
	msg := mkMsg(1, 0, m.ID(topology.Coord{2, 1}), 3)
	for i := 0; i < 3; i++ {
		h.r.EnqueueFlit(topology.PortMinus(0), 2, mkFlit(msg, i), int64(i))
	}
	h.run(0, 20)
	credits := 0
	for _, e := range h.events {
		if e.kind == "credit" {
			credits++
			if e.port != topology.PortMinus(0) || e.vc != 2 {
				t.Errorf("credit on (%d,%d) want (-X,2)", e.port, e.vc)
			}
		}
	}
	if credits != 3 {
		t.Errorf("credits = %d want 3", credits)
	}
}

// Without credits the output stalls: downstream buffer of 1 means only one
// flit leaves until a credit comes back.
func TestCreditStall(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	node := m.ID(topology.Coord{1, 1})
	cfg := defCfg
	cfg.BufDepth = 1 // credits per output VC = 1
	h := newHarness(t, m, node, cfg, alg, selection.New(selection.StaticXY, 0))
	msg := mkMsg(1, 0, m.ID(topology.Coord{2, 1}), 3)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(msg, 0), 0)
	h.run(0, 3)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(msg, 1), 4)
	h.run(4, 8)
	if n := len(h.sends()); n != 1 {
		t.Fatalf("sends with 1 credit = %d want 1", n)
	}
	// Return a credit: the second flit goes out.
	h.r.AcceptCredit(topology.PortPlus(0), h.sends()[0].vc)
	h.run(9, 14)
	if n := len(h.sends()); n != 2 {
		t.Fatalf("sends after credit = %d want 2", n)
	}
}

// Two messages at different input VCs contending for one output port share
// the link one flit per cycle, and wormhole worms never interleave within
// one VC.
func TestOutputContention(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, defCfg, alg, selection.New(selection.StaticXY, 0))
	dst := m.ID(topology.Coord{2, 1})
	a := mkMsg(1, 0, dst, 4)
	b := mkMsg(2, 0, dst, 4)
	for i := 0; i < 4; i++ {
		h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(a, i), int64(i))
		h.r.EnqueueFlit(topology.PortMinus(1), 0, mkFlit(b, i), int64(i))
	}
	h.run(0, 30)
	s := h.sends()
	if len(s) != 8 {
		t.Fatalf("sends = %d want 8", len(s))
	}
	// One flit per cycle on the shared physical channel.
	for i := 1; i < len(s); i++ {
		if s[i].at == s[i-1].at {
			t.Fatalf("two flits on one link in cycle %d", s[i].at)
		}
	}
	// Per message, flits stay ordered.
	seq := map[flow.MessageID]int32{}
	for _, e := range s {
		if e.fl.Seq != seq[e.fl.Msg.ID] {
			t.Fatalf("msg %d flit out of order: %d want %d", e.fl.Msg.ID, e.fl.Seq, seq[e.fl.Msg.ID])
		}
		seq[e.fl.Msg.ID]++
	}
}

// A second message queued behind a tail in the same input VC starts its
// own pipeline after the tail clears.
func TestBackToBackMessagesOneVC(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, defCfg, alg, selection.New(selection.StaticXY, 0))
	dst := m.ID(topology.Coord{2, 1})
	a := mkMsg(1, 0, dst, 2)
	b := mkMsg(2, 0, dst, 2)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(a, 0), 0)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(a, 1), 1)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(b, 0), 2)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(b, 1), 3)
	h.run(0, 30)
	s := h.sends()
	if len(s) != 4 {
		t.Fatalf("sends = %d want 4", len(s))
	}
	order := []flow.MessageID{1, 1, 2, 2}
	for i, e := range s {
		if e.fl.Msg.ID != order[i] {
			t.Fatalf("send %d from msg %d want %d", i, e.fl.Msg.ID, order[i])
		}
	}
}

// LA mode regenerates the header: the outgoing header must carry the
// candidate set valid at the next router.
func TestLAHeaderRegeneration(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	alg := routing.NewDuato(m, cls)
	cfg := defCfg
	cfg.LookAhead = true
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, cfg, alg, selection.New(selection.StaticXY, 0))
	dst := m.ID(topology.Coord{3, 3})
	msg := mkMsg(1, 0, dst, 1)
	fl := mkFlit(msg, 0)
	msg.Route = alg.Route(node, dst, 0)
	h.r.EnqueueFlit(topology.PortMinus(0), 1, fl, 0)
	h.run(0, 10)
	s := h.sends()
	if len(s) != 1 {
		t.Fatalf("sends = %d", len(s))
	}
	nb, _ := m.Neighbor(node, s[0].port)
	want := alg.Route(nb, dst, 0)
	if !s[0].fl.Msg.Route.Equal(want) {
		t.Errorf("LA header route %v want %v", s[0].fl.Msg.Route, want)
	}
}

// When every adaptive VC of the preferred port is owned, a header falls
// back to the escape VC of the dimension-order port.
func TestEscapeFallback(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cls := routing.Class{NumVCs: 2, EscapeVCs: 1}
	alg := routing.NewDuato(m, cls)
	node := m.ID(topology.Coord{1, 1})
	cfg := Config{NumVCs: 2, BufDepth: 4, OutDepth: 2}
	h := newHarness(t, m, node, cfg, alg, selection.New(selection.StaticXY, 0))
	dst := m.ID(topology.Coord{3, 3})
	// Two long messages occupy the single adaptive VC (VC 1) of both +X
	// and +Y; keep them unfinished (no tail yet).
	block1 := mkMsg(1, 0, dst, 10)
	block2 := mkMsg(2, 0, m.ID(topology.Coord{1, 3}), 10)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(block1, 0), 0)
	h.r.EnqueueFlit(topology.PortMinus(1), 0, mkFlit(block2, 0), 0)
	h.run(0, 6)
	// Now a third header: both adaptive VCs busy, must claim escape VC 0
	// on the +X (dimension-order) port.
	probe := mkMsg(3, 0, dst, 10)
	h.r.EnqueueFlit(topology.PortMinus(0), 1, mkFlit(probe, 0), 7)
	h.run(7, 14)
	found := false
	for _, e := range h.sends() {
		if e.fl.Msg.ID == 3 {
			found = true
			if e.port != topology.PortPlus(0) {
				t.Errorf("escape went out port %d want +X", e.port)
			}
		}
	}
	if !found {
		t.Fatal("blocked header never escaped")
	}
	// And it must sit on VC 0 downstream: check via BusyVCs bookkeeping.
	if h.r.BusyVCs(topology.PortPlus(0)) < 2 {
		t.Errorf("+X should have 2 busy VCs, got %d", h.r.BusyVCs(topology.PortPlus(0)))
	}
}

// PortView counters feed the traffic-sensitive selectors.
func TestPortViewCounters(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, defCfg, alg, selection.New(selection.StaticXY, 0))
	px := topology.PortPlus(0)
	if h.r.UseCount(px) != 0 || h.r.LastUsed(px) != -1 || h.r.BusyVCs(px) != 0 {
		t.Fatal("fresh router counters not zeroed")
	}
	if h.r.Credits(px) != 4*20 {
		t.Fatalf("credits = %d want 80", h.r.Credits(px))
	}
	msg := mkMsg(1, 0, m.ID(topology.Coord{2, 1}), 2)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(msg, 0), 0)
	h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(msg, 1), 1)
	h.run(0, 4)
	if h.r.BusyVCs(px) != 1 {
		t.Errorf("busy VCs mid-message = %d want 1", h.r.BusyVCs(px))
	}
	h.run(5, 12)
	if h.r.UseCount(px) != 2 {
		t.Errorf("use count = %d want 2", h.r.UseCount(px))
	}
	if h.r.LastUsed(px) != 5 {
		t.Errorf("last used = %d want 5", h.r.LastUsed(px))
	}
	if h.r.BusyVCs(px) != 0 {
		t.Errorf("busy VCs after tail = %d want 0", h.r.BusyVCs(px))
	}
	if h.r.Credits(px) != 4*20-2 {
		t.Errorf("credits = %d want 78", h.r.Credits(px))
	}
	if h.r.Occupancy() != 0 {
		t.Errorf("occupancy = %d want 0", h.r.Occupancy())
	}
}

// Buffer overflow (credit protocol violation) must panic loudly.
func TestOverflowPanics(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	cfg := Config{NumVCs: 4, BufDepth: 2, OutDepth: 2}
	h := newHarness(t, m, m.ID(topology.Coord{1, 1}), cfg, alg, selection.New(selection.StaticXY, 0))
	msg := mkMsg(1, 0, 0, 10)
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	for i := 0; i < 3; i++ {
		h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(msg, i+1), 0)
	}
}
