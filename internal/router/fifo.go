package router

import "lapses/internal/flow"

// inEntry is a buffered input flit with the cycle it becomes eligible for
// the next pipeline stage (enqueue + 1: the IB stage takes one cycle).
type inEntry struct {
	fl      flow.Flit
	readyAt int64
}

// fifo is a fixed-capacity ring buffer of flits modeling an input VC
// buffer. Zero value is unusable; call init.
type fifo struct {
	buf  []inEntry
	head int
	n    int
}

func (f *fifo) init(capacity int) { f.buf = make([]inEntry, capacity) }

func (f *fifo) empty() bool { return f.n == 0 }
func (f *fifo) full() bool  { return f.n == len(f.buf) }
func (f *fifo) len() int    { return f.n }
func (f *fifo) space() int  { return len(f.buf) - f.n }

func (f *fifo) push(fl flow.Flit, readyAt int64) {
	if f.full() {
		panic("router: fifo overflow")
	}
	i := f.head + f.n
	if i >= len(f.buf) {
		i -= len(f.buf)
	}
	f.buf[i] = inEntry{fl: fl, readyAt: readyAt}
	f.n++
}

// peek returns a pointer to the head entry so the SA stage can write the
// regenerated header fields in place.
func (f *fifo) peek() *inEntry {
	if f.empty() {
		panic("router: peek on empty fifo")
	}
	return &f.buf[f.head]
}

func (f *fifo) pop() flow.Flit {
	if f.empty() {
		panic("router: pop on empty fifo")
	}
	fl := f.buf[f.head].fl
	f.buf[f.head].fl.Msg = nil // do not retain across reuse
	f.head++
	if f.head == len(f.buf) {
		f.head = 0
	}
	f.n--
	return fl
}

// outFifo is a fixed-capacity ring of output-buffer entries.
type outFifo struct {
	buf  []outEntry
	head int
	n    int
}

func (f *outFifo) init(capacity int) { f.buf = make([]outEntry, capacity) }

func (f *outFifo) empty() bool { return f.n == 0 }
func (f *outFifo) full() bool  { return f.n == len(f.buf) }

func (f *outFifo) push(e outEntry) {
	if f.full() {
		panic("router: output buffer overflow")
	}
	i := f.head + f.n
	if i >= len(f.buf) {
		i -= len(f.buf)
	}
	f.buf[i] = e
	f.n++
}

func (f *outFifo) peek() *outEntry {
	if f.empty() {
		panic("router: peek on empty output buffer")
	}
	return &f.buf[f.head]
}

func (f *outFifo) pop() outEntry {
	if f.empty() {
		panic("router: pop on empty output buffer")
	}
	e := f.buf[f.head]
	f.buf[f.head].fl.Msg = nil
	f.head++
	if f.head == len(f.buf) {
		f.head = 0
	}
	f.n--
	return e
}
