package router

import "lapses/internal/flow"

// fifo is a fixed-capacity ring buffer of flits modeling an input VC
// buffer. Zero value is unusable; call init with a backing slice (routers
// hand out contiguous slabs so one router's buffers share cache lines).
// The head rewinds to slot 0 whenever the buffer drains, so a lightly
// loaded VC keeps touching the same few cache lines instead of marching
// its ring through the whole backing array.
//
// Pipeline readiness (a flit latched at cycle t may not advance before
// t+1) is tracked with a single per-fifo lastPush stamp instead of a
// per-entry field: a physical channel is one flit wide, so at most one
// flit enters a fifo per cycle, pushes carry strictly increasing cycles,
// and therefore only a lone newest entry can still be in its latch cycle.
//
// Flow control (full, space) is defined by the logical depth, while the
// physical slice starts small and doubles on demand up to depth: buffers
// only reach their credit limit under contention, so the common case
// keeps the allocated — and GC-scanned — footprint a fraction of the
// worst case without changing behavior.
type fifo struct {
	buf      []flow.Flit
	head     int
	n        int
	depth    int
	lastPush int64
}

func (f *fifo) init(buf []flow.Flit, depth int) { f.buf, f.depth = buf, depth }

func (f *fifo) empty() bool { return f.n == 0 }
func (f *fifo) full() bool  { return f.n == f.depth }
func (f *fifo) len() int    { return f.n }
func (f *fifo) space() int  { return f.depth - f.n }

// headReady reports whether the head flit has cleared its input-latch
// cycle (pushed before now). Only meaningful on a nonempty fifo.
func (f *fifo) headReady(now int64) bool { return f.n > 1 || f.lastPush < now }

// grow doubles the physical buffer (bounded by depth), unwrapping the
// ring so the queue starts at slot 0 again. Only called when the physical
// ring is full, so the live entries are buf[head:] followed by buf[:head].
func (f *fifo) grow() {
	cap2 := 2 * len(f.buf)
	if cap2 > f.depth {
		cap2 = f.depth
	}
	buf := make([]flow.Flit, cap2)
	k := copy(buf, f.buf[f.head:])
	copy(buf[k:], f.buf[:f.head])
	f.head = 0
	f.buf = buf
}

func (f *fifo) push(fl flow.Flit, now int64) {
	if f.full() {
		panic("router: fifo overflow")
	}
	if f.n == len(f.buf) {
		f.grow()
	}
	i := f.head + f.n
	if i >= len(f.buf) {
		i -= len(f.buf)
	}
	f.buf[i] = fl
	f.n++
	f.lastPush = now
}

// peek returns a pointer to the head flit so callers can read the header
// message without copying.
func (f *fifo) peek() *flow.Flit {
	if f.empty() {
		panic("router: peek on empty fifo")
	}
	return &f.buf[f.head]
}

// pop leaves the popped slot's Message pointer in place rather than
// nil-ing it: the store (and its GC write barrier) is pure overhead on
// the hottest path, and the retention it would prevent is bounded by the
// buffer capacity — under Run, stale slots point at pooled messages that
// stay live anyway.
func (f *fifo) pop() flow.Flit {
	if f.empty() {
		panic("router: pop on empty fifo")
	}
	fl := f.buf[f.head]
	f.head++
	if f.head == len(f.buf) {
		f.head = 0
	}
	f.n--
	if f.n == 0 {
		f.head = 0
	}
	return fl
}

// each visits the buffered flits in queue order.
func (f *fifo) each(fn func(*flow.Flit)) {
	for i := 0; i < f.n; i++ {
		j := f.head + i
		if j >= len(f.buf) {
			j -= len(f.buf)
		}
		fn(&f.buf[j])
	}
}

// removeIf drops every buffered flit of a victim message, preserving the
// order of the survivors, and returns how many flits it removed. Fault
// purges use it at the shard barrier; it is never on the per-cycle path.
func (f *fifo) removeIf(victim func(*flow.Message) bool) int {
	if f.n == 0 {
		return 0
	}
	kept := make([]flow.Flit, 0, f.n)
	f.each(func(fl *flow.Flit) {
		if !victim(fl.Msg) {
			kept = append(kept, *fl)
		}
	})
	removed := f.n - len(kept)
	if removed == 0 {
		return 0
	}
	f.head = 0
	f.n = copy(f.buf, kept)
	return removed
}

// outFifo is a fixed-capacity ring of output-buffer flits, with the same
// slab backing, head-rewind policy, and lastPush readiness tracking as
// fifo (the crossbar grants at most one flit per output port per cycle,
// so a box also sees at most one push per cycle).
type outFifo struct {
	buf      []flow.Flit
	head     int
	n        int
	lastPush int64
}

func (f *outFifo) init(buf []flow.Flit) { f.buf = buf }

func (f *outFifo) empty() bool { return f.n == 0 }
func (f *outFifo) full() bool  { return f.n == len(f.buf) }

func (f *outFifo) headReady(now int64) bool { return f.n > 1 || f.lastPush < now }

func (f *outFifo) push(fl flow.Flit, now int64) {
	if f.full() {
		panic("router: output buffer overflow")
	}
	i := f.head + f.n
	if i >= len(f.buf) {
		i -= len(f.buf)
	}
	f.buf[i] = fl
	f.n++
	f.lastPush = now
}

func (f *outFifo) peek() *flow.Flit {
	if f.empty() {
		panic("router: peek on empty output buffer")
	}
	return &f.buf[f.head]
}

func (f *outFifo) pop() flow.Flit {
	if f.empty() {
		panic("router: pop on empty output buffer")
	}
	fl := f.buf[f.head]
	f.head++
	if f.head == len(f.buf) {
		f.head = 0
	}
	f.n--
	if f.n == 0 {
		f.head = 0
	}
	return fl
}

// each visits the boxed flits in queue order.
func (f *outFifo) each(fn func(*flow.Flit)) {
	for i := 0; i < f.n; i++ {
		j := f.head + i
		if j >= len(f.buf) {
			j -= len(f.buf)
		}
		fn(&f.buf[j])
	}
}

// removeIf drops every boxed flit of a victim message, preserving the
// order of the survivors, and returns how many flits it removed.
func (f *outFifo) removeIf(victim func(*flow.Message) bool) int {
	if f.n == 0 {
		return 0
	}
	kept := make([]flow.Flit, 0, f.n)
	f.each(func(fl *flow.Flit) {
		if !victim(fl.Msg) {
			kept = append(kept, *fl)
		}
	})
	removed := f.n - len(kept)
	if removed == 0 {
		return 0
	}
	f.head = 0
	f.n = copy(f.buf, kept)
	return removed
}
