// Package router implements the paper's pipelined wormhole router models:
// PROUD, the five-stage baseline (input/decode, table lookup, selection+
// arbitration, crossbar, VC-mux/output), and LA-PROUD, the four-stage
// look-ahead variant in which table lookup runs concurrently with
// selection and arbitration because the header flit already carries the
// candidate set valid at this router (section 3).
//
// The model is cycle-driven and flit-accurate. Each stage takes one cycle;
// stage transitions advance a readyAt stamp so that intra-cycle processing
// order can never move a flit through two stages in one cycle. Head flits
// claim an output VC in the SA stage and every flit then competes per
// cycle for the crossbar (separable input-then-output round-robin
// allocation) and for the physical link (round-robin VC multiplexer,
// gated by credit-based flow control). Tail flits release input-side and
// output-side VC state as they pass, implementing wormhole semantics.
package router

import (
	"fmt"
	"math/bits"

	"lapses/internal/arbiter"
	"lapses/internal/flow"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
)

// Config carries the microarchitectural parameters of one router. The zero
// value is not usable; see DefaultConfig.
type Config struct {
	// NumVCs is the number of virtual channels per physical channel.
	NumVCs int
	// BufDepth is the input buffer depth per VC, in flits.
	BufDepth int
	// OutDepth is the output buffer depth per VC, in flits (the "Xbar
	// route, buffering" stage of Fig. 1).
	OutDepth int
	// LookAhead selects the 4-stage LA-PROUD pipeline; false is the
	// 5-stage PROUD baseline.
	LookAhead bool
	// CutThrough selects virtual cut-through switching: a header claims
	// an output VC only when the downstream buffer can absorb the whole
	// message, so blocked messages never stall spanning routers. False
	// is wormhole switching (the paper's mode). Requires message length
	// <= BufDepth.
	CutThrough bool
	// ResvVCs reserves the highest-numbered adaptive VCs of every physical
	// channel for high-class (QoS) messages: class-0 traffic may not claim
	// them. Escape VCs are the lowest-numbered VCs and are never reserved,
	// so every class keeps a deadlock-free path. 0 disables reservation.
	ResvVCs int
	// EscapeCommit enforces the stay-on-escape discipline: once a message
	// claims an escape VC it uses only escape VCs for the rest of its
	// journey. Duato's protocol normally lets messages return to adaptive
	// VCs, which is safe when the escape subfunction is minimal
	// (dimension order): the escape extended dependency graph stays
	// acyclic. The fault-aware up*/down* escape is non-minimal, and a
	// message hopping escape -> adaptive -> escape can close a dependency
	// cycle through the up/down order, so degraded networks run with the
	// commit discipline on (the network enables it whenever a fault plan
	// is present). Healthy configurations leave it off and are
	// bit-identical to the paper's protocol.
	EscapeCommit bool
}

// DefaultConfig returns the paper's Table 2 parameters: 4 VCs and 20-flit
// buffers.
func DefaultConfig() Config {
	return Config{NumVCs: 4, BufDepth: 20, OutDepth: 4}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumVCs < 1 || c.NumVCs > 8 {
		return fmt.Errorf("router: NumVCs %d out of range [1,8]", c.NumVCs)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("router: BufDepth %d < 1", c.BufDepth)
	}
	if c.OutDepth < 1 {
		return fmt.Errorf("router: OutDepth %d < 1", c.OutDepth)
	}
	if c.ResvVCs < 0 || c.ResvVCs >= c.NumVCs {
		return fmt.Errorf("router: ResvVCs %d out of range [0,%d)", c.ResvVCs, c.NumVCs)
	}
	return nil
}

// SendFunc transmits a flit onto the link leaving the router through port,
// tagged with the virtual channel it travels on (the downstream input VC).
// The network fabric schedules its arrival at the neighbor.
type SendFunc func(from topology.NodeID, port topology.Port, vc flow.VCID, fl flow.Flit, now int64)

// CreditFunc returns one credit upstream for the input buffer slot freed
// on (port, vc). For the local port the credit goes to the node's NI.
type CreditFunc func(from topology.NodeID, port topology.Port, vc flow.VCID, now int64)

// WormSendFunc transmits an entire express worm onto the link leaving
// through port as a single event: fl is the head flit and the remaining
// flits of fl.Msg follow at link rate (one per cycle) behind it. now is
// the cycle the head leaves the output stage. Event mode only.
type WormSendFunc func(from topology.NodeID, port topology.Port, vc flow.VCID, fl flow.Flit, now int64)

// CreditNFunc returns count credits upstream for (port, vc) in one event
// due at cycle now — the batched equivalent of count CreditFunc calls.
// Event mode only.
type CreditNFunc func(from topology.NodeID, port topology.Port, vc flow.VCID, count int, now int64)

// ReleaseFunc schedules the release of the output VC a worm transit
// claimed, at cycle at (the cycle after its tail leaves the output stage).
// The fabric must call ReleaseExpress exactly then. Event mode only.
type ReleaseFunc func(port topology.Port, vc flow.VCID, at int64)

// DeliverFunc hands an ejected flit to the local network interface.
type DeliverFunc func(fl flow.Flit, now int64)

// input VC pipeline states.
type vcPhase uint8

const (
	phaseIdle vcPhase = iota
	// phaseRouting: head flit awaiting the table-lookup (RC) stage
	// (PROUD only; LA headers skip straight to phaseWaitSA).
	phaseRouting
	// phaseWaitSA: head flit awaiting selection + arbitration.
	phaseWaitSA
	// phaseActive: the worm holds an output VC; flits stream.
	phaseActive
	// phaseExpress: the worm transits this router on the event-driven
	// express path (see EventFlit): every flit is forwarded the moment its
	// arrival event fires, with send and credit times computed from the
	// pipeline constants instead of emulated stage by stage. Express flits
	// never enter the input buffer, so the VC holds no storage while in
	// this phase.
	phaseExpress
)

// expressOwner marks an output VC claimed by an express worm. It must be
// non-negative (freeVC treats owner < 0 as free) and distinct from every
// real input-VC index (those are < 64, bounded by the work masks).
const expressOwner int32 = 1 << 30

// inputVC is the state of one input virtual channel.
type inputVC struct {
	buf      fifo
	phase    vcPhase
	readyAt  int64
	route    flow.RouteSet
	outPort  topology.Port
	outVC    flow.VCID
	outIdx   int32 // index of the claimed output VC in Router.out
	dateline uint8
	// msg is the message the VC is processing while phase != phaseIdle.
	// The pipeline itself reads headers from the buffer; this pointer
	// exists for the fault purge, which must identify the owner of claims
	// and pipeline state after the flits that carried it are gone.
	msg *flow.Message
}

// outputVC is the state of one output virtual channel.
type outputVC struct {
	owner   int32 // input VC index holding this VC; -1 when free
	credits int   // free slots in the downstream input buffer
	box     outFifo
}

// portMeta carries the per-output-port counters the path-selection
// heuristics read.
type portMeta struct {
	useCount uint64
	lastUsed int64
	busyVCs  int
	// remoteCong is the latest quantized congestion level the downstream
	// router piggybacked on a credit (see NoteCongestion); it stays 0
	// unless a notification-aware selector is configured.
	remoteCong uint8
}

// Router is one PROUD / LA-PROUD router instance.
type Router struct {
	id    topology.NodeID
	mesh  *topology.Mesh
	cfg   Config
	tbl   table.Table
	sel   selection.Selector
	wrap  bool
	ports int

	in    []inputVC
	out   []outputVC
	meta  []portMeta
	xbArb []arbiter.RoundRobin // per output port, over all input VC indices
	muxAr []arbiter.RoundRobin // per output port, over its output VCs
	vcArb []arbiter.RoundRobin // per output port, over VCs, for allocation
	saRot int                  // rotating start for SA scans

	// Work masks let each pipeline stage visit only the VCs with work
	// instead of scanning every input/output VC each cycle. Bit i of
	// actRC/actSA/actXB is set when input VC i is in phaseRouting/
	// phaseWaitSA/phaseActive; bit j of boxed when output VC j's box is
	// nonempty. Indices fit in 64 bits because the crossbar arbiter
	// (NewRoundRobin over ports*VCs) already caps the router at 64 input
	// VCs.
	actRC uint64
	actSA uint64
	actXB uint64
	boxed uint64
	// boxFull mirrors "output box at capacity" per output VC so the
	// crossbar scan can test a bit instead of loading the box state.
	boxFull uint64

	// portOf and vcBase map a VC index (inIdx) back to its physical port
	// and the first index of that port's VC group, replacing the per-flit
	// divisions the hot stages would otherwise pay.
	portOf []int8
	vcBase []int16

	send    SendFunc
	credit  CreditFunc
	deliver DeliverFunc

	// occupancy tracks buffered flits for quiescence checks.
	occupancy int
	// resvMask is the set of adaptive VCs reserved for high-class
	// messages (the top Config.ResvVCs ids); zero when reservation is off.
	resvMask flow.VCMask
	// expressOut counts, per output port, the per-flit express worms
	// currently streaming through it; [linkBusyFrom, linkBusyUntil] is the
	// send-cycle window an admitted express transit (worm event or
	// per-flit) has reserved the port's link for. Together they serialize
	// express transits per physical channel: admission requires the
	// candidate port to be free of both, so two express worms never
	// overdrive one link, while worms bound for different ports of the
	// same router transit concurrently. Buffered traffic stalls in the
	// output stage during the reserved window (stageOUT), so express and
	// pipelined flits share a wire at one flit per cycle either way.
	expressOut    []int8
	linkBusyFrom  []int64
	linkBusyUntil []int64

	// Event-mode callbacks (SetEventFabric); nil on the cycle path.
	sendWorm WormSendFunc
	creditN  CreditNFunc
	release  ReleaseFunc

	// deadPorts is the set of output ports whose link is currently failed
	// (bit p set). The SA stage and express admission never choose a dead
	// candidate, so a header routed by a pre-transition table one hop
	// upstream stalls here until the epoch's Reroute refreshes it rather
	// than sending flits into a void. Always zero without a fault
	// schedule, so healthy runs are bit-identical.
	deadPorts uint32
}

// New constructs a router for node id, programmed with the given table and
// selection policy. Callbacks must be set with SetFabric before the first
// Tick.
func New(id topology.NodeID, m *topology.Mesh, cfg Config, tbl table.Table, sel selection.Selector) *Router {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	np := m.NumPorts()
	r := &Router{
		id:    id,
		mesh:  m,
		cfg:   cfg,
		tbl:   tbl,
		sel:   sel,
		wrap:  m.Wrap(),
		ports: np,
		in:    make([]inputVC, np*cfg.NumVCs),
		out:   make([]outputVC, np*cfg.NumVCs),
		meta:  make([]portMeta, np),
	}
	arbSlab := make([]arbiter.RoundRobin, 3*np)
	r.xbArb, r.muxAr, r.vcArb = arbSlab[:np], arbSlab[np:2*np], arbSlab[2*np:]
	// Slab-allocate initial buffer storage for the router in two
	// contiguous blocks, so construction is two allocations instead of
	// one per VC and a router's working set is dense in the cache. Input
	// buffers start at a fraction of their credit depth and grow on
	// demand (see fifo).
	seed := cfg.BufDepth
	if seed > 4 {
		seed = 4
	}
	inSlab := make([]flow.Flit, len(r.in)*seed)
	for i := range r.in {
		r.in[i].buf.init(inSlab[i*seed:(i+1)*seed], cfg.BufDepth)
	}
	outSlab := make([]flow.Flit, len(r.out)*cfg.OutDepth)
	for i := range r.out {
		r.out[i].owner = -1
		r.out[i].credits = cfg.BufDepth
		r.out[i].box.init(outSlab[i*cfg.OutDepth : (i+1)*cfg.OutDepth])
	}
	for p := 0; p < np; p++ {
		r.xbArb[p] = arbiter.MakeRoundRobin(np * cfg.NumVCs)
		r.muxAr[p] = arbiter.MakeRoundRobin(cfg.NumVCs)
		r.vcArb[p] = arbiter.MakeRoundRobin(cfg.NumVCs)
	}
	for p := range r.meta {
		r.meta[p].lastUsed = -1
	}
	if cfg.ResvVCs > 0 {
		r.resvMask = flow.MaskAll(cfg.NumVCs) &^ flow.MaskAll(cfg.NumVCs-cfg.ResvVCs)
	}
	r.expressOut = make([]int8, np)
	r.linkBusyFrom = make([]int64, np)
	r.linkBusyUntil = make([]int64, np)
	for p := range r.linkBusyUntil {
		r.linkBusyFrom[p] = -1
		r.linkBusyUntil[p] = -1
	}
	r.portOf = make([]int8, len(r.in))
	r.vcBase = make([]int16, len(r.in))
	for i := range r.in {
		r.portOf[i] = int8(i / cfg.NumVCs)
		r.vcBase[i] = int16(i / cfg.NumVCs * cfg.NumVCs)
	}
	return r
}

// SetFabric wires the router's outbound callbacks.
func (r *Router) SetFabric(send SendFunc, credit CreditFunc, deliver DeliverFunc) {
	r.send, r.credit, r.deliver = send, credit, deliver
}

// SetEventFabric wires the event-mode callbacks (worm sends, batched
// credits, deferred VC releases). Only networks running in event mode set
// these; the cycle-accurate path never calls them.
func (r *Router) SetEventFabric(sendWorm WormSendFunc, creditN CreditNFunc, release ReleaseFunc) {
	r.sendWorm, r.creditN, r.release = sendWorm, creditN, release
}

// ID returns the router's node.
func (r *Router) ID() topology.NodeID { return r.id }

// Table returns the routing table, used by NIs to pre-compute look-ahead
// headers at injection.
func (r *Router) Table() table.Table { return r.tbl }

func (r *Router) inIdx(p topology.Port, v flow.VCID) int {
	return int(p)*r.cfg.NumVCs + int(v)
}

// EnqueueFlit latches a flit arriving on input (port, vc) at the start of
// cycle now (the IB stage runs during now). The caller must respect
// credit-based flow control; overflowing the buffer panics.
func (r *Router) EnqueueFlit(p topology.Port, v flow.VCID, fl flow.Flit, now int64) {
	idx := r.inIdx(p, v)
	ivc := &r.in[idx]
	if ivc.buf.full() {
		panic(fmt.Sprintf("router %d: input buffer overflow on port %d vc %d (credit protocol violated)", r.id, p, v))
	}
	ivc.buf.push(fl, now)
	r.occupancy++
	if ivc.phase == phaseIdle && fl.Type.IsHead() {
		r.startHeader(idx, ivc, fl, now)
	}
}

// startHeader moves an idle input VC into the routing pipeline for the
// header now at the front of its buffer.
func (r *Router) startHeader(idx int, ivc *inputVC, fl flow.Flit, now int64) {
	ivc.msg = fl.Msg
	ivc.dateline = fl.Msg.Dateline
	if r.cfg.LookAhead {
		// The header carries the candidates valid here; lookup has
		// already happened upstream, concurrently with arbitration.
		ivc.route = fl.Msg.Route
		ivc.phase = phaseWaitSA
		r.actSA |= 1 << idx
	} else {
		ivc.phase = phaseRouting
		r.actRC |= 1 << idx
	}
	ivc.readyAt = now + 1
}

// EventFlit is the event-driven arrival entry point (network event mode).
// It reports whether the flit was absorbed by the express path — forwarded
// (or delivered) immediately with send and credit times computed from the
// pipeline's timing constants — in which case the flit never enters an
// input buffer and the caller must not count it toward occupancy. When the
// express path cannot take the flit it falls back to EnqueueFlit and
// returns false; the fallback is byte-for-byte the cycle-accurate path, so
// a router carrying any buffered traffic behaves exactly as in cycle mode.
//
// Express admission (expressAdmit) requires a router with empty buffers,
// an output VC free for the whole message's credit window, an output link
// free of other express transits, and the same eligibility rules as the
// SA stage — including the escape-commit discipline — so an express hop
// makes the same routing decision the pipelined hop would have made from
// an empty router. The per-flit timing is exact for an uncontended
// transit (see expressForward); once admitted the full credit window is
// reserved and the output link serialized, so an express worm never
// stalls mid-transit.
func (r *Router) EventFlit(p topology.Port, v flow.VCID, fl flow.Flit, now int64) bool {
	idx := r.inIdx(p, v)
	ivc := &r.in[idx]
	if ivc.phase == phaseExpress {
		// Body/tail of a worm already admitted: per-VC worm serialization
		// guarantees no head arrives before the previous tail released the
		// phase.
		r.expressForward(idx, ivc, fl, now)
		return true
	}
	if fl.Type.IsHead() && ivc.phase == phaseIdle && r.occupancy == 0 &&
		r.tryExpress(ivc, fl.Msg, now) {
		r.expressForward(idx, ivc, fl, now)
		return true
	}
	r.EnqueueFlit(p, v, fl, now)
	return false
}

// EventWorm is the arrival of an entire express worm as one event (network
// event mode): the head flit fl latches at cycle now and the remaining
// flits of fl.Msg follow at link rate behind it on the same wire. If this
// router can admit the worm onto an express output — the same rules as the
// per-flit path — it forwards the whole worm in O(1): one worm event to
// the next hop (or one local delivery of the tail), one batched upstream
// credit at the cycle the tail would have cleared the crossbar, and one
// deferred release of the claimed output VC the cycle after the tail
// leaves the output stage. It reports false when the worm must be
// unpacked into per-flit events instead: the caller enqueues the head and
// schedules the trailing flits at their wire cadence, landing on the
// unchanged cycle-accurate path. Unpacking cannot overflow the input
// buffer: the upstream sender held credits for the whole message before
// emitting the worm.
func (r *Router) EventWorm(p topology.Port, v flow.VCID, fl flow.Flit, now int64) bool {
	if r.occupancy != 0 {
		return false
	}
	msg := fl.Msg
	cl, ok := r.expressAdmit(msg, now)
	if !ok {
		return false
	}
	offC, offS := int64(2), int64(3)
	if !r.cfg.LookAhead {
		offC, offS = 3, 4
	}
	L := int64(msg.Length)
	// The L input-buffer slots the upstream sender debited were never
	// filled; they all free when the tail would have cleared the crossbar.
	r.creditN(r.id, p, v, int(L), now+L-1+offC)
	ovc := &r.out[cl.idx]
	op := int(cl.port)
	r.meta[op].useCount += uint64(L)
	r.meta[op].lastUsed = now + L - 1 + offS
	if op == int(topology.PortLocal) {
		// Whole-message ejection: the tail reaches the NI at the cycle the
		// pipeline would have delivered it. The local sink needs no link
		// and no credits, so the claimed VC releases immediately.
		tail := flow.Flit{Msg: msg, Seq: int32(L - 1), Type: flow.TypeFor(int(L-1), msg.Length)}
		ovc.owner = -1
		r.meta[op].busyVCs--
		r.deliver(tail, now+L-1+offS)
		return true
	}
	ovc.credits -= int(L)
	msg.Hops++
	if r.linkBusyUntil[op] < now {
		// Fresh window; otherwise merge with the still-draining previous
		// reservation so no cycle of it unblocks early.
		r.linkBusyFrom[op] = now + offS
	}
	r.linkBusyUntil[op] = now + L - 1 + offS
	r.sendWorm(r.id, cl.port, cl.vc, fl, now+offS)
	r.release(cl.port, cl.vc, now+L-1+offS+1)
	return true
}

// ReleaseExpress frees the output VC a worm transit claimed, at the cycle
// EventWorm scheduled (the tail has left the output stage; the credits the
// worm consumed return separately from downstream).
func (r *Router) ReleaseExpress(p topology.Port, v flow.VCID) {
	ovc := &r.out[r.inIdx(p, v)]
	if ovc.owner != expressOwner {
		panic(fmt.Sprintf("router %d: express release of port %d vc %d not owned by an express transit", r.id, p, v))
	}
	ovc.owner = -1
	r.meta[p].busyVCs--
}

// expressClaim is the result of a successful express admission: the output
// VC claimed (with the expressOwner sentinel) for a whole-message transit.
type expressClaim struct {
	port topology.Port
	vc   flow.VCID
	idx  int32
}

// expressAdmit is the shared admission check of both express forms (the
// per-flit path behind EventFlit and the worm events of EventWorm): the SA
// stage's eligibility rules evaluated at arrival time, with two extra
// requirements — the output VC must hold credits for the entire message
// (the cut-through admission window), so the admitted worm can stream at
// link rate without ever stalling on flow control, and the output port's
// link must be free of other express transits (expressPortFree). On
// success the output VC is claimed and the outgoing header fields
// (dateline, escape commitment, look-ahead route) are computed exactly as
// tryAllocate would; on failure the message is untouched.
func (r *Router) expressAdmit(msg *flow.Message, now int64) (expressClaim, bool) {
	rs := msg.Route
	if !r.cfg.LookAhead {
		rs = r.tbl.Lookup(msg.Dst, msg.Dateline)
	}
	needCredits := int(msg.Length)
	if needCredits > r.cfg.BufDepth {
		// The full window cannot exist (wormhole with long messages):
		// express never applies, the pipeline handles the worm.
		return expressClaim{}, false
	}
	offS := int64(3)
	if !r.cfg.LookAhead {
		offS = 4
	}
	firstSend := now + offS
	committed := r.cfg.EscapeCommit && msg.EscapeCommitted
	var eligible uint8
	for i := 0; !committed && i < rs.Len(); i++ {
		c := rs.At(i)
		if r.deadPorts&(1<<c.Port) != 0 {
			continue
		}
		if r.expressPortFree(c.Port, firstSend) && r.freeVC(c.Port, r.adaptiveFor(c.Adaptive, msg.Class), needCredits) >= 0 {
			eligible |= 1 << i
		}
	}
	escape := false
	if eligible == 0 {
		for i := 0; i < rs.Len(); i++ {
			c := rs.At(i)
			if r.deadPorts&(1<<c.Port) != 0 {
				continue
			}
			if r.expressPortFree(c.Port, firstSend) && r.freeVC(c.Port, c.Escape, needCredits) >= 0 {
				eligible |= 1 << i
			}
		}
		escape = true
	}
	if eligible == 0 {
		return expressClaim{}, false
	}
	choice := 0
	if rs.Len() > 1 {
		choice = r.sel.Select(r, rs, eligible)
		if eligible&(1<<choice) == 0 {
			panic("router: selector returned ineligible candidate")
		}
	} else if eligible&1 == 0 {
		panic("router: single candidate not eligible")
	}
	cand := rs.At(choice)
	mask := r.adaptiveFor(cand.Adaptive, msg.Class)
	if escape {
		mask = cand.Escape
	}
	v := r.claimVC(cand.Port, mask, needCredits, expressOwner)
	if escape && r.cfg.EscapeCommit {
		msg.EscapeCommitted = true
	}
	if cand.Port != topology.PortLocal {
		next := msg.Dateline
		if r.wrap {
			next = nextDatelineBit(r.mesh, r.id, cand.Port, next)
		}
		msg.Dateline = next
		if r.cfg.LookAhead {
			msg.Route = r.tbl.LookupAt(cand.Port, msg.Dst, next)
		}
	}
	return expressClaim{port: cand.Port, vc: v, idx: int32(r.inIdx(cand.Port, v))}, true
}

// expressPortFree reports whether an express transit whose first flit
// leaves the output stage at cycle firstSend may use port p: no per-flit
// express worm is streaming through it and any prior express reservation
// of the link has drained. The local port has no link to serialize.
func (r *Router) expressPortFree(p topology.Port, firstSend int64) bool {
	if p == topology.PortLocal {
		return true
	}
	return r.expressOut[p] == 0 && firstSend > r.linkBusyUntil[p]
}

// tryExpress admits one arriving head flit to the per-flit express path:
// on success the input VC enters phaseExpress and every flit of the worm
// is forwarded by expressForward the moment its arrival event fires.
func (r *Router) tryExpress(ivc *inputVC, msg *flow.Message, now int64) bool {
	cl, ok := r.expressAdmit(msg, now)
	if !ok {
		return false
	}
	ivc.outPort = cl.port
	ivc.outVC = cl.vc
	ivc.outIdx = cl.idx
	ivc.phase = phaseExpress
	ivc.msg = msg
	if cl.port != topology.PortLocal {
		r.expressOut[cl.port]++
	}
	return true
}

// expressForward transits one flit of an admitted express worm, issuing
// its upstream credit and downstream send (or local delivery) at the exact
// cycles the pipeline would have: for a flit latched at cycle t into an
// otherwise-empty LA-PROUD router, the crossbar frees its buffer slot at
// t+2 and the output stage puts it on the link at t+3 (PROUD pays one more
// cycle for the table-lookup stage: t+3 and t+4). Tail flits return the
// input VC to phaseIdle and schedule the output VC's release for the cycle
// after the tail leaves the output stage, ending the express transit.
func (r *Router) expressForward(idx int, ivc *inputVC, fl flow.Flit, now int64) {
	offC, offS := int64(2), int64(3)
	if !r.cfg.LookAhead {
		offC, offS = 3, 4
	}
	// The buffer slot the upstream sender debited was never filled, but
	// the credit protocol is unchanged: the slot frees when the crossbar
	// would have drained it.
	r.credit(r.id, topology.Port(r.portOf[idx]), flow.VCID(idx-int(r.vcBase[idx])), now+offC)
	ovc := &r.out[ivc.outIdx]
	p := int(ivc.outPort)
	r.meta[p].useCount++
	r.meta[p].lastUsed = now + offS
	if p == int(topology.PortLocal) {
		r.deliver(fl, now+offS)
	} else {
		ovc.credits--
		if fl.Type.IsHead() {
			fl.Msg.Hops++
		}
		if t := now + offS; t > r.linkBusyUntil[p] {
			if r.linkBusyUntil[p] < now {
				r.linkBusyFrom[p] = t
			}
			r.linkBusyUntil[p] = t
		}
		r.send(r.id, ivc.outPort, ivc.outVC, fl, now+offS)
	}
	if fl.Type.IsTail() {
		ivc.phase = phaseIdle
		ivc.route = flow.RouteSet{}
		ivc.msg = nil
		if p != int(topology.PortLocal) {
			r.expressOut[p]--
			// The tail is still upstream of the output stage until now+offS.
			// Releasing the VC here would let a buffered message win it in
			// SA and put a flit on the link before the tail, arriving out of
			// order downstream; hold the claim until the tail has left, as
			// EventWorm does.
			r.release(ivc.outPort, ivc.outVC, now+offS+1)
		} else {
			ovc.owner = -1
			r.meta[p].busyVCs--
		}
	}
}

// AcceptCredit returns one credit to output (port, vc).
func (r *Router) AcceptCredit(p topology.Port, v flow.VCID) {
	r.AcceptCredits(p, v, 1)
}

// AcceptCredits returns count credits to output (port, vc) in one call —
// the batched form event mode's worm transits use (a whole admission
// window frees at once when the downstream tail clears its crossbar).
func (r *Router) AcceptCredits(p topology.Port, v flow.VCID, count int) {
	ovc := &r.out[r.inIdx(p, v)]
	ovc.credits += count
	if ovc.credits > r.cfg.BufDepth {
		panic(fmt.Sprintf("router %d: credit overflow on port %d vc %d", r.id, p, v))
	}
}

// Tick advances the router by one cycle and returns its remaining
// occupancy, reporting idle (0) or active (>0) so the network's
// active-set scheduler can deregister drained routers without a separate
// scan (Active answers the same question without ticking). The network
// must deliver all flits and credits due at cycle now before calling
// Tick(now).
func (r *Router) Tick(now int64) int {
	if r.occupancy == 0 {
		// Nothing buffered anywhere: every stage would scan and find
		// no work. (A VC waiting in RC/SA always holds its header in
		// the input buffer, so occupancy covers those states too.)
		return 0
	}
	r.stageRC(now)
	r.stageSA(now)
	r.stageXB(now)
	r.stageOUT(now)
	return r.occupancy
}

// Active reports whether the router has any buffered flits — the cheap
// "has work" predicate behind the network's active-set scheduling.
func (r *Router) Active() bool { return r.occupancy > 0 }

// stageRC performs the table-lookup stage for PROUD headers.
func (r *Router) stageRC(now int64) {
	if r.cfg.LookAhead {
		return
	}
	for m := r.actRC; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		ivc := &r.in[i]
		if ivc.readyAt > now {
			continue
		}
		hdr := ivc.buf.peek()
		ivc.route = r.tbl.Lookup(hdr.Msg.Dst, ivc.dateline)
		ivc.phase = phaseWaitSA
		ivc.readyAt = now + 1
		r.actRC &^= 1 << i
		r.actSA |= 1 << i
	}
}

// stageSA performs selection + arbitration (output VC allocation) for
// waiting headers. Input VCs are scanned from a rotating offset so no VC
// is structurally favored; a claim takes effect immediately, so later VCs
// in the same cycle see it — sequential arbitration with rotating
// priority. The rotation advances every cycle the stage runs, whether or
// not any header waits, matching the pre-mask scan order exactly.
func (r *Router) stageSA(now int64) {
	start := r.saRot
	r.saRot++
	if r.saRot == len(r.in) {
		r.saRot = 0
	}
	if r.actSA == 0 {
		return
	}
	// Visit waiting VCs at indices >= start first, then the wraparound —
	// the same order the rotating full scan produced.
	for m := r.actSA &^ (1<<start - 1); m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		ivc := &r.in[i]
		if ivc.readyAt > now {
			continue
		}
		r.tryAllocate(i, ivc, now)
	}
	for m := r.actSA & (1<<start - 1); m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		ivc := &r.in[i]
		if ivc.readyAt > now {
			continue
		}
		r.tryAllocate(i, ivc, now)
	}
}

// tryAllocate attempts the SA stage for one waiting header: determine the
// eligible candidates, run the path-selection heuristic, claim an output
// VC, and (in look-ahead mode) build the outgoing header's candidate set.
func (r *Router) tryAllocate(idx int, ivc *inputVC, now int64) {
	rs := ivc.route
	// Virtual cut-through admission: the downstream buffer must be able
	// to absorb the entire message before the header may claim the VC.
	needCredits := 0
	if r.cfg.CutThrough {
		needCredits = int(ivc.buf.peek().Msg.Length)
		if needCredits > r.cfg.BufDepth {
			panic(fmt.Sprintf("router %d: cut-through message of %d flits exceeds buffer depth %d",
				r.id, needCredits, r.cfg.BufDepth))
		}
	}
	// Pass 1: candidates with a free adaptive VC. Duato's protocol
	// prefers adaptive channels and falls back to the escape channel
	// only when no adaptive VC is free this cycle. A message committed
	// to the escape class (see Config.EscapeCommit) skips the adaptive
	// pass entirely.
	committed := r.cfg.EscapeCommit && ivc.buf.peek().Msg.EscapeCommitted
	class := ivc.buf.peek().Msg.Class
	var eligible uint8
	for i := 0; !committed && i < rs.Len(); i++ {
		c := rs.At(i)
		if r.deadPorts&(1<<c.Port) != 0 {
			continue
		}
		if r.freeVC(c.Port, r.adaptiveFor(c.Adaptive, class), needCredits) >= 0 {
			eligible |= 1 << i
		}
	}
	escape := false
	if eligible == 0 {
		for i := 0; i < rs.Len(); i++ {
			c := rs.At(i)
			if r.deadPorts&(1<<c.Port) != 0 {
				continue
			}
			if r.freeVC(c.Port, c.Escape, needCredits) >= 0 {
				eligible |= 1 << i
			}
		}
		escape = true
	}
	if eligible == 0 {
		return // stall; retry next cycle
	}
	choice := 0
	if rs.Len() > 1 {
		choice = r.sel.Select(r, rs, eligible)
		if eligible&(1<<choice) == 0 {
			panic("router: selector returned ineligible candidate")
		}
	} else if eligible&1 == 0 {
		panic("router: single candidate not eligible")
	}
	cand := rs.At(choice)
	mask := r.adaptiveFor(cand.Adaptive, class)
	if escape {
		mask = cand.Escape
	}
	v := r.claimVC(cand.Port, mask, needCredits, int32(idx))
	ivc.outPort = cand.Port
	ivc.outVC = v
	ivc.outIdx = int32(r.inIdx(cand.Port, v))
	ivc.phase = phaseActive
	ivc.readyAt = now + 1
	r.actSA &^= 1 << idx
	r.actXB |= 1 << idx

	// New header generation (concurrent with crossbar traversal in the
	// hardware): compute the dateline state after this hop and, in
	// look-ahead mode, the candidate set for the next router. Both are
	// written to the message's header slot, which the next router's input
	// stage reads strictly after this (see flow.Message.Route).
	msg := ivc.buf.peek().Msg
	if escape && r.cfg.EscapeCommit {
		msg.EscapeCommitted = true
	}
	if cand.Port != topology.PortLocal {
		next := ivc.dateline
		if r.wrap {
			next = nextDatelineBit(r.mesh, r.id, cand.Port, next)
		}
		msg.Dateline = next
		if r.cfg.LookAhead {
			msg.Route = r.tbl.LookupAt(cand.Port, msg.Dst, next)
		}
	}
}

// adaptiveFor restricts a candidate's adaptive mask by message class:
// class-0 traffic is excluded from the VCs reserved for high-class
// messages. Escape masks are never restricted — every class keeps the
// deadlock-free path, so reservation affects performance, not liveness.
func (r *Router) adaptiveFor(mask flow.VCMask, class uint8) flow.VCMask {
	if class == 0 {
		return mask &^ r.resvMask
	}
	return mask
}

// freeVC returns the lowest claimable VC in mask on port p, or -1. A VC
// is claimable when unowned and, under cut-through switching, holding at
// least needCredits credits. The local port's sink always has room.
func (r *Router) freeVC(p topology.Port, mask flow.VCMask, needCredits int) int {
	if mask == 0 {
		return -1
	}
	if p == topology.PortLocal {
		needCredits = 0
	}
	base := int(p) * r.cfg.NumVCs
	for v := 0; v < r.cfg.NumVCs; v++ {
		ovc := &r.out[base+v]
		if mask.Has(flow.VCID(v)) && ovc.owner < 0 && ovc.credits >= needCredits {
			return v
		}
	}
	return -1
}

// claimVC allocates a claimable VC in mask on port p, rotating the
// starting VC for fairness. It panics if none is claimable (callers check
// first).
func (r *Router) claimVC(p topology.Port, mask flow.VCMask, needCredits int, owner int32) flow.VCID {
	if p == topology.PortLocal {
		needCredits = 0
	}
	base := int(p) * r.cfg.NumVCs
	var reqs uint64
	for v := 0; v < r.cfg.NumVCs; v++ {
		ovc := &r.out[base+v]
		if mask.Has(flow.VCID(v)) && ovc.owner < 0 && ovc.credits >= needCredits {
			reqs |= 1 << v
		}
	}
	g := r.vcArb[p].Grant(reqs)
	if g < 0 {
		panic("router: claimVC with no free VC")
	}
	r.out[base+g].owner = owner
	r.meta[p].busyVCs++
	return flow.VCID(g)
}

// stageXB performs crossbar arbitration and traversal. Following the
// paper's model — "a router can be considered as a set of parallel PROUD
// pipes equal to the product of the number of physical input/output ports
// and the number of VCs; contention for resources between the parallel
// pipes can occur only in the crossbar arbitration and VC multiplexing
// stages" (section 2.2) — each input VC is its own crossbar input, so the
// switch contends only per output port: one flit per output port per
// cycle, granted round-robin over all requesting input VCs.
func (r *Router) stageXB(now int64) {
	// The request matrix lives on the stack: zeroing these two cache
	// lines per call vectorizes and measures faster than any lazily
	// cleared heap-resident alternative.
	var reqs [16]uint64 // per output port, bitmask over input VC indices
	var used uint64     // ports with at least one request
	for m := r.actXB; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		ivc := &r.in[i]
		if ivc.readyAt > now || ivc.buf.empty() {
			continue
		}
		if !ivc.buf.headReady(now) {
			continue
		}
		if r.boxFull&(1<<ivc.outIdx) != 0 {
			continue
		}
		reqs[ivc.outPort] |= 1 << i
		used |= 1 << uint(ivc.outPort)
	}
	// Ascending port order, exactly the order the full scan granted in.
	for ; used != 0; used &= used - 1 {
		op := bits.TrailingZeros64(used)
		g := r.xbArb[op].Grant(reqs[op])
		ivc := &r.in[g]
		r.traverse(g, &r.out[ivc.outIdx], now)
	}
}

// traverse moves the head flit of input VC inIdx through the crossbar into
// its allocated output buffer.
func (r *Router) traverse(inIdx int, ovc *outputVC, now int64) {
	ivc := &r.in[inIdx]
	fl := ivc.buf.pop()
	// Propagate the header fields computed at SA to the stored copy.
	ovc.box.push(fl, now)
	r.boxed |= 1 << ivc.outIdx
	if ovc.box.full() {
		r.boxFull |= 1 << ivc.outIdx
	}
	// Return the freed buffer slot upstream.
	p := topology.Port(r.portOf[inIdx])
	v := flow.VCID(inIdx - int(r.vcBase[inIdx]))
	r.credit(r.id, p, v, now)
	if fl.Type.IsTail() {
		// The worm has fully left this input VC.
		ivc.phase = phaseIdle
		ivc.route = flow.RouteSet{}
		ivc.msg = nil
		r.actXB &^= 1 << inIdx
		if !ivc.buf.empty() {
			nxt := ivc.buf.peek()
			if !nxt.Type.IsHead() {
				panic("router: non-head flit follows tail in input buffer")
			}
			r.startHeader(inIdx, ivc, *nxt, now)
		}
	} else {
		ivc.readyAt = now + 1
	}
}

// stageOUT performs the VC-multiplex / output stage: per physical port,
// one flit with credit is placed on the link (or delivered locally).
func (r *Router) stageOUT(now int64) {
	// Visit only ports with boxed flits, ascending — the same port order
	// as the full scan, with empty ports (which never touched their
	// arbiter) skipped for free.
	for bm := r.boxed; bm != 0; {
		lowest := bits.TrailingZeros64(bm)
		base := int(r.vcBase[lowest])
		p := int(r.portOf[lowest])
		group := (uint64(1)<<r.cfg.NumVCs - 1) << base
		if r.linkBusyFrom[p] <= now && now <= r.linkBusyUntil[p] && (now-r.linkBusyFrom[p])&1 == 0 {
			// An express worm is streaming on this wire (event mode; the
			// window is never set in cycle mode). Had the worm been
			// pipelined, the output mux would round-robin it against the
			// buffered contenders, halving both rates; the worm's events are
			// already committed, so approximate the shared wire by yielding
			// it to buffered traffic every other cycle.
			bm &^= group
			continue
		}
		var reqs uint64
		for m := bm & group; m != 0; m &= m - 1 {
			j := bits.TrailingZeros64(m)
			ovc := &r.out[j]
			if !ovc.box.headReady(now) {
				continue
			}
			if p != int(topology.PortLocal) && ovc.credits == 0 {
				continue
			}
			reqs |= 1 << (j - base)
		}
		bm &^= group
		if reqs == 0 {
			continue
		}
		g := r.muxAr[p].Grant(reqs)
		ovc := &r.out[base+g]
		fl := ovc.box.pop()
		r.boxFull &^= 1 << (base + g)
		if ovc.box.empty() {
			r.boxed &^= 1 << (base + g)
		}
		r.occupancy--
		r.meta[p].useCount++
		r.meta[p].lastUsed = now
		if p == int(topology.PortLocal) {
			r.deliver(fl, now)
		} else {
			ovc.credits--
			if fl.Type.IsHead() {
				fl.Msg.Hops++
			}
			r.send(r.id, topology.Port(p), flow.VCID(g), fl, now)
		}
		if fl.Type.IsTail() {
			ovc.owner = -1
			r.meta[p].busyVCs--
		}
	}
}

// nextDatelineBit sets the dimension bit when the hop through port p
// crosses a torus wraparound link.
func nextDatelineBit(m *topology.Mesh, id topology.NodeID, p topology.Port, dl uint8) uint8 {
	d := topology.PortDim(p)
	x := m.CoordAxis(id, d)
	k := m.Radix(d)
	if (topology.PortSign(p) > 0 && x == k-1) || (topology.PortSign(p) < 0 && x == 0) {
		dl |= 1 << d
	}
	return dl
}

// BusyVCs implements selection.PortView.
func (r *Router) BusyVCs(p topology.Port) int { return r.meta[p].busyVCs }

// Credits implements selection.PortView: total credits over the port's VCs.
func (r *Router) Credits(p topology.Port) int {
	base := int(p) * r.cfg.NumVCs
	total := 0
	for v := 0; v < r.cfg.NumVCs; v++ {
		total += r.out[base+v].credits
	}
	return total
}

// UseCount implements selection.PortView.
func (r *Router) UseCount(p topology.Port) uint64 { return r.meta[p].useCount }

// LastUsed implements selection.PortView.
func (r *Router) LastUsed(p topology.Port) int64 { return r.meta[p].lastUsed }

// RemoteCongestion implements selection.PortView: the latest congestion
// level the downstream router on port p piggybacked on a credit.
func (r *Router) RemoteCongestion(p topology.Port) uint8 { return r.meta[p].remoteCong }

// NoteCongestion records the quantized congestion level carried by a
// credit arriving on output port p. The network calls it while draining
// credit events, so the signal crosses the phase-B barrier exactly like
// the credit itself and stays shard-invariant.
func (r *Router) NoteCongestion(p topology.Port, level uint8) {
	r.meta[p].remoteCong = level
}

// CongestionLevel quantizes this router's buffered-flit occupancy into the
// 2-bit signal piggybacked on credits: 0 (idle) through 3 (saturated),
// scaled against one port's worth of input buffering (NumVCs*BufDepth) —
// a router backing up past a full port of storage is congested however
// the flits are distributed. The network reads it during the owning
// shard's own phase-A step, so it never races across shards.
func (r *Router) CongestionLevel() uint8 {
	q := 4 * r.occupancy / (r.cfg.NumVCs * r.cfg.BufDepth)
	if q > 3 {
		q = 3
	}
	return uint8(q)
}

// Occupancy returns the number of flits buffered in the router, used by
// the network's quiescence and progress checks.
func (r *Router) Occupancy() int { return r.occupancy }

// InputSpace returns the free flit slots of input (port, vc); the NI uses
// it to initialize its injection credit counters.
func (r *Router) InputSpace(p topology.Port, v flow.VCID) int {
	return r.in[r.inIdx(p, v)].buf.space()
}
