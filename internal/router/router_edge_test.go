package router

import (
	"testing"

	"lapses/internal/flow"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/topology"
)

// A PROUD router must ignore any Route carried in the header and use its
// own table (the header is only trusted in look-ahead mode).
func TestPROUDIgnoresHeaderRoute(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, defCfg, alg, selection.New(selection.StaticXY, 0))
	msg := mkMsg(1, 0, m.ID(topology.Coord{2, 1}), 1)
	fl := mkFlit(msg, 0)
	// Poison the header with a bogus route pointing the wrong way.
	fl.Msg.Route.Add(flow.Candidate{Port: topology.PortMinus(1), Adaptive: flow.MaskAll(4)})
	h.r.EnqueueFlit(topology.PortMinus(0), 0, fl, 0)
	h.run(0, 10)
	s := h.sends()
	if len(s) != 1 || s[0].port != topology.PortPlus(0) {
		t.Fatalf("PROUD router did not use its own table: %+v", s)
	}
}

// Conversely, an LA router trusts the header even when it disagrees with
// the local table — that is the contract look-ahead depends on.
func TestLATrustsHeaderRoute(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	node := m.ID(topology.Coord{1, 1})
	cfg := defCfg
	cfg.LookAhead = true
	h := newHarness(t, m, node, cfg, alg, selection.New(selection.StaticXY, 0))
	msg := mkMsg(1, 0, m.ID(topology.Coord{2, 1}), 1)
	fl := mkFlit(msg, 0)
	// Header says +Y although XY would say +X.
	fl.Msg.Route.Add(flow.Candidate{Port: topology.PortPlus(1), Adaptive: flow.MaskAll(4)})
	h.r.EnqueueFlit(topology.PortMinus(0), 0, fl, 0)
	h.run(0, 10)
	s := h.sends()
	if len(s) != 1 || s[0].port != topology.PortPlus(1) {
		t.Fatalf("LA router did not follow the header: %+v", s)
	}
}

// A full output buffer must backpressure the crossbar, not overflow.
func TestOutboxBackpressure(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 2}, nil)
	node := m.ID(topology.Coord{1, 1})
	cfg := Config{NumVCs: 2, BufDepth: 8, OutDepth: 1}
	h := newHarness(t, m, node, cfg, alg, selection.New(selection.StaticXY, 0))
	// A long message with credits never returned: after BufDepth (8)
	// link sends the output stalls, the depth-1 outbox fills, and the
	// crossbar must stop draining the input buffer.
	msg := mkMsg(1, 0, m.ID(topology.Coord{2, 1}), 20)
	for c := int64(0); c <= 40; c++ {
		if c < 12 {
			h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(msg, int(c)), c)
		}
		h.r.Tick(c)
	}
	// Only BufDepth (8) flits can have been sent (credits exhausted);
	// one more sits in the outbox; the rest wait in the input buffer.
	if n := len(h.sends()); n != 8 {
		t.Fatalf("sends = %d want 8 (credit-limited)", n)
	}
	if h.r.Occupancy() != 4 {
		t.Fatalf("occupancy = %d want 4 (12 in - 8 out)", h.r.Occupancy())
	}
}

// Two active messages on different VCs of the same output port share the
// physical link via the VC multiplexer, alternating fairly.
func TestVCMuxFairness(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, defCfg, alg, selection.New(selection.StaticXY, 0))
	dst := m.ID(topology.Coord{2, 1})
	a, b := mkMsg(1, 0, dst, 8), mkMsg(2, 0, dst, 8)
	for i := 0; i < 8; i++ {
		h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(a, i), int64(i))
		h.r.EnqueueFlit(topology.PortMinus(1), 0, mkFlit(b, i), int64(i))
	}
	h.run(0, 40)
	s := h.sends()
	if len(s) != 16 {
		t.Fatalf("sends = %d want 16", len(s))
	}
	// In the steady interleaved window, consecutive sends alternate
	// between the two messages.
	swaps := 0
	for i := 1; i < len(s); i++ {
		if s[i].fl.Msg.ID != s[i-1].fl.Msg.ID {
			swaps++
		}
	}
	if swaps < 10 {
		t.Errorf("VC mux barely interleaved: %d alternations in 16 sends", swaps)
	}
}

// A single-flit message must release both input-side and output-side VC
// state in one pass.
func TestHeadTailReleasesAllState(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, defCfg, alg, selection.New(selection.StaticXY, 0))
	dst := m.ID(topology.Coord{2, 1})
	for i := 0; i < 5; i++ {
		msg := mkMsg(int64(i+1), 0, dst, 1)
		h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(msg, 0), int64(i*10))
		h.run(int64(i*10), int64(i*10+9))
	}
	if n := len(h.sends()); n != 5 {
		t.Fatalf("sends = %d want 5", n)
	}
	if h.r.BusyVCs(topology.PortPlus(0)) != 0 {
		t.Errorf("output VCs leaked: %d busy", h.r.BusyVCs(topology.PortPlus(0)))
	}
	if h.r.Occupancy() != 0 {
		t.Errorf("occupancy leaked: %d", h.r.Occupancy())
	}
}

// Adaptive VC allocation rotates across the adaptive class rather than
// pinning the lowest VC.
func TestVCAllocationRotates(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	alg := routing.NewDuato(m, cls)
	node := m.ID(topology.Coord{1, 1})
	h := newHarness(t, m, node, defCfg, alg, selection.New(selection.StaticXY, 0))
	dst := m.ID(topology.Coord{3, 1})
	vcSeen := map[flow.VCID]bool{}
	for i := 0; i < 6; i++ {
		msg := mkMsg(int64(i+1), 0, dst, 1)
		h.r.EnqueueFlit(topology.PortMinus(0), 0, mkFlit(msg, 0), int64(i*12))
		h.run(int64(i*12), int64(i*12+11))
	}
	for _, e := range h.sends() {
		vcSeen[e.vc] = true
	}
	// The three adaptive VCs (1..3) should all have been used.
	if !vcSeen[1] || !vcSeen[2] || !vcSeen[3] {
		t.Errorf("VC allocation did not rotate: used %v", vcSeen)
	}
	if vcSeen[0] {
		t.Errorf("escape VC used without adaptive exhaustion")
	}
}

// The router must reject construction with a bad config.
func TestNewPanicsOnBadConfig(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewDimOrder(m, routing.Class{NumVCs: 4}, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	newHarness(t, m, 4, Config{NumVCs: 0, BufDepth: 4, OutDepth: 2}, alg, selection.New(selection.StaticXY, 0))
}

// Dateline bookkeeping: a header crossing the torus wraparound link picks
// up the dimension bit, observable in the sent header.
func TestDatelineBitSetOnWrap(t *testing.T) {
	m := topology.NewTorus(4, 4)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 2}
	alg := routing.NewDuato(m, cls)
	node := m.ID(topology.Coord{3, 0}) // +X hop wraps to x=0
	h := newHarness(t, m, node, defCfg, alg, selection.New(selection.StaticXY, 0))
	dst := m.ID(topology.Coord{1, 0}) // minimal route: +X through the wrap
	msg := mkMsg(1, 0, dst, 1)
	h.r.EnqueueFlit(topology.PortMinus(0), 1, mkFlit(msg, 0), 0)
	h.run(0, 12)
	s := h.sends()
	if len(s) != 1 || s[0].port != topology.PortPlus(0) {
		t.Fatalf("unexpected route: %+v", s)
	}
	if s[0].fl.Msg.Dateline&1 == 0 {
		t.Error("dateline bit not set on wrap crossing")
	}
}
