package core_test

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lapses/internal/core"
	"lapses/internal/fault"
	"lapses/internal/selection"
	"lapses/internal/traffic"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden fixtures from the current kernel")

// goldenGrid pins the configurations the kernel-determinism golden covers:
// 2 patterns x 3 loads x both pipelines x 2 seeds on an 8x8 mesh. The
// fixture was generated from the pre-active-set kernel; any cycle-kernel
// optimization must reproduce these Results bit for bit.
func goldenGrid() []core.Config {
	var grid []core.Config
	for _, pat := range []traffic.Kind{traffic.Uniform, traffic.Transpose} {
		for _, load := range []float64{0.05, 0.2, 0.4} {
			for _, la := range []bool{false, true} {
				for _, seed := range []int64{1, 2} {
					c := core.DefaultConfig()
					c.Dims = []int{8, 8}
					c.Selection = selection.LRU
					c.Pattern = pat
					c.Load = load
					c.LookAhead = la
					c.Seed = seed
					c.Warmup, c.Measure = 100, 1000
					grid = append(grid, c)
				}
			}
		}
	}
	return grid
}

// fingerprint renders a Result with float fields as raw IEEE-754 bit
// patterns, so comparison is exact rather than print-precision deep.
func fingerprint(r core.Result) string {
	b := math.Float64bits
	return fmt.Sprintf("lat=%016x net=%016x ci=%016x p50=%016x p95=%016x p99=%016x hops=%016x thr=%016x del=%d cyc=%d sat=%t reason=%q",
		b(r.AvgLatency), b(r.NetLatency), b(r.CI95), b(r.P50), b(r.P95), b(r.P99),
		b(r.AvgHops), b(r.Throughput), r.Delivered, r.Cycles, r.Saturated, r.SatReason)
}

// goldenShards are the shard counts every golden grid point runs at: the
// fixture was recorded from the serial kernel, so passing at 2 and 4
// proves sharded stepping is bit-identical to it.
var goldenShards = []int{1, 2, 4}

// TestGoldenKernel locks the simulation kernel's observable behavior: every
// grid point must produce a Result identical, to the bit, to the fixture
// recorded before the active-set scheduler landed — at every shard count.
// Regenerate (only when a semantic change is intended) with: go test
// ./internal/core -run TestGoldenKernel -update
func TestGoldenKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid is 24 full runs x 3 shard counts; skipped under -short")
	}
	grid := goldenGrid()
	got := make(map[string]string, len(grid))
	for _, shards := range goldenShards {
		for _, c := range grid {
			c.Shards = shards
			key := fmt.Sprintf("%s/load=%.2f/la=%t/seed=%d", c.Pattern, c.Load, c.LookAhead, c.Seed)
			r, err := core.Run(c)
			if err != nil {
				t.Fatalf("%s/shards=%d: %v", key, shards, err)
			}
			fp := fingerprint(r)
			if prev, ok := got[key]; ok && prev != fp {
				t.Errorf("%s: shards=%d diverged from a lower shard count\n got %s\nwant %s", key, shards, fp, prev)
				continue
			}
			got[key] = fp
		}
	}
	compareGolden(t, "golden_kernel.txt", "TestGoldenKernel", got)
}

// goldenFaultGrid pins the degraded-kernel behavior: an 8x8 mesh under
// two fault plans (a seeded random plan and an explicit links+router
// plan), 2 loads x both pipelines. Fault-path changes — routing detours,
// table exceptions, the escape-commit discipline, dead wiring — must
// reproduce these Results bit for bit or regenerate deliberately.
func goldenFaultGrid(t *testing.T) (cfgs []core.Config, keys []string) {
	t.Helper()
	base := core.DefaultConfig()
	base.Dims = []int{8, 8}
	base.Selection = selection.LRU
	base.Warmup, base.Measure = 100, 1000
	m := base.Mesh()
	random, err := fault.Random(m, 4, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := fault.Parse(m, "27-28,35-43,r9")
	if err != nil {
		t.Fatal(err)
	}
	plans := []struct {
		name string
		p    *fault.Plan
	}{{"random4", random}, {"explicit", explicit}}
	for _, pl := range plans {
		for _, load := range []float64{0.1, 0.25} {
			for _, la := range []bool{false, true} {
				c := base
				c.Faults = pl.p
				c.Load = load
				c.LookAhead = la
				cfgs = append(cfgs, c)
				keys = append(keys, fmt.Sprintf("%s/load=%.2f/la=%t", pl.name, load, la))
			}
		}
	}
	return cfgs, keys
}

// TestGoldenFaults locks the degraded kernel the way TestGoldenKernel
// locks the healthy one. Regenerate (only when a semantic change is
// intended) with: go test ./internal/core -run TestGoldenFaults -update
func TestGoldenFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("golden fault grid is 8 full runs x 3 shard counts; skipped under -short")
	}
	cfgs, keys := goldenFaultGrid(t)
	got := make(map[string]string, len(cfgs))
	for _, shards := range goldenShards {
		for i, c := range cfgs {
			c.Shards = shards
			r, err := core.Run(c)
			if err != nil {
				t.Fatalf("%s/shards=%d: %v", keys[i], shards, err)
			}
			fp := fingerprint(r)
			if prev, ok := got[keys[i]]; ok && prev != fp {
				t.Errorf("%s: shards=%d diverged from a lower shard count\n got %s\nwant %s", keys[i], shards, fp, prev)
				continue
			}
			got[keys[i]] = fp
		}
	}
	compareGolden(t, "golden_faults.txt", "TestGoldenFaults", got)
}

// compareGolden diffs got against testdata/<file>, or rewrites the
// fixture under -update.
func compareGolden(t *testing.T, file, testName string, got map[string]string) {
	t.Helper()
	path := filepath.Join("testdata", file)
	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		sb.WriteString("# Kernel determinism fixture. One line per grid point: <key> <fingerprint>\n")
		fmt.Fprintf(&sb, "# Regenerate: go test ./internal/core -run %s -update\n", testName)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s\t%s\n", k, got[k])
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), path)
		return
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update to create): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, v, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed golden line: %q", line)
		}
		want[k] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d entries, grid has %d", len(want), len(got))
	}
	for k, g := range got {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: missing from golden fixture", k)
			continue
		}
		if g != w {
			t.Errorf("%s: kernel diverged from golden\n got %s\nwant %s", k, g, w)
		}
	}
}
