package core

import (
	"reflect"
	"testing"

	"lapses/internal/fault"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// smoke returns a fast small-mesh config.
func smoke() Config {
	c := DefaultConfig().QuickFidelity()
	c.Dims = []int{8, 8}
	return c
}

func TestRunSmoke(t *testing.T) {
	c := smoke()
	c.Load = 0.2
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatalf("saturated at load 0.2: %s", res.SatReason)
	}
	if res.Delivered != int64(c.Measure) {
		t.Errorf("delivered %d want %d", res.Delivered, c.Measure)
	}
	// 8x8 mesh: avg distance ~5.33, LA-PROUD ~5 cycles/hop + 19 flits.
	if res.AvgLatency < 30 || res.AvgLatency > 200 {
		t.Errorf("implausible latency %v", res.AvgLatency)
	}
	if res.AvgHops < 4 || res.AvgHops > 7 {
		t.Errorf("implausible hops %v", res.AvgHops)
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
	if res.LatencyString() == "Sat." {
		t.Error("unsaturated run prints Sat.")
	}
}

func TestDefaultsMatchPaperTable2(t *testing.T) {
	c := DefaultConfig()
	if len(c.Dims) != 2 || c.Dims[0] != 16 || c.Dims[1] != 16 {
		t.Error("default mesh is not 16x16")
	}
	if c.VCs != 4 || c.MsgLen != 20 || c.BufDepth != 20 || c.LinkDelay != 1 {
		t.Error("defaults do not match Table 2")
	}
	p := c.PaperFidelity()
	if p.Warmup != 10000 || p.Measure != 400000 {
		t.Error("paper fidelity sample sizes wrong")
	}
}

func TestValidation(t *testing.T) {
	c := smoke()
	c.Dims = nil
	if _, err := Run(c); err == nil {
		t.Error("nil dims accepted")
	}
	c = smoke()
	c.Load = -1
	if _, err := Run(c); err == nil {
		t.Error("negative load accepted")
	}
	c = smoke()
	c.Table = table.KindInterval
	c.Algorithm = AlgDuato
	if _, err := Run(c); err == nil {
		t.Error("interval+adaptive accepted")
	}
	c = smoke()
	c.Table = table.KindMetaBlock
	c.Dims = []int{4, 4, 4}
	if _, err := Run(c); err == nil {
		t.Error("meta table on 3-D accepted")
	}
}

func TestAlgParseRoundTrip(t *testing.T) {
	for _, a := range Algs {
		got, err := ParseAlg(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v failed", a)
		}
	}
	if _, err := ParseAlg("nope"); err == nil {
		t.Error("expected error")
	}
	if !AlgXY.Deterministic() || AlgDuato.Deterministic() {
		t.Error("Deterministic() wrong")
	}
}

// Every (algorithm, table, selector) combination the paper exercises must
// run without panic on a small mesh.
func TestMatrixOfConfigurations(t *testing.T) {
	algs := []Alg{AlgXY, AlgDuato, AlgNorthLast}
	tables := []table.Kind{table.KindFull, table.KindES, table.KindMetaRow, table.KindMetaBlock}
	sels := []selection.Kind{selection.StaticXY, selection.MinMux, selection.LFU, selection.LRU, selection.MaxCredit}
	for _, a := range algs {
		for _, tk := range tables {
			for _, sk := range sels {
				c := smoke()
				c.Algorithm = a
				c.Table = tk
				c.Selection = sk
				c.Load = 0.15
				c.Warmup, c.Measure = 50, 500
				if testing.Short() {
					c.Warmup, c.Measure = 30, 120
				}
				res, err := Run(c)
				if err != nil {
					t.Fatalf("%v/%v/%v: %v", a, tk, sk, err)
				}
				if res.Delivered == 0 {
					t.Fatalf("%v/%v/%v: nothing delivered", a, tk, sk)
				}
			}
		}
	}
}

// The four paper patterns all run on the default (look-ahead adaptive)
// router.
func TestPaperPatterns(t *testing.T) {
	for _, p := range []traffic.Kind{traffic.Uniform, traffic.Transpose, traffic.BitReversal, traffic.Shuffle} {
		c := smoke()
		c.Pattern = p
		c.Load = 0.1
		c.Warmup, c.Measure = 100, 1000
		res, err := Run(c)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Saturated {
			t.Errorf("%v: saturated at load 0.1", p)
		}
	}
}

// 3-D mesh and torus configurations exercise the ES generalizations.
func Test3DAndTorus(t *testing.T) {
	c := smoke()
	c.Dims = []int{4, 4, 4}
	c.Pattern = traffic.Uniform
	c.Warmup, c.Measure = 100, 1000
	if _, err := Run(c); err != nil {
		t.Fatalf("3-D: %v", err)
	}
	c = smoke()
	c.Torus = true
	c.EscapeVCs = 2
	c.Table = table.KindFull
	c.Warmup, c.Measure = 100, 1000
	if _, err := Run(c); err != nil {
		t.Fatalf("torus: %v", err)
	}
}

// Virtual cut-through switching runs end to end and tracks wormhole
// closely at low load (both are limited by the pipeline, not blocking).
func TestCutThrough(t *testing.T) {
	c := smoke()
	c.Load = 0.2
	c.Warmup, c.Measure = 200, 2000
	worm, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.CutThrough = true
	vct, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if vct.Saturated {
		t.Fatalf("VCT saturated at low load: %s", vct.SatReason)
	}
	ratio := vct.AvgLatency / worm.AvgLatency
	if ratio < 0.95 || ratio > 1.3 {
		t.Errorf("VCT/wormhole latency ratio %.2f implausible", ratio)
	}
}

func TestCutThroughValidation(t *testing.T) {
	c := smoke()
	c.CutThrough = true
	c.MsgLen = 40 // > BufDepth 20
	if _, err := Run(c); err == nil {
		t.Error("oversize cut-through message accepted")
	}
}

func TestPercentilesPopulated(t *testing.T) {
	c := smoke()
	c.Load = 0.3
	c.Warmup, c.Measure = 200, 3000
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50 > 0 && res.P50 <= res.P95 && res.P95 <= res.P99) {
		t.Errorf("percentile ordering broken: %v %v %v", res.P50, res.P95, res.P99)
	}
	// The median should bracket the mean within the bucket resolution
	// for this mild load.
	if res.P50 < res.AvgLatency*0.5 || res.P50 > res.AvgLatency*1.5 {
		t.Errorf("median %v implausible vs mean %v", res.P50, res.AvgLatency)
	}
}

func TestConfigKey(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	if a.Key() != b.Key() {
		t.Fatalf("identical configs disagree:\n%s\n%s", a.Key(), b.Key())
	}
	// Every field that feeds the simulation must perturb the key.
	perturb := []func(*Config){
		func(c *Config) { c.Dims = []int{8, 8} },
		func(c *Config) { c.Torus = true },
		func(c *Config) {
			p, err := fault.New(c.Mesh(), []fault.Link{{Node: 0, Port: topology.PortPlus(0)}}, nil)
			if err != nil {
				t.Fatal(err)
			}
			c.Faults = p
		},
		func(c *Config) { c.VCs = 8 },
		func(c *Config) { c.EscapeVCs = 2 },
		func(c *Config) { c.BufDepth = 10 },
		func(c *Config) { c.OutDepth = 2 },
		func(c *Config) { c.LinkDelay = 2 },
		func(c *Config) { c.LookAhead = false },
		func(c *Config) { c.CutThrough = true },
		func(c *Config) { c.Algorithm = AlgXY },
		func(c *Config) { c.Table = table.KindFull },
		func(c *Config) { c.Selection = selection.MaxCredit },
		func(c *Config) { c.Pattern = traffic.Shuffle },
		func(c *Config) { c.Load = 0.25 },
		func(c *Config) { c.MsgLen = 5 },
		func(c *Config) { c.Burst = &traffic.Burst{OnFrac: 0.25, MeanOn: 100} },
		func(c *Config) { c.QoS = &QoSSpec{HiFrac: 0.2, HiVCs: 1} },
		func(c *Config) { c.Trace = &traffic.Trace{} },
		func(c *Config) { c.Warmup = 1 },
		func(c *Config) { c.Measure = 7 },
		func(c *Config) { c.Auto = &AutoMeasure{RelTol: 0.1} },
		func(c *Config) { c.MaxCycles = 9 },
		func(c *Config) { c.SatLatency = 1234 },
		func(c *Config) { c.Seed = 42 },
		func(c *Config) { c.Shards = 4 },
		func(c *Config) { c.EventMode = true },
		func(c *Config) {
			s, err := fault.ParseSchedule(c.Mesh(), "0-1@10:20")
			if err != nil {
				t.Fatal(err)
			}
			c.Schedule = s
		},
		func(c *Config) { c.Reliability = &Reliability{RTO: 256} },
	}
	// Every field of Config must have a perturbation above: a field
	// added without extending Key would silently alias memo-cache
	// entries in internal/sweep.
	if n := reflect.TypeOf(Config{}).NumField(); n != len(perturb) {
		t.Fatalf("Config has %d fields but TestConfigKey perturbs %d: extend Key() and this list", n, len(perturb))
	}
	seen := map[string]int{a.Key(): -1}
	for i, mut := range perturb {
		c := DefaultConfig()
		mut(&c)
		if prev, dup := seen[c.Key()]; dup {
			t.Errorf("perturbation %d collides with %d: %s", i, prev, c.Key())
		}
		seen[c.Key()] = i
	}
	// Loads that differ only in the last bit must not collide.
	c1, c2 := DefaultConfig(), DefaultConfig()
	c1.Load = 0.1
	c2.Load = 0.1 + 1e-17
	if c2.Load != c1.Load && c1.Key() == c2.Key() {
		t.Error("distinct float loads collide")
	}
}
