package core

import (
	"fmt"
	"math"
	"testing"

	"lapses/internal/fault"
	"lapses/internal/table"
)

// equivPoints are the configurations the observational-equivalence suite
// compares across kernels: a healthy mesh, a degraded topology, and a
// torus with wraparound routing — the three structurally distinct regimes
// the event kernel's express machinery must get right.
func equivPoints(t *testing.T) map[string]Config {
	healthy := DefaultConfig()
	healthy.Dims = []int{8, 8}
	healthy.Load = 0.2

	faulted := healthy
	plan, err := fault.Random(faulted.Mesh(), 3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	faulted.Faults = plan

	torus := DefaultConfig()
	torus.Dims = []int{6, 6}
	torus.Torus = true
	torus.EscapeVCs = 2
	torus.Table = table.KindFull
	torus.Load = 0.2

	return map[string]Config{"healthy": healthy, "faulted": faulted, "torus": torus}
}

// equivRun executes one adaptive-tier measurement: the controller stops at
// a 95% CI half-width of 5% of the mean, which is the equivalence budget
// the event kernel is held to.
func equivRun(t *testing.T, c Config, events bool, shards int) Result {
	t.Helper()
	c.EventMode = events
	c.Shards = shards
	c.Warmup, c.Measure = 500, 10000
	c.Auto = &AutoMeasure{RelTol: 0.05}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatalf("saturated below the saturation region: %s", res.SatReason)
	}
	return res
}

// TestEventModeObservationalEquivalence holds the event kernel to its
// contract: not bit-identical to the cycle kernel, but statistically
// indistinguishable — latency within the adaptive controller's combined
// CI, throughput within the controller's relative tolerance — on healthy,
// faulted, and torus configurations, at one and at four shards.
func TestEventModeObservationalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive-tier comparison runs in the full suite")
	}
	for name, cfg := range equivPoints(t) {
		t.Run(name, func(t *testing.T) {
			ref := equivRun(t, cfg, false, 1)
			for _, shards := range []int{1, 4} {
				ev := equivRun(t, cfg, true, shards)
				// Two independent estimators of the same mean: their
				// difference is covered by the sum of their CI half-widths.
				tol := ref.LatencyCI + ev.LatencyCI
				if d := math.Abs(ev.AvgLatency - ref.AvgLatency); d > tol {
					t.Errorf("shards=%d: event latency %.2f vs cycle %.2f: |Δ|=%.2f exceeds combined CI %.2f",
						shards, ev.AvgLatency, ref.AvgLatency, d, tol)
				}
				if d := math.Abs(ev.Throughput - ref.Throughput); d > 0.05*ref.Throughput {
					t.Errorf("shards=%d: event throughput %.4f vs cycle %.4f beyond 5%%",
						shards, ev.Throughput, ref.Throughput)
				}
				if ev.TotalCycles <= 0 || ev.MeasuredCycles <= 0 || ev.MeasuredCycles > ev.TotalCycles {
					t.Errorf("shards=%d: cycle accounting broken: measured %d of %d total",
						shards, ev.MeasuredCycles, ev.TotalCycles)
				}
				if ev.SkippedCycles < 0 || ev.SkippedCycles > ev.TotalCycles {
					t.Errorf("shards=%d: skipped %d of %d total cycles", shards, ev.SkippedCycles, ev.TotalCycles)
				}
			}
		})
	}
}

// TestEventModeDeterministic pins the event kernel's reproducibility: for
// a fixed config and shard count the run is bit-identical with itself,
// even though it is only statistically equivalent to the cycle kernel.
func TestEventModeDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dims = []int{8, 8}
	cfg.Load = 0.25
	cfg.EventMode = true
	cfg.Warmup, cfg.Measure = 300, 3000
	for _, shards := range []int{1, 4} {
		cfg.Shards = shards
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.AvgLatency != b.AvgLatency || a.Delivered != b.Delivered ||
			a.TotalCycles != b.TotalCycles || a.Throughput != b.Throughput {
			t.Errorf("shards=%d: event mode not deterministic:\n%+v\n%+v", shards, a, b)
		}
	}
}

// TestEventModeKeyDistinct guards the sweep memo cache: an event-mode run
// is a different experiment than a cycle-mode run of the same point and
// must never alias its cache entry.
func TestEventModeKeyDistinct(t *testing.T) {
	a, b := DefaultConfig(), DefaultConfig()
	b.EventMode = true
	if a.Key() == b.Key() {
		t.Fatal("event-mode config keys alias cycle-mode keys")
	}
	if fmt.Sprintf("%v", a.Key()) == "" {
		t.Fatal("empty key")
	}
}
