// Package core is the public face of the LAPSES library: a declarative
// configuration for a complete simulated interconnect built from the
// paper's three techniques — Look-Ahead pipelining, traffic-sensitive Path
// Selection, and Economical Storage routing tables — plus the substrate
// they run on (wormhole switching, virtual channels, credit flow control,
// Duato's fully adaptive routing).
//
// A Config describes the network, router microarchitecture, routing
// policy, table organization, selection heuristic, and workload; Run
// executes the paper's measurement methodology and returns aggregate
// results. The zero-cost entry point:
//
//	cfg := core.DefaultConfig()           // 16x16 mesh, Table 2 settings
//	cfg.Load = 0.3
//	res, err := core.Run(cfg)
//	fmt.Println(res.AvgLatency)
package core

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"lapses/internal/fault"
	"lapses/internal/network"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/stats"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// Alg names a routing algorithm.
type Alg int

const (
	// AlgXY is deterministic dimension-order routing (X first).
	AlgXY Alg = iota
	// AlgYX is deterministic dimension-order routing (Y first).
	AlgYX
	// AlgDuato is Duato's fully adaptive minimal routing with a
	// dimension-order escape channel — the paper's running example.
	AlgDuato
	// AlgNorthLast, AlgWestFirst, AlgNegativeFirst are the Glass/Ni
	// turn-model partially adaptive algorithms (2-D meshes only).
	AlgNorthLast
	AlgWestFirst
	AlgNegativeFirst
)

// Algs lists all algorithm identifiers.
var Algs = []Alg{AlgXY, AlgYX, AlgDuato, AlgNorthLast, AlgWestFirst, AlgNegativeFirst}

func (a Alg) String() string {
	switch a {
	case AlgXY:
		return "xy"
	case AlgYX:
		return "yx"
	case AlgDuato:
		return "duato"
	case AlgNorthLast:
		return "north-last"
	case AlgWestFirst:
		return "west-first"
	case AlgNegativeFirst:
		return "negative-first"
	}
	return fmt.Sprintf("Alg(%d)", int(a))
}

// ParseAlg converts an algorithm name to its identifier.
func ParseAlg(s string) (Alg, error) {
	for _, a := range Algs {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// Deterministic reports whether the algorithm yields a single path.
func (a Alg) Deterministic() bool { return a == AlgXY || a == AlgYX }

// Config describes one simulation. DefaultConfig returns the paper's
// Table 2 baseline; adjust fields from there.
type Config struct {
	// Dims are the mesh radices (Table 2: 16x16); Torus adds wraparound.
	Dims  []int
	Torus bool

	// Faults, when non-nil and non-empty, degrades the topology per the
	// plan: failed links carry nothing, failed routers inject nothing and
	// attract no traffic, and the routing policy is recomputed over the
	// live graph (Duato keeps its adaptive VCs on distance-reducing live
	// ports with an up*/down* escape; every deterministic algorithm
	// becomes the up*/down* function itself, the turns that remain legal
	// around the damage). Run fails with a descriptive error when the
	// plan disconnects the live network. Load stays normalized to the
	// healthy bisection so series over fault counts share an x-axis.
	Faults *fault.Plan

	// Schedule, when non-nil, subjects the run to a transient fault
	// schedule: links and routers fail at given cycles and optionally heal
	// at later ones (fault.ParseSchedule reads the CLI spec). At each
	// transition the network destroys every flit committed to dying
	// equipment, swaps in routing tables recomputed for the new epoch's
	// live graph, and restores the credit invariants — traffic in flight
	// elsewhere keeps moving. A static schedule (every event down at cycle
	// 0, no repairs) is collapsed onto the Faults path and behaves — and
	// memoizes — byte-identically to the equivalent static plan. Mutually
	// exclusive with Faults.
	Schedule *fault.Schedule

	// Reliability, when non-nil, enables the end-to-end NI retransmission
	// layer: sources hold every message until the destination acknowledges
	// it (acks piggyback on reverse traffic, with pure one-flit acks as
	// fallback), retransmit on timeout with exponential backoff, and
	// receivers suppress duplicates — exactly-once delivery over a fabric
	// whose fault transitions drop flits. Without it, messages destroyed
	// by a transition are reported lost (Result.DroppedMessages).
	Reliability *Reliability

	// VCs per physical channel (Table 2: 4) and how many of them form
	// the escape class for Duato routing (1 on meshes, 2 on tori).
	VCs       int
	EscapeVCs int
	// BufDepth and OutDepth are input/output buffer depths in flits
	// (Table 2: 20 in; the small output stage holds 4).
	BufDepth int
	OutDepth int
	// LinkDelay in cycles (Table 2: 1).
	LinkDelay int

	// LookAhead selects LA-PROUD (4-stage) over PROUD (5-stage).
	LookAhead bool
	// CutThrough selects virtual cut-through switching instead of
	// wormhole (the paper's routers are wormhole; Table 1 surveys both).
	// Requires MsgLen <= BufDepth.
	CutThrough bool
	// Algorithm, Table and Selection pick the routing policy, the table
	// organization storing it, and the path-selection heuristic.
	Algorithm Alg
	Table     table.Kind
	Selection selection.Kind

	// Pattern and Load define the workload: Load is normalized so 1.0
	// saturates the bisection under uniform traffic. MsgLen is in flits
	// (Table 2: 20).
	Pattern traffic.Kind
	Load    float64
	MsgLen  int
	// Burst, when non-nil, makes every node's source a bursty two-state
	// MMPP on/off process at the same mean rate (traffic.Burst): arrivals
	// cluster into ON periods while the offered load stays Load. Nil (the
	// default) keeps the stationary Poisson source bit-identical to
	// previous releases. Ignored for trace workloads.
	Burst *traffic.Burst
	// QoS, when non-nil, enables two-class traffic with per-class VC
	// reservation: each generated message is high-class with probability
	// HiFrac, and the top HiVCs adaptive VCs of every physical channel are
	// reserved for high-class traffic (escape VCs stay shared, preserving
	// deadlock freedom). Nil keeps single-class traffic.
	QoS *QoSSpec
	// Trace, when non-nil, replaces Pattern/Load with trace-driven
	// injection (application workloads; see traffic.Trace). Warmup +
	// Measure must not exceed the trace's message count.
	Trace *traffic.Trace

	// Warmup messages are excluded from statistics; Measure messages are
	// recorded (section 2.2: 10000 and 400000).
	Warmup  int
	Measure int
	// Auto, when non-nil, switches the run to the adaptive measurement
	// tier: the fixed Warmup/Measure split is replaced by statistical
	// warmup truncation (MSER-5) and CI-based early stopping — the run
	// measures every delivered message from cycle zero and ends as soon
	// as the latency confidence interval is tight enough, bounded by
	// hard floor/ceiling budgets. Opt-in only: a nil Auto runs the fixed
	// methodology bit-identically to previous releases (the goldens pin
	// this). See AutoMeasure and README "Measurement methodology".
	Auto *AutoMeasure
	// MaxCycles and SatLatency are saturation guards (0 = defaults).
	MaxCycles  int64
	SatLatency float64

	// Seed makes runs reproducible.
	Seed int64

	// Shards splits a single run's mesh into that many contiguous row
	// bands, each stepped by its own worker goroutine (deterministic
	// sharded stepping: results are bit-identical for every shard count,
	// pinned by the golden tests). <= 1 runs serially; the value is
	// clamped to the row count. Sweeps budget their worker pool against
	// this so grid workers x shards never oversubscribes GOMAXPROCS.
	Shards int

	// EventMode switches the run to event-driven execution: flits landing
	// on quiescent routers transit on an O(1)-per-flit express path with
	// send and credit times computed from the pipeline's timing constants,
	// while routers carrying buffered traffic fall back to the unchanged
	// cycle-accurate pipeline. Event mode is observationally equivalent to
	// cycle mode (latency and throughput match within measurement noise;
	// uncontended per-message latency is exact) but not bit-identical —
	// the cycle-accurate kernel remains the golden-pinned oracle. Runs are
	// deterministic for a fixed configuration and shard count. See README
	// "Execution modes".
	EventMode bool
}

// QoSSpec configures two-class traffic with VC reservation (Config.QoS).
// The class draw consumes one extra variate from the node's generation
// stream per message (gated, so nil-QoS runs consume exactly the draws of
// previous releases and stay bit-identical); QoS runs are deterministic
// and bit-identical across shard counts like any other configuration.
type QoSSpec struct {
	// HiFrac is the probability a generated message is high-class, in
	// [0, 1].
	HiFrac float64
	// HiVCs is how many of the highest-numbered adaptive VCs are reserved
	// for high-class messages, in [1, VCs-EscapeVCs). Escape VCs are the
	// lowest-numbered VCs and are never reserved.
	HiVCs int
}

// Reliability configures the end-to-end NI retransmission layer
// (Config.Reliability). Zero fields take the layer's defaults.
type Reliability struct {
	// RTO is the base retransmission timeout in cycles (default 2048);
	// attempt k waits RTO<<min(k-1, 6).
	RTO int64
	// MaxAttempts bounds send attempts per message, the first included
	// (default 12); an unacknowledged message is then abandoned and
	// reported lost.
	MaxAttempts int
	// AckDelay is how long a receiver waits for reverse traffic to
	// piggyback an acknowledgment on before sending a pure one-flit ack
	// (default 64 cycles).
	AckDelay int64
}

// AutoMeasure configures the adaptive measurement tier (Config.Auto).
// Zero fields take defaults derived from the config's fixed budgets, so
// `cfg.Auto = &core.AutoMeasure{}` is a valid opt-in: the run can only
// get cheaper than the fixed tier it replaces, never more expensive.
type AutoMeasure struct {
	// RelTol is the stopping target: measurement ends once the 95%
	// confidence half-width of the MSER-truncated latency mean falls to
	// RelTol times the mean. Default 0.05.
	RelTol float64
	// MinMessages is the floor before any stopping decision; default
	// MaxMessages/20, at least 200.
	MinMessages int
	// MaxMessages is the hard ceiling; default Warmup+Measure (the fixed
	// budget the tier replaces).
	MaxMessages int
	// CheckEvery is the convergence re-check cadence in delivered
	// messages; default max(MinMessages/2, 250).
	CheckEvery int
}

// adaptive resolves the tier into the stats controller configuration,
// defaulting the ceiling to the config's fixed budget.
func (c Config) adaptive() stats.AdaptiveConfig {
	a := c.Auto
	max := a.MaxMessages
	if max <= 0 {
		max = c.Warmup + c.Measure
	}
	return stats.AdaptiveConfig{
		RelTol:     a.RelTol,
		MinSamples: a.MinMessages,
		MaxSamples: max,
		CheckEvery: a.CheckEvery,
	}.Normalize()
}

// DefaultConfig returns the paper's simulation parameters (Table 2) with
// the LAPSES router (look-ahead + LRU selection + economical storage) and
// a reduced default sample size; use PaperFidelity for the full 400k
// messages.
func DefaultConfig() Config {
	return Config{
		Dims:       []int{16, 16},
		VCs:        4,
		EscapeVCs:  1,
		BufDepth:   20,
		OutDepth:   4,
		LinkDelay:  1,
		LookAhead:  true,
		Algorithm:  AlgDuato,
		Table:      table.KindES,
		Selection:  selection.LRU,
		Pattern:    traffic.Uniform,
		Load:       0.2,
		MsgLen:     20,
		Warmup:     2000,
		Measure:    30000,
		Seed:       1,
		SatLatency: 5000,
	}
}

// PaperFidelity returns the config with the paper's sample sizes: 10000
// warm-up messages and statistics over 400000 messages.
func (c Config) PaperFidelity() Config {
	c.Warmup = 10000
	c.Measure = 400000
	return c
}

// QuickFidelity returns the config with small samples for smoke tests.
func (c Config) QuickFidelity() Config {
	c.Warmup = 200
	c.Measure = 3000
	return c
}

// Mesh materializes the topology.
func (c Config) Mesh() *topology.Mesh { return topology.New(c.Torus, c.Dims...) }

// EffectiveShards returns the shard count a run actually executes with:
// Shards clamped to at least 1 and at most the radix of the slowest-
// varying dimension (every shard owns at least one full row — the same
// clamp the network kernel applies). Reporting and worker budgeting must
// use this, not the raw request.
func (c Config) EffectiveShards() int {
	s := c.Shards
	if s < 1 {
		s = 1
	}
	if n := len(c.Dims); n > 0 && s > c.Dims[n-1] {
		s = c.Dims[n-1]
	}
	return s
}

// normalized collapses a static schedule — one whose every event is down
// at cycle 0 with no repair — onto the plain Faults path: the simulation
// is the same, and keeping one spelling keeps cache keys and results
// byte-identical to static-plan configurations. Run and Key both operate
// on the normalized form.
func (c Config) normalized() Config {
	if c.Schedule != nil && c.Schedule.Static() {
		if p := c.Schedule.StaticPlan(); !p.Empty() {
			c.Faults = p
		}
		c.Schedule = nil
	}
	return c
}

// Key returns a string that identifies the configuration exactly: two
// configs with equal keys produce bit-identical Results from Run. It is
// the memo-cache key used by internal/sweep. Floats are keyed by their
// bit patterns, so no two distinct loads ever collide; a Trace is keyed
// by pointer identity, which is stable within a process (the scope of the
// in-memory cache).
func (c Config) Key() string {
	c = c.normalized()
	var b strings.Builder
	b.Grow(96)
	fmt.Fprintf(&b, "d%v", c.Dims)
	fmt.Fprintf(&b, ",t%t,v%d,e%d,b%d,o%d,l%d,la%t,ct%t,a%d,tb%d,s%d,p%d",
		c.Torus, c.VCs, c.EscapeVCs, c.BufDepth, c.OutDepth, c.LinkDelay,
		c.LookAhead, c.CutThrough, int(c.Algorithm), int(c.Table), int(c.Selection), int(c.Pattern))
	fmt.Fprintf(&b, ",ld%x,ml%d,tr%p,w%d,m%d,mc%d,sl%x,sd%d",
		math.Float64bits(c.Load), c.MsgLen, c.Trace,
		c.Warmup, c.Measure, c.MaxCycles, math.Float64bits(c.SatLatency), c.Seed)
	// Shards never changes a Result (sharded stepping is bit-identical),
	// but it is part of the key so cached sweeps reflect the execution
	// plan they actually ran — shard-equivalence tests must not have one
	// variant served from the other's cache line.
	if c.Shards > 1 {
		fmt.Fprintf(&b, ",sh%d", c.Shards)
	}
	// Event mode changes observed results (it is equivalent, not
	// bit-identical), so it always keys separately from cycle mode.
	if c.EventMode {
		b.WriteString(",ev")
	}
	// The adaptive tier is keyed by its resolved parameters: two configs
	// that default to the same stopping rule share a cache line, while
	// an Auto config never collides with its fixed-tier sibling.
	if c.Auto != nil {
		a := c.adaptive()
		fmt.Fprintf(&b, ",au[%x,%d,%d,%d]",
			math.Float64bits(a.RelTol), a.MinSamples, a.MaxSamples, a.CheckEvery)
	}
	// Bursty sources and QoS classes change the workload, so they key by
	// their parameters; the nil defaults add nothing and leave every
	// pre-existing key byte-identical.
	if c.Burst != nil {
		fmt.Fprintf(&b, ",mm[%x,%x]", math.Float64bits(c.Burst.OnFrac), math.Float64bits(c.Burst.MeanOn))
	}
	if c.QoS != nil {
		fmt.Fprintf(&b, ",q[%x,%d]", math.Float64bits(c.QoS.HiFrac), c.QoS.HiVCs)
	}
	// The fault plan is keyed by canonical content, so equal damage from
	// different Plan pointers memoizes together and any difference in
	// damage never shares a cache line. Empty plans key like nil: a
	// zero-fault config is the same simulation either way.
	if !c.Faults.Empty() {
		fmt.Fprintf(&b, ",f[%s]", c.Faults.Key())
	}
	// A non-static schedule is keyed by its canonical timed-event content
	// (normalization above already rewrote static ones as plain plans, so
	// "12-13" spelled as a schedule or a plan shares a cache line).
	if c.Schedule != nil {
		fmt.Fprintf(&b, ",fs[%s]", c.Schedule.Key())
	}
	// The reliability layer changes delivery behavior (retransmitted
	// traffic competes with measured traffic), so it always keys apart.
	if c.Reliability != nil {
		fmt.Fprintf(&b, ",rel[%d,%d,%d]", c.Reliability.RTO, c.Reliability.MaxAttempts, c.Reliability.AckDelay)
	}
	return b.String()
}

// class returns the VC partition. Deterministic and turn-model algorithms
// are deadlock-free without escape channels.
func (c Config) class() routing.Class {
	esc := c.EscapeVCs
	if c.Algorithm != AlgDuato {
		esc = 0
	}
	if c.Algorithm == AlgDuato && c.Torus && esc < 2 {
		esc = 2
	}
	return routing.Class{NumVCs: c.VCs, EscapeVCs: esc}
}

// buildAlgorithm materializes the routing function. Under a non-empty
// fault plan the healthy algorithms are replaced by their degraded-graph
// equivalents: Duato keeps fully adaptive VCs over the live minimal
// directions with an up*/down* escape channel, and every deterministic or
// turn-model algorithm becomes deterministic up*/down* routing (the turns
// that remain deadlock-free around arbitrary damage). Construction fails
// with a descriptive error when the plan disconnects the live network.
func (c Config) buildAlgorithm(m *topology.Mesh, cls routing.Class) (routing.Algorithm, error) {
	if !c.Faults.Empty() {
		return c.algorithmFor(m, cls, c.Faults)
	}
	switch c.Algorithm {
	case AlgXY:
		return routing.NewDimOrder(m, cls, nil), nil
	case AlgYX:
		return routing.NewDimOrder(m, cls, []int{1, 0}), nil
	case AlgDuato:
		return routing.NewDuato(m, cls), nil
	case AlgNorthLast:
		return routing.NewNorthLast(m, cls), nil
	case AlgWestFirst:
		return routing.NewWestFirst(m, cls), nil
	case AlgNegativeFirst:
		return routing.NewNegativeFirst(m, cls), nil
	}
	panic("core: unknown algorithm")
}

// algorithmFor materializes the fault-aware variant of the configured
// algorithm over one plan — for static runs the single plan, for
// scheduled runs each epoch's. Schedules route fault-aware in every
// epoch (the healthy epochs included) so consecutive epochs differ only
// in the damage they avoid, never in routing family.
func (c Config) algorithmFor(m *topology.Mesh, cls routing.Class, plan *fault.Plan) (routing.Algorithm, error) {
	if c.Algorithm == AlgDuato {
		return routing.NewFaultDuato(m, cls, plan)
	}
	return routing.NewFaultDimOrder(m, cls, plan)
}

// Validate reports configuration errors without building the network.
func (c Config) Validate() error {
	if c.Schedule != nil && !c.Faults.Empty() {
		return fmt.Errorf("core: Faults and Schedule are mutually exclusive; encode static damage in either one")
	}
	c = c.normalized()
	if len(c.Dims) == 0 {
		return fmt.Errorf("core: no dimensions")
	}
	for _, k := range c.Dims {
		if k < 2 {
			return fmt.Errorf("core: radix %d < 2", k)
		}
	}
	if c.Load < 0 {
		return fmt.Errorf("core: negative load")
	}
	if c.Measure <= 0 {
		return fmt.Errorf("core: Measure must be positive")
	}
	if c.CutThrough && c.MsgLen > c.BufDepth {
		return fmt.Errorf("core: cut-through needs MsgLen (%d) <= BufDepth (%d)", c.MsgLen, c.BufDepth)
	}
	if c.Trace != nil && c.Warmup+c.Measure > c.Trace.Total() {
		return fmt.Errorf("core: warmup+measure (%d) exceeds trace messages (%d)",
			c.Warmup+c.Measure, c.Trace.Total())
	}
	if c.Auto != nil {
		a := c.Auto
		if a.RelTol < 0 {
			return fmt.Errorf("core: negative Auto.RelTol")
		}
		if a.MinMessages < 0 || a.MaxMessages < 0 || a.CheckEvery < 0 {
			return fmt.Errorf("core: negative Auto budget")
		}
		if a.MinMessages > 0 && a.MaxMessages > 0 && a.MinMessages > a.MaxMessages {
			return fmt.Errorf("core: Auto.MinMessages (%d) > Auto.MaxMessages (%d)", a.MinMessages, a.MaxMessages)
		}
		if c.Trace != nil && c.adaptive().MaxSamples > c.Trace.Total() {
			return fmt.Errorf("core: Auto ceiling (%d) exceeds trace messages (%d)",
				c.adaptive().MaxSamples, c.Trace.Total())
		}
	}
	if c.Burst != nil {
		if c.Trace != nil {
			return fmt.Errorf("core: Burst is ignored under trace workloads; unset one")
		}
		if err := c.Burst.Validate(); err != nil {
			return err
		}
	}
	if q := c.QoS; q != nil {
		if q.HiFrac < 0 || q.HiFrac > 1 {
			return fmt.Errorf("core: QoS.HiFrac %g outside [0,1]", q.HiFrac)
		}
		adaptiveVCs := c.VCs - c.class().EscapeVCs
		if q.HiVCs < 1 || q.HiVCs >= adaptiveVCs {
			return fmt.Errorf("core: QoS.HiVCs %d must leave at least one unreserved adaptive VC (adaptive VCs: %d)",
				q.HiVCs, adaptiveVCs)
		}
	}
	if c.Table == table.KindInterval && !c.Algorithm.Deterministic() {
		return fmt.Errorf("core: interval tables require a deterministic algorithm")
	}
	if (c.Table == table.KindMetaRow || c.Table == table.KindMetaBlock) && (len(c.Dims) != 2 || c.Torus) {
		return fmt.Errorf("core: meta tables require a 2-D mesh")
	}
	if !c.Faults.Empty() {
		if !c.Faults.Fits(c.Mesh()) {
			return fmt.Errorf("core: fault plan %s was built for a different topology than %s", c.Faults, c.Mesh())
		}
		if c.Table == table.KindMetaRow || c.Table == table.KindMetaBlock {
			return fmt.Errorf("core: meta tables are defined for healthy meshes; use es or full under faults")
		}
		if c.Trace != nil && c.Faults.NumRouters() > 0 {
			return fmt.Errorf("core: trace workloads require fault plans without dead routers (trace endpoints cannot be filtered)")
		}
	}
	if s := c.Schedule; s != nil {
		if !s.Fits(c.Mesh()) {
			return fmt.Errorf("core: fault schedule %s was built for a different topology than %s", s, c.Mesh())
		}
		if c.Table == table.KindMetaRow || c.Table == table.KindMetaBlock {
			return fmt.Errorf("core: meta tables are defined for healthy meshes; use es or full under a fault schedule")
		}
		if c.Trace != nil {
			for i := 0; i < s.Epochs(); i++ {
				if s.Plan(i).NumRouters() > 0 {
					return fmt.Errorf("core: trace workloads require fault schedules without router events (trace endpoints cannot be filtered)")
				}
			}
		}
	}
	if r := c.Reliability; r != nil {
		if r.RTO < 0 || r.MaxAttempts < 0 || r.AckDelay < 0 {
			return fmt.Errorf("core: negative Reliability parameter")
		}
	}
	return (routing.Class{NumVCs: c.VCs, EscapeVCs: c.EscapeVCs}).Validate()
}

// Result aggregates one run's measurements.
type Result struct {
	// AvgLatency is the mean message latency in cycles, from generation
	// at the source NI to tail delivery (includes source queueing).
	AvgLatency float64
	// NetLatency excludes source queueing (injection to delivery).
	NetLatency float64
	// CI95 is the 95% confidence half-width of AvgLatency (batch means).
	CI95 float64
	// P50, P95 and P99 are latency percentiles (bucketed, ~8% accuracy),
	// exposing the tail behaviour the mean hides near saturation.
	P50, P95, P99 float64
	// AvgHops is the mean link traversals per message.
	AvgHops float64
	// Throughput is delivered flits per node per cycle. It counts first
	// deliveries only: with the reliability layer on, retransmitted
	// copies and duplicate arrivals never inflate it.
	Throughput float64
	// Delivered is the number of measured messages.
	Delivered int64
	// Cycles is the measured span.
	Cycles int64
	// TotalCycles is the total number of cycles the simulation advanced,
	// including warmup and drain — the denominator for simulator
	// throughput (cycles/second) in perf harnesses. Cycles jumped over by
	// idle-cycle fast-forward count: they are simulated time during which
	// provably nothing happened.
	TotalCycles int64
	// SkippedCycles is how many of TotalCycles the idle-cycle
	// fast-forward jumped over instead of executing individually. The
	// jump is observationally neutral — every other field is bit-
	// identical to a run with fast-forward disabled.
	SkippedCycles int64
	// MeasuredCycles is the time span of the measurement window: for
	// fixed-tier runs it equals Cycles (first to last measured
	// delivery); for Auto runs it is the window from the end of the
	// MSER-truncated transient to the last delivery — the span the
	// latency estimate actually covers. SkippedCycles jumps can overlap
	// either window only while the network is provably empty, so the
	// two fields are independent: MeasuredCycles is simulated time,
	// whether or not fast-forward executed each cycle individually.
	MeasuredCycles int64
	// Converged reports that an Auto-tier run stopped because its
	// latency confidence interval met the relative tolerance, rather
	// than by exhausting the message ceiling or a saturation guard.
	// Always false for fixed-tier runs.
	Converged bool
	// LatencyCI is the 95% confidence half-width of AvgLatency under the
	// methodology that produced it: the MSER-truncated batch-means
	// interval for Auto runs, the fixed batch-means interval (CI95) for
	// fixed runs.
	LatencyCI float64
	// Saturated marks runs that hit a saturation guard; the paper
	// prints "Sat." for these.
	Saturated bool
	SatReason string

	// The remaining fields are populated only for runs under a fault
	// schedule (and, for the retransmission counters, with the
	// reliability layer on); they are zero otherwise.

	// DroppedFlits counts flits destroyed by fault transitions — in
	// flight on dying links, buffered in dying routers, or stranded with
	// no live path.
	DroppedFlits int64
	// DroppedMessages counts messages permanently lost to transitions.
	// Zero whenever the reliability layer is on and nothing was
	// abandoned: retransmission recovered every loss.
	DroppedMessages int64
	// ReconvergenceEpochs counts the fault transitions the run executed
	// (table swaps with live route reconvergence).
	ReconvergenceEpochs int64
	// DeliveredFraction is delivered measured messages over all measured
	// messages: 1.0 when nothing measured was lost.
	DeliveredFraction float64
	// RecoveryCycles is how long after the schedule's last failure the
	// delivery rate recovered to 95% of its pre-fault mean, measured in
	// cycles over coarse delivery-rate windows; -1 when the run never
	// recovered (or provides no pre-fault baseline to compare against).
	RecoveryCycles int64
	// Retransmits, DupSuppressed and Abandoned are the reliability
	// layer's counters: message copies retransmitted after timeout,
	// duplicate deliveries suppressed at receivers, and messages given
	// up on after MaxAttempts.
	Retransmits   int64
	DupSuppressed int64
	Abandoned     int64
}

// LatencyString renders AvgLatency the way the paper's tables do.
func (r Result) LatencyString() string {
	if r.Saturated {
		return "Sat."
	}
	return fmt.Sprintf("%.1f", r.AvgLatency)
}

// plumbing bundles the immutable structural pieces shared by every run
// over the same topology and routing policy: the mesh, the routing
// algorithm, and the per-node tables. All are read-only after
// construction, so concurrent runs (sweep workers) share them freely.
type plumbing struct {
	m    *topology.Mesh
	cls  routing.Class
	alg  routing.Algorithm
	tbls []table.Table
	// epochTbls holds one table set per schedule epoch for scheduled-fault
	// runs (nil otherwise); tbls aliases epochTbls[0] then.
	epochTbls [][]table.Table
}

// plumbingCache memoizes plumbing per structural configuration for the
// lifetime of the process. Sweeps construct thousands of networks that
// differ only in workload and seed; rebuilding tables for each run used
// to be a visible fraction of low-load sweep time. The key includes the
// fault plan's canonical content: two runs differing only in damage must
// never share an algorithm or tables (TestPlumbingKeyedByFaults pins
// this), while equal damage from distinct Plan values still shares.
var plumbingCache sync.Map

func (c Config) plumbing() (*plumbing, error) {
	key := fmt.Sprintf("d%v,t%t,v%d,e%d,a%d,tb%d,f[%s],fs[%s]",
		c.Dims, c.Torus, c.VCs, c.EscapeVCs, int(c.Algorithm), int(c.Table), c.Faults.Key(), c.Schedule.Key())
	if v, ok := plumbingCache.Load(key); ok {
		return v.(*plumbing), nil
	}
	m := c.Mesh()
	cls := c.class()
	if s := c.Schedule; s != nil {
		// Scheduled runs carry one fault-aware routing policy and table
		// set per epoch; the network swaps between them at transitions.
		alg, err := c.algorithmFor(m, cls, s.Plan(0))
		if err != nil {
			return nil, err
		}
		epochTbls, err := network.BuildEpochTables(m, c.Table, cls, s, func(plan *fault.Plan) (routing.Algorithm, error) {
			return c.algorithmFor(m, cls, plan)
		})
		if err != nil {
			return nil, err
		}
		v, _ := plumbingCache.LoadOrStore(key, &plumbing{m: m, cls: cls, alg: alg, tbls: epochTbls[0], epochTbls: epochTbls})
		return v.(*plumbing), nil
	}
	alg, err := c.buildAlgorithm(m, cls)
	if err != nil {
		return nil, err
	}
	tbls := make([]table.Table, m.N())
	for id := range tbls {
		tbls[id] = table.Build(c.Table, m, alg, cls, topology.NodeID(id))
	}
	v, _ := plumbingCache.LoadOrStore(key, &plumbing{m: m, cls: cls, alg: alg, tbls: tbls})
	return v.(*plumbing), nil
}

// Run builds the network described by cfg and executes the measurement
// loop.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg = cfg.normalized()
	p, err := cfg.plumbing()
	if err != nil {
		return Result{}, err
	}
	m := p.m
	ncfg := network.Config{
		Mesh:   m,
		Faults: cfg.Faults,
		Router: router.Config{
			NumVCs: cfg.VCs, BufDepth: cfg.BufDepth, OutDepth: cfg.OutDepth,
			LookAhead: cfg.LookAhead, CutThrough: cfg.CutThrough,
		},
		LinkDelay: cfg.LinkDelay,
		Algorithm: p.alg,
		Class:     p.cls,
		Table:     cfg.Table,
		Tables:    p.tbls,
		Selection: cfg.Selection,
		Trace:     cfg.Trace,
		MsgLen:    cfg.MsgLen,
		Seed:      cfg.Seed,
		Shards:    cfg.Shards,
		EventMode: cfg.EventMode,
	}
	if cfg.Trace == nil {
		ncfg.Pattern = traffic.New(cfg.Pattern, m)
		ncfg.MsgRate = traffic.MessageRate(m, cfg.Load, cfg.MsgLen)
		ncfg.Burst = cfg.Burst
	}
	if cfg.QoS != nil {
		ncfg.QoSHiFrac = cfg.QoS.HiFrac
		ncfg.Router.ResvVCs = cfg.QoS.HiVCs
	}
	if cfg.Schedule != nil {
		ncfg.Schedule = cfg.Schedule
		ncfg.EpochTables = p.epochTbls
		ncfg.Tables = nil
	}
	if r := cfg.Reliability; r != nil {
		ncfg.Reliability = &network.Reliability{RTO: r.RTO, MaxAttempts: r.MaxAttempts, AckDelay: r.AckDelay}
	}
	if err := ncfg.Validate(); err != nil {
		return Result{}, err
	}
	net := network.New(ncfg)
	params := network.RunParams{
		WarmupMessages:  cfg.Warmup,
		MeasureMessages: cfg.Measure,
		MaxCycles:       cfg.MaxCycles,
		SatLatency:      cfg.SatLatency,
	}
	var ad *stats.Adaptive
	if cfg.Auto != nil {
		// Adaptive tier: measure from the first message (MSER-5 cuts the
		// transient statistically) up to the resolved ceiling, with the
		// controller ending the loop as soon as the CI converges.
		ad = stats.NewAdaptive(cfg.adaptive())
		params.WarmupMessages = 0
		params.MeasureMessages = ad.Config().MaxSamples
		params.Adaptive = ad
	}
	run := net.Run(params)
	res := Result{
		AvgLatency:     run.Latency.Mean(),
		NetLatency:     run.NetLatency.Mean(),
		CI95:           run.LatencyBatches.HalfWidth95(),
		P50:            run.LatencyHist.Quantile(0.50),
		P95:            run.LatencyHist.Quantile(0.95),
		P99:            run.LatencyHist.Quantile(0.99),
		AvgHops:        run.Hops.Mean(),
		Throughput:     run.Throughput(),
		Delivered:      run.Latency.N(),
		Cycles:         run.Cycles,
		MeasuredCycles: run.Cycles,
		TotalCycles:    net.Now(),
		SkippedCycles:  net.SkippedCycles(),
		Saturated:      run.Saturated,
		SatReason:      run.SatReason,
	}
	res.LatencyCI = res.CI95
	if s := cfg.Schedule; s != nil {
		res.DroppedFlits = net.DroppedFlits()
		res.DroppedMessages = net.DroppedMessages()
		res.ReconvergenceEpochs = net.ReconvergenceEpochs()
		res.DeliveredFraction = float64(run.Latency.N()) / float64(params.MeasureMessages)
		res.RecoveryCycles = recoveryCycles(net.DeliveryWindows(), s.FirstDown(), s.LastDown())
	}
	if cfg.Reliability != nil {
		res.Retransmits = net.Retransmits()
		res.DupSuppressed = net.DupSuppressed()
		res.Abandoned = net.Abandoned()
	}
	if ad != nil {
		// A run ended by a guard may not have evaluated recently; fold in
		// everything seen before reading the estimate.
		ad.Finalize()
		res.Converged = ad.Converged()
		if est := ad.Estimate(); est.Used > 0 {
			// The headline latency and throughput are truncated
			// steady-state estimates over the same window; the remaining
			// secondary statistics (NetLatency, hops, percentiles) stay
			// whole-span, transient included.
			res.AvgLatency = est.Mean
			res.CI95 = est.HalfWidth
			res.LatencyCI = est.HalfWidth
			res.MeasuredCycles = ad.MeasuredCycles()
			if w := ad.MeasuredCycles(); w > 0 {
				res.Throughput = float64(ad.WindowFlits()) / float64(w) / float64(m.N())
			}
		}
	}
	return res, nil
}

// recoveryCycles computes the post-fault recovery time from the network's
// coarse delivery-rate windows (network.WindowCycles cycles each): the
// pre-fault delivery rate is the mean over the full windows before the
// schedule's first failure, and the network has recovered at the first
// window at or after the last failure whose rate reaches 95% of it.
// Returns the cycles from the last failure to the end of that window, or
// -1 when no pre-fault baseline exists or the rate never recovers within
// the run.
func recoveryCycles(windows []int64, firstDown, lastDown int64) int64 {
	const win = network.WindowCycles
	if firstDown < 0 || lastDown < 0 {
		return -1
	}
	pre := firstDown / win // full windows before the first failure
	if pre <= 0 || pre > int64(len(windows)) {
		return -1
	}
	var sum int64
	for _, w := range windows[:pre] {
		sum += w
	}
	rate := float64(sum) / float64(pre)
	if rate <= 0 {
		return -1
	}
	for i := lastDown / win; i < int64(len(windows)); i++ {
		if float64(windows[i]) >= 0.95*rate {
			end := (i + 1) * win
			if d := end - lastDown; d > 0 {
				return d
			}
			return 0
		}
	}
	return -1
}
