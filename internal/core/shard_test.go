package core_test

import (
	"fmt"
	"testing"

	"lapses/internal/core"
	"lapses/internal/fault"
	"lapses/internal/selection"
	"lapses/internal/traffic"
)

// TestShardEquivalence is the -short-friendly (and -race-exercised)
// counterpart of the golden shard sweep: a healthy and a faulted
// configuration must produce bit-identical Results at every shard count,
// with the phase-A worker goroutines actually running (Run starts one per
// extra shard). The full golden grids cover shards {1,2,4} too, but are
// skipped under -short; this test keeps the equivalence in the race CI
// lane.
func TestShardEquivalence(t *testing.T) {
	t.Parallel()
	base := core.DefaultConfig()
	base.Dims = []int{8, 8}
	base.Selection = selection.LRU
	base.Pattern = traffic.Transpose
	base.Load = 0.3
	base.Warmup, base.Measure = 100, 800

	faulted := base
	fp, err := fault.Parse(base.Mesh(), "27-28,r9")
	if err != nil {
		t.Fatal(err)
	}
	faulted.Faults = fp
	faulted.Pattern = traffic.Uniform

	// Torus wraparound links connect the first and last row bands, so the
	// wrap case exercises cross-shard mailboxes in both directions of the
	// boundary (and shard counts beyond the row count, which clamp).
	torus := base
	torus.Torus = true
	torus.EscapeVCs = 2
	torus.Pattern = traffic.Uniform

	for name, cfg := range map[string]core.Config{"healthy": base, "faulted": faulted, "torus": torus} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var want string
			for _, shards := range []int{1, 2, 4, 8, 64} {
				c := cfg
				c.Shards = shards
				r, err := core.Run(c)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				got := fmt.Sprintf("%+v", r)
				if shards == 1 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("shards=%d diverged from serial:\n got %s\nwant %s", shards, got, want)
				}
			}
		})
	}
}
