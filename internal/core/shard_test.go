package core_test

import (
	"fmt"
	"testing"

	"lapses/internal/core"
	"lapses/internal/fault"
	"lapses/internal/selection"
	"lapses/internal/traffic"
)

// TestShardEquivalence is the -short-friendly (and -race-exercised)
// counterpart of the golden shard sweep: a healthy and a faulted
// configuration must produce bit-identical Results at every shard count,
// with the phase-A worker goroutines actually running (Run starts one per
// extra shard). The full golden grids cover shards {1,2,4} too, but are
// skipped under -short; this test keeps the equivalence in the race CI
// lane.
func TestShardEquivalence(t *testing.T) {
	t.Parallel()
	base := core.DefaultConfig()
	base.Dims = []int{8, 8}
	base.Selection = selection.LRU
	base.Pattern = traffic.Transpose
	base.Load = 0.3
	base.Warmup, base.Measure = 100, 800

	faulted := base
	fp, err := fault.Parse(base.Mesh(), "27-28,r9")
	if err != nil {
		t.Fatal(err)
	}
	faulted.Faults = fp
	faulted.Pattern = traffic.Uniform

	// Torus wraparound links connect the first and last row bands, so the
	// wrap case exercises cross-shard mailboxes in both directions of the
	// boundary (and shard counts beyond the row count, which clamp).
	torus := base
	torus.Torus = true
	torus.EscapeVCs = 2
	torus.Pattern = traffic.Uniform

	// Congestion notifications piggyback on credits, which cross the
	// phase-B barrier; bursty MMPP sources and hotspot traffic make the
	// notified levels actually vary, so this case fails if the piggyback
	// ever reads another shard's mid-step state.
	notify := base
	notify.Pattern = traffic.Hotspot
	notify.Selection = selection.NotifyMaxCredit
	notify.Burst = &traffic.Burst{OnFrac: 0.3, MeanOn: 100}

	// QoS adds the class draw to message generation and VC reservation to
	// allocation, both of which must stay identical under sharding.
	qos := base
	qos.Selection = selection.NotifyLRU
	qos.Burst = &traffic.Burst{OnFrac: 0.5, MeanOn: 50}
	qos.QoS = &core.QoSSpec{HiFrac: 0.25, HiVCs: 1}

	for name, cfg := range map[string]core.Config{
		"healthy": base, "faulted": faulted, "torus": torus,
		"notify-bursty": notify, "qos-notify": qos,
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var want string
			for _, shards := range []int{1, 2, 4, 8, 64} {
				c := cfg
				c.Shards = shards
				r, err := core.Run(c)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				got := fmt.Sprintf("%+v", r)
				if shards == 1 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("shards=%d diverged from serial:\n got %s\nwant %s", shards, got, want)
				}
			}
		})
	}
}

// TestNotifyBurstyDeterminism: MMPP sources and notification selection
// must be reproducible — two runs of the same configuration return
// bit-identical Results, on both execution kernels (event mode is not
// bit-comparable to cycle mode, but each kernel must agree with itself).
func TestNotifyBurstyDeterminism(t *testing.T) {
	t.Parallel()
	base := core.DefaultConfig()
	base.Dims = []int{8, 8}
	base.Pattern = traffic.Hotspot
	base.Selection = selection.NotifyLRU
	base.Burst = &traffic.Burst{OnFrac: 0.3, MeanOn: 100}
	base.QoS = &core.QoSSpec{HiFrac: 0.2, HiVCs: 1}
	base.Load = 0.1
	base.Warmup, base.Measure = 100, 800
	for _, events := range []bool{false, true} {
		cfg := base
		cfg.EventMode = events
		var want string
		for rep := 0; rep < 2; rep++ {
			r, err := core.Run(cfg)
			if err != nil {
				t.Fatalf("events=%t rep %d: %v", events, rep, err)
			}
			if r.Delivered == 0 {
				t.Fatalf("events=%t: nothing delivered", events)
			}
			got := fmt.Sprintf("%+v", r)
			if rep == 0 {
				want = got
			} else if got != want {
				t.Errorf("events=%t: reruns diverge:\n got %s\nwant %s", events, got, want)
			}
		}
	}
}
