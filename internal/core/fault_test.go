package core

import (
	"strings"
	"testing"

	"lapses/internal/fault"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// faultSmoke returns a quick faulted 8x8 configuration.
func faultSmoke(t *testing.T, nLinks, nRouters int, seed int64) Config {
	t.Helper()
	c := smoke()
	p, err := fault.Random(c.Mesh(), nLinks, nRouters, seed)
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = p
	return c
}

func TestFaultedRunSmoke(t *testing.T) {
	for _, alg := range []Alg{AlgDuato, AlgXY} {
		c := faultSmoke(t, 4, 1, 3)
		c.Algorithm = alg
		c.Load = 0.1
		res, err := Run(c)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Saturated {
			t.Fatalf("%s: low-load faulted run saturated: %s", alg, res.SatReason)
		}
		if res.Delivered < int64(c.Measure) {
			t.Fatalf("%s: delivered %d < %d", alg, res.Delivered, c.Measure)
		}
	}
}

// TestPlumbingKeyedByFaults is the memoization regression test: two
// configurations differing only in their fault plan must not share the
// process-wide plumbing (algorithm + tables), and equal damage expressed
// through distinct Plan values must still share.
func TestPlumbingKeyedByFaults(t *testing.T) {
	healthy := smoke()
	faulted := faultSmoke(t, 4, 0, 9)

	ph, err := healthy.plumbing()
	if err != nil {
		t.Fatal(err)
	}
	pf, err := faulted.plumbing()
	if err != nil {
		t.Fatal(err)
	}
	if ph == pf {
		t.Fatal("healthy and faulted configs share plumbing")
	}
	if ph.alg == pf.alg {
		t.Fatal("healthy and faulted configs share a routing algorithm")
	}
	// The degraded tables must actually differ somewhere: at least one
	// router near the damage routes some destination differently.
	differs := false
	for id := 0; id < len(ph.tbls) && !differs; id++ {
		for dst := topology.NodeID(0); int(dst) < len(ph.tbls); dst++ {
			if !ph.tbls[id].Lookup(dst, 0).Equal(pf.tbls[id].Lookup(dst, 0)) {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Fatal("faulted tables identical to healthy tables")
	}

	// Same damage, different Plan pointer: plumbing and sweep keys match.
	faulted2 := faultSmoke(t, 4, 0, 9)
	if faulted.Faults == faulted2.Faults {
		t.Fatal("test needs distinct Plan pointers")
	}
	pf2, err := faulted2.plumbing()
	if err != nil {
		t.Fatal(err)
	}
	if pf2 != pf {
		t.Fatal("equal fault content did not share plumbing")
	}
	if faulted.Key() != faulted2.Key() {
		t.Fatal("equal fault content produced different sweep keys")
	}
	if healthy.Key() == faulted.Key() {
		t.Fatal("fault plan missing from Config.Key")
	}
}

// A disconnecting plan must surface as a descriptive Run error.
func TestDisconnectedPlanError(t *testing.T) {
	c := smoke()
	c.Dims = []int{2, 2}
	m := c.Mesh()
	p, err := fault.New(m, []fault.Link{
		{Node: 0, Port: topology.PortPlus(0)},
		{Node: 0, Port: topology.PortPlus(1)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = p
	_, err = Run(c)
	if err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("want disconnection error, got %v", err)
	}
}

// Meta tables have no degraded form, and traces cannot target dead
// routers; both must be rejected at the Validate gate, not deep in Run.
func TestFaultsRejectMetaTables(t *testing.T) {
	c := faultSmoke(t, 2, 0, 1)
	c.Table = table.KindMetaBlock
	if err := c.Validate(); err == nil {
		t.Fatal("meta table + faults accepted")
	}
}

func TestFaultsRejectTraceWithDeadRouters(t *testing.T) {
	c := faultSmoke(t, 0, 1, 1)
	tr, err := traffic.NewTrace([]traffic.TraceMsg{{At: 0, Src: 0, Dst: 1, Length: 4}})
	if err != nil {
		t.Fatal(err)
	}
	c.Trace = tr
	c.Warmup, c.Measure = 0, 1
	err = c.Validate()
	if err == nil || !strings.Contains(err.Error(), "dead routers") {
		t.Fatalf("trace + dead-router plan: want dead-routers error, got %v", err)
	}
	// Link-only plans remain valid with traces.
	c2 := faultSmoke(t, 2, 0, 1)
	c2.Trace = tr
	c2.Warmup, c2.Measure = 0, 1
	if err := c2.Validate(); err != nil {
		t.Fatalf("trace + link-only plan rejected: %v", err)
	}
}

// Determinism: the same faulted config run twice must produce identical
// results (fault plans and degraded routing are fully deterministic).
func TestFaultedRunDeterministic(t *testing.T) {
	c := faultSmoke(t, 3, 1, 5)
	c.Load = 0.15
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("faulted runs diverge:\n%+v\n%+v", a, b)
	}
}
