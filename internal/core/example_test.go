package core_test

import (
	"fmt"

	"lapses/internal/core"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/traffic"
)

// The smallest useful simulation: an 8x8 mesh with the full LAPSES router
// at a fixed seed, printing whether the run stayed below saturation.
func ExampleRun() {
	cfg := core.DefaultConfig()
	cfg.Dims = []int{8, 8}
	cfg.Load = 0.2
	cfg.Warmup, cfg.Measure = 100, 1000
	res, err := core.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("saturated:", res.Saturated)
	fmt.Println("delivered:", res.Delivered)
	// Output:
	// saturated: false
	// delivered: 1000
}

// Comparing two router designs is a matter of flipping config fields: here
// PROUD vs LA-PROUD on the same workload and seed.
func ExampleConfig_lookAhead() {
	base := core.DefaultConfig()
	base.Dims = []int{8, 8}
	base.Load = 0.1
	base.Warmup, base.Measure = 100, 2000

	base.LookAhead = false
	proud, _ := core.Run(base)
	base.LookAhead = true
	la, _ := core.Run(base)
	fmt.Println("look-ahead is faster:", la.AvgLatency < proud.AvgLatency)
	// Output:
	// look-ahead is faster: true
}

// The recipe's storage step: economical-storage tables behave exactly like
// full tables at a fraction of the entries.
func ExampleConfig_economicalStorage() {
	cfg := core.DefaultConfig()
	cfg.Dims = []int{8, 8}
	cfg.Pattern = traffic.Transpose
	cfg.Load = 0.3
	cfg.Selection = selection.StaticXY
	cfg.Warmup, cfg.Measure = 100, 2000

	cfg.Table = table.KindFull
	full, _ := core.Run(cfg)
	cfg.Table = table.KindES
	es, _ := core.Run(cfg)
	fmt.Println("identical:", full.AvgLatency == es.AvgLatency)
	// Output:
	// identical: true
}
