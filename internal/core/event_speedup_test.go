package core

import (
	"testing"
	"time"

	"lapses/internal/selection"
)

// speedupPoint is the acceptance point from the event-mode issue: 16x16
// uniform at load 0.05 — high enough that idle-cycle fast-forward never
// fires (skipped_frac ~0.0003), low enough that most routers are quiescent
// when a flit arrives, which is exactly the regime the express path exists
// for. It mirrors lapses-bench's sim/16x16 points (StaticXY selection,
// small fixed sample).
func speedupPoint(events bool) Config {
	c := DefaultConfig()
	c.Selection = selection.StaticXY
	c.Load = 0.05
	c.Warmup = 100
	c.Measure = 1000
	c.Seed = 1
	c.EventMode = events
	return c
}

// cyclesPerSec runs cfg and returns simulated cycles per wall-clock
// second, best of reps to shed scheduler noise.
func cyclesPerSec(t *testing.T, cfg Config, reps int) float64 {
	t.Helper()
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err := Run(cfg)
		el := time.Since(start).Seconds()
		if err != nil {
			t.Fatal(err)
		}
		if res.Saturated {
			t.Fatalf("speedup point saturated: %s", res.SatReason)
		}
		if cps := float64(res.TotalCycles) / el; cps > best {
			best = cps
		}
	}
	return best
}

// TestEventModeSpeedup pins the event-driven mode's reason to exist: at
// the load where fast-forward buys nothing, event mode must simulate at
// least 3x as many cycles per second as the cycle-accurate kernel.
// Wall-clock assertions are meaningless under the race detector and too
// slow for -short, so both skip.
func TestEventModeSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison; skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock comparison; skipped under the race detector")
	}
	cycle := cyclesPerSec(t, speedupPoint(false), 3)
	event := cyclesPerSec(t, speedupPoint(true), 3)
	ratio := event / cycle
	t.Logf("cycle mode %.0f cycles/sec, event mode %.0f cycles/sec: %.2fx", cycle, event, ratio)
	if ratio < 3 {
		t.Errorf("event mode speedup %.2fx < 3x at 16x16 uniform load 0.05", ratio)
	}
}
