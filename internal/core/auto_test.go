package core_test

import (
	"testing"

	"lapses/internal/core"
	"lapses/internal/selection"
)

// autoBase is the shared adaptive-tier test point: an 8x8 mesh at a
// comfortable load, with a fixed-tier budget the Auto tier defaults its
// ceiling from.
func autoBase() core.Config {
	c := core.DefaultConfig()
	c.Dims = []int{8, 8}
	c.Selection = selection.StaticXY
	c.Load = 0.2
	c.Warmup, c.Measure = 300, 6000
	c.Seed = 3
	return c
}

// TestAutoConvergesEarlier is the tier's reason to exist: on a stable
// operating point the adaptive run must stop on CI convergence well
// before the fixed budget it defaults its ceiling from, with the
// truncated estimate agreeing with the fixed-tier answer.
func TestAutoConvergesEarlier(t *testing.T) {
	t.Parallel()
	fixed, err := core.Run(autoBase())
	if err != nil {
		t.Fatal(err)
	}
	ac := autoBase()
	ac.Auto = &core.AutoMeasure{RelTol: 0.05}
	auto, err := core.Run(ac)
	if err != nil {
		t.Fatal(err)
	}
	if !auto.Converged {
		t.Fatalf("auto run did not converge: %+v", auto)
	}
	budget := int64(ac.Warmup + ac.Measure)
	if auto.Delivered >= budget {
		t.Fatalf("auto delivered %d messages, fixed budget is %d — no early stop", auto.Delivered, budget)
	}
	if auto.TotalCycles >= fixed.TotalCycles {
		t.Fatalf("auto simulated %d cycles vs fixed %d — no cycle saving", auto.TotalCycles, fixed.TotalCycles)
	}
	if auto.LatencyCI <= 0 || auto.MeasuredCycles <= 0 {
		t.Fatalf("auto run missing CI/window: %+v", auto)
	}
	if auto.MeasuredCycles > auto.TotalCycles {
		t.Fatalf("measured window %d exceeds total %d", auto.MeasuredCycles, auto.TotalCycles)
	}
	// The CI actually met the tolerance it stopped on.
	if auto.LatencyCI > 0.05*auto.AvgLatency {
		t.Fatalf("reported CI %.3f above tolerance at mean %.1f", auto.LatencyCI, auto.AvgLatency)
	}
	// Both tiers estimate the same steady state; the CI bounds the gap
	// loosely (different sample windows), so allow a few half-widths.
	if diff := auto.AvgLatency - fixed.AvgLatency; diff < -6*auto.LatencyCI || diff > 6*auto.LatencyCI {
		t.Fatalf("auto latency %.2f vs fixed %.2f: outside 6 half-widths (%.3f)",
			auto.AvgLatency, fixed.AvgLatency, auto.LatencyCI)
	}
	// Fixed-tier runs must not grow adaptive fields.
	if fixed.Converged {
		t.Fatal("fixed-tier run reports Converged")
	}
	if fixed.MeasuredCycles != fixed.Cycles {
		t.Fatalf("fixed-tier MeasuredCycles %d != Cycles %d", fixed.MeasuredCycles, fixed.Cycles)
	}
	if fixed.LatencyCI != fixed.CI95 {
		t.Fatalf("fixed-tier LatencyCI %v != CI95 %v", fixed.LatencyCI, fixed.CI95)
	}
}

// TestAutoDeterministicAcrossShards: the adaptive stopping decision rides
// the barrier-replay delivery order, so auto runs must stay bit-identical
// for every shard count, exactly like fixed runs.
func TestAutoDeterministicAcrossShards(t *testing.T) {
	t.Parallel()
	mk := func(shards int) core.Result {
		c := autoBase()
		c.Auto = &core.AutoMeasure{RelTol: 0.05}
		c.Shards = shards
		r, err := core.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := mk(1)
	for _, shards := range []int{2, 4} {
		got := mk(shards)
		// SkippedCycles legitimately differs only if fast-forward behaved
		// differently — it must not.
		if got != base {
			t.Fatalf("shards=%d diverged:\nserial  %+v\nsharded %+v", shards, base, got)
		}
	}
	// And across repeated identical runs.
	if again := mk(1); again != base {
		t.Fatalf("repeat run diverged:\n%+v\n%+v", base, again)
	}
}

// TestAutoConfigKey: the adaptive tier is part of the memo identity —
// opt-in never collides with the fixed tier, equal resolved rules share,
// different tolerances do not.
func TestAutoConfigKey(t *testing.T) {
	t.Parallel()
	fixed := autoBase()
	a := autoBase()
	a.Auto = &core.AutoMeasure{RelTol: 0.05}
	if fixed.Key() == a.Key() {
		t.Fatal("auto config shares the fixed tier's key")
	}
	// An explicit ceiling equal to the default resolves identically.
	b := autoBase()
	b.Auto = &core.AutoMeasure{RelTol: 0.05, MaxMessages: b.Warmup + b.Measure}
	if a.Key() != b.Key() {
		t.Fatalf("equal resolved rules keyed apart:\n%s\n%s", a.Key(), b.Key())
	}
	c := autoBase()
	c.Auto = &core.AutoMeasure{RelTol: 0.02}
	if a.Key() == c.Key() {
		t.Fatal("different tolerances share a key")
	}
}

// TestAutoValidate covers the tier's configuration errors.
func TestAutoValidate(t *testing.T) {
	t.Parallel()
	bad := autoBase()
	bad.Auto = &core.AutoMeasure{RelTol: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative RelTol validated")
	}
	bad = autoBase()
	bad.Auto = &core.AutoMeasure{MinMessages: 500, MaxMessages: 100}
	if err := bad.Validate(); err == nil {
		t.Error("floor above ceiling validated")
	}
	ok := autoBase()
	ok.Auto = &core.AutoMeasure{}
	if err := ok.Validate(); err != nil {
		t.Errorf("zero-value AutoMeasure rejected: %v", err)
	}
}
