package core_test

import (
	"fmt"
	"strings"
	"testing"

	"lapses/internal/core"
	"lapses/internal/fault"
)

// TestScheduleKeys pins the cache-key contract for transient-fault
// schedules: a static schedule is the same simulation as the equivalent
// plain fault plan and must share its key byte for byte (old cache lines
// stay valid), while timed schedules and the reliability layer always key
// apart from everything else.
func TestScheduleKeys(t *testing.T) {
	t.Parallel()
	base := core.DefaultConfig()
	base.Dims = []int{8, 8}
	m := base.Mesh()

	plan, err := fault.Parse(m, "27-28,r9")
	if err != nil {
		t.Fatal(err)
	}
	static, err := fault.ParseSchedule(m, "27-28,r9")
	if err != nil {
		t.Fatal(err)
	}
	asPlan, asSched := base, base
	asPlan.Faults = plan
	asSched.Schedule = static
	if asPlan.Key() != asSched.Key() {
		t.Errorf("static schedule keys differently from its plan:\n%s\n%s", asSched.Key(), asPlan.Key())
	}

	timed, err := fault.ParseSchedule(m, "27-28@500:2000")
	if err != nil {
		t.Fatal(err)
	}
	withSched := base
	withSched.Schedule = timed
	if k := withSched.Key(); !strings.Contains(k, ",fs[27-28@500:2000]") {
		t.Errorf("timed schedule missing from key %s", k)
	}
	withRel := base
	withRel.Reliability = &core.Reliability{RTO: 512}
	if k := withRel.Key(); !strings.Contains(k, ",rel[512,0,0]") {
		t.Errorf("reliability layer missing from key %s", k)
	}
	if k := base.Key(); strings.Contains(k, ",fs[") || strings.Contains(k, ",rel[") {
		t.Errorf("healthy key polluted: %s", k)
	}

	both := base
	both.Faults = plan
	both.Schedule = timed
	if err := both.Validate(); err == nil {
		t.Error("Faults + non-static Schedule validated")
	}
}

// TestScheduleStaticCollapse: running a static schedule produces the
// bit-identical Result of running its plan directly — the degenerate
// schedule is the same simulation, not a near miss.
func TestScheduleStaticCollapse(t *testing.T) {
	t.Parallel()
	base := core.DefaultConfig().QuickFidelity()
	base.Dims = []int{8, 8}
	m := base.Mesh()
	plan, err := fault.Parse(m, "27-28,35-43")
	if err != nil {
		t.Fatal(err)
	}
	static, err := fault.ParseSchedule(m, "27-28,35-43")
	if err != nil {
		t.Fatal(err)
	}
	asPlan, asSched := base, base
	asPlan.Faults = plan
	asSched.Schedule = static
	a, err := core.Run(asPlan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(asSched)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("static schedule diverges from its plan:\n%+v\n%+v", a, b)
	}
}

// TestScheduleRunEquivalence runs one scheduled-fault configuration —
// failures landing mid-measurement, both healing — at shard counts 1, 2
// and 4 and requires bit-identical Results, extending the repo-wide
// shard-equivalence guarantee through the core API's transition path. It
// also pins that the schedule counters reach the Result.
func TestScheduleRunEquivalence(t *testing.T) {
	t.Parallel()
	c := core.DefaultConfig()
	c.Dims = []int{8, 8}
	c.Load = 0.2
	c.Warmup, c.Measure = 100, 1500
	c.Seed = 3
	sched, err := fault.ParseSchedule(c.Mesh(), "27-28@800:2500,r9@1000:3000")
	if err != nil {
		t.Fatal(err)
	}
	c.Schedule = sched
	var want string
	for _, shards := range []int{1, 2, 4} {
		cc := c
		cc.Shards = shards
		r, err := core.Run(cc)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if r.Saturated {
			t.Fatalf("shards=%d: saturated: %s", shards, r.SatReason)
		}
		if r.ReconvergenceEpochs != 4 {
			t.Fatalf("shards=%d: expected 4 transitions, saw %d", shards, r.ReconvergenceEpochs)
		}
		if r.DroppedFlits == 0 {
			t.Fatalf("shards=%d: transitions destroyed no flits", shards)
		}
		if r.DeliveredFraction <= 0 || r.DeliveredFraction > 1 {
			t.Fatalf("shards=%d: delivered fraction %g outside (0, 1]", shards, r.DeliveredFraction)
		}
		got := fmt.Sprintf("%+v", r)
		if shards == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("shards=%d diverged:\n%s\nwant\n%s", shards, got, want)
		}
	}
}

// TestScheduleReliabilityRun: with the reliability layer on, a scheduled
// fault storm costs latency but no messages — the delivered fraction is
// exactly 1 and nothing is abandoned or lost.
func TestScheduleReliabilityRun(t *testing.T) {
	t.Parallel()
	c := core.DefaultConfig()
	c.Dims = []int{8, 8}
	c.Load = 0.2
	c.Warmup, c.Measure = 100, 1500
	c.Seed = 3
	sched, err := fault.ParseSchedule(c.Mesh(), "27-28@800:2500,36-37@900:2600")
	if err != nil {
		t.Fatal(err)
	}
	c.Schedule = sched
	c.Reliability = &core.Reliability{RTO: 600, MaxAttempts: 20, AckDelay: 32}
	r, err := core.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Saturated {
		t.Fatalf("saturated: %s", r.SatReason)
	}
	if r.DroppedFlits == 0 {
		t.Fatal("storm destroyed no flits; pick a harsher schedule")
	}
	if r.DeliveredFraction != 1 {
		t.Fatalf("delivered fraction %g != 1 with reliability on", r.DeliveredFraction)
	}
	if r.DroppedMessages != 0 || r.Abandoned != 0 {
		t.Fatalf("reliability left %d dropped / %d abandoned", r.DroppedMessages, r.Abandoned)
	}
}
