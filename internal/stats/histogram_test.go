package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram not zeroed")
	}
	if h.Bars(40) != "(empty)\n" {
		t.Error("empty bars wrong")
	}
}

func TestHistogramQuantilesApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var h Histogram
	var vals []float64
	for i := 0; i < 20000; i++ {
		// Latency-like distribution: base + exponential tail.
		v := 60 + rng.ExpFloat64()*80
		h.Add(v)
		vals = append(vals, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := h.Quantile(q)
		want := Percentile(vals, q)
		// Bucket resolution is 8%; allow 10%.
		if got < want*0.90 || got > want*1.10 {
			t.Errorf("q%.2f: histogram %.1f exact %.1f", q, got, want)
		}
	}
	if !strings.Contains(h.String(), "p99=") {
		t.Error("summary missing p99")
	}
	if !strings.Contains(h.Bars(30), "#") {
		t.Error("bars missing content")
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	f := func(raw []uint16) bool {
		var h Histogram
		for _, r := range raw {
			h.Add(float64(r))
		}
		if h.N() == 0 {
			return true
		}
		last := 0.0
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileExact(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if p := Percentile(vals, 0.5); p != 50 {
		t.Errorf("p50 = %v", p)
	}
	if p := Percentile(vals, 1.0); p != 100 {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
}
