package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Fatal("empty sample not zeroed")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	// Known population: sample variance = 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("Var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleSingle(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.Var() != 0 || s.StdDev() != 0 {
		t.Error("single observation should have zero variance")
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Error("min/max wrong")
	}
}

func TestBatches(t *testing.T) {
	b := NewBatches(10)
	for i := 0; i < 100; i++ {
		b.Add(float64(i % 10))
	}
	if b.NumBatches() != 10 {
		t.Fatalf("batches = %d", b.NumBatches())
	}
	// Every batch holds 0..9, mean 4.5; CI width ~0.
	if b.Mean() != 4.5 {
		t.Errorf("mean = %v", b.Mean())
	}
	if hw := b.HalfWidth95(); hw > 1e-9 {
		t.Errorf("half-width = %v want ~0", hw)
	}
	if len(b.BatchMeans()) != 10 {
		t.Error("history length wrong")
	}
}

func TestBatchesCIShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small := NewBatches(100)
	big := NewBatches(100)
	for i := 0; i < 2000; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 40000; i++ {
		big.Add(rng.NormFloat64())
	}
	if small.HalfWidth95() <= big.HalfWidth95() {
		t.Errorf("CI did not shrink with more data: %v vs %v", small.HalfWidth95(), big.HalfWidth95())
	}
}

func TestBatchesIncomplete(t *testing.T) {
	b := NewBatches(100)
	b.Add(1)
	if b.NumBatches() != 0 {
		t.Error("incomplete batch counted")
	}
	if !math.IsInf(b.HalfWidth95(), 1) {
		t.Error("half-width should be infinite with <2 batches")
	}
}

func TestRun(t *testing.T) {
	r := NewRun(256, 50)
	for i := 0; i < 100; i++ {
		r.Record(100+float64(i%5), 90, 10, 20)
	}
	r.Cycles = 1000
	if r.Latency.N() != 100 || r.NetLatency.Mean() != 90 || r.Hops.Mean() != 10 {
		t.Error("record bookkeeping wrong")
	}
	// 100 msgs * 20 flits / 1000 cycles / 256 nodes.
	want := 2000.0 / 1000.0 / 256.0
	if math.Abs(r.Throughput()-want) > 1e-12 {
		t.Errorf("throughput = %v want %v", r.Throughput(), want)
	}
	if r.LatencyString() == "Sat." {
		t.Error("unsaturated run printed Sat.")
	}
	r.Saturated = true
	if r.LatencyString() != "Sat." {
		t.Error("saturated run must print Sat.")
	}
}

// Property: mean lies within [min, max] and variance is non-negative.
func TestQuickSampleInvariants(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		ok := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep inputs in the magnitude range of real measurements
			// so sumSq cannot overflow.
			v = math.Mod(v, 1e9)
			s.Add(v)
			ok = true
		}
		if !ok {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
