package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates a latency distribution in exponentially growing
// buckets, cheap enough to run on every message. It reports approximate
// percentiles (exact within one bucket's resolution) — the tail behaviour
// near saturation that a bare mean hides.
type Histogram struct {
	counts []int64
	n      int64
	max    float64
}

// bucketFor maps a value to its bucket: ~8% geometric spacing.
func bucketFor(v float64) int {
	if v < 1 {
		return 0
	}
	return int(math.Log(v)/math.Log(1.08)) + 1
}

// bucketUpper returns the upper bound of bucket b.
func bucketUpper(b int) float64 {
	if b == 0 {
		return 1
	}
	return math.Pow(1.08, float64(b))
}

// Add records one observation (negative values count into bucket 0).
func (h *Histogram) Add(v float64) {
	b := bucketFor(v)
	if b >= len(h.counts) {
		grown := make([]int64, b+16)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
	h.n++
	if v > h.max {
		h.max = v
	}
}

// N returns the observation count.
func (h *Histogram) N() int64 { return h.n }

// Quantile returns the approximate q-quantile (0 < q <= 1): the upper
// bound of the bucket containing the q*N-th observation. Returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			u := bucketUpper(b)
			if u > h.max && h.max > 0 {
				return h.max
			}
			return u
		}
	}
	return h.max
}

// String renders a compact percentile summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("p50=%.0f p95=%.0f p99=%.0f max=%.0f",
		h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max)
}

// Bars renders an ASCII latency histogram over the populated buckets,
// width columns wide, for terminal inspection.
func (h *Histogram) Bars(width int) string {
	if h.n == 0 {
		return "(empty)\n"
	}
	if width < 10 {
		width = 10
	}
	first, last := -1, 0
	var peak int64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		if first < 0 {
			first = b
		}
		last = b
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	for b := first; b <= last; b++ {
		c := h.counts[b]
		bar := int(float64(c) / float64(peak) * float64(width))
		fmt.Fprintf(&sb, "%8.0f |%s %d\n", bucketUpper(b), strings.Repeat("#", bar), c)
	}
	return sb.String()
}

// Percentile computes an exact percentile of a small sample slice, used by
// tests to validate the histogram approximation.
func Percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
