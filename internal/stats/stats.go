// Package stats collects the latency and throughput measurements the
// paper's evaluation reports: average message latency versus normalized
// load, with warm-up exclusion, batch-means confidence intervals, and the
// saturation marker ("Sat.") used throughout Table 4.
package stats

import (
	"fmt"
	"math"
)

// Sample accumulates a scalar series (latencies, hop counts, queue depths).
// The zero value is an empty sample ready to use.
type Sample struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the observation count.
func (s *Sample) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Var returns the unbiased sample variance.
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := (s.sumSq - float64(s.n)*m*m) / float64(s.n-1)
	if v < 0 {
		return 0 // numeric noise
	}
	return v
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min and Max return the extremes (0 for empty samples).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.max }

// Batches implements the method of batch means for steady-state confidence
// intervals: observations are grouped into fixed-size batches and the
// batch means treated as independent samples.
type Batches struct {
	size    int64
	cur     Sample
	means   Sample
	history []float64
}

// NewBatches groups observations into batches of the given size.
func NewBatches(size int64) *Batches {
	if size < 1 {
		panic("stats: batch size < 1")
	}
	return &Batches{size: size}
}

// Add records one observation.
func (b *Batches) Add(v float64) {
	b.cur.Add(v)
	if b.cur.N() == b.size {
		m := b.cur.Mean()
		b.means.Add(m)
		b.history = append(b.history, m)
		b.cur = Sample{}
	}
}

// NumBatches returns the number of completed batches.
func (b *Batches) NumBatches() int64 { return b.means.N() }

// Mean returns the grand mean over completed batches.
func (b *Batches) Mean() float64 { return b.means.Mean() }

// HalfWidth95 returns the 95% confidence half-width of the mean using a
// normal approximation over batch means (adequate for the >=10 batches the
// harness uses).
func (b *Batches) HalfWidth95() float64 {
	k := b.means.N()
	if k < 2 {
		return math.Inf(1)
	}
	return 1.96 * b.means.StdDev() / math.Sqrt(float64(k))
}

// BatchMeans returns a copy of the completed batch means.
func (b *Batches) BatchMeans() []float64 {
	out := make([]float64, len(b.history))
	copy(out, b.history)
	return out
}

// Run aggregates one simulation run's results.
type Run struct {
	// Latency is message latency from generation to tail delivery,
	// including source queueing.
	Latency Sample
	// NetLatency is measured from header injection into the source
	// router, excluding source queueing.
	NetLatency Sample
	// Hops counts link traversals per message.
	Hops Sample
	// LatencyBatches supports confidence intervals on Latency.
	LatencyBatches *Batches
	// LatencyHist records the latency distribution for percentiles.
	LatencyHist Histogram

	// DeliveredFlits counts flits delivered during measurement.
	DeliveredFlits int64
	// Cycles is the measured simulation span.
	Cycles int64
	// Nodes is the network size, for per-node normalization.
	Nodes int

	// Saturated marks runs that hit the saturation guard: the paper
	// prints "Sat." instead of a latency.
	Saturated bool
	// SatReason explains which guard tripped.
	SatReason string
}

// NewRun returns a run collector with the given latency batch size.
func NewRun(nodes int, batchSize int64) *Run {
	return &Run{Nodes: nodes, LatencyBatches: NewBatches(batchSize)}
}

// Record adds one delivered message's measurements.
func (r *Run) Record(latency, netLatency float64, hops int, flits int) {
	r.Latency.Add(latency)
	r.NetLatency.Add(netLatency)
	r.Hops.Add(float64(hops))
	r.LatencyBatches.Add(latency)
	r.LatencyHist.Add(latency)
	r.DeliveredFlits += int64(flits)
}

// Throughput returns delivered flits per node per cycle over the measured
// span.
func (r *Run) Throughput() float64 {
	if r.Cycles == 0 || r.Nodes == 0 {
		return 0
	}
	return float64(r.DeliveredFlits) / float64(r.Cycles) / float64(r.Nodes)
}

// LatencyString renders the average latency the way the paper's tables do:
// a number, or "Sat." when saturated.
func (r *Run) LatencyString() string {
	if r.Saturated {
		return "Sat."
	}
	return fmt.Sprintf("%.1f", r.Latency.Mean())
}
