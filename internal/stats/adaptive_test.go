package stats

import (
	"math"
	"testing"

	"lapses/internal/traffic"
)

// rng returns the clonable, per-seed-cached traffic generator the
// simulator itself injects with, so these tests exercise the adaptive
// estimator on the exact random streams production runs see.
func rng(seed int64) func() float64 {
	r := traffic.NewInjector(1, seed).RNG()
	return r.Float64
}

// groupBy5 batches a raw series into MSER-5 means.
func groupBy5(xs []float64) []float64 {
	var out []float64
	for i := 0; i+5 <= len(xs); i += 5 {
		s := 0.0
		for _, v := range xs[i : i+5] {
			s += v
		}
		out = append(out, s/5)
	}
	return out
}

// TestMser5DeterministicRamp pins the truncation point on a series with a
// known transient: a strictly decreasing ramp over the first 100
// observations, then a constant steady state. Every cut inside the
// constant region scores zero, so MSER must pick the shallowest cut that
// clears the ramp exactly.
func TestMser5DeterministicRamp(t *testing.T) {
	t.Parallel()
	var xs []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, 1000-10*float64(i)) // transient: 1000 -> 10
	}
	for i := 0; i < 400; i++ {
		xs = append(xs, 5) // steady state
	}
	d, ok := Mser5(groupBy5(xs))
	if !ok {
		t.Fatal("MSER-5 rejected a series with a cleared transient")
	}
	if d != 20 { // 100 observations / 5 per batch
		t.Fatalf("truncation point = %d batches, want 20", d)
	}
}

// TestMser5StationarySeries: with no transient at all, the rule should
// cut at most a token prefix.
func TestMser5StationarySeries(t *testing.T) {
	t.Parallel()
	next := rng(11)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 100 + 10*next()
	}
	d, ok := Mser5(groupBy5(xs))
	if !ok {
		t.Fatal("MSER-5 rejected a stationary series")
	}
	if max := len(xs) / 5 / 10; d > max {
		t.Fatalf("truncation point = %d batches on stationary data, want <= %d", d, max)
	}
}

// TestMser5RejectsUnfinishedTransient: a series that is still ramping at
// its end has its MSER minimum in the second half, which the rule must
// refuse (returning ok=false) rather than produce a bogus estimate.
func TestMser5RejectsUnfinishedTransient(t *testing.T) {
	t.Parallel()
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 1000 - float64(i) // never levels off
	}
	if d, ok := Mser5(groupBy5(xs)); ok {
		t.Fatalf("MSER-5 accepted an unfinished transient (d=%d)", d)
	}
}

// TestAdaptiveTruncatesRamp runs the full controller end to end on the
// ramp-then-constant series: it must converge at the second eligible
// check (the first passing one plus its stability confirmation), report
// the exact truncation point, and bound the measured window to the
// steady-state span.
func TestAdaptiveTruncatesRamp(t *testing.T) {
	t.Parallel()
	a := NewAdaptive(AdaptiveConfig{MinSamples: 600, CheckEvery: 600, MaxSamples: 6000})
	for i := 0; i < 6000; i++ {
		v := 5.0
		if i < 100 {
			v = 1000 - 10*float64(i)
		}
		a.Add(v, 1, int64(i))
		if a.Stopped() {
			break
		}
	}
	if !a.Converged() {
		t.Fatal("constant steady state did not converge")
	}
	if a.N() != 1200 {
		t.Fatalf("stopped after %d samples, want 1200 (first check + confirmation)", a.N())
	}
	est := a.Estimate()
	if est.Mean != 5 || est.HalfWidth != 0 {
		t.Fatalf("estimate = %+v, want mean 5 half-width 0", est)
	}
	if est.Truncated != 100 {
		t.Fatalf("truncated %d observations, want 100", est.Truncated)
	}
	// Window: from the last truncated observation (time 99) to the stop
	// (time 1199).
	if a.MeasuredCycles() != 1100 {
		t.Fatalf("measured window = %d cycles, want 1100", a.MeasuredCycles())
	}
}

// TestAdaptiveBatchMeansAR1 checks the estimator against a closed-form
// property of a known AR(1) process x_t = phi*x_{t-1} + eps: positive
// autocorrelation inflates the variance of the sample mean by
// (1+phi)/(1-phi) over the iid formula, so the batch-means half-width
// must be well above the naive iid half-width (which is exactly the
// failure mode batch means exist to fix), and near the theoretical
// inflation.
func TestAdaptiveBatchMeansAR1(t *testing.T) {
	t.Parallel()
	const phi = 0.8
	const n = 100000
	next := rng(7)
	a := NewAdaptive(AdaptiveConfig{RelTol: 1e-9, MinSamples: n, MaxSamples: n, CheckEvery: n})
	var naive Sample
	x := 0.0
	for i := 0; i < n; i++ {
		eps := next() - 0.5
		x = phi*x + eps
		v := 100 + x
		a.Add(v, 1, int64(i))
		naive.Add(v)
	}
	a.Finalize()
	est := a.Estimate()
	if est.Used == 0 {
		t.Fatal("no estimate formed")
	}
	if math.Abs(est.Mean-100) > 1 {
		t.Fatalf("mean = %.3f, want ~100", est.Mean)
	}
	naiveHW := 1.96 * naive.StdDev() / math.Sqrt(float64(naive.N()))
	inflation := est.HalfWidth / naiveHW
	// Theory: sqrt((1+phi)/(1-phi)) = 3.0 for phi=0.8. Batch means with
	// 20 macro batches is a noisy estimator of it; accept a broad but
	// decisive band (the naive CI would sit at 1.0).
	if inflation < 1.8 || inflation > 4.5 {
		t.Fatalf("AR(1) CI inflation = %.2f (hw %.4f vs naive %.4f), want ~3.0 in [1.8, 4.5]",
			inflation, est.HalfWidth, naiveHW)
	}
}

// TestAdaptiveCICoverage replays many independent stationary series and
// checks that the reported 95% interval actually covers the true mean at
// roughly its nominal rate. The normal approximation over 20 batch means
// loses a little coverage; 85% is the regression floor.
func TestAdaptiveCICoverage(t *testing.T) {
	t.Parallel()
	const reps = 200
	const n = 3000
	const trueMean = 100.0
	covered := 0
	for rep := 0; rep < reps; rep++ {
		next := rng(1000 + int64(rep))
		a := NewAdaptive(AdaptiveConfig{RelTol: 1e-9, MinSamples: n, MaxSamples: n, CheckEvery: n})
		for i := 0; i < n; i++ {
			a.Add(trueMean+200*(next()-0.5), 1, int64(i))
		}
		a.Finalize()
		est := a.Estimate()
		if est.Used == 0 {
			t.Fatalf("rep %d: no estimate", rep)
		}
		if math.Abs(est.Mean-trueMean) <= est.HalfWidth {
			covered++
		}
	}
	if frac := float64(covered) / reps; frac < 0.85 {
		t.Fatalf("95%% CI covered the true mean in %.0f%% of %d replications, want >= 85%%", frac*100, reps)
	}
}

// TestAdaptiveStopsEarlyOnTightSeries: a low-variance series must
// converge well before the ceiling; a high-variance one must run to it
// and report no convergence.
func TestAdaptiveStopsEarlyOnTightSeries(t *testing.T) {
	t.Parallel()
	next := rng(3)
	tight := NewAdaptive(AdaptiveConfig{RelTol: 0.05, MinSamples: 400, CheckEvery: 200, MaxSamples: 50000})
	i := int64(0)
	for !tight.Stopped() {
		tight.Add(100+next(), 1, i)
		i++
	}
	if !tight.Converged() || tight.N() >= 50000 {
		t.Fatalf("tight series: converged=%v after %d samples", tight.Converged(), tight.N())
	}

	loose := NewAdaptive(AdaptiveConfig{RelTol: 1e-6, MinSamples: 400, CheckEvery: 200, MaxSamples: 2000})
	i = 0
	for !loose.Stopped() {
		loose.Add(1000*next(), 1, i)
		i++
	}
	if loose.Converged() || loose.N() != 2000 {
		t.Fatalf("loose series: converged=%v after %d samples, want ceiling stop at 2000", loose.Converged(), loose.N())
	}
}

// TestAdaptiveStaleEstimateCleared: a series that looks stationary early
// but then drifts must not end with the early snapshot as its estimate —
// once MSER rejects the drifting series, the estimate clears and readers
// fall back to whole-span statistics.
func TestAdaptiveStaleEstimateCleared(t *testing.T) {
	t.Parallel()
	next := rng(9)
	a := NewAdaptive(AdaptiveConfig{RelTol: 1e-9, MinSamples: 1000, CheckEvery: 1000, MaxSamples: 8000})
	for i := 0; i < 8000 && !a.Stopped(); i++ {
		v := 100 + next()
		if i >= 2000 {
			v += float64(i-2000) * 0.5 // drift toward saturation
		}
		a.Add(v, 1, int64(i))
	}
	a.Finalize()
	if a.Converged() {
		t.Fatal("drifting series converged")
	}
	if est := a.Estimate(); est.Used != 0 {
		t.Fatalf("drifting series kept a stale estimate: %+v", est)
	}
	if a.MeasuredCycles() != 0 || a.WindowFlits() != 0 {
		t.Fatalf("stale window survived: %d cycles, %d flits", a.MeasuredCycles(), a.WindowFlits())
	}
}

// TestAdaptiveDeterminism: the controller is a pure function of its
// input sequence — two replays must agree in every reported field.
func TestAdaptiveDeterminism(t *testing.T) {
	t.Parallel()
	run := func() *Adaptive {
		next := rng(42)
		a := NewAdaptive(AdaptiveConfig{RelTol: 0.02, MinSamples: 500, CheckEvery: 250, MaxSamples: 20000})
		for i := 0; !a.Stopped(); i++ {
			a.Add(50+10*next(), 1, int64(3*i))
		}
		return a
	}
	x, y := run(), run()
	if x.N() != y.N() || x.Converged() != y.Converged() ||
		x.Estimate() != y.Estimate() || x.MeasuredCycles() != y.MeasuredCycles() {
		t.Fatalf("replays diverged:\n%+v %v %d\n%+v %v %d",
			x.Estimate(), x.Converged(), x.MeasuredCycles(),
			y.Estimate(), y.Converged(), y.MeasuredCycles())
	}
}

// TestAdaptiveConfigNormalize pins the defaulting rules the core config
// keys by (two configs resolving to the same rule must share a key).
func TestAdaptiveConfigNormalize(t *testing.T) {
	t.Parallel()
	c := AdaptiveConfig{}.Normalize()
	if c.RelTol != 0.05 || c.MaxSamples != 100000 || c.MinSamples != 5000 ||
		c.CheckEvery != 2500 || c.Batches != 20 {
		t.Fatalf("zero-value defaults = %+v", c)
	}
	d := AdaptiveConfig{MaxSamples: 1000}.Normalize()
	if d.MinSamples != 200 || d.CheckEvery != 250 {
		t.Fatalf("small-ceiling defaults = %+v", d)
	}
	e := AdaptiveConfig{MinSamples: 500, MaxSamples: 100}.Normalize()
	if e.MinSamples != 100 {
		t.Fatalf("floor not clamped to ceiling: %+v", e)
	}
}
