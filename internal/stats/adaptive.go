package stats

// Adaptive measurement: instead of a fixed warmup/measure message budget,
// a run feeds every delivered latency into an Adaptive controller that
// (a) truncates the initialization transient statistically with the
// MSER-5 rule and (b) stops the run as soon as the 95% confidence
// half-width of the truncated mean falls below a relative tolerance at
// two consecutive checks whose estimates agree (the confirmation guards
// against a deceptively tight interval on a series that is still
// drifting) — with hard floor and ceiling budgets so a pathological
// series can neither stop instantly nor run forever. The controller is purely
// deterministic: the same observation sequence (values and times)
// produces the same truncation point, the same estimate, and the same
// stopping cycle, so adaptive runs retain the simulator's bit-identical
// reproducibility (including across shard counts, because delivery
// replay order is shard-invariant).
//
// MSER-5 (White et al.): group the raw series into consecutive batches
// of five observations and pick the truncation point d (in batches) that
// minimizes the squared standard error of the remaining batch means,
//
//	MSER(d) = sum_{j>d} (Z_j - mean_{j>d})^2 / (m-d)^2.
//
// The division by (m-d)^2 — not (m-d) — is what penalizes throwing away
// data: truncating deeper must reduce the variance enough to pay for the
// shorter series. A minimum in the second half of the series means the
// transient has not cleared yet; the rule then refuses to truncate and
// the controller keeps measuring.

import "math"

// mser5MinTail is the absolute floor on retained batches; mser5Tail
// additionally scales the floor with the series so the statistic is
// evaluated only where it is stable. A short tail has a high-variance
// MSER value: a fluke dip at, say, the last five batches would otherwise
// win the argmin, land in the series' second half, and spuriously
// reject a perfectly stationary series.
const mser5MinTail = 5

func mser5Tail(m int) int {
	if t := m / 5; t > mser5MinTail {
		return t
	}
	return mser5MinTail
}

// Mser5 returns the truncation point, in batches, chosen by the MSER rule
// over a series of batch means (the caller batches raw observations, by
// five for classic MSER-5). ok is false when the series is too short to
// evaluate or the minimum lies in the second half of the series — the
// standard "transient not over" rejection, in which case the series
// cannot support a steady-state estimate yet.
func Mser5(batchMeans []float64) (trunc int, ok bool) {
	m := len(batchMeans)
	if m < 2*mser5MinTail {
		return 0, false
	}
	// One backward pass accumulates the suffix sums that give the sum of
	// squared deviations of every tail in O(1) each.
	best, bestD := math.Inf(1), -1
	minTail := mser5Tail(m)
	var s1, s2 float64
	for d := m - 1; d >= 0; d-- {
		z := batchMeans[d]
		s1 += z
		s2 += z * z
		k := float64(m - d)
		if m-d < minTail {
			continue
		}
		sse := s2 - s1*s1/k
		if sse < 0 {
			sse = 0 // numeric noise on constant tails
		}
		// <= so ties go to the smallest d (the loop runs d downward):
		// a constant steady state scores zero at every cut inside it,
		// and the right answer is the shallowest one.
		if v := sse / (k * k); v <= best {
			best, bestD = v, d
		}
	}
	if bestD < 0 || bestD > m/2 {
		return 0, false
	}
	return bestD, true
}

// AdaptiveConfig parameterizes the stopping rule. The zero value is
// usable: Normalize fills every field with its default.
type AdaptiveConfig struct {
	// RelTol is the target relative 95% confidence half-width of the
	// truncated latency mean: measurement stops once
	// halfwidth <= RelTol * mean. Default 0.05.
	RelTol float64
	// MinSamples is the floor: no stopping decision before this many
	// observations. Default MaxSamples/20, at least 200.
	MinSamples int
	// MaxSamples is the hard ceiling; reaching it stops the run whether
	// or not the interval converged. Default 100000.
	MaxSamples int
	// CheckEvery is the re-evaluation cadence in observations; each check
	// is one O(batches) pass. Default max(MinSamples/2, 250).
	CheckEvery int
	// Batches is the macro-batch count for the confidence interval over
	// the truncated series. Default 20.
	Batches int
}

// Normalize returns the config with every unset field defaulted.
func (c AdaptiveConfig) Normalize() AdaptiveConfig {
	if c.RelTol <= 0 {
		c.RelTol = 0.05
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 100000
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.MaxSamples / 20
		if c.MinSamples < 200 {
			c.MinSamples = 200
		}
	}
	if c.MinSamples > c.MaxSamples {
		c.MinSamples = c.MaxSamples
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = c.MinSamples / 2
		if c.CheckEvery < 250 {
			c.CheckEvery = 250
		}
	}
	if c.Batches < 2 {
		c.Batches = 20
	}
	return c
}

// Estimate is the controller's current steady-state latency estimate.
type Estimate struct {
	// Mean and HalfWidth are the truncated batch-means point estimate and
	// its 95% confidence half-width.
	Mean, HalfWidth float64
	// Truncated is how many leading observations the estimate excludes:
	// the MSER-5 transient plus the few oldest post-transient
	// observations dropped for macro-batch alignment. Used is how many
	// observations the estimate covers (a whole number of macro batches).
	Truncated, Used int
}

// RelHalfWidth is HalfWidth/Mean (infinite for a zero or unevaluated
// mean).
func (e Estimate) RelHalfWidth() float64 {
	if e.Mean <= 0 {
		return math.Inf(1)
	}
	return e.HalfWidth / e.Mean
}

// Adaptive implements the adaptive stopping rule as a streaming consumer
// of (value, time) observations. It retains one float64 per five
// observations (the MSER-5 batch means), so memory stays negligible even
// at paper-scale sample counts.
type Adaptive struct {
	cfg AdaptiveConfig

	// groups are the completed batch-of-5 means; groupEndAt[i] is the
	// time of the i-th group's last observation, which locates the
	// measured window after truncation, and groupFlits[i] the cumulative
	// flit count at that point, which prices the window's throughput.
	groups     []float64
	groupEndAt []int64
	groupFlits []int64
	curSum     float64
	curN       int
	totalFlits int64

	n               int
	firstAt, lastAt int64
	stopped, conv   bool
	est             Estimate
	measuredCycles  int64
	windowFlits     int64
	sinceCheck      int

	// prevMean is the estimate from the previous check, for the
	// stability confirmation: a single tight interval on a series that
	// is still drifting (queues slowly filling toward saturation) is
	// not convergence, so stopping requires two consecutive checks
	// whose means agree within the tolerance as well.
	prevMean  float64
	prevValid bool
}

// NewAdaptive returns a controller for the (normalized) config.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	return &Adaptive{cfg: cfg.Normalize(), firstAt: -1}
}

// Config returns the normalized configuration in effect.
func (a *Adaptive) Config() AdaptiveConfig { return a.cfg }

// Add feeds one observation — one delivered message's latency, its flit
// count, and the delivery time `at` (monotonically non-decreasing;
// simulation cycles in the harness). Observations after the controller
// has stopped are ignored.
func (a *Adaptive) Add(v float64, flits int, at int64) {
	if a.stopped {
		return
	}
	if a.firstAt < 0 {
		a.firstAt = at
	}
	a.lastAt = at
	a.n++
	a.totalFlits += int64(flits)
	a.curSum += v
	a.curN++
	if a.curN == 5 {
		a.groups = append(a.groups, a.curSum/5)
		a.groupEndAt = append(a.groupEndAt, at)
		a.groupFlits = append(a.groupFlits, a.totalFlits)
		a.curSum, a.curN = 0, 0
	}
	a.sinceCheck++
	if a.n >= a.cfg.MaxSamples {
		a.evaluate()
		a.stopped = true
		return
	}
	if a.n >= a.cfg.MinSamples && a.sinceCheck >= a.cfg.CheckEvery {
		a.sinceCheck = 0
		hit := a.evaluate()
		cur := a.est
		stable := a.prevValid && cur.Used > 0 &&
			math.Abs(cur.Mean-a.prevMean) <= a.cfg.RelTol*cur.Mean
		if cur.Used > 0 {
			a.prevMean, a.prevValid = cur.Mean, true
		}
		if hit && stable {
			a.stopped = true
			a.conv = true
		}
	}
}

// evaluate recomputes the truncated estimate and reports whether the
// relative-half-width target is met. When no estimate can be formed —
// MSER-5 rejects the series (transient not over) or the retained tail
// is too short — any previous estimate is cleared rather than left
// stale: the series has drifted past what that snapshot covered, and
// reporting it as the run's result would bias the headline latency
// toward the early, cheaper prefix. Readers fall back to whole-span
// statistics when Used == 0.
func (a *Adaptive) evaluate() bool {
	d, ok := Mser5(a.groups)
	if !ok {
		a.clearEstimate()
		return false
	}
	tail := a.groups[d:]
	k := a.cfg.Batches
	size := len(tail) / k
	if size < 1 {
		a.clearEstimate()
		return false
	}
	// Use the most recent k*size groups: a remainder exists because the
	// series length is arbitrary, and dropping the oldest few groups
	// (the ones nearest the truncated transient) is the conservative
	// side to err on.
	used := tail[len(tail)-k*size:]
	var macro Sample
	var grand float64
	for b := 0; b < k; b++ {
		var s float64
		for _, z := range used[b*size : (b+1)*size] {
			s += z
		}
		macro.Add(s / float64(size))
		grand += s
	}
	mean := grand / float64(k*size)
	hw := 1.96 * macro.StdDev() / math.Sqrt(float64(k))
	startIdx := len(a.groups) - k*size // first used group, >= d
	a.est = Estimate{
		Mean:      mean,
		HalfWidth: hw,
		Truncated: startIdx * 5,
		Used:      k * size * 5,
	}
	// The measured window runs from the end of the last truncated group
	// (the run start when nothing was cut) to the latest observation;
	// the flits delivered inside it price the window's throughput.
	start := a.firstAt
	flitsBefore := int64(0)
	if startIdx > 0 {
		start = a.groupEndAt[startIdx-1]
		flitsBefore = a.groupFlits[startIdx-1]
	}
	a.measuredCycles = a.lastAt - start
	a.windowFlits = a.totalFlits - flitsBefore
	return mean > 0 && hw <= a.cfg.RelTol*mean
}

func (a *Adaptive) clearEstimate() {
	a.est = Estimate{}
	a.measuredCycles = 0
	a.windowFlits = 0
	// The confirmation baseline dies with the estimate: after a drift
	// rejection, a freshly re-formed estimate must earn a new agreeing
	// check of its own, not match a pre-drift snapshot.
	a.prevValid = false
}

// Finalize forces a last evaluation (used when a run ends for an external
// reason — saturation guard, cycle budget — before the controller
// stopped) so Estimate and MeasuredCycles reflect all data seen. It
// never sets Converged: a guard-ended run did not meet the confirmed
// stopping rule, however tight its final interval happens to be — the
// same discipline the ceiling stop in Add applies.
func (a *Adaptive) Finalize() {
	if !a.stopped {
		a.evaluate()
		a.stopped = true
	}
}

// N returns the number of observations consumed.
func (a *Adaptive) N() int { return a.n }

// Stopped reports that measurement should end: the interval converged or
// the ceiling was reached.
func (a *Adaptive) Stopped() bool { return a.stopped }

// Converged reports that the relative half-width target was met (as
// opposed to stopping on the sample ceiling or an external guard).
func (a *Adaptive) Converged() bool { return a.conv }

// Estimate returns the latest truncated steady-state estimate; Used == 0
// means the series never supported one.
func (a *Adaptive) Estimate() Estimate { return a.est }

// MeasuredCycles is the time span of the truncated measurement window:
// from the end of the MSER-truncated transient to the last observation.
// Zero when no estimate was ever formed.
func (a *Adaptive) MeasuredCycles() int64 { return a.measuredCycles }

// WindowFlits is the number of flits delivered inside the measured
// window: WindowFlits/MeasuredCycles is the truncated steady-state
// acceptance rate, free of the cold-start ramp a whole-span throughput
// would fold in.
func (a *Adaptive) WindowFlits() int64 { return a.windowFlits }
