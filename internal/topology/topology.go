// Package topology models the direct-network topologies used by the LAPSES
// study: k-ary n-dimensional meshes and tori. It provides node addressing in
// both linear IDs and Cartesian coordinates, the port numbering convention
// shared by the router and the routing tables, and derived quantities such as
// hop distance and bisection channel counts used for load normalization.
//
// Port numbering: port 0 is always the local (processing element) port. For
// dimension d (0-based), port 1+2d points in the positive direction and port
// 2+2d in the negative direction. In two dimensions this yields the paper's
// five-port router: 0=local, 1=+X(East), 2=-X(West), 3=+Y(North), 4=-Y(South).
package topology

import (
	"fmt"
	"strings"
)

// NodeID is the linear address of a node. Nodes are numbered row-major:
// id = x + k*(y + k*z + ...), i.e. dimension 0 varies fastest.
type NodeID int32

// Port identifies one of a router's physical ports. Port 0 is the local
// port; see the package comment for the directional numbering.
type Port int8

// PortLocal is the port connecting a router to its processing element.
const PortLocal Port = 0

// Invalid values used as sentinels.
const (
	InvalidNode NodeID = -1
	InvalidPort Port   = -1
)

// Coord is an n-dimensional Cartesian coordinate. Coord[0] is the X
// coordinate (dimension 0).
type Coord []int

// Mesh is a k-ary n-dimensional mesh, or a torus when Wrap is true.
// The zero value is not usable; construct with New, NewMesh or NewTorus.
type Mesh struct {
	dims []int // radix per dimension
	wrap bool
	n    int // total node count
}

// NewMesh returns an n-dimensional mesh with the given per-dimension radices.
// NewMesh(16, 16) is the paper's 256-node 2-D mesh.
func NewMesh(dims ...int) *Mesh { return New(false, dims...) }

// NewTorus returns an n-dimensional torus with the given radices.
func NewTorus(dims ...int) *Mesh { return New(true, dims...) }

// New constructs a mesh (wrap=false) or torus (wrap=true). It panics if no
// dimensions are given or any radix is < 2, since such networks have no
// routing decisions to study.
func New(wrap bool, dims ...int) *Mesh {
	if len(dims) == 0 {
		panic("topology: no dimensions")
	}
	n := 1
	for _, k := range dims {
		if k < 2 {
			panic(fmt.Sprintf("topology: radix %d < 2", k))
		}
		n *= k
	}
	d := make([]int, len(dims))
	copy(d, dims)
	return &Mesh{dims: d, wrap: wrap, n: n}
}

// Dims returns the per-dimension radices. The caller must not modify it.
func (m *Mesh) Dims() []int { return m.dims }

// NumDims returns the number of dimensions n.
func (m *Mesh) NumDims() int { return len(m.dims) }

// Wrap reports whether the network is a torus.
func (m *Mesh) Wrap() bool { return m.wrap }

// N returns the total number of nodes.
func (m *Mesh) N() int { return m.n }

// Radix returns the radix of dimension d.
func (m *Mesh) Radix(d int) int { return m.dims[d] }

// NumPorts returns the number of router ports: one local port plus two per
// dimension.
func (m *Mesh) NumPorts() int { return 1 + 2*len(m.dims) }

// PortPlus returns the port pointing in the positive direction of dim d.
func PortPlus(d int) Port { return Port(1 + 2*d) }

// PortMinus returns the port pointing in the negative direction of dim d.
func PortMinus(d int) Port { return Port(2 + 2*d) }

// PortDim returns the dimension a directional port travels in.
// It panics for the local port.
func PortDim(p Port) int {
	if p <= PortLocal {
		panic("topology: PortDim of non-directional port")
	}
	return int(p-1) / 2
}

// PortSign returns +1 for a positive-direction port, -1 for a negative one,
// and 0 for the local port.
func PortSign(p Port) int {
	switch {
	case p == PortLocal:
		return 0
	case (p-1)%2 == 0:
		return +1
	default:
		return -1
	}
}

// Opposite returns the port facing p on the neighboring router: +X pairs
// with -X and so on. The local port is its own opposite.
func Opposite(p Port) Port {
	if p == PortLocal {
		return PortLocal
	}
	if PortSign(p) > 0 {
		return p + 1
	}
	return p - 1
}

// PortName returns a short human-readable name for a port under this
// topology's dimensionality ("L", "+X", "-Y", "+D2", ...).
func (m *Mesh) PortName(p Port) string {
	if p == PortLocal {
		return "L"
	}
	d := PortDim(p)
	sign := "+"
	if PortSign(p) < 0 {
		sign = "-"
	}
	if d < 3 {
		return sign + string("XYZ"[d])
	}
	return fmt.Sprintf("%sD%d", sign, d)
}

// ID converts a coordinate to a linear node ID. It panics if the coordinate
// is out of range, since that is always a programming error.
func (m *Mesh) ID(c Coord) NodeID {
	if len(c) != len(m.dims) {
		panic("topology: coordinate dimensionality mismatch")
	}
	id := 0
	for d := len(m.dims) - 1; d >= 0; d-- {
		if c[d] < 0 || c[d] >= m.dims[d] {
			panic(fmt.Sprintf("topology: coordinate %v out of range", c))
		}
		id = id*m.dims[d] + c[d]
	}
	return NodeID(id)
}

// CoordOf converts a linear node ID to a coordinate, allocating the result.
func (m *Mesh) CoordOf(id NodeID) Coord {
	c := make(Coord, len(m.dims))
	m.CoordInto(id, c)
	return c
}

// CoordInto writes the coordinate of id into dst, which must have length
// NumDims. It exists so hot paths can avoid allocation.
func (m *Mesh) CoordInto(id NodeID, dst Coord) {
	v := int(id)
	for d := 0; d < len(m.dims); d++ {
		dst[d] = v % m.dims[d]
		v /= m.dims[d]
	}
}

// CoordAxis returns coordinate component d of node id without allocating.
func (m *Mesh) CoordAxis(id NodeID, d int) int {
	v := int(id)
	for i := 0; i < d; i++ {
		v /= m.dims[i]
	}
	return v % m.dims[d]
}

// Valid reports whether id names a node in the network.
func (m *Mesh) Valid(id NodeID) bool { return id >= 0 && int(id) < m.n }

// Neighbor returns the node reached by leaving id through port p, and
// whether such a link exists. The local port and mesh-edge ports have no
// neighbor. In a torus every directional port has a neighbor.
func (m *Mesh) Neighbor(id NodeID, p Port) (NodeID, bool) {
	if p == PortLocal || !m.Valid(id) {
		return InvalidNode, false
	}
	d := PortDim(p)
	if d >= len(m.dims) {
		return InvalidNode, false
	}
	x := m.CoordAxis(id, d)
	k := m.dims[d]
	nx := x + PortSign(p)
	if m.wrap {
		nx = (nx + k) % k
	} else if nx < 0 || nx >= k {
		return InvalidNode, false
	}
	// Recompute the linear ID by offsetting along dimension d.
	stride := 1
	for i := 0; i < d; i++ {
		stride *= m.dims[i]
	}
	return id + NodeID((nx-x)*stride), true
}

// OffsetSign returns the sign (-1, 0, +1) of the minimal-path offset from
// cur to dst along dimension d. In a mesh this is sign(dst-cur). In a torus
// the shorter wrap direction is chosen; exact half-way ties resolve to the
// positive direction so that routing is deterministic.
func (m *Mesh) OffsetSign(cur, dst NodeID, d int) int {
	cc := m.CoordAxis(cur, d)
	dc := m.CoordAxis(dst, d)
	delta := dc - cc
	if delta == 0 {
		return 0
	}
	if m.wrap {
		// Normalize to (-k/2, k/2]: take the shorter wrap direction,
		// with exact half-way ties resolving positive.
		k := m.dims[d]
		if 2*delta > k {
			delta -= k
		} else if 2*-delta >= k { // -delta >= k/2: wrapping positive is no longer
			delta += k
		}
	}
	if delta > 0 {
		return 1
	}
	if delta < 0 {
		return -1
	}
	return 0
}

// Distance returns the minimal hop count between two nodes.
func (m *Mesh) Distance(a, b NodeID) int {
	total := 0
	for d := range m.dims {
		ac, bc := m.CoordAxis(a, d), m.CoordAxis(b, d)
		delta := bc - ac
		if delta < 0 {
			delta = -delta
		}
		if m.wrap && m.dims[d]-delta < delta {
			delta = m.dims[d] - delta
		}
		total += delta
	}
	return total
}

// AvgDistance returns the mean minimal hop count over all ordered pairs of
// distinct nodes, used in latency sanity checks.
func (m *Mesh) AvgDistance() float64 {
	sum := 0.0
	for d := range m.dims {
		k := m.dims[d]
		dimSum := 0
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				delta := b - a
				if delta < 0 {
					delta = -delta
				}
				if m.wrap && k-delta < delta {
					delta = k - delta
				}
				dimSum += delta
			}
		}
		// Per-dimension average over all ordered coordinate pairs.
		sum += float64(dimSum) / float64(k*k)
	}
	// Correct for excluding self-pairs globally rather than per dimension.
	n := float64(m.n)
	return sum * n / (n - 1)
}

// BisectionChannels returns the number of unidirectional channels crossing
// the network bisection (cut across the highest-radix dimension). For the
// 16x16 mesh this is 32 (16 links each way); a torus doubles it.
func (m *Mesh) BisectionChannels() int {
	// Cut across the first dimension of maximal radix.
	maxD := 0
	for d, k := range m.dims {
		if k > m.dims[maxD] {
			maxD = d
		}
		_ = d
	}
	cross := m.n / m.dims[maxD] // nodes per "slice" row crossing the cut
	ch := 2 * cross             // one link each way per row
	if m.wrap {
		ch *= 2 // wraparound links also cross
	}
	return ch
}

// SaturationInjectionRate returns the per-node flit injection rate
// (flits/node/cycle) that loads the bisection to capacity under uniform
// traffic. Normalized load 1.0 in the paper corresponds to this rate:
// for a k x k mesh it is 4k/N (0.25 for 16x16).
func (m *Mesh) SaturationInjectionRate() float64 {
	// Under uniform traffic half of all traffic crosses the bisection,
	// split evenly between the two directions. With per-node rate r the
	// flits/cycle crossing one way is N*r/4, and one-way capacity is
	// BisectionChannels()/2, so r = 2*BisectionChannels()/N.
	return 2 * float64(m.BisectionChannels()) / float64(m.n)
}

// ReachableFrom returns, per node, whether it can be reached from src in
// the subgraph induced by the nodeOK and linkOK predicates (BFS over live
// links between live nodes). A link is traversable only when linkOK holds
// for the outgoing (node, port) pair; predicates may be nil, meaning
// everything is usable. It underlies the degraded-topology connectivity
// checks of the fault subsystem.
func (m *Mesh) ReachableFrom(src NodeID, nodeOK func(NodeID) bool, linkOK func(NodeID, Port) bool) []bool {
	seen := make([]bool, m.n)
	if !m.Valid(src) || (nodeOK != nil && !nodeOK(src)) {
		return seen
	}
	seen[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for p := 1; p < m.NumPorts(); p++ {
			port := Port(p)
			nb, ok := m.Neighbor(cur, port)
			if !ok || seen[nb] {
				continue
			}
			if linkOK != nil && !linkOK(cur, port) {
				continue
			}
			if nodeOK != nil && !nodeOK(nb) {
				continue
			}
			seen[nb] = true
			queue = append(queue, nb)
		}
	}
	return seen
}

// SubgraphConnected reports whether every node passing nodeOK is reachable
// from every other over links passing linkOK. A subgraph with fewer than
// two live nodes is trivially connected.
func (m *Mesh) SubgraphConnected(nodeOK func(NodeID) bool, linkOK func(NodeID, Port) bool) bool {
	root := InvalidNode
	live := 0
	for id := NodeID(0); int(id) < m.n; id++ {
		if nodeOK == nil || nodeOK(id) {
			if root == InvalidNode {
				root = id
			}
			live++
		}
	}
	if live < 2 {
		return true
	}
	seen := m.ReachableFrom(root, nodeOK, linkOK)
	reached := 0
	for _, s := range seen {
		if s {
			reached++
		}
	}
	return reached == live
}

// String returns a compact description such as "mesh(16x16)" or
// "torus(8x8x8)".
func (m *Mesh) String() string {
	var b strings.Builder
	if m.wrap {
		b.WriteString("torus(")
	} else {
		b.WriteString("mesh(")
	}
	for i, k := range m.dims {
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%d", k)
	}
	b.WriteByte(')')
	return b.String()
}
