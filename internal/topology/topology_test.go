package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPortNumbering(t *testing.T) {
	if PortPlus(0) != 1 || PortMinus(0) != 2 || PortPlus(1) != 3 || PortMinus(1) != 4 {
		t.Fatalf("2-D port numbering broken: +X=%d -X=%d +Y=%d -Y=%d",
			PortPlus(0), PortMinus(0), PortPlus(1), PortMinus(1))
	}
	for d := 0; d < 4; d++ {
		if PortDim(PortPlus(d)) != d || PortDim(PortMinus(d)) != d {
			t.Errorf("PortDim inconsistent for dim %d", d)
		}
		if PortSign(PortPlus(d)) != 1 || PortSign(PortMinus(d)) != -1 {
			t.Errorf("PortSign inconsistent for dim %d", d)
		}
		if Opposite(PortPlus(d)) != PortMinus(d) || Opposite(PortMinus(d)) != PortPlus(d) {
			t.Errorf("Opposite inconsistent for dim %d", d)
		}
	}
	if PortSign(PortLocal) != 0 || Opposite(PortLocal) != PortLocal {
		t.Error("local port sign/opposite wrong")
	}
}

func TestPortNames(t *testing.T) {
	m := NewMesh(4, 4)
	want := map[Port]string{0: "L", 1: "+X", 2: "-X", 3: "+Y", 4: "-Y"}
	for p, n := range want {
		if got := m.PortName(p); got != n {
			t.Errorf("PortName(%d) = %q, want %q", p, got, n)
		}
	}
}

func TestIDCoordRoundTrip(t *testing.T) {
	for _, m := range []*Mesh{NewMesh(16, 16), NewMesh(4, 5, 6), NewTorus(8, 8), NewMesh(2, 3)} {
		for id := NodeID(0); int(id) < m.N(); id++ {
			c := m.CoordOf(id)
			if got := m.ID(c); got != id {
				t.Fatalf("%v: round trip %d -> %v -> %d", m, id, c, got)
			}
			for d := 0; d < m.NumDims(); d++ {
				if m.CoordAxis(id, d) != c[d] {
					t.Fatalf("%v: CoordAxis(%d,%d)=%d want %d", m, id, d, m.CoordAxis(id, d), c[d])
				}
			}
		}
	}
}

func TestRowMajorConvention(t *testing.T) {
	m := NewMesh(16, 16)
	// id = x + 16*y, matching the paper's node labels in Fig. 8.
	if m.ID(Coord{3, 2}) != 35 {
		t.Fatalf("ID(3,2) = %d, want 35", m.ID(Coord{3, 2}))
	}
	if c := m.CoordOf(255); c[0] != 15 || c[1] != 15 {
		t.Fatalf("CoordOf(255) = %v, want [15 15]", c)
	}
}

func TestNeighborMesh(t *testing.T) {
	m := NewMesh(4, 4)
	// Interior node (1,1) = id 5.
	cases := []struct {
		p    Port
		want NodeID
	}{
		{PortPlus(0), 6}, {PortMinus(0), 4}, {PortPlus(1), 9}, {PortMinus(1), 1},
	}
	for _, c := range cases {
		got, ok := m.Neighbor(5, c.p)
		if !ok || got != c.want {
			t.Errorf("Neighbor(5,%s) = %d,%v want %d", m.PortName(c.p), got, ok, c.want)
		}
	}
	// Edges have no neighbor beyond the boundary.
	if _, ok := m.Neighbor(0, PortMinus(0)); ok {
		t.Error("node 0 should have no -X neighbor")
	}
	if _, ok := m.Neighbor(0, PortMinus(1)); ok {
		t.Error("node 0 should have no -Y neighbor")
	}
	if _, ok := m.Neighbor(15, PortPlus(0)); ok {
		t.Error("node 15 should have no +X neighbor")
	}
	if _, ok := m.Neighbor(5, PortLocal); ok {
		t.Error("local port should have no neighbor")
	}
}

func TestNeighborTorus(t *testing.T) {
	m := NewTorus(4, 4)
	got, ok := m.Neighbor(0, PortMinus(0))
	if !ok || got != 3 {
		t.Errorf("torus Neighbor(0,-X) = %d,%v want 3", got, ok)
	}
	got, ok = m.Neighbor(0, PortMinus(1))
	if !ok || got != 12 {
		t.Errorf("torus Neighbor(0,-Y) = %d,%v want 12", got, ok)
	}
	got, ok = m.Neighbor(15, PortPlus(0))
	if !ok || got != 12 {
		t.Errorf("torus Neighbor(15,+X) = %d,%v want 12", got, ok)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	for _, m := range []*Mesh{NewMesh(5, 4), NewTorus(4, 6), NewMesh(3, 3, 3)} {
		for id := NodeID(0); int(id) < m.N(); id++ {
			for p := Port(1); int(p) < m.NumPorts(); p++ {
				nb, ok := m.Neighbor(id, p)
				if !ok {
					continue
				}
				back, ok2 := m.Neighbor(nb, Opposite(p))
				if !ok2 || back != id {
					t.Fatalf("%v: neighbor symmetry broken at %d port %s", m, id, m.PortName(p))
				}
			}
		}
	}
}

func TestOffsetSignMesh(t *testing.T) {
	m := NewMesh(16, 16)
	a, b := m.ID(Coord{3, 7}), m.ID(Coord{10, 7})
	if s := m.OffsetSign(a, b, 0); s != 1 {
		t.Errorf("X sign = %d want 1", s)
	}
	if s := m.OffsetSign(a, b, 1); s != 0 {
		t.Errorf("Y sign = %d want 0", s)
	}
	if s := m.OffsetSign(b, a, 0); s != -1 {
		t.Errorf("reverse X sign = %d want -1", s)
	}
}

func TestOffsetSignTorus(t *testing.T) {
	m := NewTorus(8, 8)
	// From x=1 to x=7: direct +6, wrap -2 => negative is shorter.
	if s := m.OffsetSign(m.ID(Coord{1, 0}), m.ID(Coord{7, 0}), 0); s != -1 {
		t.Errorf("wrap sign = %d want -1", s)
	}
	// From x=0 to x=4: exactly half way; ties resolve positive.
	if s := m.OffsetSign(m.ID(Coord{0, 0}), m.ID(Coord{4, 0}), 0); s != 1 {
		t.Errorf("tie sign = %d want +1", s)
	}
	// From x=6 to x=0: direct -6, wrap +2 => positive.
	if s := m.OffsetSign(m.ID(Coord{6, 0}), m.ID(Coord{0, 0}), 0); s != 1 {
		t.Errorf("wrap-positive sign = %d want +1", s)
	}
}

// Walking one hop in the direction of OffsetSign must strictly reduce
// distance: the invariant minimal adaptive routing depends on.
func TestOffsetSignReducesDistance(t *testing.T) {
	for _, m := range []*Mesh{NewMesh(16, 16), NewTorus(8, 8), NewMesh(4, 4, 4), NewTorus(5, 5)} {
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 2000; trial++ {
			a := NodeID(rng.Intn(m.N()))
			b := NodeID(rng.Intn(m.N()))
			if a == b {
				continue
			}
			for d := 0; d < m.NumDims(); d++ {
				s := m.OffsetSign(a, b, d)
				if s == 0 {
					continue
				}
				p := PortPlus(d)
				if s < 0 {
					p = PortMinus(d)
				}
				nb, ok := m.Neighbor(a, p)
				if !ok {
					t.Fatalf("%v: OffsetSign points off the edge at %d->%d dim %d", m, a, b, d)
				}
				if m.Distance(nb, b) != m.Distance(a, b)-1 {
					t.Fatalf("%v: hop along sign does not reduce distance (%d->%d dim %d)", m, a, b, d)
				}
			}
		}
	}
}

func TestDistance(t *testing.T) {
	m := NewMesh(16, 16)
	if d := m.Distance(m.ID(Coord{0, 0}), m.ID(Coord{15, 15})); d != 30 {
		t.Errorf("corner distance = %d want 30", d)
	}
	tor := NewTorus(16, 16)
	if d := tor.Distance(tor.ID(Coord{0, 0}), tor.ID(Coord{15, 15})); d != 2 {
		t.Errorf("torus corner distance = %d want 2", d)
	}
}

func TestAvgDistance(t *testing.T) {
	m := NewMesh(16, 16)
	got := m.AvgDistance()
	// Per-dimension mean |a-b| over ordered pairs = (k^2-1)/(3k) = 5.3125;
	// two dimensions and excluding self-pairs: 10.625 * 256/255.
	want := 10.625 * 256.0 / 255.0
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("AvgDistance = %v want %v", got, want)
	}
}

func TestBisectionAndSaturation(t *testing.T) {
	m := NewMesh(16, 16)
	if bc := m.BisectionChannels(); bc != 32 {
		t.Errorf("mesh bisection channels = %d want 32", bc)
	}
	if r := m.SaturationInjectionRate(); r != 0.25 {
		t.Errorf("mesh saturation rate = %v want 0.25", r)
	}
	tor := NewTorus(16, 16)
	if bc := tor.BisectionChannels(); bc != 64 {
		t.Errorf("torus bisection channels = %d want 64", bc)
	}
}

func TestString(t *testing.T) {
	if s := NewMesh(16, 16).String(); s != "mesh(16x16)" {
		t.Errorf("String = %q", s)
	}
	if s := NewTorus(8, 8, 8).String(); s != "torus(8x8x8)" {
		t.Errorf("String = %q", s)
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMesh() },
		func() { NewMesh(1, 4) },
		func() { NewMesh(16, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: ID and CoordOf are mutual inverses for random coordinates.
func TestQuickIDRoundTrip(t *testing.T) {
	m := NewMesh(7, 11, 5)
	f := func(x, y, z uint16) bool {
		c := Coord{int(x) % 7, int(y) % 11, int(z) % 5}
		id := m.ID(c)
		back := m.CoordOf(id)
		return back[0] == c[0] && back[1] == c[1] && back[2] == c[2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distance is a metric (symmetric, triangle inequality) on a
// torus, where wrap makes it less obvious.
func TestQuickDistanceMetric(t *testing.T) {
	m := NewTorus(9, 6)
	f := func(a8, b8, c8 uint16) bool {
		a := NodeID(int(a8) % m.N())
		b := NodeID(int(b8) % m.N())
		c := NodeID(int(c8) % m.N())
		dab, dba := m.Distance(a, b), m.Distance(b, a)
		if dab != dba {
			return false
		}
		return m.Distance(a, c) <= dab+m.Distance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
