// Package serve is the sweep engine as a long-running service:
// lapses-serve accepts experiment-grid jobs over HTTP/JSON, executes
// them through internal/sweep, and persists every completed point to a
// disk-backed content-addressed result store keyed by core.Config.Key —
// so overlapping grids submitted across processes, users and restarts
// cost one simulation per unique point, ever.
//
// The package splits into four layers:
//
//   - wire.go: Point, the serializable form of a core.Config. Its
//     round-trip guarantee (PointFromConfig then Point.Config preserves
//     Config.Key bit for bit) is what makes served results
//     byte-identical to in-process sweeps.
//   - store.go: Store, the crash-safe result store (atomic temp-file +
//     rename writes, per-entry checksums, startup recovery scan with
//     quarantine, process-level single-flight). It implements
//     sweep.Cacher.
//   - server.go / retry.go: Server, the HTTP job service — bounded
//     queue with 429 backpressure, per-job deadlines and cancellation,
//     panic-isolated points, transient-failure retry with exponential
//     backoff and jitter, polling progress, graceful drain.
//   - client.go: Client, the thin consumer the CLIs use
//     (lapses-experiments -server); Client.Sweep satisfies
//     sweep.RunFunc, so grids and bisection probes route through a
//     server unchanged. Idempotent requests ride a transport-retry
//     loop (connection errors and gateway 5xx, jittered backoff).
//   - cluster.go / lease.go / worker.go: cluster mode. One server
//     instance runs in one of three roles. Standalone (the default)
//     simulates jobs in-process. A coordinator (ServerOptions.Cluster
//     set) accepts the same jobs but decomposes each grid into leased
//     work units that Worker instances claim, heartbeat and complete
//     over HTTP; a lease whose worker goes silent past its TTL is
//     requeued by the coordinator's failure detector, under the same
//     capped transient/permanent taxonomy as point retry. A worker
//     runs no HTTP server at all — just the claim-execute-complete
//     loop, simulating against the shared Store so every finished
//     point is durable before it is reported and re-executing a
//     requeued lease costs zero re-simulation for persisted points.
package serve

import (
	"fmt"
	"strings"

	"lapses/internal/core"
	"lapses/internal/fault"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/traffic"
)

// Point is the serializable form of one grid point. Enumerations travel
// by name (the String forms the CLIs already parse) so payloads stay
// readable and stable across releases; the fault plan travels as its
// canonical spec string. Trace workloads are process-local (a Trace is
// keyed by pointer identity) and cannot be represented — PointFromConfig
// rejects them.
//
// The contract, pinned by TestPointRoundTripPreservesKey: for any
// trace-free Config c, the round trip PointFromConfig(c) → Point.Config
// yields a config with an identical Config.Key, hence bit-identical
// simulation results and store lines.
type Point struct {
	Dims   []int  `json:"dims"`
	Torus  bool   `json:"torus,omitempty"`
	Faults string `json:"faults,omitempty"` // fault.Parse spec, e.g. "12-13,r77"

	VCs       int `json:"vcs"`
	EscapeVCs int `json:"escape_vcs"`
	BufDepth  int `json:"buf_depth"`
	OutDepth  int `json:"out_depth"`
	LinkDelay int `json:"link_delay"`

	LookAhead  bool   `json:"lookahead"`
	CutThrough bool   `json:"cut_through,omitempty"`
	Algorithm  string `json:"algorithm"`
	Table      string `json:"table"`
	Selection  string `json:"selection"`

	Pattern string  `json:"pattern"`
	Load    float64 `json:"load"`
	MsgLen  int     `json:"msg_len"`

	Warmup  int        `json:"warmup"`
	Measure int        `json:"measure"`
	Auto    *AutoPoint `json:"auto,omitempty"`

	MaxCycles  int64   `json:"max_cycles,omitempty"`
	SatLatency float64 `json:"sat_latency,omitempty"`
	Seed       int64   `json:"seed"`

	Shards    int  `json:"shards,omitempty"`
	EventMode bool `json:"event_mode,omitempty"`
}

// AutoPoint mirrors core.AutoMeasure on the wire.
type AutoPoint struct {
	RelTol      float64 `json:"rel_tol,omitempty"`
	MinMessages int     `json:"min_messages,omitempty"`
	MaxMessages int     `json:"max_messages,omitempty"`
	CheckEvery  int     `json:"check_every,omitempty"`
}

// PointFromConfig converts a Config to its wire form. Trace-driven
// configs are rejected: a *traffic.Trace is identified by address, which
// no other process can honor.
func PointFromConfig(c core.Config) (Point, error) {
	if c.Trace != nil {
		return Point{}, fmt.Errorf("serve: trace workloads are process-local and cannot be submitted to a server")
	}
	p := Point{
		Dims:       append([]int(nil), c.Dims...),
		Torus:      c.Torus,
		VCs:        c.VCs,
		EscapeVCs:  c.EscapeVCs,
		BufDepth:   c.BufDepth,
		OutDepth:   c.OutDepth,
		LinkDelay:  c.LinkDelay,
		LookAhead:  c.LookAhead,
		CutThrough: c.CutThrough,
		Algorithm:  c.Algorithm.String(),
		Table:      c.Table.String(),
		Selection:  c.Selection.String(),
		Pattern:    c.Pattern.String(),
		Load:       c.Load,
		MsgLen:     c.MsgLen,
		Warmup:     c.Warmup,
		Measure:    c.Measure,
		MaxCycles:  c.MaxCycles,
		SatLatency: c.SatLatency,
		Seed:       c.Seed,
		Shards:     c.Shards,
		EventMode:  c.EventMode,
	}
	if !c.Faults.Empty() {
		// Plan.Key is the canonical "A-B;...;rN" content; Parse reads
		// the same items comma-separated.
		p.Faults = strings.ReplaceAll(c.Faults.Key(), ";", ",")
	}
	if c.Auto != nil {
		p.Auto = &AutoPoint{
			RelTol:      c.Auto.RelTol,
			MinMessages: c.Auto.MinMessages,
			MaxMessages: c.Auto.MaxMessages,
			CheckEvery:  c.Auto.CheckEvery,
		}
	}
	return p, nil
}

// Config materializes the wire point back into a validated core.Config.
func (p Point) Config() (core.Config, error) {
	if len(p.Dims) == 0 {
		return core.Config{}, fmt.Errorf("serve: point has no dimensions")
	}
	for _, k := range p.Dims {
		if k < 2 {
			return core.Config{}, fmt.Errorf("serve: point radix %d < 2", k)
		}
	}
	c := core.Config{
		Dims:       append([]int(nil), p.Dims...),
		Torus:      p.Torus,
		VCs:        p.VCs,
		EscapeVCs:  p.EscapeVCs,
		BufDepth:   p.BufDepth,
		OutDepth:   p.OutDepth,
		LinkDelay:  p.LinkDelay,
		LookAhead:  p.LookAhead,
		CutThrough: p.CutThrough,
		Load:       p.Load,
		MsgLen:     p.MsgLen,
		Warmup:     p.Warmup,
		Measure:    p.Measure,
		MaxCycles:  p.MaxCycles,
		SatLatency: p.SatLatency,
		Seed:       p.Seed,
		Shards:     p.Shards,
		EventMode:  p.EventMode,
	}
	var err error
	if c.Algorithm, err = core.ParseAlg(p.Algorithm); err != nil {
		return core.Config{}, fmt.Errorf("serve: point algorithm: %w", err)
	}
	if c.Table, err = table.ParseKind(p.Table); err != nil {
		return core.Config{}, fmt.Errorf("serve: point table: %w", err)
	}
	if c.Selection, err = selection.ParseKind(p.Selection); err != nil {
		return core.Config{}, fmt.Errorf("serve: point selection: %w", err)
	}
	if c.Pattern, err = traffic.ParseKind(p.Pattern); err != nil {
		return core.Config{}, fmt.Errorf("serve: point pattern: %w", err)
	}
	if p.Auto != nil {
		c.Auto = &core.AutoMeasure{
			RelTol:      p.Auto.RelTol,
			MinMessages: p.Auto.MinMessages,
			MaxMessages: p.Auto.MaxMessages,
			CheckEvery:  p.Auto.CheckEvery,
		}
	}
	if p.Faults != "" {
		if c.Faults, err = fault.Parse(c.Mesh(), p.Faults); err != nil {
			return core.Config{}, fmt.Errorf("serve: point faults: %w", err)
		}
	}
	if err := c.Validate(); err != nil {
		return core.Config{}, fmt.Errorf("serve: point config: %w", err)
	}
	return c, nil
}

// PointsFromGrid converts a grid, failing on the first unserializable
// config with its index.
func PointsFromGrid(grid []core.Config) ([]Point, error) {
	pts := make([]Point, len(grid))
	for i, c := range grid {
		p, err := PointFromConfig(c)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		pts[i] = p
	}
	return pts, nil
}
