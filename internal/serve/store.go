package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"lapses/internal/core"
)

// Store is a disk-backed content-addressed result store keyed by
// core.Config.Key: one file per unique configuration, named by the
// SHA-256 of the key, holding the key, the result, and a checksum over
// both. It is the durable layer under the serve job executor (and any
// other sweep, via sweep.Options.Cache — Store implements sweep.Cacher),
// making "never simulate the same point twice" hold across processes,
// restarts and users sharing a store directory.
//
// Crash safety and integrity:
//
//   - Writes are atomic: marshal, write to a temp file in the same
//     directory, fsync, rename. A process killed mid-write leaves only
//     a temp file, never a half-written entry under a live name.
//   - Every entry embeds a SHA-256 checksum over its key and result
//     payload; the filename is itself the SHA-256 of the key. An entry
//     that fails either check — truncated, bit-flipped, or renamed —
//     is quarantined (moved to quarantine/ for post-mortem), dropped
//     from the index, and its key transparently re-simulates on the
//     next request.
//   - Open runs a recovery scan: leftover temp files are removed,
//     every entry is verified, and corrupt ones are quarantined before
//     the store serves anything.
//   - Do is single-flight within the process: concurrent requests for
//     one key wait for the first instead of simulating twice, exactly
//     like sweep.Cache. Across processes the disk itself dedups —
//     a restarted server serves completed points from the store.
//
// Errors are never cached (a failed simulation retries on the next
// request), and a failed Put degrades to a warning counter rather than
// failing the point: the simulation result is still correct, only its
// durability is lost.
type Store struct {
	dir string

	mu      sync.Mutex
	flights map[string]*storeFlight
	index   map[string]struct{}
	tmpSeq  int64

	scanTime time.Time

	hits        int64
	misses      int64
	quarantined int64
	putFailures int64
	orphanTemps int64
}

// storeFlight is one in-flight simulation other requests wait on.
type storeFlight struct {
	done chan struct{} // closed once res/err are final
	res  core.Result
	err  error
}

// storeEntry is the on-disk JSON schema. Result stays a RawMessage
// through verification so the checksum covers the exact stored bytes.
type storeEntry struct {
	Key    string          `json:"key"`
	Sum    string          `json:"sum"`
	Result json.RawMessage `json:"result"`
}

const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
)

// objName is the content address of a key: SHA-256, hex, ".json".
func objName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".json"
}

// entrySum is the integrity checksum: SHA-256 over the key and the
// result's exact JSON bytes.
func entrySum(key string, result []byte) string {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{'\n'})
	h.Write(result)
	return hex.EncodeToString(h.Sum(nil))
}

// Open opens (creating if necessary) the store rooted at dir and runs
// the recovery scan: interrupted temp files are deleted, every entry is
// checksum-verified, and truncated or corrupt entries are quarantined.
// The returned store serves only entries that passed verification.
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:      dir,
		flights:  map[string]*storeFlight{},
		index:    map[string]struct{}{},
		scanTime: time.Now(),
	}
	for _, d := range []string{filepath.Join(dir, objectsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("serve: store: %w", err)
		}
	}
	ents, err := os.ReadDir(filepath.Join(dir, objectsDir))
	if err != nil {
		return nil, fmt.Errorf("serve: store scan: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(dir, objectsDir, name)
		if !strings.HasSuffix(name, ".json") {
			// A temp file from an interrupted write: the rename never
			// happened, so the entry was never promised durable.
			os.Remove(path)
			s.orphanTemps++
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			s.quarantine(name, err)
			continue
		}
		key, _, err := decodeEntry(raw, name)
		if err != nil {
			s.quarantine(name, err)
			continue
		}
		s.index[key] = struct{}{}
	}
	return s, nil
}

// decodeEntry parses and verifies one entry's bytes: well-formed JSON,
// checksum over (key, result bytes) matches, and the filename is the
// key's content address.
func decodeEntry(raw []byte, name string) (string, core.Result, error) {
	var ent storeEntry
	if err := json.Unmarshal(raw, &ent); err != nil {
		return "", core.Result{}, fmt.Errorf("truncated or malformed entry: %w", err)
	}
	if ent.Sum != entrySum(ent.Key, ent.Result) {
		return "", core.Result{}, fmt.Errorf("checksum mismatch")
	}
	if objName(ent.Key) != name {
		return "", core.Result{}, fmt.Errorf("entry key does not address its filename")
	}
	var res core.Result
	if err := json.Unmarshal(ent.Result, &res); err != nil {
		return "", core.Result{}, fmt.Errorf("result payload: %w", err)
	}
	return ent.Key, res, nil
}

// quarantine moves a corrupt entry (by object filename) into
// quarantine/ and counts it. Failures to move fall back to deletion so
// a corrupt entry can never be served again either way. Callers hold no
// lock ordering obligations; counters are adjusted under mu.
func (s *Store) quarantine(name string, reason error) {
	src := filepath.Join(s.dir, objectsDir, name)
	dst := filepath.Join(s.dir, quarantineDir, name)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.dir, quarantineDir, fmt.Sprintf("%s.%d", name, i))
	}
	if err := os.Rename(src, dst); err != nil {
		os.Remove(src)
	}
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
	_ = reason
}

// lookup reads and verifies the entry for key. A missing file is a
// plain miss; a corrupt one is quarantined, dropped from the index and
// reported as a miss, so the caller transparently re-simulates.
func (s *Store) lookup(key string) (core.Result, bool) {
	name := objName(key)
	raw, err := os.ReadFile(filepath.Join(s.dir, objectsDir, name))
	if err != nil {
		if !os.IsNotExist(err) {
			s.quarantine(name, err)
		}
		s.dropIndex(key)
		return core.Result{}, false
	}
	gotKey, res, err := decodeEntry(raw, name)
	if err != nil || gotKey != key {
		if err == nil {
			err = fmt.Errorf("entry key mismatch")
		}
		s.quarantine(name, err)
		s.dropIndex(key)
		return core.Result{}, false
	}
	return res, true
}

func (s *Store) dropIndex(key string) {
	s.mu.Lock()
	delete(s.index, key)
	s.mu.Unlock()
}

// put durably writes the entry for key: temp file in the objects
// directory, fsync, rename. Only after the rename is the key indexed.
func (s *Store) put(key string, res core.Result) error {
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	data, err := json.Marshal(storeEntry{Key: key, Sum: entrySum(key, payload), Result: payload})
	if err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	name := objName(key)
	s.mu.Lock()
	s.tmpSeq++
	seq := s.tmpSeq
	s.mu.Unlock()
	tmp := filepath.Join(s.dir, objectsDir, fmt.Sprintf("%s.tmp%d", name, seq))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: store put: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, objectsDir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: store put: %w", err)
	}
	// Best-effort directory sync so the rename itself survives a crash.
	if d, err := os.Open(filepath.Join(s.dir, objectsDir)); err == nil {
		d.Sync()
		d.Close()
	}
	s.mu.Lock()
	s.index[key] = struct{}{}
	s.mu.Unlock()
	return nil
}

// Do returns the stored result for cfg, simulating (and durably
// storing) on a miss. The boolean reports a store hit — served from
// disk or from a concurrent in-flight simulation of the same key.
// Errors are not stored; waiters of a failing in-flight point receive
// its error, and a later request retries. Do implements sweep.Cacher.
//
// The disk is always consulted before a simulation starts, even for
// keys this process has never indexed: when several processes share one
// store directory (the cluster's shared-store topology), an entry
// written by a sibling after this store opened is found and served
// rather than re-simulated. The only cross-process duplication left is
// two processes simulating the same key concurrently — both write the
// same bytes (the simulator is deterministic), so the last rename wins
// harmlessly.
func (s *Store) Do(ctx context.Context, cfg core.Config, run func(core.Config) (core.Result, error)) (core.Result, bool, error) {
	key := cfg.Key()
	for {
		s.mu.Lock()
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
				if f.err != nil {
					// The leader failed; the waiter was not served.
					return f.res, false, f.err
				}
				s.mu.Lock()
				s.hits++
				s.mu.Unlock()
				return f.res, true, nil
			case <-ctx.Done():
				return core.Result{}, false, ctx.Err()
			}
		}
		s.mu.Unlock()
		if res, ok := s.lookup(key); ok {
			s.mu.Lock()
			s.hits++
			s.index[key] = struct{}{}
			s.mu.Unlock()
			return res, true, nil
		}
		// Nothing usable on disk (missing, or corrupt and now
		// quarantined): race for the leader slot and simulate.
		s.mu.Lock()
		if _, ok := s.flights[key]; ok {
			// Another goroutine became leader between the lookup and
			// here; loop to wait on its flight.
			s.mu.Unlock()
			continue
		}
		f := &storeFlight{done: make(chan struct{})}
		s.flights[key] = f
		s.misses++
		s.mu.Unlock()

		f.res, f.err = run(cfg)
		if f.err == nil {
			if perr := s.put(key, f.res); perr != nil {
				// The result is still valid; only durability was
				// lost. Count it so operators see the disk problem.
				s.mu.Lock()
				s.putFailures++
				s.mu.Unlock()
			}
		}
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		close(f.done)
		return f.res, false, f.err
	}
}

// Get returns the stored result for key if a verified entry exists,
// without simulating or joining a flight. It reads through to disk, so
// entries written by sibling processes sharing the directory are found.
// The cluster coordinator uses it to resolve already-stored points of a
// submitted grid before leasing anything out.
func (s *Store) Get(key string) (core.Result, bool) {
	res, ok := s.lookup(key)
	if !ok {
		return core.Result{}, false
	}
	s.mu.Lock()
	s.hits++
	s.index[key] = struct{}{}
	s.mu.Unlock()
	return res, true
}

// Ensure makes res durable under key if no entry exists yet. The
// cluster coordinator calls it for every worker-reported result so the
// coordinator's store stays authoritative even when workers persist to
// their own directories; under a shared directory the entry usually
// already exists and Ensure is a no-op. A failed write degrades to the
// PutFailures counter exactly like Do's put path — the in-memory result
// is still correct, only durability was lost.
func (s *Store) Ensure(key string, res core.Result) {
	s.mu.Lock()
	_, indexed := s.index[key]
	s.mu.Unlock()
	if indexed {
		return
	}
	if _, err := os.Stat(filepath.Join(s.dir, objectsDir, objName(key))); err == nil {
		// A sibling process already wrote it; index and move on.
		s.mu.Lock()
		s.index[key] = struct{}{}
		s.mu.Unlock()
		return
	}
	if err := s.put(key, res); err != nil {
		s.mu.Lock()
		s.putFailures++
		s.mu.Unlock()
	}
}

// StoreStats is a point-in-time counter snapshot. Hits and Misses count
// this process's lookups; Entries the keys currently verified durable;
// Quarantined corrupt entries set aside (at Open or on read);
// PutFailures completed points whose durable write failed. LastScan and
// OrphanTempsRemoved describe the startup recovery scan — surfaced in
// GET /healthz and GET /v1/store so an operator sees silent corruption
// (quarantines, interrupted writes) without grepping logs.
type StoreStats struct {
	Entries            int       `json:"entries"`
	Hits               int64     `json:"hits"`
	Misses             int64     `json:"misses"`
	Quarantined        int64     `json:"quarantined"`
	PutFailures        int64     `json:"put_failures"`
	LastScan           time.Time `json:"last_scan"`
	OrphanTempsRemoved int64     `json:"orphan_temps_removed"`
}

// Stats returns the current counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries:            len(s.index),
		Hits:               s.hits,
		Misses:             s.misses,
		Quarantined:        s.quarantined,
		PutFailures:        s.putFailures,
		LastScan:           s.scanTime,
		OrphanTempsRemoved: s.orphanTemps,
	}
}

// Len is the number of verified durable entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }
