package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"lapses/internal/core"
	"lapses/internal/sweep"
)

// Worker is one cluster worker instance: a claim-execute-complete loop
// against one or more coordinators. Each claimed lease is simulated
// through sweep.Run with the worker's Store as the cache layer, so every
// completed point is durable the moment it finishes — a worker killed
// mid-lease (kill -9 included) loses only its in-flight points, and the
// re-execution of its requeued lease serves the persisted ones straight
// from the store, simulating nothing twice.
//
// While a lease runs, a background goroutine heartbeats it at the
// coordinator's advertised cadence. A heartbeat answered with ok=false
// (the lease expired and was requeued, the job ended, or the coordinator
// restarted) aborts the unit at the next point boundary; the final
// completion is then late, and the coordinator merges its successes
// idempotently. Cancelling Run's context is the graceful drain: the
// current unit stops dispatching new points, in-flight points finish and
// persist, finished points are reported, and unstarted ones are reported
// transient so the coordinator requeues them immediately instead of
// waiting out the TTL.
type Worker struct {
	// ID is the worker's stable identity in coordinator logs and lease
	// ownership (required).
	ID string
	// Coordinators are the coordinator base URLs, tried in order on
	// every claim until one answers (required, at least one).
	Coordinators []string
	// Store is the worker's result store — the shared cluster directory,
	// or a private one merged coordinator-side on completion (required).
	Store *Store
	// Workers is the sweep pool width per unit (<= 0: the sweep
	// default).
	Workers int
	// HTTP is the transport (nil: http.DefaultClient).
	HTTP *http.Client
	// Runner replaces core.Run per point — the test seam.
	Runner func(core.Config) (core.Result, error)
	// IdleWait is the base wait between claims when no work is available
	// (default 250ms; grows with jittered backoff while idle, capped at
	// 8x).
	IdleWait time.Duration
	// Verbose, when non-nil, receives one line per lease executed.
	Verbose io.Writer

	cur int // index of the last coordinator that answered
}

func (w *Worker) validate() error {
	if w.ID == "" {
		return fmt.Errorf("serve: worker needs an ID")
	}
	if len(w.Coordinators) == 0 {
		return fmt.Errorf("serve: worker needs at least one coordinator URL")
	}
	if w.Store == nil {
		return fmt.Errorf("serve: worker needs a result store")
	}
	return nil
}

func (w *Worker) idle() time.Duration {
	if w.IdleWait > 0 {
		return w.IdleWait
	}
	return 250 * time.Millisecond
}

// client returns a Client bound to coordinator i.
func (w *Worker) client(i int) *Client {
	return &Client{Base: w.Coordinators[i], HTTP: w.HTTP}
}

// claim asks each coordinator in turn (starting from the last one that
// answered) for a lease. Transport errors rotate to the next peer; a
// reachable coordinator with no work ends the round.
func (w *Worker) claim(ctx context.Context) (*Client, ClaimResponse, error) {
	var lastErr error
	for k := 0; k < len(w.Coordinators); k++ {
		i := (w.cur + k) % len(w.Coordinators)
		co := w.client(i)
		resp, err := co.Claim(ctx, w.ID)
		if err != nil {
			lastErr = err
			continue
		}
		w.cur = i
		return co, resp, nil
	}
	return nil, ClaimResponse{}, lastErr
}

// Run claims and executes leases until ctx is cancelled, then drains:
// the in-flight unit's running points finish and persist, its outcomes
// are reported, and Run returns ctx.Err().
func (w *Worker) Run(ctx context.Context) error {
	if err := w.validate(); err != nil {
		return err
	}
	pol := RetryPolicy{BaseBackoff: w.idle(), MaxBackoff: 8 * w.idle(), MaxAttempts: 1}.normalize()
	misses := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		co, grant, err := w.claim(ctx)
		if err != nil || grant.Lease == "" {
			// No coordinator reachable, or no work: idle with jittered
			// backoff so a fleet of idle workers doesn't poll in step.
			misses++
			wait := pol.backoff(misses)
			if err == nil && grant.RetryMS > 0 && time.Duration(grant.RetryMS)*time.Millisecond > wait {
				wait = time.Duration(grant.RetryMS) * time.Millisecond
			}
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			continue
		}
		misses = 0
		w.execute(ctx, co, grant)
	}
}

// execute runs one leased unit to completion (or abandonment) and
// reports per-point outcomes back to the coordinator.
func (w *Worker) execute(ctx context.Context, co *Client, g ClaimResponse) {
	// Materialize the wire points. A config that fails validation is a
	// permanent failure — retrying a malformed point cannot help — and
	// never reaches the simulator.
	reports := make([]PointReport, 0, len(g.Points))
	var cfgs []core.Config
	var cfgIdx []int
	for j, p := range g.Points {
		if j >= len(g.Indices) {
			break
		}
		c, err := p.Config()
		if err != nil {
			reports = append(reports, PointReport{Index: g.Indices[j], Error: err.Error()})
			continue
		}
		cfgs = append(cfgs, c)
		cfgIdx = append(cfgIdx, g.Indices[j])
	}

	unitCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbEvery := time.Duration(g.HeartbeatMS) * time.Millisecond
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		ticker := time.NewTicker(hbEvery)
		defer ticker.Stop()
		for {
			select {
			case <-unitCtx.Done():
				return
			case <-ticker.C:
				hctx, hc := context.WithTimeout(unitCtx, hbEvery)
				ok, err := co.Heartbeat(hctx, g.Lease, w.ID)
				hc()
				if err == nil && !ok {
					// The lease is gone; abandon the unit. Transport
					// errors are NOT abandonment — the coordinator may
					// be mid-restart, and if it stays silent past the
					// TTL it requeues the lease itself.
					cancel()
					return
				}
			}
		}
	}()

	outs, _ := sweep.Run(unitCtx, cfgs, sweep.Options{
		Workers: w.Workers,
		Cache:   w.Store,
		Runner:  w.Runner,
	})
	cancel()
	<-hbDone

	for j, o := range outs {
		idx := cfgIdx[j]
		switch {
		case o.Err == nil:
			res := o.Result
			reports = append(reports, PointReport{Index: idx, Result: &res, Cached: o.Cached})
		case errors.Is(o.Err, context.Canceled) && unitCtx.Err() != nil:
			// Never started (drain or lease loss): transient, so the
			// coordinator requeues it without burning the TTL.
			reports = append(reports, PointReport{Index: idx, Error: fmt.Sprintf("point not executed: %v", o.Err), Transient: true})
		default:
			// The transient/permanent taxonomy: worker-side panics (an
			// OOM-ish or environment failure may not reproduce
			// elsewhere) and explicitly Transient errors requeue under
			// the capped budget; anything else is a deterministic
			// property of the config and fails fast.
			var pe *sweep.PanicError
			transient := IsTransient(o.Err) || errors.As(o.Err, &pe)
			reports = append(reports, PointReport{Index: idx, Error: o.Err.Error(), Transient: transient})
		}
	}

	// Report on a fresh bounded context: the whole point of the drain
	// path is delivering these outcomes after ctx was cancelled. If the
	// completion cannot be delivered, the results are still durable in
	// the store and the TTL expiry requeues the lease.
	rctx, rcancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer rcancel()
	resp, err := co.Complete(rctx, g.Lease, g.Job, w.ID, reports)
	if w.Verbose != nil {
		nres, ncached, nerr := 0, 0, 0
		for _, rep := range reports {
			switch {
			case rep.Error != "":
				nerr++
			case rep.Cached:
				ncached++
				nres++
			default:
				nres++
			}
		}
		switch {
		case err != nil:
			fmt.Fprintf(w.Verbose, "[worker %s lease %s: completion not delivered: %v]\n", w.ID, g.Lease, err)
		case resp.Late:
			fmt.Fprintf(w.Verbose, "[worker %s lease %s: late completion (%d ok, %d cached)]\n", w.ID, g.Lease, nres, ncached)
		default:
			fmt.Fprintf(w.Verbose, "[worker %s lease %s: %d points, %d cached, %d failed]\n", w.ID, g.Lease, nres, ncached, nerr)
		}
	}
}
