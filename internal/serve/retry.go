package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// TransientError marks a point failure as retryable: the simulation hit
// a condition expected to clear (resource pressure, a store read racing
// a concurrent writer) rather than a deterministic property of the
// configuration. The executor retries transient failures with
// exponential backoff; anything else (a config error, a panic, a
// saturation verdict) fails the point immediately — retrying a
// deterministic simulator on the same inputs cannot change the answer.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return fmt.Sprintf("transient: %v", e.Err) }

func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err carries a TransientError anywhere in
// its chain.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// RetryPolicy bounds how the executor retries transient point failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per point, first included
	// (default 3; 1 disables retry).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff, with up to 50% random
	// jitter added so points failing together don't retry together
	// (defaults 50ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	return p
}

// backoff returns the delay before retry attempt n (n=1 is the first
// retry), jittered. The global rand source is used for jitter because
// retries fire from concurrent sweep workers.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < n && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// retry runs fn under the policy: transient failures are retried with
// jittered exponential backoff until the attempt budget or ctx expires;
// permanent failures and successes return immediately. The returned
// attempt count is how many times fn ran.
func (p RetryPolicy) retry(ctx context.Context, fn func() error) (attempts int, err error) {
	p = p.normalize()
	for attempts = 1; ; attempts++ {
		err = fn()
		if err == nil || !IsTransient(err) || attempts >= p.MaxAttempts {
			return attempts, err
		}
		t := time.NewTimer(p.backoff(attempts))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return attempts, fmt.Errorf("%w (retry interrupted: %v)", err, ctx.Err())
		}
	}
}
