package serve

import (
	"fmt"
	"time"

	"lapses/internal/core"
	"lapses/internal/sweep"
)

// workUnit is one leased range of a clustered job's grid: the indices a
// worker must resolve, how many times the unit has been claimed, and the
// lease that currently owns it. Units start as contiguous point ranges
// (sweep.Ranges over the unresolved grid); a requeued unit carries only
// the indices its previous owner left unresolved.
type workUnit struct {
	indices []int
	attempt int

	lease   string
	owner   string
	expires time.Time
	lastErr string
}

// clusterGrid is the coordinator-side lease state of one job: the grid,
// the merged outcomes accumulating in grid order, the pending-unit queue
// workers claim from, and the active leases being heartbeat-renewed.
//
// Every method requires the owning Server's mu — the coordinator's HTTP
// handlers and the expiry scanner all mutate one clusterGrid, and the
// Server lock is the single serialization point (lease traffic is a few
// requests per TTL, nowhere near contention).
//
// The exactly-once-effect argument lives here: done[i] flips exactly
// once per point (record discards duplicates), so no matter how claim,
// expiry, late completion and requeue interleave, each point's outcome
// lands once — and because re-execution of an already-persisted point is
// a store hit, duplicated *leases* never mean duplicated *simulation*.
type clusterGrid struct {
	jobID string
	// token is the job's cluster-wide identity: the job ID qualified by
	// the coordinator's per-process epoch. Lease IDs are minted under it
	// and workers echo it back in completions, so grants from a previous
	// coordinator incarnation (job IDs restart from j000001 after a
	// restart) can never collide with — or be merged into — a fresh job.
	token  string
	grid   []core.Config
	points []Point

	outs      []sweep.Outcome
	done      []bool
	remaining int

	pending   []*workUnit
	active    map[string]*workUnit
	nextLease int64

	ttl         time.Duration
	maxAttempts int
	cancelled   bool
	// finished closes once every point is resolved (done, or failed
	// permanently); the executor selects on it.
	finished chan struct{}

	// onRecord observes each resolved point (called with the Server's mu
	// held — it must not lock); onRequeue observes each unit returned to
	// the queue.
	onRecord  func(i int, o sweep.Outcome)
	onRequeue func(transient bool)

	claims            int64
	orphanRequeues    int64
	transientRequeues int64
	lateReports       int64
	exhaustedUnits    int64
}

func newClusterGrid(jobID, epoch string, grid []core.Config, points []Point, ttl time.Duration, maxAttempts int) *clusterGrid {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	cg := &clusterGrid{
		jobID:       jobID,
		token:       jobID + "." + epoch,
		grid:        grid,
		points:      points,
		outs:        make([]sweep.Outcome, len(grid)),
		done:        make([]bool, len(grid)),
		remaining:   len(grid),
		active:      map[string]*workUnit{},
		ttl:         ttl,
		maxAttempts: maxAttempts,
		finished:    make(chan struct{}),
	}
	for i := range grid {
		cg.outs[i].Config = grid[i]
	}
	return cg
}

// record resolves point i with o, once: duplicates (a late completion of
// a lease that was already requeued and re-executed) are discarded, so
// whichever report arrives first wins and the merged outcome is stable.
func (cg *clusterGrid) record(i int, o sweep.Outcome) {
	if i < 0 || i >= len(cg.done) || cg.done[i] {
		return
	}
	o.Config = cg.grid[i]
	cg.outs[i] = o
	cg.done[i] = true
	cg.remaining--
	if cg.onRecord != nil {
		cg.onRecord(i, o)
	}
	if cg.remaining == 0 {
		close(cg.finished)
	}
}

// seed chunks the still-unresolved indices into contiguous lease units
// of at most unitSize points each.
func (cg *clusterGrid) seed(unitSize int) {
	var undone []int
	for i, d := range cg.done {
		if !d {
			undone = append(undone, i)
		}
	}
	for _, r := range sweep.Ranges(len(undone), unitSize) {
		cg.pending = append(cg.pending, &workUnit{indices: undone[r[0]:r[1]]})
	}
}

// claim hands the next pending unit to worker under a fresh lease, or
// returns nil when there is no work (drained queue, or job cancelled).
func (cg *clusterGrid) claim(worker string, now time.Time) *workUnit {
	if cg.cancelled || len(cg.pending) == 0 {
		return nil
	}
	u := cg.pending[0]
	cg.pending = cg.pending[1:]
	cg.nextLease++
	u.lease = fmt.Sprintf("%s-l%04d", cg.token, cg.nextLease)
	u.owner = worker
	u.attempt++
	u.expires = now.Add(cg.ttl)
	cg.active[u.lease] = u
	cg.claims++
	return u
}

// heartbeat renews a lease's TTL. False tells the worker its lease is
// gone — expired and requeued, the job finished or was cancelled, or the
// coordinator restarted — and it should abandon the unit (everything it
// already persisted stays durable; the re-execution will hit the store).
func (cg *clusterGrid) heartbeat(lease string, now time.Time) bool {
	u := cg.active[lease]
	if u == nil || cg.cancelled {
		return false
	}
	u.expires = now.Add(cg.ttl)
	return true
}

// expireOrphans requeues every lease whose worker has gone silent past
// its TTL — the failure detector for kill -9, network partition, and
// hung workers alike. Returns how many leases it reaped.
func (cg *clusterGrid) expireOrphans(now time.Time) int {
	n := 0
	for lease, u := range cg.active {
		if now.After(u.expires) {
			delete(cg.active, lease)
			cg.orphanRequeues++
			cg.requeue(u, fmt.Sprintf("lease %s orphaned: worker %q went silent past the %s TTL", u.lease, u.owner, cg.ttl), false)
			n++
		}
	}
	return n
}

// requeue returns a unit's unresolved indices to the pending queue — or,
// once the attempt budget (RetryPolicy.MaxAttempts) is spent, fails them
// permanently with the last failure's message, so a panic message from a
// worker survives into the job's error report instead of the unit
// bouncing forever. transientReport distinguishes worker-reported
// transient failures from orphan detection, for the stats counters.
func (cg *clusterGrid) requeue(u *workUnit, reason string, transientReport bool) {
	var left []int
	for _, i := range u.indices {
		if !cg.done[i] {
			left = append(left, i)
		}
	}
	if len(left) == 0 {
		return
	}
	if transientReport {
		cg.transientRequeues++
	}
	if u.attempt >= cg.maxAttempts {
		cg.exhaustedUnits++
		err := fmt.Errorf("serve: cluster: giving up after %d lease attempts: %s", u.attempt, reason)
		for _, i := range left {
			cg.record(i, sweep.Outcome{Err: err})
		}
		return
	}
	cg.pending = append(cg.pending, &workUnit{indices: left, attempt: u.attempt, lastErr: reason})
	if cg.onRequeue != nil {
		cg.onRequeue(transientReport)
	}
}

// complete applies a worker's per-point reports for a lease.
//
//   - Successes and permanent failures resolve their points.
//   - Transient failures (worker-side panics, serve.Transient errors,
//     points a draining worker never started) send the unit's leftovers
//     back through requeue, under the capped attempt budget.
//   - A late report — the lease already expired and was requeued — still
//     resolves its successes: re-execution is idempotent, record discards
//     whichever copy arrives second, and the slow-but-alive worker's
//     results are not thrown away. Late failure reports are ignored; the
//     requeued unit owns those points now.
//
// Returns whether the report was late.
func (cg *clusterGrid) complete(lease string, reports []PointReport, now time.Time) (late bool) {
	u := cg.active[lease]
	late = u == nil
	if late {
		cg.lateReports++
	} else {
		delete(cg.active, lease)
	}
	firstTransient := ""
	for _, r := range reports {
		switch {
		case r.Error == "":
			if r.Result != nil {
				cg.record(r.Index, sweep.Outcome{Result: *r.Result, Cached: r.Cached})
			}
		case r.Transient:
			if firstTransient == "" {
				firstTransient = r.Error
			}
		default:
			cg.record(r.Index, sweep.Outcome{Err: fmt.Errorf("%s", r.Error)})
		}
	}
	if u != nil {
		// Whatever the unit still owes — reported transient, or simply
		// never reported (a worker that drained mid-unit reports only
		// what finished) — goes back through the capped requeue.
		reason := firstTransient
		if reason == "" {
			reason = fmt.Sprintf("lease %s returned without resolving all points", lease)
		}
		cg.requeue(u, reason, firstTransient != "")
	}
	return late
}

// cancel marks the grid cancelled: claims stop, heartbeats answer false,
// and every unresolved point is recorded with err (in index order, so
// the merge stays deterministic even for aborted jobs).
func (cg *clusterGrid) cancel(err error) {
	if cg.cancelled {
		return
	}
	cg.cancelled = true
	cg.pending = nil
	for i := range cg.done {
		if !cg.done[i] {
			cg.record(i, sweep.Outcome{Err: err})
		}
	}
}
