package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lapses/internal/core"
)

// scripted returns a deterministic fake result derived from the config,
// so store round-trip tests can assert bit-identity without simulating.
func scripted(c core.Config) (core.Result, error) {
	return core.Result{
		AvgLatency:  12.5 + c.Load*100,
		NetLatency:  7.25,
		Throughput:  c.Load,
		Delivered:   1000 + c.Seed,
		TotalCycles: 5000,
		P99:         1.0 / 3.0, // a value whose decimal form is non-terminating
	}, nil
}

func storeConfig(seed int64) core.Config {
	c := core.DefaultConfig()
	c.Seed = seed
	return c
}

// TestStoreRoundTrip: a stored result is served back bit for bit, both
// within a process and across a reopen (the crash-survival property).
func TestStoreRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeConfig(1)
	var calls atomic.Int64
	run := func(c core.Config) (core.Result, error) { calls.Add(1); return scripted(c) }

	want, _ := scripted(cfg)
	res, cached, err := s.Do(context.Background(), cfg, run)
	if err != nil || cached || res != want {
		t.Fatalf("first Do: res=%+v cached=%v err=%v", res, cached, err)
	}
	res, cached, err = s.Do(context.Background(), cfg, run)
	if err != nil || !cached || res != want {
		t.Fatalf("second Do: res=%+v cached=%v err=%v", res, cached, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("runner ran %d times, want 1", calls.Load())
	}

	// A fresh process opening the same directory serves from disk.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d entries, want 1", s2.Len())
	}
	res, cached, err = s2.Do(context.Background(), cfg, run)
	if err != nil || !cached || res != want {
		t.Fatalf("reopened Do: res=%+v cached=%v err=%v", res, cached, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("reopened store re-simulated: %d runner calls", calls.Load())
	}
	st := s2.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Quarantined != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// corruptEntry finds the single object file in dir and mutates it.
func corruptEntry(t *testing.T, dir string, mutate func(path string, raw []byte)) {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, objectsDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("expected exactly 1 object, found %d", len(ents))
	}
	path := filepath.Join(dir, objectsDir, ents[0].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate(path, raw)
}

// TestStoreCorruptionDetection is the satellite-3 scenario: a stored
// result is damaged on disk (truncation, then a bit flip), the store is
// restarted, and the damage must be detected by checksum, the entry
// quarantined, and the point transparently re-simulated — never served
// corrupt.
func TestStoreCorruptionDetection(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name   string
		mutate func(path string, raw []byte)
	}{
		{"truncated", func(path string, raw []byte) {
			if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped", func(path string, raw []byte) {
			// Flip a bit inside the result payload, not the JSON framing:
			// the file stays parseable and only the checksum catches it.
			b := append([]byte(nil), raw...)
			for i := range b {
				if b[i] >= '1' && b[i] <= '8' {
					b[i]++
					break
				}
			}
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			cfg := storeConfig(7)
			if _, _, err := s.Do(context.Background(), cfg, scripted); err != nil {
				t.Fatal(err)
			}
			corruptEntry(t, dir, tc.mutate)

			// Restart: the recovery scan must quarantine the entry.
			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("restart over damaged store: %v", err)
			}
			st := s2.Stats()
			if st.Quarantined != 1 || st.Entries != 0 {
				t.Fatalf("after restart: %+v, want 1 quarantined, 0 entries", st)
			}
			q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
			if err != nil || len(q) != 1 {
				t.Fatalf("quarantine dir: %v entries, err %v", len(q), err)
			}

			// The damaged point transparently re-simulates and heals.
			var calls atomic.Int64
			run := func(c core.Config) (core.Result, error) { calls.Add(1); return scripted(c) }
			want, _ := scripted(cfg)
			res, cached, err := s2.Do(context.Background(), cfg, run)
			if err != nil || cached || res != want || calls.Load() != 1 {
				t.Fatalf("re-simulation: res=%+v cached=%v err=%v calls=%d", res, cached, err, calls.Load())
			}
			res, cached, err = s2.Do(context.Background(), cfg, run)
			if err != nil || !cached || res != want {
				t.Fatalf("healed entry not served: cached=%v err=%v", cached, err)
			}
		})
	}
}

// TestStoreReadTimeCorruption: damage landing after Open (the entry is
// indexed) is caught at read time by the same checksum, quarantined,
// and re-simulated — a serving store never returns corrupt bits.
func TestStoreReadTimeCorruption(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeConfig(9)
	if _, _, err := s.Do(context.Background(), cfg, scripted); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, dir, func(path string, raw []byte) {
		if err := os.WriteFile(path, raw[:len(raw)-4], 0o644); err != nil {
			t.Fatal(err)
		}
	})
	var calls atomic.Int64
	run := func(c core.Config) (core.Result, error) { calls.Add(1); return scripted(c) }
	want, _ := scripted(cfg)
	res, cached, err := s.Do(context.Background(), cfg, run)
	if err != nil || cached || res != want || calls.Load() != 1 {
		t.Fatalf("read-time recovery: res=%+v cached=%v err=%v calls=%d", res, cached, err, calls.Load())
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats after read-time quarantine: %+v", st)
	}
}

// TestStoreTempFileCleanup: a temp file left by a crash mid-write is
// removed by the recovery scan and never treated as an entry.
func TestStoreTempFileCleanup(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, objectsDir, objName("some-key")+".tmp17")
	if err := os.WriteFile(tmp, []byte(`{"key":"half-writ`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("temp file counted as entry")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived recovery: %v", err)
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("temp cleanup counted as quarantine: %+v", st)
	}
	// The recovery scan's work is part of the store's health report.
	if st := s.Stats(); st.OrphanTempsRemoved != 1 || st.LastScan.IsZero() {
		t.Fatalf("recovery scan not surfaced in stats: %+v", st)
	}
}

// TestStoreSharedDirectory: two Store instances over one directory (a
// cluster coordinator and a worker, or two workers) see each other's
// writes — the second Do for a key another instance persisted is a disk
// hit, not a second simulation. This is the property that makes
// requeued cluster leases free for already-persisted points.
func TestStoreSharedDirectory(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeConfig(7)
	var calls atomic.Int64
	run := func(c core.Config) (core.Result, error) { calls.Add(1); return scripted(c) }

	want, _, err := s1.Do(context.Background(), cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	// s2 has never seen this key in memory; it must find s1's write on
	// disk instead of simulating.
	got, cached, err := s2.Do(context.Background(), cfg, run)
	if err != nil || !cached || got != want {
		t.Fatalf("sibling write not found: res=%+v cached=%v err=%v", got, cached, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("runner ran %d times across the shared directory, want 1", calls.Load())
	}

	// Get reads through the same path without simulating.
	res, ok := s2.Get(cfg.Key())
	if !ok || res != want {
		t.Fatalf("Get(%s) = %+v ok=%v", cfg.Key(), res, ok)
	}
	// Ensure on an already-present key is a no-op (no duplicate write,
	// no error), and on a fresh key makes it durable.
	s2.Ensure(cfg.Key(), want)
	other := storeConfig(8)
	ores, _ := scripted(other)
	s2.Ensure(other.Key(), ores)
	if got, ok := s1.Get(other.Key()); !ok || got != ores {
		t.Fatalf("Ensure'd entry not visible to sibling: %+v ok=%v", got, ok)
	}
}

// TestStoreMisnamedEntry: a valid entry under the wrong filename (say,
// copied by hand) is quarantined — the content address must bind.
func TestStoreMisnamedEntry(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Do(context.Background(), storeConfig(3), scripted); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, dir, func(path string, raw []byte) {
		os.Remove(path)
		wrong := filepath.Join(dir, objectsDir, objName("some-other-key")+".json")
		if err := os.WriteFile(wrong, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Entries != 0 || st.Quarantined != 1 {
		t.Fatalf("misnamed entry not quarantined: %+v", st)
	}
}

// TestStoreSingleFlight: concurrent requests for one key run the
// simulation once; every waiter is served the leader's result as a hit.
func TestStoreSingleFlight(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeConfig(4)
	var calls atomic.Int64
	gate := make(chan struct{})
	run := func(c core.Config) (core.Result, error) {
		calls.Add(1)
		<-gate
		return scripted(c)
	}
	const waiters = 8
	var wg sync.WaitGroup
	hits := make([]bool, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, hits[i], errs[i] = s.Do(context.Background(), cfg, run)
		}(i)
	}
	// Let the flock pile up behind the leader, then release it.
	for s.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("simulation ran %d times under concurrency, want 1", calls.Load())
	}
	nhits := 0
	for i := range hits {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if hits[i] {
			nhits++
		}
	}
	if nhits != waiters-1 {
		t.Fatalf("%d of %d requests were hits, want %d", nhits, waiters, waiters-1)
	}
}

// TestStoreErrorsNotCached: a failed simulation is returned but never
// stored, so the next request retries it.
func TestStoreErrorsNotCached(t *testing.T) {
	t.Parallel()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeConfig(5)
	var calls atomic.Int64
	boom := fmt.Errorf("boom")
	run := func(c core.Config) (core.Result, error) {
		if calls.Add(1) == 1 {
			return core.Result{}, boom
		}
		return scripted(c)
	}
	if _, _, err := s.Do(context.Background(), cfg, run); err != boom {
		t.Fatalf("first Do: err=%v, want boom", err)
	}
	if s.Len() != 0 {
		t.Fatal("failed point was stored")
	}
	want, _ := scripted(cfg)
	res, cached, err := s.Do(context.Background(), cfg, run)
	if err != nil || cached || res != want {
		t.Fatalf("retry after failure: res=%+v cached=%v err=%v", res, cached, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("runner calls %d, want 2", calls.Load())
	}
}
