package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lapses/internal/core"
	"lapses/internal/sweep"
)

// fastCluster is a coordinator config tight enough that orphan detection
// and requeue cycles complete within test time: 200ms TTL, 50ms
// heartbeats, 4-point units.
func fastCluster() *ClusterOptions {
	return &ClusterOptions{LeaseTTL: 200 * time.Millisecond, Heartbeat: 50 * time.Millisecond, UnitSize: 4}
}

// startWorker opens its own Store over dir (the shared cluster
// directory — a separate *Store per process, one directory, exactly the
// deployment topology) and runs a Worker against the coordinator until
// the returned stop function is called.
func startWorker(t *testing.T, id, dir, coord string, runner func(core.Config) (core.Result, error)) (stop func()) {
	t.Helper()
	ws, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{
		ID:           id,
		Coordinators: []string{coord},
		Store:        ws,
		Workers:      1,
		Runner:       runner,
		IdleWait:     10 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	return stop
}

// countingRunner wraps scripted with a per-key simulation counter shared
// across workers, so tests can assert the exactly-once-simulation
// property: no config key is ever simulated twice cluster-wide.
func countingRunner(counts *sync.Map) func(core.Config) (core.Result, error) {
	return func(c core.Config) (core.Result, error) {
		n, _ := counts.LoadOrStore(c.Key(), new(atomic.Int64))
		n.(*atomic.Int64).Add(1)
		return scripted(c)
	}
}

func assertExactlyOnce(t *testing.T, counts *sync.Map) {
	t.Helper()
	counts.Range(func(k, v any) bool {
		if n := v.(*atomic.Int64).Load(); n != 1 {
			t.Errorf("config %v simulated %d times, want exactly 1", k, n)
		}
		return true
	})
}

// TestClusterEndToEnd: a grid executed by a coordinator leasing work to
// three workers over a shared store must merge byte-identical to the
// same grid run in-process by sweep.Run, with no point simulated twice;
// resubmitting the grid must lease nothing and serve purely from the
// store.
func TestClusterEndToEnd(t *testing.T) {
	t.Parallel()
	grid := testGrid(10)
	want, err := sweep.Run(context.Background(), grid, sweep.Options{Runner: scripted})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	srv, c := testServer(t, dir, ServerOptions{Cluster: fastCluster()})
	if srv.Mode() != "coordinator" {
		t.Fatalf("Mode() = %q, want coordinator", srv.Mode())
	}
	var counts sync.Map
	for i := 0; i < 3; i++ {
		startWorker(t, fmt.Sprintf("w%d", i), dir, c.Base, countingRunner(&counts))
	}

	got, err := c.Run(context.Background(), grid, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Err != nil {
			t.Fatalf("point %d: %v", i, got[i].Err)
		}
		if got[i].Result != want[i].Result {
			t.Fatalf("point %d diverged from in-process run:\nclustered  %+v\nin-process %+v", i, got[i].Result, want[i].Result)
		}
	}
	assertExactlyOnce(t, &counts)

	// Resubmission resolves entirely from the store before any lease is
	// cut: all points cached, zero new simulations.
	again, err := c.Run(context.Background(), grid, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !again[i].Cached || again[i].Result != want[i].Result {
			t.Fatalf("resubmitted point %d: cached=%v err=%v", i, again[i].Cached, again[i].Err)
		}
	}
	assertExactlyOnce(t, &counts)

	cs, err := c.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Coordinator || cs.Claims == 0 || cs.WorkersSeen != 3 {
		t.Fatalf("cluster stats: %+v", cs)
	}
}

// TestClusterOrphanRecovery is the chaos pin: one of three workers is
// partitioned away mid-lease (its heartbeats and completion stop
// reaching the coordinator — the observable signature of kill -9, a
// network partition, or a hang). The coordinator's failure detector
// must requeue the orphaned lease within ~one TTL, the survivors must
// finish the job, the merged results must be identical to an in-process
// run, and no point may be simulated twice — the partitioned worker's
// already-persisted points come back as store hits.
func TestClusterOrphanRecovery(t *testing.T) {
	t.Parallel()
	grid := testGrid(8)
	want, err := sweep.Run(context.Background(), grid, sweep.Options{Runner: scripted})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	_, c := testServer(t, dir, ServerOptions{Cluster: fastCluster()})

	// Worker "victim" simulates its unit's first two points normally
	// (they persist to the shared store), then loses its network and
	// hangs: from the coordinator's side it simply goes silent.
	var counts sync.Map
	count := countingRunner(&counts)
	var severed atomic.Bool
	hang := make(chan struct{})
	victimKey := grid[2].Key()
	victimRunner := func(cfg core.Config) (core.Result, error) {
		if cfg.Key() == victimKey {
			severed.Store(true)
			<-hang
			return core.Result{}, context.Canceled
		}
		return count(cfg)
	}
	vs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := &Worker{
		ID:           "victim",
		Coordinators: []string{c.Base},
		Store:        vs,
		Workers:      1,
		Runner:       victimRunner,
		IdleWait:     10 * time.Millisecond,
		HTTP:         &http.Client{Transport: &severableTransport{severed: &severed}},
	}
	vctx, vcancel := context.WithCancel(context.Background())
	vdone := make(chan struct{})
	go func() { defer close(vdone); victim.Run(vctx) }()
	// Unblock the hung runner before reaping the victim goroutine —
	// sweep.Run waits for in-flight points, so the reverse order would
	// deadlock the cleanup.
	t.Cleanup(func() { close(hang); vcancel(); <-vdone })

	// Submit, then let the victim claim the first unit and reach its
	// hang point before the survivors join, so the orphaned lease is
	// guaranteed to exist.
	st, err := c.Submit(context.Background(), mustPoints(t, grid))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !severed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("victim never reached its hang point")
		}
		time.Sleep(2 * time.Millisecond)
	}
	startWorker(t, "survivor-1", dir, c.Base, count)
	startWorker(t, "survivor-2", dir, c.Base, count)

	// The job must complete despite the victim never reporting.
	jobID := st.ID
	st = waitState(t, c, jobID, func(st JobStatus) bool { return st.Terminal() })
	if st.State != JobDone || st.Failed != 0 {
		t.Fatalf("job ended %s with %d failures: %s", st.State, st.Failed, st.Error)
	}

	res, err := c.Results(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Outcomes[i].Error != "" {
			t.Fatalf("point %d: %s", i, res.Outcomes[i].Error)
		}
		if *res.Outcomes[i].Result != want[i].Result {
			t.Fatalf("point %d diverged after chaos:\nclustered  %+v\nin-process %+v", i, *res.Outcomes[i].Result, want[i].Result)
		}
	}
	// The exactly-once pin: the victim persisted grid[0] and grid[1]
	// before hanging; the survivor that re-executed the requeued lease
	// must have served them from the store, not re-simulated them.
	assertExactlyOnce(t, &counts)

	cs, err := c.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cs.OrphanRequeues < 1 {
		t.Fatalf("orphaned lease was never requeued: %+v", cs)
	}
}

// TestClusterStaleJobCompletionDropped: a completion from a lease
// granted under an earlier job must be dropped wholesale when it arrives
// after a job transition — its indices point into the old job's grid, so
// merging it would stamp job A's results onto job B's configs and
// persist them under B's keys. The coordinator must answer Late, record
// nothing, and job B must still produce its own results.
func TestClusterStaleJobCompletionDropped(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	_, c := testServer(t, dir, ServerOptions{Cluster: fastCluster()})
	ctx := context.Background()

	// Job A: submitted with no workers attached; claim its unit by hand.
	gridA := testGrid(4)
	stA, err := c.Submit(ctx, mustPoints(t, gridA))
	if err != nil {
		t.Fatal(err)
	}
	grantA := claimUntilGranted(t, c, "stale-worker")

	// Job A ends (cancelled) and job B — different configs — takes over.
	if _, err := c.Cancel(ctx, stA.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, c, stA.ID, func(st JobStatus) bool { return st.Terminal() })
	gridB := testGrid(4)
	for i := range gridB {
		gridB[i].Seed += 1000 // distinct configs, distinct store keys
	}
	stB, err := c.Submit(ctx, mustPoints(t, gridB))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, stB.ID, func(st JobStatus) bool { return st.State == JobRunning })

	// The stale worker finally reports job A's lease, carrying a poison
	// result at index 0. Pre-fix this was record()ed into job B's grid
	// and Ensure()d into the store under B's config key.
	poison := core.Result{AvgLatency: -999, Delivered: -1}
	resp, err := c.Complete(ctx, grantA.Lease, grantA.Job, "stale-worker", []PointReport{
		{Index: grantA.Indices[0], Result: &poison},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Late {
		t.Fatalf("stale-job completion not reported late: %+v", resp)
	}
	st, err := c.Status(ctx, stB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 0 {
		t.Fatalf("stale-job completion resolved %d of job B's points", st.Completed)
	}

	// Job B completes normally and its results are its own — not job A's
	// poison, neither merged directly nor resurrected via the store.
	grantB := claimUntilGranted(t, c, "fresh-worker")
	reports := make([]PointReport, len(grantB.Indices))
	for j, idx := range grantB.Indices {
		cfg, err := grantB.Points[j].Config()
		if err != nil {
			t.Fatal(err)
		}
		res, _ := scripted(cfg)
		reports[j] = PointReport{Index: idx, Result: &res}
	}
	if _, err := c.Complete(ctx, grantB.Lease, grantB.Job, "fresh-worker", reports); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, c, stB.ID, func(st JobStatus) bool { return st.Terminal() })
	if final.State != JobDone || final.Failed != 0 {
		t.Fatalf("job B ended %s with %d failures: %s", final.State, final.Failed, final.Error)
	}
	res, err := c.Results(ctx, stB.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gridB {
		want, _ := scripted(gridB[i])
		if *res.Outcomes[i].Result != want {
			t.Fatalf("job B point %d poisoned by job A's stale completion: %+v", i, *res.Outcomes[i].Result)
		}
	}

	cs, err := c.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.LateReports < 1 {
		t.Fatalf("stale-job completion not counted late: %+v", cs)
	}
}

// claimUntilGranted claims as worker until the coordinator grants a
// lease (the submitted job may still be dequeuing).
func claimUntilGranted(t *testing.T, c *Client, worker string) ClaimResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		grant, err := c.Claim(context.Background(), worker)
		if err != nil {
			t.Fatal(err)
		}
		if grant.Lease != "" {
			return grant
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no lease granted within the deadline")
	return ClaimResponse{}
}

// TestClusterLeaseEpoch: lease identities must be unique across
// coordinator incarnations — two servers over the same store mint
// different epochs, so a stale lease from incarnation one can neither
// renew nor complete against incarnation two even though job IDs restart
// from j000001.
func TestClusterLeaseEpoch(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	_, c1 := testServer(t, dir, ServerOptions{Cluster: fastCluster()})
	_, c2 := testServer(t, t.TempDir(), ServerOptions{Cluster: fastCluster()})
	ctx := context.Background()
	grid := testGrid(2)

	if _, err := c1.Submit(ctx, mustPoints(t, grid)); err != nil {
		t.Fatal(err)
	}
	g1 := claimUntilGranted(t, c1, "w")
	if _, err := c2.Submit(ctx, mustPoints(t, grid)); err != nil {
		t.Fatal(err)
	}
	g2 := claimUntilGranted(t, c2, "w")
	if g1.Lease == g2.Lease || g1.Job == g2.Job {
		t.Fatalf("lease identity collided across incarnations: %q/%q vs %q/%q", g1.Lease, g1.Job, g2.Lease, g2.Job)
	}

	// Incarnation two must refuse the stale incarnation's lease outright.
	if ok, err := c2.Heartbeat(ctx, g1.Lease, "w"); err != nil || ok {
		t.Fatalf("stale-incarnation heartbeat renewed a lease: ok=%v err=%v", ok, err)
	}
	poison := core.Result{AvgLatency: -1}
	resp, err := c2.Complete(ctx, g1.Lease, g1.Job, "w", []PointReport{{Index: 0, Result: &poison}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Late {
		t.Fatal("stale-incarnation completion was accepted as current")
	}
	st, err := c2.Status(ctx, "j000001")
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 0 {
		t.Fatalf("stale-incarnation completion resolved %d points", st.Completed)
	}
}

// severableTransport drops every request once severed flips — the
// worker-side view of a network partition.
type severableTransport struct {
	severed *atomic.Bool
}

func (s *severableTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if s.severed.Load() {
		return nil, fmt.Errorf("network partitioned")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestClusterPanicRequeueAndReport: a point whose simulation panics on
// every worker must (a) not kill any worker, (b) requeue as transient
// under the capped lease-attempt budget, and (c) once the budget is
// spent, fail permanently with the panic message surviving into the
// job's error report. Healthy points in the same unit must still
// succeed.
func TestClusterPanicRequeueAndReport(t *testing.T) {
	t.Parallel()
	grid := testGrid(4)
	poison := grid[1].Key()

	dir := t.TempDir()
	_, c := testServer(t, dir, ServerOptions{
		Cluster: fastCluster(),
		Retry:   RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond},
	})
	runner := func(cfg core.Config) (core.Result, error) {
		if cfg.Key() == poison {
			panic("deliberate fault injection: simulator blew up")
		}
		return scripted(cfg)
	}
	startWorker(t, "w0", dir, c.Base, runner)
	startWorker(t, "w1", dir, c.Base, runner)

	st, err := c.Submit(context.Background(), mustPoints(t, grid))
	if err != nil {
		t.Fatal(err)
	}
	st = waitState(t, c, st.ID, func(st JobStatus) bool { return st.Terminal() })
	// The job-level report carries the panic through the lease taxonomy.
	if st.State != JobFailed || !strings.Contains(st.Error, "deliberate fault injection") {
		t.Fatalf("job report: state=%s error=%q", st.State, st.Error)
	}

	res, err := c.Results(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := scripted(grid[0])
	for _, i := range []int{0, 2, 3} {
		if res.Outcomes[i].Error != "" {
			t.Fatalf("healthy point %d failed: %s", i, res.Outcomes[i].Error)
		}
	}
	if *res.Outcomes[0].Result != want {
		t.Fatalf("healthy point 0 wrong result: %+v", *res.Outcomes[0].Result)
	}
	msg := res.Outcomes[1].Error
	if msg == "" {
		t.Fatal("poisoned point succeeded; the panic was swallowed")
	}
	if !strings.Contains(msg, "giving up after 2 lease attempts") {
		t.Fatalf("poisoned point error lacks the attempt budget: %s", msg)
	}
	if !strings.Contains(msg, "deliberate fault injection") {
		t.Fatalf("panic message did not survive into the error report: %s", msg)
	}

	cs, err := c.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cs.TransientRequeues < 1 || cs.ExhaustedUnits < 1 {
		t.Fatalf("taxonomy counters: %+v", cs)
	}
}

// TestClusterDrainRequeuesUnstarted: cancelling a worker mid-unit (the
// graceful SIGTERM drain) must report its unstarted points transient so
// the coordinator requeues them immediately, and another worker must
// finish the job without waiting out the lease TTL.
func TestClusterDrainRequeuesUnstarted(t *testing.T) {
	t.Parallel()
	grid := testGrid(4)
	dir := t.TempDir()
	// A long TTL: if drain fell back to orphan expiry, the job could not
	// finish inside the test deadline.
	_, c := testServer(t, dir, ServerOptions{
		Cluster: &ClusterOptions{LeaseTTL: 30 * time.Second, Heartbeat: 20 * time.Millisecond, UnitSize: 4},
	})

	var counts sync.Map
	count := countingRunner(&counts)
	reached := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slowKey := grid[1].Key()
	drainRunner := func(cfg core.Config) (core.Result, error) {
		if cfg.Key() == slowKey {
			once.Do(func() { close(reached) })
			<-release
		}
		return count(cfg)
	}
	stopDraining := startWorker(t, "draining", dir, c.Base, drainRunner)

	points := mustPoints(t, grid)
	st, err := c.Submit(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}

	<-reached
	// SIGTERM the draining worker: its in-flight point (grid[1]) finishes
	// and persists, and its completion hands grid[2], grid[3] back as
	// transient for immediate requeue.
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	stopDraining()
	startWorker(t, "finisher", dir, c.Base, count)

	final := waitState(t, c, st.ID, func(st JobStatus) bool { return st.Terminal() })
	if final.State != JobDone || final.Failed != 0 {
		t.Fatalf("job ended %s with %d failures: %s", final.State, final.Failed, final.Error)
	}
	assertExactlyOnce(t, &counts)
}

// TestClusterGuards: cluster RPCs against a standalone server must be
// rejected with a descriptive 412, and malformed claims with 400.
func TestClusterGuards(t *testing.T) {
	t.Parallel()
	srv, c := testServer(t, t.TempDir(), ServerOptions{Runner: scripted})
	if srv.Mode() != "standalone" {
		t.Fatalf("Mode() = %q, want standalone", srv.Mode())
	}
	_, err := c.Claim(context.Background(), "w0")
	var ae *APIStatusError
	if !errors.As(err, &ae) || ae.Code != http.StatusPreconditionFailed {
		t.Fatalf("claim against standalone: %v", err)
	}
	if !strings.Contains(ae.Message, "-mode coordinator") {
		t.Fatalf("412 should point at the fix: %s", ae.Message)
	}

	// A coordinator rejects an anonymous claim.
	_, c2 := testServer(t, t.TempDir(), ServerOptions{Cluster: fastCluster()})
	_, err = c2.Claim(context.Background(), "")
	if !errors.As(err, &ae) || ae.Code != http.StatusBadRequest {
		t.Fatalf("anonymous claim: %v", err)
	}
}

// TestClusterHealthz: /healthz must surface the store's integrity
// picture — quarantine count, recovery-scan time, orphaned-temp
// removals — alongside liveness and the instance's role.
func TestClusterHealthz(t *testing.T) {
	t.Parallel()
	_, c := testServer(t, t.TempDir(), ServerOptions{Cluster: fastCluster()})
	var hr healthReport
	if err := c.do(context.Background(), http.MethodGet, "/healthz", nil, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Mode != "coordinator" {
		t.Fatalf("healthz: %+v", hr)
	}
	if hr.Store.LastScan.IsZero() {
		t.Fatal("healthz store report lacks the recovery-scan time")
	}
	if hr.Store.Quarantined != 0 || hr.Store.OrphanTempsRemoved != 0 {
		t.Fatalf("fresh store should report clean health: %+v", hr.Store)
	}
}

// TestRangesSeam: the lease decomposition must cover every index exactly
// once, in order, for awkward sizes too.
func TestRangesSeam(t *testing.T) {
	t.Parallel()
	cases := []struct {
		n, size int
		want    [][2]int
	}{
		{0, 4, nil},
		{1, 4, [][2]int{{0, 1}}},
		{8, 4, [][2]int{{0, 4}, {4, 8}}},
		{9, 4, [][2]int{{0, 4}, {4, 8}, {8, 9}}},
		{3, 0, [][2]int{{0, 1}, {1, 2}, {2, 3}}}, // size clamps to 1
	}
	for _, tc := range cases {
		got := sweep.Ranges(tc.n, tc.size)
		if len(got) != len(tc.want) {
			t.Fatalf("Ranges(%d,%d) = %v, want %v", tc.n, tc.size, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Ranges(%d,%d) = %v, want %v", tc.n, tc.size, got, tc.want)
			}
		}
	}
}
