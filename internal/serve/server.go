package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"lapses/internal/core"
	"lapses/internal/sweep"
)

// newEpoch mints the coordinator's per-process incarnation token.
func newEpoch() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the clock: uniqueness across incarnations is all
		// that is needed, not unpredictability.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Job states. A job is terminal in done, failed, cancelled or
// interrupted; interrupted means a shutdown drained it mid-grid —
// completed points are durable in the store, so resubmitting the same
// grid resumes where it left off.
const (
	JobQueued      = "queued"
	JobRunning     = "running"
	JobDone        = "done"
	JobFailed      = "failed"
	JobCancelled   = "cancelled"
	JobInterrupted = "interrupted"
)

// ServerOptions configure a Server.
type ServerOptions struct {
	// Workers is the sweep worker-pool width per job (<= 0: the sweep
	// default, GOMAXPROCS budgeted against per-run sharding).
	Workers int
	// QueueLimit bounds how many jobs may wait behind the running one;
	// submissions beyond it are refused with 429 and a Retry-After
	// header rather than queued without bound (default 16).
	QueueLimit int
	// Retry bounds per-point transient-failure retries.
	Retry RetryPolicy
	// JobTimeout is the default per-job deadline applied when a
	// submission does not carry its own (0: none).
	JobTimeout time.Duration
	// Runner replaces core.Run for every point — the test seam for
	// scripted results, injected transient failures and blocking points.
	Runner func(core.Config) (core.Result, error)
	// Cluster, when non-nil, makes this server a cluster coordinator:
	// jobs are decomposed into leased work units executed by Worker
	// instances instead of simulating in-process. See ClusterOptions.
	Cluster *ClusterOptions
}

func (o ServerOptions) normalize() ServerOptions {
	if o.QueueLimit < 1 {
		o.QueueLimit = 16
	}
	if o.Cluster != nil {
		c := o.Cluster.normalize()
		o.Cluster = &c
	}
	return o
}

// job is one submitted grid and its lifecycle. All mutable fields are
// guarded by the owning Server's mu.
type job struct {
	id      string
	grid    []core.Config
	points  []Point
	timeout time.Duration

	state     string
	reason    string // terminal state a canceller chose before cancelling the ctx
	cancel    context.CancelFunc
	completed int
	cached    int
	simulated int
	failed    int
	retries   int
	errMsg    string
	outs      []sweep.Outcome
}

// Server executes grid jobs one at a time from a bounded queue, running
// every point through sweep.Run with the Store as the cache layer, so
// each unique point simulates once ever and completed points survive
// crashes. See the package comment for the full robustness contract.
type Server struct {
	store *Store
	opt   ServerOptions
	mux   *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	nextID   int64
	queue    chan *job
	closed   bool
	draining chan struct{}
	execDone chan struct{}

	// Coordinator-mode lease state: the running job's grid (nil between
	// jobs), lifetime counters, and last-seen worker identities. epoch is
	// a random per-process token baked into every lease ID and claim
	// grant, so grants from a previous coordinator incarnation (whose job
	// IDs restart from j000001) can never collide with fresh leases.
	epoch       string
	cluster     *clusterGrid
	ctot        ClusterStats
	workersSeen map[string]time.Time
}

// NewServer starts a server executing jobs against store. Call Shutdown
// to drain it.
func NewServer(store *Store, opt ServerOptions) *Server {
	s := &Server{
		store:       store,
		opt:         opt.normalize(),
		epoch:       newEpoch(),
		jobs:        map[string]*job{},
		draining:    make(chan struct{}),
		execDone:    make(chan struct{}),
		workersSeen: map[string]time.Time{},
	}
	s.queue = make(chan *job, s.opt.QueueLimit)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/store", s.handleStore)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/cluster/claim", s.handleClaim)
	s.mux.HandleFunc("POST /v1/cluster/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("POST /v1/cluster/complete", s.handleComplete)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	go s.runExecutor()
	return s
}

// Mode reports how this server executes jobs: "coordinator" when
// cluster options are set, "standalone" otherwise.
func (s *Server) Mode() string {
	if s.opt.Cluster != nil {
		return "coordinator"
	}
	return "standalone"
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server gracefully: no new submissions are
// accepted, the running job's in-flight points finish (no new points
// start) and its durable writes complete, queued jobs are marked
// interrupted, and the executor exits. Jobs cut short are resumable by
// resubmission — their completed points are served from the store. ctx
// bounds how long to wait for the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.execDone
		return nil
	}
	s.closed = true
	close(s.draining)
	// Stop the running job at the next point boundary.
	for _, jb := range s.jobs {
		if jb.state == JobRunning && jb.cancel != nil {
			jb.reason = JobInterrupted
			jb.cancel()
		}
	}
	close(s.queue) // all submitters check closed under mu before sending
	s.mu.Unlock()
	select {
	case <-s.execDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// runExecutor is the single job-execution loop.
func (s *Server) runExecutor() {
	defer close(s.execDone)
	for jb := range s.queue {
		s.execute(jb)
	}
}

// execute runs one job to a terminal state.
func (s *Server) execute(jb *job) {
	s.mu.Lock()
	if jb.state != JobQueued {
		// Cancelled while queued.
		s.mu.Unlock()
		return
	}
	select {
	case <-s.draining:
		jb.state = JobInterrupted
		s.mu.Unlock()
		return
	default:
	}
	jctx, cancel := context.WithCancel(context.Background())
	if jb.timeout > 0 {
		jctx, cancel = context.WithTimeout(context.Background(), jb.timeout)
	}
	jb.state = JobRunning
	jb.cancel = cancel
	s.mu.Unlock()
	defer cancel()

	var outs []sweep.Outcome
	var runErr error
	if s.opt.Cluster != nil {
		outs, runErr = s.runClustered(jctx, jb)
	} else {
		outs, runErr = sweep.Run(jctx, jb.grid, sweep.Options{
			Workers: s.opt.Workers,
			Cache:   s.store,
			Runner:  s.retryRunner(jctx, jb),
			OnPoint: func(i int, o sweep.Outcome) { s.notePoint(jb, o) },
		})
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	jb.outs = outs
	jb.cancel = nil
	switch {
	case runErr == nil && jb.failed == 0:
		jb.state = JobDone
	case runErr == nil:
		jb.state = JobFailed
		jb.errMsg = firstFailure(outs, jb.failed)
	case jb.reason != "":
		// A canceller (DELETE, or Shutdown) chose the terminal state
		// before cancelling the context.
		jb.state = jb.reason
	case jctx.Err() == context.DeadlineExceeded:
		jb.state = JobFailed
		jb.errMsg = fmt.Sprintf("job deadline exceeded after %s (%d of %d points completed)", jb.timeout, jb.completed, len(jb.grid))
	default:
		jb.state = JobFailed
		jb.errMsg = runErr.Error()
	}
}

// firstFailure summarizes a partially failed grid by its first failing
// point's config key.
func firstFailure(outs []sweep.Outcome, failed int) string {
	for _, o := range outs {
		if o.Err != nil {
			return fmt.Sprintf("%d of %d points failed; first: %s: %v", failed, len(outs), o.Config.Key(), o.Err)
		}
	}
	return fmt.Sprintf("%d of %d points failed", failed, len(outs))
}

// notePoint folds one completed point into the job's progress counters.
func (s *Server) notePoint(jb *job, o sweep.Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notePointLocked(jb, o)
}

// notePointLocked is notePoint with s.mu already held — the form the
// cluster lease machinery uses, since it resolves points under the lock.
func (s *Server) notePointLocked(jb *job, o sweep.Outcome) {
	jb.completed++
	switch {
	case o.Err != nil:
		jb.failed++
	case o.Cached:
		jb.cached++
	default:
		jb.simulated++
	}
}

// retryRunner wraps the configured runner with the transient-retry
// policy. Panics pass through: sweep.Run's own recovery turns them into
// per-point PanicErrors, which are permanent by construction.
func (s *Server) retryRunner(ctx context.Context, jb *job) func(core.Config) (core.Result, error) {
	base := s.opt.Runner
	if base == nil {
		base = core.Run
	}
	pol := s.opt.Retry
	return func(c core.Config) (core.Result, error) {
		var res core.Result
		attempts, err := pol.retry(ctx, func() error {
			var e error
			res, e = base(c)
			return e
		})
		if attempts > 1 {
			s.mu.Lock()
			jb.retries += attempts - 1
			s.mu.Unlock()
		}
		return res, err
	}
}

// JobStatus is the polling view of a job: its state plus per-point
// progress counters (Cached counts store hits — points served without
// simulating; Retries transient-failure retries absorbed).
type JobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Cached    int    `json:"cached"`
	Simulated int    `json:"simulated"`
	Failed    int    `json:"failed"`
	Retries   int    `json:"retries,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Terminal reports whether the state is final.
func (st JobStatus) Terminal() bool {
	switch st.State {
	case JobDone, JobFailed, JobCancelled, JobInterrupted:
		return true
	}
	return false
}

func (jb *job) status() JobStatus {
	return JobStatus{
		ID:        jb.id,
		State:     jb.state,
		Total:     len(jb.grid),
		Completed: jb.completed,
		Cached:    jb.cached,
		Simulated: jb.simulated,
		Failed:    jb.failed,
		Retries:   jb.retries,
		Error:     jb.errMsg,
	}
}

// PointOutcome is one grid point's terminal state on the wire. Result
// carries the exact core.Result (Go's JSON float encoding round-trips
// float64 bits, so served results are bit-identical to in-process ones);
// Error is set instead when the point failed.
type PointOutcome struct {
	Point  Point        `json:"point"`
	Result *core.Result `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
	Cached bool         `json:"cached,omitempty"`
}

// JobResults is the terminal payload: final status plus one outcome per
// grid point, in submission order.
type JobResults struct {
	Status   JobStatus      `json:"status"`
	Outcomes []PointOutcome `json:"outcomes"`
}

// jobRequest is the submission payload.
type jobRequest struct {
	Points []Point `json:"points"`
	// TimeoutMS is the per-job deadline in milliseconds (0: the server
	// default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("malformed job: %v", err)})
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "job has no points"})
		return
	}
	grid := make([]core.Config, len(req.Points))
	for i, p := range req.Points {
		c, err := p.Config()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("point %d: %v", i, err)})
			return
		}
		grid[i] = c
	}
	timeout := s.opt.JobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is shutting down"})
		return
	}
	s.nextID++
	jb := &job{
		id:      fmt.Sprintf("j%06d", s.nextID),
		grid:    grid,
		points:  req.Points,
		timeout: timeout,
		state:   JobQueued,
	}
	select {
	case s.queue <- jb:
	default:
		s.nextID--
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: fmt.Sprintf("job queue is full (%d queued); retry later", s.opt.QueueLimit)})
		return
	}
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb.id)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, JobStatus{ID: jb.id, State: JobQueued, Total: len(grid)})
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	jb := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if jb == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no such job %q", r.PathValue("id"))})
	}
	return jb
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.lookupJob(w, r)
	if jb == nil {
		return
	}
	s.mu.Lock()
	st := jb.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	jb := s.lookupJob(w, r)
	if jb == nil {
		return
	}
	s.mu.Lock()
	st := jb.status()
	outs := jb.outs
	points := jb.points
	s.mu.Unlock()
	if !st.Terminal() {
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("job %s is %s; results are available once terminal", st.ID, st.State)})
		return
	}
	res := JobResults{Status: st, Outcomes: make([]PointOutcome, len(points))}
	for i := range points {
		po := PointOutcome{Point: points[i]}
		if i < len(outs) {
			if outs[i].Err != nil {
				po.Error = outs[i].Err.Error()
			} else {
				r := outs[i].Result
				po.Result = &r
				po.Cached = outs[i].Cached
			}
		} else {
			// The job never started (interrupted or cancelled while
			// queued): every point is unexecuted.
			po.Error = fmt.Sprintf("point not executed: job %s", st.State)
		}
		res.Outcomes[i] = po
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb := s.lookupJob(w, r)
	if jb == nil {
		return
	}
	s.mu.Lock()
	switch jb.state {
	case JobQueued:
		jb.state = JobCancelled
	case JobRunning:
		jb.reason = JobCancelled
		if jb.cancel != nil {
			jb.cancel()
		}
	}
	st := jb.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Stats())
}

// healthReport is the GET /healthz payload: liveness plus the store's
// integrity picture (quarantines, recovery-scan time, orphaned-temp
// deletions), so a cluster operator sees silent corruption at the same
// endpoint a load balancer probes.
type healthReport struct {
	Status string     `json:"status"`
	Mode   string     `json:"mode"`
	Store  StoreStats `json:"store"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, healthReport{Status: "ok", Mode: s.Mode(), Store: s.store.Stats()})
}

// Status returns a job's status by ID, for in-process embedding.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return jb.status(), true
}
