package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestWaitBackoffPollCount pins the poll loop's backoff: waiting out a
// job that runs for a fixed wall-clock span must cost a logarithmic
// handful of status requests, not span/PollInterval of them. With a 1ms
// base and a 16ms cap, the sleep sequence is at least 1,2,4,8,16,16,...
// ms (jitter only lengthens sleeps), so a 300ms job is covered by at
// most ~23 polls; the fixed-cadence loop this replaced would have used
// ~300.
func TestWaitBackoffPollCount(t *testing.T) {
	t.Parallel()
	var polls atomic.Int64
	start := time.Now()
	const runFor = 300 * time.Millisecond
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		polls.Add(1)
		st := JobStatus{ID: "j1", State: JobRunning}
		if time.Since(start) >= runFor {
			st.State = JobDone
		}
		json.NewEncoder(w).Encode(st)
	}))
	defer hs.Close()

	c := &Client{Base: hs.URL, PollInterval: time.Millisecond}
	st, err := c.Wait(context.Background(), "j1")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("job finished in state %q", st.State)
	}
	// Sleeps before poll n sum to >= 1+2+4+8+16*(n-5) ms, so 23 polls
	// cover >= 303ms even with zero jitter. Leave headroom for slow CI:
	// the point is the order of magnitude, ~25 vs ~300.
	if got := polls.Load(); got > 40 {
		t.Errorf("waiting out a %v job took %d polls; backoff should cap this near 23", runFor, got)
	} else if got < 2 {
		t.Errorf("suspiciously few polls (%d): the job cannot have been observed running", got)
	}
}

// TestPollPolicyDefaults pins the cadence defaults: base = PollInterval
// (150ms when unset), cap = 16x base unless PollCap overrides it.
func TestPollPolicyDefaults(t *testing.T) {
	t.Parallel()
	c := &Client{}
	p := c.pollPolicy()
	if p.BaseBackoff != 150*time.Millisecond || p.MaxBackoff != 16*150*time.Millisecond {
		t.Errorf("zero client: cadence %v cap %v, want 150ms cap 2.4s", p.BaseBackoff, p.MaxBackoff)
	}
	c = &Client{PollInterval: 10 * time.Millisecond, PollCap: 50 * time.Millisecond}
	p = c.pollPolicy()
	if p.BaseBackoff != 10*time.Millisecond || p.MaxBackoff != 50*time.Millisecond {
		t.Errorf("explicit client: cadence %v cap %v, want 10ms cap 50ms", p.BaseBackoff, p.MaxBackoff)
	}
	// The curve itself: monotone non-decreasing and capped (jitter adds
	// at most 50%).
	for n := 1; n < 12; n++ {
		d := p.backoff(n)
		if d < p.BaseBackoff || d > p.MaxBackoff+p.MaxBackoff/2 {
			t.Errorf("backoff(%d) = %v outside [base, 1.5*cap]", n, d)
		}
	}
}
