package serve

import (
	"encoding/json"
	"testing"

	"lapses/internal/core"
	"lapses/internal/fault"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/traffic"
)

// wireTestConfigs is a spread of configurations exercising every field
// the wire format carries: topology shape, torus wrap, fault plans,
// router geometry, algorithm/table/selection/pattern enums, measurement
// tiers (fixed and auto), guards, sharding and event mode.
func wireTestConfigs(t *testing.T) []core.Config {
	t.Helper()
	base := core.DefaultConfig()

	torus := core.DefaultConfig()
	torus.Dims = []int{4, 4}
	torus.Torus = true
	torus.VCs = 6
	torus.EscapeVCs = 2
	torus.Algorithm = core.AlgXY
	torus.Table = table.KindFull
	torus.Selection = selection.StaticXY
	torus.Pattern = traffic.BitReversal

	faulty := core.DefaultConfig()
	faulty.Dims = []int{8, 8}
	plan, err := fault.Parse(faulty.Mesh(), "1-2,r27")
	if err != nil {
		t.Fatalf("building fault plan: %v", err)
	}
	faulty.Faults = plan

	auto := core.DefaultConfig()
	auto.Auto = &core.AutoMeasure{RelTol: 0.05, MinMessages: 100, MaxMessages: 5000, CheckEvery: 50}
	auto.MaxCycles = 123456
	auto.SatLatency = 777

	exotic := core.DefaultConfig()
	exotic.Dims = []int{2, 3, 4}
	exotic.CutThrough = true
	exotic.LookAhead = false
	exotic.BufDepth = 7
	exotic.OutDepth = 2
	exotic.LinkDelay = 3
	exotic.MsgLen = 5
	exotic.Load = 0.37
	exotic.Seed = 99
	exotic.Shards = 2
	exotic.EventMode = true
	exotic.Pattern = traffic.Transpose

	meta := core.DefaultConfig()
	meta.Dims = []int{8, 4}
	meta.Table = table.KindMetaBlock

	return []core.Config{base, torus, faulty, auto, exotic, meta}
}

// TestPointRoundTripPreservesKey pins the wire contract: for any
// trace-free config, Config → Point → JSON → Point → Config preserves
// core.Config.Key exactly, so a served simulation is keyed (and cached)
// identically to an in-process one.
func TestPointRoundTripPreservesKey(t *testing.T) {
	t.Parallel()
	for i, c := range wireTestConfigs(t) {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %d invalid before the round trip: %v", i, err)
		}
		p, err := PointFromConfig(c)
		if err != nil {
			t.Fatalf("config %d: to wire: %v", i, err)
		}
		buf, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("config %d: marshal: %v", i, err)
		}
		var back Point
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("config %d: unmarshal: %v", i, err)
		}
		got, err := back.Config()
		if err != nil {
			t.Fatalf("config %d: from wire: %v", i, err)
		}
		if got.Key() != c.Key() {
			t.Errorf("config %d key changed across the wire:\nwant %s\ngot  %s", i, c.Key(), got.Key())
		}
	}
}

// TestPointRejectsTrace: trace workloads are pointer-identified and
// must not silently serialize into something that simulates differently.
func TestPointRejectsTrace(t *testing.T) {
	t.Parallel()
	c := core.DefaultConfig()
	c.Trace = &traffic.Trace{}
	if _, err := PointFromConfig(c); err == nil {
		t.Fatal("trace-driven config serialized without error")
	}
}

// TestPointConfigErrors: malformed points fail with descriptive errors
// instead of panicking inside topology or table construction.
func TestPointConfigErrors(t *testing.T) {
	t.Parallel()
	good, err := PointFromConfig(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(p *Point){
		"no dims":        func(p *Point) { p.Dims = nil },
		"radix 1":        func(p *Point) { p.Dims = []int{1, 4} },
		"bad algorithm":  func(p *Point) { p.Algorithm = "warp-drive" },
		"bad table":      func(p *Point) { p.Table = "hash" },
		"bad selection":  func(p *Point) { p.Selection = "psychic" },
		"bad pattern":    func(p *Point) { p.Pattern = "tsunami" },
		"bad fault spec": func(p *Point) { p.Faults = "r-1" },
		"zero vcs":       func(p *Point) { p.VCs = 0 },
	}
	for name, mutate := range cases {
		p := good
		mutate(&p)
		if _, err := p.Config(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
