package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// flakyTransport fails the first n requests at the transport layer
// (connection-level errors, as from a restarting server), then passes
// everything through.
type flakyTransport struct {
	fails atomic.Int64
	calls atomic.Int64
	next  http.RoundTripper
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	f.calls.Add(1)
	if f.fails.Add(-1) >= 0 {
		return nil, fmt.Errorf("connection reset by peer")
	}
	if f.next != nil {
		return f.next.RoundTrip(r)
	}
	return http.DefaultTransport.RoundTrip(r)
}

// statusTransport answers every request with a fixed status code.
type statusTransport struct {
	code  int
	calls atomic.Int64
}

func (s *statusTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	s.calls.Add(1)
	return &http.Response{
		StatusCode: s.code,
		Body:       io.NopCloser(bytes.NewReader(nil)),
		Header:     http.Header{},
	}, nil
}

// TestClientRetriesTransportErrors: an idempotent request must survive a
// couple of connection-level failures (a server restart mid-poll) by
// retrying with backoff, without the caller seeing anything.
func TestClientRetriesTransportErrors(t *testing.T) {
	t.Parallel()
	_, c := testServer(t, t.TempDir(), ServerOptions{Runner: scripted})
	ft := &flakyTransport{}
	ft.fails.Store(2)
	c.HTTP = &http.Client{Transport: ft}
	c.Retry = RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond}

	if _, err := c.StoreStats(context.Background()); err != nil {
		t.Fatalf("StoreStats did not survive two transport blips: %v", err)
	}
	if n := ft.calls.Load(); n != 3 {
		t.Fatalf("transport saw %d calls, want 3 (two failures + success)", n)
	}
}

// TestClientRetryBudgetExhausted: when the server never comes back, the
// retry loop must give up after its attempt budget and surface a
// Transient error (so server-side runners executing through the client
// classify it correctly).
func TestClientRetryBudgetExhausted(t *testing.T) {
	t.Parallel()
	ft := &flakyTransport{}
	ft.fails.Store(1 << 30)
	c := &Client{
		Base:  "http://unreachable.invalid",
		HTTP:  &http.Client{Transport: ft},
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
	}
	_, err := c.Status(context.Background(), "j000001")
	if err == nil {
		t.Fatal("Status succeeded against a dead transport")
	}
	if !IsTransient(err) {
		t.Fatalf("transport failure should classify transient: %v", err)
	}
	if n := ft.calls.Load(); n != 3 {
		t.Fatalf("transport saw %d calls, want exactly the 3-attempt budget", n)
	}
}

// TestClientCancellationNotTransient: a request killed by its own
// context must not classify transient — a deliberate cancellation is
// not a server fault, and wrapping it Transient would make retry loops
// (the client's own, or a server-side runner executing through this
// client) burn a backoff cycle before noticing the dead ctx.
func TestClientCancellationNotTransient(t *testing.T) {
	t.Parallel()
	ft := &flakyTransport{}
	ft.fails.Store(1 << 30)
	c := &Client{
		Base:  "http://unreachable.invalid",
		HTTP:  &http.Client{Transport: ft},
		Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Status(ctx, "j000001")
	if err == nil {
		t.Fatal("Status succeeded on a cancelled context")
	}
	if IsTransient(err) {
		t.Fatalf("cancellation classified transient: %v", err)
	}
	if n := ft.calls.Load(); n != 1 {
		t.Fatalf("cancelled request was retried: %d attempts", n)
	}
}

// TestClientDoesNotRetryClientErrors: 4xx responses are deterministic —
// retrying a malformed request cannot help, and retrying 429 would
// fight Submit's Retry-After loop. Exactly one request may go out.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	t.Parallel()
	st := &statusTransport{code: http.StatusNotFound}
	c := &Client{
		Base:  "http://example.invalid",
		HTTP:  &http.Client{Transport: st},
		Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond},
	}
	_, err := c.Status(context.Background(), "nope")
	var ae *APIStatusError
	if !errors.As(err, &ae) || ae.Code != http.StatusNotFound {
		t.Fatalf("want 404 APIStatusError, got %v", err)
	}
	if n := st.calls.Load(); n != 1 {
		t.Fatalf("client retried a 404: %d requests", n)
	}
}

// TestClientRetriesGatewayErrors: 503s (a proxy in front of a draining
// server) are retried like transport failures.
func TestClientRetriesGatewayErrors(t *testing.T) {
	t.Parallel()
	st := &statusTransport{code: http.StatusServiceUnavailable}
	c := &Client{
		Base:  "http://example.invalid",
		HTTP:  &http.Client{Transport: st},
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
	}
	_, err := c.Status(context.Background(), "j000001")
	var ae *APIStatusError
	if !errors.As(err, &ae) || ae.Code != http.StatusServiceUnavailable {
		t.Fatalf("want 503 APIStatusError, got %v", err)
	}
	if n := st.calls.Load(); n != 3 {
		t.Fatalf("503 saw %d attempts, want the full 3-attempt budget", n)
	}
}
