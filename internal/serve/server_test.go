package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lapses/internal/core"
	"lapses/internal/sweep"
)

// testGrid builds n valid, distinct-keyed configs (scripted runners
// never simulate them, so fidelity does not matter).
func testGrid(n int) []core.Config {
	grid := make([]core.Config, n)
	for i := range grid {
		c := core.DefaultConfig()
		c.Seed = int64(i + 1)
		c.Load = 0.1 + 0.01*float64(i)
		grid[i] = c
	}
	return grid
}

// testServer wires a Server over a temp store to an httptest listener
// and returns a fast-polling client. Shutdown is registered as cleanup
// but may be called explicitly first.
func testServer(t *testing.T, dir string, opt ServerOptions) (*Server, *Client) {
	t.Helper()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, opt)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
		hs.Close()
	})
	return srv, &Client{Base: hs.URL, PollInterval: 5 * time.Millisecond}
}

func waitState(t *testing.T, c *Client, id string, cond func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if cond(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
	return JobStatus{}
}

// TestServerEndToEnd: a grid submitted through the client must come
// back bit-identical to the same grid run in-process, and resubmitting
// it must be served entirely from the store.
func TestServerEndToEnd(t *testing.T) {
	t.Parallel()
	grid := testGrid(6)
	want, err := sweep.Run(context.Background(), grid, sweep.Options{Runner: scripted})
	if err != nil {
		t.Fatal(err)
	}

	_, c := testServer(t, t.TempDir(), ServerOptions{Runner: scripted})
	var log bytes.Buffer
	c.Verbose = &log
	got, err := c.Run(context.Background(), grid, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Err != nil {
			t.Fatalf("point %d: %v", i, got[i].Err)
		}
		if got[i].Result != want[i].Result {
			t.Fatalf("point %d diverged from in-process run:\nserved     %+v\nin-process %+v", i, got[i].Result, want[i].Result)
		}
	}

	// Resubmission: all points served from the store, zero simulations.
	again, err := c.Run(context.Background(), grid, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !again[i].Cached || again[i].Result != want[i].Result {
			t.Fatalf("resubmitted point %d: cached=%v", i, again[i].Cached)
		}
	}
	if !strings.Contains(log.String(), "6 cached, 0 simulated") {
		t.Fatalf("verbose log lacks the all-cached summary:\n%s", log.String())
	}
	st, err := c.StoreStats(context.Background())
	if err != nil || st.Entries != 6 || st.Quarantined != 0 {
		t.Fatalf("store stats: %+v err=%v", st, err)
	}
}

// TestServerCrashRecoveryRoundTrip is the acceptance scenario: a grid
// is interrupted mid-execution by a shutdown, the store is reopened by
// a fresh server, and resubmitting the same grid completes — with every
// previously finished point served from disk (store-hit counters prove
// zero re-simulation) and the final outcomes bit-identical to an
// uninterrupted in-process sweep.Run. The CI serve-smoke job replays
// this with a real kill -9 between two lapses-serve processes.
func TestServerCrashRecoveryRoundTrip(t *testing.T) {
	t.Parallel()
	grid := testGrid(6)
	want, err := sweep.Run(context.Background(), grid, sweep.Options{Runner: scripted})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Phase 1: a runner that blocks on the 4th point (Seed 4) until
	// released, so the shutdown catches the job mid-grid with exactly
	// 3 points durable plus the in-flight one drained to completion.
	blocked := make(chan struct{})
	release := make(chan struct{})
	var blockOnce sync.Once
	runner := func(cfg core.Config) (core.Result, error) {
		if cfg.Seed == 4 {
			blockOnce.Do(func() { close(blocked) })
			<-release
		}
		return scripted(cfg)
	}
	srv, c := testServer(t, dir, ServerOptions{Runner: runner, Workers: 1})
	st, err := c.Submit(context.Background(), mustPoints(t, grid))
	if err != nil {
		t.Fatal(err)
	}
	<-blocked // the job is executing its 4th point

	// Shut down mid-grid: the drain must finish the in-flight point
	// (once released) and stop there.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	// Only release the blocked point once the drain has begun (healthz
	// flips to 503 under the same lock that cancels the job context).
	for deadline := time.Now().Add(10 * time.Second); ; {
		if err := c.Health(context.Background()); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shutdown never became observable")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	fin := waitState(t, c, st.ID, func(st JobStatus) bool { return st.Terminal() })
	if fin.State != JobInterrupted {
		t.Fatalf("interrupted job reports state %q", fin.State)
	}
	if fin.Completed != 4 || fin.Simulated != 4 {
		t.Fatalf("drain did not complete exactly the in-flight work: %+v", fin)
	}

	// Phase 2: a fresh server over the same store directory. Recovery
	// must find the 4 durable points intact — nothing quarantined, and
	// no re-simulation of completed work on resubmission.
	var calls atomic.Int64
	countingRunner := func(cfg core.Config) (core.Result, error) {
		calls.Add(1)
		return scripted(cfg)
	}
	_, c2 := testServer(t, dir, ServerOptions{Runner: countingRunner})
	var log bytes.Buffer
	c2.Verbose = &log
	if st, err := c2.StoreStats(context.Background()); err != nil || st.Entries != 4 || st.Quarantined != 0 {
		t.Fatalf("recovered store: %+v err=%v", st, err)
	}
	got, err := c2.Run(context.Background(), grid, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("resubmission simulated %d points, want exactly the 2 unfinished ones", calls.Load())
	}
	if !strings.Contains(log.String(), "4 cached, 2 simulated") {
		t.Fatalf("verbose log lacks the store-hit proof:\n%s", log.String())
	}
	cachedCount := 0
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("resumed point %d: %v", i, got[i].Err)
		}
		if got[i].Result != want[i].Result {
			t.Fatalf("resumed point %d diverged from the uninterrupted run", i)
		}
		if got[i].Cached {
			cachedCount++
		}
	}
	if cachedCount != 4 {
		t.Fatalf("%d points served from the store, want 4", cachedCount)
	}
}

func mustPoints(t *testing.T, grid []core.Config) []Point {
	t.Helper()
	pts, err := PointsFromGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// TestServerRetriesTransient: points failing transiently are retried
// with backoff inside their attempt budget and succeed without failing
// the job; the retry count is visible in the job status.
func TestServerRetriesTransient(t *testing.T) {
	t.Parallel()
	var attempts sync.Map // key -> *atomic.Int64
	runner := func(cfg core.Config) (core.Result, error) {
		v, _ := attempts.LoadOrStore(cfg.Key(), new(atomic.Int64))
		if v.(*atomic.Int64).Add(1) < 3 {
			return core.Result{}, Transient(context.DeadlineExceeded)
		}
		return scripted(cfg)
	}
	_, c := testServer(t, t.TempDir(), ServerOptions{
		Runner: runner,
		Retry:  RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	grid := testGrid(2)
	got, err := c.Run(context.Background(), grid, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("point %d failed despite retry budget: %v", i, got[i].Err)
		}
	}
	st, err := c.StoreStats(context.Background())
	if err != nil || st.Entries != 2 {
		t.Fatalf("store after retries: %+v err=%v", st, err)
	}
}

// TestServerRetryBudgetExhausted: a point that stays transient beyond
// MaxAttempts fails that point (reported with its retry count), while
// the rest of the grid completes.
func TestServerRetryBudgetExhausted(t *testing.T) {
	t.Parallel()
	runner := func(cfg core.Config) (core.Result, error) {
		if cfg.Seed == 2 {
			return core.Result{}, Transient(context.DeadlineExceeded)
		}
		return scripted(cfg)
	}
	_, c := testServer(t, t.TempDir(), ServerOptions{
		Runner: runner,
		Retry:  RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond},
	})
	grid := testGrid(3)
	got, err := c.Run(context.Background(), grid, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Err == nil || !strings.Contains(got[1].Err.Error(), "transient") {
		t.Fatalf("stubborn point: err=%v", got[1].Err)
	}
	if got[0].Err != nil || got[2].Err != nil {
		t.Fatalf("healthy points failed: %v / %v", got[0].Err, got[2].Err)
	}
}

// TestServerPanicIsolation: a panicking point fails with a PanicError
// message; the rest of the grid and the server itself survive.
func TestServerPanicIsolation(t *testing.T) {
	t.Parallel()
	runner := func(cfg core.Config) (core.Result, error) {
		if cfg.Seed == 2 {
			panic("core: unknown algorithm")
		}
		return scripted(cfg)
	}
	_, c := testServer(t, t.TempDir(), ServerOptions{Runner: runner})
	got, err := c.Run(context.Background(), testGrid(3), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Err == nil || !strings.Contains(got[1].Err.Error(), "panicked") {
		t.Fatalf("panicking point: err=%v", got[1].Err)
	}
	if got[0].Err != nil || got[2].Err != nil {
		t.Fatalf("bystander points failed: %v / %v", got[0].Err, got[2].Err)
	}
	// The server still answers.
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("server unhealthy after a point panic: %v", err)
	}
}

// TestServerBackpressure: submissions beyond the bounded queue are
// refused with 429 + Retry-After instead of queueing without bound, and
// the client's Submit absorbs the backpressure transparently.
func TestServerBackpressure(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	runner := func(cfg core.Config) (core.Result, error) {
		<-release
		return scripted(cfg)
	}
	_, c := testServer(t, t.TempDir(), ServerOptions{Runner: runner, QueueLimit: 1, Workers: 1})

	// Fill the executor and the queue: job 1 runs (blocked), job 2 waits.
	st1, err := c.Submit(context.Background(), mustPoints(t, testGrid(1)))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st1.ID, func(st JobStatus) bool { return st.State == JobRunning })
	if _, err := c.Submit(context.Background(), mustPoints(t, testGrid(2)[1:])); err != nil {
		t.Fatal(err)
	}

	// The next raw submission must bounce with 429 and Retry-After.
	var bounced JobStatus
	err = c.do(context.Background(), http.MethodPost, "/v1/jobs", jobRequest{Points: mustPoints(t, testGrid(3)[2:])}, &bounced)
	ae, ok := err.(*APIStatusError)
	if !ok || ae.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: err=%v, want 429", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("429 without Retry-After")
	}

	// Client.Submit keeps retrying; once capacity frees it lands.
	landed := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), mustPoints(t, testGrid(3)[2:]))
		landed <- err
	}()
	close(release)
	select {
	case err := <-landed:
		if err != nil {
			t.Fatalf("backpressured submit never landed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("backpressured submit still pending")
	}
}

// TestServerJobDeadline: a job exceeding its deadline stops at the next
// point boundary (in-flight points drain — core.Run is not
// interruptible) and fails with a descriptive error; finished points
// stay durable.
func TestServerJobDeadline(t *testing.T) {
	t.Parallel()
	runner := func(cfg core.Config) (core.Result, error) {
		if cfg.Seed >= 2 {
			time.Sleep(400 * time.Millisecond) // deadline fires mid-point
		}
		return scripted(cfg)
	}
	_, c := testServer(t, t.TempDir(), ServerOptions{Runner: runner, Workers: 1})
	c.JobTimeout = 150 * time.Millisecond

	st, err := c.Submit(context.Background(), mustPoints(t, testGrid(3)))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, c, st.ID, func(st JobStatus) bool { return st.Terminal() })
	if fin.State != JobFailed || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("deadline job: state=%q error=%q", fin.State, fin.Error)
	}
	// Point 1 (fast) and point 2 (in flight at the deadline, drained to
	// completion) are durable; point 3 was never dispatched.
	ss, err := c.StoreStats(context.Background())
	if err != nil || ss.Entries != 2 {
		t.Fatalf("store after deadline: %+v err=%v", ss, err)
	}
}

// TestServerCancel: DELETE on a running job stops it at the next point
// boundary with state cancelled; completed points stay durable.
func TestServerCancel(t *testing.T) {
	t.Parallel()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	runner := func(cfg core.Config) (core.Result, error) {
		if cfg.Seed == 2 {
			once.Do(func() { close(started) })
			<-release
		}
		return scripted(cfg)
	}
	_, c := testServer(t, t.TempDir(), ServerOptions{Runner: runner, Workers: 1})
	st, err := c.Submit(context.Background(), mustPoints(t, testGrid(4)))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := c.Cancel(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	fin := waitState(t, c, st.ID, func(st JobStatus) bool { return st.Terminal() })
	if fin.State != JobCancelled {
		t.Fatalf("cancelled job reports %q", fin.State)
	}
	if fin.Completed < 2 || fin.Completed >= 4 {
		t.Fatalf("cancel did not stop at a point boundary: %+v", fin)
	}
	// Results of the partial job are still retrievable; unrun points
	// carry errors.
	res, err := c.Results(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 4 {
		t.Fatalf("partial results: %d outcomes", len(res.Outcomes))
	}
	if res.Outcomes[0].Result == nil || res.Outcomes[3].Error == "" {
		t.Fatalf("partial results malformed: first=%+v last=%+v", res.Outcomes[0], res.Outcomes[3])
	}
}

// TestServerRejectsMalformedJobs: bad payloads and unknown jobs get
// descriptive 4xx errors, and results of a running job are refused.
func TestServerRejectsMalformedJobs(t *testing.T) {
	t.Parallel()
	_, c := testServer(t, t.TempDir(), ServerOptions{Runner: scripted})
	ctx := context.Background()

	if err := c.do(ctx, http.MethodPost, "/v1/jobs", jobRequest{}, nil); err == nil {
		t.Error("empty job accepted")
	}
	bad := mustPoints(t, testGrid(1))
	bad[0].Algorithm = "warp-drive"
	err := c.do(ctx, http.MethodPost, "/v1/jobs", jobRequest{Points: bad}, nil)
	ae, ok := err.(*APIStatusError)
	if !ok || ae.Code != http.StatusBadRequest || !strings.Contains(ae.Message, "algorithm") {
		t.Errorf("bad point: err=%v", err)
	}
	if _, err := c.Status(ctx, "j999999"); err == nil {
		t.Error("unknown job id accepted")
	}
	if _, err := c.Results(ctx, "j999999"); err == nil {
		t.Error("unknown job results accepted")
	}
}

// TestClientRunThroughBisect: the client plugged into Options.Exec
// drives a saturation search; the search must match the in-process one
// bit for bit (the remote-execution contract for composite helpers).
func TestClientRunThroughBisect(t *testing.T) {
	t.Parallel()
	sat := func(c core.Config) (core.Result, error) {
		return core.Result{Saturated: c.Load >= 0.42, Throughput: c.Load, TotalCycles: 1000}, nil
	}
	spec := sweep.BisectSpec{
		At: func(load float64) core.Config {
			c := core.DefaultConfig()
			c.Load = load
			return c
		},
		Lo: 0.1, Hi: 1.0, Tol: 0.02,
	}
	want, err := sweep.Bisect(context.Background(), spec, sweep.Options{Runner: sat})
	if err != nil {
		t.Fatal(err)
	}
	_, c := testServer(t, t.TempDir(), ServerOptions{Runner: sat})
	got, err := sweep.Bisect(context.Background(), spec, sweep.Options{Exec: c.Run})
	if err != nil {
		t.Fatal(err)
	}
	if got.Lo != want.Lo || got.Hi != want.Hi || got.Converged != want.Converged || got.LoResult != want.LoResult {
		t.Fatalf("served search diverged:\nserved     %s\nin-process %s", got, want)
	}
}
