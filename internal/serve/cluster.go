package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"lapses/internal/core"
	"lapses/internal/sweep"
)

// ClusterOptions turn a Server into a cluster coordinator: instead of
// simulating jobs in-process, the coordinator decomposes each submitted
// grid into leased work units (contiguous point ranges) that worker
// instances claim, heartbeat, and complete over HTTP. The attempt budget
// for requeued units reuses ServerOptions.Retry.MaxAttempts — the same
// transient/permanent taxonomy as standalone point retry, lifted to
// lease granularity.
type ClusterOptions struct {
	// LeaseTTL is how long a claimed unit stays owned without a
	// heartbeat before the failure detector requeues it (default 10s).
	LeaseTTL time.Duration
	// Heartbeat is the renewal cadence advertised to workers (default
	// LeaseTTL/4; must be shorter than LeaseTTL).
	Heartbeat time.Duration
	// UnitSize is the maximum grid points per lease (default 4). Smaller
	// units steal better; larger units amortize lease traffic.
	UnitSize int
}

func (o ClusterOptions) normalize() ClusterOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.Heartbeat <= 0 || o.Heartbeat >= o.LeaseTTL {
		o.Heartbeat = o.LeaseTTL / 4
	}
	if o.UnitSize < 1 {
		o.UnitSize = 4
	}
	return o
}

// Cluster wire types. A worker's conversation with the coordinator is
// three POSTs: claim a lease, heartbeat it while simulating, complete it
// with per-point reports.

// ClaimRequest asks the coordinator for a work unit.
type ClaimRequest struct {
	Worker string `json:"worker"`
}

// ClaimResponse grants a lease (Lease non-empty) or reports no work.
// Job is the job's cluster-wide identity (the job ID qualified by the
// coordinator's incarnation epoch); the worker must echo it back in the
// lease's CompleteRequest.
type ClaimResponse struct {
	Lease   string  `json:"lease,omitempty"`
	Job     string  `json:"job,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	Indices []int   `json:"indices,omitempty"`
	Points  []Point `json:"points,omitempty"`
	// TTLMS and HeartbeatMS tell the worker the lease contract: renew at
	// least every HeartbeatMS or lose the lease after TTLMS of silence.
	TTLMS       int64 `json:"ttl_ms,omitempty"`
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`
	// RetryMS is the suggested wait before the next claim when no work
	// was granted; Draining means the coordinator is shutting down.
	RetryMS  int64 `json:"retry_ms,omitempty"`
	Draining bool  `json:"draining,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
}

// HeartbeatResponse reports whether the lease is still owned. OK=false
// tells the worker to abandon the unit: the lease expired and was
// requeued, the job ended, or the coordinator restarted.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// PointReport is one grid point's terminal state as reported by a
// worker. Transient marks failures the coordinator should requeue
// (worker-side panics, serve.Transient errors, points a draining worker
// never started); a non-transient error fails the point permanently.
type PointReport struct {
	Index     int          `json:"index"`
	Result    *core.Result `json:"result,omitempty"`
	Cached    bool         `json:"cached,omitempty"`
	Error     string       `json:"error,omitempty"`
	Transient bool         `json:"transient,omitempty"`
}

// CompleteRequest finishes a lease with per-point reports. Job must be
// the ClaimResponse.Job the lease was granted under: a completion whose
// Job does not match the running job is dropped wholesale (reported
// Late), because its indices point into a different grid — without the
// check, a completion arriving after a job transition would merge one
// job's results into another job's points.
type CompleteRequest struct {
	Lease   string        `json:"lease"`
	Job     string        `json:"job"`
	Worker  string        `json:"worker"`
	Reports []PointReport `json:"reports"`
}

// CompleteResponse acknowledges a completion. Late means the lease had
// already expired and been requeued; the successes were still merged
// (first result wins, duplicates discarded).
type CompleteResponse struct {
	OK   bool `json:"ok"`
	Late bool `json:"late"`
}

// ClusterStats is the coordinator's operational view, served at
// GET /v1/cluster: the live lease picture plus cumulative counters
// across all jobs since the process started.
type ClusterStats struct {
	Coordinator       bool   `json:"coordinator"`
	ActiveJob         string `json:"active_job,omitempty"`
	PendingUnits      int    `json:"pending_units"`
	ActiveLeases      int    `json:"active_leases"`
	Claims            int64  `json:"claims"`
	OrphanRequeues    int64  `json:"orphan_requeues"`
	TransientRequeues int64  `json:"transient_requeues"`
	LateReports       int64  `json:"late_reports"`
	ExhaustedUnits    int64  `json:"exhausted_units"`
	// WorkersSeen counts live worker identities: those heard from within
	// the last few lease TTLs. Older identities are pruned, so worker
	// restarts (each restart is a fresh host:pid identity by default) do
	// not grow the coordinator's memory or inflate the stat forever.
	WorkersSeen int `json:"workers_seen"`
}

// workerSeenHorizon is how long a silent worker identity stays in
// workersSeen before the coordinator forgets it, as a multiple of the
// lease TTL. Anything alive claims or heartbeats far more often than
// this; anything silent past it is gone (crashed, drained, restarted
// under a new identity).
const workerSeenHorizon = 4

// pruneWorkersLocked forgets worker identities not heard from within
// workerSeenHorizon lease TTLs (mu held).
func (s *Server) pruneWorkersLocked(now time.Time) {
	if s.opt.Cluster == nil {
		return
	}
	cutoff := now.Add(-workerSeenHorizon * s.opt.Cluster.LeaseTTL)
	for id, seen := range s.workersSeen {
		if seen.Before(cutoff) {
			delete(s.workersSeen, id)
		}
	}
}

// runClustered executes one job by leasing its grid to workers instead
// of simulating in-process. It resolves already-stored points up front
// (a resubmitted grid costs zero leases for completed work), chunks the
// rest into units, serves claims/heartbeats/completions through the
// cluster handlers, and runs the orphan-lease failure detector until
// every point is resolved or the job context ends.
//
// The merge is deterministic by construction: outcomes land at their
// grid index, each exactly once, and every simulated result is the
// deterministic core.Run output for its config — so the merged slice is
// byte-identical to a single-process sweep.Run of the same grid, for
// any worker count, claim interleaving, or crash schedule.
func (s *Server) runClustered(ctx context.Context, jb *job) ([]sweep.Outcome, error) {
	copt := *s.opt.Cluster
	// Resolve store-complete points before leasing anything: disk reads
	// happen outside the lock, then the hits are recorded under it.
	hits := make([]*core.Result, len(jb.grid))
	for i := range jb.grid {
		if res, ok := s.store.Get(jb.grid[i].Key()); ok {
			r := res
			hits[i] = &r
		}
	}

	cg := newClusterGrid(jb.id, s.epoch, jb.grid, jb.points, copt.LeaseTTL, s.opt.Retry.normalize().MaxAttempts)
	s.mu.Lock()
	cg.onRecord = func(i int, o sweep.Outcome) { s.notePointLocked(jb, o) }
	cg.onRequeue = func(bool) { jb.retries++ }
	for i, res := range hits {
		if res != nil {
			cg.record(i, sweep.Outcome{Result: *res, Cached: true})
		}
	}
	cg.seed(copt.UnitSize)
	s.cluster = cg
	s.mu.Unlock()

	// The failure detector's scan cadence: a dead worker's lease is
	// requeued at most TTL + scan after its last heartbeat.
	scan := copt.LeaseTTL / 4
	if scan < 5*time.Millisecond {
		scan = 5 * time.Millisecond
	}
	ticker := time.NewTicker(scan)
	defer ticker.Stop()
	for {
		select {
		case <-cg.finished:
			s.mu.Lock()
			s.cluster = nil
			s.foldClusterTotals(cg)
			outs := cg.outs
			s.mu.Unlock()
			return outs, nil
		case <-ctx.Done():
			s.mu.Lock()
			// Unresolved points carry the context error, without
			// touching the job's per-point progress counters (matching
			// sweep.Run, which never calls OnPoint for undispatched
			// points).
			cg.onRecord = nil
			cg.cancel(ctx.Err())
			s.cluster = nil
			s.foldClusterTotals(cg)
			outs := cg.outs
			s.mu.Unlock()
			return outs, ctx.Err()
		case <-ticker.C:
			now := time.Now()
			s.mu.Lock()
			cg.expireOrphans(now)
			s.pruneWorkersLocked(now)
			s.mu.Unlock()
		}
	}
}

// foldClusterTotals accumulates a finished grid's counters into the
// server-lifetime totals (mu held).
func (s *Server) foldClusterTotals(cg *clusterGrid) {
	s.ctot.Claims += cg.claims
	s.ctot.OrphanRequeues += cg.orphanRequeues
	s.ctot.TransientRequeues += cg.transientRequeues
	s.ctot.LateReports += cg.lateReports
	s.ctot.ExhaustedUnits += cg.exhaustedUnits
}

func (s *Server) notCoordinator(w http.ResponseWriter) bool {
	if s.opt.Cluster != nil {
		return false
	}
	writeJSON(w, http.StatusPreconditionFailed, apiError{Error: "this instance is not a cluster coordinator (start it with -mode coordinator)"})
	return true
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	if s.notCoordinator(w) {
		return
	}
	var req ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "claim needs a worker identity"})
		return
	}
	copt := *s.opt.Cluster
	now := time.Now()
	s.mu.Lock()
	s.workersSeen[req.Worker] = now
	draining := s.closed
	cg := s.cluster
	var u *workUnit
	if cg != nil && !draining {
		u = cg.claim(req.Worker, now)
	}
	if u == nil {
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, ClaimResponse{RetryMS: copt.Heartbeat.Milliseconds(), Draining: draining})
		return
	}
	resp := ClaimResponse{
		Lease:       u.lease,
		Job:         cg.token,
		Attempt:     u.attempt,
		Indices:     append([]int(nil), u.indices...),
		Points:      make([]Point, len(u.indices)),
		TTLMS:       copt.LeaseTTL.Milliseconds(),
		HeartbeatMS: copt.Heartbeat.Milliseconds(),
	}
	for j, i := range u.indices {
		resp.Points[j] = cg.points[i]
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if s.notCoordinator(w) {
		return
	}
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Lease == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "heartbeat needs a lease id"})
		return
	}
	now := time.Now()
	s.mu.Lock()
	if req.Worker != "" {
		s.workersSeen[req.Worker] = now
	}
	ok := s.cluster != nil && s.cluster.heartbeat(req.Lease, now)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, HeartbeatResponse{OK: ok})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	if s.notCoordinator(w) {
		return
	}
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Lease == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("malformed completion: %v", err)})
		return
	}
	now := time.Now()
	s.mu.Lock()
	if req.Worker != "" {
		s.workersSeen[req.Worker] = now
	}
	cg := s.cluster
	var late bool
	type ensureItem struct {
		key string
		res core.Result
	}
	var ensures []ensureItem
	switch {
	case cg != nil && req.Job == cg.token:
		for _, rep := range req.Reports {
			if rep.Error == "" && rep.Result != nil && rep.Index >= 0 && rep.Index < len(cg.grid) {
				ensures = append(ensures, ensureItem{cg.grid[rep.Index].Key(), *rep.Result})
			}
		}
		late = cg.complete(req.Lease, req.Reports, now)
	case cg != nil:
		// The report belongs to a different job (its lease was granted
		// before a job transition, or by a previous coordinator
		// incarnation). Its indices point into that job's grid, not this
		// one's — recording or ensuring anything here would stamp one
		// job's results onto another job's configs. Drop it wholesale:
		// the worker's own store writes are already durable, and the
		// old job's requeue/resubmission path resolves from them.
		cg.lateReports++
		late = true
	default:
		// No job is executing (it finished, was cancelled, or the
		// coordinator restarted): the report has nowhere to land, but
		// that is fine — the worker's store writes are already durable,
		// and a resubmission resolves from them.
		late = true
	}
	s.mu.Unlock()
	// Make worker-reported results durable in the coordinator's store
	// (a no-op under a shared directory, where the worker's own write
	// already landed). Outside the lock: this is disk I/O.
	for _, e := range ensures {
		s.store.Ensure(e.key, e.res)
	}
	writeJSON(w, http.StatusOK, CompleteResponse{OK: true, Late: late})
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.pruneWorkersLocked(time.Now())
	st := s.ctot
	st.Coordinator = s.opt.Cluster != nil
	st.WorkersSeen = len(s.workersSeen)
	if cg := s.cluster; cg != nil {
		st.ActiveJob = cg.jobID
		st.PendingUnits = len(cg.pending)
		st.ActiveLeases = len(cg.active)
		st.Claims += cg.claims
		st.OrphanRequeues += cg.orphanRequeues
		st.TransientRequeues += cg.transientRequeues
		st.LateReports += cg.lateReports
		st.ExhaustedUnits += cg.exhaustedUnits
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// Cluster RPCs as Client methods, so the worker loop and tests share
// one wire implementation with the job-submission client.

// Claim asks a coordinator for a lease. A response with an empty Lease
// means no work is available right now.
func (c *Client) Claim(ctx context.Context, worker string) (ClaimResponse, error) {
	var resp ClaimResponse
	err := c.do(ctx, http.MethodPost, "/v1/cluster/claim", ClaimRequest{Worker: worker}, &resp)
	return resp, err
}

// Heartbeat renews a lease; ok=false means the lease is lost and the
// unit should be abandoned.
func (c *Client) Heartbeat(ctx context.Context, lease, worker string) (bool, error) {
	var resp HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/v1/cluster/heartbeat", HeartbeatRequest{Lease: lease, Worker: worker}, &resp)
	return resp.OK, err
}

// Complete reports a lease's per-point outcomes. job must be the
// ClaimResponse.Job the lease was granted under. Retries transport
// errors: losing a completion to a blip would cost a whole requeue
// cycle, and re-delivery is idempotent coordinator-side.
func (c *Client) Complete(ctx context.Context, lease, job, worker string, reports []PointReport) (CompleteResponse, error) {
	var resp CompleteResponse
	err := c.doRetry(ctx, http.MethodPost, "/v1/cluster/complete", CompleteRequest{Lease: lease, Job: job, Worker: worker, Reports: reports}, &resp)
	return resp, err
}

// ClusterStats fetches a coordinator's lease counters.
func (c *Client) ClusterStats(ctx context.Context) (ClusterStats, error) {
	var st ClusterStats
	err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &st)
	return st, err
}
