package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"lapses/internal/core"
	"lapses/internal/sweep"
)

// Client talks to a lapses-serve server. Its Run method satisfies
// sweep.RunFunc, so plugging a Client into sweep.Options.Exec routes
// every grid — experiment figures, bisection probes — through the
// server and its durable store instead of simulating in-process.
type Client struct {
	// Base is the server URL, e.g. "http://localhost:8080".
	Base string
	// HTTP is the transport (nil: http.DefaultClient).
	HTTP *http.Client
	// PollInterval is the status-polling cadence while a job runs
	// (default 150ms). Wait starts at this cadence and backs off
	// exponentially with jitter, capped at PollCap.
	PollInterval time.Duration
	// PollCap bounds the backed-off polling interval (default 16x
	// PollInterval). Long jobs settle at one status request per cap
	// instead of hammering the server at the base cadence.
	PollCap time.Duration
	// JobTimeout, when set, is sent as each job's deadline.
	JobTimeout time.Duration
	// Verbose, when non-nil, receives one summary line per completed
	// job ("[serve job j000001: 88 points, 88 cached, 0 simulated,
	// 0 failed]") — the store-hit evidence the CI smoke test greps.
	Verbose io.Writer
	// Retry shapes the transport-level retry loop wrapped around every
	// idempotent request (Submit, Status, Results, Cancel, StoreStats,
	// and the cluster RPCs): connection errors and 502/503/504 responses
	// are retried with jittered exponential backoff. Zero fields default
	// to 5 attempts from a 200ms base. Backpressure (429) is never
	// retried here — Submit's own Retry-After loop owns that.
	Retry RetryPolicy
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) poll() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 150 * time.Millisecond
}

// do issues one JSON request and decodes the response into out (when
// non-nil). Non-2xx responses are returned as *APIStatusError carrying
// the server's error message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("serve client: %w", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return fmt.Errorf("serve client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// A request killed by its own context is not a server fault:
		// retrying a deliberate cancellation (or an expired deadline)
		// just burns a backoff cycle before every consumer of the
		// IsTransient taxonomy notices the dead ctx.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			return fmt.Errorf("serve client: %s %s: %w", method, path, err)
		}
		// Other transport-level failures (connection refused, reset,
		// timeout) are transient by construction: the request may never
		// have reached the server, and a healthy peer moments later will
		// answer it. Marking them Transient lets doRetry — and any
		// server-side runner executing through this client — retry them
		// under the capped budget.
		return Transient(fmt.Errorf("serve client: %s %s: %w", method, path, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var ae apiError
		json.NewDecoder(resp.Body).Decode(&ae)
		if ae.Error == "" {
			ae.Error = resp.Status
		}
		return &APIStatusError{Code: resp.StatusCode, Message: ae.Error, RetryAfter: retryAfter(resp)}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve client: %s %s: decoding response: %w", method, path, err)
	}
	return nil
}

// retryPolicy is the transport-retry curve: Retry with client-appropriate
// defaults (a little patient — 5 attempts from a 200ms base reaches ~3s
// of cumulative waiting, enough to ride out a server restart).
func (c *Client) retryPolicy() RetryPolicy {
	p := c.Retry
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 200 * time.Millisecond
	}
	return p.normalize()
}

// retryableStatus reports whether a request should be retried: transport
// errors (wrapped Transient by do) and gateway-flavored 5xx responses
// qualify; client errors (4xx, including 429 — Submit handles that one
// itself) and decode failures never do.
func retryableStatus(err error) bool {
	var ae *APIStatusError
	if errors.As(err, &ae) {
		switch ae.Code {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return IsTransient(err)
}

// doRetry is do wrapped in the transport-retry loop: transient failures
// are retried with jittered exponential backoff up to the policy's
// attempt budget, and the last error is returned when the budget is
// spent or ctx expires.
func (c *Client) doRetry(ctx context.Context, method, path string, body, out any) error {
	pol := c.retryPolicy()
	var lastErr error
	for n := 1; n <= pol.MaxAttempts; n++ {
		lastErr = c.do(ctx, method, path, body, out)
		if lastErr == nil || !retryableStatus(lastErr) {
			return lastErr
		}
		if n == pol.MaxAttempts {
			break
		}
		t := time.NewTimer(pol.backoff(n))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return lastErr
		}
	}
	return lastErr
}

// APIStatusError is a non-2xx server response.
type APIStatusError struct {
	Code       int
	Message    string
	RetryAfter time.Duration // from the Retry-After header, if any
}

func (e *APIStatusError) Error() string {
	return fmt.Sprintf("serve client: server returned %d: %s", e.Code, e.Message)
}

func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// Health checks the server is up and accepting work.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// StoreStats fetches the server's store counters.
func (c *Client) StoreStats(ctx context.Context) (StoreStats, error) {
	var st StoreStats
	err := c.doRetry(ctx, http.MethodGet, "/v1/store", nil, &st)
	return st, err
}

// Submit sends one job and returns its accepted status. Backpressure
// (429) is absorbed: the client waits the server's Retry-After (or 1s)
// and resubmits until ctx expires.
func (c *Client) Submit(ctx context.Context, points []Point) (JobStatus, error) {
	req := jobRequest{Points: points, TimeoutMS: int64(c.JobTimeout / time.Millisecond)}
	for {
		var st JobStatus
		// Submitting the same points twice is harmless — the server keys
		// results by config, so a retried submit after an ambiguous
		// transport failure costs at worst a duplicate job whose points
		// are all store hits. That makes Submit safe to route through
		// the transport-retry loop.
		err := c.doRetry(ctx, http.MethodPost, "/v1/jobs", req, &st)
		if err == nil {
			return st, nil
		}
		var ae *APIStatusError
		if !errors.As(err, &ae) || ae.Code != http.StatusTooManyRequests {
			return JobStatus{}, err
		}
		wait := ae.RetryAfter
		if wait <= 0 {
			wait = time.Second
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return JobStatus{}, fmt.Errorf("serve client: giving up on backpressured submit: %w", ctx.Err())
		}
	}
}

// Status fetches a job's progress.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.doRetry(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Results fetches a terminal job's per-point outcomes.
func (c *Client) Results(ctx context.Context, id string) (JobResults, error) {
	var res JobResults
	err := c.doRetry(ctx, http.MethodGet, "/v1/jobs/"+id+"/results", nil, &res)
	return res, err
}

// Cancel requests cancellation of a job. Cancelling is idempotent
// server-side, so it rides the transport-retry loop too.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.doRetry(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// pollPolicy is Wait's cadence expressed as the executor's retry curve:
// the first sleep is PollInterval and each further one doubles with up
// to 50% jitter, capped at PollCap. Reusing RetryPolicy keeps the two
// backoff behaviors in the package (point retry, status polling) on one
// implementation.
func (c *Client) pollPolicy() RetryPolicy {
	p := RetryPolicy{BaseBackoff: c.poll(), MaxBackoff: c.PollCap}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 16 * c.poll()
	}
	return p.normalize()
}

// Wait polls a job until it reaches a terminal state or ctx expires,
// backing the poll interval off exponentially (with jitter, capped —
// see PollInterval/PollCap) so long-running grids cost one request per
// cap interval rather than a constant hammering. When ctx expires the
// job is cancelled server-side before returning, so abandoned client
// contexts don't leave grids burning server cycles.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	pol := c.pollPolicy()
	for n := 1; ; n++ {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Terminal() {
			return st, nil
		}
		t := time.NewTimer(pol.backoff(n))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			c.Cancel(cctx, id)
			cancel()
			return st, ctx.Err()
		}
	}
}

// Run executes grid on the server: serialize, submit (absorbing
// backpressure), poll to completion, fetch results, and map them back
// onto the original configs in order. It satisfies sweep.RunFunc — set
// it as sweep.Options.Exec and every composite helper (experiment
// grids, bisection probes) runs remotely, one simulation per unique
// point ever, server-side.
//
// Per-point failures come back as Outcome.Err exactly as from
// sweep.Run. Run itself errors when the job could not complete —
// cancelled, interrupted by a server shutdown, or a transport failure.
func (c *Client) Run(ctx context.Context, grid []core.Config, opt sweep.Options) ([]sweep.Outcome, error) {
	points, err := PointsFromGrid(grid)
	if err != nil {
		return nil, fmt.Errorf("serve client: %w", err)
	}
	st, err := c.Submit(ctx, points)
	if err != nil {
		return nil, err
	}
	if st, err = c.Wait(ctx, st.ID); err != nil {
		return nil, err
	}
	res, err := c.Results(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	st = res.Status
	if c.Verbose != nil {
		fmt.Fprintf(c.Verbose, "[serve job %s: %d points, %d cached, %d simulated, %d failed]\n",
			st.ID, st.Total, st.Cached, st.Simulated, st.Failed)
	}
	if st.State == JobCancelled || st.State == JobInterrupted {
		return nil, fmt.Errorf("serve client: job %s was %s (%d of %d points completed); completed points are stored — resubmit to resume", st.ID, st.State, st.Completed, st.Total)
	}
	if len(res.Outcomes) != len(grid) {
		return nil, fmt.Errorf("serve client: job %s returned %d outcomes for %d points", st.ID, len(res.Outcomes), len(grid))
	}
	outs := make([]sweep.Outcome, len(grid))
	for i, po := range res.Outcomes {
		outs[i].Config = grid[i]
		switch {
		case po.Error != "":
			outs[i].Err = fmt.Errorf("%s", po.Error)
		case po.Result != nil:
			outs[i].Result = *po.Result
			outs[i].Cached = po.Cached
		default:
			outs[i].Err = fmt.Errorf("serve client: job %s point %d: no result and no error", st.ID, i)
		}
		if opt.OnPoint != nil {
			opt.OnPoint(i, outs[i])
		}
	}
	return outs, nil
}
