package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lapses/internal/flow"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/table"
	"lapses/internal/topology"
)

// Event mode's express path claims cycle-exact timing for uncontended
// transits: a single message on an idle network must arrive at exactly the
// same cycle as in cycle mode — the closed-form pipeline budget of
// TestQuickContentionFreeFormula. Messages longer than the buffer depth
// exercise the fallback (express admission requires the full credit
// window), which must be just as exact because it is the unchanged
// cycle-accurate path.
func TestEventModeContentionFreeExact(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k1, k2 := 2+rng.Intn(6), 2+rng.Intn(6)
		m := topology.NewMesh(k1, k2)
		src := topology.NodeID(rng.Intn(m.N()))
		dst := topology.NodeID(rng.Intn(m.N()))
		if src == dst {
			return true
		}
		length := 1 + rng.Intn(30) // > BufDepth (20) exercises the fallback
		lookAhead := rng.Intn(2) == 0

		pat := &fixedPattern{src: src, dst: dst}
		cfg := testConfig(m, lookAhead, table.KindES, 0, pat, 0, seed)
		cfg.MsgLen = length
		cfg.EventMode = true
		n := New(cfg)
		msg := &flow.Message{ID: 0, Src: src, Dst: dst, Length: length, CreateTime: 0}
		n.nextMsg = 1
		n.inject(msg)
		var got int64 = -1
		n.onArrive = func(mm *flow.Message, now int64) { got = mm.ArriveTime - mm.CreateTime }
		for i := 0; i < 2000 && got < 0; i++ {
			n.Step()
		}
		if got < 0 {
			t.Logf("seed %d: message never arrived", seed)
			return false
		}
		stages := int64(5)
		if lookAhead {
			stages = 4
		}
		d := int64(m.Distance(src, dst))
		want := 1 + d*(stages+1) + (stages - 1) + int64(length-1)
		if got != want {
			t.Logf("seed %d: %v %d->%d len %d la=%v: event-mode latency %d want %d",
				seed, m, src, dst, length, lookAhead, got, want)
			return false
		}
		if int64(msg.Hops) != d {
			t.Logf("seed %d: hops %d want %d", seed, msg.Hops, d)
			return false
		}
		// The network must drain completely: no buffered flits, no stuck
		// express state, all credits home. The arrival is observed at the
		// final hop's admission cycle, while the worm's batched credits and
		// VC releases land up to ~Length+5 cycles later; give them a full
		// horizon to land.
		for i := 0; i < 64; i++ {
			n.Step()
		}
		if n.Occupancy() != 0 {
			t.Logf("seed %d: %d flits left buffered", seed, n.Occupancy())
			return false
		}
		for _, sh := range n.shards {
			if sh.flits.count != 0 || sh.credits.count != 0 {
				t.Logf("seed %d: events left in flight", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The express path must compute dateline crossings exactly like the SA
// stage does, so a wraparound route on a torus keeps the same budget and
// hop count in event mode.
func TestEventModeTorusExact(t *testing.T) {
	m := topology.NewTorus(6, 6)
	src := m.ID(topology.Coord{0, 0})
	dst := m.ID(topology.Coord{5, 5}) // distance 2 via wraparound
	pat := &fixedPattern{src: src, dst: dst}
	cls := routing.Class{NumVCs: 4, EscapeVCs: 2}
	cfg := Config{
		Mesh:      m,
		Router:    router.Config{NumVCs: 4, BufDepth: 20, OutDepth: 4, LookAhead: true},
		LinkDelay: 1,
		Algorithm: routing.NewDuato(m, cls),
		Class:     cls,
		Table:     table.KindFull,
		Selection: 0,
		Pattern:   pat,
		MsgLen:    4,
		Seed:      1,
		EventMode: true,
	}
	n := New(cfg)
	msg := &flow.Message{ID: 0, Src: src, Dst: dst, Length: 4, CreateTime: 0}
	n.nextMsg = 1
	n.inject(msg)
	var got int64 = -1
	n.onArrive = func(mm *flow.Message, now int64) { got = mm.ArriveTime - mm.CreateTime }
	for i := 0; i < 200 && got < 0; i++ {
		n.Step()
	}
	// 1 + 2*(4+1) + 3 + 3 = 17, same as cycle mode.
	if got != 17 {
		t.Errorf("torus event-mode latency %d want 17", got)
	}
	if msg.Hops != 2 {
		t.Errorf("hops = %d want 2 (wraparound)", msg.Hops)
	}
}

// A back-to-back stream of messages on one path must conserve flits and
// drain cleanly in event mode even as express and buffered transits
// interleave (the second worm often arrives while the first still holds
// downstream credits, forcing the fallback path mid-stream).
func TestEventModeStreamDrains(t *testing.T) {
	for _, la := range []bool{false, true} {
		m := topology.NewMesh(4, 4)
		pat := &fixedPattern{src: m.ID(topology.Coord{0, 0}), dst: m.ID(topology.Coord{3, 3})}
		cfg := testConfig(m, la, table.KindES, 0, pat, 0.02, 1)
		cfg.MsgLen = 8
		cfg.EventMode = true
		n := New(cfg)
		delivered := 0
		n.onArrive = func(mm *flow.Message, now int64) {
			delivered++
			if mm.ArriveTime <= mm.CreateTime {
				t.Fatalf("la=%v: non-causal arrival %d <= %d", la, mm.ArriveTime, mm.CreateTime)
			}
		}
		for i := 0; i < 4000; i++ {
			n.Step()
		}
		if delivered < 10 {
			t.Fatalf("la=%v: only %d messages delivered", la, delivered)
		}
		// Drain: stop injecting by stepping past the horizon with the
		// injector exhausted is not available here, so just verify the
		// conservation invariant instead: everything injected and not yet
		// delivered is buffered or on a wire.
		inFlight := 0
		for _, sh := range n.shards {
			inFlight += sh.flits.count
		}
		if n.Occupancy() == 0 && inFlight == 0 && n.QueuedMessages() > 0 {
			t.Fatalf("la=%v: queued messages with an empty network", la)
		}
	}
}
