package network

import (
	"sync"

	"lapses/internal/flow"
	"lapses/internal/topology"
)

// Sharded stepping splits the mesh into contiguous row bands and advances
// all of them through one cycle with a two-phase protocol:
//
//   - Phase A (parallel): each shard pops its due NI wakes, drains its own
//     flit/credit wheel slots, ticks its active NIs and routers. All state
//     a shard touches in phase A is shard-private: its wheels, active
//     bitmaps, wake heap, occupancy counters, message pool, and the
//     routers/NIs of its band. Effects that cross a shard boundary are
//     always *future* events (a flit or credit traversing a link lands no
//     earlier than now+1+LinkDelay >= now+2), so instead of writing into
//     another shard's wheel a sender appends the event to a per-(source,
//     destination) mailbox.
//   - Phase B (barrier, serial): message IDs are assigned to this cycle's
//     generated messages in ascending shard (= node) order, arrivals are
//     replayed to the observer in ascending shard order, and mailboxes are
//     drained into the destination shards' wheels in ascending source
//     order.
//
// Why shards=N is bit-identical to shards=1: within one cycle no shard
// can observe another shard's work. Every cross-shard effect is an event
// due at now+2 or later, delivered via the mailbox drain at the barrier —
// before its due cycle. The only order the parallel phase changes is the
// order of events *within* one wheel slot (a shard's own events land
// before mailed ones), and slot-internal order is unobservable: a
// physical channel carries at most one flit per cycle, so no two flit
// events in a slot ever target the same (node, port), and credit events
// are pure counter increments. Everything order-sensitive — message ID
// assignment, statistics recording — happens in phase B in ascending node
// order, exactly the order the serial kernel produced. The golden tests
// pin this equivalence at shards ∈ {1, 2, 4}.
//
// Whether phase A runs on worker goroutines or inline on one goroutine is
// purely an execution strategy: Run starts one worker per extra shard for
// the duration of the measurement loop (startWorkers), while direct Step
// calls outside Run execute the shards sequentially with identical
// results.

// timedFlit and timedCredit are mailbox entries: a wheel event plus its
// due cycle, carried across the shard boundary at the barrier.
type timedFlit struct {
	at int64
	e  flitEvent
}

type timedCredit struct {
	at int64
	e  creditEvent
}

// shard owns one contiguous band of nodes [lo, hi) and every piece of
// per-cycle mutable state those nodes touch during phase A.
type shard struct {
	idx    int
	lo, hi int

	flits   *wheel[flitEvent]
	credits *wheel[creditEvent]

	// Active bitmaps and the wake heap are indexed by (node - lo) /
	// hold global node ids respectively, mirroring the pre-shard kernel.
	actRouters activeSet
	actNIs     activeSet
	wakes      wakeHeap

	// totalOcc/totalQueued are this band's slices of the network-wide
	// incremental counters; accessors sum them.
	totalOcc    int
	totalQueued int

	// created accumulates messages generated this cycle, in NI-visit
	// (ascending node) order; phase B assigns their IDs. arrived
	// accumulates tail-delivered messages in delivery order; phase B
	// replays them to the arrival observer. Both are reset each cycle and
	// reuse their backing arrays.
	created []*flow.Message
	arrived []*flow.Message

	// msgFree pools delivered messages for reuse by this band's NIs.
	msgFree []*flow.Message

	// Reliability-layer accumulators (reliability.go), all written only by
	// this shard's NIs during phase A and drained or summed at the
	// barrier. newPending holds this cycle's tracked sends awaiting their
	// message IDs; createdCtrl this cycle's pure acks awaiting (negative)
	// IDs; relDone delivered copies the layer consumed (duplicates, pure
	// acks) to pool; lostIDs retry-exhausted message IDs to replay to the
	// loss observer. dropped holds messages discarded at the bind point
	// because their destination is dead and no reliability layer will
	// retry them.
	newPending  []*pendEntry
	createdCtrl []*flow.Message
	relDone     []*flow.Message
	lostIDs     []flow.MessageID
	dropped     []*flow.Message
	retrans     int64
	dups        int64
	abandoned   int64

	// outFlits/outCredits are the outbound mailboxes, indexed by
	// destination shard. Only this shard appends (during its phase A);
	// only the barrier drains. The slot for the own index stays unused.
	outFlits   [][]timedFlit
	outCredits [][]timedCredit
}

// shardBounds partitions the n nodes of m into at most want contiguous
// bands aligned to slabs of the slowest-varying dimension (rows of a 2-D
// mesh), so band boundaries coincide with topology rows and cross-shard
// links are the band-edge row links only. The clamp to the slab count
// guarantees every shard owns at least one full slab.
func shardBounds(m *topology.Mesh, want int) []int {
	slabs := m.Radix(m.NumDims() - 1)
	slabSize := m.N() / slabs
	if want < 1 {
		want = 1
	}
	if want > slabs {
		want = slabs
	}
	bounds := make([]int, want+1)
	for b := 0; b <= want; b++ {
		bounds[b] = slabSize * (b * slabs / want)
	}
	return bounds
}

// stepShard advances one shard through phase A of cycle now. It mirrors
// the serial kernel's order exactly — wakes, credits, flits, NIs, routers
// — restricted to the shard's band.
func (n *Network) stepShard(sh *shard, now int64) {
	for sh.wakes.len() > 0 && sh.wakes.top().at <= now {
		sh.actNIs.add(int(sh.wakes.pop().node) - sh.lo)
	}

	for _, e := range sh.credits.take(now) {
		switch e.kind {
		case creditToRouter:
			n.routers[e.node].AcceptCredits(e.port, e.vc, int(e.n))
			if n.notify {
				// Deliver the piggybacked congestion notification with
				// the credit: the per-port register updates in credit
				// order, which the barrier protocol preserves.
				n.routers[e.node].NoteCongestion(e.port, e.cong)
			}
		case creditToNI:
			n.nis[e.node].acceptCredit(e.vc, int(e.n))
		default:
			n.routers[e.node].ReleaseExpress(e.port, e.vc)
		}
	}
	evs := sh.flits.take(now)
	if n.cfg.EventMode {
		for i := range evs {
			e := &evs[i]
			if e.worm {
				// A worm event is an entire message crossing the wire
				// behind its head flit. A router that cannot absorb it in
				// O(1) unpacks it instead: the head latches now and the
				// trailing flits land at link rate — exactly the cadence
				// their per-flit events would have had — on the unchanged
				// cycle-accurate path.
				if n.routers[e.node].EventWorm(e.port, e.vc, e.fl, now) {
					continue
				}
				msg := e.fl.Msg
				if e.port == topology.PortLocal {
					// A worm refused at its own source router goes back to
					// the NI as a partially-serialized stream rather than as
					// pre-scheduled trailing events. The NI frees an
					// injection VC only at the tail, so the next message
					// cannot overtake these flits on the same VC — which it
					// could if they sat in the wheel while per-flit credits
					// trickled back. The cadence is unchanged: the NI's next
					// tick (later this same cycle) sends seq 1 for now+1.
					// A single-flit worm is its own head; there is nothing
					// left to serialize.
					if msg.Length > 1 {
						x := n.nis[e.node]
						x.streams[e.vc] = stream{msg: msg, seq: 1}
						x.credits[e.vc] += msg.Length - 1
						sh.totalQueued++
						sh.actNIs.add(int(e.node) - sh.lo)
					}
				} else {
					for s := 1; s < msg.Length; s++ {
						sh.flits.schedule(now+int64(s), flitEvent{
							node: e.node, port: e.port, vc: e.vc,
							fl: flow.Flit{Msg: msg, Seq: int32(s), Type: flow.TypeFor(s, msg.Length)},
						})
					}
				}
				n.routers[e.node].EnqueueFlit(e.port, e.vc, e.fl, now)
				sh.totalOcc++
				n.lastOcc[e.node]++
				sh.actRouters.add(int(e.node) - sh.lo)
				continue
			}
			// An express-absorbed flit never occupies a buffer and the
			// router needs no Tick for it: skip the occupancy and
			// active-set bookkeeping entirely.
			if n.routers[e.node].EventFlit(e.port, e.vc, e.fl, now) {
				continue
			}
			sh.totalOcc++
			n.lastOcc[e.node]++
			sh.actRouters.add(int(e.node) - sh.lo)
		}
	} else {
		for i := range evs {
			e := &evs[i]
			n.routers[e.node].EnqueueFlit(e.port, e.vc, e.fl, now)
			sh.totalOcc++
			n.lastOcc[e.node]++
			sh.actRouters.add(int(e.node) - sh.lo)
		}
	}

	sh.actNIs.forEach(func(local int32) bool {
		x := n.nis[sh.lo+int(local)]
		before := x.pending()
		x.tick(now)
		after := x.pending()
		sh.totalQueued += after - before
		if after > 0 {
			return true
		}
		if at, ok := x.nextWake(); ok {
			sh.wakes.push(wake{at: at, node: int32(sh.lo) + local})
		}
		return false
	})

	sh.actRouters.forEach(func(local int32) bool {
		id := sh.lo + int(local)
		occ := n.routers[id].Tick(now)
		sh.totalOcc += occ - int(n.lastOcc[id])
		n.lastOcc[id] = int32(occ)
		return occ > 0
	})
}

// finishCycle is phase B: the serial barrier work after every shard has
// finished phase A of cycle now. It runs on the stepping goroutine, so
// the worker barrier's happens-before edge covers everything the shards
// wrote.
func (n *Network) finishCycle(now int64) {
	// Message IDs in ascending shard order = ascending node order, the
	// order the serial kernel's NI loop assigned them in. IDs are only
	// read at delivery (cycles later), so assigning them here instead of
	// at generation is unobservable.
	for _, sh := range n.shards {
		for _, msg := range sh.created {
			msg.ID = n.nextMsg
			n.nextMsg++
		}
		sh.created = sh.created[:0]
		// Reliability: resolve this cycle's pending entries now that their
		// messages have IDs, and hand pure acks negative IDs so they never
		// consume the measured ID space.
		for _, pe := range sh.newPending {
			pe.id = pe.msg.ID
			pe.msg = nil
		}
		sh.newPending = sh.newPending[:0]
		for _, msg := range sh.createdCtrl {
			n.nextCtrl--
			msg.ID = n.nextCtrl
		}
		sh.createdCtrl = sh.createdCtrl[:0]
	}
	// Arrival replay, same order. Within a shard, deliveries were
	// appended in ascending router order (the active-set iteration), so
	// the concatenation is the serial kernel's delivery order.
	for _, sh := range n.shards {
		if n.sched != nil && len(sh.arrived) > 0 {
			// Bucket first deliveries for the recovery-time metric. arrived
			// only ever holds first deliveries: duplicates were consumed in
			// relReceive before reaching it.
			idx := int(now >> windowShift)
			for len(n.windows) <= idx {
				n.windows = append(n.windows, 0)
			}
			n.windows[idx] += int64(len(sh.arrived))
		}
		for _, msg := range sh.arrived {
			n.delivered++
			if n.onArrive != nil {
				n.onArrive(msg, now)
			}
			if n.recycle {
				sh.msgFree = append(sh.msgFree, msg)
			}
		}
		sh.arrived = sh.arrived[:0]
		if len(sh.relDone) > 0 {
			if n.recycle {
				sh.msgFree = append(sh.msgFree, sh.relDone...)
			}
			sh.relDone = sh.relDone[:0]
		}
	}
	// Permanent losses replay to the observer after every shard's
	// arrivals, in ascending shard order: bind-point drops of messages to
	// dead destinations (no reliability layer), then retry-exhausted
	// abandonments (with it). A separate pass — not the arrival loop —
	// because interleaving per shard would order a shard-0 loss before a
	// shard-1 arrival that the serial kernel reports first.
	for _, sh := range n.shards {
		for _, msg := range sh.dropped {
			n.droppedMsgs++
			if n.onLost != nil {
				n.onLost(msg.ID)
			}
		}
		sh.dropped = sh.dropped[:0]
		for _, id := range sh.lostIDs {
			if n.onLost != nil {
				n.onLost(id)
			}
		}
		sh.lostIDs = sh.lostIDs[:0]
	}
	if len(n.shards) > 1 {
		for di, d := range n.shards {
			for _, s := range n.shards {
				for _, tf := range s.outFlits[di] {
					d.flits.schedule(tf.at, tf.e)
				}
				s.outFlits[di] = s.outFlits[di][:0]
				for _, tc := range s.outCredits[di] {
					d.credits.schedule(tc.at, tc.e)
				}
				s.outCredits[di] = s.outCredits[di][:0]
			}
		}
	}
}

// parRun is the persistent worker pool of one measurement loop: one
// goroutine per shard beyond the first, each parked on its start channel
// between cycles. The stepping goroutine executes shard 0 itself.
type parRun struct {
	start []chan int64
	wg    sync.WaitGroup
}

// startWorkers spawns the phase-A workers and returns a stop function.
// With one shard it is a no-op. Run brackets its measurement loop with
// this; everywhere else Step executes the shards inline, which is
// bit-identical (see the package comment above).
func (n *Network) startWorkers() (stop func()) {
	if len(n.shards) < 2 {
		return func() {}
	}
	p := &parRun{start: make([]chan int64, len(n.shards)-1)}
	for i := 1; i < len(n.shards); i++ {
		ch := make(chan int64, 1)
		p.start[i-1] = ch
		go func(sh *shard) {
			for now := range ch {
				n.stepShard(sh, now)
				p.wg.Done()
			}
		}(n.shards[i])
	}
	n.par = p
	return func() {
		for _, ch := range p.start {
			close(ch)
		}
		n.par = nil
	}
}

// idle reports whether nothing can happen until an NI wake fires: no
// buffered flits, no queued or streaming messages, and no events in
// flight on any wheel (mailboxes are always empty between cycles).
func (n *Network) idle() bool {
	for _, sh := range n.shards {
		if sh.totalOcc != 0 || sh.totalQueued != 0 || sh.flits.count != 0 || sh.credits.count != 0 {
			return false
		}
	}
	return true
}

// nextWakeAt returns the earliest parked NI wake across all shards, or
// -1 when every traffic process is exhausted.
func (n *Network) nextWakeAt() int64 {
	at := int64(-1)
	for _, sh := range n.shards {
		if sh.wakes.len() == 0 {
			continue
		}
		if t := sh.wakes.top().at; at < 0 || t < at {
			at = t
		}
	}
	return at
}
