package network

import (
	"math/rand"
	"testing"

	"lapses/internal/fault"
	"lapses/internal/flow"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// FuzzFaultPlan feeds random fault plans and configurations through short
// measured runs and checks the invariants no degraded topology may
// violate:
//
//  1. no panic anywhere in construction or simulation;
//  2. no lost or duplicated messages — a trace-driven workload drains
//     completely, every message ID delivered exactly once;
//  3. flit conservation — link traversals equal the sum over delivered
//     messages of hops x length, and nothing stays buffered or queued
//     after the drain;
//  4. dead equipment stays dark — zero flits on failed links.
//
// The shard count and the execution kernel (cycle- vs event-driven) are
// fuzzed alongside the fault plan: sharded stepping
// must uphold every conservation invariant over arbitrary damage, not
// just the configurations the golden grids pin, and the event kernel's
// express machinery must conserve messages and flits over the same
// degraded topologies it never sees in the timing-pinned tests. The
// notify axis swaps in the notification selector, whose credit-
// piggybacked congestion filter must keep every invariant over damaged
// meshes too (a dead link's port never reports, so its stale level must
// not trap worms).
//
// Run continuously with: go test -run '^$' -fuzz FuzzFaultPlan ./internal/network
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(1), true, false, uint8(1), false, false)
	f.Add(int64(2), uint8(0), uint8(0), false, false, uint8(2), true, true)
	f.Add(int64(3), uint8(6), uint8(2), true, true, uint8(4), true, false)
	f.Add(int64(4), uint8(1), uint8(0), false, true, uint8(3), false, true)
	f.Fuzz(func(t *testing.T, seed int64, nLinks, nRouters uint8, la, torus bool, shards uint8, events, notify bool) {
		m := topology.NewMesh(6, 6)
		if torus {
			m = topology.NewTorus(5, 5)
		}
		plan, err := fault.Random(m, int(nLinks%8), int(nRouters%3), seed)
		if err != nil {
			t.Skip("requested damage exceeds the topology's resilience")
		}
		cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
		alg, err := routing.NewFaultDuato(m, cls, plan)
		if err != nil {
			t.Skip("plan disconnects the network")
		}

		// Trace-driven conservation run: a finite workload between live
		// nodes, driven until every message drains. Router faults are
		// modeled by keeping trace endpoints live (the network rejects
		// traces that could target dead NIs).
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		var live []topology.NodeID
		for id := 0; id < m.N(); id++ {
			if !plan.NodeDead(topology.NodeID(id)) {
				live = append(live, topology.NodeID(id))
			}
		}
		nMsgs := 50 + rng.Intn(200)
		msgs := make([]traffic.TraceMsg, 0, nMsgs)
		for i := 0; i < nMsgs; i++ {
			src := live[rng.Intn(len(live))]
			dst := live[rng.Intn(len(live))]
			if src == dst {
				continue
			}
			msgs = append(msgs, traffic.TraceMsg{
				At:     int64(rng.Intn(4000)),
				Src:    src,
				Dst:    dst,
				Length: 1 + rng.Intn(20),
			})
		}
		if len(msgs) == 0 {
			t.Skip("degenerate trace")
		}
		trace, err := traffic.NewTrace(msgs)
		if err != nil {
			t.Fatal(err)
		}
		linkPlan := plan
		if plan.NumRouters() > 0 {
			// Same link damage without the dead routers for the trace leg.
			if linkPlan, err = fault.New(m, plan.Links(), nil); err != nil {
				t.Fatal(err)
			}
			if alg, err = routing.NewFaultDuato(m, cls, linkPlan); err != nil {
				t.Skip("link-only plan disconnects the network")
			}
		}
		sel := selection.LRU
		if notify {
			sel = selection.NotifyLRU
		}
		cfg := Config{
			Mesh:      m,
			Router:    router.Config{NumVCs: 4, BufDepth: 20, OutDepth: 4, LookAhead: la},
			LinkDelay: 1,
			Algorithm: alg,
			Class:     cls,
			Table:     table.KindES,
			Faults:    linkPlan,
			Selection: sel,
			Trace:     trace,
			MsgLen:    20,
			Seed:      seed,
			Shards:    1 + int(shards%6),
			EventMode: events,
		}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		n := New(cfg)
		delivered := make(map[flow.MessageID]bool, len(msgs))
		var linkFlits uint64
		n.onArrive = func(msg *flow.Message, now int64) {
			if delivered[msg.ID] {
				t.Fatalf("message %d delivered twice", msg.ID)
			}
			delivered[msg.ID] = true
			linkFlits += uint64(msg.Hops) * uint64(msg.Length)
		}
		run := n.Run(RunParams{MeasureMessages: len(msgs)})
		n.onArrive = nil
		if run.Saturated {
			t.Fatalf("finite trace over faulted %s did not drain: %s", m, run.SatReason)
		}
		if len(delivered) != len(msgs) {
			t.Fatalf("delivered %d of %d messages", len(delivered), len(msgs))
		}
		if n.Occupancy() != 0 || n.scanOccupancy() != 0 {
			t.Fatalf("drained network still buffers %d flits", n.Occupancy())
		}
		if n.QueuedMessages() != 0 || n.scanQueued() != 0 {
			t.Fatalf("drained network still queues %d messages", n.QueuedMessages())
		}
		if got := n.TotalLinkFlits(); got != linkFlits {
			t.Fatalf("link flit conservation: traversals %d != sum(hops*len) %d", got, linkFlits)
		}
		for _, s := range n.LinkStats() {
			if s.Port != topology.PortLocal && linkPlan.LinkDead(s.From, s.Port) && s.Flits != 0 {
				t.Fatalf("dead link %d/%s carried %d flits", s.From, m.PortName(s.Port), s.Flits)
			}
		}
	})
}
