package network

import (
	"math/bits"
)

// activeSet is the work list at the heart of the active-set cycle kernel:
// a bitmap over component indices (routers or NIs). Components register
// when they gain work and deregister when they go quiescent, so Step
// visits only active components instead of ticking the whole network.
// Under sharded stepping each shard owns a private activeSet over its
// node band (indexed by node id minus the band's base), so concurrent
// shards never share a bitmap word.
//
// Determinism contract: forEach visits members in ascending index order —
// the same order the pre-active-set kernel ticked all components in — so
// skipping idle components never reorders the work that does happen. The
// callback may drop the component it is visiting (or any other member);
// additions made while iterating take effect the next cycle's iteration
// at the latest (the kernel only adds between phases, never mid-phase).
//
// A bitmap costs one word scan per 64 components per cycle even when the
// network is empty; up to tens of thousands of nodes that is cheaper
// than maintaining a sorted member list (add/drop are single bit ops and
// iteration is a TrailingZeros walk). A two-level summary bitmap would
// take over beyond that scale.
type activeSet struct {
	words []uint64
}

func newActiveSet(n int) activeSet {
	return activeSet{words: make([]uint64, (n+63)/64)}
}

// add registers a component; adding a member is a no-op.
func (s *activeSet) add(i int) {
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// has reports membership (tests and invariant checks).
func (s *activeSet) has(i int) bool {
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// forEach visits every member in ascending order. The callback returns
// false to deregister the visited component.
func (s *activeSet) forEach(visit func(id int32) bool) {
	for w := range s.words {
		for m := s.words[w]; m != 0; m &= m - 1 {
			id := int32(w<<6 + bits.TrailingZeros64(m))
			if !visit(id) {
				s.words[w] &^= 1 << (uint(id) & 63)
			}
		}
	}
}

// wake is a scheduled reactivation of an idle NI: at the cycle `at` its
// traffic process next produces a message.
type wake struct {
	at   int64
	node int32
}

// wakeHeap is a min-heap of NI wakes ordered by (at, node). Idle NIs park
// here instead of ticking every cycle; Step pops the due entries each
// cycle. An idle NI has exactly one entry (none once its process is
// exhausted), so the heap never exceeds the node count.
type wakeHeap struct {
	h []wake
}

func (w *wakeHeap) len() int  { return len(w.h) }
func (w *wakeHeap) top() wake { return w.h[0] }

func (w *wakeHeap) less(i, j int) bool {
	return w.h[i].at < w.h[j].at || (w.h[i].at == w.h[j].at && w.h[i].node < w.h[j].node)
}

func (w *wakeHeap) push(e wake) {
	w.h = append(w.h, e)
	i := len(w.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !w.less(i, p) {
			break
		}
		w.h[i], w.h[p] = w.h[p], w.h[i]
		i = p
	}
}

func (w *wakeHeap) pop() wake {
	top := w.h[0]
	last := len(w.h) - 1
	w.h[0] = w.h[last]
	w.h = w.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(w.h) && w.less(l, m) {
			m = l
		}
		if r < len(w.h) && w.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		w.h[i], w.h[m] = w.h[m], w.h[i]
		i = m
	}
	return top
}
