// Package network assembles PROUD/LA-PROUD routers into a complete direct
// network: bidirectional links with configurable delay, credit return
// channels, per-node network interfaces with Poisson traffic generation,
// and the cycle loop with the paper's measurement methodology (warm-up
// messages excluded, statistics over a fixed count of measured messages,
// saturation guards).
//
// Two optional layers model networks that fail and recover mid-run. A
// fault schedule (Config.Schedule + Config.EpochTables) applies timed
// link/router down/up transitions at the shard barrier — dropping the
// state committed to dying equipment plus the messages the
// reconfiguration drain retires, swapping routing tables, and
// recomputing flow control; see the commentary in dynfault.go for the
// exact semantics and the deadlock argument. The end-to-end reliability
// layer (Config.Reliability) adds sender-timeout retransmission with
// receiver-side duplicate suppression at the NIs, turning those losses
// into exactly-once delivery; see reliability.go.
//
// Determinism: a run is bit-reproducible for a fixed configuration, and
// cycle-kernel runs (scheduled or not) are additionally bit-identical
// across shard counts. The event kernel is deterministic per (config,
// shard count) and observationally equivalent to the cycle kernel, but
// not bit-identical across shard counts.
package network

import (
	"fmt"

	"lapses/internal/fault"
	"lapses/internal/flow"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/stats"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// Config assembles one network.
type Config struct {
	Mesh *topology.Mesh
	// Router is the per-router microarchitecture.
	Router router.Config
	// LinkDelay is the wire latency between routers, cycles (Table 2: 1).
	LinkDelay int
	// Algorithm is the routing policy programmed into every table.
	Algorithm routing.Algorithm
	// Class is the VC partition used by the algorithm.
	Class routing.Class
	// Table selects the table organization.
	Table table.Kind
	// Tables, when non-nil, supplies a prebuilt table per node (indexed
	// by node id) instead of building them here. Tables are immutable
	// after construction, so callers running many simulations over the
	// same topology and routing policy share one set across runs (see
	// core's plumbing cache).
	Tables []table.Table
	// Selection is the path-selection heuristic.
	Selection selection.Kind
	// Faults, when non-nil and non-empty, degrades the topology: failed
	// links carry no flits and no credits (their wiring is simply absent,
	// so any attempt to use one panics), and NIs on failed routers inject
	// nothing. The Algorithm and Tables must already route around the
	// plan (core builds fault-aware ones); the network only enforces the
	// physical consequences.
	Faults *fault.Plan
	// Schedule, when non-nil, makes the fault set change mid-run: links
	// and routers fail and heal at their scheduled cycles. All links are
	// wired (liveness is dynamic); at each transition the network purges
	// every flit committed to dying equipment, swaps in the epoch's
	// routing tables, and recomputes flow-control credits from global
	// state (see dynfault.go). Mutually exclusive with Faults; requires
	// EpochTables.
	Schedule *fault.Schedule
	// EpochTables supplies one prebuilt table set per schedule epoch
	// (EpochTables[e][node]), each built over that epoch's live subgraph.
	// Required when Schedule is non-nil; see BuildEpochTables.
	EpochTables [][]table.Table
	// Reliability, when non-nil, turns on the end-to-end NI reliability
	// layer: sequence numbers per (src, dst) stream, piggybacked acks,
	// timeout retransmission with exponential backoff, receiver dedup —
	// exactly-once delivery across fault transients (see reliability.go).
	Reliability *Reliability
	// Pattern drives destination choice.
	Pattern traffic.Pattern
	// Trace, when non-nil, replaces the Pattern/MsgRate open-loop
	// generator with trace-driven injection (application workloads).
	Trace *traffic.Trace
	// MsgRate is the per-node message generation rate (messages/cycle).
	MsgRate float64
	// Burst, when non-nil, replaces each node's stationary Poisson source
	// with a two-state MMPP on/off source at the same mean rate (see
	// traffic.Burst). Trace workloads ignore it.
	Burst *traffic.Burst
	// QoSHiFrac is the probability a generated message is high-class
	// (flow.Message.Class 1); combined with Router.ResvVCs it reserves
	// adaptive VCs for that class. 0 keeps all traffic best-effort.
	QoSHiFrac float64
	// MsgLen is the message length in flits.
	MsgLen int
	// Seed makes runs reproducible.
	Seed int64
	// Shards splits the mesh into that many contiguous row bands, each
	// stepped by its own worker inside Run (deterministic sharded
	// stepping; see shard.go). Results are bit-identical for every shard
	// count; <= 1 means a single shard. The value is clamped to the
	// radix of the slowest-varying dimension so every shard owns at
	// least one full row.
	Shards int
	// EventMode switches flit arrival to event-driven execution: a flit
	// landing on a quiescent router takes the express path (see
	// router.EventFlit), transiting in O(1) work per flit with send and
	// credit times computed from the pipeline's timing constants instead
	// of emulated stage by stage. Routers carrying buffered traffic fall
	// back to the unchanged cycle-accurate pipeline. Event mode is
	// observationally equivalent to cycle mode (per-message latency is
	// exact on uncontended paths, and distributions match within
	// measurement noise under load) but not bit-identical: admission
	// decisions consult arbiter and selector state at arrival time rather
	// than at the emulated SA cycle. Runs remain deterministic for a
	// fixed configuration and shard count.
	EventMode bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Mesh == nil {
		return fmt.Errorf("network: nil mesh")
	}
	if err := c.Router.Validate(); err != nil {
		return err
	}
	if err := c.Class.Validate(); err != nil {
		return err
	}
	if c.LinkDelay < 1 {
		return fmt.Errorf("network: LinkDelay %d < 1", c.LinkDelay)
	}
	if c.Algorithm == nil {
		return fmt.Errorf("network: algorithm required")
	}
	if c.Pattern == nil && c.Trace == nil {
		return fmt.Errorf("network: a pattern or a trace is required")
	}
	if !c.Faults.Fits(c.Mesh) {
		return fmt.Errorf("network: fault plan %s was built for a different topology than %s", c.Faults, c.Mesh)
	}
	if c.Trace != nil && c.Faults.NumRouters() > 0 {
		return fmt.Errorf("network: trace workloads require fault plans without dead routers (trace endpoints cannot be filtered)")
	}
	if c.Schedule != nil {
		if !c.Faults.Empty() {
			return fmt.Errorf("network: Faults and Schedule are mutually exclusive")
		}
		if !c.Schedule.Fits(c.Mesh) {
			return fmt.Errorf("network: fault schedule %s was built for a different topology than %s", c.Schedule, c.Mesh)
		}
		if len(c.EpochTables) != c.Schedule.Epochs() {
			return fmt.Errorf("network: schedule has %d epochs but %d table sets were supplied", c.Schedule.Epochs(), len(c.EpochTables))
		}
		if c.Trace != nil {
			for _, ev := range c.Schedule.Events() {
				if ev.IsRouter {
					return fmt.Errorf("network: trace workloads require fault schedules without router events (trace endpoints cannot be filtered)")
				}
			}
		}
	}
	if c.Reliability != nil {
		if err := c.Reliability.Validate(); err != nil {
			return err
		}
	}
	if c.MsgLen < 1 {
		return fmt.Errorf("network: MsgLen %d < 1", c.MsgLen)
	}
	if c.MsgRate < 0 {
		return fmt.Errorf("network: negative MsgRate")
	}
	if c.Burst != nil {
		if err := c.Burst.Validate(); err != nil {
			return err
		}
	}
	if c.QoSHiFrac < 0 || c.QoSHiFrac > 1 {
		return fmt.Errorf("network: QoSHiFrac %g outside [0,1]", c.QoSHiFrac)
	}
	return nil
}

// flitEvent is a flit in flight on a wire, due to latch into its
// destination router's input buffer. 24 bytes; copied twice per link
// traversal. In event mode, worm marks the event as an entire message
// crossing the wire as one unit: fl is the head flit and the remaining
// flits of fl.Msg follow at link rate behind it (see router.EventWorm).
type flitEvent struct {
	fl   flow.Flit
	node topology.NodeID
	port topology.Port
	vc   flow.VCID
	worm bool
}

// creditEvent is a credit return (or, in event mode, a deferred express
// VC release) due at its cycle. Credits are a large share of all wheel
// traffic, so the event stays small. Flit and credit events ride separate
// wheels: within a cycle they touch disjoint state (input buffers vs
// output credit counters), so processing one class before the other is
// indistinguishable from the old interleaved order.
type creditEvent struct {
	node topology.NodeID
	n    int32 // credit count: 1 on the cycle path, a whole worm batched in event mode
	port topology.Port
	vc   flow.VCID
	kind uint8
	// cong piggybacks the credit issuer's quantized congestion level
	// (router.CongestionLevel) on creditToRouter events when a
	// notification-aware selector is configured; 0 otherwise. It is read
	// while the issuing router's own shard steps (phase A) and delivered
	// while the receiving router's shard drains credits, so it crosses the
	// barrier exactly like the credit and stays shard-invariant.
	cong uint8
}

const (
	// creditToRouter returns n credits to a router output VC.
	creditToRouter uint8 = iota
	// creditToNI returns n injection credits to a node's NI.
	creditToNI
	// creditRelease frees the express output VC a worm transit claimed
	// (event mode only; n is unused).
	creditRelease
)

// wheel is a fixed-horizon event calendar for link and credit traversal.
// Its slots are a ring of reusable typed buffers: take hands the caller
// exclusive ownership of a slot's events and installs the spare buffer in
// its place, so buffers rotate through the slots and the steady state
// allocates nothing once each buffer has grown to its high-water mark.
type wheel[E any] struct {
	slots [][]E
	mask  int64
	// count tracks the events currently scheduled across all slots, so
	// the idle-cycle fast-forward check can test wheel emptiness without
	// scanning the ring.
	count int
	// spare is the drained buffer from the previous take, reinstalled on
	// the next one. Holding it for a full cycle (instead of truncating the
	// slot in place) makes ownership explicit: a schedule landing in the
	// slot just taken appends to a different buffer than the slice the
	// caller is still iterating.
	spare []E
}

func newWheel[E any](horizon int) *wheel[E] {
	// Round the slot count up to a power of two so the per-event slot
	// computation is a mask, not a division (extra slots are harmless —
	// events only ever land up to `horizon` cycles ahead).
	n := 1
	for n < horizon {
		n <<= 1
	}
	return &wheel[E]{slots: make([][]E, n), mask: int64(n - 1)}
}

func (w *wheel[E]) schedule(at int64, e E) {
	i := at & w.mask
	w.slots[i] = append(w.slots[i], e)
	w.count++
}

// take returns the events due at cycle `at` and transfers their slot's
// buffer to the caller until the next take. The returned slice stays
// intact across any same-cycle schedule calls; it is recycled one take
// later, so callers must finish with it within the cycle.
func (w *wheel[E]) take(at int64) []E {
	i := at & w.mask
	evs := w.slots[i]
	w.slots[i] = w.spare[:0]
	w.spare = evs[:0]
	w.count -= len(evs)
	return evs
}

// Network is a complete simulated interconnect.
type Network struct {
	cfg     Config
	m       *topology.Mesh
	routers []*router.Router
	nis     []*ni
	now     int64

	// shards carry all per-cycle mutable scheduler state — wheels, active
	// bitmaps, wake heaps, occupancy counters, message pools, mailboxes —
	// partitioned into contiguous node bands (a single shard when
	// Config.Shards <= 1). nodeShard maps a node id to its shard index.
	// lastOcc shadows each router's occupancy in a dense array so the
	// tick loop computes deltas without an extra load from every router's
	// struct; it is indexed per node and therefore safely shared.
	shards    []*shard
	nodeShard []int32
	lastOcc   []int32

	// par is non-nil while Run's phase-A workers are up; Step dispatches
	// shards to them instead of stepping inline. Execution strategy only:
	// results are identical either way.
	par *parRun

	// ff enables idle-cycle fast-forward (set inside Run): when the
	// network is globally idle, Step jumps now to the next NI wake
	// instead of ticking empty cycles, up to ffLimit (Run's cycle
	// budget). ffSkipped counts the cycles skipped this way; they are
	// simulated time (now advances over them) during which provably
	// nothing happened.
	ff        bool
	ffLimit   int64
	ffSkipped int64

	// recycle enables pooling of delivered Message objects for reuse by
	// the NIs; only inside Run, where no caller retains message pointers
	// past the arrival callback.
	recycle bool

	// links caches, per (node, port), the downstream latch point — the
	// neighbor and its opposite port — so the per-flit send and credit
	// paths never recompute mesh coordinates. ports caches m.NumPorts().
	links []link
	ports int

	nextMsg   flow.MessageID
	delivered int64 // total messages delivered
	onArrive  func(msg *flow.Message, now int64)

	// Fault-schedule state (dynfault.go). plan is the fault set currently
	// in effect — cfg.Faults on the static path, the active epoch's plan
	// under a schedule. It is written only between cycles (Step's
	// preamble), so phase-A readers never race.
	plan        *fault.Plan
	sched       *fault.Schedule
	epochTables [][]table.Table
	epoch       int
	// Barrier-owned loss counters; per-shard counters (retransmits,
	// duplicates) live on the shards and are summed by accessors.
	droppedFlits int64
	droppedMsgs  int64
	reconv       int64
	// onLost fires at the barrier for every permanently lost message:
	// purge victims and dead-destination drops without reliability,
	// abandoned (retry-exhausted) messages with it. Run counts in-window
	// losses toward its completion target so finite workloads drain.
	onLost func(id flow.MessageID)
	// windows counts first deliveries per 2^windowShift-cycle bucket when
	// a schedule is active; the recovery-time metric reads it.
	windows []int64

	// rel is the normalized reliability configuration; nextCtrl hands out
	// negative IDs to pure-ack control messages at the barrier.
	rel      *Reliability
	nextCtrl flow.MessageID

	// notify is set when the configured selector consumes congestion
	// notifications: credits then piggyback the issuer's quantized
	// congestion level. Off (the default for every local heuristic) the
	// credit path is byte-identical to the pre-notification kernel.
	notify bool
}

// link is one direction of a wired channel: the node and input port that
// flits leaving through the owning (node, port) pair arrive at.
type link struct {
	node topology.NodeID
	port topology.Port
	ok   bool
}

// New builds and wires a network. It panics on invalid configuration,
// which is always a programming error in the harness.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := cfg.Mesh
	if !cfg.Faults.Empty() || cfg.Schedule != nil {
		// The non-minimal up*/down* escape of fault-aware routing is
		// deadlock-free only under the stay-on-escape discipline; see
		// router.Config.EscapeCommit. A schedule needs it from cycle 0:
		// traffic in flight at a fault transition must already obey the
		// discipline the faulted epochs require.
		cfg.Router.EscapeCommit = true
	}
	if cfg.Faults.NumRouters() > 0 && cfg.Pattern != nil {
		// Dead routers generate nothing and receive nothing: redraw (or
		// silence) destinations that land on one.
		plan := cfg.Faults
		cfg.Pattern = traffic.FilterDest(cfg.Pattern, func(id topology.NodeID) bool {
			return !plan.NodeDead(id)
		})
	}
	n := &Network{
		cfg:     cfg,
		m:       m,
		routers: make([]*router.Router, m.N()),
		nis:     make([]*ni, m.N()),
		notify:  cfg.Selection.IsNotify(),
		plan:    cfg.Faults,
		sched:   cfg.Schedule,
	}
	if cfg.Schedule != nil {
		n.epochTables = cfg.EpochTables
		n.plan = cfg.Schedule.Plan(0)
	}
	if cfg.Reliability != nil {
		rel := cfg.Reliability.withDefaults()
		n.rel = &rel
	}
	bounds := shardBounds(m, cfg.Shards)
	n.shards = make([]*shard, len(bounds)-1)
	n.nodeShard = make([]int32, m.N())
	// Cycle mode schedules events at most 1+LinkDelay cycles out. Event
	// mode reaches further: a worm transit's batched credit and deferred
	// VC release land up to BufDepth+4+LinkDelay cycles after the head's
	// arrival, and unpacking a worm schedules its trailing flits up to
	// BufDepth-1 cycles ahead (worms only exist for messages no longer
	// than the buffer depth).
	horizon := cfg.LinkDelay + 2
	if cfg.EventMode {
		horizon = cfg.LinkDelay + cfg.Router.BufDepth + 6
	}
	for b := range n.shards {
		sh := &shard{
			idx:        b,
			lo:         bounds[b],
			hi:         bounds[b+1],
			flits:      newWheel[flitEvent](horizon),
			credits:    newWheel[creditEvent](horizon),
			outFlits:   make([][]timedFlit, len(bounds)-1),
			outCredits: make([][]timedCredit, len(bounds)-1),
		}
		sh.actRouters = newActiveSet(sh.hi - sh.lo)
		sh.actNIs = newActiveSet(sh.hi - sh.lo)
		for id := sh.lo; id < sh.hi; id++ {
			n.nodeShard[id] = int32(b)
		}
		n.shards[b] = sh
	}
	for id := 0; id < m.N(); id++ {
		node := topology.NodeID(id)
		tbl := table.Table(nil)
		switch {
		case cfg.Schedule != nil:
			tbl = n.epochTables[0][id]
		case cfg.Tables != nil:
			tbl = cfg.Tables[id]
		default:
			tbl = table.Build(cfg.Table, m, cfg.Algorithm, cfg.Class, node)
		}
		sel := selection.New(cfg.Selection, cfg.Seed+int64(id)*7919)
		n.routers[id] = router.New(node, m, cfg.Router, tbl, sel)
		if cfg.Schedule != nil {
			n.routers[id].SetDeadPorts(n.deadPortMask(node))
		}
	}
	n.ports = m.NumPorts()
	n.links = make([]link, m.N()*m.NumPorts())
	for id := 0; id < m.N(); id++ {
		for p := 0; p < m.NumPorts(); p++ {
			// A statically failed link is simply not wired: it can carry
			// neither flits nor credits, and a router erroneously routing
			// onto one hits the missing-link panic in sendFunc. Under a
			// schedule every link is wired — liveness is dynamic, enforced
			// by dead-port gating and the transition purge instead.
			if cfg.Schedule == nil && cfg.Faults.LinkDead(topology.NodeID(id), topology.Port(p)) {
				continue
			}
			if nb, ok := m.Neighbor(topology.NodeID(id), topology.Port(p)); ok {
				n.links[id*m.NumPorts()+p] = link{node: nb, port: topology.Opposite(topology.Port(p)), ok: true}
			}
		}
	}
	for id := 0; id < m.N(); id++ {
		node := topology.NodeID(id)
		r := n.routers[id]
		r.SetFabric(n.sendFunc(node), n.creditFunc(node), n.deliverFunc(node))
		if cfg.EventMode {
			r.SetEventFabric(n.wormSendFunc(node), n.creditNFunc(node), n.releaseFunc(node))
		}
		n.nis[id] = newNI(n, node, r)
	}
	n.lastOcc = make([]int32, m.N())
	// Every NI starts idle; park each on the wake heap at its first
	// arrival (nodes whose process never fires stay dormant forever).
	// NIs on statically dead routers never register: they inject nothing.
	// Under a schedule every NI registers — a node dead now may heal, and
	// its traffic process must keep consuming its due events meanwhile.
	for id, x := range n.nis {
		if cfg.Schedule == nil && cfg.Faults.NodeDead(topology.NodeID(id)) {
			continue
		}
		if at, ok := x.nextWake(); ok {
			x.sh.wakes.push(wake{at: at, node: int32(id)})
		}
	}
	return n
}

// sendFunc routes a flit leaving node through port onto the wire; it
// arrives (is latched) at the neighbor after the output register plus the
// link delay. A flit staying inside the sender's shard is scheduled
// directly on that shard's wheel; one crossing a shard boundary is
// appended to the sender shard's outbound mailbox and drained into the
// destination wheel at the cycle barrier — always before its due cycle,
// because arrival is at least two cycles out.
func (n *Network) sendFunc(node topology.NodeID) router.SendFunc {
	links := n.links[int(node)*n.ports : (int(node)+1)*n.ports]
	src := n.shards[n.nodeShard[node]]
	return func(from topology.NodeID, p topology.Port, v flow.VCID, fl flow.Flit, now int64) {
		l := links[p]
		if !l.ok {
			panic(fmt.Sprintf("network: node %d sent out port %d with no link", node, p))
		}
		at := now + 1 + int64(n.cfg.LinkDelay)
		e := flitEvent{node: l.node, port: l.port, vc: v, fl: fl}
		if d := n.nodeShard[l.node]; int(d) == src.idx {
			src.flits.schedule(at, e)
		} else {
			src.outFlits[d] = append(src.outFlits[d], timedFlit{at: at, e: e})
		}
	}
}

// creditFunc returns a freed input-buffer slot upstream: to the neighbor's
// output VC, or to the local NI for the injection port. Cross-shard
// credits ride the mailbox like flits do.
func (n *Network) creditFunc(node topology.NodeID) router.CreditFunc {
	links := n.links[int(node)*n.ports : (int(node)+1)*n.ports]
	src := n.shards[n.nodeShard[node]]
	return func(from topology.NodeID, p topology.Port, v flow.VCID, now int64) {
		at := now + 1 + int64(n.cfg.LinkDelay)
		if p == topology.PortLocal {
			src.credits.schedule(at, creditEvent{kind: creditToNI, node: node, vc: v, n: 1})
			return
		}
		l := links[p]
		if !l.ok {
			panic(fmt.Sprintf("network: credit out port %d with no link", p))
		}
		e := creditEvent{node: l.node, port: l.port, vc: v, n: 1}
		if n.notify {
			// Sample the issuing router's congestion at credit time: the
			// closure runs during this node's own phase-A step, so the
			// read is shard-local and the run stays bit-identical for any
			// shard count.
			e.cong = n.routers[node].CongestionLevel()
		}
		if d := n.nodeShard[l.node]; int(d) == src.idx {
			src.credits.schedule(at, e)
		} else {
			src.outCredits[d] = append(src.outCredits[d], timedCredit{at: at, e: e})
		}
	}
}

// wormSendFunc is sendFunc's event-mode sibling: the flit is the head of
// an entire worm crossing the wire as one event (see router.EventWorm).
func (n *Network) wormSendFunc(node topology.NodeID) router.WormSendFunc {
	links := n.links[int(node)*n.ports : (int(node)+1)*n.ports]
	src := n.shards[n.nodeShard[node]]
	return func(from topology.NodeID, p topology.Port, v flow.VCID, fl flow.Flit, now int64) {
		l := links[p]
		if !l.ok {
			panic(fmt.Sprintf("network: node %d sent worm out port %d with no link", node, p))
		}
		at := now + 1 + int64(n.cfg.LinkDelay)
		e := flitEvent{node: l.node, port: l.port, vc: v, fl: fl, worm: true}
		if d := n.nodeShard[l.node]; int(d) == src.idx {
			src.flits.schedule(at, e)
		} else {
			src.outFlits[d] = append(src.outFlits[d], timedFlit{at: at, e: e})
		}
	}
}

// creditNFunc is creditFunc's batched sibling: count credits return in one
// event, due when a worm transit's tail would have cleared the downstream
// crossbar.
func (n *Network) creditNFunc(node topology.NodeID) router.CreditNFunc {
	links := n.links[int(node)*n.ports : (int(node)+1)*n.ports]
	src := n.shards[n.nodeShard[node]]
	return func(from topology.NodeID, p topology.Port, v flow.VCID, count int, now int64) {
		at := now + 1 + int64(n.cfg.LinkDelay)
		if p == topology.PortLocal {
			src.credits.schedule(at, creditEvent{kind: creditToNI, node: node, vc: v, n: int32(count)})
			return
		}
		l := links[p]
		if !l.ok {
			panic(fmt.Sprintf("network: batched credit out port %d with no link", p))
		}
		e := creditEvent{node: l.node, port: l.port, vc: v, n: int32(count)}
		if n.notify {
			e.cong = n.routers[node].CongestionLevel()
		}
		if d := n.nodeShard[l.node]; int(d) == src.idx {
			src.credits.schedule(at, e)
		} else {
			src.outCredits[d] = append(src.outCredits[d], timedCredit{at: at, e: e})
		}
	}
}

// releaseFunc schedules an event-mode VC release on the router's own
// shard: a worm transit frees its claimed output VC the cycle after its
// tail leaves the output stage. Releases are always intra-shard (a router
// releases its own VC), so they never ride a mailbox.
func (n *Network) releaseFunc(node topology.NodeID) router.ReleaseFunc {
	src := n.shards[n.nodeShard[node]]
	return func(p topology.Port, v flow.VCID, at int64) {
		src.credits.schedule(at, creditEvent{kind: creditRelease, node: node, port: p, vc: v})
	}
}

// deliverFunc hands ejected flits to the destination NI.
func (n *Network) deliverFunc(node topology.NodeID) router.DeliverFunc {
	return func(fl flow.Flit, now int64) {
		n.nis[node].deliver(fl, now)
	}
}

// Step advances the network one cycle: deliver due events, let active NIs
// generate and inject, then tick active routers. Idle components are
// skipped entirely — a router registers on the active set when a flit is
// latched into it and deregisters when its buffers drain; an NI
// deregisters when its source queue and injection streams empty, parking
// on the wake heap until its traffic process next fires. Skipped
// components would have done no observable work (an idle router's Tick
// returns immediately; an idle NI's tick only polls its injector), so the
// active-set kernel is cycle-for-cycle identical to ticking everything.
//
// The cycle executes as phase A over every shard (in parallel when Run's
// workers are up, inline otherwise — identical results either way; see
// shard.go) followed by the serial phase-B barrier. When fast-forward is
// armed (inside Run) and the network is globally idle, Step first jumps
// now to the next NI wake: the skipped cycles are simulated time during
// which provably nothing could happen, so the jump is indistinguishable
// from ticking them one by one.
func (n *Network) Step() {
	now := n.now
	if n.ff && n.idle() {
		target := n.nextWakeAt()
		if target < 0 || target >= n.ffLimit {
			// The next wake (if any) lies at or beyond the cycle budget,
			// so the unskipped kernel would tick empty cycles up to the
			// budget and stop without ever processing it: advance
			// straight there so the Run loop's guard trips at exactly
			// the same cycle.
			if n.ffLimit > now {
				n.ffSkipped += n.ffLimit - now
				n.now = n.ffLimit
			} else {
				n.now = now + 1
			}
			return
		}
		if target > now {
			n.ffSkipped += target - now
			now = target
		}
	}
	// Apply fault-schedule transitions due at or before this cycle, on the
	// stepping goroutine, strictly before any shard's phase A: every shard
	// observes the same epoch for the whole cycle, so shards=N stays
	// bit-identical to shards=1. The fast-forward jump above is safe to
	// cross transitions: it only fires when the network is provably empty,
	// and advanceEpochs replays every skipped transition here in order.
	if n.sched != nil {
		n.advanceEpochs(now)
	}
	if p := n.par; p != nil {
		p.wg.Add(len(p.start))
		for _, ch := range p.start {
			ch <- now
		}
		n.stepShard(n.shards[0], now)
		p.wg.Wait()
	} else {
		for _, sh := range n.shards {
			n.stepShard(sh, now)
		}
	}
	n.finishCycle(now)
	n.now = now + 1
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Occupancy returns the number of flits buffered across all routers,
// maintained incrementally (it must always equal the sum of per-router
// occupancies; tests assert this).
func (n *Network) Occupancy() int {
	total := 0
	for _, sh := range n.shards {
		total += sh.totalOcc
	}
	return total
}

// QueuedMessages returns the number of messages waiting or streaming in
// source queues, maintained incrementally.
func (n *Network) QueuedMessages() int {
	total := 0
	for _, sh := range n.shards {
		total += sh.totalQueued
	}
	return total
}

// SkippedCycles returns how many cycles idle-cycle fast-forward jumped
// over (simulated but not individually executed). Zero outside Run.
func (n *Network) SkippedCycles() int64 { return n.ffSkipped }

// Delivered returns the number of fully delivered messages.
func (n *Network) Delivered() int64 { return n.delivered }

// Router exposes a router for inspection in tests.
func (n *Network) Router(id topology.NodeID) *router.Router { return n.routers[id] }

// traceHorizon returns the last injection time of the configured trace.
func (n *Network) traceHorizon() int64 {
	var last int64
	for _, ni := range n.nis {
		if ni.trace != nil {
			for _, tm := range ni.trace.Due(1 << 62) {
				if tm.At > last {
					last = tm.At
				}
			}
		}
	}
	// Due consumed the cursors; rebuild them for the actual run.
	for _, ni := range n.nis {
		if n.cfg.Trace != nil {
			ni.trace = n.cfg.Trace.Cursor(ni.node)
		}
	}
	return last
}

// RunParams controls one measured simulation (section 2.2's methodology).
type RunParams struct {
	// WarmupMessages are generated and delivered but not measured.
	WarmupMessages int
	// MeasureMessages is the number of messages statistics cover.
	MeasureMessages int
	// MaxCycles aborts the run (marking saturation) when exceeded; 0
	// derives a budget from the offered load.
	MaxCycles int64
	// SatLatency marks the run saturated once the running mean latency
	// exceeds it; 0 uses a default of 5000 cycles.
	SatLatency float64
	// BatchSize for latency confidence intervals; 0 uses measure/10.
	BatchSize int64
	// Progress guards against protocol deadlock: if no flit is delivered
	// for this many cycles while traffic is in flight the run aborts.
	// 0 uses 50000.
	ProgressGuard int64
	// NoFastForward disables idle-cycle fast-forward for this run, so
	// every cycle is executed individually. Results are bit-identical
	// either way (the fast-forward only skips cycles in which provably
	// nothing happens); the knob exists for regression tests and
	// diagnostics.
	NoFastForward bool
	// Adaptive, when non-nil, switches the run to adaptive measurement:
	// every delivered message in [WarmupMessages, WarmupMessages+
	// MeasureMessages) is fed to the controller (callers normally pass
	// WarmupMessages = 0 — warmup truncation is the controller's job)
	// and the loop ends as soon as the controller reports Stopped(),
	// instead of waiting for the full MeasureMessages count. The
	// controller consumes deliveries in barrier replay order, so
	// adaptive runs stay bit-identical across shard counts.
	Adaptive *stats.Adaptive
}

// Run executes the measurement loop: inject continuously, measure messages
// [WarmupMessages, WarmupMessages+MeasureMessages), and stop when every
// measured message has been delivered or a saturation guard trips.
func (n *Network) Run(p RunParams) *stats.Run {
	if p.MeasureMessages <= 0 {
		panic("network: MeasureMessages must be positive")
	}
	if p.SatLatency == 0 {
		p.SatLatency = 5000
	}
	if p.BatchSize == 0 {
		p.BatchSize = int64(p.MeasureMessages / 10)
		if p.BatchSize == 0 {
			p.BatchSize = 1
		}
	}
	if p.ProgressGuard == 0 {
		p.ProgressGuard = 50000
	}
	if p.MaxCycles == 0 {
		if n.cfg.Trace != nil {
			p.MaxCycles = n.traceHorizon() + 200000
		} else {
			aggregate := n.cfg.MsgRate * float64(n.m.N())
			if aggregate <= 0 {
				panic("network: zero injection rate with no cycle budget")
			}
			need := float64(p.WarmupMessages+p.MeasureMessages) / aggregate
			p.MaxCycles = int64(need*8) + 50000
		}
	}

	run := stats.NewRun(n.m.N(), p.BatchSize)
	lo := flow.MessageID(p.WarmupMessages)
	hi := lo + flow.MessageID(p.MeasureMessages)
	measuredDone := 0
	var firstDeliver, lastDeliver int64 = -1, -1
	lastProgress := n.now

	// Inside Run no caller can retain message pointers past the arrival
	// callback, so delivered messages are recycled through the pool for
	// the whole warmup+measure loop.
	n.recycle = true
	defer func() { n.recycle = false }()

	// Arm idle-cycle fast-forward (bounded by the cycle budget) and the
	// phase-A workers for the duration of the loop. Both are execution
	// strategies, not semantics: results are bit-identical with them off.
	if !p.NoFastForward {
		n.ff = true
		n.ffLimit = p.MaxCycles
		defer func() { n.ff = false }()
	}
	stopWorkers := n.startWorkers()
	defer stopWorkers()

	// An onArrive observer installed before Run (a test seam) keeps
	// firing for every delivery; Run's measurement hook chains after it
	// and the observer is restored on exit.
	prev := n.onArrive
	n.onArrive = func(msg *flow.Message, now int64) {
		if prev != nil {
			prev(msg, now)
		}
		lastProgress = now
		if msg.ID < lo || msg.ID >= hi {
			return
		}
		lat := float64(msg.ArriveTime - msg.CreateTime)
		run.Record(
			lat,
			float64(msg.ArriveTime-msg.InjectTime),
			msg.Hops,
			msg.Length,
		)
		if p.Adaptive != nil {
			p.Adaptive.Add(lat, msg.Length, now)
		}
		measuredDone++
		if firstDeliver < 0 {
			firstDeliver = now
		}
		lastDeliver = now
	}
	defer func() { n.onArrive = prev }()

	// A permanently lost message (dropped at a fault transition without
	// reliability, or abandoned after exhausting retransmissions with it)
	// counts toward completion like a delivery — it will never arrive, so
	// waiting for it would spin the loop into the cycle budget — but
	// records no statistics: Latency.N() over MeasureMessages is the
	// delivered fraction.
	prevLost := n.onLost
	n.onLost = func(id flow.MessageID) {
		if prevLost != nil {
			prevLost(id)
		}
		lastProgress = n.now
		if id >= lo && id < hi {
			measuredDone++
		}
	}
	defer func() { n.onLost = prevLost }()

	for measuredDone < p.MeasureMessages {
		// The adaptive controller ends the loop as soon as it stops
		// (converged, or its own sample ceiling); the message-count
		// condition above stays the backstop. A nil check per cycle
		// keeps the fixed path's loop head branch-predictable instead
		// of an indirect call.
		if p.Adaptive != nil && p.Adaptive.Stopped() {
			break
		}
		n.Step()
		if n.now >= p.MaxCycles {
			run.Saturated = true
			run.SatReason = "cycle budget exhausted"
			break
		}
		if run.Latency.N() >= int64(p.MeasureMessages/10+1) && run.Latency.Mean() > p.SatLatency {
			run.Saturated = true
			run.SatReason = "latency above saturation threshold"
			break
		}
		if n.now-lastProgress > p.ProgressGuard && (n.Occupancy() > 0 || n.QueuedMessages() > 0) {
			run.Saturated = true
			run.SatReason = "no delivery progress (possible deadlock)"
			break
		}
	}
	if firstDeliver >= 0 && lastDeliver > firstDeliver {
		run.Cycles = lastDeliver - firstDeliver
	} else {
		run.Cycles = n.now
	}
	return run
}
