// Package network assembles PROUD/LA-PROUD routers into a complete direct
// network: bidirectional links with configurable delay, credit return
// channels, per-node network interfaces with Poisson traffic generation,
// and the cycle loop with the paper's measurement methodology (warm-up
// messages excluded, statistics over a fixed count of measured messages,
// saturation guards).
package network

import (
	"fmt"

	"lapses/internal/flow"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/stats"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// Config assembles one network.
type Config struct {
	Mesh *topology.Mesh
	// Router is the per-router microarchitecture.
	Router router.Config
	// LinkDelay is the wire latency between routers, cycles (Table 2: 1).
	LinkDelay int
	// Algorithm is the routing policy programmed into every table.
	Algorithm routing.Algorithm
	// Class is the VC partition used by the algorithm.
	Class routing.Class
	// Table selects the table organization.
	Table table.Kind
	// Selection is the path-selection heuristic.
	Selection selection.Kind
	// Pattern drives destination choice.
	Pattern traffic.Pattern
	// Trace, when non-nil, replaces the Pattern/MsgRate open-loop
	// generator with trace-driven injection (application workloads).
	Trace *traffic.Trace
	// MsgRate is the per-node message generation rate (messages/cycle).
	MsgRate float64
	// MsgLen is the message length in flits.
	MsgLen int
	// Seed makes runs reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Mesh == nil {
		return fmt.Errorf("network: nil mesh")
	}
	if err := c.Router.Validate(); err != nil {
		return err
	}
	if err := c.Class.Validate(); err != nil {
		return err
	}
	if c.LinkDelay < 1 {
		return fmt.Errorf("network: LinkDelay %d < 1", c.LinkDelay)
	}
	if c.Algorithm == nil {
		return fmt.Errorf("network: algorithm required")
	}
	if c.Pattern == nil && c.Trace == nil {
		return fmt.Errorf("network: a pattern or a trace is required")
	}
	if c.MsgLen < 1 {
		return fmt.Errorf("network: MsgLen %d < 1", c.MsgLen)
	}
	if c.MsgRate < 0 {
		return fmt.Errorf("network: negative MsgRate")
	}
	return nil
}

// event kinds carried by the timing wheel.
type event struct {
	credit bool
	toNI   bool
	node   topology.NodeID
	port   topology.Port
	vc     flow.VCID
	fl     flow.Flit
}

// wheel is a fixed-horizon event calendar for link and credit traversal.
type wheel struct {
	slots [][]event
}

func newWheel(horizon int) *wheel {
	return &wheel{slots: make([][]event, horizon)}
}

func (w *wheel) schedule(at int64, e event) {
	i := int(at) % len(w.slots)
	w.slots[i] = append(w.slots[i], e)
}

func (w *wheel) take(at int64) []event {
	i := int(at) % len(w.slots)
	evs := w.slots[i]
	w.slots[i] = w.slots[i][:0]
	return evs
}

// Network is a complete simulated interconnect.
type Network struct {
	cfg     Config
	m       *topology.Mesh
	routers []*router.Router
	nis     []*ni
	wheel   *wheel
	now     int64

	nextMsg   flow.MessageID
	delivered int64 // total messages delivered
	onArrive  func(msg *flow.Message, now int64)
}

// New builds and wires a network. It panics on invalid configuration,
// which is always a programming error in the harness.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := cfg.Mesh
	n := &Network{
		cfg:     cfg,
		m:       m,
		routers: make([]*router.Router, m.N()),
		nis:     make([]*ni, m.N()),
		wheel:   newWheel(cfg.LinkDelay + 2),
	}
	for id := 0; id < m.N(); id++ {
		node := topology.NodeID(id)
		tbl := table.Build(cfg.Table, m, cfg.Algorithm, cfg.Class, node)
		sel := selection.New(cfg.Selection, cfg.Seed+int64(id)*7919)
		n.routers[id] = router.New(node, m, cfg.Router, tbl, sel)
	}
	for id := 0; id < m.N(); id++ {
		node := topology.NodeID(id)
		r := n.routers[id]
		r.SetFabric(n.sendFunc(node), n.creditFunc(node), n.deliverFunc(node))
		n.nis[id] = newNI(n, node, r)
	}
	return n
}

// sendFunc routes a flit leaving node through port onto the wire; it
// arrives (is latched) at the neighbor after the output register plus the
// link delay.
func (n *Network) sendFunc(node topology.NodeID) router.SendFunc {
	return func(from topology.NodeID, p topology.Port, v flow.VCID, fl flow.Flit, now int64) {
		nb, ok := n.m.Neighbor(node, p)
		if !ok {
			panic(fmt.Sprintf("network: node %d sent out port %d with no link", node, p))
		}
		n.wheel.schedule(now+1+int64(n.cfg.LinkDelay), event{
			node: nb, port: topology.Opposite(p), vc: v, fl: fl,
		})
	}
}

// creditFunc returns a freed input-buffer slot upstream: to the neighbor's
// output VC, or to the local NI for the injection port.
func (n *Network) creditFunc(node topology.NodeID) router.CreditFunc {
	return func(from topology.NodeID, p topology.Port, v flow.VCID, now int64) {
		at := now + 1 + int64(n.cfg.LinkDelay)
		if p == topology.PortLocal {
			n.wheel.schedule(at, event{credit: true, toNI: true, node: node, vc: v})
			return
		}
		nb, ok := n.m.Neighbor(node, p)
		if !ok {
			panic(fmt.Sprintf("network: credit out port %d with no link", p))
		}
		n.wheel.schedule(at, event{credit: true, node: nb, port: topology.Opposite(p), vc: v})
	}
}

// deliverFunc hands ejected flits to the destination NI.
func (n *Network) deliverFunc(node topology.NodeID) router.DeliverFunc {
	return func(fl flow.Flit, now int64) {
		n.nis[node].deliver(fl, now)
	}
}

// Step advances the network one cycle: deliver due events, let NIs
// generate and inject, then tick every router.
func (n *Network) Step() {
	now := n.now
	for _, e := range n.wheel.take(now) {
		switch {
		case e.credit && e.toNI:
			n.nis[e.node].acceptCredit(e.vc)
		case e.credit:
			n.routers[e.node].AcceptCredit(e.port, e.vc)
		default:
			n.routers[e.node].EnqueueFlit(e.port, e.vc, e.fl, now)
		}
	}
	for _, ni := range n.nis {
		ni.tick(now)
	}
	for _, r := range n.routers {
		r.Tick(now)
	}
	n.now++
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Occupancy returns the number of flits buffered across all routers.
func (n *Network) Occupancy() int {
	total := 0
	for _, r := range n.routers {
		total += r.Occupancy()
	}
	return total
}

// QueuedMessages returns the number of messages waiting or streaming in
// source queues.
func (n *Network) QueuedMessages() int {
	total := 0
	for _, ni := range n.nis {
		total += ni.pending()
	}
	return total
}

// Delivered returns the number of fully delivered messages.
func (n *Network) Delivered() int64 { return n.delivered }

// Router exposes a router for inspection in tests.
func (n *Network) Router(id topology.NodeID) *router.Router { return n.routers[id] }

// traceHorizon returns the last injection time of the configured trace.
func (n *Network) traceHorizon() int64 {
	var last int64
	for _, ni := range n.nis {
		if ni.trace != nil {
			for _, tm := range ni.trace.Due(1 << 62) {
				if tm.At > last {
					last = tm.At
				}
			}
		}
	}
	// Due consumed the cursors; rebuild them for the actual run.
	for _, ni := range n.nis {
		if n.cfg.Trace != nil {
			ni.trace = n.cfg.Trace.Cursor(ni.node)
		}
	}
	return last
}

// RunParams controls one measured simulation (section 2.2's methodology).
type RunParams struct {
	// WarmupMessages are generated and delivered but not measured.
	WarmupMessages int
	// MeasureMessages is the number of messages statistics cover.
	MeasureMessages int
	// MaxCycles aborts the run (marking saturation) when exceeded; 0
	// derives a budget from the offered load.
	MaxCycles int64
	// SatLatency marks the run saturated once the running mean latency
	// exceeds it; 0 uses a default of 5000 cycles.
	SatLatency float64
	// BatchSize for latency confidence intervals; 0 uses measure/10.
	BatchSize int64
	// Progress guards against protocol deadlock: if no flit is delivered
	// for this many cycles while traffic is in flight the run aborts.
	// 0 uses 50000.
	ProgressGuard int64
}

// Run executes the measurement loop: inject continuously, measure messages
// [WarmupMessages, WarmupMessages+MeasureMessages), and stop when every
// measured message has been delivered or a saturation guard trips.
func (n *Network) Run(p RunParams) *stats.Run {
	if p.MeasureMessages <= 0 {
		panic("network: MeasureMessages must be positive")
	}
	if p.SatLatency == 0 {
		p.SatLatency = 5000
	}
	if p.BatchSize == 0 {
		p.BatchSize = int64(p.MeasureMessages / 10)
		if p.BatchSize == 0 {
			p.BatchSize = 1
		}
	}
	if p.ProgressGuard == 0 {
		p.ProgressGuard = 50000
	}
	if p.MaxCycles == 0 {
		if n.cfg.Trace != nil {
			p.MaxCycles = n.traceHorizon() + 200000
		} else {
			aggregate := n.cfg.MsgRate * float64(n.m.N())
			if aggregate <= 0 {
				panic("network: zero injection rate with no cycle budget")
			}
			need := float64(p.WarmupMessages+p.MeasureMessages) / aggregate
			p.MaxCycles = int64(need*8) + 50000
		}
	}

	run := stats.NewRun(n.m.N(), p.BatchSize)
	lo := flow.MessageID(p.WarmupMessages)
	hi := lo + flow.MessageID(p.MeasureMessages)
	measuredDone := 0
	var firstDeliver, lastDeliver int64 = -1, -1
	lastProgress := n.now

	n.onArrive = func(msg *flow.Message, now int64) {
		lastProgress = now
		if msg.ID < lo || msg.ID >= hi {
			return
		}
		run.Record(
			float64(msg.ArriveTime-msg.CreateTime),
			float64(msg.ArriveTime-msg.InjectTime),
			msg.Hops,
			msg.Length,
		)
		measuredDone++
		if firstDeliver < 0 {
			firstDeliver = now
		}
		lastDeliver = now
	}
	defer func() { n.onArrive = nil }()

	for measuredDone < p.MeasureMessages {
		n.Step()
		if n.now >= p.MaxCycles {
			run.Saturated = true
			run.SatReason = "cycle budget exhausted"
			break
		}
		if run.Latency.N() >= int64(p.MeasureMessages/10+1) && run.Latency.Mean() > p.SatLatency {
			run.Saturated = true
			run.SatReason = "latency above saturation threshold"
			break
		}
		if n.now-lastProgress > p.ProgressGuard && (n.Occupancy() > 0 || n.QueuedMessages() > 0) {
			run.Saturated = true
			run.SatReason = "no delivery progress (possible deadlock)"
			break
		}
	}
	if firstDeliver >= 0 && lastDeliver > firstDeliver {
		run.Cycles = lastDeliver - firstDeliver
	} else {
		run.Cycles = n.now
	}
	return run
}
