package network

import (
	"testing"

	"lapses/internal/fault"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// faultConfig assembles a degraded network: fault-aware routing and
// tables over plan, with the physical consequences (dead wiring, inert
// NIs) enforced by the fabric.
func faultConfig(t *testing.T, m *topology.Mesh, plan *fault.Plan, lookAhead bool, rate float64, seed int64) Config {
	t.Helper()
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	alg, err := routing.NewFaultDuato(m, cls, plan)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Mesh:      m,
		Router:    router.Config{NumVCs: 4, BufDepth: 20, OutDepth: 4, LookAhead: lookAhead},
		LinkDelay: 1,
		Algorithm: alg,
		Class:     cls,
		Table:     table.KindES,
		Faults:    plan,
		Selection: selection.LRU,
		Pattern:   traffic.New(traffic.Uniform, m),
		MsgRate:   rate,
		MsgLen:    20,
		Seed:      seed,
	}
}

// TestFaultedRunAvoidsDeadEquipment completes the degraded-routing
// property test at the system level: a full measured run over a faulted
// network delivers its traffic while every failed link and every port of
// every failed router carries exactly zero flits.
func TestFaultedRunAvoidsDeadEquipment(t *testing.T) {
	m := topology.NewMesh(8, 8)
	for seed := int64(1); seed <= 3; seed++ {
		plan, err := fault.Random(m, 5, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, la := range []bool{false, true} {
			n := New(faultConfig(t, m, plan, la, 0.004, seed))
			run := n.Run(RunParams{WarmupMessages: 100, MeasureMessages: 1500})
			if run.Saturated {
				t.Fatalf("seed %d la=%t: low-load faulted run saturated: %s", seed, la, run.SatReason)
			}
			if n.Delivered() < 1500 {
				t.Fatalf("seed %d la=%t: delivered %d < 1500", seed, la, n.Delivered())
			}
			for _, s := range n.LinkStats() {
				if s.Port == topology.PortLocal {
					if plan.NodeDead(s.From) && s.Flits != 0 {
						t.Fatalf("seed %d la=%t: dead router %d ejected %d flits", seed, la, s.From, s.Flits)
					}
					continue
				}
				if (plan.LinkDead(s.From, s.Port) || plan.NodeDead(s.From)) && s.Flits != 0 {
					t.Fatalf("seed %d la=%t: dead link %d/%s carried %d flits",
						seed, la, s.From, m.PortName(s.Port), s.Flits)
				}
			}
		}
	}
}

// TestFaultedCountersStayCoherent runs the incremental-counter invariant
// over a degraded network: the active-set kernel must keep Occupancy and
// QueuedMessages exact when parts of the topology never wake.
func TestFaultedCountersStayCoherent(t *testing.T) {
	m := topology.NewMesh(6, 6)
	plan, err := fault.Random(m, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := New(faultConfig(t, m, plan, true, 0.005, 5))
	for i := 0; i < 4000; i++ {
		n.Step()
		if got, want := n.Occupancy(), n.scanOccupancy(); got != want {
			t.Fatalf("cycle %d: Occupancy counter %d, scan %d", i, got, want)
		}
		if got, want := n.QueuedMessages(), n.scanQueued(); got != want {
			t.Fatalf("cycle %d: QueuedMessages counter %d, scan %d", i, got, want)
		}
	}
	if n.Delivered() == 0 {
		t.Fatal("no messages delivered in 4000 cycles")
	}
}
