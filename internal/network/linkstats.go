package network

import (
	"sort"

	"lapses/internal/topology"
)

// LinkStat reports the traffic carried by one unidirectional link (or, for
// the local port, one ejection channel) since the simulation began.
type LinkStat struct {
	From topology.NodeID
	Port topology.Port
	// Flits is the cumulative count of flits sent through the port.
	Flits uint64
	// Utilization is Flits divided by elapsed cycles (1.0 = the link
	// carried a flit every cycle). NOTE: these are whole-run cumulative
	// figures — the denominator is every cycle the network has simulated,
	// warmup and drain included, so a long warmup dilutes them. Consumers
	// needing the utilization of a specific window (congestion thresholds,
	// power models) must take a LinkSnapshot at the window's start and
	// read LinkStatsSince, which subtracts the snapshot from both counters
	// and denominator.
	Utilization float64
}

// LinkStats returns the utilization of every link and ejection channel,
// ordered by node then port. The paper's explanation of the meta-table
// result — "unbalanced congestion at cluster-boundary links" — is directly
// observable in the spread of these values.
func (n *Network) LinkStats() []LinkStat {
	return n.linkStats(LinkSnapshot{})
}

// LinkSnapshot freezes the cumulative link counters at one cycle so a
// later LinkStatsSince can report the traffic of just the window between
// the two calls.
type LinkSnapshot struct {
	at    int64
	flits map[linkKey]uint64
}

type linkKey struct {
	node topology.NodeID
	port topology.Port
}

// SnapshotLinks captures the current cumulative counters. Taking one at
// the end of warmup and reading LinkStatsSince after the measured phase
// yields measured-window utilizations undiluted by warmup idle time.
func (n *Network) SnapshotLinks() LinkSnapshot {
	snap := LinkSnapshot{at: n.now, flits: make(map[linkKey]uint64)}
	for _, s := range n.linkStats(LinkSnapshot{}) {
		snap.flits[linkKey{s.From, s.Port}] = s.Flits
	}
	return snap
}

// LinkStatsSince returns per-link stats over the window from the snapshot
// to now: Flits counts only the window's traversals and Utilization
// divides by the window's span instead of the whole run.
func (n *Network) LinkStatsSince(snap LinkSnapshot) []LinkStat {
	return n.linkStats(snap)
}

func (n *Network) linkStats(snap LinkSnapshot) []LinkStat {
	elapsed := float64(n.now - snap.at)
	if elapsed <= 0 {
		elapsed = 1
	}
	var out []LinkStat
	for id, r := range n.routers {
		for p := 0; p < n.m.NumPorts(); p++ {
			port := topology.Port(p)
			if port != topology.PortLocal {
				if _, ok := n.m.Neighbor(topology.NodeID(id), port); !ok {
					continue
				}
			}
			f := r.UseCount(port)
			if snap.flits != nil {
				f -= snap.flits[linkKey{topology.NodeID(id), port}]
			}
			out = append(out, LinkStat{
				From:        topology.NodeID(id),
				Port:        port,
				Flits:       f,
				Utilization: float64(f) / elapsed,
			})
		}
	}
	return out
}

// LinkImbalance summarizes the spread of link utilization over the
// network's inter-router links: the ratio of the hottest link's traffic to
// the mean over loaded links. Uniformly balanced traffic gives values near
// 1; boundary congestion drives it up.
func (n *Network) LinkImbalance() float64 {
	statsAll := n.LinkStats()
	var loads []float64
	total := 0.0
	for _, s := range statsAll {
		if s.Port == topology.PortLocal || s.Flits == 0 {
			continue
		}
		loads = append(loads, float64(s.Flits))
		total += float64(s.Flits)
	}
	if len(loads) == 0 {
		return 0
	}
	sort.Float64s(loads)
	mean := total / float64(len(loads))
	return loads[len(loads)-1] / mean
}

// TotalLinkFlits sums flit traversals over inter-router links, used by
// conservation tests: it must equal the sum over messages of hops x length
// once the network has drained.
func (n *Network) TotalLinkFlits() uint64 {
	var total uint64
	for _, s := range n.LinkStats() {
		if s.Port == topology.PortLocal {
			continue
		}
		total += s.Flits
	}
	return total
}
