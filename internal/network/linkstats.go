package network

import (
	"sort"

	"lapses/internal/topology"
)

// LinkStat reports the traffic carried by one unidirectional link (or, for
// the local port, one ejection channel) since the simulation began.
type LinkStat struct {
	From topology.NodeID
	Port topology.Port
	// Flits is the cumulative count of flits sent through the port.
	Flits uint64
	// Utilization is Flits divided by elapsed cycles (1.0 = the link
	// carried a flit every cycle).
	Utilization float64
}

// LinkStats returns the utilization of every link and ejection channel,
// ordered by node then port. The paper's explanation of the meta-table
// result — "unbalanced congestion at cluster-boundary links" — is directly
// observable in the spread of these values.
func (n *Network) LinkStats() []LinkStat {
	elapsed := float64(n.now)
	if elapsed == 0 {
		elapsed = 1
	}
	var out []LinkStat
	for id, r := range n.routers {
		for p := 0; p < n.m.NumPorts(); p++ {
			port := topology.Port(p)
			if port != topology.PortLocal {
				if _, ok := n.m.Neighbor(topology.NodeID(id), port); !ok {
					continue
				}
			}
			f := r.UseCount(port)
			out = append(out, LinkStat{
				From:        topology.NodeID(id),
				Port:        port,
				Flits:       f,
				Utilization: float64(f) / elapsed,
			})
		}
	}
	return out
}

// LinkImbalance summarizes the spread of link utilization over the
// network's inter-router links: the ratio of the hottest link's traffic to
// the mean over loaded links. Uniformly balanced traffic gives values near
// 1; boundary congestion drives it up.
func (n *Network) LinkImbalance() float64 {
	statsAll := n.LinkStats()
	var loads []float64
	total := 0.0
	for _, s := range statsAll {
		if s.Port == topology.PortLocal || s.Flits == 0 {
			continue
		}
		loads = append(loads, float64(s.Flits))
		total += float64(s.Flits)
	}
	if len(loads) == 0 {
		return 0
	}
	sort.Float64s(loads)
	mean := total / float64(len(loads))
	return loads[len(loads)-1] / mean
}

// TotalLinkFlits sums flit traversals over inter-router links, used by
// conservation tests: it must equal the sum over messages of hops x length
// once the network has drained.
func (n *Network) TotalLinkFlits() uint64 {
	var total uint64
	for _, s := range n.LinkStats() {
		if s.Port == topology.PortLocal {
			continue
		}
		total += s.Flits
	}
	return total
}
