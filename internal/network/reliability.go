package network

import (
	"fmt"

	"lapses/internal/flow"
	"lapses/internal/topology"
)

// End-to-end reliability at the network interfaces. Wormhole fabrics drop
// nothing in steady state, so the layer exists for one reason: a fault
// transition destroys every flit committed to dying equipment, and
// link-level mechanisms cannot resurrect a message whose flits are gone.
// The NIs run a classic ARQ protocol over the fabric instead:
//
//   - The source NI numbers every message within its (src, dst) stream
//     (flow.Message.RelSeq) and keeps a pending entry — everything needed
//     to rebuild the message — until the destination acknowledges it.
//   - Acknowledgments piggyback on every message traveling the reverse
//     direction (AckFloor + AckBits, a cumulative floor plus a 64-wide
//     selective window). A receiver with no reverse traffic sends a pure
//     one-flit ack (Ctrl) after AckDelay cycles, batching bursts.
//   - An unacknowledged entry retransmits after RTO cycles, doubling the
//     timeout each attempt (capped at RTO<<6), until MaxAttempts is
//     exhausted; then the message is abandoned and reported lost.
//   - The destination NI delivers each RelSeq once: copies arriving after
//     a first delivery are counted (DupSuppressed) and dropped before the
//     arrival observer fires. Delivered + abandoned is therefore
//     exactly-once delivery of everything the sources generated.
//
// Everything runs inside the NI tick/deliver paths of the owning shard,
// so sharded runs stay bit-identical: per-NI state is only touched while
// its shard steps, and cross-NI effects travel as ordinary messages.

// Reliability configures the end-to-end NI reliability layer. The zero
// value of each field selects its default.
type Reliability struct {
	// RTO is the base retransmission timeout in cycles (default 2048).
	// Attempt k waits RTO<<min(k-1, 6). It should comfortably exceed the
	// round-trip time at the target load, or healthy traffic retransmits.
	RTO int64
	// MaxAttempts bounds total send attempts per message, the first
	// included (default 12). A message unacknowledged after the last
	// attempt's timeout is abandoned and counted lost.
	MaxAttempts int
	// AckDelay is how long a receiver holds a pending acknowledgment
	// waiting for reverse traffic to piggyback on before it spends a
	// one-flit pure ack (default 64 cycles).
	AckDelay int64
}

// Validate reports configuration errors.
func (r *Reliability) Validate() error {
	if r.RTO < 0 {
		return fmt.Errorf("network: negative reliability RTO %d", r.RTO)
	}
	if r.MaxAttempts < 0 {
		return fmt.Errorf("network: negative reliability MaxAttempts %d", r.MaxAttempts)
	}
	if r.AckDelay < 0 {
		return fmt.Errorf("network: negative reliability AckDelay %d", r.AckDelay)
	}
	return nil
}

// withDefaults returns the configuration with zero fields resolved.
func (r Reliability) withDefaults() Reliability {
	if r.RTO == 0 {
		r.RTO = 2048
	}
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 12
	}
	if r.AckDelay == 0 {
		r.AckDelay = 64
	}
	return r
}

// pendEntry is one unacknowledged message held at its source NI: enough
// to rebuild the message for retransmission without retaining the (pooled)
// original. msg is only held until the cycle barrier assigns the message
// its ID (finishCycle resolves it and drops the pointer).
type pendEntry struct {
	msg        *flow.Message
	id         flow.MessageID
	dst        topology.NodeID
	seq        int64
	length     int
	class      uint8
	createTime int64
	attempts   int
	deadline   int64
}

// recvState is a destination NI's view of one incoming (src, dst) stream.
type recvState struct {
	// floor: every RelSeq <= floor has been delivered. seen holds
	// delivered seqs above the floor (out-of-order arrivals), drained into
	// the floor as the gaps fill; allocated lazily.
	floor int64
	seen  map[int64]struct{}
	// ackPending marks unacknowledged deliveries; the ack leaves
	// piggybacked on the next reverse-direction message, or as a pure ack
	// at ackAt. inAckList dedups membership in niRel.ackPeers.
	ackPending bool
	ackAt      int64
	inAckList  bool
}

// niRel is one NI's reliability state (nil on the NI when the layer is
// off, so the healthy fast path pays a single pointer test).
type niRel struct {
	nextSeq  []int64     // per destination: last assigned RelSeq
	pend     []*pendEntry // unacknowledged sends, oldest first
	recv     []recvState  // per source: incoming stream state
	ackPeers []topology.NodeID
}

// acked reports whether seq is covered by an (AckFloor, AckBits) pair.
func acked(seq, floor int64, bits uint64) bool {
	if seq <= floor {
		return true
	}
	if d := seq - floor; d <= 64 {
		return bits&(1<<uint(d-1)) != 0
	}
	return false
}

// relMaintain runs the source-side timers of the reliability layer at the
// head of an NI tick: due retransmissions (or abandonment) and due pure
// acks. Both enqueue ordinary messages, so everything downstream — VC
// binding, injection, routing — is the unmodified path.
func (x *ni) relMaintain(now int64) {
	rel := x.net.rel
	kept := x.rel.pend[:0]
	for _, pe := range x.rel.pend {
		if pe.deadline > now {
			kept = append(kept, pe)
			continue
		}
		if pe.attempts >= rel.MaxAttempts {
			// Out of attempts: the message is lost end to end. The barrier
			// replays the loss to the observer in shard order.
			x.sh.abandoned++
			x.sh.lostIDs = append(x.sh.lostIDs, pe.id)
			continue
		}
		msg := x.sh.newMessage()
		msg.ID = pe.id
		msg.Src = x.node
		msg.Dst = pe.dst
		msg.Length = pe.length
		msg.Class = pe.class
		msg.CreateTime = pe.createTime
		msg.RelSeq = pe.seq
		x.queue = append(x.queue, msg)
		x.sh.retrans++
		pe.attempts++
		shift := pe.attempts - 1
		if shift > 6 {
			shift = 6
		}
		pe.deadline = now + rel.RTO<<uint(shift)
		kept = append(kept, pe)
	}
	x.rel.pend = kept

	if len(x.rel.ackPeers) > 0 {
		peers := x.rel.ackPeers[:0]
		for _, src := range x.rel.ackPeers {
			st := &x.rel.recv[src]
			if st.ackPending && st.ackAt <= now {
				msg := x.sh.newMessage()
				msg.Src = x.node
				msg.Dst = src
				msg.Length = 1
				msg.CreateTime = now
				msg.Ctrl = true
				x.sh.createdCtrl = append(x.sh.createdCtrl, msg)
				x.queue = append(x.queue, msg)
				st.ackPending = false
			}
			if st.ackPending {
				peers = append(peers, src)
			} else {
				st.inAckList = false
			}
		}
		x.rel.ackPeers = peers
	}
}

// relTrack registers a freshly generated message with the reliability
// layer: assigns its stream sequence number and creates the pending entry
// the retransmission timer watches. The entry's ID resolves at the cycle
// barrier.
func (x *ni) relTrack(msg *flow.Message, now int64) {
	x.rel.nextSeq[msg.Dst]++
	msg.RelSeq = x.rel.nextSeq[msg.Dst]
	pe := &pendEntry{
		msg:        msg,
		dst:        msg.Dst,
		seq:        msg.RelSeq,
		length:     msg.Length,
		class:      msg.Class,
		createTime: now,
		attempts:   1,
		deadline:   now + x.net.rel.RTO,
	}
	x.rel.pend = append(x.rel.pend, pe)
	x.sh.newPending = append(x.sh.newPending, pe)
}

// relFillAcks stamps the outgoing message with this NI's view of the
// reverse stream from msg.Dst, satisfying any pending pure ack for free.
func (x *ni) relFillAcks(msg *flow.Message) {
	st := &x.rel.recv[msg.Dst]
	msg.AckFloor = st.floor
	var bits uint64
	for s := range st.seen {
		if d := s - st.floor; d >= 1 && d <= 64 {
			bits |= 1 << uint(d-1)
		}
	}
	msg.AckBits = bits
	st.ackPending = false
}

// relReceive runs the destination-side protocol on a delivered tail. It
// returns false when the message is consumed by the layer — a pure ack,
// or a duplicate of an already-delivered sequence number — and must not
// reach the application (the arrival observer).
func (x *ni) relReceive(m *flow.Message, now int64) bool {
	// Piggybacked acks first: even a duplicate carries fresh ack state.
	if len(x.rel.pend) > 0 {
		kept := x.rel.pend[:0]
		for _, pe := range x.rel.pend {
			if pe.dst == m.Src && acked(pe.seq, m.AckFloor, m.AckBits) {
				continue
			}
			kept = append(kept, pe)
		}
		x.rel.pend = kept
	}
	if m.Ctrl {
		x.sh.relDone = append(x.sh.relDone, m)
		return false
	}
	if m.RelSeq == 0 {
		return true
	}
	st := &x.rel.recv[m.Src]
	if _, dup := st.seen[m.RelSeq]; dup || m.RelSeq <= st.floor {
		// The duplicate means the source has not seen our acknowledgment
		// (it may have died on a failed link) — re-arm it, or the source
		// retransmits into suppression until it abandons the message.
		x.sh.dups++
		x.sh.relDone = append(x.sh.relDone, m)
		x.relArmAck(st, m.Src, now)
		return false
	}
	if m.RelSeq == st.floor+1 {
		st.floor++
		for {
			if _, ok := st.seen[st.floor+1]; !ok {
				break
			}
			delete(st.seen, st.floor+1)
			st.floor++
		}
	} else {
		if st.seen == nil {
			st.seen = make(map[int64]struct{})
		}
		st.seen[m.RelSeq] = struct{}{}
	}
	x.relArmAck(st, m.Src, now)
	return true
}

// relArmAck schedules an acknowledgment toward src and reactivates this
// NI: relReceive runs during flit ejection, when the NI may be parked
// with no wake registered (an idle receiver has none), and a pending ack
// it never wakes for is an ack never sent.
func (x *ni) relArmAck(st *recvState, src topology.NodeID, now int64) {
	if !st.ackPending {
		st.ackPending = true
		st.ackAt = now + x.net.rel.AckDelay
		if !st.inAckList {
			st.inAckList = true
			x.rel.ackPeers = append(x.rel.ackPeers, src)
		}
	}
	x.sh.actNIs.add(int(x.node) - x.sh.lo)
}

// relNextWake returns the earliest cycle the reliability layer needs this
// (otherwise idle) NI to tick: the next retransmission deadline or pure-ack
// send. ok is false when neither is outstanding.
func (x *ni) relNextWake() (int64, bool) {
	at := int64(-1)
	for _, pe := range x.rel.pend {
		if at < 0 || pe.deadline < at {
			at = pe.deadline
		}
	}
	for _, src := range x.rel.ackPeers {
		if st := &x.rel.recv[src]; st.ackPending && (at < 0 || st.ackAt < at) {
			at = st.ackAt
		}
	}
	return at, at >= 0
}

// Retransmits returns the number of retransmitted message copies sent by
// the reliability layer.
func (n *Network) Retransmits() int64 {
	var t int64
	for _, sh := range n.shards {
		t += sh.retrans
	}
	return t
}

// DupSuppressed returns the number of duplicate deliveries the reliability
// layer absorbed before the arrival observer.
func (n *Network) DupSuppressed() int64 {
	var t int64
	for _, sh := range n.shards {
		t += sh.dups
	}
	return t
}

// Abandoned returns the number of messages the reliability layer gave up
// on after exhausting MaxAttempts.
func (n *Network) Abandoned() int64 {
	var t int64
	for _, sh := range n.shards {
		t += sh.abandoned
	}
	return t
}
