package network

import (
	"testing"

	"lapses/internal/flow"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

func traceConfig(m *topology.Mesh, tr *traffic.Trace, seed int64) Config {
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	return Config{
		Mesh:      m,
		Router:    router.Config{NumVCs: 4, BufDepth: 20, OutDepth: 4, LookAhead: true},
		LinkDelay: 1,
		Algorithm: routing.NewDuato(m, cls),
		Class:     cls,
		Table:     table.KindES,
		Selection: selection.LRU,
		Trace:     tr,
		MsgLen:    20,
		Seed:      seed,
	}
}

// A trace injects exactly its messages, at their times, and they all
// arrive.
func TestTraceDrivenInjection(t *testing.T) {
	m := topology.NewMesh(4, 4)
	tr, err := traffic.NewTrace([]traffic.TraceMsg{
		{At: 0, Src: 0, Dst: 15, Length: 4},
		{At: 5, Src: 15, Dst: 0, Length: 8},
		{At: 50, Src: 3, Dst: 12, Length: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := New(traceConfig(m, tr, 1))
	var arrivals []*flow.Message
	n.onArrive = func(msg *flow.Message, now int64) { arrivals = append(arrivals, msg) }
	for i := 0; i < 400; i++ {
		n.Step()
	}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d want 3", len(arrivals))
	}
	for _, msg := range arrivals {
		if msg.ArriveTime <= msg.CreateTime {
			t.Errorf("message %d has non-positive latency", msg.ID)
		}
		if msg.Hops != m.Distance(msg.Src, msg.Dst) {
			t.Errorf("message %d hops %d want %d", msg.ID, msg.Hops, m.Distance(msg.Src, msg.Dst))
		}
	}
	if int(n.nextMsg) != 3 {
		t.Errorf("created = %d want exactly the trace", n.nextMsg)
	}
	if n.Occupancy() != 0 {
		t.Errorf("network not drained: %d", n.Occupancy())
	}
}

// A trace-driven Run measures the designated message window.
func TestTraceRun(t *testing.T) {
	m := topology.NewMesh(4, 4)
	tr := traffic.StencilTrace(m, 10, 200, 8)
	n := New(traceConfig(m, tr, 2))
	run := n.Run(RunParams{WarmupMessages: 48, MeasureMessages: tr.Total() - 48})
	if run.Saturated {
		t.Fatalf("stencil trace saturated: %s", run.SatReason)
	}
	if run.Latency.N() != int64(tr.Total()-48) {
		t.Fatalf("measured %d want %d", run.Latency.N(), tr.Total()-48)
	}
	// Every stencil message is one hop: latency = 1-hop pipe + 7 flits +
	// injection, bounded well under an iteration period at this load.
	if run.Latency.Mean() < 10 || run.Latency.Mean() > 100 {
		t.Errorf("implausible stencil latency %.1f", run.Latency.Mean())
	}
	if run.Hops.Mean() != 1 {
		t.Errorf("stencil hops = %v want 1", run.Hops.Mean())
	}
}

// Trace runs are deterministic.
func TestTraceDeterminism(t *testing.T) {
	m := topology.NewMesh(4, 4)
	mk := func() float64 {
		tr := traffic.StencilTrace(m, 5, 100, 8)
		n := New(traceConfig(m, tr, 3))
		return n.Run(RunParams{MeasureMessages: tr.Total()}).Latency.Mean()
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("trace runs diverged: %v vs %v", a, b)
	}
}
