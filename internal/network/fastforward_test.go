package network

import (
	"fmt"
	"testing"

	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// runFingerprint captures every observable of a measured run, including
// the TotalCycles accounting (n.Now()) that fast-forward must keep in
// step with the unskipped kernel.
func runFingerprint(n *Network, p RunParams) string {
	r := n.Run(p)
	return fmt.Sprintf("lat=%v net=%v hops=%v thr=%v n=%d cyc=%d sat=%t reason=%q now=%d delivered=%d",
		r.Latency.Mean(), r.NetLatency.Mean(), r.Hops.Mean(), r.Throughput(),
		r.Latency.N(), r.Cycles, r.Saturated, r.SatReason, n.Now(), n.Delivered())
}

// Idle-cycle fast-forward must be observationally neutral: a run with it
// enabled produces the same statistics AND the same simulated-time
// accounting (TotalCycles = Now) as a run executing every cycle, while
// actually skipping a meaningful share of the cycles at a load this low.
func TestFastForwardMatchesNoSkipRun(t *testing.T) {
	m := topology.NewMesh(4, 4)
	rate := traffic.MessageRate(m, 0.02, 20)
	build := func() *Network {
		return New(testConfig(m, true, table.KindES, selection.LRU, traffic.New(traffic.Uniform, m), rate, 7))
	}
	p := RunParams{WarmupMessages: 50, MeasureMessages: 400, MaxCycles: 4_000_000}

	ff := build()
	got := runFingerprint(ff, p)
	if ff.SkippedCycles() == 0 {
		t.Fatal("fast-forward never skipped a cycle at a load this low; the test is vacuous")
	}

	noSkip := build()
	pNo := p
	pNo.NoFastForward = true
	want := runFingerprint(noSkip, pNo)
	if noSkip.SkippedCycles() != 0 {
		t.Fatalf("NoFastForward run still skipped %d cycles", noSkip.SkippedCycles())
	}
	if got != want {
		t.Fatalf("fast-forward diverged from the no-skip run\n got %s\nwant %s", got, want)
	}
	t.Logf("skipped %d of %d cycles", ff.SkippedCycles(), ff.Now())
}

// A run that exhausts its cycle budget while idle must stop at exactly
// the budget, not at the (beyond-budget) next wake — TotalCycles under
// fast-forward counts the same simulated span the unskipped kernel would
// have ticked through.
func TestFastForwardRespectsCycleBudget(t *testing.T) {
	m := topology.NewMesh(4, 4)
	// A finite trace delivers everything long before the budget, then the
	// network sits idle forever; asking for one more message than the
	// trace holds forces the run to the budget.
	trace, err := traffic.NewTrace([]traffic.TraceMsg{
		{At: 0, Src: 0, Dst: 5, Length: 4},
		{At: 10, Src: 3, Dst: 12, Length: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(m, true, table.KindES, selection.LRU, nil, 0, 3)
	cfg.Pattern = nil
	cfg.Trace = trace
	const budget = 12345
	for _, noFF := range []bool{false, true} {
		n := New(cfg)
		n.Run(RunParams{MeasureMessages: 3, MaxCycles: budget, NoFastForward: noFF})
		if n.Now() != budget {
			t.Errorf("noFF=%t: stopped at cycle %d, want the %d-cycle budget", noFF, n.Now(), budget)
		}
		if !noFF && n.SkippedCycles() == 0 {
			t.Error("fast-forward skipped nothing on an idle tail")
		}
	}
}
