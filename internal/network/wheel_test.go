package network

import "testing"

// Regression test for the timing-wheel aliasing hazard: take used to
// return w.slots[i] and truncate it in place, so a schedule landing in
// the same slot while the caller was still iterating the returned slice
// would overwrite events under iteration. take now swaps in a spare
// buffer, transferring ownership of the returned slice to the caller for
// the cycle.
func TestWheelTakeOwnership(t *testing.T) {
	w := newWheel[creditEvent](3)
	period := int64(len(w.slots)) // same slot index one full rotation later

	w.schedule(0, creditEvent{node: 1})
	w.schedule(0, creditEvent{node: 2})
	evs := w.take(0)
	if len(evs) != 2 {
		t.Fatalf("take(0) = %d events, want 2", len(evs))
	}

	// A same-slot schedule while evs is live must not clobber it.
	w.schedule(period, creditEvent{node: 99})
	if evs[0].node != 1 || evs[1].node != 2 {
		t.Fatalf("returned events clobbered by same-slot schedule: %+v", evs)
	}

	got := w.take(period)
	if len(got) != 1 || got[0].node != 99 {
		t.Fatalf("take(period) = %+v, want the one rescheduled event", got)
	}
}

// The wheel must reuse buffers in steady state: after the ring has seen
// traffic in every slot, schedule/take cycles allocate nothing.
func TestWheelSteadyStateNoAllocs(t *testing.T) {
	w := newWheel[flitEvent](3)
	for at := int64(0); at < int64(2*len(w.slots)); at++ {
		w.schedule(at, flitEvent{node: 7})
		w.take(at)
	}
	avg := testing.AllocsPerRun(100, func() {
		w.schedule(5, flitEvent{node: 3})
		w.take(5)
	})
	if avg != 0 {
		t.Fatalf("steady-state wheel allocates %v allocs/op, want 0", avg)
	}
}
