package network

import (
	"fmt"
	"sort"

	"lapses/internal/fault"
	"lapses/internal/flow"
	"lapses/internal/routing"
	"lapses/internal/table"
	"lapses/internal/topology"
)

// Fault-schedule dynamics: how the network survives topology changing
// mid-run.
//
// A transition is applied in Step's preamble — on the stepping goroutine,
// before any shard's phase A — so every shard sees the same epoch for the
// whole cycle and sharded runs stay bit-identical to serial ones. One
// transition does four things, in order:
//
//  1. Mark: find every message with any state committed to dying
//     equipment — flit events in flight toward a dead link end or dead
//     router, flits buffered at one, pipeline state or output claims on
//     one, streams or queued messages at a dead node's NI — plus every
//     message addressed to a newly dead destination, plus every message
//     committed to the deadlock-free layer. The last is the
//     reconfiguration discipline: deadlock freedom is an acyclicity
//     argument about one epoch's channel order, and a worm that
//     established part of its path under the old epoch can hold buffers
//     in an order the new epoch forbids — a handful of such worms plus
//     new-epoch traffic can close a wait cycle no single table obeys
//     (observed as a hard deadlock before this rule existed). With an
//     escape layer (Duato), the argument lives entirely on the escape
//     VCs, so draining escape-committed messages at the swap suffices:
//     every epoch starts with a clean escape network and adaptive-layer
//     heads can always fall into it under the new tables. Without one
//     (deterministic routing, EscapeVCs = 0), every channel carries the
//     argument and the transition must drain all in-network messages —
//     the classic static-reconfiguration price, and exactly the
//     availability cost the adaptive router's escape layer avoids.
//  2. Sweep: erase all trace of the victims — wheel events, buffered and
//     boxed flits, claims, NI streams — counting the destroyed flits.
//     Without the reliability layer each victim is a permanent loss
//     (onLost); with it the sender's retransmission timer recovers the
//     message end to end.
//  3. Reconverge: swap every router to the epoch's table (rebuilt over
//     the new live graph), refresh dead-port gates, and re-resolve the
//     routing state that survived (waiting headers, queued look-ahead
//     headers, in-flight head events).
//  4. Recompute flow control: destroyed flits can never return their
//     credits, so every credit counter is recomputed from its global
//     invariant — credits = BufDepth minus flits in flight toward the
//     buffer, minus flits sitting in it, minus credit events already on
//     their way back.
//
// Everything here runs only at a transition — a handful of times per run
// — so clarity wins over speed throughout.

// windowShift sizes the delivery-rate buckets (2^9 = 512 cycles) behind
// the post-fault recovery metric.
const windowShift = 9

// WindowCycles is the width in cycles of each DeliveryWindows bucket.
const WindowCycles = int64(1) << windowShift

// each visits every scheduled event in the wheel, slot by slot.
func (w *wheel[E]) each(fn func(*E)) {
	for i := range w.slots {
		for j := range w.slots[i] {
			fn(&w.slots[i][j])
		}
	}
}

// filter removes the events keep rejects and returns how many it removed.
func (w *wheel[E]) filter(keep func(*E) bool) int {
	removed := 0
	for i := range w.slots {
		s := w.slots[i][:0]
		for j := range w.slots[i] {
			if keep(&w.slots[i][j]) {
				s = append(s, w.slots[i][j])
			} else {
				removed++
			}
		}
		w.slots[i] = s
	}
	w.count -= removed
	return removed
}

// deadPortMask returns the current plan's failed-link ports of node id as
// the bitmask router.SetDeadPorts consumes.
func (n *Network) deadPortMask(id topology.NodeID) uint32 {
	var mask uint32
	for p := 1; p < n.ports; p++ {
		if n.plan.LinkDead(id, topology.Port(p)) {
			mask |= 1 << p
		}
	}
	return mask
}

// advanceEpochs applies every schedule transition due at or before now.
func (n *Network) advanceEpochs(now int64) {
	times := n.sched.Times()
	for n.epoch+1 < len(times) && times[n.epoch+1] <= now {
		n.applyTransition(n.epoch+1, now)
	}
}

// applyTransition moves the network into schedule epoch e. now is the
// cycle about to execute; all of phase A for it runs after this returns.
func (n *Network) applyTransition(e int, now int64) {
	n.epoch = e
	n.plan = n.sched.Plan(e)
	n.reconv++
	plan := n.plan

	// --- Mark ---------------------------------------------------------
	// The victim set is collected into insertion-ordered storage and then
	// sorted by message ID: shard counts change the scan order of wheel
	// slots, and the loss replay below must not depend on it.
	vict := make(map[*flow.Message]bool)
	var order []*flow.Message
	mark := func(m *flow.Message) {
		if m != nil && !vict[m] {
			vict[m] = true
			order = append(order, m)
		}
	}
	deadEnd := func(id topology.NodeID, p topology.Port) bool {
		return plan.NodeDead(id) || plan.LinkDead(id, p)
	}
	// drained reports whether the reconfiguration discipline retires m at
	// this swap: escape-committed messages always; with no escape layer,
	// everything in the network.
	fullDrain := n.cfg.Class.EscapeVCs == 0
	drained := func(m *flow.Message) bool { return fullDrain || m.EscapeCommitted }
	for _, sh := range n.shards {
		sh.flits.each(func(ev *flitEvent) {
			if deadEnd(ev.node, ev.port) || plan.NodeDead(ev.fl.Msg.Dst) || drained(ev.fl.Msg) {
				mark(ev.fl.Msg)
			}
		})
	}
	for id, r := range n.routers {
		node := topology.NodeID(id)
		deadMask := n.deadPortMask(node)
		nodeDead := plan.NodeDead(node)
		r.ScanMessages(func(ports uint32, m *flow.Message) {
			if nodeDead || ports&deadMask != 0 || plan.NodeDead(m.Dst) || drained(m) {
				mark(m)
			}
		})
	}
	for id, x := range n.nis {
		nodeDead := plan.NodeDead(topology.NodeID(id))
		for _, s := range x.streams {
			if s.msg != nil && (nodeDead || plan.NodeDead(s.msg.Dst) || drained(s.msg)) {
				mark(s.msg)
			}
		}
		if nodeDead {
			for _, m := range x.queue[x.qHead:] {
				mark(m)
			}
		}
	}

	// --- Sweep --------------------------------------------------------
	victim := func(m *flow.Message) bool { return vict[m] }
	for _, sh := range n.shards {
		removed := 0
		sh.flits.filter(func(ev *flitEvent) bool {
			if !vict[ev.fl.Msg] {
				return true
			}
			if ev.worm {
				// A worm event is the whole message crossing the wire.
				removed += ev.fl.Msg.Length
			} else {
				removed++
			}
			return false
		})
		n.droppedFlits += int64(removed)
	}
	for id, r := range n.routers {
		n.droppedFlits += int64(r.PurgeMessages(victim, now-1))
		occ := r.Occupancy()
		sh := n.shards[n.nodeShard[id]]
		sh.totalOcc += occ - int(n.lastOcc[id])
		n.lastOcc[id] = int32(occ)
	}
	for id, x := range n.nis {
		sh := x.sh
		for v := range x.streams {
			if m := x.streams[v].msg; m != nil && vict[m] {
				// The stream's unsent flits die with it; the flits it
				// already serialized were purged above. The injection
				// credits it holds stay consistent: the recompute below
				// rebuilds them from surviving state.
				x.streams[v] = stream{}
				sh.totalQueued--
			}
		}
		if plan.NodeDead(topology.NodeID(id)) && len(x.queue) > x.qHead {
			kept := x.queue[:0]
			for _, m := range x.queue[x.qHead:] {
				if !vict[m] {
					kept = append(kept, m)
				}
			}
			sh.totalQueued -= (len(x.queue) - x.qHead) - len(kept)
			x.queue = kept
			x.qHead = 0
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].ID < order[j].ID })
	for _, m := range order {
		if n.rel == nil {
			// Without the reliability layer a purged message is gone for
			// good; with it the sender still holds a copy and the
			// retransmission timer will recover it (or exhaust and report
			// the loss there).
			n.droppedMsgs++
			if n.onLost != nil {
				n.onLost(m.ID)
			}
		}
	}

	// --- Reconverge ---------------------------------------------------
	tbls := n.epochTables[e]
	for id, r := range n.routers {
		r.SetTable(tbls[id])
		r.SetDeadPorts(n.deadPortMask(topology.NodeID(id)))
	}
	la := n.cfg.Router.LookAhead
	for id, r := range n.routers {
		node := topology.NodeID(id)
		r.Reroute(func(p topology.Port, m *flow.Message) flow.RouteSet {
			nb, ok := n.m.Neighbor(node, p)
			if !ok {
				panic(fmt.Sprintf("network: reroute through missing link %d port %d", id, p))
			}
			return tbls[nb].Lookup(m.Dst, m.Dateline)
		})
	}
	if la {
		// In-flight look-ahead headers carry candidates computed from the
		// old epoch's table of the router they are about to enter — the
		// neighbor's for a link traversal, the source router's own for an
		// injection — which is ev.node's table either way.
		for _, sh := range n.shards {
			sh.flits.each(func(ev *flitEvent) {
				if ev.fl.Type.IsHead() {
					ev.fl.Msg.Route = tbls[ev.node].Lookup(ev.fl.Msg.Dst, ev.fl.Msg.Dateline)
				}
			})
		}
	}

	// --- Recompute flow control ---------------------------------------
	n.recomputeCredits()
}

// recomputeCredits rebuilds every credit counter — router output VCs and
// NI injection VCs — from the global invariant. The incremental credit
// protocol is exact while flits survive; a purge breaks it (destroyed
// flits never return their slots), so the counters are recomputed rather
// than patched.
func (n *Network) recomputeCredits() {
	vcs := n.cfg.Router.NumVCs
	idx := func(node topology.NodeID, p topology.Port, v flow.VCID) int {
		return (int(node)*n.ports+int(p))*vcs + int(v)
	}
	flitsTo := make([]int32, n.m.N()*n.ports*vcs)
	credsTo := make([]int32, n.m.N()*n.ports*vcs)
	niCreds := make([]int32, n.m.N()*vcs)
	for _, sh := range n.shards {
		sh.flits.each(func(ev *flitEvent) {
			k := int32(1)
			if ev.worm {
				k = int32(ev.fl.Msg.Length)
			}
			flitsTo[idx(ev.node, ev.port, ev.vc)] += k
		})
		sh.credits.each(func(ev *creditEvent) {
			switch ev.kind {
			case creditToRouter:
				credsTo[idx(ev.node, ev.port, ev.vc)] += ev.n
			case creditToNI:
				niCreds[int(ev.node)*vcs+int(ev.vc)] += ev.n
			}
		})
	}
	depth := n.cfg.Router.BufDepth
	for id, r := range n.routers {
		node := topology.NodeID(id)
		for p := 1; p < n.ports; p++ {
			nb, ok := n.m.Neighbor(node, topology.Port(p))
			if !ok {
				continue
			}
			q := topology.Opposite(topology.Port(p))
			for v := 0; v < vcs; v++ {
				c := depth -
					int(flitsTo[idx(nb, q, flow.VCID(v))]) -
					n.routers[nb].BufferedFlits(q, flow.VCID(v)) -
					int(credsTo[idx(node, topology.Port(p), flow.VCID(v))])
				r.SetCredits(topology.Port(p), flow.VCID(v), c)
			}
		}
	}
	for id, x := range n.nis {
		node := topology.NodeID(id)
		for v := 0; v < vcs; v++ {
			c := depth -
				int(flitsTo[idx(node, topology.PortLocal, flow.VCID(v))]) -
				n.routers[id].BufferedFlits(topology.PortLocal, flow.VCID(v)) -
				int(niCreds[id*vcs+v])
			if c < 0 || c > depth {
				panic(fmt.Sprintf("network: recomputed NI credits %d for node %d vc %d outside [0,%d]", c, id, v, depth))
			}
			x.credits[v] = c
		}
	}
}

// DroppedFlits returns the number of in-flight and buffered flits
// destroyed by fault transitions so far.
func (n *Network) DroppedFlits() int64 { return n.droppedFlits }

// DroppedMessages returns the number of messages permanently lost to
// fault transitions (purged without the reliability layer, or addressed
// to a destination that died before they could be injected). With
// reliability on, losses surface through Abandoned instead.
func (n *Network) DroppedMessages() int64 { return n.droppedMsgs }

// ReconvergenceEpochs returns how many epoch transitions the network has
// applied.
func (n *Network) ReconvergenceEpochs() int64 { return n.reconv }

// DeliveryWindows returns first deliveries per 2^windowShift-cycle bucket
// (only collected while a schedule is active).
func (n *Network) DeliveryWindows() []int64 { return n.windows }

// Plan returns the fault plan currently in effect — the active schedule
// epoch's, or the static plan.
func (n *Network) Plan() *fault.Plan { return n.plan }

// BuildEpochTables builds one table set per schedule epoch, using alg to
// construct the epoch's routing algorithm from its fault plan (healthy
// epochs receive the empty plan). Callers choose the policy — core builds
// fault-aware Duato or dimension-order algorithms — so the network stays
// policy-agnostic.
func BuildEpochTables(m *topology.Mesh, kind table.Kind, cls routing.Class, sched *fault.Schedule,
	alg func(plan *fault.Plan) (routing.Algorithm, error)) ([][]table.Table, error) {
	out := make([][]table.Table, sched.Epochs())
	for e := range out {
		a, err := alg(sched.Plan(e))
		if err != nil {
			return nil, fmt.Errorf("network: epoch %d: %w", e, err)
		}
		tbls := make([]table.Table, m.N())
		for id := 0; id < m.N(); id++ {
			tbls[id] = table.Build(kind, m, a, cls, topology.NodeID(id))
		}
		out[e] = tbls
	}
	return out, nil
}
