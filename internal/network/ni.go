package network

import (
	"lapses/internal/flow"
	"lapses/internal/router"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// stream tracks one message being serialized into the router through one
// injection VC.
type stream struct {
	msg *flow.Message
	seq int
}

// ni is a node's network interface: it generates messages per the traffic
// pattern, queues them (unbounded source queue: the open-loop model whose
// queueing delay the paper's latency numbers include), serializes them
// into the router's local input port across the injection VCs, and
// receives ejected flits.
//
// In look-ahead mode the NI performs the source table lookup when it
// builds the header flit, as the SGI SPIDER's interface does, so the
// source router can start directly at its SA stage.
type ni struct {
	net   *Network
	sh    *shard // the shard owning this NI's node band
	node  topology.NodeID
	r     *router.Router
	inj   traffic.Source
	trace *traffic.TraceCursor

	queue   []*flow.Message
	qHead   int
	streams []stream
	credits []int
	rr      int

	// rel is the end-to-end reliability state, nil when the layer is off
	// (the healthy path pays one pointer test per tick and delivery).
	rel *niRel
}

func newNI(n *Network, node topology.NodeID, r *router.Router) *ni {
	v := n.cfg.Router.NumVCs
	var src traffic.Source
	if n.cfg.Burst != nil {
		src = traffic.NewMMPP(n.cfg.MsgRate, *n.cfg.Burst, n.cfg.Seed+int64(node))
	} else {
		src = traffic.NewInjector(n.cfg.MsgRate, n.cfg.Seed+int64(node))
	}
	x := &ni{
		net:     n,
		sh:      n.shards[n.nodeShard[node]],
		node:    node,
		r:       r,
		inj:     src,
		streams: make([]stream, v),
		credits: make([]int, v),
	}
	if n.cfg.Trace != nil {
		x.trace = n.cfg.Trace.Cursor(node)
	}
	if n.rel != nil {
		x.rel = &niRel{
			nextSeq: make([]int64, n.m.N()),
			recv:    make([]recvState, n.m.N()),
		}
	}
	for i := range x.credits {
		x.credits[i] = r.InputSpace(topology.PortLocal, flow.VCID(i))
	}
	return x
}

// pending returns messages queued or mid-injection. A zero return means
// the NI is quiescent: its tick would do nothing until the traffic
// process next fires (nextWake), which is what lets the network park it
// off the active set.
func (x *ni) pending() int {
	n := len(x.queue) - x.qHead
	for _, s := range x.streams {
		if s.msg != nil {
			n++
		}
	}
	return n
}

// nextWake returns the cycle the NI next has work without external input:
// its traffic process's next firing, joined (when the reliability layer is
// on) with its earliest retransmission deadline or pending pure ack. False
// means the NI never needs to wake again.
func (x *ni) nextWake() (int64, bool) {
	var at int64
	var ok bool
	if x.trace != nil {
		at, ok = x.trace.NextAt()
	} else {
		at, ok = x.inj.NextAt()
	}
	if x.rel != nil {
		if rat, rok := x.relNextWake(); rok && (!ok || rat < at) {
			at, ok = rat, true
		}
	}
	return at, ok
}

// inject seeds a message directly into its source node's queue, bypassing
// the traffic process. It keeps the active-set and queued-message
// bookkeeping coherent, which appending to the queue directly would not;
// tests that hand-craft messages must use it.
func (n *Network) inject(msg *flow.Message) {
	if n.plan.NodeDead(msg.Src) || n.plan.NodeDead(msg.Dst) {
		panic("network: inject touching a dead router")
	}
	x := n.nis[msg.Src]
	x.queue = append(x.queue, msg)
	x.sh.totalQueued++
	x.sh.actNIs.add(int(msg.Src) - x.sh.lo)
}

// newMessage takes a message from the shard's delivery pool, or allocates
// one. Pools are per shard so concurrent phase-A generators never share
// one; a message delivered in another shard is recycled there and reused
// by that shard's NIs.
func (sh *shard) newMessage() *flow.Message {
	if k := len(sh.msgFree); k > 0 {
		msg := sh.msgFree[k-1]
		sh.msgFree = sh.msgFree[:k-1]
		*msg = flow.Message{}
		return msg
	}
	return &flow.Message{}
}

// tick generates due messages, binds queued messages to free injection
// VCs, and injects at most one flit (the injection channel is one flit
// wide, like every physical channel).
func (x *ni) tick(now int64) {
	// A node that is dead in the current schedule epoch injects nothing,
	// but its traffic process still consumes its due firings: a healed
	// node resumes at the process's natural pace instead of releasing a
	// backlog of every message "generated" while it was down.
	if x.net.sched != nil && x.net.plan.NodeDead(x.node) {
		if x.trace != nil {
			x.trace.Due(now)
		} else {
			x.inj.Due(now)
		}
		return
	}
	// Reliability timers run before generation so a retransmitted copy or
	// pure ack enqueued this cycle competes for this cycle's injection
	// slot like any queued message.
	if x.rel != nil {
		x.relMaintain(now)
	}
	// Generated messages carry no ID yet: IDs are assigned at the cycle
	// barrier in ascending node order (see finishCycle), which keeps the
	// global creation numbering identical under any shard count. Nothing
	// reads the ID before delivery, cycles later.
	if x.trace != nil {
		for _, tm := range x.trace.Due(now) {
			msg := x.sh.newMessage()
			msg.Src = tm.Src
			msg.Dst = tm.Dst
			msg.Length = tm.Length
			msg.CreateTime = now
			if x.rel != nil {
				x.relTrack(msg, now)
			}
			x.sh.created = append(x.sh.created, msg)
			x.queue = append(x.queue, msg)
		}
	} else {
		for i := x.inj.Due(now); i > 0; i-- {
			dst, ok := x.net.cfg.Pattern.Dest(x.node, x.inj.RNG())
			if !ok {
				continue
			}
			msg := x.sh.newMessage()
			msg.Src = x.node
			msg.Dst = dst
			msg.Length = x.net.cfg.MsgLen
			msg.CreateTime = now
			// QoS class draw, gated so runs without QoS consume exactly
			// the same random stream as before.
			if hi := x.net.cfg.QoSHiFrac; hi > 0 && x.inj.RNG().Float64() < hi {
				msg.Class = 1
			}
			if x.rel != nil {
				x.relTrack(msg, now)
			}
			x.sh.created = append(x.sh.created, msg)
			x.queue = append(x.queue, msg)
		}
	}

	// Bind the head of the queue to free injection VCs. Under a schedule,
	// a queued message whose destination is dead right now is dropped at
	// the bind point instead of being routed into a table with no path:
	// a permanent loss without the reliability layer (the barrier reports
	// it), a no-op with it (the retransmission timer retries, and a later
	// epoch may have healed the destination).
	for v := range x.streams {
		if x.streams[v].msg != nil {
			continue
		}
		var msg *flow.Message
		for x.qHead != len(x.queue) {
			m := x.queue[x.qHead]
			x.queue[x.qHead] = nil
			x.qHead++
			if x.qHead == len(x.queue) {
				x.queue = x.queue[:0]
				x.qHead = 0
			}
			if x.net.sched != nil && x.net.plan.NodeDead(m.Dst) {
				if x.rel == nil {
					x.sh.dropped = append(x.sh.dropped, m)
				}
				continue
			}
			msg = m
			break
		}
		if msg == nil {
			break
		}
		if x.rel != nil {
			x.relFillAcks(msg)
		}
		x.streams[v] = stream{msg: msg}
	}

	// Event-mode whole-message emission: when exactly one message is being
	// injected, it is still at its head, and the NI holds credits for its
	// entire length, it leaves as a single worm event instead of one flit
	// per cycle. The cadence on the injection wire is identical — flits at
	// link rate starting next cycle — it is just not replayed event by
	// event unless the source router has to unpack the worm. A second
	// bound stream (or a stream already mid-message) falls back to
	// per-flit injection, preserving the cycle path's round-robin
	// interleave.
	if x.net.cfg.EventMode {
		if v := x.soleFreshStream(); v >= 0 && x.credits[v] >= x.streams[v].msg.Length && x.wormWindowClear(now, x.streams[v].msg.Length) {
			s := &x.streams[v]
			msg := s.msg
			msg.InjectTime = now
			if x.net.cfg.Router.LookAhead {
				msg.Route = x.r.Table().Lookup(msg.Dst, 0)
			}
			fl := flow.Flit{Msg: msg, Type: flow.TypeFor(0, msg.Length)}
			x.sh.flits.schedule(now+1, flitEvent{node: x.node, port: topology.PortLocal, vc: flow.VCID(v), fl: fl, worm: true})
			x.credits[v] -= msg.Length
			*s = stream{}
			x.rr = v + 1
			if x.rr == len(x.streams) {
				x.rr = 0
			}
			return
		}
	}

	// Inject one flit, round-robin over active streams with credit.
	nv := len(x.streams)
	for off := 0; off < nv; off++ {
		v := x.rr + off
		if v >= nv {
			v -= nv
		}
		s := &x.streams[v]
		if s.msg == nil || x.credits[v] == 0 {
			continue
		}
		fl := flow.Flit{
			Msg:  s.msg,
			Seq:  int32(s.seq),
			Type: flow.TypeFor(s.seq, s.msg.Length),
		}
		if fl.Type.IsHead() {
			s.msg.InjectTime = now
			if x.net.cfg.Router.LookAhead {
				s.msg.Route = x.r.Table().Lookup(s.msg.Dst, 0)
			}
		}
		// One-cycle injection wire: the flit is latched into the
		// router's local input buffer next cycle (always intra-shard:
		// an NI injects into its own node's router).
		x.sh.flits.schedule(now+1, flitEvent{node: x.node, port: topology.PortLocal, vc: flow.VCID(v), fl: fl})
		x.credits[v]--
		s.seq++
		if fl.Type.IsTail() {
			*s = stream{}
		}
		x.rr = v + 1
		if x.rr == nv {
			x.rr = 0
		}
		return
	}
}

// wormWindowClear reports whether the traffic process stays quiet for the
// length cycles a worm's flits would occupy the injection wire. A message
// generated inside that window would, in cycle mode, round-robin its flits
// with the worm's on the one-flit-wide wire — an interleave a worm cannot
// replay — so such messages keep the per-flit path and its exact cadence.
func (x *ni) wormWindowClear(now int64, length int) bool {
	at, ok := x.nextWake()
	return !ok || at >= now+int64(length)
}

// soleFreshStream returns the VC of the only active injection stream if
// there is exactly one and it has not started serializing (seq 0), else -1.
func (x *ni) soleFreshStream() int {
	v := -1
	for i := range x.streams {
		if x.streams[i].msg == nil {
			continue
		}
		if v >= 0 || x.streams[i].seq != 0 {
			return -1
		}
		v = i
	}
	return v
}

// acceptCredit returns n injection-buffer slots for VC v (n > 1 when a
// worm transit frees its whole admission window at once).
func (x *ni) acceptCredit(v flow.VCID, n int) {
	x.credits[v] += n
}

// deliver consumes an ejected flit; the tail completes the message. The
// arrival observer fires at the cycle barrier (finishCycle), not here:
// deliveries happen during the parallel router phase, and replaying them
// serially in ascending shard order reproduces the serial kernel's
// recording order exactly. The tail is the last live reference to the
// message inside the network — earlier flits preceded it through every
// buffer, and popped fifo slots are never read again before being
// overwritten — so after the barrier replay it can be pooled.
func (x *ni) deliver(fl flow.Flit, now int64) {
	if fl.Msg.Dst != x.node {
		panic("network: flit delivered to wrong node")
	}
	if fl.Type.IsTail() {
		if x.rel != nil && !x.relReceive(fl.Msg, now) {
			// Consumed by the reliability layer: a pure ack, or a duplicate
			// of an already-delivered sequence number. Never reaches the
			// arrival observer; pooled at the barrier like a delivery.
			return
		}
		fl.Msg.ArriveTime = now
		x.sh.arrived = append(x.sh.arrived, fl.Msg)
	}
}
