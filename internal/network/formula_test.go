package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lapses/internal/flow"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/table"
	"lapses/internal/topology"
)

// Property: on an idle network, a single message's latency equals the
// closed-form pipeline budget:
//
//	1 (injection wire) + d*(S+1) + (S-1) + (L-1)
//
// where d is the hop count, S the router stage count (5 for PROUD, 4 for
// LA-PROUD), 1 the link delay, and L the message length. The destination
// router contributes S-1 cycles because delivery happens at its OUT stage.
// This generalizes the hand-checked cases in TestContentionFreeLatencyExact
// to arbitrary mesh sizes, endpoints and lengths.
func TestQuickContentionFreeFormula(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k1, k2 := 2+rng.Intn(6), 2+rng.Intn(6)
		m := topology.NewMesh(k1, k2)
		src := topology.NodeID(rng.Intn(m.N()))
		dst := topology.NodeID(rng.Intn(m.N()))
		if src == dst {
			return true
		}
		length := 1 + rng.Intn(30)
		lookAhead := rng.Intn(2) == 0
		tk := table.KindES
		if rng.Intn(2) == 0 {
			tk = table.KindFull
		}

		pat := &fixedPattern{src: src, dst: dst}
		cfg := testConfig(m, lookAhead, tk, 0, pat, 0, seed)
		cfg.MsgLen = length
		n := New(cfg)
		msg := &flow.Message{ID: 0, Src: src, Dst: dst, Length: length, CreateTime: 0}
		n.nextMsg = 1
		n.inject(msg)
		var got int64 = -1
		n.onArrive = func(mm *flow.Message, now int64) { got = mm.ArriveTime - mm.CreateTime }
		for i := 0; i < 2000 && got < 0; i++ {
			n.Step()
		}
		if got < 0 {
			t.Logf("seed %d: message never arrived", seed)
			return false
		}
		stages := int64(5)
		if lookAhead {
			stages = 4
		}
		d := int64(m.Distance(src, dst))
		want := 1 + d*(stages+1) + (stages - 1) + int64(length-1)
		if got != want {
			t.Logf("seed %d: %v %d->%d len %d la=%v: latency %d want %d",
				seed, m, src, dst, length, lookAhead, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The same budget holds on a torus, where wraparound shortens d.
func TestContentionFreeTorus(t *testing.T) {
	m := topology.NewTorus(6, 6)
	src := m.ID(topology.Coord{0, 0})
	dst := m.ID(topology.Coord{5, 5}) // distance 2 via wraparound
	pat := &fixedPattern{src: src, dst: dst}
	// Torus Duato routing needs the dateline pair of escape VCs, so the
	// mesh-oriented testConfig helper does not apply.
	cls := routing.Class{NumVCs: 4, EscapeVCs: 2}
	cfg := Config{
		Mesh:      m,
		Router:    router.Config{NumVCs: 4, BufDepth: 20, OutDepth: 4, LookAhead: true},
		LinkDelay: 1,
		Algorithm: routing.NewDuato(m, cls),
		Class:     cls,
		Table:     table.KindFull,
		Selection: 0,
		Pattern:   pat,
		MsgLen:    4,
		Seed:      1,
	}
	n := New(cfg)
	msg := &flow.Message{ID: 0, Src: src, Dst: dst, Length: 4, CreateTime: 0}
	n.nextMsg = 1
	n.inject(msg)
	var got int64 = -1
	n.onArrive = func(mm *flow.Message, now int64) { got = mm.ArriveTime - mm.CreateTime }
	for i := 0; i < 200 && got < 0; i++ {
		n.Step()
	}
	// 1 + 2*(4+1) + 3 + 3 = 17.
	if got != 17 {
		t.Errorf("torus latency %d want 17", got)
	}
	if msg.Hops != 2 {
		t.Errorf("hops = %d want 2 (wraparound)", msg.Hops)
	}
}
