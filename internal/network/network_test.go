package network

import (
	"math"
	"math/rand"
	"testing"

	"lapses/internal/flow"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

func testConfig(m *topology.Mesh, lookAhead bool, tk table.Kind, sel selection.Kind, pat traffic.Pattern, rate float64, seed int64) Config {
	cls := routing.Class{NumVCs: 4, EscapeVCs: 1}
	return Config{
		Mesh:      m,
		Router:    router.Config{NumVCs: 4, BufDepth: 20, OutDepth: 4, LookAhead: lookAhead},
		LinkDelay: 1,
		Algorithm: routing.NewDuato(m, cls),
		Class:     cls,
		Table:     tk,
		Selection: sel,
		Pattern:   pat,
		MsgRate:   rate,
		MsgLen:    20,
		Seed:      seed,
	}
}

// fixedPattern sends every message from src to dst; other nodes stay
// silent.
type fixedPattern struct{ src, dst topology.NodeID }

func (f *fixedPattern) Name() string { return "fixed" }
func (f *fixedPattern) Dest(src topology.NodeID, _ *rand.Rand) (topology.NodeID, bool) {
	return f.dst, src == f.src
}

// singleMessage runs one message through an idle network and returns its
// total latency.
func singleMessage(t *testing.T, lookAhead bool, msgLen int) int64 {
	t.Helper()
	m := topology.NewMesh(4, 4)
	pat := &fixedPattern{src: m.ID(topology.Coord{0, 0}), dst: m.ID(topology.Coord{3, 0})}
	cfg := testConfig(m, lookAhead, table.KindFull, selection.StaticXY, pat, 0, 1)
	cfg.MsgLen = msgLen
	n := New(cfg)
	msg := &flow.Message{ID: 0, Src: pat.src, Dst: pat.dst, Length: msgLen, CreateTime: 0}
	n.nextMsg = 1
	n.inject(msg)
	var arrived int64 = -1
	n.onArrive = func(m *flow.Message, now int64) { arrived = m.ArriveTime - m.CreateTime }
	for i := 0; i < 300 && arrived < 0; i++ {
		n.Step()
	}
	if arrived < 0 {
		t.Fatal("message never arrived")
	}
	if n.Occupancy() != 0 {
		t.Fatalf("flits left in network: %d", n.Occupancy())
	}
	if msg.Hops != 3 {
		t.Fatalf("hops = %d want 3", msg.Hops)
	}
	return arrived
}

// Contention-free latency must match the pipeline budget exactly.
// PROUD, d hops, length L: 1 (inject wire) + d*(5+1) + 4 (stages at the
// destination router before delivery) + (L-1) serialization.
// LA-PROUD: 1 + d*(4+1) + 3 + (L-1).
func TestContentionFreeLatencyExact(t *testing.T) {
	cases := []struct {
		la     bool
		msgLen int
		want   int64
	}{
		{false, 1, 23}, // 1 + 3*6 + 4
		{true, 1, 19},  // 1 + 3*5 + 3
		{false, 20, 42},
		{true, 20, 38},
	}
	for _, c := range cases {
		got := singleMessage(t, c.la, c.msgLen)
		if got != c.want {
			t.Errorf("lookAhead=%v len=%d: latency %d want %d", c.la, c.msgLen, got, c.want)
		}
	}
}

// Every generated message must be delivered exactly once, and the network
// must drain to empty.
func TestConservation(t *testing.T) {
	m := topology.NewMesh(8, 8)
	cfg := testConfig(m, true, table.KindES, selection.LRU, traffic.New(traffic.Uniform, m), 0.002, 7)
	n := New(cfg)
	delivered := map[flow.MessageID]int{}
	n.onArrive = func(msg *flow.Message, now int64) { delivered[msg.ID]++ }
	for i := 0; i < 20000; i++ {
		n.Step()
	}
	// Give in-flight messages time to drain, then account for everything
	// generated up to the end.
	for i := 0; i < 3000; i++ {
		n.Step()
	}
	created := int(n.nextMsg)
	if created < 100 {
		t.Fatalf("too few messages generated: %d", created)
	}
	for id, cnt := range delivered {
		if cnt != 1 {
			t.Fatalf("message %d delivered %d times", id, cnt)
		}
	}
	if int(n.Delivered())+n.QueuedMessages()+pendingInFlight(n) != created {
		t.Fatalf("conservation: delivered %d + pending %d != created %d",
			n.Delivered(), n.QueuedMessages(), created)
	}
}

// pendingInFlight counts messages injected but not yet delivered.
func pendingInFlight(n *Network) int {
	// Conservatively derived from flit occupancy: every in-flight
	// message holds at least one flit in some buffer.
	if n.Occupancy() > 0 {
		return int(n.nextMsg) - int(n.Delivered()) - n.QueuedMessages()
	}
	return 0
}

// Look-ahead must strictly reduce average latency at low load.
func TestLookAheadReducesLatency(t *testing.T) {
	m := topology.NewMesh(8, 8)
	rate := traffic.MessageRate(m, 0.1, 20)
	base := New(testConfig(m, false, table.KindES, selection.StaticXY, traffic.New(traffic.Uniform, m), rate, 11))
	la := New(testConfig(m, true, table.KindES, selection.StaticXY, traffic.New(traffic.Uniform, m), rate, 11))
	p := RunParams{WarmupMessages: 200, MeasureMessages: 2000}
	rBase := base.Run(p)
	rLA := la.Run(p)
	if rBase.Saturated || rLA.Saturated {
		t.Fatalf("unexpected saturation at low load: %v %v", rBase.SatReason, rLA.SatReason)
	}
	if rLA.Latency.Mean() >= rBase.Latency.Mean() {
		t.Errorf("LA latency %.2f not below PROUD %.2f", rLA.Latency.Mean(), rBase.Latency.Mean())
	}
	// The paper reports 12-15% at low load on 16x16; on 8x8 with ~7.5
	// router traversals the stage saving is bounded; accept > 5%.
	imp := (rBase.Latency.Mean() - rLA.Latency.Mean()) / rBase.Latency.Mean()
	if imp < 0.05 || imp > 0.30 {
		t.Errorf("LA improvement %.1f%% outside plausible band", imp*100)
	}
}

// The paper's storage claim, end to end: ES and full-table networks with
// identical seeds produce *identical* trajectories, not merely similar
// averages.
func TestESIdenticalToFullEndToEnd(t *testing.T) {
	m := topology.NewMesh(8, 8)
	rate := traffic.MessageRate(m, 0.4, 20)
	runOne := func(tk table.Kind) (float64, int64) {
		n := New(testConfig(m, true, tk, selection.LRU, traffic.New(traffic.Transpose, m), rate, 99))
		r := n.Run(RunParams{WarmupMessages: 200, MeasureMessages: 3000})
		return r.Latency.Mean(), r.Latency.N()
	}
	fullMean, fullN := runOne(table.KindFull)
	esMean, esN := runOne(table.KindES)
	if fullMean != esMean || fullN != esN {
		t.Errorf("ES (%.4f, %d) != full table (%.4f, %d)", esMean, esN, fullMean, fullN)
	}
}

// Determinism: identical seeds give identical results.
func TestDeterminism(t *testing.T) {
	m := topology.NewMesh(8, 8)
	rate := traffic.MessageRate(m, 0.3, 20)
	runOne := func() float64 {
		n := New(testConfig(m, true, table.KindES, selection.MaxCredit, traffic.New(traffic.BitReversal, m), rate, 5))
		return n.Run(RunParams{WarmupMessages: 100, MeasureMessages: 1500}).Latency.Mean()
	}
	if a, b := runOne(), runOne(); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

// Deadlock freedom under stress: heavy adaptive transpose traffic keeps
// making progress (the run must end because measurement completes or the
// latency guard trips — never the progress guard).
func TestNoDeadlockUnderStress(t *testing.T) {
	m := topology.NewMesh(8, 8)
	rate := traffic.MessageRate(m, 0.9, 20)
	messages, budget := 2000, int64(150000)
	if testing.Short() {
		messages, budget = 400, 25000
	}
	for _, sel := range []selection.Kind{selection.StaticXY, selection.LRU, selection.MaxCredit} {
		n := New(testConfig(m, true, table.KindES, sel, traffic.New(traffic.Transpose, m), rate, 13))
		r := n.Run(RunParams{WarmupMessages: 100, MeasureMessages: messages, MaxCycles: budget})
		if r.SatReason == "no delivery progress (possible deadlock)" {
			t.Fatalf("%v: deadlock detected", sel)
		}
	}
}

// Saturation detection: a hopeless overload must be flagged, not run
// forever.
func TestSaturationDetected(t *testing.T) {
	m := topology.NewMesh(8, 8)
	rate := traffic.MessageRate(m, 3.0, 20) // 3x bisection capacity
	messages, budget := 3000, int64(0)
	if testing.Short() {
		// The verdict (saturated, not deadlocked) is clear long before
		// the default ~50k-cycle budget; cap it for the smoke run.
		messages, budget = 1000, 15000
	}
	n := New(testConfig(m, true, table.KindES, selection.StaticXY, traffic.New(traffic.Uniform, m), rate, 3))
	r := n.Run(RunParams{WarmupMessages: 100, MeasureMessages: messages, MaxCycles: budget})
	if !r.Saturated {
		t.Fatal("overloaded network not flagged as saturated")
	}
	if r.LatencyString() != "Sat." {
		t.Errorf("LatencyString = %q", r.LatencyString())
	}
	// Guard against a vacuous short-mode pass (the explicit budget also
	// sets Saturated): the run must show genuine overload symptoms, not
	// a healthy network cut off early.
	if r.Latency.N() >= int64(messages) {
		t.Errorf("overloaded network delivered all %d measured messages", messages)
	}
}

// Latency grows monotonically-ish with load (allowing small noise).
func TestLatencyGrowsWithLoad(t *testing.T) {
	m := topology.NewMesh(8, 8)
	mean := func(load float64) float64 {
		rate := traffic.MessageRate(m, load, 20)
		n := New(testConfig(m, true, table.KindES, selection.StaticXY, traffic.New(traffic.Uniform, m), rate, 21))
		r := n.Run(RunParams{WarmupMessages: 200, MeasureMessages: 2500})
		if r.Saturated {
			t.Fatalf("saturated at load %v", load)
		}
		return r.Latency.Mean()
	}
	l2, l5, l8 := mean(0.2), mean(0.5), mean(0.8)
	if !(l2 < l5 && l5 < l8) {
		t.Errorf("latency not increasing: %.1f %.1f %.1f", l2, l5, l8)
	}
	if math.IsNaN(l2) {
		t.Error("NaN latency")
	}
}

// Torus networks with dateline escape channels deliver traffic without
// deadlock.
func TestTorusAdaptive(t *testing.T) {
	m := topology.NewTorus(6, 6)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 2}
	cfg := Config{
		Mesh:      m,
		Router:    router.Config{NumVCs: 4, BufDepth: 20, OutDepth: 4, LookAhead: true},
		LinkDelay: 1,
		Algorithm: routing.NewDuato(m, cls),
		Class:     cls,
		Table:     table.KindFull,
		Selection: selection.LRU,
		Pattern:   traffic.New(traffic.Uniform, m),
		MsgRate:   traffic.MessageRate(m, 0.5, 20),
		MsgLen:    20,
		Seed:      31,
	}
	n := New(cfg)
	r := n.Run(RunParams{WarmupMessages: 200, MeasureMessages: 2000, MaxCycles: 200000})
	if r.SatReason == "no delivery progress (possible deadlock)" {
		t.Fatal("torus deadlocked")
	}
	if r.Latency.N() == 0 {
		t.Fatal("no measurements")
	}
}

func TestConfigValidation(t *testing.T) {
	m := topology.NewMesh(4, 4)
	good := testConfig(m, false, table.KindFull, selection.StaticXY, traffic.New(traffic.Uniform, m), 0.01, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := good
	bad.Mesh = nil
	if bad.Validate() == nil {
		t.Error("nil mesh accepted")
	}
	bad = good
	bad.LinkDelay = 0
	if bad.Validate() == nil {
		t.Error("zero link delay accepted")
	}
	bad = good
	bad.MsgLen = 0
	if bad.Validate() == nil {
		t.Error("zero MsgLen accepted")
	}
}
