package network

import (
	"math/rand"
	"testing"

	"lapses/internal/flow"
	"lapses/internal/router"
	"lapses/internal/routing"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// scriptPattern replays a fixed list of (src, dst) messages: Dest pops the
// next destination for its source. Used for finite-workload tests.
type scriptPattern struct {
	bysrc map[topology.NodeID][]topology.NodeID
}

func (s *scriptPattern) Name() string { return "script" }
func (s *scriptPattern) Dest(src topology.NodeID, _ *rand.Rand) (topology.NodeID, bool) {
	q := s.bysrc[src]
	if len(q) == 0 {
		return src, false
	}
	d := q[0]
	s.bysrc[src] = q[1:]
	return d, true
}

// Flit conservation over links: after draining a finite workload, total
// link flit-traversals must equal sum over messages of hops x length.
func TestLinkFlitConservation(t *testing.T) {
	m := topology.NewMesh(6, 6)
	rng := rand.New(rand.NewSource(4))
	script := &scriptPattern{bysrc: map[topology.NodeID][]topology.NodeID{}}
	type rec struct{ src, dst topology.NodeID }
	var msgs []rec
	for i := 0; i < 150; i++ {
		src := topology.NodeID(rng.Intn(m.N()))
		dst := topology.NodeID(rng.Intn(m.N()))
		if src == dst {
			continue
		}
		script.bysrc[src] = append(script.bysrc[src], dst)
		msgs = append(msgs, rec{src, dst})
	}
	cfg := testConfig(m, true, table.KindES, selection.LRU, script, 0.02, 9)
	cfg.MsgLen = 6
	n := New(cfg)
	var delivered []*flow.Message
	n.onArrive = func(msg *flow.Message, now int64) { delivered = append(delivered, msg) }
	for i := 0; i < 30000 && len(delivered) < len(msgs); i++ {
		n.Step()
	}
	if len(delivered) != len(msgs) {
		t.Fatalf("delivered %d of %d", len(delivered), len(msgs))
	}
	// Drain any credits in flight, then check conservation.
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if n.Occupancy() != 0 {
		t.Fatalf("network not drained: %d flits", n.Occupancy())
	}
	var want uint64
	for _, msg := range delivered {
		want += uint64(msg.Hops) * uint64(msg.Length)
		// And each message's hops must be minimal (adaptive minimal
		// routing never misroutes).
		if msg.Hops != m.Distance(msg.Src, msg.Dst) {
			t.Errorf("msg %d->%d took %d hops, distance %d", msg.Src, msg.Dst, msg.Hops, m.Distance(msg.Src, msg.Dst))
		}
	}
	if got := n.TotalLinkFlits(); got != want {
		t.Errorf("link flits %d want %d", got, want)
	}
}

// The ejection channels must carry exactly length flits per delivered
// message.
func TestEjectionAccounting(t *testing.T) {
	m := topology.NewMesh(4, 4)
	pat := &fixedPattern{src: 0, dst: 15}
	cfg := testConfig(m, true, table.KindES, selection.StaticXY, pat, 0.005, 2)
	cfg.MsgLen = 4
	n := New(cfg)
	for i := 0; i < 12000; i++ {
		n.Step()
	}
	var eject uint64
	for _, s := range n.LinkStats() {
		if s.Port == topology.PortLocal && s.From == 15 {
			eject = s.Flits
		}
	}
	inFlightFlits := uint64(n.Occupancy())
	want := uint64(n.Delivered()) * 4
	if eject != want {
		t.Errorf("ejection flits %d want %d (in flight %d)", eject, want, inFlightFlits)
	}
}

// The paper's explanation for Table 4: the meta-block mapping concentrates
// transpose traffic on cluster-boundary links, so its utilization
// imbalance must clearly exceed full-table routing's at equal load.
func TestMetaBlockBoundaryCongestion(t *testing.T) {
	m := topology.NewMesh(16, 16)
	messages := 4000
	if testing.Short() {
		messages = 1500
	}
	imbalance := func(tk table.Kind) float64 {
		cfg := testConfig(m, true, tk, selection.StaticXY, traffic.New(traffic.Transpose, m), traffic.MessageRate(m, 0.2, 20), 17)
		n := New(cfg)
		n.Run(RunParams{WarmupMessages: 200, MeasureMessages: messages})
		return n.LinkImbalance()
	}
	full := imbalance(table.KindFull)
	meta := imbalance(table.KindMetaBlock)
	if meta <= full*1.1 {
		t.Errorf("meta-block imbalance %.2f should clearly exceed full-table %.2f", meta, full)
	}
}

// Satellite audit: per-port useCount must agree exactly between cycle and
// event mode. Event mode counts worm transits in bulk (useCount += L) and
// express flits one by one, while the cycle pipeline counts per flit in
// the output stage; with deterministic routing every message crosses the
// same links in both modes, so after a full drain the per-link flit
// counters must be identical — these counters feed the congestion
// notifications, so a divergence would skew notify selection in one mode.
func TestEventCycleLinkStatsParity(t *testing.T) {
	m := topology.NewMesh(6, 6)
	cls := routing.Class{NumVCs: 4, EscapeVCs: 0}
	// MsgLen 1 exercises the single-flit express path; 6 exercises worm
	// transits plus refused-worm unpacks under contention.
	for _, msgLen := range []int{1, 6} {
		counts := map[bool]map[linkKey]uint64{}
		for _, events := range []bool{false, true} {
			rng := rand.New(rand.NewSource(11))
			script := &scriptPattern{bysrc: map[topology.NodeID][]topology.NodeID{}}
			total := 0
			for i := 0; i < 200; i++ {
				src := topology.NodeID(rng.Intn(m.N()))
				dst := topology.NodeID(rng.Intn(m.N()))
				if src == dst {
					continue
				}
				script.bysrc[src] = append(script.bysrc[src], dst)
				total++
			}
			cfg := Config{
				Mesh:      m,
				Router:    router.Config{NumVCs: 4, BufDepth: 20, OutDepth: 4, LookAhead: true},
				LinkDelay: 1,
				Algorithm: routing.NewDimOrder(m, cls, nil),
				Class:     cls,
				Table:     table.KindES,
				Selection: selection.StaticXY,
				Pattern:   script,
				MsgRate:   0.05,
				MsgLen:    msgLen,
				Seed:      11,
				EventMode: events,
			}
			n := New(cfg)
			delivered := 0
			n.onArrive = func(msg *flow.Message, now int64) { delivered++ }
			for i := 0; i < 60000 && delivered < total; i++ {
				n.Step()
			}
			if delivered != total {
				t.Fatalf("events=%t len=%d: delivered %d of %d", events, msgLen, delivered, total)
			}
			for i := 0; i < 30; i++ {
				n.Step()
			}
			if n.Occupancy() != 0 {
				t.Fatalf("events=%t len=%d: not drained", events, msgLen)
			}
			counts[events] = map[linkKey]uint64{}
			for _, s := range n.LinkStats() {
				counts[events][linkKey{s.From, s.Port}] = s.Flits
			}
		}
		for k, cyc := range counts[false] {
			if ev := counts[true][k]; ev != cyc {
				t.Errorf("len=%d: link %d port %d: cycle %d flits, event %d", msgLen, k.node, k.port, cyc, ev)
			}
		}
	}
}

// Satellite bugfix: LinkStats utilizations are whole-run cumulative, so a
// warmup much longer than the measured window dilutes them; the windowed
// LinkStatsSince variant must report the window's true utilization.
func TestLinkStatsWindowUndilutedByWarmup(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cfg := testConfig(m, true, table.KindES, selection.StaticXY,
		&scriptPattern{bysrc: map[topology.NodeID][]topology.NodeID{}}, 0, 3)
	cfg.MsgLen = 4
	n := New(cfg)
	// "Warmup" ≫ measure: 20000 cycles in which nothing moves.
	for i := 0; i < 20000; i++ {
		n.Step()
	}
	snap := n.SnapshotLinks()
	windowStart := n.Now()
	// Then a short burst of real traffic: node 0 -> node 3 along the top
	// row, 10 messages of 4 flits.
	delivered := 0
	n.onArrive = func(msg *flow.Message, now int64) { delivered++ }
	for i := 0; i < 10; i++ {
		n.inject(&flow.Message{Src: 0, Dst: 3, Length: 4, CreateTime: n.Now()})
	}
	for i := 0; i < 3000 && delivered < 10; i++ {
		n.Step()
	}
	if delivered != 10 {
		t.Fatalf("delivered %d of 10", delivered)
	}
	window := float64(n.Now() - windowStart)
	cum := map[linkKey]LinkStat{}
	for _, s := range n.LinkStats() {
		cum[linkKey{s.From, s.Port}] = s
	}
	sinceN := 0
	for _, s := range n.LinkStatsSince(snap) {
		k := linkKey{s.From, s.Port}
		// No traffic preceded the snapshot, so window counts equal the
		// cumulative ones...
		if s.Flits != cum[k].Flits {
			t.Errorf("link %d port %d: window flits %d, cumulative %d", s.From, s.Port, s.Flits, cum[k].Flits)
		}
		// ...but the windowed utilization must divide by the window, not
		// the whole run.
		if want := float64(s.Flits) / window; s.Utilization != want {
			t.Errorf("link %d port %d: window utilization %g want %g", s.From, s.Port, s.Utilization, want)
		}
		if s.Flits > 0 {
			sinceN++
			// The cumulative figure is diluted by the idle warmup — at
			// least 5x here (20000 idle vs <3000 active cycles).
			if cum[k].Utilization*5 > s.Utilization {
				t.Errorf("link %d port %d: cumulative %g not diluted vs windowed %g", s.From, s.Port, cum[k].Utilization, s.Utilization)
			}
		}
	}
	if sinceN == 0 {
		t.Fatal("no loaded links in window")
	}
}

func TestLinkStatsShape(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cfg := testConfig(m, true, table.KindES, selection.StaticXY, traffic.New(traffic.Uniform, m), 0.01, 1)
	n := New(cfg)
	for i := 0; i < 3000; i++ {
		n.Step()
	}
	ls := n.LinkStats()
	// 4x4 mesh: 2*2*(4*3) = 48 directional links + 16 ejection channels.
	if len(ls) != 64 {
		t.Fatalf("stats entries = %d want 64", len(ls))
	}
	for _, s := range ls {
		if s.Utilization < 0 || s.Utilization > 1.0001 {
			t.Errorf("utilization out of range: %+v", s)
		}
	}
	if n.LinkImbalance() < 1 {
		t.Errorf("imbalance below 1: %v", n.LinkImbalance())
	}
}
