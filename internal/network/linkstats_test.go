package network

import (
	"math/rand"
	"testing"

	"lapses/internal/flow"
	"lapses/internal/selection"
	"lapses/internal/table"
	"lapses/internal/topology"
	"lapses/internal/traffic"
)

// scriptPattern replays a fixed list of (src, dst) messages: Dest pops the
// next destination for its source. Used for finite-workload tests.
type scriptPattern struct {
	bysrc map[topology.NodeID][]topology.NodeID
}

func (s *scriptPattern) Name() string { return "script" }
func (s *scriptPattern) Dest(src topology.NodeID, _ *rand.Rand) (topology.NodeID, bool) {
	q := s.bysrc[src]
	if len(q) == 0 {
		return src, false
	}
	d := q[0]
	s.bysrc[src] = q[1:]
	return d, true
}

// Flit conservation over links: after draining a finite workload, total
// link flit-traversals must equal sum over messages of hops x length.
func TestLinkFlitConservation(t *testing.T) {
	m := topology.NewMesh(6, 6)
	rng := rand.New(rand.NewSource(4))
	script := &scriptPattern{bysrc: map[topology.NodeID][]topology.NodeID{}}
	type rec struct{ src, dst topology.NodeID }
	var msgs []rec
	for i := 0; i < 150; i++ {
		src := topology.NodeID(rng.Intn(m.N()))
		dst := topology.NodeID(rng.Intn(m.N()))
		if src == dst {
			continue
		}
		script.bysrc[src] = append(script.bysrc[src], dst)
		msgs = append(msgs, rec{src, dst})
	}
	cfg := testConfig(m, true, table.KindES, selection.LRU, script, 0.02, 9)
	cfg.MsgLen = 6
	n := New(cfg)
	var delivered []*flow.Message
	n.onArrive = func(msg *flow.Message, now int64) { delivered = append(delivered, msg) }
	for i := 0; i < 30000 && len(delivered) < len(msgs); i++ {
		n.Step()
	}
	if len(delivered) != len(msgs) {
		t.Fatalf("delivered %d of %d", len(delivered), len(msgs))
	}
	// Drain any credits in flight, then check conservation.
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if n.Occupancy() != 0 {
		t.Fatalf("network not drained: %d flits", n.Occupancy())
	}
	var want uint64
	for _, msg := range delivered {
		want += uint64(msg.Hops) * uint64(msg.Length)
		// And each message's hops must be minimal (adaptive minimal
		// routing never misroutes).
		if msg.Hops != m.Distance(msg.Src, msg.Dst) {
			t.Errorf("msg %d->%d took %d hops, distance %d", msg.Src, msg.Dst, msg.Hops, m.Distance(msg.Src, msg.Dst))
		}
	}
	if got := n.TotalLinkFlits(); got != want {
		t.Errorf("link flits %d want %d", got, want)
	}
}

// The ejection channels must carry exactly length flits per delivered
// message.
func TestEjectionAccounting(t *testing.T) {
	m := topology.NewMesh(4, 4)
	pat := &fixedPattern{src: 0, dst: 15}
	cfg := testConfig(m, true, table.KindES, selection.StaticXY, pat, 0.005, 2)
	cfg.MsgLen = 4
	n := New(cfg)
	for i := 0; i < 12000; i++ {
		n.Step()
	}
	var eject uint64
	for _, s := range n.LinkStats() {
		if s.Port == topology.PortLocal && s.From == 15 {
			eject = s.Flits
		}
	}
	inFlightFlits := uint64(n.Occupancy())
	want := uint64(n.Delivered()) * 4
	if eject != want {
		t.Errorf("ejection flits %d want %d (in flight %d)", eject, want, inFlightFlits)
	}
}

// The paper's explanation for Table 4: the meta-block mapping concentrates
// transpose traffic on cluster-boundary links, so its utilization
// imbalance must clearly exceed full-table routing's at equal load.
func TestMetaBlockBoundaryCongestion(t *testing.T) {
	m := topology.NewMesh(16, 16)
	messages := 4000
	if testing.Short() {
		messages = 1500
	}
	imbalance := func(tk table.Kind) float64 {
		cfg := testConfig(m, true, tk, selection.StaticXY, traffic.New(traffic.Transpose, m), traffic.MessageRate(m, 0.2, 20), 17)
		n := New(cfg)
		n.Run(RunParams{WarmupMessages: 200, MeasureMessages: messages})
		return n.LinkImbalance()
	}
	full := imbalance(table.KindFull)
	meta := imbalance(table.KindMetaBlock)
	if meta <= full*1.1 {
		t.Errorf("meta-block imbalance %.2f should clearly exceed full-table %.2f", meta, full)
	}
}

func TestLinkStatsShape(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cfg := testConfig(m, true, table.KindES, selection.StaticXY, traffic.New(traffic.Uniform, m), 0.01, 1)
	n := New(cfg)
	for i := 0; i < 3000; i++ {
		n.Step()
	}
	ls := n.LinkStats()
	// 4x4 mesh: 2*2*(4*3) = 48 directional links + 16 ejection channels.
	if len(ls) != 64 {
		t.Fatalf("stats entries = %d want 64", len(ls))
	}
	for _, s := range ls {
		if s.Utilization < 0 || s.Utilization > 1.0001 {
			t.Errorf("utilization out of range: %+v", s)
		}
	}
	if n.LinkImbalance() < 1 {
		t.Errorf("imbalance below 1: %v", n.LinkImbalance())
	}
}
